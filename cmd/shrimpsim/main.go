// Command shrimpsim runs interactive scenarios on the simulated SHRIMP
// machine — a quick way to watch the UDMA mechanism work without
// writing a program against the library.
//
// Usage:
//
//	shrimpsim -scenario send        # two-instruction UDMA send on one node
//	shrimpsim -scenario cluster     # 4-node deliberate-update exchange
//	shrimpsim -scenario share       # untrusting processes share the device
//	shrimpsim -scenario paging      # UDMA under memory pressure (I2/I4)
//	shrimpsim -scenario faults      # injected faults, per-transfer recovery
//	shrimpsim -scenario lossy       # lossy wire vs the reliable delivery protocol
//	shrimpsim -scenario contention  # queued senders: latency under load
//	shrimpsim -scenario incast      # routed-fabric incast: goodput vs link capacity
//	shrimpsim -scenario incast -nodes 64 -topology torus
//	shrimpsim -scenario serve       # open-loop load at a fixed offered rate
//	shrimpsim -scenario serve -rate 1000 -nodes 4
//	shrimpsim -scenario churn       # short-lived flows vs a bounded NIPT cache
//	shrimpsim -scenario churn -capacity 16
//	shrimpsim -scenario chaos       # node crash–restart schedule vs availability
//	shrimpsim -scenario fuzz        # randomized run under the invariant auditor
//	shrimpsim -scenario fuzz -seed 7 -count 100
//	shrimpsim -list                 # scenario index with one-line descriptions
//	shrimpsim -nodes 8 -size 16384  # scenario parameters
//	shrimpsim -workers 8            # host goroutines for cluster windows and
//	                                # seed/rate sweeps (results are identical
//	                                # at any worker count)
//
// Observation flags (work with every scenario; telemetry is a pure
// observer, so they never change simulated results):
//
//	-metrics              print a telemetry snapshot (counters, gauges,
//	                      latency histograms with p50/p90/p99)
//	-metrics-out FILE     write the snapshot as JSON
//	-trace-out FILE       write a Chrome trace_event JSON file; open it
//	                      at https://ui.perfetto.dev
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"shrimp/internal/addr"
	"shrimp/internal/cluster"
	"shrimp/internal/device"
	"shrimp/internal/experiments"
	"shrimp/internal/interconnect"
	"shrimp/internal/kernel"
	"shrimp/internal/loadgen"
	"shrimp/internal/machine"
	"shrimp/internal/nic"
	"shrimp/internal/sim"
	"shrimp/internal/simcheck"
	"shrimp/internal/telemetry"
	"shrimp/internal/trace"
	"shrimp/internal/udmalib"
	"shrimp/internal/workload"
)

// scenarioIndex is the -list readout: every scenario in presentation
// order with the one-liner a new user needs to pick one.
var scenarioIndex = []struct{ name, desc string }{
	{"send", "two-instruction UDMA send on one node"},
	{"cluster", "N-node deliberate-update ring exchange"},
	{"share", "untrusting processes share one device (I1 protection)"},
	{"paging", "UDMA under memory pressure (I2/I4 guards)"},
	{"autoupdate", "plain stores propagate to a remote page, no initiation"},
	{"faults", "injected device faults vs per-transfer recovery"},
	{"lossy", "lossy wire vs the reliable delivery sublayer"},
	{"contention", "queued senders: latency distributions under load"},
	{"incast", "routed-fabric incast: goodput flattens at per-link capacity"},
	{"serve", "open-loop load at a fixed offered rate, SLO readout"},
	{"churn", "short-lived flows vs a bounded NIPT cache"},
	{"chaos", "seeded node crash–restart schedule vs availability SLOs"},
	{"fuzz", "randomized runs under the simcheck invariant auditor"},
}

func main() {
	var (
		scenario   = flag.String("scenario", "send", "send | cluster | share | paging | autoupdate | faults | lossy | contention | incast | serve | churn | chaos | fuzz")
		list       = flag.Bool("list", false, "list the scenarios with one-line descriptions and exit")
		nodes      = flag.Int("nodes", 4, "cluster scenario: node count")
		size       = flag.Int("size", 4096, "message size in bytes")
		senders    = flag.Int("senders", 4, "share/contention scenarios: processes")
		seed       = flag.Uint64("seed", experiments.FaultSeed, "faults/fuzz scenarios: RNG seed (fuzz: first seed)")
		count      = flag.Int("count", 1, "fuzz scenario: number of consecutive seeds to run")
		rate       = flag.Float64("rate", 300, "serve/churn scenarios: offered load in messages per million cycles")
		topology   = flag.String("topology", "mesh", "incast scenario: routed fabric kind (mesh | torus)")
		capacity   = flag.Int("capacity", 8, "churn scenario: NIPT cache capacity in entries (0 = unbounded)")
		withTrace  = flag.Bool("trace", false, "send scenario: dump the hardware event trace")
		metrics    = flag.Bool("metrics", false, "print a telemetry snapshot after the scenario")
		metricsOut = flag.String("metrics-out", "", "write the telemetry snapshot as JSON to this file")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace_event JSON file (Perfetto) to this file")
		workers    = flag.Int("workers", 1, "host goroutines: cluster node windows, fuzz seeds and experiment sweeps (results identical at any value)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the scenario to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file at exit")
	)
	flag.Parse()
	if *list {
		fmt.Println("scenarios:")
		for _, sc := range scenarioIndex {
			fmt.Printf("  %-12s %s\n", sc.name, sc.desc)
		}
		return
	}
	if *workers < 1 {
		*workers = 1
	}
	experiments.SetSweepWorkers(*workers)

	if *cpuprofile != "" {
		f, perr := os.Create(*cpuprofile)
		if perr == nil {
			perr = pprof.StartCPUProfile(f)
		}
		if perr != nil {
			fmt.Fprintf(os.Stderr, "shrimpsim: cpuprofile: %v\n", perr)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, perr := os.Create(*memprofile)
			if perr != nil {
				fmt.Fprintf(os.Stderr, "shrimpsim: memprofile: %v\n", perr)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if perr := pprof.Lookup("allocs").WriteTo(f, 0); perr != nil {
				fmt.Fprintf(os.Stderr, "shrimpsim: memprofile: %v\n", perr)
			}
		}()
	}

	o := newObs(*metrics, *metricsOut, *traceOut)

	var err error
	switch *scenario {
	case "send":
		err = scenarioSend(*size, *withTrace, o)
	case "cluster":
		err = scenarioCluster(*nodes, *size, *workers, o)
	case "share":
		err = scenarioShare(*senders, *size, o)
	case "paging":
		err = scenarioPaging(*size, o)
	case "autoupdate":
		err = scenarioAutoUpdate(o)
	case "faults":
		err = scenarioFaults(*seed)
	case "lossy":
		err = scenarioLossy(*seed)
	case "contention":
		err = scenarioContention(*senders, *size, o)
	case "incast":
		err = scenarioIncast(*nodes, *topology, *workers, o)
	case "serve":
		err = scenarioServe(*seed, *nodes, *rate, o)
	case "churn":
		err = scenarioChurn(*seed, *nodes, *rate, *capacity, o)
	case "chaos":
		err = scenarioChaos(*seed, *nodes, *rate, o)
	case "fuzz":
		err = scenarioFuzz(*seed, *count, *workers)
	default:
		err = fmt.Errorf("unknown scenario %q", *scenario)
	}
	if err == nil {
		err = o.finish(os.Stdout)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "shrimpsim: %v\n", err)
		os.Exit(1)
	}
}

// obs bundles the observation flags: one telemetry registry shared by
// every layer of the scenario's machine(s), plus the tracer sources that
// feed the Chrome trace export. All fields stay nil when no observation
// flag is set, so scenarios pay nothing.
type obs struct {
	metrics    bool
	metricsOut string
	traceOut   string
	reg        *telemetry.Registry
	sources    []telemetry.TraceSource
	costs      *sim.CostModel
}

func newObs(metrics bool, metricsOut, traceOut string) *obs {
	o := &obs{metrics: metrics, metricsOut: metricsOut, traceOut: traceOut}
	if metrics || metricsOut != "" || traceOut != "" {
		o.reg = telemetry.New()
	}
	return o
}

// registry returns the shared registry (nil when observation is off —
// every SetMetrics consumer treats that as "instruments disabled").
func (o *obs) registry() *telemetry.Registry { return o.reg }

// addSource registers a hardware tracer for the Chrome trace export.
func (o *obs) addSource(name string, tr *trace.Tracer) {
	if tr != nil {
		o.sources = append(o.sources, telemetry.TraceSource{Name: name, Tracer: tr})
	}
}

// setCosts records the cost model used to convert cycles to trace
// timestamps (the last scenario machine wins; scenarios share one model).
func (o *obs) setCosts(c *sim.CostModel) { o.costs = c }

// finish renders whatever the flags asked for.
func (o *obs) finish(w io.Writer) error {
	if o.reg == nil {
		return nil
	}
	snap := o.reg.Snapshot()
	if o.metrics {
		fmt.Fprintln(w, "\n# telemetry snapshot")
		snap.WriteText(w)
	}
	if o.metricsOut != "" {
		f, err := os.Create(o.metricsOut)
		if err != nil {
			return err
		}
		if err := snap.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "telemetry snapshot written to %s\n", o.metricsOut)
	}
	if o.traceOut != "" {
		costs := o.costs
		if costs == nil {
			costs = machine.SHRIMP1996()
		}
		f, err := os.Create(o.traceOut)
		if err != nil {
			return err
		}
		if err := telemetry.WriteChromeTrace(f, costs, o.reg, o.sources...); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "trace written to %s (open at https://ui.perfetto.dev)\n", o.traceOut)
	}
	return nil
}

func scenarioSend(size int, withTrace bool, o *obs) error {
	fmt.Printf("# one-node UDMA send of %d bytes to a buffer device\n", size)
	n := machine.New(0, machine.Config{Metrics: o.registry()})
	o.setCosts(n.Costs)
	buf := device.NewBuffer("buf", uint32(size/addr.PageSize+2), 4, 0)
	n.AttachDevice(buf, 0)
	defer n.Kernel.Shutdown()

	var tr *trace.Tracer
	if withTrace || o.traceOut != "" {
		tr = trace.New(n.Clock, 256)
		n.UDMA.SetTracer(tr)
		n.Kernel.SetTracer(tr)
		o.addSource("node0", tr)
	}

	var done sim.Cycles
	var sendErr error
	n.Kernel.Spawn("app", func(p *kernel.Proc) {
		d, err := udmalib.Open(p, buf, true)
		if err != nil {
			sendErr = err
			return
		}
		va, _ := p.Alloc(size)
		p.WriteBuf(va, workload.Payload(size, 1))
		start := p.Now()
		sendErr = d.Send(va, 0, size)
		done = p.Now() - start
	})
	if err := n.Kernel.Run(sim.Forever); err != nil {
		return err
	}
	if sendErr != nil {
		return sendErr
	}
	fmt.Printf("sent %d bytes in %.1f µs (%.1f MB/s) — %d initiations, %d kernel page faults\n",
		size, n.Micros(done),
		float64(size)/n.Costs.Seconds(done)/1e6,
		n.UDMA.Stats().Initiations, n.Kernel.Stats().PageFaults)
	fmt.Println("the kernel was not involved in any initiation: only in creating proxy mappings on first touch")
	if withTrace {
		fmt.Println("\nhardware event trace:")
		tr.Dump(os.Stdout)
		fmt.Printf("summary: %s\n", tr.Summary())
	}
	return nil
}

func scenarioCluster(nodes, size, workers int, o *obs) error {
	fmt.Printf("# %d-node deliberate-update ring, %d bytes per message\n", nodes, size)
	c := cluster.New(cluster.Config{
		Nodes:   nodes,
		Workers: workers,
		Machine: machine.Config{RAMFrames: 128},
		NIC:     nic.Config{NIPTPages: 64},
		Metrics: o.registry(),
	})
	o.setCosts(c.Nodes[0].Costs)
	defer c.Shutdown()

	pages := (size + addr.PageSize - 1) / addr.PageSize
	errs := make([]error, nodes)
	for i := 0; i < nodes; i++ {
		dst := (i + 1) % nodes
		pfns := make([]uint32, pages)
		for j := range pfns {
			pfns[j] = uint32(64 + j)
		}
		if err := udmalib.MapSendWindow(c.NICs[i], 0, dst, pfns); err != nil {
			return err
		}
		i := i
		c.Nodes[i].Kernel.Spawn(fmt.Sprintf("peer%d", i), func(p *kernel.Proc) {
			d, err := udmalib.Open(p, c.NICs[i], true)
			if err != nil {
				errs[i] = err
				return
			}
			va, _ := p.Alloc(size)
			p.WriteBuf(va, workload.Payload(size, byte(i+1)))
			errs[i] = d.Send(va, 0, size)
		})
	}
	if err := c.Run(1_000_000_000); err != nil {
		return err
	}
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("node %d: %w", i, err)
		}
	}
	// Drain through the cluster so deferred backplane mailboxes keep
	// flushing; per-node RunUntilIdle would strand undelivered mail.
	c.DrainHardware()
	for i := 0; i < nodes; i++ {
		s := c.NICs[i].Stats()
		fmt.Printf("node %d: sent %d B in %d packet(s), received %d B, clock %.0f µs\n",
			i, s.BytesSent, s.PacketsSent, s.BytesReceived,
			c.Nodes[i].Costs.Micros(c.Nodes[i].Clock.Now()))
	}
	c.PublishRollup()
	return nil
}

func scenarioShare(senders, size int, o *obs) error {
	fmt.Printf("# %d untrusting processes share one UDMA device (%d B messages)\n", senders, size)
	n := machine.New(0, machine.Config{
		Kernel:  kernel.Config{Quantum: 2000},
		Metrics: o.registry(),
	})
	o.setCosts(n.Costs)
	buf := device.NewBuffer("buf", uint32(senders+1), 4, 0)
	n.AttachDevice(buf, 0)
	defer n.Kernel.Shutdown()

	errs := make([]error, senders)
	retries := make([]uint64, senders)
	for i := 0; i < senders; i++ {
		i := i
		n.Kernel.Spawn(fmt.Sprintf("p%d", i), func(p *kernel.Proc) {
			d, err := udmalib.Open(p, buf, true)
			if err != nil {
				errs[i] = err
				return
			}
			va, _ := p.Alloc(size)
			p.WriteBuf(va, workload.Payload(size, byte(i+1)))
			for m := 0; m < 16; m++ {
				if err := d.Send(va, uint32(i)<<addr.PageShift, size); err != nil {
					errs[i] = err
					return
				}
			}
			retries[i] = d.Stats().Retries
		})
	}
	if err := n.Kernel.Run(sim.Forever); err != nil {
		return err
	}
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("process %d: %w", i, err)
		}
	}
	ks := n.Kernel.Stats()
	fmt.Printf("context switches: %d, I1 Invals: %d (one per switch)\n", ks.ContextSwitches, ks.Invals)
	for i := 0; i < senders; i++ {
		want := workload.Payload(size, byte(i+1))
		got := buf.Bytes(i*addr.PageSize, size)
		ok := true
		for j := range want {
			if got[j] != want[j] {
				ok = false
			}
		}
		fmt.Printf("process %d: %d retries, data intact: %v\n", i, retries[i], ok)
	}
	return nil
}

func scenarioAutoUpdate(o *obs) error {
	fmt.Println("# automatic update: plain stores propagate to a remote page, no initiation at all")
	c := cluster.New(cluster.Config{Nodes: 2, NIC: nic.Config{NIPTPages: 8}, Metrics: o.registry()})
	o.setCosts(c.Nodes[0].Costs)
	defer c.Shutdown()

	var sendErr error
	c.Nodes[0].Kernel.Spawn("writer", func(p *kernel.Proc) {
		// Export straight to raw remote frames 40.. (control plane).
		if err := udmalib.MapSendWindow(c.NICs[0], 0, 1, []uint32{40}); err != nil {
			sendErr = err
			return
		}
		src, _ := p.Alloc(addr.PageSize)
		if err := p.MapAutoUpdate(c.NICs[0], src, 1, 0); err != nil {
			sendErr = err
			return
		}
		start := p.Now()
		for i := uint32(0); i < 16; i++ {
			p.Store(src+addr.VAddr(i*4), 0x1000+i)
		}
		c.NICs[0].FlushAutoUpdate()
		fmt.Printf("16 plain stores published in %.1f µs of CPU time\n", p.Micros(p.Now()-start))
	})
	if err := c.Run(1_000_000_000); err != nil {
		return err
	}
	if sendErr != nil {
		return sendErr
	}
	st := c.NICs[0].Stats()
	fmt.Printf("snooped words: %d, combined packets: %d\n", st.AutoWords, st.AutoPackets)
	w, _ := c.Nodes[1].RAM.ReadWord(addr.FrameAddr(40))
	fmt.Printf("remote word 0 = %#x (want 0x1000)\n", w)
	c.PublishRollup()
	return nil
}

func scenarioFaults(seed uint64) error {
	fmt.Printf("# fault injection (seed %#x): rejections and completion failures vs bounded retry\n", seed)
	run := func() (*experiments.Result, string, error) {
		res, err := experiments.RunFaultInjectionSeeded(seed)
		if err != nil {
			return nil, "", err
		}
		var sb strings.Builder
		for _, t := range res.Tables {
			t.Render(&sb)
		}
		return res, sb.String(), nil
	}
	res, out1, err := run()
	if err != nil {
		return err
	}
	fmt.Print(out1)
	fmt.Println()
	for _, c := range res.Checks {
		mark := "PASS"
		if !c.Pass {
			mark = "FAIL"
		}
		fmt.Printf("  [%s] %s", mark, c.Name)
		if c.Detail != "" {
			fmt.Printf(" — %s", c.Detail)
		}
		fmt.Println()
	}
	for _, note := range res.Notes {
		fmt.Printf("  note: %s\n", note)
	}

	// The whole sweep — fault pattern included — must be a pure function
	// of the seed: rerun it and compare the rendered tables bit-exactly.
	_, out2, err := run()
	if err != nil {
		return err
	}
	if out1 != out2 {
		return fmt.Errorf("same seed produced different runs:\n--- first\n%s--- second\n%s", out1, out2)
	}
	fmt.Println("\nsecond run with the same seed reproduced every row exactly")
	if !res.Passed() {
		return fmt.Errorf("fault-recovery checks failed")
	}
	return nil
}

// scenarioLossy runs the lossy-wire sweep (E13): a two-node cluster
// whose backplane drops, corrupts, duplicates and reorders packets at
// seeded rates while the NIC's reliability sublayer (seq/ACK/CRC/
// retransmit/credits) recovers underneath. Like the faults scenario it
// runs the sweep twice and insists the rendered tables match
// bit-exactly — loss included, the run is a pure function of the seed.
func scenarioLossy(seed uint64) error {
	if seed == experiments.FaultSeed {
		seed = experiments.LossySeed // remap the faults-scenario default
	}
	fmt.Printf("# lossy wire (seed %#x): drop/corrupt/dup/reorder vs seq/ACK/retransmit/CRC\n", seed)
	run := func() (*experiments.Result, string, error) {
		res, err := experiments.RunLossyWireSeeded(seed)
		if err != nil {
			return nil, "", err
		}
		var sb strings.Builder
		for _, t := range res.Tables {
			t.Render(&sb)
		}
		return res, sb.String(), nil
	}
	res, out1, err := run()
	if err != nil {
		return err
	}
	fmt.Print(out1)
	fmt.Println()
	for _, c := range res.Checks {
		mark := "PASS"
		if !c.Pass {
			mark = "FAIL"
		}
		fmt.Printf("  [%s] %s", mark, c.Name)
		if c.Detail != "" {
			fmt.Printf(" — %s", c.Detail)
		}
		fmt.Println()
	}
	for _, note := range res.Notes {
		fmt.Printf("  note: %s\n", note)
	}

	_, out2, err := run()
	if err != nil {
		return err
	}
	if out1 != out2 {
		return fmt.Errorf("same seed produced different runs:\n--- first\n%s--- second\n%s", out1, out2)
	}
	fmt.Println("\nsecond run with the same seed reproduced every row exactly")
	if !res.Passed() {
		return fmt.Errorf("lossy-wire checks failed")
	}
	return nil
}

// scenarioIncast drives every node but node 0 to dump page-sized
// messages into node 0 across a routed fabric (-nodes, -topology),
// twice: once with every link throttled well below the receiver's bus
// rate — the fabric is the bottleneck and goodput flattens at the
// capacity of the victim router's inbound links — and once with ample
// links, where the receiver's bus is the bottleneck instead. The
// limited run then repeats, same arguments at a different worker
// count, and both fingerprints must reproduce bit-exactly: contention
// is resolved in merge order at barriers, not host arrival order.
func scenarioIncast(nodes int, topology string, workers int, o *obs) error {
	kind, err := interconnect.ParseKind(topology)
	if err != nil {
		return err
	}
	if nodes < 2 {
		nodes = 2
	}
	const messages = 6
	o.setCosts(machine.SHRIMP1996())
	fmt.Printf("# incast on a routed %d-node %s: %d senders × %d × 4096 B into node 0\n",
		nodes, kind, nodes-1, messages)

	limited, err := experiments.RunIncast(nodes, kind, experiments.ScaleLimitedBPC, messages, workers, o.registry())
	if err != nil {
		return err
	}
	ample, err := experiments.RunIncast(nodes, kind, 0, messages, workers, nil)
	if err != nil {
		return err
	}
	row := func(name string, r *experiments.IncastRun, bpc float64) {
		cap := "host rate"
		if bpc > 0 {
			cap = fmt.Sprintf("%.2f B/cyc", bpc)
		}
		fmt.Printf("%-8s links at %-10s goodput %.3f B/cyc, hot link %3.0f%% busy, queue wait %.2f Mcyc, peak queue %d, %d links used\n",
			name, cap, r.GoodputBPC, 100*r.HotFrac, float64(r.WaitCycles)/1e6, r.PeakQueue, r.LinksUsed)
	}
	row("limited", limited, experiments.ScaleLimitedBPC)
	row("ample", ample, 0)
	if limited.GoodputBPC < ample.GoodputBPC {
		fmt.Println("the throttled fabric is the bottleneck: extra offered load becomes link queueing, not goodput")
	}

	// Same arguments, different worker count: the routed fabric must be
	// a pure function of the workload, not of host scheduling.
	otherWorkers := 4
	if workers == otherWorkers {
		otherWorkers = 1
	}
	again, err := experiments.RunIncast(nodes, kind, experiments.ScaleLimitedBPC, messages, workers, nil)
	if err != nil {
		return err
	}
	if limited.Fingerprint != again.Fingerprint {
		return fmt.Errorf("same arguments produced different runs: %s vs %s",
			limited.Fingerprint, again.Fingerprint)
	}
	wide, err := experiments.RunIncast(nodes, kind, experiments.ScaleLimitedBPC, messages, otherWorkers, nil)
	if err != nil {
		return err
	}
	if limited.Fingerprint != wide.Fingerprint {
		return fmt.Errorf("workers %d and %d diverge: %s vs %s",
			workers, otherWorkers, limited.Fingerprint, wide.Fingerprint)
	}
	fmt.Printf("\nfingerprint %s reproduced exactly: rerun and a %d-worker run\n",
		limited.Fingerprint, otherWorkers)
	return nil
}

// scenarioServe runs one open-loop serving trial: internal/loadgen
// offers a seeded Poisson schedule of PIO, UDMA and multi-page traffic
// at a fixed rate across per-destination FIFO flows, and the SLO
// readout (achieved rate, goodput, per-class sojourn percentiles)
// prints at the end. The trial then reruns with the same seed — once
// serially, once on four cluster workers — and all three fingerprints
// must match: the serving subsystem is a pure function of its seed at
// any worker count.
func scenarioServe(seed uint64, nodes int, rate float64, o *obs) error {
	if seed == experiments.FaultSeed {
		seed = experiments.ServeSeed // remap the faults-scenario default
	}
	if nodes < 2 {
		nodes = 2
	}
	costs := machine.SHRIMP1996()
	o.setCosts(costs)
	run := func(workers int, reg *telemetry.Registry) (*loadgen.Result, error) {
		return loadgen.RunTrial(loadgen.TrialConfig{
			Config:  loadgen.Config{Nodes: nodes, Seed: seed, Rate: rate},
			Workers: workers,
			Metrics: reg,
		})
	}
	res, err := run(1, o.registry())
	if err != nil {
		return err
	}
	fmt.Printf("# open-loop serving (seed %#x): %d nodes, %d messages across %d flows\n",
		seed, nodes, res.Messages, res.Cfg.Flows)
	res.WriteTable(os.Stdout, costs)
	fmt.Printf("order violations %d, retries %d, credit stalls %d, retransmits %d\n",
		res.OrderViolations, res.Retries, res.CreditStalls, res.Retransmits)
	if res.AchievedRate < 0.9*res.OfferedRate {
		fmt.Println("the offered rate is past the saturation knee: queues grew and sojourn tails absorbed the backlog")
	} else {
		fmt.Println("the system kept up with the offered rate (below the saturation knee)")
	}

	again, err := run(1, nil)
	if err != nil {
		return err
	}
	if res.Fingerprint() != again.Fingerprint() {
		return fmt.Errorf("same seed produced different trials: %016x vs %016x",
			res.Fingerprint(), again.Fingerprint())
	}
	wide, err := run(4, nil)
	if err != nil {
		return err
	}
	if res.Fingerprint() != wide.Fingerprint() {
		return fmt.Errorf("workers 1 and 4 diverge: %016x vs %016x",
			res.Fingerprint(), wide.Fingerprint())
	}
	fmt.Printf("\nfingerprint %016x reproduced exactly: serial rerun and a 4-worker run\n", res.Fingerprint())
	return nil
}

// scenarioChurn runs the connection-churn workload: a live population
// of short-lived flows (each dying after a few messages, a fresh flow
// taking its slot), one NIPT entry per flow, against a bounded on-board
// NIPT cache over the host-memory backing table, with idle reliability
// state reclaimed at lockstep barriers. The readout shows what the
// cache costs — misses, evictions, refill cycles, sojourn tails — and
// proves the trial bit-exact across a rerun and a 4-worker run.
func scenarioChurn(seed uint64, nodes int, rate float64, capacity int, o *obs) error {
	if seed == experiments.FaultSeed {
		seed = experiments.ChurnSeed // remap the faults-scenario default
	}
	if nodes < 2 {
		nodes = 2
	}
	costs := machine.SHRIMP1996()
	o.setCosts(costs)
	run := func(workers int, reg *telemetry.Registry) (*loadgen.Result, error) {
		return loadgen.RunTrial(loadgen.TrialConfig{
			Config:           loadgen.Config{Nodes: nodes, Seed: seed, Rate: rate, Churn: true},
			Workers:          workers,
			NIPTCapacity:     capacity,
			NIPTRefillJitter: 64,
			IdleReclaimAge:   150_000,
			Metrics:          reg,
		})
	}
	res, err := run(1, o.registry())
	if err != nil {
		return err
	}
	capLabel := fmt.Sprint(capacity)
	if capacity == 0 {
		capLabel = "unbounded"
	}
	fmt.Printf("# connection churn (seed %#x): %d nodes, %d messages, %d live flows, NIPT capacity %s\n",
		seed, nodes, res.Messages, res.Cfg.ActiveFlows, capLabel)
	res.WriteTable(os.Stdout, costs)
	fmt.Printf("order violations %d, retries %d, credit stalls %d, retransmits %d\n",
		res.OrderViolations, res.Retries, res.CreditStalls, res.Retransmits)
	if capacity > 0 && res.NIPTMisses == 0 {
		fmt.Println("the cache held the whole working set: no refills were ever paid")
	}

	again, err := run(1, nil)
	if err != nil {
		return err
	}
	if res.Fingerprint() != again.Fingerprint() {
		return fmt.Errorf("same seed produced different trials: %016x vs %016x",
			res.Fingerprint(), again.Fingerprint())
	}
	wide, err := run(4, nil)
	if err != nil {
		return err
	}
	if res.Fingerprint() != wide.Fingerprint() {
		return fmt.Errorf("workers 1 and 4 diverge: %016x vs %016x",
			res.Fingerprint(), wide.Fingerprint())
	}
	fmt.Printf("\nfingerprint %016x reproduced exactly: serial rerun and a 4-worker run\n", res.Fingerprint())
	return nil
}

// scenarioChaos runs the open-loop serving trial under a seeded node
// crash–restart schedule (cluster.CrashPlan): whole nodes power off at
// lockstep barriers, peers fail fast to a typed DeliveryError, and the
// rebooted node's serving complement respawns from the host-memory
// progress state. The availability readout — crashes, downtime, dip
// depth, time-to-recover — prints with the per-class SLO table, then
// the trial reruns serially and on four workers and all fingerprints
// must match: chaos included, the trial is a pure function of its seed.
func scenarioChaos(seed uint64, nodes int, rate float64, o *obs) error {
	if seed == experiments.FaultSeed {
		seed = experiments.ChaosSeed // remap the faults-scenario default
	}
	if nodes < 2 {
		nodes = 2
	}
	costs := machine.SHRIMP1996()
	o.setCosts(costs)
	run := func(workers int, reg *telemetry.Registry) (*loadgen.Result, error) {
		return loadgen.RunTrial(loadgen.TrialConfig{
			Config:        loadgen.Config{Nodes: nodes, Seed: seed, Rate: rate},
			Workers:       workers,
			RetxTimeout:   6_000,
			RelMaxRetries: 3,
			Crash: cluster.CrashPlan{Seed: seed, MTBF: 400_000,
				MTTR: 150_000, FirstAt: 150_000, MaxCrashes: 2},
			Metrics: reg,
		})
	}
	res, err := run(1, o.registry())
	if err != nil {
		return err
	}
	fmt.Printf("# crash–restart chaos (seed %#x): %d nodes, %d messages under a seeded crash schedule\n",
		seed, nodes, res.Messages)
	res.WriteTable(os.Stdout, costs)
	if res.Crashes == 0 {
		return fmt.Errorf("the crash schedule never fired inside the trial's span; offer more load (-rate, default messages) or rerun with another -seed")
	}
	if res.Delivered+res.Failed != res.Messages {
		return fmt.Errorf("accounting across crashes: %d delivered + %d failed != %d offered",
			res.Delivered, res.Failed, res.Messages)
	}
	fmt.Printf("crash ledgers: %d B abandoned on crashed senders, %d B crash-dropped on the wire/boards\n",
		res.CrashAbandonedBytes, res.CrashDroppedBytes)

	again, err := run(1, nil)
	if err != nil {
		return err
	}
	if res.Fingerprint() != again.Fingerprint() {
		return fmt.Errorf("same seed produced different trials: %016x vs %016x",
			res.Fingerprint(), again.Fingerprint())
	}
	wide, err := run(4, nil)
	if err != nil {
		return err
	}
	if res.Fingerprint() != wide.Fingerprint() {
		return fmt.Errorf("workers 1 and 4 diverge: %016x vs %016x",
			res.Fingerprint(), wide.Fingerprint())
	}
	fmt.Printf("\nfingerprint %016x reproduced exactly: serial rerun and a 4-worker run\n", res.Fingerprint())
	return nil
}

// scenarioFuzz runs seeded randomized scenarios under simcheck's
// online invariant auditor — the command-line face of the deterministic
// simulation checker. A failure prints the violation list, the event
// trail and the one-command go-test repro.
func scenarioFuzz(seed uint64, count, workers int) error {
	if seed == experiments.FaultSeed {
		seed = 1 // the faults-scenario default is not a useful fuzz start
	}
	if count < 1 {
		count = 1
	}
	fmt.Printf("# simcheck fuzz: %d seed(s) starting at %d, auditing I1–I4 every window\n", count, seed)
	// Each seed is an independent simulation, so the sweep fans out over
	// host workers; reports come back (and print) in seed order.
	failures := 0
	for _, rep := range simcheck.Sweep(seed, count, workers, simcheck.Options{}) {
		fmt.Println(rep)
		if rep.Failed() {
			failures++
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d of %d seeds violated an invariant", failures, count)
	}
	return nil
}

func scenarioPaging(size int, o *obs) error {
	fmt.Printf("# UDMA sends while a pager thrashes memory (I2/I4 at work)\n")
	n := machine.New(0, machine.Config{RAMFrames: 48, Metrics: o.registry()})
	o.setCosts(n.Costs)
	buf := device.NewBuffer("buf", 8, 4, 0)
	n.AttachDevice(buf, 0)
	defer n.Kernel.Shutdown()

	var sendErr error
	n.Kernel.Spawn("sender", func(p *kernel.Proc) {
		d, err := udmalib.Open(p, buf, true)
		if err != nil {
			sendErr = err
			return
		}
		va, _ := p.Alloc(size)
		p.WriteBuf(va, workload.Payload(size, 5))
		for m := 0; m < 32 && sendErr == nil; m++ {
			sendErr = d.Send(va, 0, size)
		}
	})
	n.Kernel.Spawn("pager", workload.Pager(60, 40_000_000))
	if err := n.Kernel.Run(sim.Forever); err != nil {
		return err
	}
	if sendErr != nil {
		return sendErr
	}
	ks := n.Kernel.Stats()
	fmt.Printf("evictions: %d, page-ins: %d, I4 guard skips: %d, proxy faults: %d, pins: %d\n",
		ks.Evictions, ks.PageIns, ks.EvictionStallsI4, ks.ProxyFaults, ks.Pins)
	fmt.Println("no page was ever pinned for UDMA; the replacement sweep simply avoided in-flight frames")
	return nil
}

// scenarioContention drives many time-sliced senders through one UDMA
// controller so its request queue actually fills: transfer latency
// (enqueue to completion) and queue wait become distributions worth
// looking at, which is exactly what the telemetry histograms are for.
func scenarioContention(senders, size int, o *obs) error {
	const messages = 64
	fmt.Printf("# %d time-sliced senders push %d × %d B messages through one UDMA controller\n",
		senders, messages, size)
	n := machine.New(0, machine.Config{
		Kernel:  kernel.Config{Quantum: 2000},
		Metrics: o.registry(),
	})
	o.setCosts(n.Costs)
	if o.traceOut != "" {
		tr := trace.New(n.Clock, 4096)
		n.UDMA.SetTracer(tr)
		n.Kernel.SetTracer(tr)
		o.addSource("node0", tr)
	}
	buf := device.NewBuffer("buf", uint32(senders+1), 4, 0)
	n.AttachDevice(buf, 0)
	defer n.Kernel.Shutdown()

	errs := make([]error, senders)
	retries := make([]uint64, senders)
	for i := 0; i < senders; i++ {
		i := i
		n.Kernel.Spawn(fmt.Sprintf("p%d", i), func(p *kernel.Proc) {
			d, err := udmalib.Open(p, buf, true)
			if err != nil {
				errs[i] = err
				return
			}
			va, _ := p.Alloc(size)
			p.WriteBuf(va, workload.Payload(size, byte(i+1)))
			for m := 0; m < messages; m++ {
				if err := d.Send(va, uint32(i)<<addr.PageShift, size); err != nil {
					errs[i] = err
					return
				}
			}
			retries[i] = d.Stats().Retries
		})
	}
	if err := n.Kernel.Run(sim.Forever); err != nil {
		return err
	}
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("process %d: %w", i, err)
		}
	}
	var totalRetries uint64
	for _, r := range retries {
		totalRetries += r
	}
	us := n.UDMA.Stats()
	ks := n.Kernel.Stats()
	fmt.Printf("%d transfers completed in %.0f µs: %d retries, %d context switches, %d Invals\n",
		us.Completions, n.Micros(n.Clock.Now()), totalRetries,
		ks.ContextSwitches, ks.Invals)
	if o.registry() == nil {
		fmt.Println("(rerun with -metrics to see the latency distribution)")
	}
	return nil
}
