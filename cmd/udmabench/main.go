// Command udmabench regenerates every table and figure of the paper's
// evaluation (and the quantitative claims of its other sections) on the
// simulated SHRIMP machine, printing the same rows and series the paper
// reports plus pass/fail shape checks.
//
// Usage:
//
//	udmabench              # run every experiment
//	udmabench -exp e1      # run one experiment (e1..e10)
//	udmabench -list        # list experiments
//	udmabench -csv dir     # also write series/tables as CSV files
//	udmabench -json FILE   # write per-experiment headline metrics as JSON
//	udmabench -plot        # draw ASCII plots for series (Figure 8 etc.)
//	udmabench -workers N   # fan rate/seed sweeps inside experiments over N goroutines
//	udmabench -cpuprofile cpu.pprof -memprofile mem.pprof
//	                       # profile the run (e.g. -exp e14 for the parallel core)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"shrimp/internal/experiments"
)

func main() {
	// The real work lives in run() so profile teardown (deferred there)
	// happens before the process exits — os.Exit in main would truncate
	// the CPU profile.
	os.Exit(run())
}

func run() int {
	var (
		exp        = flag.String("exp", "", "run a single experiment id (e1..e10)")
		list       = flag.Bool("list", false, "list experiments and exit")
		csv        = flag.String("csv", "", "directory to write CSV output into")
		jsonOut    = flag.String("json", "", "write per-experiment headline metrics as JSON to this file")
		plot       = flag.Bool("plot", false, "render ASCII plots for series")
		workers    = flag.Int("workers", 1, "host goroutines for the sweeps inside experiments (results identical at any value)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file at exit")
	)
	flag.Parse()
	experiments.SetSweepWorkers(*workers)

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "udmabench: cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "udmabench: cpuprofile: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "udmabench: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "udmabench: memprofile: %v\n", err)
			}
		}()
	}

	if *list {
		for _, id := range experiments.IDs() {
			title, _ := experiments.Title(id)
			fmt.Printf("%-4s %s\n", id, title)
		}
		return 0
	}

	ids := experiments.IDs()
	if *exp != "" {
		ids = []string{*exp}
	}

	failed := 0
	var results []*experiments.Result
	for _, id := range ids {
		res, err := experiments.Run(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "udmabench: %s: %v\n", id, err)
			return 1
		}
		results = append(results, res)
		printResult(res, *plot)
		if *csv != "" {
			if err := writeCSV(*csv, res); err != nil {
				fmt.Fprintf(os.Stderr, "udmabench: csv: %v\n", err)
				return 1
			}
		}
		if !res.Passed() {
			failed++
		}
	}
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, results); err != nil {
			fmt.Fprintf(os.Stderr, "udmabench: json: %v\n", err)
			return 1
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "udmabench: %d experiment(s) failed their shape checks\n", failed)
		return 1
	}
	return 0
}

// jsonExperiment is the machine-readable record emitted per experiment:
// pass/fail plus the headline metrics, for CI regression tracking.
type jsonExperiment struct {
	ID      string             `json:"id"`
	Title   string             `json:"title"`
	Passed  bool               `json:"passed"`
	Checks  []jsonCheck        `json:"checks"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

type jsonCheck struct {
	Name   string `json:"name"`
	Pass   bool   `json:"pass"`
	Detail string `json:"detail,omitempty"`
}

func writeJSON(path string, results []*experiments.Result) error {
	out := make([]jsonExperiment, 0, len(results))
	for _, res := range results {
		je := jsonExperiment{
			ID:      res.ID,
			Title:   res.Title,
			Passed:  res.Passed(),
			Metrics: res.Metrics,
		}
		for _, c := range res.Checks {
			je.Checks = append(je.Checks, jsonCheck{Name: c.Name, Pass: c.Pass, Detail: c.Detail})
		}
		out = append(out, je)
	}
	return writeFile(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	})
}

func printResult(res *experiments.Result, plot bool) {
	rule := strings.Repeat("=", 72)
	fmt.Println(rule)
	fmt.Printf("%s — %s\n", strings.ToUpper(res.ID), res.Title)
	fmt.Printf("paper: %s\n", res.Paper)
	fmt.Println(rule)
	for _, t := range res.Tables {
		fmt.Println()
		t.Render(os.Stdout)
	}
	if plot {
		for _, s := range res.Series {
			fmt.Println()
			s.PlotASCII(os.Stdout, 64, 16)
		}
	}
	fmt.Println()
	for _, c := range res.Checks {
		mark := "PASS"
		if !c.Pass {
			mark = "FAIL"
		}
		fmt.Printf("  [%s] %s — %s\n", mark, c.Name, c.Detail)
	}
	for _, n := range res.Notes {
		fmt.Printf("  note: %s\n", n)
	}
	fmt.Println()
}

func writeCSV(dir string, res *experiments.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, s := range res.Series {
		path := filepath.Join(dir, fmt.Sprintf("%s_series%d.csv", res.ID, i))
		if err := writeFile(path, s.WriteCSV); err != nil {
			return err
		}
	}
	for i, t := range res.Tables {
		path := filepath.Join(dir, fmt.Sprintf("%s_table%d.csv", res.ID, i))
		if err := writeFile(path, t.WriteCSV); err != nil {
			return err
		}
	}
	return nil
}

func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
