package sim

import "testing"

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(12345), NewRNG(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero-seeded RNG is stuck at zero")
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestUint32nBounds(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		if v := r.Uint32n(32768); v >= 32768 {
			t.Fatalf("Uint32n(32768) = %d out of range", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %g out of [0,1)", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(3)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm(50) = %v is not a permutation", p)
		}
		seen[v] = true
	}
}

func TestIntnRoughlyUniform(t *testing.T) {
	r := NewRNG(42)
	const n, draws = 8, 80000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := draws / n
	for i, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Fatalf("bucket %d has %d draws, want about %d", i, c, want)
		}
	}
}
