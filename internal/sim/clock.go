// Package sim provides the deterministic simulation substrate used by
// every other package in this repository: a cycle-granular clock, an
// event queue for future hardware events (DMA completions, packet
// arrivals), a named cost model, and a seeded random number generator.
//
// All time in the simulator is expressed in CPU cycles of the simulated
// machine. The cost model carries the cycle frequency so results can be
// reported in seconds.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Cycles is a point in simulated time, or a duration, measured in CPU
// clock cycles of the simulated machine.
type Cycles uint64

// Forever is a sentinel meaning "no deadline".
const Forever Cycles = math.MaxUint64

// Event is a callback scheduled to fire at a particular simulated time.
type Event struct {
	At   Cycles
	Name string
	Fire func()

	seq   uint64 // tie-break so equal-time events fire in schedule order
	index int    // heap index; -1 once popped or cancelled
}

// Clock is the single source of simulated time. Components advance it
// as they consume cycles; scheduled events fire as time passes over
// them. Clock is not safe for concurrent use: the simulator is
// deterministic and single-threaded by design (see DESIGN.md §6).
type Clock struct {
	now    Cycles
	events eventHeap
	seq    uint64
}

// NewClock returns a clock at time zero with no pending events.
func NewClock() *Clock {
	return &Clock{}
}

// Now returns the current simulated time.
func (c *Clock) Now() Cycles { return c.now }

// Schedule registers fn to run when the clock reaches 'at'. If 'at' is
// in the past it fires on the next Advance (time never moves backward).
// The returned event may be passed to Cancel.
func (c *Clock) Schedule(at Cycles, name string, fn func()) *Event {
	if fn == nil {
		panic("sim: Schedule with nil func")
	}
	ev := &Event{At: at, Name: name, Fire: fn, seq: c.seq}
	c.seq++
	heap.Push(&c.events, ev)
	return ev
}

// ScheduleAfter registers fn to run delta cycles from now, saturating
// at Forever rather than wrapping around.
func (c *Clock) ScheduleAfter(delta Cycles, name string, fn func()) *Event {
	at := c.now + delta
	if at < c.now { // overflow
		at = Forever
	}
	return c.Schedule(at, name, fn)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (c *Clock) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	heap.Remove(&c.events, ev.index)
	ev.index = -1
}

// Advance moves time forward by delta cycles, firing any events whose
// time is reached, in time order (FIFO among equal times).
func (c *Clock) Advance(delta Cycles) {
	c.AdvanceTo(c.now + delta)
}

// AdvanceTo moves time forward to 'at', firing due events in order.
// Time never moves backward, but a deadline at or before the present
// still fires any events that are already due. Events scheduled by
// fired events are honored if they land within the window.
func (c *Clock) AdvanceTo(at Cycles) {
	if at < c.now {
		at = c.now
	}
	for len(c.events) > 0 && c.events[0].At <= at {
		ev := heap.Pop(&c.events).(*Event)
		ev.index = -1
		if ev.At > c.now {
			c.now = ev.At
		}
		ev.Fire()
	}
	if at > c.now {
		c.now = at
	}
}

// RunUntilIdle fires all pending events in order, advancing time to
// each, and returns the number fired. Useful for draining in-flight
// hardware activity at the end of a run.
func (c *Clock) RunUntilIdle() int {
	n := 0
	for len(c.events) > 0 {
		ev := heap.Pop(&c.events).(*Event)
		ev.index = -1
		if ev.At > c.now {
			c.now = ev.At
		}
		ev.Fire()
		n++
	}
	return n
}

// NextEventAt returns the time of the earliest pending event and true,
// or (0, false) if none is pending.
func (c *Clock) NextEventAt() (Cycles, bool) {
	if len(c.events) == 0 {
		return 0, false
	}
	return c.events[0].At, true
}

// Pending returns the number of scheduled, unfired events.
func (c *Clock) Pending() int { return len(c.events) }

func (c *Clock) String() string {
	return fmt.Sprintf("clock(now=%d, pending=%d)", c.now, len(c.events))
}

// eventHeap is a min-heap ordered by (At, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
