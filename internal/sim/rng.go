package sim

// RNG is a small, seedable, deterministic pseudo-random generator
// (xorshift64*). Every source of randomness in the simulator flows
// through one of these so runs are reproducible from a seed; we avoid
// math/rand so the stream is stable across Go releases.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with the given value. A zero seed
// is remapped to a fixed non-zero constant (xorshift state must be
// non-zero).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: RNG.Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint32n returns a uniform value in [0, n). It panics if n == 0.
func (r *RNG) Uint32n(n uint32) uint32 {
	if n == 0 {
		panic("sim: RNG.Uint32n with zero n")
	}
	return uint32(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Bool returns a pseudo-random boolean.
func (r *RNG) Bool() bool { return r.Uint64()&1 == 1 }
