package sim

import (
	"math"
	"testing"
)

func testModel() *CostModel {
	return &CostModel{
		CPUHz:           60e6,
		DMABytesPerCyc:  0.5,
		LinkBytesPerCyc: 4,
	}
}

func TestValidateAcceptsGoodModel(t *testing.T) {
	if err := testModel().Validate(); err != nil {
		t.Fatalf("Validate() = %v, want nil", err)
	}
}

func TestValidateRejectsBadFields(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*CostModel)
	}{
		{"zero CPUHz", func(m *CostModel) { m.CPUHz = 0 }},
		{"negative CPUHz", func(m *CostModel) { m.CPUHz = -1 }},
		{"zero DMA throughput", func(m *CostModel) { m.DMABytesPerCyc = 0 }},
		{"zero link throughput", func(m *CostModel) { m.LinkBytesPerCyc = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := testModel()
			tc.mut(m)
			if err := m.Validate(); err == nil {
				t.Fatal("Validate() = nil, want error")
			}
		})
	}
}

func TestSecondsAndMicros(t *testing.T) {
	m := testModel() // 60 MHz
	if got := m.Seconds(60e6); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("Seconds(60e6) = %g, want 1.0", got)
	}
	if got := m.Micros(60); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("Micros(60) = %g, want 1.0", got)
	}
}

func TestCyclesFromMicrosRoundTrip(t *testing.T) {
	m := testModel()
	c := m.CyclesFromMicros(2.8)
	if c != 168 { // 2.8us at 60MHz
		t.Fatalf("CyclesFromMicros(2.8) = %d, want 168", c)
	}
	if got := m.Micros(c); math.Abs(got-2.8) > 0.02 {
		t.Fatalf("round trip = %gus, want ~2.8us", got)
	}
}

func TestDMACycles(t *testing.T) {
	m := testModel() // 0.5 bytes/cycle
	cases := []struct {
		bytes int
		want  Cycles
	}{
		{0, 0}, {-5, 0}, {1, 2}, {4, 8}, {4096, 8192},
	}
	for _, tc := range cases {
		if got := m.DMACycles(tc.bytes); got != tc.want {
			t.Errorf("DMACycles(%d) = %d, want %d", tc.bytes, got, tc.want)
		}
	}
}

func TestDMACyclesRoundsUp(t *testing.T) {
	m := testModel()
	m.DMABytesPerCyc = 3
	if got := m.DMACycles(4); got != 2 {
		t.Fatalf("DMACycles(4) at 3 B/cyc = %d, want 2 (rounded up)", got)
	}
}

func TestLinkCycles(t *testing.T) {
	m := testModel() // 4 bytes/cycle
	if got := m.LinkCycles(4096); got != 1024 {
		t.Fatalf("LinkCycles(4096) = %d, want 1024", got)
	}
	if got := m.LinkCycles(0); got != 0 {
		t.Fatalf("LinkCycles(0) = %d, want 0", got)
	}
}

func TestDMABandwidth(t *testing.T) {
	m := testModel()
	want := 0.5 * 60e6 // 30 MB/s
	if got := m.DMABandwidth(); math.Abs(got-want) > 1 {
		t.Fatalf("DMABandwidth() = %g, want %g", got, want)
	}
}
