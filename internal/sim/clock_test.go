package sim

import (
	"testing"
	"testing/quick"
)

func TestClockStartsAtZero(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("new clock Now() = %d, want 0", c.Now())
	}
	if c.Pending() != 0 {
		t.Fatalf("new clock Pending() = %d, want 0", c.Pending())
	}
}

func TestAdvanceMovesTime(t *testing.T) {
	c := NewClock()
	c.Advance(100)
	if c.Now() != 100 {
		t.Fatalf("Now() = %d, want 100", c.Now())
	}
	c.Advance(0)
	if c.Now() != 100 {
		t.Fatalf("Advance(0) changed time to %d", c.Now())
	}
}

func TestAdvanceToNeverMovesBackward(t *testing.T) {
	c := NewClock()
	c.Advance(50)
	c.AdvanceTo(10)
	if c.Now() != 50 {
		t.Fatalf("AdvanceTo(past) moved time to %d, want 50", c.Now())
	}
}

func TestEventFiresAtScheduledTime(t *testing.T) {
	c := NewClock()
	var firedAt Cycles
	c.Schedule(42, "tick", func() { firedAt = c.Now() })

	c.Advance(41)
	if firedAt != 0 {
		t.Fatalf("event fired early at %d", firedAt)
	}
	c.Advance(1)
	if firedAt != 42 {
		t.Fatalf("event fired at %d, want 42", firedAt)
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	c := NewClock()
	var order []string
	c.Schedule(30, "c", func() { order = append(order, "c") })
	c.Schedule(10, "a", func() { order = append(order, "a") })
	c.Schedule(20, "b", func() { order = append(order, "b") })
	c.Advance(100)
	if got := len(order); got != 3 {
		t.Fatalf("fired %d events, want 3", got)
	}
	if order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("fire order = %v, want [a b c]", order)
	}
}

func TestEqualTimeEventsFireFIFO(t *testing.T) {
	c := NewClock()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		c.Schedule(5, "e", func() { order = append(order, i) })
	}
	c.Advance(5)
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events fired out of order: %v", order)
		}
	}
}

func TestScheduleAfterIsRelative(t *testing.T) {
	c := NewClock()
	c.Advance(100)
	fired := false
	c.ScheduleAfter(10, "rel", func() { fired = true })
	c.Advance(9)
	if fired {
		t.Fatal("relative event fired early")
	}
	c.Advance(1)
	if !fired {
		t.Fatal("relative event did not fire at now+10")
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	c := NewClock()
	fired := false
	ev := c.Schedule(10, "x", func() { fired = true })
	c.Cancel(ev)
	c.Advance(100)
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Double-cancel and nil-cancel are no-ops.
	c.Cancel(ev)
	c.Cancel(nil)
}

func TestCancelOneOfMany(t *testing.T) {
	c := NewClock()
	var order []string
	a := c.Schedule(10, "a", func() { order = append(order, "a") })
	c.Schedule(20, "b", func() { order = append(order, "b") })
	c.Schedule(30, "c", func() { order = append(order, "c") })
	c.Cancel(a)
	c.Advance(100)
	if len(order) != 2 || order[0] != "b" || order[1] != "c" {
		t.Fatalf("after cancel, order = %v, want [b c]", order)
	}
}

func TestEventFiringSchedulesEvent(t *testing.T) {
	c := NewClock()
	var times []Cycles
	c.Schedule(10, "first", func() {
		times = append(times, c.Now())
		c.ScheduleAfter(5, "second", func() {
			times = append(times, c.Now())
		})
	})
	c.Advance(100)
	if len(times) != 2 || times[0] != 10 || times[1] != 15 {
		t.Fatalf("chained events fired at %v, want [10 15]", times)
	}
}

func TestClockAdvancesToEventTimeBeforeFiring(t *testing.T) {
	c := NewClock()
	var seen Cycles
	c.Schedule(25, "e", func() { seen = c.Now() })
	c.Advance(100)
	if seen != 25 {
		t.Fatalf("event observed Now()=%d, want 25", seen)
	}
	if c.Now() != 100 {
		t.Fatalf("final Now()=%d, want 100", c.Now())
	}
}

func TestRunUntilIdle(t *testing.T) {
	c := NewClock()
	count := 0
	c.Schedule(10, "a", func() { count++ })
	c.Schedule(1000, "b", func() {
		count++
		c.ScheduleAfter(1, "c", func() { count++ })
	})
	n := c.RunUntilIdle()
	if n != 3 || count != 3 {
		t.Fatalf("RunUntilIdle fired %d (count %d), want 3", n, count)
	}
	if c.Now() != 1001 {
		t.Fatalf("Now() after drain = %d, want 1001", c.Now())
	}
}

func TestNextEventAt(t *testing.T) {
	c := NewClock()
	if _, ok := c.NextEventAt(); ok {
		t.Fatal("NextEventAt on empty clock returned ok")
	}
	c.Schedule(77, "e", func() {})
	at, ok := c.NextEventAt()
	if !ok || at != 77 {
		t.Fatalf("NextEventAt = (%d,%v), want (77,true)", at, ok)
	}
}

func TestScheduleNilFuncPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule(nil) did not panic")
		}
	}()
	NewClock().Schedule(1, "bad", nil)
}

// Property: for any set of scheduled times, events fire in nondecreasing
// time order and the clock never runs backward.
func TestEventOrderProperty(t *testing.T) {
	prop := func(deltas []uint16) bool {
		c := NewClock()
		var fired []Cycles
		for _, d := range deltas {
			at := Cycles(d)
			c.Schedule(at, "p", func() { fired = append(fired, c.Now()) })
		}
		c.RunUntilIdle()
		if len(fired) != len(deltas) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEventCancelsAnotherWhileFiring(t *testing.T) {
	// A firing event may cancel a later pending event; the heap must
	// stay consistent and the cancelled event must not fire.
	c := NewClock()
	var later *Event
	fired := []string{}
	c.Schedule(10, "first", func() {
		fired = append(fired, "first")
		c.Cancel(later)
	})
	later = c.Schedule(20, "later", func() { fired = append(fired, "later") })
	c.Schedule(30, "third", func() { fired = append(fired, "third") })
	c.RunUntilIdle()
	if len(fired) != 2 || fired[0] != "first" || fired[1] != "third" {
		t.Fatalf("fired %v, want [first third]", fired)
	}
}

func TestEventReschedulesItselfBounded(t *testing.T) {
	c := NewClock()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			c.ScheduleAfter(10, "tick", tick)
		}
	}
	c.ScheduleAfter(10, "tick", tick)
	c.RunUntilIdle()
	if count != 5 || c.Now() != 50 {
		t.Fatalf("count=%d now=%d, want 5 at 50", count, c.Now())
	}
}

func TestClockString(t *testing.T) {
	c := NewClock()
	c.Schedule(5, "e", func() {})
	c.Advance(3)
	if got := c.String(); got != "clock(now=3, pending=1)" {
		t.Fatalf("String() = %q", got)
	}
}
