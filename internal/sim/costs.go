package sim

import "fmt"

// CostModel names every cycle cost charged by the simulator. One
// instance describes one machine generation; machine.SHRIMP1996 is the
// calibrated configuration that reproduces the paper's published shape
// (see DESIGN.md §2 and EXPERIMENTS.md).
//
// All fields are in CPU cycles unless stated otherwise.
type CostModel struct {
	// CPUHz is the simulated core clock; it converts Cycles to seconds
	// for reporting. The SHRIMP nodes were 60 MHz Pentium Xpress PCs.
	CPUHz float64

	// --- CPU / memory system ---

	ALUOp        Cycles // one arithmetic/logic instruction
	MemRefHit    Cycles // load/store, TLB hit, cache-resident
	TLBMiss      Cycles // page-table walk added on a TLB miss
	UncachedRef  Cycles // load/store to an uncached (proxy / device) address
	FaultTrap    Cycles // fault detection + kernel entry (trap overhead)
	FaultHandler Cycles // generic fault bookkeeping inside the kernel

	// --- kernel paths ---

	// WriteThroughStore is the extra cost of a store to a page exported
	// for automatic update: such pages are write-through (the NIC
	// snoops the memory bus), so every store goes to the bus instead of
	// being absorbed by the cache.
	WriteThroughStore Cycles

	SyscallEntry   Cycles // user→kernel crossing (trap + save)
	SyscallExit    Cycles // kernel→user crossing (restore + return)
	ContextSwitch  Cycles // scheduler + register/address-space switch
	PinPage        Cycles // pin one physical page for traditional DMA
	UnpinPage      Cycles // unpin one physical page
	TranslatePage  Cycles // kernel software translation of one page
	BuildDescPage  Cycles // build one page entry of a DMA descriptor
	CopyPerWord    Cycles // kernel memcpy cost per 32-bit word (bounce buffers)
	InterruptEntry Cycles // device interrupt delivery + dispatch
	MapProxyPage   Cycles // create one proxy PTE in the proxy fault handler
	PageInLatency  Cycles // fetch one page from backing store (disk-ish)
	PageCleanCost  Cycles // write one dirty page to backing store

	// --- DMA engine / buses ---

	DMAStartup     Cycles  // engine arbitration + first-word latency per transfer
	DMABytesPerCyc float64 // burst-mode throughput of the I/O bus, bytes/cycle
	PIOWordCost    Cycles  // programmed-I/O store of one 32-bit word to a device

	// --- SHRIMP network interface ---

	NIPTLookup      Cycles  // index NIPT, form remote physical address
	PacketHeader    Cycles  // header assembly per packet
	PacketPerPage   Cycles  // per-packet launch overhead (FIFO + link entry)
	LinkBytesPerCyc float64 // backplane link throughput, bytes/cycle
	LinkLatency     Cycles  // per-hop routing latency
	RecvDMAStartup  Cycles  // receive-side EISA DMA engine startup per packet
}

// Validate reports a descriptive error if the model is unusable.
func (m *CostModel) Validate() error {
	switch {
	case m.CPUHz <= 0:
		return fmt.Errorf("sim: CostModel.CPUHz must be positive, got %g", m.CPUHz)
	case m.DMABytesPerCyc <= 0:
		return fmt.Errorf("sim: CostModel.DMABytesPerCyc must be positive, got %g", m.DMABytesPerCyc)
	case m.LinkBytesPerCyc <= 0:
		return fmt.Errorf("sim: CostModel.LinkBytesPerCyc must be positive, got %g", m.LinkBytesPerCyc)
	}
	return nil
}

// Seconds converts a cycle count to seconds under this model.
func (m *CostModel) Seconds(c Cycles) float64 {
	return float64(c) / m.CPUHz
}

// Micros converts a cycle count to microseconds under this model.
func (m *CostModel) Micros(c Cycles) float64 {
	return m.Seconds(c) * 1e6
}

// CyclesFromMicros converts microseconds to cycles (rounding up).
func (m *CostModel) CyclesFromMicros(us float64) Cycles {
	c := us * 1e-6 * m.CPUHz
	return Cycles(c + 0.999999)
}

// DMACycles returns the burst-mode bus occupancy for n bytes, excluding
// engine startup.
func (m *CostModel) DMACycles(n int) Cycles {
	if n <= 0 {
		return 0
	}
	return Cycles(float64(n)/m.DMABytesPerCyc + 0.999999)
}

// LinkCycles returns the wire time for n bytes on one backplane link.
func (m *CostModel) LinkCycles(n int) Cycles {
	if n <= 0 {
		return 0
	}
	return Cycles(float64(n)/m.LinkBytesPerCyc + 0.999999)
}

// LinkCyclesAt returns the wire time for n bytes on a link running at
// bytesPerCyc instead of the model's host-interface rate. Fabric
// topologies use this to give routed links their own capacity while
// the inject FIFO keeps draining at LinkBytesPerCyc.
func (m *CostModel) LinkCyclesAt(n int, bytesPerCyc float64) Cycles {
	if n <= 0 {
		return 0
	}
	if bytesPerCyc <= 0 {
		bytesPerCyc = m.LinkBytesPerCyc
	}
	return Cycles(float64(n)/bytesPerCyc + 0.999999)
}

// DMABandwidth returns the raw burst bandwidth in bytes/second.
func (m *CostModel) DMABandwidth() float64 {
	return m.DMABytesPerCyc * m.CPUHz
}
