package udmalib_test

import (
	"bytes"
	"errors"
	"testing"

	"shrimp/internal/addr"
	"shrimp/internal/device"
	"shrimp/internal/kernel"
	"shrimp/internal/machine"
	"shrimp/internal/udmalib"
)

func TestOpenWithoutAttachmentFails(t *testing.T) {
	n, _ := newNode(t, machine.Config{})
	stray := device.NewBuffer("stray", 2, 0, 0)
	var err error
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		_, err = udmalib.Open(p, stray, true)
	})
	run(t, n)
	if err == nil {
		t.Fatal("Open of unattached device succeeded")
	}
}

func TestBaseReturnsWindowAddress(t *testing.T) {
	n, buf := newNode(t, machine.Config{})
	var base addr.VAddr
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		d, _ := udmalib.Open(p, buf, true)
		base = d.Base()
	})
	run(t, n)
	if addr.VRegionOf(base) != addr.RegionDevProxy {
		t.Fatalf("Base() = %#x, not in device proxy space", uint32(base))
	}
}

func TestMaxRetriesSurfacesFailure(t *testing.T) {
	// A device that never frees (enormous latency) plus a bounded retry
	// budget must yield an error instead of spinning forever.
	n := machine.New(0, machine.Config{})
	slow := device.NewBuffer("slow", 8, 0, 1_000_000_000)
	n.AttachDevice(slow, 0)
	t.Cleanup(n.Kernel.Shutdown)

	var err error
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		d, _ := udmalib.Open(p, slow, true)
		tun := udmalib.DefaultTunables()
		tun.MaxRetries = 10
		d.SetTunables(tun)
		va, _ := p.Alloc(4096)
		// First send occupies the device for an eternity...
		if e := d.SendAsync(va, 0, 64); e != nil {
			err = e
			return
		}
		// ...second send exhausts its retries.
		err = d.Send(va, 512, 64)
	})
	if e := n.Kernel.RunFor(2_000_000_000); e != nil {
		t.Fatal(e)
	}
	if err == nil {
		t.Fatal("bounded retries did not surface an error")
	}
	var he *udmalib.HardError
	if errors.As(err, &he) {
		t.Fatalf("busy should not be a HardError: %v", err)
	}
}

func TestStatsAccumulate(t *testing.T) {
	n, buf := newNode(t, machine.Config{})
	var st udmalib.Stats
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		d, _ := udmalib.Open(p, buf, true)
		va, _ := p.Alloc(8192)
		p.WriteBuf(va, pattern(8192))
		d.Send(va, 0, 8192) // 2 pages
		d.Recv(va, 0, 64)   // 1 recv
		st = d.Stats()
	})
	run(t, n)
	if st.Sends != 1 || st.Recvs != 1 {
		t.Fatalf("sends/recvs = %d/%d", st.Sends, st.Recvs)
	}
	if st.Initiations != 3 {
		t.Fatalf("initiations = %d, want 3", st.Initiations)
	}
	if st.Polls == 0 {
		t.Fatal("no completion polls counted")
	}
}

func TestRecvAcrossDevicePages(t *testing.T) {
	// A device→memory transfer whose device range spans device-page
	// boundaries must split there too (the hardware clamps in both
	// spaces; the library continues from REMAINING-BYTES).
	n, buf := newNode(t, machine.Config{})
	payload := pattern(3 * 4096)
	buf.SetBytes(2048, payload)
	var got []byte
	var st udmalib.Stats
	var err2 error
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		d, _ := udmalib.Open(p, buf, true)
		va, _ := p.Alloc(3 * 4096)
		if err := d.Recv(va, 2048, len(payload)); err != nil {
			err2 = err
			return
		}
		st = d.Stats()
		got, err2 = p.ReadBuf(va, len(payload))
	})
	run(t, n)
	if err2 != nil {
		t.Fatal(err2)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("cross-device-page recv corrupted data")
	}
	// Device offsets 2048..14336: misaligned against the page-aligned
	// memory buffer → two clamps per page pair.
	if st.Initiations < 4 {
		t.Fatalf("initiations = %d, want >= 4 splits", st.Initiations)
	}
}

func TestHardErrorMessage(t *testing.T) {
	he := &udmalib.HardError{Op: "test"}
	if he.Error() == "" {
		t.Fatal("empty error message")
	}
}
