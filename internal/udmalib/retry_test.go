package udmalib_test

import (
	"bytes"
	"errors"
	"testing"

	"shrimp/internal/addr"
	"shrimp/internal/device"
	"shrimp/internal/kernel"
	"shrimp/internal/machine"
	"shrimp/internal/udmalib"
)

// newFaultyNode builds a node whose buffer device sits behind a fault
// injector.
func newFaultyNode(t *testing.T, cfg machine.Config) (*machine.Node, *device.Buffer, *device.Faulty) {
	t.Helper()
	n := machine.New(0, cfg)
	buf := device.NewBuffer("buf", 32, 4, 0)
	faulty := device.NewFaulty(buf)
	n.AttachDevice(faulty, 0)
	t.Cleanup(n.Kernel.Shutdown)
	return n, buf, faulty
}

func TestSendRetryRecoversFromCompletionFault(t *testing.T) {
	n, buf, faulty := newFaultyNode(t, machine.Config{})
	payload := pattern(1024)
	var err2 error
	var st udmalib.Stats
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		d, err := udmalib.Open(p, faulty, true)
		if err != nil {
			err2 = err
			return
		}
		va, _ := p.Alloc(4096)
		p.WriteBuf(va, payload)
		faulty.FailNext = 1 // first attempt fails at completion
		err2 = d.SendRetry(va, 0, len(payload), udmalib.DefaultRetryPolicy())
		st = d.Stats()
	})
	run(t, n)
	if err2 != nil {
		t.Fatal(err2)
	}
	if !bytes.Equal(buf.Bytes(0, len(payload)), payload) {
		t.Fatal("recovered send did not deliver")
	}
	if st.Failures == 0 || st.Backoffs != 1 {
		t.Fatalf("stats = %+v, want one observed failure and one backoff", st)
	}
}

func TestSendRetryRecoversFromRejection(t *testing.T) {
	n, buf, faulty := newFaultyNode(t, machine.Config{})
	payload := pattern(512)
	var err2 error
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		d, err := udmalib.Open(p, faulty, true)
		if err != nil {
			err2 = err
			return
		}
		va, _ := p.Alloc(4096)
		p.WriteBuf(va, payload)
		faulty.RejectNext = 1 // initiation LOAD reports error bits
		err2 = d.SendRetry(va, 0, len(payload), udmalib.DefaultRetryPolicy())
	})
	run(t, n)
	if err2 != nil {
		t.Fatal(err2)
	}
	if !bytes.Equal(buf.Bytes(0, len(payload)), payload) {
		t.Fatal("recovered send did not deliver")
	}
}

func TestSendRetryExhaustsOnPersistentFault(t *testing.T) {
	n, _, faulty := newFaultyNode(t, machine.Config{})
	var err2 error
	var st udmalib.Stats
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		d, err := udmalib.Open(p, faulty, true)
		if err != nil {
			err2 = err
			return
		}
		va, _ := p.Alloc(4096)
		p.WriteBuf(va, pattern(256))
		faulty.FailNext = 1 << 20 // persistently broken
		err2 = d.SendRetry(va, 0, 256, udmalib.RetryPolicy{MaxAttempts: 3, Backoff: 64})
		st = d.Stats()
	})
	run(t, n)
	var ex *udmalib.RetryExhaustedError
	if !errors.As(err2, &ex) {
		t.Fatalf("error = %v (%T), want *RetryExhaustedError", err2, err2)
	}
	if ex.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", ex.Attempts)
	}
	var hard *udmalib.HardError
	if !errors.As(err2, &hard) {
		t.Fatalf("exhaustion does not unwrap to the last HardError: %v", err2)
	}
	if hard.Status.DeviceErr() == 0 {
		t.Fatalf("last status carries no error bits: %v", hard.Status)
	}
	if st.Backoffs != 2 {
		t.Fatalf("backoffs = %d, want 2 (between 3 attempts)", st.Backoffs)
	}
}

// TestSendRetryPassesThroughNonTransferErrors: errors that are not
// hardware transfer failures (here, a segfault on an unmapped source)
// must not be retried.
func TestSendRetryPassesThroughNonTransferErrors(t *testing.T) {
	n, _, faulty := newFaultyNode(t, machine.Config{})
	var err2 error
	var st udmalib.Stats
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		d, err := udmalib.Open(p, faulty, true)
		if err != nil {
			err2 = err
			return
		}
		err2 = d.SendRetry(0x00F0_0000, 0, 64, udmalib.DefaultRetryPolicy())
		st = d.Stats()
	})
	run(t, n)
	if err2 == nil {
		t.Fatal("unmapped source did not error")
	}
	var ex *udmalib.RetryExhaustedError
	if errors.As(err2, &ex) {
		t.Fatalf("non-transfer error was retried to exhaustion: %v", err2)
	}
	if st.Backoffs != 0 {
		t.Fatalf("backoffs = %d on a non-retryable error", st.Backoffs)
	}
}

// TestWaitSurfacesCompletionFailure: a transfer accepted and initiated
// asynchronously whose completion later fails must surface that failure
// on the Wait poll via the status word's error bits.
func TestWaitSurfacesCompletionFailure(t *testing.T) {
	n, _, faulty := newFaultyNode(t, machine.Config{})
	var err2 error
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		d, err := udmalib.Open(p, faulty, true)
		if err != nil {
			err2 = err
			return
		}
		va, _ := p.Alloc(4096)
		p.WriteBuf(va, pattern(512))
		faulty.FailNext = 1
		if err := d.SendAsync(va, 0, 512); err != nil {
			err2 = err
			return
		}
		err2 = d.Wait(addr.VProxy(va))
	})
	run(t, n)
	var hard *udmalib.HardError
	if !errors.As(err2, &hard) {
		t.Fatalf("Wait returned %v (%T), want *HardError", err2, err2)
	}
	if hard.Op != "wait" || hard.Status.DeviceErr() == 0 {
		t.Fatalf("hard error = op %q status %v", hard.Op, hard.Status)
	}
}
