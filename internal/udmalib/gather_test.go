package udmalib_test

import (
	"bytes"
	"testing"

	"shrimp/internal/addr"
	"shrimp/internal/core"
	"shrimp/internal/kernel"
	"shrimp/internal/machine"
	"shrimp/internal/udmalib"
)

func TestSendGatherScattersSegments(t *testing.T) {
	n, buf := newNode(t, machine.Config{UDMA: core.Config{QueueDepth: 8}})
	var err2 error
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		d, _ := udmalib.Open(p, buf, true)
		va, _ := p.Alloc(4096)
		p.WriteBuf(va, pattern(1024))
		// Three non-contiguous pieces of the source page to three
		// non-contiguous device locations.
		err2 = d.SendGather([]udmalib.Segment{
			{VA: va, DevOff: 512, N: 128},
			{VA: va + 256, DevOff: 2048, N: 64},
			{VA: va + 512, DevOff: 8192, N: 256},
		})
	})
	run(t, n)
	if err2 != nil {
		t.Fatal(err2)
	}
	src := pattern(1024)
	if !bytes.Equal(buf.Bytes(512, 128), src[:128]) {
		t.Fatal("segment 1 wrong")
	}
	if !bytes.Equal(buf.Bytes(2048, 64), src[256:320]) {
		t.Fatal("segment 2 wrong")
	}
	if !bytes.Equal(buf.Bytes(8192, 256), src[512:768]) {
		t.Fatal("segment 3 wrong")
	}
}

func TestSendGatherSplitsAtPageBoundaries(t *testing.T) {
	n, buf := newNode(t, machine.Config{UDMA: core.Config{QueueDepth: 8}})
	var st udmalib.Stats
	var err2 error
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		d, _ := udmalib.Open(p, buf, true)
		va, _ := p.Alloc(2 * 4096)
		p.WriteBuf(va, pattern(8192))
		// One segment spanning two source pages.
		err2 = d.SendGather([]udmalib.Segment{{VA: va + 2048, DevOff: 0, N: 4096}})
		st = d.Stats()
	})
	run(t, n)
	if err2 != nil {
		t.Fatal(err2)
	}
	if st.Initiations != 2 {
		t.Fatalf("initiations = %d, want 2 (split at source page boundary)", st.Initiations)
	}
	if !bytes.Equal(buf.Bytes(0, 4096), pattern(8192)[2048:2048+4096]) {
		t.Fatal("split gather corrupted data")
	}
}

func TestSendGatherEmptyAndInvalid(t *testing.T) {
	n, buf := newNode(t, machine.Config{UDMA: core.Config{QueueDepth: 4}})
	var errEmpty, errBad error
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		d, _ := udmalib.Open(p, buf, true)
		va, _ := p.Alloc(4096)
		errEmpty = d.SendGather(nil)
		errBad = d.SendGather([]udmalib.Segment{{VA: va, DevOff: 0, N: 0}})
	})
	run(t, n)
	if errEmpty != nil {
		t.Fatalf("empty gather: %v", errEmpty)
	}
	if errBad == nil {
		t.Fatal("zero-length segment accepted")
	}
}

func TestSendGatherOnTinyQueueStillCompletes(t *testing.T) {
	n, buf := newNode(t, machine.Config{UDMA: core.Config{QueueDepth: 1}})
	var err2 error
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		d, _ := udmalib.Open(p, buf, true)
		va, _ := p.Alloc(4096)
		p.WriteBuf(va, pattern(4096))
		segs := make([]udmalib.Segment, 8)
		for i := range segs {
			segs[i] = udmalib.Segment{VA: va + addr.VAddr(i*256), DevOff: uint32(i * 512), N: 256}
		}
		err2 = d.SendGather(segs)
	})
	run(t, n)
	if err2 != nil {
		t.Fatal(err2)
	}
	src := pattern(4096)
	for i := 0; i < 8; i++ {
		if !bytes.Equal(buf.Bytes(i*512, 256), src[i*256:(i+1)*256]) {
			t.Fatalf("segment %d wrong with queue-full backpressure", i)
		}
	}
}
