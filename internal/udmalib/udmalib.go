// Package udmalib is the user-level library layered over the raw UDMA
// two-instruction sequence — the code path whose cost the paper
// measures at 2.8 µs per initiation ("the time to perform the
// two-instruction initiation sequence and check data alignment with
// regard to page boundaries").
//
// Like the SHRIMP implementation, Send "optimistically initiates
// transfers without regard for page boundaries, since they are enforced
// by the hardware. An additional transfer may be required if a page
// boundary is crossed": the library asks for the full remaining count,
// reads back how much the hardware accepted (the REMAINING-BYTES field
// of the initiating LOAD), and continues from there. Busy or
// context-switch-invalidated initiations are retried, which is the
// paper's recovery protocol for invariant I1.
package udmalib

import (
	"errors"
	"fmt"

	"shrimp/internal/addr"
	"shrimp/internal/core"
	"shrimp/internal/device"
	"shrimp/internal/kernel"
	"shrimp/internal/sim"
)

// Tunables model the library's CPU work per operation; they are
// calibrated so a one-page initiation costs ≈2.8 µs on the SHRIMP1996
// machine (two 1 µs uncached references plus this ALU work).
type Tunables struct {
	// SetupCycles is charged once per Send/Recv call: argument
	// marshaling, proxy-address computation, entry checks.
	SetupCycles sim.Cycles
	// CheckCycles is charged per initiation attempt: the alignment and
	// page-boundary bookkeeping.
	CheckCycles sim.Cycles
	// PollGapCycles is extra work per completion-poll iteration beyond
	// the status LOAD itself.
	PollGapCycles sim.Cycles
	// MaxRetries bounds initiation retries before giving up (a value
	// of 0 means retry forever, which is what production code does).
	MaxRetries int
}

// DefaultTunables matches the paper's measured initiation cost.
func DefaultTunables() Tunables {
	return Tunables{
		SetupCycles:   320, // ~5.3 µs per call at 60 MHz
		CheckCycles:   48,  // initiation path total ≈ 2×60+48 = 168 cy = 2.8 µs
		PollGapCycles: 4,
		MaxRetries:    0,
	}
}

// Stats counts library-level events.
type Stats struct {
	Sends       uint64
	Recvs       uint64
	Initiations uint64
	Retries     uint64
	Polls       uint64
	SplitPages  uint64 // extra transfers due to page-boundary crossings
	Failures    uint64 // transfers observed to fail (status error bits)
	Backoffs    uint64 // SendRetry backoff waits
}

// Dev is a process's handle to a mapped UDMA device.
type Dev struct {
	p    *kernel.Proc
	base addr.VAddr // virtual base of the device-proxy window
	tun  Tunables

	stats Stats
}

// Open maps the device into the process (one MapDevice syscall) and
// returns a handle using the default tunables.
func Open(p *kernel.Proc, dev device.Device, writable bool) (*Dev, error) {
	base, err := p.MapDevice(dev, writable)
	if err != nil {
		return nil, err
	}
	return &Dev{p: p, base: base, tun: DefaultTunables()}, nil
}

// SetTunables overrides the cost model of the library itself.
func (d *Dev) SetTunables(t Tunables) { d.tun = t }

// Base returns the virtual address of the device-proxy window.
func (d *Dev) Base() addr.VAddr { return d.base }

// Stats returns a copy of the counters.
func (d *Dev) Stats() Stats { return d.stats }

// HardError is a non-retryable initiation failure surfaced to the
// caller with the raw status word.
type HardError struct {
	Status core.Status
	Op     string
}

func (e *HardError) Error() string {
	return fmt.Sprintf("udmalib: %s failed: %v", e.Op, e.Status)
}

// Send transfers n bytes from process memory at va to device offset
// devOff, splitting at page boundaries and waiting for each transfer to
// complete before starting the next (the basic, queue-less machine
// accepts one at a time). It returns when the last transfer has
// completed.
func (d *Dev) Send(va addr.VAddr, devOff uint32, n int) error {
	return d.transfer(va, devOff, n, true, true)
}

// SendAsync is Send without the final completion wait: it returns as
// soon as the last transfer has been *initiated*. Use Wait to poll.
// For multi-page messages every transfer but the last is still waited
// on — the basic machine cannot overlap them.
func (d *Dev) SendAsync(va addr.VAddr, devOff uint32, n int) error {
	return d.transfer(va, devOff, n, true, false)
}

// Recv transfers n bytes from device offset devOff into process memory
// at va (devices that support device→memory UDMA only).
func (d *Dev) Recv(va addr.VAddr, devOff uint32, n int) error {
	return d.transfer(va, devOff, n, false, true)
}

// RetryPolicy bounds SendRetry: at most MaxAttempts total attempts,
// with an exponential backoff (Backoff, 2·Backoff, 4·Backoff, …
// simulated cycles of CPU delay) between them.
type RetryPolicy struct {
	MaxAttempts int
	Backoff     sim.Cycles
}

// DefaultRetryPolicy retries a handful of times starting from a short
// backoff — enough to ride out transient device faults without hiding a
// persistently broken endpoint.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, Backoff: 256}
}

// RetryExhaustedError reports that SendRetry gave up: every attempt
// failed with a hard (non-retryable) transfer error.
type RetryExhaustedError struct {
	Attempts int
	Last     error // the final attempt's HardError
}

func (e *RetryExhaustedError) Error() string {
	return fmt.Sprintf("udmalib: transfer still failing after %d attempts: %v", e.Attempts, e.Last)
}

// Unwrap exposes the last attempt's error for errors.Is/As.
func (e *RetryExhaustedError) Unwrap() error { return e.Last }

// SendRetry is Send with bounded recovery from per-transfer hardware
// failures: when a transfer is rejected or fails mid-flight (a
// HardError carrying the status word's error bits), the library backs
// off for an exponentially growing number of simulated cycles and
// re-sends the message, up to the policy's attempt budget. The resend
// restarts the whole message — UDMA transfers are idempotent page
// writes, so re-delivering already-arrived pages is safe. Errors that
// are not transfer failures (segfaults, bad arguments) are returned
// immediately.
func (d *Dev) SendRetry(va addr.VAddr, devOff uint32, n int, pol RetryPolicy) error {
	if pol.MaxAttempts <= 0 {
		pol.MaxAttempts = 1
	}
	backoff := pol.Backoff
	var last error
	for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
		err := d.Send(va, devOff, n)
		if err == nil {
			return nil
		}
		var hard *HardError
		if !errors.As(err, &hard) {
			return err
		}
		last = err
		if attempt+1 < pol.MaxAttempts && backoff > 0 {
			d.stats.Backoffs++
			d.p.Compute(backoff)
			backoff *= 2
		}
	}
	return &RetryExhaustedError{Attempts: pol.MaxAttempts, Last: last}
}

// QueuedSend initiates every page of the message back-to-back, relying
// on the hardware request queue of Section 7 ("queueing allows a
// user-level process to start multi-page transfers with only two
// instructions per page"), then waits once for the final transfer.
// On a queue-full status it re-issues the pending LOAD until the queue
// drains (the STORE half stays latched).
func (d *Dev) QueuedSend(va addr.VAddr, devOff uint32, n int) error {
	d.stats.Sends++
	d.p.Compute(d.tun.SetupCycles)
	var lastBase addr.VAddr
	for n > 0 {
		d.p.Compute(d.tun.CheckCycles)
		srcProxy := addr.VProxy(va)
		st, err := d.initiateQueued(d.base+addr.VAddr(devOff), srcProxy, n)
		if err != nil {
			return err
		}
		accepted := st.Remaining()
		if accepted <= 0 || accepted > n {
			return fmt.Errorf("udmalib: hardware accepted %d of %d bytes", accepted, n)
		}
		if accepted < n {
			d.stats.SplitPages++
		}
		lastBase = srcProxy
		va += addr.VAddr(accepted)
		devOff += uint32(accepted)
		n -= accepted
	}
	if lastBase != 0 {
		return d.Wait(lastBase)
	}
	return nil
}

// Segment is one piece of a gather/scatter transfer: N bytes from
// process memory at VA to device offset DevOff.
type Segment struct {
	VA     addr.VAddr
	DevOff uint32
	N      int
}

// SendGather queues a whole list of segments back-to-back through the
// hardware request queue — Section 7's gather-scatter: "Queueing has
// two additional advantages. First, it makes it easy to do
// gather-scatter transfers." The per-call setup is paid once; each
// segment costs two references (plus splits at page boundaries); the
// call returns when the final segment completes.
func (d *Dev) SendGather(segs []Segment) error {
	if len(segs) == 0 {
		return nil
	}
	d.stats.Sends++
	d.p.Compute(d.tun.SetupCycles)
	var lastBase addr.VAddr
	for _, seg := range segs {
		va, devOff, n := seg.VA, seg.DevOff, seg.N
		if n <= 0 {
			return fmt.Errorf("udmalib: gather segment of %d bytes", n)
		}
		for n > 0 {
			d.p.Compute(d.tun.CheckCycles)
			srcProxy := addr.VProxy(va)
			st, err := d.initiateQueued(d.base+addr.VAddr(devOff), srcProxy, n)
			if err != nil {
				return err
			}
			accepted := st.Remaining()
			if accepted <= 0 || accepted > n {
				return fmt.Errorf("udmalib: hardware accepted %d of %d bytes", accepted, n)
			}
			if accepted < n {
				d.stats.SplitPages++
			}
			lastBase = srcProxy
			va += addr.VAddr(accepted)
			devOff += uint32(accepted)
			n -= accepted
		}
	}
	if lastBase != 0 {
		return d.Wait(lastBase)
	}
	return nil
}

// initiateQueued runs the two-instruction sequence against a queued
// controller, re-issuing the LOAD alone on queue-full and redoing both
// halves after an Inval.
func (d *Dev) initiateQueued(destVA, srcVA addr.VAddr, n int) (core.Status, error) {
	st, err := d.initiateOnce(destVA, srcVA, n)
	if err != nil {
		return 0, err
	}
	for !st.Initiated() {
		if st.DeviceErr() == device.ErrQueueFull {
			d.stats.Retries++
			v, lerr := d.p.Load(srcVA)
			if lerr != nil {
				return 0, lerr
			}
			st = core.Status(v)
			continue
		}
		if st.Failed() {
			d.stats.Failures++
			return st, &HardError{Status: st, Op: "queued initiate"}
		}
		d.stats.Retries++
		st, err = d.initiateOnce(destVA, srcVA, n)
		if err != nil {
			return 0, err
		}
	}
	return st, nil
}

// Wait polls the status word at the given proxy virtual address until
// no transfer based there remains in flight — the paper's completion
// idiom: "the user process should repeat the LOAD instruction that it
// used to start the transfer." A transfer that was accepted but later
// failed (completion fault, dequeue rejection, kernel Terminate)
// surfaces here: the poll that observes the cleared MATCH flag carries
// the controller's latched error bits, and Wait returns a HardError.
func (d *Dev) Wait(proxyVA addr.VAddr) error {
	for {
		d.stats.Polls++
		v, err := d.p.Load(proxyVA)
		if err != nil {
			return err
		}
		st := core.Status(v)
		if !st.Match() {
			if st.DeviceErr() != 0 {
				d.stats.Failures++
				return &HardError{Status: st, Op: "wait"}
			}
			return nil
		}
		if d.tun.PollGapCycles > 0 {
			d.p.Compute(d.tun.PollGapCycles)
		}
	}
}

// transfer is the common Send/Recv path.
func (d *Dev) transfer(va addr.VAddr, devOff uint32, n int, toDevice, waitLast bool) error {
	if n <= 0 {
		return fmt.Errorf("udmalib: transfer of %d bytes", n)
	}
	if toDevice {
		d.stats.Sends++
	} else {
		d.stats.Recvs++
	}
	d.p.Compute(d.tun.SetupCycles)

	first := true
	for n > 0 {
		// Alignment/page-boundary bookkeeping: part of the measured
		// 2.8 µs initiation path.
		d.p.Compute(d.tun.CheckCycles)
		if !first {
			d.stats.SplitPages++
		}

		var destVA, srcVA addr.VAddr
		if toDevice {
			destVA = d.base + addr.VAddr(devOff)
			srcVA = addr.VProxy(va)
		} else {
			destVA = addr.VProxy(va)
			srcVA = d.base + addr.VAddr(devOff)
		}

		st, err := d.initiate(destVA, srcVA, n)
		if err != nil {
			return err
		}
		accepted := st.Remaining()
		if accepted <= 0 || accepted > n {
			return fmt.Errorf("udmalib: hardware accepted %d of %d bytes", accepted, n)
		}
		va += addr.VAddr(accepted)
		devOff += uint32(accepted)
		n -= accepted
		first = false

		if n > 0 || waitLast {
			if err := d.Wait(srcVA); err != nil {
				return err
			}
		}
	}
	return nil
}

// initiate runs the two-instruction sequence with the retry protocol.
func (d *Dev) initiate(destVA, srcVA addr.VAddr, n int) (core.Status, error) {
	for try := 0; ; try++ {
		st, err := d.initiateOnce(destVA, srcVA, n)
		if err != nil {
			return 0, err
		}
		if st.Initiated() {
			return st, nil
		}
		if st.Failed() {
			d.stats.Failures++
			return st, &HardError{Status: st, Op: "initiate"}
		}
		// Busy or invalidated: "the user process can deduce what
		// happened and re-try its operation."
		d.stats.Retries++
		if d.tun.MaxRetries > 0 && try >= d.tun.MaxRetries {
			return st, fmt.Errorf("udmalib: initiation still failing after %d retries: %v", try, st)
		}
		d.p.Compute(d.tun.PollGapCycles)
	}
}

func (d *Dev) initiateOnce(destVA, srcVA addr.VAddr, n int) (core.Status, error) {
	d.stats.Initiations++
	if err := d.p.Store(destVA, uint32(n)); err != nil {
		return 0, err
	}
	v, err := d.p.Load(srcVA)
	if err != nil {
		return 0, err
	}
	return core.Status(v), nil
}
