package udmalib

import (
	"fmt"

	"shrimp/internal/addr"
	"shrimp/internal/kernel"
	"shrimp/internal/nic"
)

// ExportBuffer is the receiver-side half of establishing a SHRIMP
// mapping: it pins the npages-page buffer at va into physical memory
// and returns the frame numbers a remote NIPT may name. In SHRIMP this
// is part of the mapping system call; incoming deliberate updates then
// land in these frames with no receiver CPU involvement.
func ExportBuffer(k *kernel.Kernel, p *kernel.Proc, va addr.VAddr, npages int) ([]uint32, error) {
	if addr.PageOff(va) != 0 {
		return nil, fmt.Errorf("udmalib: ExportBuffer at non-page-aligned %#x", uint32(va))
	}
	pfns := make([]uint32, 0, npages)
	for i := 0; i < npages; i++ {
		pfn, err := k.PinUserPage(p, addr.VPN(va)+uint32(i))
		if err != nil {
			// Unpin what we already pinned.
			for _, done := range pfns {
				k.UnpinUserPage(done)
			}
			return nil, err
		}
		pfns = append(pfns, pfn)
	}
	return pfns, nil
}

// MapSendWindow is the sender-side half: it installs consecutive NIPT
// entries naming the exported frames on the destination node, so that
// device-proxy pages [firstEntry, firstEntry+len(destPFNs)) form a
// contiguous send window. The sender process still needs Open to map
// the NIC's proxy pages into its address space.
func MapSendWindow(senderNIC *nic.Interface, firstEntry uint32, destNode int, destPFNs []uint32) error {
	for i, pfn := range destPFNs {
		err := senderNIC.SetNIPT(firstEntry+uint32(i), nic.NIPTEntry{
			Valid:    true,
			DestNode: destNode,
			DestPFN:  pfn,
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// WindowOff converts a NIPT entry index plus byte offset into the
// device offset Send expects.
func WindowOff(entry uint32, off uint32) uint32 {
	return entry<<addr.PageShift | off
}
