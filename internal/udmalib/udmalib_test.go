package udmalib_test

import (
	"bytes"
	"errors"
	"testing"

	"shrimp/internal/core"
	"shrimp/internal/device"
	"shrimp/internal/kernel"
	"shrimp/internal/machine"
	"shrimp/internal/sim"
	"shrimp/internal/udmalib"
)

func newNode(t *testing.T, cfg machine.Config) (*machine.Node, *device.Buffer) {
	t.Helper()
	n := machine.New(0, cfg)
	buf := device.NewBuffer("buf", 32, 4, 0) // 4-byte alignment like the NIC
	n.AttachDevice(buf, 0)
	t.Cleanup(n.Kernel.Shutdown)
	return n, buf
}

func run(t *testing.T, n *machine.Node) {
	t.Helper()
	if err := n.Kernel.Run(sim.Forever); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func pattern(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i*7 + 3)
	}
	return out
}

func TestSendSinglePage(t *testing.T) {
	n, buf := newNode(t, machine.Config{})
	payload := pattern(1024)
	var err2 error
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		d, err := udmalib.Open(p, buf, true)
		if err != nil {
			err2 = err
			return
		}
		va, _ := p.Alloc(4096)
		p.WriteBuf(va, payload)
		err2 = d.Send(va, 512, len(payload))
	})
	run(t, n)
	if err2 != nil {
		t.Fatal(err2)
	}
	if !bytes.Equal(buf.Bytes(512, len(payload)), payload) {
		t.Fatal("device contents wrong")
	}
}

func TestSendMultiPageSplits(t *testing.T) {
	n, buf := newNode(t, machine.Config{})
	payload := pattern(3 * 4096)
	var err2 error
	var stats udmalib.Stats
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		d, _ := udmalib.Open(p, buf, true)
		va, _ := p.Alloc(len(payload))
		p.WriteBuf(va, payload)
		err2 = d.Send(va, 0, len(payload))
		stats = d.Stats()
	})
	run(t, n)
	if err2 != nil {
		t.Fatal(err2)
	}
	if !bytes.Equal(buf.Bytes(0, len(payload)), payload) {
		t.Fatal("device contents wrong")
	}
	if stats.Initiations != 3 {
		t.Fatalf("initiations = %d, want 3 (one per page)", stats.Initiations)
	}
	if stats.SplitPages != 2 {
		t.Fatalf("splits = %d, want 2", stats.SplitPages)
	}
}

func TestSendMisalignedOffsetsUseTwoTransfersPerPage(t *testing.T) {
	// Source offset 2048, device offset 0: every 4 KB of payload spans
	// two source pages, so the hardware clamps twice per page pair —
	// the paper's "two transfers per page are needed" case.
	n, buf := newNode(t, machine.Config{})
	payload := pattern(8192)
	var stats udmalib.Stats
	var err2 error
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		d, _ := udmalib.Open(p, buf, true)
		va, _ := p.Alloc(3 * 4096)
		p.WriteBuf(va+2048, payload)
		err2 = d.Send(va+2048, 0, len(payload))
		stats = d.Stats()
	})
	run(t, n)
	if err2 != nil {
		t.Fatal(err2)
	}
	if !bytes.Equal(buf.Bytes(0, len(payload)), payload) {
		t.Fatal("device contents wrong")
	}
	// "If the source and destination addresses are not aligned to the
	// same offset on their respective pages, two transfers per page are
	// needed": 8 KB = 2 pages → 4 transfers (clamps alternate between
	// the source and destination page boundaries, 2 KB each).
	if stats.Initiations != 4 {
		t.Fatalf("initiations = %d, want 4", stats.Initiations)
	}
}

func TestRecvFromDevice(t *testing.T) {
	n, buf := newNode(t, machine.Config{})
	payload := pattern(2000)
	buf.SetBytes(100*4, payload) // aligned offset 400
	var got []byte
	var err2 error
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		d, _ := udmalib.Open(p, buf, true)
		va, _ := p.Alloc(4096)
		if err := d.Recv(va, 400, len(payload)); err != nil {
			err2 = err
			return
		}
		got, err2 = p.ReadBuf(va, len(payload))
	})
	run(t, n)
	if err2 != nil {
		t.Fatal(err2)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("received contents wrong")
	}
}

func TestHardErrorSurfaced(t *testing.T) {
	n, buf := newNode(t, machine.Config{})
	var err2 error
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		d, _ := udmalib.Open(p, buf, true)
		va, _ := p.Alloc(4096)
		// Misaligned length for a 4-byte-aligned device.
		err2 = d.Send(va+2, 0, 7)
	})
	run(t, n)
	var he *udmalib.HardError
	if !errors.As(err2, &he) {
		t.Fatalf("got %v, want HardError", err2)
	}
	if he.Status.DeviceErr()&device.ErrAlignment == 0 {
		t.Fatalf("status = %v, want alignment error", he.Status)
	}
}

func TestInitiationCostMatchesPaper(t *testing.T) {
	// The two-instruction initiation sequence plus alignment check must
	// cost ≈2.8 µs on the SHRIMP1996 machine (paper Section 8).
	n, buf := newNode(t, machine.Config{})
	var cost sim.Cycles
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		d, _ := udmalib.Open(p, buf, true)
		va, _ := p.Alloc(4096)
		p.WriteBuf(va, pattern(64))
		// Warm mappings so the measured pass is steady-state.
		d.Send(va, 0, 64)
		start := p.Now()
		d.SendAsync(va, 64, 64)
		cost = p.Now() - start
		d.Wait(0x4000_0000 | va)
	})
	run(t, n)
	us := n.Micros(cost)
	// SendAsync includes library setup; the paper's 2.8 µs covers the
	// initiation path. Setup (320cy=5.3µs) + check+2 refs (2.8µs) ≈ 8µs.
	if us < 2.8 || us > 12 {
		t.Fatalf("initiation path = %.2f µs, want between 2.8 and 12", us)
	}
}

func TestQueuedSendUsesQueue(t *testing.T) {
	n, buf := newNode(t, machine.Config{UDMA: core.Config{QueueDepth: 8}})
	payload := pattern(4 * 4096)
	var err2 error
	var stats udmalib.Stats
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		d, _ := udmalib.Open(p, buf, true)
		va, _ := p.Alloc(len(payload))
		p.WriteBuf(va, payload)
		err2 = d.QueuedSend(va, 0, len(payload))
		stats = d.Stats()
	})
	run(t, n)
	if err2 != nil {
		t.Fatal(err2)
	}
	if !bytes.Equal(buf.Bytes(0, len(payload)), payload) {
		t.Fatal("device contents wrong")
	}
	if stats.Initiations != 4 {
		t.Fatalf("initiations = %d, want 4", stats.Initiations)
	}
}

func TestQueuedSendHandlesQueueFull(t *testing.T) {
	n, buf := newNode(t, machine.Config{UDMA: core.Config{QueueDepth: 1}})
	payload := pattern(6 * 4096)
	var err2 error
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		d, _ := udmalib.Open(p, buf, true)
		va, _ := p.Alloc(len(payload))
		p.WriteBuf(va, payload)
		err2 = d.QueuedSend(va, 0, len(payload))
	})
	run(t, n)
	if err2 != nil {
		t.Fatal(err2)
	}
	if !bytes.Equal(buf.Bytes(0, len(payload)), payload) {
		t.Fatal("device contents wrong with tiny queue")
	}
}

func TestQueuedSendFasterThanSerialSend(t *testing.T) {
	elapsed := func(queued bool) sim.Cycles {
		cfg := machine.Config{}
		if queued {
			cfg.UDMA = core.Config{QueueDepth: 16}
		}
		n, buf := newNode(t, cfg)
		var took sim.Cycles
		n.Kernel.Spawn("p", func(p *kernel.Proc) {
			d, _ := udmalib.Open(p, buf, true)
			va, _ := p.Alloc(8 * 4096)
			p.WriteBuf(va, pattern(8*4096))
			start := p.Now()
			if queued {
				d.QueuedSend(va, 0, 8*4096)
			} else {
				d.Send(va, 0, 8*4096)
			}
			took = p.Now() - start
		})
		run(t, n)
		return took
	}
	q, s := elapsed(true), elapsed(false)
	if q >= s {
		t.Fatalf("queued send (%d) not faster than serial (%d)", q, s)
	}
}

func TestSendRejectsBadSizes(t *testing.T) {
	n, buf := newNode(t, machine.Config{})
	var e1, e2 error
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		d, _ := udmalib.Open(p, buf, true)
		va, _ := p.Alloc(4096)
		e1 = d.Send(va, 0, 0)
		e2 = d.Send(va, 0, -4)
	})
	run(t, n)
	if e1 == nil || e2 == nil {
		t.Fatal("zero/negative sizes accepted")
	}
}

func TestWindowOff(t *testing.T) {
	if udmalib.WindowOff(3, 100) != 3*4096+100 {
		t.Fatal("WindowOff arithmetic wrong")
	}
}
