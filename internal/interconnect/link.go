package interconnect

import (
	"fmt"

	"shrimp/internal/sim"
)

// A link is one directed fabric channel between adjacent routers. It
// is a busy-until reservation, exactly like the per-sender inject
// FIFO: a packet entering at t starts at max(t, free) and holds the
// link for its wire time, so packets queued behind it form a FIFO in
// charge order. Contention is only ever charged in the deterministic
// (arrive, src, seq) merge order (or at Send time in immediate mode,
// which is single-threaded by contract), so link state never races.
type link struct {
	free sim.Cycles // busy-until horizon
	busy uint64     // cycles the link spent moving bytes
	wait uint64     // cycles packets spent queued behind it
	pkts uint64     // packets that crossed it
	peak uint64     // deepest FIFO queue observed at entry
}

// Directions index the four outgoing links of a router.
const (
	dirPosX = 0
	dirNegX = 1
	dirPosY = 2
	dirNegY = 3
)

// linkIndex maps a (router, adjacent router) pair to its slot in the
// Backplane's link array. Torus wrap crossings count as motion in the
// direction of travel, so a 2-wide ring keeps its two opposite links
// distinct.
func (t Topology) linkIndex(cur, next int) int {
	cx, cy := t.Coord(cur)
	nx, ny := t.Coord(next)
	var dir int
	switch {
	case ny == cy && (nx-cx == 1 || (cx == t.Width-1 && nx == 0)):
		dir = dirPosX
	case ny == cy && (cx-nx == 1 || (nx == t.Width-1 && cx == 0)):
		dir = dirNegX
	case nx == cx && (ny-cy == 1 || (cy == t.Height()-1 && ny == 0)):
		dir = dirPosY
	case nx == cx && (cy-ny == 1 || (ny == t.Height()-1 && cy == 0)):
		dir = dirNegY
	default:
		panic(fmt.Sprintf("interconnect: routers %d and %d are not adjacent", cur, next))
	}
	return cur*4 + dir
}

// linkPeer returns the router a link slot points at.
func (t Topology) linkPeer(slot int) int {
	cur, dir := slot/4, slot%4
	cx, cy := t.Coord(cur)
	w, h := t.Width, t.Height()
	switch dir {
	case dirPosX:
		return cy*w + (cx+1)%w
	case dirNegX:
		return cy*w + (cx-1+w)%w
	case dirPosY:
		return ((cy+1)%h)*w + cx
	default:
		return ((cy-1+h)%h)*w + cx
	}
}

// fabricCycles is the wire time for n bytes on one routed fabric link,
// at the topology's capacity (falling back to the host-interface rate).
func (b *Backplane) fabricCycles(n int) sim.Cycles {
	return b.costs.LinkCyclesAt(n, b.topo.LinkBytesPerCyc)
}

// zeroLoadFlight is the uncontended fabric traversal time from src to
// dst: one LinkLatency per routed link plus the trailing wire time.
// Loopback (src == dst) still crosses the local router once, matching
// the historical Hops(src,src) == 1.
func (b *Backplane) zeroLoadFlight(src, dst int, payload int) sim.Cycles {
	hops := b.topo.PathLen(src, dst)
	if hops == 0 {
		hops = 1
	}
	return sim.Cycles(hops)*b.costs.LinkLatency + b.fabricCycles(payload)
}

// chargeArrival walks pkt's routed path, charging busy-until occupancy
// on every directed link, and returns the contention-adjusted arrival.
// at is the zero-load arrival including any fault-plan extra delay;
// contention can only push the arrival later, never earlier, so the
// Chandy–Misra bound derived from zero-load flight time stays
// conservative. Loopback packets never touch fabric links.
//
// The walk enters the fabric at the inject start (pkt.LaunchedAt); the
// fault-plan extra — at minus the zero-load arrival — is re-applied
// downstream of the walk, so a "late" packet still holds its normal
// link slots and traffic launched after it can overtake it (the delay
// fault must be able to reorder deliveries, not just shift them).
func (b *Backplane) chargeArrival(pkt *Packet, at sim.Cycles) sim.Cycles {
	src, dst := pkt.Src, pkt.Dst
	if src == dst {
		return at
	}
	wire := b.fabricCycles(len(pkt.Payload))
	extra := at - pkt.LaunchedAt - b.zeroLoadFlight(src, dst, len(pkt.Payload))
	t := pkt.LaunchedAt
	cur := src
	for cur != dst {
		next := b.topo.NextHop(cur, dst)
		l := &b.links[b.topo.linkIndex(cur, next)]
		start := t
		if l.free > start {
			start = l.free
			l.wait += uint64(start - t)
			q := uint64(1)
			if wire > 0 {
				q = uint64((start - t + wire - 1) / wire)
			}
			if q > l.peak {
				l.peak = q
			}
		}
		l.free = start + wire
		l.busy += uint64(wire)
		l.pkts++
		t = start + b.costs.LinkLatency
		cur = next
	}
	return t + wire + extra
}

// LinkStat is one directed link's lifetime telemetry.
type LinkStat struct {
	From, To   int        // router ids (node i sits at router i)
	BusyCycles uint64     // cycles spent moving bytes
	WaitCycles uint64     // cycles packets queued behind the link
	Packets    uint64     // packets that crossed it
	PeakQueue  uint64     // deepest FIFO backlog observed at entry
	FreeAt     sim.Cycles // busy-until horizon at snapshot time
}

// LinkStats returns per-link telemetry for every link that carried at
// least one packet, in deterministic (router, direction) order. It is
// a pure observation: reading it never perturbs timing.
func (b *Backplane) LinkStats() []LinkStat {
	var out []LinkStat
	for i := range b.links {
		l := &b.links[i]
		if l.pkts == 0 {
			continue
		}
		out = append(out, LinkStat{
			From:       i / 4,
			To:         b.topo.linkPeer(i),
			BusyCycles: l.busy,
			WaitCycles: l.wait,
			Packets:    l.pkts,
			PeakQueue:  l.peak,
			FreeAt:     l.free,
		})
	}
	return out
}

// Topology returns the fabric declaration the backplane was built over
// (width resolved).
func (b *Backplane) Topology() Topology { return b.topo }
