package interconnect

import "fmt"

// Kind names a fabric shape.
type Kind uint8

const (
	// KindMesh is a 2D mesh: no wraparound, dimension-order routes
	// clamp at the edges.
	KindMesh Kind = iota
	// KindTorus is a 2D torus: each row and column closes into a
	// ring, and routes take the shorter way around (ties go in the
	// positive direction, deterministically).
	KindTorus
)

func (k Kind) String() string {
	switch k {
	case KindMesh:
		return "mesh"
	case KindTorus:
		return "torus"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// ParseKind maps a user-facing topology name to its Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "mesh":
		return KindMesh, nil
	case "torus":
		return KindTorus, nil
	default:
		return 0, fmt.Errorf("interconnect: unknown topology %q (want mesh or torus)", s)
	}
}

// Topology declares the routed fabric a Backplane is built over: the
// shape, how many nodes will attach, the router-grid width, and the
// per-link capacity. It is fixed at construction — Attach no longer
// infers or reshapes the grid as endpoints join.
//
// Node i sits at router (i%Width, i/Width). The router grid is always
// a full Width×Height rectangle even when Nodes does not fill the last
// row; routes may transit routers with no attached node.
type Topology struct {
	Kind  Kind
	Nodes int
	// Width is the router-grid width. Zero means ceil(sqrt(Nodes)),
	// the near-square default.
	Width int
	// LinkBytesPerCyc is the capacity of each directed fabric link in
	// bytes per cycle. Zero means the cost model's LinkBytesPerCyc
	// (the host-interface rate), i.e. a fabric no slower than the
	// NIC's inject path.
	LinkBytesPerCyc float64
}

// Mesh declares an n-node 2D mesh with the near-square default width.
func Mesh(nodes int) Topology { return Topology{Kind: KindMesh, Nodes: nodes} }

// Torus declares an n-node 2D torus with the near-square default width.
func Torus(nodes int) Topology { return Topology{Kind: KindTorus, Nodes: nodes} }

// normalized returns t with the default width filled in. It panics on
// an unbuildable declaration — topology is wiring, not input.
func (t Topology) normalized() Topology {
	if t.Nodes < 1 {
		panic(fmt.Sprintf("interconnect: topology declares %d nodes", t.Nodes))
	}
	if t.Width == 0 {
		t.Width = isqrtCeil(t.Nodes)
	}
	if t.Width < 1 {
		panic(fmt.Sprintf("interconnect: topology width %d", t.Width))
	}
	if t.LinkBytesPerCyc < 0 {
		panic(fmt.Sprintf("interconnect: negative link capacity %g", t.LinkBytesPerCyc))
	}
	return t
}

// isqrtCeil returns ceil(sqrt(n)) for n ≥ 1 without touching floats.
func isqrtCeil(n int) int {
	w := 1
	for w*w < n {
		w++
	}
	return w
}

// Height is the router-grid height: enough full rows to hold Nodes.
func (t Topology) Height() int {
	return (t.Nodes + t.Width - 1) / t.Width
}

// Routers is the size of the (always rectangular) router grid.
func (t Topology) Routers() int { return t.Width * t.Height() }

// Coord returns router r's grid coordinates.
func (t Topology) Coord(r int) (x, y int) { return r % t.Width, r / t.Width }

// ringStep picks the dimension-order direction from c toward d on a
// ring of size n: +1 forward, -1 backward, 0 in place. The torus takes
// the shorter way; a tie deterministically goes forward.
func ringStep(c, d, n int) int {
	if c == d {
		return 0
	}
	fwd := (d - c + n) % n
	bwd := n - fwd
	if fwd <= bwd {
		return +1
	}
	return -1
}

// meshStep is ringStep without wraparound.
func meshStep(c, d int) int {
	switch {
	case c < d:
		return +1
	case c > d:
		return -1
	default:
		return 0
	}
}

// NextHop returns the router after cur on the dimension-order (XY)
// route to dst: correct the X coordinate fully, then Y. cur == dst is
// a caller bug.
func (t Topology) NextHop(cur, dst int) int {
	cx, cy := t.Coord(cur)
	dx, dy := t.Coord(dst)
	w, h := t.Width, t.Height()
	var sx, sy int
	if t.Kind == KindTorus {
		sx, sy = ringStep(cx, dx, w), ringStep(cy, dy, h)
	} else {
		sx, sy = meshStep(cx, dx), meshStep(cy, dy)
	}
	if sx != 0 {
		return cy*w + (cx+sx+w)%w
	}
	if sy != 0 {
		return ((cy+sy+h)%h)*w + cx
	}
	panic(fmt.Sprintf("interconnect: NextHop(%d, %d) with cur == dst", cur, dst))
}

// PathLen returns the number of directed links on the XY route from
// src to dst (0 when src == dst).
func (t Topology) PathLen(src, dst int) int {
	sx, sy := t.Coord(src)
	dx, dy := t.Coord(dst)
	if t.Kind == KindTorus {
		return ringDist(sx, dx, t.Width) + ringDist(sy, dy, t.Height())
	}
	return abs(dx-sx) + abs(dy-sy)
}

// ringDist is the shorter ring distance between c and d on a ring of n.
func ringDist(c, d, n int) int {
	fwd := (d - c + n) % n
	if bwd := n - fwd; bwd < fwd {
		return bwd
	}
	return fwd
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
