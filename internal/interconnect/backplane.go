// Package interconnect models the Intel Paragon routing backplane that
// connects SHRIMP nodes: a 2D mesh with per-hop routing latency,
// per-link bandwidth, and in-order delivery between any pair of nodes.
//
// Each node simulates on its own clock (see DESIGN.md §6 and
// internal/cluster): a packet launched at sender-time T arrives at the
// receiver at max(receiver-now, T + flight time). Injection is
// serialized per sender — one outgoing FIFO drains into the network at
// link speed — which is what bounds back-to-back page sends.
package interconnect

import (
	"fmt"
	"math"

	"shrimp/internal/addr"
	"shrimp/internal/sim"
	"shrimp/internal/trace"
)

// PacketKind distinguishes data-bearing packets from the reliability
// layer's control traffic. The zero value is PktData so pre-reliability
// code (and tests) that build bare packets keep working.
type PacketKind uint8

const (
	PktData PacketKind = iota // deliberate-update payload
	PktAck                    // cumulative acknowledgment, no payload
)

func (k PacketKind) String() string {
	if k == PktAck {
		return "ack"
	}
	return "data"
}

// Packet is one deliberate-update message on the wire: a destination
// physical memory address on the destination node plus payload bytes.
// The Kind/Epoch/Seq/Ack/Window/CRC fields are the reliable-delivery
// header added by internal/nic; they ride along untouched (except by
// deliberate corruption) and are zero when reliability is disabled.
type Packet struct {
	Src, Dst int
	DestAddr addr.PAddr // physical memory address on the destination node
	Payload  []byte

	Kind   PacketKind
	Epoch  uint32 // connection incarnation; bumped when a link is declared broken
	Seq    uint64 // per-(src,dst) data sequence number, first packet is 1
	Ack    uint64 // cumulative: every seq <= Ack has been delivered
	Window uint32 // receiver credits: data packets it can buffer beyond Ack
	CRC    uint32 // IEEE CRC32 over header fields + payload

	// Retrans marks a sender retransmission (for wire accounting); Dup
	// marks a fabric-created duplicate delivery.
	Retrans bool
	Dup     bool

	// LaunchedAt is the sender-clock time the packet entered the
	// network; ArrivedAt is filled in (receiver clock) at delivery.
	LaunchedAt sim.Cycles
	ArrivedAt  sim.Cycles
}

// Endpoint is a network interface attached to the backplane.
type Endpoint interface {
	// NodeID returns the endpoint's node number.
	NodeID() int
	// NodeClock returns the clock deliveries should be scheduled on.
	NodeClock() *sim.Clock
	// DeliverPacket is invoked on the receiver's clock when the packet
	// arrives.
	DeliverPacket(pkt *Packet)
}

// Backplane is the mesh. Attach every endpoint before sending.
type Backplane struct {
	costs *sim.CostModel
	eps   map[int]Endpoint
	width int // mesh width for hop counting; recomputed on Attach

	injectFree map[int]sim.Cycles // per-sender outgoing FIFO free time

	packets      uint64
	bytes        uint64
	retransPkts  uint64
	retransBytes uint64

	plan    FaultPlan
	links   map[[2]int]*linkFault
	fstats  FaultStats
	tracers map[int]*trace.Tracer // per-sender wire anomaly tracers
}

// New returns an empty backplane using the given cost model for link
// timing.
func New(costs *sim.CostModel) *Backplane {
	if costs == nil {
		panic("interconnect: New requires a cost model")
	}
	return &Backplane{
		costs:      costs,
		eps:        make(map[int]Endpoint),
		injectFree: make(map[int]sim.Cycles),
		links:      make(map[[2]int]*linkFault),
		tracers:    make(map[int]*trace.Tracer),
	}
}

// SetFaultPlan installs (or, with the zero plan, clears) the wire fault
// model. Call before traffic starts: per-link RNG streams reset.
func (b *Backplane) SetFaultPlan(plan FaultPlan) {
	b.plan = plan
	b.links = make(map[[2]int]*linkFault)
}

// Plan returns the installed fault plan.
func (b *Backplane) Plan() FaultPlan { return b.plan }

// SetTracer attaches a tracer recording wire anomalies (drops, dups,
// corruptions, delays, flaps) for packets *sent by* the given node, on
// that node's clock. nil detaches.
func (b *Backplane) SetTracer(node int, tr *trace.Tracer) {
	if tr == nil {
		delete(b.tracers, node)
		return
	}
	b.tracers[node] = tr
}

// FaultStats returns cumulative fault-plan activity.
func (b *Backplane) FaultStats() FaultStats { return b.fstats }

// Attach registers an endpoint. Attaching two endpoints with the same
// node ID is a wiring bug.
func (b *Backplane) Attach(ep Endpoint) {
	id := ep.NodeID()
	if _, dup := b.eps[id]; dup {
		panic(fmt.Sprintf("interconnect: duplicate endpoint for node %d", id))
	}
	b.eps[id] = ep
	b.width = int(math.Ceil(math.Sqrt(float64(len(b.eps)))))
	if b.width < 1 {
		b.width = 1
	}
}

// Hops returns the mesh (Manhattan) distance between two nodes.
func (b *Backplane) Hops(src, dst int) sim.Cycles {
	if src == dst {
		return 1 // through the local router
	}
	sx, sy := src%b.width, src/b.width
	dx, dy := dst%b.width, dst/b.width
	manhattan := abs(sx-dx) + abs(sy-dy)
	return sim.Cycles(manhattan)
}

// Send launches a packet from its source endpoint. It serializes with
// the sender's earlier packets (one outgoing FIFO), then flies across
// the mesh and is delivered on the receiver's clock — unless the fault
// plan drops, duplicates, delays or corrupts it in flight. Send returns
// the sender-clock time at which the outgoing FIFO is free again
// (dropped packets still occupied the FIFO on their way out).
func (b *Backplane) Send(pkt *Packet) sim.Cycles {
	src, ok := b.eps[pkt.Src]
	if !ok {
		panic(fmt.Sprintf("interconnect: send from unattached node %d", pkt.Src))
	}
	dst, ok := b.eps[pkt.Dst]
	if !ok {
		panic(fmt.Sprintf("interconnect: send to unattached node %d", pkt.Dst))
	}

	now := src.NodeClock().Now()
	start := now
	if free := b.injectFree[pkt.Src]; free > start {
		start = free
	}
	wire := b.costs.LinkCycles(len(pkt.Payload))
	b.injectFree[pkt.Src] = start + wire

	flight := b.Hops(pkt.Src, pkt.Dst)*b.costs.LinkLatency + wire
	arriveSender := start + flight // in sender time

	pkt.LaunchedAt = start
	b.packets++
	b.bytes += uint64(len(pkt.Payload))
	if pkt.Retrans {
		b.retransPkts++
		b.retransBytes += uint64(len(pkt.Payload))
	}

	out := b.perturb(pkt, start)
	tr := b.tracers[pkt.Src]
	if out.drop {
		if out.flap {
			b.fstats.FlapDrops++
			tr.Record(trace.EvLinkFlap, uint64(pkt.Dst), pkt.Seq, "pkt dropped: link down")
		} else {
			b.fstats.Drops++
			tr.Record(trace.EvWireDrop, uint64(pkt.Dst), pkt.Seq, pkt.Kind.String())
		}
		if pkt.Kind == PktData {
			b.fstats.DroppedDataPackets++
			b.fstats.DroppedDataBytes += uint64(len(pkt.Payload))
		}
		return b.injectFree[pkt.Src]
	}
	if out.corrupt {
		b.fstats.Corrupts++
		b.link(pkt.Src, pkt.Dst).corruptPacket(pkt)
		tr.Record(trace.EvWireCorrupt, uint64(pkt.Dst), pkt.Seq, pkt.Kind.String())
	}
	if out.extra > 0 {
		b.fstats.Delays++
		tr.Record(trace.EvWireDelay, uint64(pkt.Dst), uint64(out.extra), pkt.Kind.String())
	}
	if out.dup {
		b.fstats.Dups++
		if pkt.Kind == PktData {
			b.fstats.DupDataBytes += uint64(len(pkt.Payload))
		}
		tr.Record(trace.EvWireDup, uint64(pkt.Dst), pkt.Seq, pkt.Kind.String())
		dup := *pkt
		dup.Dup = true
		dup.Payload = append([]byte(nil), pkt.Payload...)
		b.deliver(dst, &dup, arriveSender+out.dupExtra)
	}
	b.deliver(dst, pkt, arriveSender+out.extra)
	return b.injectFree[pkt.Src]
}

// deliver schedules a packet arrival on the receiver's clock: never
// before the receiver's present (its clock may run ahead or behind the
// sender's).
func (b *Backplane) deliver(dst Endpoint, pkt *Packet, arriveSender sim.Cycles) {
	rclock := dst.NodeClock()
	at := arriveSender
	if rnow := rclock.Now(); at < rnow {
		at = rnow
	}
	rclock.Schedule(at, "packet-arrival", func() {
		pkt.ArrivedAt = rclock.Now()
		dst.DeliverPacket(pkt)
	})
}

// Stats returns cumulative launch counts: every packet handed to Send
// (including ones the fault plan then dropped), with retransmissions
// broken out so goodput vs. wire throughput is measurable.
func (b *Backplane) Stats() (packets, bytes, retransPackets, retransBytes uint64) {
	return b.packets, b.bytes, b.retransPkts, b.retransBytes
}

// Nodes returns the number of attached endpoints.
func (b *Backplane) Nodes() int { return len(b.eps) }

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
