// Package interconnect models the Intel Paragon routing backplane that
// connects SHRIMP nodes: a routed 2D mesh or torus of directed links,
// each with its own bandwidth (a busy-until reservation, like the
// per-sender inject FIFO) and FIFO contention queue, with
// deterministic dimension-order (XY) routing and in-order delivery
// between any pair of nodes. The fabric shape is a Topology fixed at
// construction (see topology.go); Attach never reshapes it.
//
// Each node simulates on its own clock (see DESIGN.md §6 and
// internal/cluster): a packet launched at sender-time T arrives at the
// receiver at max(receiver-now, T + zero-load flight + contention).
// Injection is serialized per sender — one outgoing FIFO drains into
// the network at the host-interface link speed — which is what bounds
// back-to-back page sends; the routed links the packet then walks each
// charge their own occupancy, which is what makes two senders into one
// receiver slow each other down (see DESIGN.md §15).
//
// The backplane has two delivery modes. In immediate mode (the default,
// used by single-threaded rigs and the nic package's tests) Send
// schedules the arrival on the receiver's clock right away. In deferred
// mode (armed by internal/cluster via SetDeferred) every cross-node
// packet is appended to the sender's timestamped outbox mailbox instead,
// and Flush — called at the cluster's lockstep barriers — merges all
// mailboxes in a deterministic (arrive, src, seq) order onto the
// receiver clocks. Because nothing touches a remote clock mid-window, a
// node's inbound events for a window are fixed before the window runs,
// which is what lets the cluster run node kernels on parallel worker
// goroutines without changing a single simulated timestamp. Loopback
// packets (src == dst) are always delivered immediately: they stay on
// the sender's own clock, so they are race-free under any worker count.
package interconnect

import (
	"fmt"
	"sort"

	"shrimp/internal/addr"
	"shrimp/internal/sim"
	"shrimp/internal/trace"
)

// PacketKind distinguishes data-bearing packets from the reliability
// layer's control traffic. The zero value is PktData so pre-reliability
// code (and tests) that build bare packets keep working.
type PacketKind uint8

const (
	PktData PacketKind = iota // deliberate-update payload
	PktAck                    // cumulative acknowledgment, no payload
)

func (k PacketKind) String() string {
	if k == PktAck {
		return "ack"
	}
	return "data"
}

// Packet is one deliberate-update message on the wire: a destination
// physical memory address on the destination node plus payload bytes.
// The Kind/Epoch/Seq/Ack/Window/CRC fields are the reliable-delivery
// header added by internal/nic; they ride along untouched (except by
// deliberate corruption) and are zero when reliability is disabled.
type Packet struct {
	Src, Dst int
	DestAddr addr.PAddr // physical memory address on the destination node
	Payload  []byte

	Kind   PacketKind
	Epoch  uint32 // connection incarnation; bumped when a link is declared broken
	Seq    uint64 // per-(src,dst) data sequence number, first packet is 1
	Ack    uint64 // cumulative: every seq <= Ack has been delivered
	Window uint32 // receiver credits: data packets it can buffer beyond Ack
	CRC    uint32 // IEEE CRC32 over header fields + payload

	// Retrans marks a sender retransmission (for wire accounting); Dup
	// marks a fabric-created duplicate delivery.
	Retrans bool
	Dup     bool

	// LaunchedAt is the sender-clock time the packet entered the
	// network; ArrivedAt is filled in (receiver clock) at delivery.
	LaunchedAt sim.Cycles
	ArrivedAt  sim.Cycles
}

// Endpoint is a network interface attached to the backplane.
type Endpoint interface {
	// NodeID returns the endpoint's node number.
	NodeID() int
	// NodeClock returns the clock deliveries should be scheduled on.
	NodeClock() *sim.Clock
	// DeliverPacket is invoked on the receiver's clock when the packet
	// arrives.
	DeliverPacket(pkt *Packet)
}

// mailEntry is one deferred delivery parked in a sender's outbox:
// the packet plus its arrival time (sender-clock) and a per-sender
// sequence number that breaks same-cycle ties deterministically.
type mailEntry struct {
	pkt *Packet
	at  sim.Cycles
	seq uint64
}

// outbox is the per-sender slice of all backplane state a Send
// mutates: the injection FIFO, launch counters, fault accounting, the
// per-destination fault RNG streams and the deferred-delivery mailbox.
// Because every field is touched only from the sending node's
// goroutine, concurrent windows on different nodes never contend, and
// summing the shards at a barrier is deterministic.
type outbox struct {
	injectFree sim.Cycles // outgoing FIFO free time

	packets      uint64
	bytes        uint64
	retransPkts  uint64
	retransBytes uint64

	links  map[int]*linkFault // per-destination fault state
	fstats FaultStats

	// mail holds deferred deliveries awaiting Flush, kept sorted by
	// (arrival, sequence) as entries are parked so Flush is a pure
	// k-way merge across shards. cur is the merge cursor.
	mail []mailEntry
	seq  uint64 // next mailEntry tie-break sequence
	cur  int    // Flush merge cursor into mail
}

// park appends a deferred delivery, keeping the mailbox sorted by
// (arrival, sequence). Arrival times are mostly nondecreasing — the
// inject FIFO serializes launches — so the insertion scan from the end
// is O(1) in the common case; inversions come only from hop-count
// differences and fault-plan delays, which are bounded. Equal arrivals
// insert after existing entries, preserving sequence order.
func (ob *outbox) park(pkt *Packet, at sim.Cycles) {
	e := mailEntry{pkt: pkt, at: at, seq: ob.seq}
	ob.seq++
	mail := append(ob.mail, e)
	i := len(mail) - 1
	for i > 0 && mail[i-1].at > at {
		mail[i] = mail[i-1]
		i--
	}
	mail[i] = e
	ob.mail = mail
}

// Backplane is the routed fabric. The topology (shape, node count,
// width, link capacity) is fixed at construction; attach every declared
// endpoint before sending — an early Send is a wiring panic.
type Backplane struct {
	costs *sim.CostModel
	topo  Topology   // normalized: width resolved
	links []link     // directed fabric links, indexed router*4+direction
	eps   []Endpoint // indexed by node id; nil when unattached
	out   []*outbox  // per-sender shard, created at Attach; same indexing
	ids   []int      // attached node ids, sorted: deterministic iteration
	n     int        // attached endpoint count

	deferred bool

	// down marks crashed nodes. It is written only by SetNodeDown at
	// lockstep barriers (no worker mid-window), so plain reads from
	// Send on worker goroutines are ordered by the barrier and the
	// drop decision is identical at every worker count.
	down []bool

	plan    FaultPlan
	tracers map[int]*trace.Tracer // per-sender wire anomaly tracers

	shards  []*outbox        // scratch: mail-bearing shards for one Flush merge
	schedFn func(*mailEntry) // prebuilt Flush callback, so Flush allocates nothing
}

// New returns an empty backplane over the declared topology, using the
// given cost model for link timing. The topology is final: the router
// grid, hop distances and link capacities never change as endpoints
// attach.
func New(costs *sim.CostModel, topo Topology) *Backplane {
	if costs == nil {
		panic("interconnect: New requires a cost model")
	}
	topo = topo.normalized()
	b := &Backplane{
		costs:   costs,
		topo:    topo,
		links:   make([]link, topo.Routers()*4),
		eps:     make([]Endpoint, topo.Nodes),
		out:     make([]*outbox, topo.Nodes),
		down:    make([]bool, topo.Nodes),
		tracers: make(map[int]*trace.Tracer),
	}
	// The Flush visit callback charges link contention in merged order
	// — the (arrive, src, seq) merge is the one deterministic total
	// order over a window's traffic, so occupancy is a pure function of
	// what was sent, independent of worker count.
	b.schedFn = func(e *mailEntry) {
		b.schedule(b.eps[e.pkt.Dst], e.pkt, b.chargeArrival(e.pkt, e.at))
	}
	return b
}

// ep returns the endpoint attached as node id, or nil.
func (b *Backplane) ep(id int) Endpoint {
	if id < 0 || id >= len(b.eps) {
		return nil
	}
	return b.eps[id]
}

// SetDeferred switches cross-node deliveries into mailbox mode: Send
// parks arrivals in the sender's outbox and Flush (at a barrier)
// schedules them. internal/cluster arms this for every cluster so that
// the simulation is bit-identical at every worker count; standalone
// rigs that drive clocks by hand keep immediate mode.
func (b *Backplane) SetDeferred(on bool) { b.deferred = on }

// Deferred reports whether mailbox delivery is armed.
func (b *Backplane) Deferred() bool { return b.deferred }

// SetFaultPlan installs (or, with the zero plan, clears) the wire fault
// model. Call before traffic starts: per-link RNG streams reset.
func (b *Backplane) SetFaultPlan(plan FaultPlan) {
	b.plan = plan
	for _, id := range b.ids {
		b.out[id].links = make(map[int]*linkFault)
	}
}

// Plan returns the installed fault plan.
func (b *Backplane) Plan() FaultPlan { return b.plan }

// SetNodeDown marks a node crashed (or rebooted): while a node is down,
// every packet launched to or from it is dropped deterministically —
// its links are dead, not lossy. Call only at a lockstep barrier
// (cluster.CrashPlan does), never while a window is running.
func (b *Backplane) SetNodeDown(node int, down bool) {
	for node >= len(b.down) {
		b.down = append(b.down, false)
	}
	b.down[node] = down
}

// NodeDown reports whether a node is currently marked crashed.
func (b *Backplane) NodeDown(node int) bool {
	return node < len(b.down) && b.down[node]
}

// SetTracer attaches a tracer recording wire anomalies (drops, dups,
// corruptions, delays, flaps) for packets *sent by* the given node, on
// that node's clock. nil detaches.
func (b *Backplane) SetTracer(node int, tr *trace.Tracer) {
	if tr == nil {
		delete(b.tracers, node)
		return
	}
	b.tracers[node] = tr
}

// FaultStats returns cumulative fault-plan activity, summed over the
// per-sender shards (node order; the fields are commutative counters).
func (b *Backplane) FaultStats() FaultStats {
	var fs FaultStats
	for _, id := range b.ids {
		fs.add(b.out[id].fstats)
	}
	return fs
}

// Attach registers an endpoint at its declared router. Attaching two
// endpoints with the same node ID, or an ID outside the declared
// topology, is a wiring bug. (Attach used to recompute the mesh width
// as ceil(sqrt(n)) on every call, silently reshaping hop distances as
// endpoints joined; the grid is now fixed by the Topology at New.)
func (b *Backplane) Attach(ep Endpoint) {
	id := ep.NodeID()
	if id < 0 || id >= b.topo.Nodes {
		panic(fmt.Sprintf("interconnect: node id %d outside declared %d-node %s",
			id, b.topo.Nodes, b.topo.Kind))
	}
	if b.eps[id] != nil {
		panic(fmt.Sprintf("interconnect: duplicate endpoint for node %d", id))
	}
	b.eps[id] = ep
	b.out[id] = &outbox{links: make(map[int]*linkFault)}
	b.ids = append(b.ids, id)
	sort.Ints(b.ids)
	b.n++
}

// Hops returns the routed path length between two nodes: the number of
// directed links a packet crosses under XY dimension-order routing
// (torus routes take the shorter ring direction per dimension).
func (b *Backplane) Hops(src, dst int) sim.Cycles {
	if src == dst {
		return 1 // through the local router
	}
	return sim.Cycles(b.topo.PathLen(src, dst))
}

// Lookahead returns the minimum cross-node flight time under the cost
// model: one link of routing latency plus the wire time of an empty
// packet. No packet launched in a window can arrive at another node
// earlier than this after its launch — the bound that makes the
// cluster's conservative windowed parallelism safe (see DESIGN.md §11).
func (b *Backplane) Lookahead() sim.Cycles {
	return b.costs.LinkLatency + b.fabricCycles(0)
}

// LinkLookahead is the per-directed-(src,dst) conservative bound: the
// zero-load flight time of an empty packet along the routed XY path
// (path length times per-link routing latency, plus empty-packet wire
// time). Contention only ever pushes arrivals later than zero-load, so
// a packet launched by src at its current clock can never be
// timestamped for dst earlier than src's clock plus this — the
// Chandy–Misra-style per-sender guarantee the cluster uses to extend a
// receiver's window past the global horizon without ever clamping an
// arrival (see DESIGN.md §11, §15).
func (b *Backplane) LinkLookahead(src, dst int) sim.Cycles {
	return b.Hops(src, dst)*b.costs.LinkLatency + b.fabricCycles(0)
}

// Send launches a packet from its source endpoint. It serializes with
// the sender's earlier packets (one outgoing FIFO), then flies across
// the mesh and is delivered on the receiver's clock — unless the fault
// plan drops, duplicates, delays or corrupts it in flight. Send returns
// the sender-clock time at which the outgoing FIFO is free again
// (dropped packets still occupied the FIFO on their way out).
//
// In deferred mode the delivery is parked in the sender's outbox until
// the next Flush; everything Send itself touches lives in the sender's
// shard, so concurrent sends from different nodes never share state.
func (b *Backplane) Send(pkt *Packet) sim.Cycles {
	if b.n != b.topo.Nodes {
		panic(fmt.Sprintf("interconnect: send with %d of %d declared nodes attached",
			b.n, b.topo.Nodes))
	}
	src := b.ep(pkt.Src)
	if src == nil {
		panic(fmt.Sprintf("interconnect: send from unattached node %d", pkt.Src))
	}
	dst := b.ep(pkt.Dst)
	if dst == nil {
		panic(fmt.Sprintf("interconnect: send to unattached node %d", pkt.Dst))
	}
	ob := b.out[pkt.Src]

	now := src.NodeClock().Now()
	start := now
	if ob.injectFree > start {
		start = ob.injectFree
	}
	// The inject FIFO drains at the host-interface rate; the routed
	// fabric links the packet then walks may be slower (or faster) per
	// the topology's capacity.
	wire := b.costs.LinkCycles(len(pkt.Payload))
	ob.injectFree = start + wire

	flight := b.zeroLoadFlight(pkt.Src, pkt.Dst, len(pkt.Payload))
	arriveSender := start + flight // in sender time, before contention

	pkt.LaunchedAt = start
	ob.packets++
	ob.bytes += uint64(len(pkt.Payload))
	if pkt.Retrans {
		ob.retransPkts++
		ob.retransBytes += uint64(len(pkt.Payload))
	}

	// Links to or from a crashed node are dead: the packet occupied the
	// outgoing FIFO (launch accounting above stands) and then vanishes.
	// The check sits before the fault-plan draw so an empty crash plan
	// perturbs no RNG stream — a no-crash run is bit-identical.
	if b.NodeDown(pkt.Src) || b.NodeDown(pkt.Dst) {
		ob.fstats.CrashDrops++
		if pkt.Kind == PktData {
			ob.fstats.CrashDroppedDataPackets++
			ob.fstats.CrashDroppedDataBytes += uint64(len(pkt.Payload))
		}
		b.tracers[pkt.Src].Record(trace.EvWireDrop, uint64(pkt.Dst), pkt.Seq, "node down")
		return ob.injectFree
	}

	out := b.perturb(ob, pkt, start)
	tr := b.tracers[pkt.Src]
	if out.drop {
		if out.flap {
			ob.fstats.FlapDrops++
			tr.Record(trace.EvLinkFlap, uint64(pkt.Dst), pkt.Seq, "pkt dropped: link down")
		} else {
			ob.fstats.Drops++
			tr.Record(trace.EvWireDrop, uint64(pkt.Dst), pkt.Seq, pkt.Kind.String())
		}
		if pkt.Kind == PktData {
			ob.fstats.DroppedDataPackets++
			ob.fstats.DroppedDataBytes += uint64(len(pkt.Payload))
		}
		return ob.injectFree
	}
	// A fabric duplicate is an independent copy that takes its own
	// flight: snapshot it BEFORE the corruption draw is applied, so one
	// corrupt draw taints exactly one wire copy. (Snapshotting after
	// corruption made the byte-ledger disagree with the receiver's CRC
	// accounting under combined corrupt+dup plans.)
	var dupPkt *Packet
	if out.dup {
		d := *pkt
		d.Dup = true
		d.Payload = append([]byte(nil), pkt.Payload...)
		dupPkt = &d
	}
	if out.corrupt {
		ob.fstats.Corrupts++
		ob.link(b.plan, pkt.Src, pkt.Dst).corruptPacket(pkt)
		tr.Record(trace.EvWireCorrupt, uint64(pkt.Dst), pkt.Seq, pkt.Kind.String())
	}
	if out.extra > 0 {
		ob.fstats.Delays++
		tr.Record(trace.EvWireDelay, uint64(pkt.Dst), uint64(out.extra), pkt.Kind.String())
	}
	if dupPkt != nil {
		ob.fstats.Dups++
		if dupPkt.Kind == PktData {
			ob.fstats.DupDataBytes += uint64(len(dupPkt.Payload))
		}
		tr.Record(trace.EvWireDup, uint64(pkt.Dst), pkt.Seq, pkt.Kind.String())
		b.deliver(ob, dst, dupPkt, arriveSender+out.dupExtra)
	}
	b.deliver(ob, dst, pkt, arriveSender+out.extra)
	return ob.injectFree
}

// deliver routes one arrival: immediately onto the receiver's clock, or
// into the sender's mailbox when deferred. Loopback (src == dst) is
// always immediate — the "receiver" clock is the sender's own, so the
// schedule is race-free and identical at every worker count.
//
// Deferred mail parks at the zero-load arrival; contention is charged
// later, in Flush's merged order. Immediate mode (single-threaded by
// contract) charges contention right here, in Send order — the same
// total order a one-node-at-a-time rig would merge to.
func (b *Backplane) deliver(ob *outbox, dst Endpoint, pkt *Packet, arriveSender sim.Cycles) {
	if b.deferred && pkt.Src != pkt.Dst {
		ob.park(pkt, arriveSender)
		return
	}
	b.schedule(dst, pkt, b.chargeArrival(pkt, arriveSender))
}

// schedule puts a packet arrival on the receiver's clock: never before
// the receiver's present (its clock may run ahead or behind the
// sender's).
func (b *Backplane) schedule(dst Endpoint, pkt *Packet, arriveSender sim.Cycles) {
	rclock := dst.NodeClock()
	at := arriveSender
	if rnow := rclock.Now(); at < rnow {
		at = rnow
	}
	rclock.Schedule(at, "packet-arrival", func() {
		pkt.ArrivedAt = rclock.Now()
		dst.DeliverPacket(pkt)
	})
}

// Flush drains every outbox mailbox onto the receiver clocks. Entries
// are merged in (arrival time, sender, per-sender sequence) order, and
// the visit callback charges each packet's routed-link occupancy in
// exactly that order, so the schedule — contention delays included,
// down to same-cycle tie-breaks on a receiver's event queue — is a
// pure function of what was sent, independent of both the flush caller
// and how many worker goroutines ran the windows that produced the
// mail. Call only at a barrier: no node may be mid-window.
func (b *Backplane) Flush() { b.mergeMail(b.schedFn) }

// mergeMail visits every parked delivery in (arrival, sender, sequence)
// order and empties the mailboxes. Each mailbox is already sorted by
// (arrival, sequence) — park maintains that — so the global order is a
// k-way merge: repeatedly take the earliest head, scanning the active
// shards in ascending node order so equal arrivals resolve to the
// lowest sender. The merge reuses the backplane's scratch slice and a
// prebuilt visit callback, so a steady-state flush allocates nothing
// (the former sort.Slice allocated a closure and a reflection swapper
// per window, and re-copied every entry into a shared slab).
func (b *Backplane) mergeMail(visit func(*mailEntry)) {
	shards := b.shards[:0]
	for _, id := range b.ids {
		ob := b.out[id]
		if len(ob.mail) > 0 {
			ob.cur = 0
			shards = append(shards, ob)
		}
	}
	for len(shards) > 0 {
		best := 0
		bestAt := shards[0].mail[shards[0].cur].at
		for k := 1; k < len(shards); k++ {
			if at := shards[k].mail[shards[k].cur].at; at < bestAt {
				best, bestAt = k, at
			}
		}
		ob := shards[best]
		visit(&ob.mail[ob.cur])
		ob.cur++
		if ob.cur == len(ob.mail) {
			ob.mail = ob.mail[:0]
			ob.cur = 0
			shards = append(shards[:best], shards[best+1:]...)
		}
	}
	b.shards = shards[:0]
}

// MailPending reports whether any deferred delivery is waiting for a
// Flush — in-flight traffic the cluster's idle/deadlock checks must see.
func (b *Backplane) MailPending() bool {
	for _, id := range b.ids {
		if len(b.out[id].mail) > 0 {
			return true
		}
	}
	return false
}

// Stats returns cumulative launch counts: every packet handed to Send
// (including ones the fault plan then dropped), with retransmissions
// broken out so goodput vs. wire throughput is measurable. Sums the
// per-sender shards.
func (b *Backplane) Stats() (packets, bytes, retransPackets, retransBytes uint64) {
	for _, id := range b.ids {
		ob := b.out[id]
		packets += ob.packets
		bytes += ob.bytes
		retransPackets += ob.retransPkts
		retransBytes += ob.retransBytes
	}
	return
}

// Nodes returns the number of attached endpoints.
func (b *Backplane) Nodes() int { return b.n }
