// Package interconnect models the Intel Paragon routing backplane that
// connects SHRIMP nodes: a 2D mesh with per-hop routing latency,
// per-link bandwidth, and in-order delivery between any pair of nodes.
//
// Each node simulates on its own clock (see DESIGN.md §6 and
// internal/cluster): a packet launched at sender-time T arrives at the
// receiver at max(receiver-now, T + flight time). Injection is
// serialized per sender — one outgoing FIFO drains into the network at
// link speed — which is what bounds back-to-back page sends.
package interconnect

import (
	"fmt"
	"math"

	"shrimp/internal/addr"
	"shrimp/internal/sim"
)

// Packet is one deliberate-update message on the wire: a destination
// physical memory address on the destination node plus payload bytes.
type Packet struct {
	Src, Dst int
	DestAddr addr.PAddr // physical memory address on the destination node
	Payload  []byte
	// LaunchedAt is the sender-clock time the packet entered the
	// network; ArrivedAt is filled in (receiver clock) at delivery.
	LaunchedAt sim.Cycles
	ArrivedAt  sim.Cycles
}

// Endpoint is a network interface attached to the backplane.
type Endpoint interface {
	// NodeID returns the endpoint's node number.
	NodeID() int
	// NodeClock returns the clock deliveries should be scheduled on.
	NodeClock() *sim.Clock
	// DeliverPacket is invoked on the receiver's clock when the packet
	// arrives.
	DeliverPacket(pkt *Packet)
}

// Backplane is the mesh. Attach every endpoint before sending.
type Backplane struct {
	costs *sim.CostModel
	eps   map[int]Endpoint
	width int // mesh width for hop counting; recomputed on Attach

	injectFree map[int]sim.Cycles // per-sender outgoing FIFO free time

	packets uint64
	bytes   uint64
}

// New returns an empty backplane using the given cost model for link
// timing.
func New(costs *sim.CostModel) *Backplane {
	if costs == nil {
		panic("interconnect: New requires a cost model")
	}
	return &Backplane{
		costs:      costs,
		eps:        make(map[int]Endpoint),
		injectFree: make(map[int]sim.Cycles),
	}
}

// Attach registers an endpoint. Attaching two endpoints with the same
// node ID is a wiring bug.
func (b *Backplane) Attach(ep Endpoint) {
	id := ep.NodeID()
	if _, dup := b.eps[id]; dup {
		panic(fmt.Sprintf("interconnect: duplicate endpoint for node %d", id))
	}
	b.eps[id] = ep
	b.width = int(math.Ceil(math.Sqrt(float64(len(b.eps)))))
	if b.width < 1 {
		b.width = 1
	}
}

// Hops returns the mesh (Manhattan) distance between two nodes.
func (b *Backplane) Hops(src, dst int) sim.Cycles {
	if src == dst {
		return 1 // through the local router
	}
	sx, sy := src%b.width, src/b.width
	dx, dy := dst%b.width, dst/b.width
	manhattan := abs(sx-dx) + abs(sy-dy)
	return sim.Cycles(manhattan)
}

// Send launches a packet from its source endpoint. It serializes with
// the sender's earlier packets (one outgoing FIFO), then flies across
// the mesh and is delivered on the receiver's clock. Send returns the
// sender-clock time at which the outgoing FIFO is free again.
func (b *Backplane) Send(pkt *Packet) sim.Cycles {
	src, ok := b.eps[pkt.Src]
	if !ok {
		panic(fmt.Sprintf("interconnect: send from unattached node %d", pkt.Src))
	}
	dst, ok := b.eps[pkt.Dst]
	if !ok {
		panic(fmt.Sprintf("interconnect: send to unattached node %d", pkt.Dst))
	}

	now := src.NodeClock().Now()
	start := now
	if free := b.injectFree[pkt.Src]; free > start {
		start = free
	}
	wire := b.costs.LinkCycles(len(pkt.Payload))
	b.injectFree[pkt.Src] = start + wire

	flight := b.Hops(pkt.Src, pkt.Dst)*b.costs.LinkLatency + wire
	arriveSender := start + flight // in sender time

	pkt.LaunchedAt = start
	b.packets++
	b.bytes += uint64(len(pkt.Payload))

	// Map onto the receiver's clock: never before the receiver's
	// present (its clock may run ahead or behind the sender's).
	rclock := dst.NodeClock()
	at := arriveSender
	if rnow := rclock.Now(); at < rnow {
		at = rnow
	}
	rclock.Schedule(at, "packet-arrival", func() {
		pkt.ArrivedAt = rclock.Now()
		dst.DeliverPacket(pkt)
	})
	return b.injectFree[pkt.Src]
}

// Stats returns cumulative packet and byte counts.
func (b *Backplane) Stats() (packets, bytes uint64) { return b.packets, b.bytes }

// Nodes returns the number of attached endpoints.
func (b *Backplane) Nodes() int { return len(b.eps) }

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
