package interconnect

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"

	"shrimp/internal/raceflag"
	"shrimp/internal/sim"
)

// TestMergeMatchesReferenceSort pins the k-way merge to the contract the
// old implementation enforced with a full sort.Slice: deliveries visit
// in global (arrival time, sender, per-sender sequence) order. The
// traffic is shaped to force plenty of same-cycle ties across senders —
// the tie-break is what keeps the schedule identical at every worker
// count.
func TestMergeMatchesReferenceSort(t *testing.T) {
	const nodes = 9
	b, eps := rig(nodes)
	b.SetDeferred(true)
	rng := rand.New(rand.NewSource(42))

	sizes := []int{0, 16, 16, 64} // few distinct sizes => frequent arrival ties
	for i := 0; i < 500; i++ {
		src := rng.Intn(nodes)
		dst := rng.Intn(nodes)
		if dst == src {
			dst = (dst + 1) % nodes
		}
		if rng.Intn(3) == 0 {
			eps[src].clock.Advance(sim.Cycles(rng.Intn(4) * 25))
		}
		b.Send(&Packet{Src: src, Dst: dst, Seq: uint64(i), Payload: make([]byte, sizes[rng.Intn(len(sizes))])})
	}

	// Snapshot every parked entry and compute the reference order with
	// an explicit (at, src, seq) sort, exactly as the old Flush did.
	type ref struct {
		pkt *Packet
		at  sim.Cycles
		src int
		seq uint64
	}
	var want []ref
	for _, id := range b.ids {
		for _, e := range b.out[id].mail {
			want = append(want, ref{pkt: e.pkt, at: e.at, src: id, seq: e.seq})
		}
	}
	if len(want) == 0 {
		t.Fatal("no deferred mail generated")
	}
	sort.Slice(want, func(i, j int) bool {
		if want[i].at != want[j].at {
			return want[i].at < want[j].at
		}
		if want[i].src != want[j].src {
			return want[i].src < want[j].src
		}
		return want[i].seq < want[j].seq
	})

	var got []*Packet
	b.mergeMail(func(e *mailEntry) { got = append(got, e.pkt) })

	if len(got) != len(want) {
		t.Fatalf("merge visited %d entries, want %d", len(got), len(want))
	}
	ties := 0
	for i := range want {
		if got[i] != want[i].pkt {
			t.Fatalf("merge order diverges from reference sort at entry %d", i)
		}
		if i > 0 && want[i].at == want[i-1].at {
			ties++
		}
	}
	if ties == 0 {
		t.Fatal("workload produced no same-cycle ties; tie-break untested")
	}
	if b.MailPending() {
		t.Fatal("mail still parked after merge")
	}
}

// TestMergeSteadyStateAllocs guards the pooled Flush path: once the
// mailbox slabs and the merge scratch have warmed up, a park+merge
// window must not allocate. (Clock scheduling still allocates one event
// per delivery — inherent to the event queue — so the guard drives
// mergeMail with a counting callback rather than a full Flush.)
func TestMergeSteadyStateAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("exact alloc counts are meaningless under -race")
	}
	const nodes = 4
	b, _ := rig(nodes)
	b.SetDeferred(true)

	payload := make([]byte, 32)
	pkts := make([]*Packet, 64)
	for i := range pkts {
		src := i % nodes
		pkts[i] = &Packet{Src: src, Dst: (src + 1) % nodes, Payload: payload}
	}
	window := func() {
		for _, p := range pkts {
			b.Send(p)
		}
		b.mergeMail(func(*mailEntry) {})
	}
	window() // warm the slabs and scratch

	if n := testing.AllocsPerRun(100, window); n != 0 {
		t.Fatalf("pooled flush window allocates %.1f times, want 0", n)
	}
}

// TestDupSnapshotsPayloadBeforeCorrupt pins the fix for the fabric-dup
// ordering bug: with a plan that both duplicates and corrupts every
// packet, the duplicate must carry the original bytes (its copy is
// taken before the corruption draw is applied), while the primary is
// corrupted. Before the fix one corrupt draw tainted both wire copies,
// and the DupDataBytes ledger disagreed with what receivers CRC-checked.
func TestDupSnapshotsPayloadBeforeCorrupt(t *testing.T) {
	b, eps := rig(2)
	b.SetFaultPlan(FaultPlan{Seed: 7, DupRate: 1, CorruptRate: 1, DelayMax: 100})

	orig := []byte{0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02, 0x03, 0x04}
	pkt := &Packet{Src: 0, Dst: 1, Kind: PktData, Seq: 1, Payload: append([]byte(nil), orig...)}
	b.Send(pkt)
	eps[1].clock.Advance(1 << 20)

	if len(eps[1].got) != 2 {
		t.Fatalf("got %d deliveries, want 2 (primary + dup)", len(eps[1].got))
	}
	var primary, dup *Packet
	for _, g := range eps[1].got {
		if g.Dup {
			dup = g
		} else {
			primary = g
		}
	}
	if primary == nil || dup == nil {
		t.Fatalf("want one primary and one dup, got primary=%v dup=%v", primary != nil, dup != nil)
	}
	if !bytes.Equal(dup.Payload, orig) {
		t.Errorf("dup payload tainted by the primary's corruption: % x", dup.Payload)
	}
	if bytes.Equal(primary.Payload, orig) {
		t.Errorf("primary escaped corruption at CorruptRate=1")
	}

	fs := b.FaultStats()
	if fs.Dups != 1 || fs.Corrupts != 1 {
		t.Errorf("FaultStats dups=%d corrupts=%d, want 1/1", fs.Dups, fs.Corrupts)
	}
	if fs.DupDataBytes != uint64(len(orig)) {
		t.Errorf("DupDataBytes=%d, want %d (the dup's clean copy)", fs.DupDataBytes, len(orig))
	}
}

// TestLinkLookaheadBounds checks the per-link conservative bound the
// cluster relies on: no packet from src can ever be timestamped for dst
// earlier than the sender's launch clock plus LinkLookahead(src, dst).
func TestLinkLookaheadBounds(t *testing.T) {
	const nodes = 16
	b, eps := rig(nodes)
	b.SetDeferred(true)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		src := rng.Intn(nodes)
		dst := rng.Intn(nodes)
		if dst == src {
			continue
		}
		eps[src].clock.Advance(sim.Cycles(rng.Intn(40)))
		b.Send(&Packet{Src: src, Dst: dst, Payload: make([]byte, rng.Intn(256))})
		for _, m := range b.out[src].mail {
			if bound := m.pkt.LaunchedAt + b.LinkLookahead(src, m.pkt.Dst); m.at < bound {
				t.Fatalf("arrival %d beats lookahead bound %d for link %d->%d", m.at, bound, src, m.pkt.Dst)
			}
		}
	}
}
