package interconnect

import (
	"shrimp/internal/sim"
)

// FaultPlan describes a deterministic perturbation of the backplane: a
// hostile wire for the reliability layer in internal/nic to survive.
// All randomness flows from Seed through per-link RNG streams, so the
// same seed applied to the same send sequence always produces the same
// drops, duplicates, corruptions and delays — a lossy run reproduces
// exactly, like everything else in the simulator.
//
// The zero FaultPlan is "wire is perfect" (the paper's reliable Paragon
// backplane assumption) and costs nothing.
type FaultPlan struct {
	// Seed roots every per-link RNG stream and flap phase.
	Seed uint64

	// DropRate is the probability a packet vanishes in flight.
	DropRate float64
	// DupRate is the probability a packet is delivered twice (the
	// second copy after an extra DelayMax-bounded flight).
	DupRate float64
	// CorruptRate is the probability payload (or, for empty-payload
	// control packets, header) bits flip in flight. The packet still
	// arrives; its CRC no longer matches.
	CorruptRate float64
	// DelayRate is the probability a packet is held back by an extra
	// uniform [1, DelayMax] cycles of flight — late delivery that
	// reorders it behind packets launched after it.
	DelayRate float64
	// DelayMax bounds the extra flight of delayed and duplicated
	// packets (default 2000 cycles when a rate needs it).
	DelayMax sim.Cycles

	// FlapPeriod/FlapDown model per-link outages: each directed
	// *physical* fabric link (a router-to-router channel, not a
	// src/dst pair) is down for FlapDown cycles out of every
	// FlapPeriod, at a phase derived from Seed and the link, so links
	// do not flap in lockstep. A packet launched while any link on its
	// routed path is down is dropped — a multi-hop route is only as
	// available as its worst link. Zero disables flapping.
	FlapPeriod sim.Cycles
	FlapDown   sim.Cycles
}

// Enabled reports whether the plan perturbs anything.
func (p FaultPlan) Enabled() bool {
	return p.DropRate > 0 || p.DupRate > 0 || p.CorruptRate > 0 ||
		p.DelayRate > 0 || (p.FlapPeriod > 0 && p.FlapDown > 0)
}

// delayMax returns the configured extra-flight bound with its default.
func (p FaultPlan) delayMax() sim.Cycles {
	if p.DelayMax > 0 {
		return p.DelayMax
	}
	return 2000
}

// FaultStats counts what the plan did to the wire. Byte counters track
// data packets only (PktData) so goodput accounting can partition
// payload bytes exactly; control packets (ACKs) carry no payload.
type FaultStats struct {
	Drops     uint64 // packets dropped by DropRate (all kinds)
	FlapDrops uint64 // packets dropped into a down link window
	Dups      uint64 // extra deliveries created
	Corrupts  uint64 // packets corrupted in flight
	Delays    uint64 // packets held back for extra flight

	DroppedDataPackets uint64 // data packets that never arrived (drop + flap)
	DroppedDataBytes   uint64
	DupDataBytes       uint64 // payload bytes of fabric-created data copies

	// Crash drops are not the plan's doing: they count packets launched
	// while either endpoint node was crashed (cluster.CrashPlan marks
	// nodes down at lockstep barriers). Every link to a down node drops
	// deterministically, and the data-byte ledger keeps the simcheck
	// wire-conservation audit balanced across the crash boundary.
	CrashDrops              uint64
	CrashDroppedDataPackets uint64
	CrashDroppedDataBytes   uint64
}

// add folds another shard's counts in (used to sum per-sender shards).
func (s *FaultStats) add(o FaultStats) {
	s.Drops += o.Drops
	s.FlapDrops += o.FlapDrops
	s.Dups += o.Dups
	s.Corrupts += o.Corrupts
	s.Delays += o.Delays
	s.DroppedDataPackets += o.DroppedDataPackets
	s.DroppedDataBytes += o.DroppedDataBytes
	s.DupDataBytes += o.DupDataBytes
	s.CrashDrops += o.CrashDrops
	s.CrashDroppedDataPackets += o.CrashDroppedDataPackets
	s.CrashDroppedDataBytes += o.CrashDroppedDataBytes
}

// linkFault is the per-(src,dst) fault state: one RNG stream, a pure
// function of (plan seed, src, dst). It lives in the *sender's* outbox
// shard (keyed by destination), so concurrent windows on different
// nodes never share an RNG. Flap phases are not stored here — they are
// per *physical* link and computed statelessly (see flapPhase).
type linkFault struct {
	rng *sim.RNG
}

// linkSeed decorrelates the per-link streams: same plan seed, different
// links, different streams.
func linkSeed(seed uint64, src, dst int) uint64 {
	return seed ^ (uint64(src+1) * 0x9E3779B97F4A7C15) ^ (uint64(dst+1) * 0xC2B2AE3D27D4EB4F)
}

// link returns (creating if needed) the sender-side fault state for the
// pair src→dst. The lazy creation touches only this outbox.
func (ob *outbox) link(plan FaultPlan, src, dst int) *linkFault {
	if lf, ok := ob.links[dst]; ok {
		return lf
	}
	lf := &linkFault{rng: sim.NewRNG(linkSeed(plan.Seed, src, dst))}
	ob.links[dst] = lf
	return lf
}

// flapPhase is the outage phase of the physical directed link a→b: a
// pure function of the plan seed and the router pair, with no RNG
// state, so asking about a link (from any route that crosses it) never
// perturbs the per-pair draw streams.
func (p FaultPlan) flapPhase(a, b int) sim.Cycles {
	return sim.Cycles(linkSeed(p.Seed, a, b)>>17) % p.FlapPeriod
}

// LinkDown reports whether the routed path src→dst is cut by a flap
// outage at the given (sender-clock) time: a multi-hop route is down
// whenever any physical link along its XY path is inside a down
// window. For adjacent nodes this is exactly the single link's window;
// loopback never leaves the local router and is never down.
func (b *Backplane) LinkDown(src, dst int, at sim.Cycles) bool {
	if b.plan.FlapPeriod == 0 || b.plan.FlapDown == 0 || src == dst {
		return false
	}
	for cur := src; cur != dst; {
		next := b.topo.NextHop(cur, dst)
		if (at+b.plan.flapPhase(cur, next))%b.plan.FlapPeriod < b.plan.FlapDown {
			return true
		}
		cur = next
	}
	return false
}

// wireOutcome is what the fault plan decided for one launched packet.
type wireOutcome struct {
	drop     bool
	flap     bool
	corrupt  bool
	dup      bool
	extra    sim.Cycles // additional flight for the primary copy
	dupExtra sim.Cycles // additional flight for the duplicate copy
}

// perturb draws the plan's verdict for a packet launched at start. The
// draws are unconditional so one packet always consumes the same number
// of stream values regardless of outcome. All state it touches lives in
// the sender's outbox shard.
func (b *Backplane) perturb(ob *outbox, pkt *Packet, start sim.Cycles) wireOutcome {
	var out wireOutcome
	p := b.plan
	if !p.Enabled() {
		return out
	}
	lf := ob.link(p, pkt.Src, pkt.Dst)
	dropDraw := lf.rng.Float64()
	dupDraw := lf.rng.Float64()
	corruptDraw := lf.rng.Float64()
	delayDraw := lf.rng.Float64()

	if b.LinkDown(pkt.Src, pkt.Dst, start) {
		out.drop, out.flap = true, true
		return out
	}
	if dropDraw < p.DropRate {
		out.drop = true
		return out
	}
	if corruptDraw < p.CorruptRate {
		out.corrupt = true
	}
	if delayDraw < p.DelayRate {
		out.extra = 1 + sim.Cycles(lf.rng.Intn(int(p.delayMax())))
	}
	if dupDraw < p.DupRate {
		out.dup = true
		out.dupExtra = 1 + sim.Cycles(lf.rng.Intn(int(p.delayMax())))
	}
	return out
}

// corruptPacket flips one byte of the payload (or, for empty-payload
// control packets, one bit of the Ack field) on a private copy, leaving
// the sender's retransmit buffer untouched. The CRC field is preserved,
// which is exactly what makes the corruption detectable.
func (lf *linkFault) corruptPacket(pkt *Packet) {
	if len(pkt.Payload) > 0 {
		corrupted := append([]byte(nil), pkt.Payload...)
		corrupted[lf.rng.Intn(len(corrupted))] ^= 1 << (lf.rng.Uint64() % 8)
		pkt.Payload = corrupted
		return
	}
	pkt.Ack ^= 1 << (lf.rng.Uint64() % 64)
}
