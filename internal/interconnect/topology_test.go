package interconnect

import (
	"testing"

	"shrimp/internal/sim"
)

// walkPath follows NextHop from src to dst and returns the router
// sequence (excluding src), bounded so a routing loop fails the test
// instead of hanging it.
func walkPath(t *testing.T, topo Topology, src, dst int) []int {
	t.Helper()
	var path []int
	cur := src
	for cur != dst {
		if len(path) > topo.Routers() {
			t.Fatalf("route %d->%d does not converge: %v", src, dst, path)
		}
		next := topo.NextHop(cur, dst)
		if got := topo.linkPeer(topo.linkIndex(cur, next)); got != next {
			t.Fatalf("linkIndex/linkPeer roundtrip %d->%d: got %d", cur, next, got)
		}
		path = append(path, next)
		cur = next
	}
	return path
}

// TestRoutingWalkMatchesPathLen: for every pair in a ragged mesh and a
// ragged torus, the NextHop walk terminates in exactly PathLen links,
// and the X dimension is fully corrected before Y moves (dimension
// order).
func TestRoutingWalkMatchesPathLen(t *testing.T) {
	for _, topo := range []Topology{
		Mesh(7).normalized(),  // 3x3 router grid, ragged last row
		Torus(8).normalized(), // 3x3 router grid, ragged last row
		Mesh(16).normalized(), // full 4x4
		Torus(16).normalized(),
	} {
		for src := 0; src < topo.Nodes; src++ {
			for dst := 0; dst < topo.Nodes; dst++ {
				if src == dst {
					continue
				}
				path := walkPath(t, topo, src, dst)
				if len(path) != topo.PathLen(src, dst) {
					t.Fatalf("%s %d->%d: walk %d links, PathLen %d",
						topo.Kind, src, dst, len(path), topo.PathLen(src, dst))
				}
				// Dimension order: once a hop moves in Y, no later hop
				// may move in X.
				sawY := false
				prev := src
				for _, r := range path {
					_, py := topo.Coord(prev)
					_, ry := topo.Coord(r)
					if ry != py {
						sawY = true
					} else if sawY {
						t.Fatalf("%s %d->%d: X move after Y move in %v", topo.Kind, src, dst, path)
					}
					prev = r
				}
			}
		}
	}
}

// TestTorusTakesShortRing: the torus route wraps when the ring distance
// is shorter the other way, and breaks exact ties in the positive
// direction, deterministically.
func TestTorusTakesShortRing(t *testing.T) {
	topo := Torus(16).normalized() // 4x4
	// 0 -> 3 on a 4-ring: forward 3, backward 1 => wrap backward.
	if got := topo.PathLen(0, 3); got != 1 {
		t.Fatalf("torus PathLen(0,3) = %d, want 1 (wrap)", got)
	}
	if next := topo.NextHop(0, 3); next != 3 {
		t.Fatalf("torus NextHop(0,3) = %d, want 3 (backward wrap)", next)
	}
	// 0 -> 2 on a 4-ring: distance 2 both ways; tie goes forward.
	if next := topo.NextHop(0, 2); next != 1 {
		t.Fatalf("torus NextHop(0,2) = %d, want 1 (tie forward)", next)
	}
	// Mesh never wraps: 0 -> 3 is 3 links.
	mesh := Mesh(16).normalized()
	if got := mesh.PathLen(0, 3); got != 3 {
		t.Fatalf("mesh PathLen(0,3) = %d, want 3", got)
	}
}

// TestHopsIndependentOfAttachOrder pins the satellite fix: the router
// grid is fixed by the Topology at New, so hop distances no longer
// shift with the order (or count) of Attach calls. Before the fix,
// width was recomputed as ceil(sqrt(attached)) on every Attach.
func TestHopsIndependentOfAttachOrder(t *testing.T) {
	const n = 5 // width 3: the old code's width changed at n=2,3,5
	build := func(order []int) *Backplane {
		b := New(costs(), Mesh(n))
		for _, id := range order {
			b.Attach(&fakeEP{id: id, clock: sim.NewClock()})
		}
		return b
	}
	a := build([]int{0, 1, 2, 3, 4})
	z := build([]int{4, 2, 0, 3, 1})
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if a.Hops(src, dst) != z.Hops(src, dst) {
				t.Fatalf("Hops(%d,%d) depends on attach order: %d vs %d",
					src, dst, a.Hops(src, dst), z.Hops(src, dst))
			}
		}
	}
}

// TestAttachOutsideTopologyPanics: the declared node count is a hard
// wall, not a hint.
func TestAttachOutsideTopologyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("attaching node 2 to a declared 2-node mesh did not panic")
		}
	}()
	b := New(costs(), Mesh(2))
	b.Attach(&fakeEP{id: 2, clock: sim.NewClock()})
}

// TestSendBeforeFullyWiredPanics: sending while declared endpoints are
// still missing is a wiring bug — the old backplane would silently
// route over a half-built (and differently-shaped) mesh.
func TestSendBeforeFullyWiredPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("send with 2 of 3 declared nodes attached did not panic")
		}
	}()
	b := New(costs(), Mesh(3))
	b.Attach(&fakeEP{id: 0, clock: sim.NewClock()})
	b.Attach(&fakeEP{id: 1, clock: sim.NewClock()})
	b.Send(&Packet{Src: 0, Dst: 1, Payload: make([]byte, 8)})
}

// TestLinkContentionSerializes: two senders whose XY routes share the
// final link into the destination are serialized at link bandwidth,
// and the shared link's ledger records the busy/wait cycles. Node
// coordinates in the 2x2 mesh: 0=(0,0) 1=(1,0) 2=(0,1) 3=(1,1); routes
// 2->0 and 3->0 (X first: 3->2) both cross the column link 2->0.
func TestLinkContentionSerializes(t *testing.T) {
	for _, deferred := range []bool{false, true} {
		b, eps := rig(4)
		b.SetDeferred(deferred)
		b.Send(&Packet{Src: 2, Dst: 0, Payload: make([]byte, 100)})
		b.Send(&Packet{Src: 3, Dst: 0, Payload: make([]byte, 100)})
		if deferred {
			if !b.MailPending() {
				t.Fatal("deferred sends did not park mail")
			}
			b.Flush()
			if b.MailPending() {
				t.Fatal("Flush left mail parked")
			}
		}
		eps[0].clock.RunUntilIdle()
		if len(eps[0].got) != 2 {
			t.Fatalf("deferred=%v: delivered %d packets, want 2", deferred, len(eps[0].got))
		}
		// Zero-load: 2->0 arrives at 10+50=60; 3->0 at 20+50=70. The
		// shared link 2->0 is busy until 100 serving the first packet
		// (wire=50), so the second starts there: 50+10+50 = 110.
		if at := eps[0].got[0].ArrivedAt; at != 60 {
			t.Fatalf("deferred=%v: first arrival %d, want 60", deferred, at)
		}
		if at := eps[0].got[1].ArrivedAt; at != 110 {
			t.Fatalf("deferred=%v: contended arrival %d, want 110 (zero-load 70 + 40 queued)", deferred, at)
		}
		var shared *LinkStat
		for _, ls := range b.LinkStats() {
			ls := ls
			if ls.From == 2 && ls.To == 0 {
				shared = &ls
			}
		}
		if shared == nil {
			t.Fatal("shared link 2->0 has no stats")
		}
		if shared.Packets != 2 || shared.BusyCycles != 100 || shared.WaitCycles != 40 || shared.PeakQueue != 1 {
			t.Fatalf("shared link ledger %+v, want pkts=2 busy=100 wait=40 peak=1", *shared)
		}
	}
}

// TestThrottledFabricSlowsWire: a topology link capacity below the
// host-interface rate stretches the zero-load wire time (the inject
// FIFO still drains at the host rate).
func TestThrottledFabricSlowsWire(t *testing.T) {
	topo := Mesh(2)
	topo.LinkBytesPerCyc = 1 // half the cost model's 2 B/cyc
	b := New(costs(), topo)
	eps := []*fakeEP{{id: 0, clock: sim.NewClock()}, {id: 1, clock: sim.NewClock()}}
	b.Attach(eps[0])
	b.Attach(eps[1])
	free := b.Send(&Packet{Src: 0, Dst: 1, Payload: make([]byte, 100)})
	if free != 50 {
		t.Fatalf("inject FIFO free at %d, want 50 (host-interface rate)", free)
	}
	eps[1].clock.RunUntilIdle()
	// Flight = 1 link * 10 latency + 100/1 fabric wire = 110.
	if at := eps[1].got[0].ArrivedAt; at != 110 {
		t.Fatalf("throttled arrival %d, want 110", at)
	}
}

// TestMergeTieBreakAcrossShards pins the satellite case directly: three
// senders park mail with the *same* arrival cycle, and the merge must
// visit them in ascending sender order, sequences in order within each
// sender — the tie-break that keeps receiver event queues identical at
// every worker count.
func TestMergeTieBreakAcrossShards(t *testing.T) {
	b, _ := rig(4)
	b.SetDeferred(true)
	// Equal arrivals at cycle 60: senders 1 and 2 are one link from 0
	// (flight 10+wire), sender 3 is two links (flight 20+wire), so give
	// 3 a payload whose wire time is 10 cycles shorter.
	for pass := 0; pass < 2; pass++ { // two packets per sender: seq order within shard
		b.Send(&Packet{Src: 1, Dst: 0, Seq: uint64(pass), Payload: make([]byte, 100)})
		b.Send(&Packet{Src: 2, Dst: 0, Seq: uint64(pass), Payload: make([]byte, 100)})
		b.Send(&Packet{Src: 3, Dst: 0, Seq: uint64(pass), Payload: make([]byte, 80)})
	}
	type visit struct {
		src int
		at  sim.Cycles
		seq uint64
	}
	var got []visit
	b.mergeMail(func(e *mailEntry) {
		got = append(got, visit{src: e.pkt.Src, at: e.at, seq: e.pkt.Seq})
	})
	if len(got) != 6 {
		t.Fatalf("merged %d entries, want 6", len(got))
	}
	if got[0].at != 60 || got[1].at != 60 || got[2].at != 60 {
		t.Fatalf("first wave arrivals %v, want all at 60", got[:3])
	}
	want := []visit{{1, 60, 0}, {2, 60, 0}, {3, 60, 0}, {1, 110, 1}, {2, 110, 1}, {3, 100, 1}}
	// Second-wave arrivals differ (inject FIFO serializes), so sort of
	// the tail is by time: 3's second packet (at 100) precedes 1 and 2's
	// (at 110).
	wantOrder := []visit{want[0], want[1], want[2], want[5], want[3], want[4]}
	for i, w := range wantOrder {
		if got[i] != w {
			t.Fatalf("merge order[%d] = %+v, want %+v (full: %+v)", i, got[i], w, got)
		}
	}
}

// TestMailPendingAcrossFlush covers the parked-mail lifecycle the
// cluster's limit-bounded Run return depends on (PR 6): mail parks on
// Send, MailPending sees it, nothing reaches the receiver clock until
// Flush, and Flush schedules it with the contention-adjusted arrival.
func TestMailPendingAcrossFlush(t *testing.T) {
	b, eps := rig(2)
	b.SetDeferred(true)
	if b.MailPending() {
		t.Fatal("MailPending true on an idle backplane")
	}
	b.Send(&Packet{Src: 0, Dst: 1, Payload: make([]byte, 100)})
	if !b.MailPending() {
		t.Fatal("MailPending false with a parked delivery")
	}
	eps[1].clock.RunUntilIdle()
	if len(eps[1].got) != 0 {
		t.Fatal("parked delivery reached the receiver before Flush")
	}
	b.Flush()
	if b.MailPending() {
		t.Fatal("MailPending true after Flush")
	}
	eps[1].clock.RunUntilIdle()
	if len(eps[1].got) != 1 || eps[1].got[0].ArrivedAt != 60 {
		t.Fatalf("post-Flush delivery %+v, want one arrival at 60", eps[1].got)
	}
	// Loopback never parks: it stays on the sender's own clock.
	b.Send(&Packet{Src: 0, Dst: 0, Payload: make([]byte, 4)})
	if b.MailPending() {
		t.Fatal("loopback send parked mail")
	}
}
