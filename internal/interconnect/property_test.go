package interconnect

import (
	"testing"
	"testing/quick"

	"shrimp/internal/sim"
)

// Property: per-sender delivery is in launch order regardless of packet
// sizes, and flight time is never shorter than the minimum (one hop +
// wire time).
func TestInOrderDeliveryProperty(t *testing.T) {
	prop := func(sizes []uint8) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 32 {
			sizes = sizes[:32]
		}
		b := New(costs(), Mesh(2))
		src := &fakeEP{id: 0, clock: sim.NewClock()}
		dst := &fakeEP{id: 1, clock: sim.NewClock()}
		b.Attach(src)
		b.Attach(dst)

		for i, s := range sizes {
			n := 4 * (1 + int(s)%256)
			pkt := &Packet{Src: 0, Dst: 1, Payload: make([]byte, n)}
			pkt.Payload[0] = byte(i) // sequence number
			b.Send(pkt)
			// Interleave sender activity between launches.
			src.clock.Advance(sim.Cycles(s))
		}
		dst.clock.RunUntilIdle()
		if len(dst.got) != len(sizes) {
			return false
		}
		for i, pkt := range dst.got {
			if pkt.Payload[0] != byte(i) {
				return false // reordered
			}
			minFlight := b.Hops(0, 1)*10 + sim.Cycles((len(pkt.Payload)+1)/2)
			if pkt.ArrivedAt < pkt.LaunchedAt+minFlight {
				return false // arrived faster than physics allows
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: total bytes accounted by the backplane equal the sum of
// payload sizes, for any mix of senders in a 4-node mesh.
func TestByteAccountingProperty(t *testing.T) {
	prop := func(routes []uint8) bool {
		if len(routes) > 64 {
			routes = routes[:64]
		}
		b := New(costs(), Mesh(4))
		eps := make([]*fakeEP, 4)
		for i := range eps {
			eps[i] = &fakeEP{id: i, clock: sim.NewClock()}
			b.Attach(eps[i])
		}
		var want uint64
		for _, r := range routes {
			src := int(r) % 4
			dst := int(r/4) % 4
			n := 4 + int(r)%128
			b.Send(&Packet{Src: src, Dst: dst, Payload: make([]byte, n)})
			want += uint64(n)
		}
		_, bytes, _, _ := b.Stats()
		if bytes != want {
			return false
		}
		// Everything eventually delivers.
		var delivered int
		for _, ep := range eps {
			ep.clock.RunUntilIdle()
			delivered += len(ep.got)
		}
		return delivered == len(routes)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
