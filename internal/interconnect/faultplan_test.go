package interconnect

import (
	"bytes"
	"testing"

	"shrimp/internal/sim"
)

func lossyRig(n int, plan FaultPlan) (*Backplane, []*fakeEP) {
	b, eps := rig(n)
	b.SetFaultPlan(plan)
	return b, eps
}

func sendBurst(b *Backplane, eps []*fakeEP, count, size int) {
	for i := 0; i < count; i++ {
		pay := make([]byte, size)
		for j := range pay {
			pay[j] = byte(i + j)
		}
		b.Send(&Packet{Src: 0, Dst: 1, Kind: PktData, Seq: uint64(i + 1), Payload: pay})
		eps[1].clock.Advance(10_000)
	}
}

// TestFaultPlanDeterminism: two backplanes with the same plan see the
// same traffic and must perturb it identically — same drops, same
// duplicated copies, same corrupted bytes, same delays.
func TestFaultPlanDeterminism(t *testing.T) {
	plan := FaultPlan{Seed: 42, DropRate: 0.2, DupRate: 0.1, CorruptRate: 0.1, DelayRate: 0.2}
	runs := make([][]*Packet, 2)
	stats := make([]FaultStats, 2)
	for r := 0; r < 2; r++ {
		b, eps := lossyRig(2, plan)
		sendBurst(b, eps, 200, 64)
		runs[r] = eps[1].got
		stats[r] = b.FaultStats()
	}
	if stats[0] != stats[1] {
		t.Fatalf("fault stats diverged:\n%+v\n%+v", stats[0], stats[1])
	}
	if len(runs[0]) != len(runs[1]) {
		t.Fatalf("delivery counts diverged: %d vs %d", len(runs[0]), len(runs[1]))
	}
	for i := range runs[0] {
		a, b := runs[0][i], runs[1][i]
		if a.Seq != b.Seq || a.Dup != b.Dup || a.ArrivedAt != b.ArrivedAt || !bytes.Equal(a.Payload, b.Payload) {
			t.Fatalf("delivery %d diverged: %+v vs %+v", i, a, b)
		}
	}
}

// TestFaultPlanSeedsDiffer: different seeds must give different
// perturbations (or the "determinism" above is vacuous).
func TestFaultPlanSeedsDiffer(t *testing.T) {
	outcomes := make([]int, 2)
	for r, seed := range []uint64{1, 2} {
		b, eps := lossyRig(2, FaultPlan{Seed: seed, DropRate: 0.3})
		sendBurst(b, eps, 200, 16)
		outcomes[r] = len(eps[1].got)
	}
	if outcomes[0] == outcomes[1] {
		t.Fatalf("seeds 1 and 2 dropped identically (%d delivered) — suspicious", outcomes[0])
	}
}

// TestFaultPlanDropAccounting: drops land in FaultStats with data-byte
// accounting, and delivered + dropped + duplicated adds up.
func TestFaultPlanDropAccounting(t *testing.T) {
	b, eps := lossyRig(2, FaultPlan{Seed: 7, DropRate: 0.25, DupRate: 0.1})
	const count, size = 400, 32
	sendBurst(b, eps, count, size)
	fs := b.FaultStats()
	if fs.Drops == 0 || fs.Dups == 0 {
		t.Fatalf("25%% drop / 10%% dup produced none over %d packets: %+v", count, fs)
	}
	// Rough-bounds sanity: a wildly skewed RNG is a bug.
	if fs.Drops < 50 || fs.Drops > 180 {
		t.Fatalf("drops = %d over %d at 25%%: RNG stream broken", fs.Drops, count)
	}
	if got := uint64(len(eps[1].got)); got != count-fs.Drops+fs.Dups {
		t.Fatalf("delivered %d, want %d - %d drops + %d dups", got, count, fs.Drops, fs.Dups)
	}
	if fs.DroppedDataBytes != fs.Drops*size || fs.DupDataBytes != fs.Dups*size {
		t.Fatalf("byte accounting off: %+v", fs)
	}
	dups := 0
	for _, p := range eps[1].got {
		if p.Dup {
			dups++
		}
	}
	if uint64(dups) != fs.Dups {
		t.Fatalf("delivered dup copies %d != counted %d", dups, fs.Dups)
	}
}

// TestFaultPlanCorruption flips exactly one bit of a data payload and
// leaves the CRC stale so the receiver can detect it.
func TestFaultPlanCorruption(t *testing.T) {
	b, eps := lossyRig(2, FaultPlan{Seed: 3, CorruptRate: 1.0})
	want := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	b.Send(&Packet{Src: 0, Dst: 1, Kind: PktData, CRC: 0xDEAD, Payload: append([]byte(nil), want...)})
	eps[1].clock.Advance(10_000)
	if len(eps[1].got) != 1 {
		t.Fatalf("delivered %d", len(eps[1].got))
	}
	got := eps[1].got[0]
	if got.CRC != 0xDEAD {
		t.Fatal("corruption must not fix up the CRC")
	}
	diff := 0
	for i := range want {
		if x := want[i] ^ got.Payload[i]; x != 0 {
			diff++
			if x&(x-1) != 0 {
				t.Fatalf("byte %d flipped more than one bit: %02x", i, x)
			}
		}
	}
	if diff != 1 {
		t.Fatalf("corruption touched %d bytes, want exactly 1", diff)
	}
	if b.FaultStats().Corrupts != 1 {
		t.Fatalf("stats %+v", b.FaultStats())
	}
}

// TestFaultPlanDelayReorders: late delivery must be able to invert
// arrival order of back-to-back packets.
func TestFaultPlanDelayReorders(t *testing.T) {
	b, eps := lossyRig(2, FaultPlan{Seed: 11, DelayRate: 0.5, DelayMax: 5000})
	for i := 0; i < 50; i++ {
		b.Send(&Packet{Src: 0, Dst: 1, Kind: PktData, Seq: uint64(i + 1), Payload: make([]byte, 8)})
	}
	eps[1].clock.Advance(1_000_000)
	if b.FaultStats().Delays == 0 {
		t.Fatal("50% delay rate produced no delays over 50 packets")
	}
	inverted := false
	for i := 1; i < len(eps[1].got); i++ {
		if eps[1].got[i].Seq < eps[1].got[i-1].Seq {
			inverted = true
			break
		}
	}
	if !inverted {
		t.Fatal("delays never reordered a delivery")
	}
}

// TestFaultPlanFlapWindows: LinkDown is periodic with the configured
// duty cycle, differs per directed link, and sends during a down window
// are dropped and counted as flap drops.
func TestFaultPlanFlapWindows(t *testing.T) {
	plan := FaultPlan{Seed: 9, FlapPeriod: 1000, FlapDown: 300}
	b, eps := lossyRig(2, plan)
	var down sim.Cycles
	for at := sim.Cycles(0); at < 10_000; at++ {
		if b.LinkDown(0, 1, at) {
			down++
		}
	}
	if down != 3000 {
		t.Fatalf("down %d of 10000 cycles, want 3000 (30%% duty)", down)
	}
	// Periodicity: the window repeats exactly.
	for at := sim.Cycles(0); at < 1000; at++ {
		if b.LinkDown(0, 1, at) != b.LinkDown(0, 1, at+5*1000) {
			t.Fatalf("flap window not periodic at %d", at)
		}
	}
	// Find a down cycle and send through it.
	var when sim.Cycles
	for b.LinkDown(0, 1, when) == false {
		when++
	}
	eps[0].clock.AdvanceTo(when)
	b.Send(&Packet{Src: 0, Dst: 1, Kind: PktData, Payload: make([]byte, 16)})
	eps[1].clock.Advance(100_000)
	if len(eps[1].got) != 0 {
		t.Fatal("packet crossed a down link")
	}
	fs := b.FaultStats()
	if fs.FlapDrops != 1 || fs.DroppedDataBytes != 16 {
		t.Fatalf("flap drop not counted: %+v", fs)
	}
}

// TestZeroPlanIsTransparent: an empty plan perturbs nothing — same
// deliveries, no fault stats, no RNG state.
func TestZeroPlanIsTransparent(t *testing.T) {
	b, eps := rig(2)
	if b.Plan().Enabled() {
		t.Fatal("fresh backplane has a fault plan")
	}
	sendBurst(b, eps, 50, 64)
	if got := len(eps[1].got); got != 50 {
		t.Fatalf("delivered %d of 50 on a clean wire", got)
	}
	if fs := b.FaultStats(); fs != (FaultStats{}) {
		t.Fatalf("clean wire accumulated fault stats: %+v", fs)
	}
}

// TestStatsCountRetransmissions: the retransmission breakout in
// Backplane.Stats counts packets flagged Retrans.
func TestStatsCountRetransmissions(t *testing.T) {
	b, eps := rig(2)
	b.Send(&Packet{Src: 0, Dst: 1, Payload: make([]byte, 100)})
	b.Send(&Packet{Src: 0, Dst: 1, Retrans: true, Payload: make([]byte, 40)})
	eps[1].clock.Advance(10_000)
	p, by, rp, rb := b.Stats()
	if p != 2 || by != 140 || rp != 1 || rb != 40 {
		t.Fatalf("Stats() = %d/%d/%d/%d, want 2/140/1/40", p, by, rp, rb)
	}
}
