package interconnect

import (
	"testing"

	"shrimp/internal/sim"
)

type fakeEP struct {
	id    int
	clock *sim.Clock
	got   []*Packet
}

func (f *fakeEP) NodeID() int               { return f.id }
func (f *fakeEP) NodeClock() *sim.Clock     { return f.clock }
func (f *fakeEP) DeliverPacket(pkt *Packet) { f.got = append(f.got, pkt) }

func costs() *sim.CostModel {
	return &sim.CostModel{
		CPUHz: 60e6, DMABytesPerCyc: 1,
		LinkBytesPerCyc: 2, LinkLatency: 10,
	}
}

func rig(n int) (*Backplane, []*fakeEP) {
	b := New(costs(), Mesh(n))
	eps := make([]*fakeEP, n)
	for i := range eps {
		eps[i] = &fakeEP{id: i, clock: sim.NewClock()}
		b.Attach(eps[i])
	}
	return b, eps
}

func TestDeliveryTiming(t *testing.T) {
	b, eps := rig(2)
	pkt := &Packet{Src: 0, Dst: 1, Payload: make([]byte, 100)}
	b.Send(pkt)
	// flight = 1 hop * 10 + 100/2 = 60.
	eps[1].clock.Advance(59)
	if len(eps[1].got) != 0 {
		t.Fatal("packet arrived early")
	}
	eps[1].clock.Advance(1)
	if len(eps[1].got) != 1 {
		t.Fatal("packet not delivered at flight time")
	}
	if pkt.ArrivedAt != 60 {
		t.Fatalf("ArrivedAt = %d, want 60", pkt.ArrivedAt)
	}
}

func TestInjectionSerializes(t *testing.T) {
	b, eps := rig(2)
	free1 := b.Send(&Packet{Src: 0, Dst: 1, Payload: make([]byte, 100)})
	free2 := b.Send(&Packet{Src: 0, Dst: 1, Payload: make([]byte, 100)})
	if free1 != 50 || free2 != 100 {
		t.Fatalf("inject-free times %d,%d, want 50,100", free1, free2)
	}
	eps[1].clock.Advance(10_000)
	if len(eps[1].got) != 2 {
		t.Fatalf("delivered %d packets", len(eps[1].got))
	}
	// In-order delivery.
	if eps[1].got[0].LaunchedAt > eps[1].got[1].LaunchedAt {
		t.Fatal("packets delivered out of order")
	}
}

func TestReceiverClockBehindSender(t *testing.T) {
	b, eps := rig(2)
	eps[0].clock.Advance(1000) // sender far ahead
	b.Send(&Packet{Src: 0, Dst: 1, Payload: make([]byte, 4)})
	// Receiver is at 0; arrival maps to sender-time 1000+flight.
	eps[1].clock.Advance(1000 + 10 + 2)
	if len(eps[1].got) != 1 {
		t.Fatal("packet lost across clock skew")
	}
}

func TestReceiverClockAheadOfSender(t *testing.T) {
	b, eps := rig(2)
	eps[1].clock.Advance(5000) // receiver ahead
	b.Send(&Packet{Src: 0, Dst: 1, Payload: make([]byte, 4)})
	// Delivery must not be scheduled in the receiver's past.
	eps[1].clock.Advance(1)
	if len(eps[1].got) != 1 {
		t.Fatal("packet not delivered promptly to ahead receiver")
	}
	if eps[1].got[0].ArrivedAt < 5000 {
		t.Fatal("packet delivered in receiver's past")
	}
}

func TestMeshHops(t *testing.T) {
	b, _ := rig(4) // 2x2 mesh
	cases := []struct {
		src, dst int
		want     sim.Cycles
	}{
		{0, 0, 1}, {0, 1, 1}, {0, 2, 1}, {0, 3, 2}, {1, 2, 2},
	}
	for _, tc := range cases {
		if got := b.Hops(tc.src, tc.dst); got != tc.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", tc.src, tc.dst, got, tc.want)
		}
	}
}

func TestLoopback(t *testing.T) {
	b, eps := rig(2)
	b.Send(&Packet{Src: 0, Dst: 0, Payload: make([]byte, 4)})
	eps[0].clock.Advance(100)
	if len(eps[0].got) != 1 {
		t.Fatal("loopback packet not delivered")
	}
}

func TestStats(t *testing.T) {
	b, eps := rig(2)
	b.Send(&Packet{Src: 0, Dst: 1, Payload: make([]byte, 64)})
	b.Send(&Packet{Src: 1, Dst: 0, Payload: make([]byte, 36)})
	p, by, rp, rb := b.Stats()
	if p != 2 || by != 100 {
		t.Fatalf("stats = %d,%d", p, by)
	}
	if rp != 0 || rb != 0 {
		t.Fatalf("retrans stats = %d,%d, want 0,0", rp, rb)
	}
	if b.Nodes() != 2 {
		t.Fatalf("Nodes = %d", b.Nodes())
	}
	_ = eps
}

func TestUnattachedPanics(t *testing.T) {
	b, _ := rig(1)
	for _, pkt := range []*Packet{{Src: 9, Dst: 0}, {Src: 0, Dst: 9}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("send with unattached endpoint did not panic")
				}
			}()
			b.Send(pkt)
		}()
	}
}

func TestDuplicateAttachPanics(t *testing.T) {
	b, eps := rig(1)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate attach did not panic")
		}
	}()
	b.Attach(eps[0])
}
