package loadgen

import (
	"testing"

	"shrimp/internal/cluster"
	"shrimp/internal/sim"
	"shrimp/internal/udmalib"
)

// chaosConfig is testConfig plus a crash schedule tuned so peers of a
// dead node reach the retry cap well inside one MTTR: the link breaks,
// in-flight messages fail fast, and the flow resumes on the next epoch
// after the reboot.
func chaosConfig(rate float64) TrialConfig {
	tc := testConfig(rate)
	tc.RetxTimeout = 6_000
	tc.RelMaxRetries = 3
	tc.Retry = udmalib.RetryPolicy{MaxAttempts: 3, Backoff: 2000}
	tc.Crash = cluster.CrashPlan{
		Seed:       5,
		MTBF:       350_000,
		MTTR:       80_000,
		FirstAt:    120_000,
		MaxCrashes: 2,
	}
	return tc
}

// TestTrialChaosCrashAccounts: a trial with crashes actually firing
// still accounts for every offered message — delivered or failed, none
// lost — and the availability readout reports the outages.
func TestTrialChaosCrashAccounts(t *testing.T) {
	res, err := RunTrial(chaosConfig(150))
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes == 0 {
		t.Fatal("chaos plan never fired; retune the schedule")
	}
	if res.Delivered+res.Failed != res.Messages {
		t.Fatalf("accounting across crashes: %d delivered + %d failed != %d offered",
			res.Delivered, res.Failed, res.Messages)
	}
	if res.Delivered == 0 {
		t.Fatal("nothing delivered under chaos")
	}
	if res.DowntimeCycles == 0 {
		t.Fatalf("crashes fired but no downtime recorded: %+v", res.Crashes)
	}
	if res.Respawns == 0 {
		t.Fatal("no node ever respawned after a reboot")
	}
	for c := range res.Classes {
		s := &res.Classes[c]
		if s.Delivered+s.Failed != s.Offered {
			t.Fatalf("class %s accounting: %d+%d != %d", s.Class, s.Delivered, s.Failed, s.Offered)
		}
	}
	// Every completed outage shows up as a dip, and a dip that recovered
	// has a finite width covering at least the outage itself.
	for _, d := range res.Dips {
		if d.UpAt <= d.DownAt {
			t.Fatalf("dip span inverted: %+v", d)
		}
		if d.RecoverAt != 0 && d.Width < d.UpAt-d.DownAt {
			t.Fatalf("dip recovered before the reboot: %+v", d)
		}
	}
}

// TestTrialChaosBitExact: crash–restart chaos is deterministic — the
// same config fingerprints identically across runs and across cluster
// worker counts.
func TestTrialChaosBitExact(t *testing.T) {
	base, err := RunTrial(chaosConfig(200))
	if err != nil {
		t.Fatal(err)
	}
	if base.Crashes == 0 {
		t.Fatal("chaos plan never fired; the determinism check would be vacuous")
	}
	again, err := RunTrial(chaosConfig(200))
	if err != nil {
		t.Fatal(err)
	}
	if base.Fingerprint() != again.Fingerprint() {
		t.Fatalf("same chaos config, different fingerprints: %016x vs %016x",
			base.Fingerprint(), again.Fingerprint())
	}
	par := chaosConfig(200)
	par.Workers = 4
	wide, err := RunTrial(par)
	if err != nil {
		t.Fatal(err)
	}
	if base.Fingerprint() != wide.Fingerprint() {
		t.Fatalf("chaos workers 1 vs 4 diverge: %016x vs %016x",
			base.Fingerprint(), wide.Fingerprint())
	}
}

// TestTrialChaosArmedNeverFiresEqualsNoPlan: the crash schedule draws
// from a private RNG that the simulation never reads, so a plan armed
// far past the trial's end is bit-identical to no plan at all — the
// "ample MTTR == no-crash" fingerprint property e17 leans on.
func TestTrialChaosArmedNeverFiresEqualsNoPlan(t *testing.T) {
	clean, err := RunTrial(testConfig(150))
	if err != nil {
		t.Fatal(err)
	}
	armed := testConfig(150)
	armed.Crash = cluster.CrashPlan{Seed: 9, MTBF: 1 << 40, FirstAt: sim.Cycles(1) << 50}
	res, err := RunTrial(armed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes != 0 {
		t.Fatalf("far-future plan fired %d crashes", res.Crashes)
	}
	if clean.Fingerprint() != res.Fingerprint() {
		t.Fatalf("armed-but-idle plan perturbed the simulation: %016x vs %016x",
			clean.Fingerprint(), res.Fingerprint())
	}
}
