package loadgen

import (
	"fmt"

	"shrimp/internal/cluster"
	"shrimp/internal/nic"
	"shrimp/internal/sim"
)

// Availability readout for the chaos regime: the driver half that
// tracks cluster.CrashPlan outages (syncCrashState, inDown) and the
// post-trial analysis that turns the per-node delivery time series into
// goodput-dip depth/width and time-to-recover per crash (computeDips).

// syncCrashState mirrors the cluster's crash state into the driver at a
// lockstep barrier. A node observed newly down retracts its window
// publication (its exported frames died with it; the respawned receiver
// will export fresh ones); a node observed newly up gets its serving
// complement respawned, resuming from the host-memory progress state
// (queues, nextArr, lastSeq). The crash-event copy refreshed here is
// what servers read mid-window to attribute sojourns to outages.
func (dr *Driver) syncCrashState() {
	for i := range dr.nodes {
		isDown := dr.cl.NodeDown(i)
		switch {
		case isDown && !dr.down[i]:
			dr.down[i] = true
			dr.nodes[i].pendingPfns = nil
			dr.published[i] = false
		case !isDown && dr.down[i]:
			dr.down[i] = false
			dr.respawns++
			dr.spawnNode(i)
		}
	}
	dr.spans = dr.cl.CrashEvents()
}

// inDown reports whether simulated time `at` falls inside any crash
// span (open spans extend to forever). Servers call it mid-window; the
// spans slice is written only at barriers, so the read is race-free and
// identical at every worker count.
func (dr *Driver) inDown(at sim.Cycles) bool {
	for i := range dr.spans {
		ev := &dr.spans[i]
		if at >= ev.DownAt && (ev.UpAt == 0 || at < ev.UpAt) {
			return true
		}
	}
	return false
}

// republishFlowEntries rewrites the churn-mode NIPT entries aimed at
// node r's freshly exported window after a reboot. Runs at a barrier in
// flow order, like the initial publishFlowEntries.
func (dr *Driver) republishFlowEntries(r int) error {
	pfns := dr.windows[r]
	for f, fl := range dr.Plan.Flows {
		if fl.Dst != r {
			continue
		}
		e := nic.NIPTEntry{Valid: true, DestNode: fl.Dst, DestPFN: pfns[f%len(pfns)]}
		if err := dr.cl.NICs[fl.Src].SetNIPT(uint32(f), e); err != nil {
			return fmt.Errorf("loadgen: republish flow %d entry on node %d: %w", f, fl.Src, err)
		}
	}
	return nil
}

// Dip is one crash's availability signature in the delivery time
// series: how deep cluster goodput fell during the outage and how long
// the system took to deliver again after the reboot.
type Dip struct {
	Node   int
	DownAt sim.Cycles
	UpAt   sim.Cycles
	// Depth is 1 − (minimum per-bucket delivery rate inside the outage)
	// ÷ (whole-trial mean rate), clamped to [0,1]: 1.0 means delivery
	// stopped entirely for at least one sample bucket.
	Depth float64
	// RecoverAt is the end of the first sample bucket after the reboot
	// in which anything was delivered (0 = never recovered — e17 treats
	// that as failure).
	RecoverAt sim.Cycles
	// Width is RecoverAt − DownAt: outage plus recovery tail.
	Width sim.Cycles
}

// computeDips buckets every node's cumulative-delivery samples into
// SampleEvery-wide bins and reads each completed crash event's dip out
// of the aggregate curve. Open events (node still down at trial end)
// are skipped.
func computeDips(events []cluster.CrashEvent, samples [][]Sample,
	delivered int, elapsed, sampleEvery sim.Cycles) []Dip {
	if len(events) == 0 || sampleEvery <= 0 || elapsed <= 0 {
		return nil
	}
	// Per-bucket cluster-wide deliveries from the per-node cumulative
	// Done series.
	buckets := make(map[sim.Cycles]int)
	var lastBucket sim.Cycles
	for _, series := range samples {
		prev := 0
		for _, sm := range series {
			b := sm.At / sampleEvery
			buckets[b] += sm.Done - prev
			prev = sm.Done
			if b > lastBucket {
				lastBucket = b
			}
		}
	}
	baseline := float64(delivered) * float64(sampleEvery) / float64(elapsed)
	dips := make([]Dip, 0, len(events))
	for _, ev := range events {
		if ev.UpAt == 0 {
			continue
		}
		d := Dip{Node: ev.Node, DownAt: ev.DownAt, UpAt: ev.UpAt}
		if baseline > 0 {
			minRate := -1
			for b := ev.DownAt / sampleEvery; b <= ev.UpAt/sampleEvery; b++ {
				if r := buckets[b]; minRate < 0 || r < minRate {
					minRate = r
				}
			}
			if minRate >= 0 {
				d.Depth = 1 - float64(minRate)/baseline
				if d.Depth < 0 {
					d.Depth = 0
				}
				if d.Depth > 1 {
					d.Depth = 1
				}
			}
		}
		for b := ev.UpAt / sampleEvery; b <= lastBucket; b++ {
			if buckets[b] > 0 {
				d.RecoverAt = (b + 1) * sampleEvery
				d.Width = d.RecoverAt - ev.DownAt
				break
			}
		}
		dips = append(dips, d)
	}
	return dips
}
