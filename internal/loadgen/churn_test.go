package loadgen

import (
	"reflect"
	"testing"
)

// churnConfig is the shared churn trial shape: enough messages for a
// few generations of flow death, a small live population, and a short
// mean flow life — the access pattern that pressures a bounded NIPT.
func churnConfig(rate float64) TrialConfig {
	return TrialConfig{
		Config: Config{
			Nodes:       3,
			Seed:        11,
			Rate:        rate,
			Messages:    240,
			Churn:       true,
			ActiveFlows: 24,
			MsgsPerFlow: 2,
		},
		NIPTRefillJitter: 32,
		IdleReclaimAge:   60_000,
	}
}

func TestChurnPlanDeterministic(t *testing.T) {
	cfg := churnConfig(150).Config
	a, b := BuildPlan(cfg), BuildPlan(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two churn plans from one config differ")
	}
	if a.FlowDeaths == 0 {
		t.Fatal("no flow deaths: the schedule never churned")
	}
	if len(a.Flows) != cfg.ActiveFlows+a.FlowDeaths {
		t.Fatalf("%d flows != %d live + %d deaths", len(a.Flows), cfg.ActiveFlows, a.FlowDeaths)
	}
	if got := a.NIPTEntries(); got != uint32(len(a.Flows)) {
		t.Fatalf("churn NIPTEntries %d, want one per flow (%d)", got, len(a.Flows))
	}
	// Schedules stay time-ordered per source, per-flow sequences count
	// up from zero, and no flow sends to itself — churn must not weaken
	// any invariant of the fixed flow model.
	seq := make(map[int]int)
	total := 0
	for src, arr := range a.Arrivals {
		total += len(arr)
		for i, ar := range arr {
			if i > 0 && ar.At < arr[i-1].At {
				t.Fatalf("node %d arrivals out of order at %d", src, i)
			}
			if a.Flows[ar.Flow].Src != src {
				t.Fatalf("flow %d scheduled on node %d but pinned to %d", ar.Flow, src, a.Flows[ar.Flow].Src)
			}
			if want := seq[ar.Flow]; ar.Seq != want {
				t.Fatalf("flow %d seq %d, want %d", ar.Flow, ar.Seq, want)
			}
			seq[ar.Flow]++
		}
	}
	if total != cfg.Messages {
		t.Fatalf("scheduled %d arrivals, want %d", total, cfg.Messages)
	}
	for f, fl := range a.Flows {
		if fl.Src == fl.Dst {
			t.Fatalf("flow %d is a self-loop (node %d)", f, fl.Src)
		}
	}
	// A dead flow never reappears in the schedule: its arrivals must
	// not exceed the budget ceiling 2*MsgsPerFlow-1.
	for f, n := range seq {
		if max := 2*cfg.MsgsPerFlow - 1; n > max {
			t.Fatalf("flow %d got %d arrivals, budget ceiling is %d", f, n, max)
		}
	}
}

func TestChurnTrialServesUnderCachePressure(t *testing.T) {
	tc := churnConfig(150)
	tc.NIPTCapacity = 8 // far below the flow population
	res, err := RunTrial(tc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered+res.Failed != res.Messages {
		t.Fatalf("churn accounting: %d+%d != %d", res.Delivered, res.Failed, res.Messages)
	}
	if res.Failed != 0 || res.OrderViolations != 0 {
		t.Fatalf("clean churn trial: %d failed, %d order violations", res.Failed, res.OrderViolations)
	}
	if res.FlowDeaths == 0 {
		t.Fatal("trial readout lost the plan's flow deaths")
	}
	if res.NIPTMisses == 0 || res.NIPTEvictions == 0 || res.NIPTRefillCycles == 0 {
		t.Fatalf("capacity 8 under churn never missed: %+v", res)
	}
	if res.NIPTHits+res.NIPTMisses != res.NIPTLookups {
		t.Fatalf("nipt accounting: %d hits + %d misses != %d lookups",
			res.NIPTHits, res.NIPTMisses, res.NIPTLookups)
	}
	if res.Reclaims == 0 {
		t.Fatal("no idle reliability state reclaimed over the trial")
	}
	if res.Resurrections == 0 {
		t.Fatal("no reclaimed link was ever resurrected by fresh traffic")
	}
}

// TestChurnCapacityEquivalence is the trial-level analogue of the nic
// package's property test: a cache big enough for every flow entry is
// bit-identical to the unbounded table — same fingerprint, which folds
// in every delivery count, sojourn aggregate, queue sample and NIPT
// counter.
func TestChurnCapacityEquivalence(t *testing.T) {
	tc := churnConfig(150)
	unbounded, err := RunTrial(tc)
	if err != nil {
		t.Fatal(err)
	}
	tc.NIPTCapacity = int(BuildPlan(tc.Config).NIPTEntries())
	ample, err := RunTrial(tc)
	if err != nil {
		t.Fatal(err)
	}
	if unbounded.Fingerprint() != ample.Fingerprint() {
		t.Fatalf("ample capacity diverged from unbounded: %016x vs %016x",
			unbounded.Fingerprint(), ample.Fingerprint())
	}
	if unbounded.NIPTMisses != 0 || ample.NIPTMisses != 0 {
		t.Fatalf("misses without capacity pressure: %d / %d",
			unbounded.NIPTMisses, ample.NIPTMisses)
	}
}

func TestChurnBitExactAcrossRunsAndWorkers(t *testing.T) {
	tc := churnConfig(200)
	tc.NIPTCapacity = 8
	base, err := RunTrial(tc)
	if err != nil {
		t.Fatal(err)
	}
	again, err := RunTrial(tc)
	if err != nil {
		t.Fatal(err)
	}
	if base.Fingerprint() != again.Fingerprint() {
		t.Fatalf("same churn config, different fingerprints: %016x vs %016x",
			base.Fingerprint(), again.Fingerprint())
	}
	par := tc
	par.Workers = 4
	wide, err := RunTrial(par)
	if err != nil {
		t.Fatal(err)
	}
	if base.Fingerprint() != wide.Fingerprint() {
		t.Fatalf("churn workers 1 vs 4 diverge: %016x vs %016x",
			base.Fingerprint(), wide.Fingerprint())
	}
}
