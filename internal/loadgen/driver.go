package loadgen

import (
	"errors"
	"fmt"

	"shrimp/internal/addr"
	"shrimp/internal/cluster"
	"shrimp/internal/kernel"
	"shrimp/internal/nic"
	"shrimp/internal/sim"
	"shrimp/internal/telemetry"
	"shrimp/internal/udmalib"
	"shrimp/internal/workload"
)

// DriverOptions tunes a Driver bound to an existing cluster.
type DriverOptions struct {
	// Retry is the send retry policy for UDMA classes (zero value takes
	// a generous budget that rides out credit-window stalls).
	Retry udmalib.RetryPolicy
	// Metrics mirrors the driver's sojourn histograms, arrival/outcome
	// counters and queue-depth gauges into a telemetry registry (nil =
	// off; the driver keeps its own instruments either way).
	Metrics *telemetry.Registry
}

// fifo is one per-destination queue: pacer appends at the tail, the
// destination's server pops at head. Both live on the same node, so the
// kernel's coroutine scheduling serializes every access.
type fifo struct {
	items []Arrival
	head  int
}

func (q *fifo) depth() int { return len(q.items) - q.head }

// nodeState is everything node-local: mid-window, only processes of
// that node touch it, which is what makes the driver safe (and
// bit-exact) at any cluster worker count.
type nodeState struct {
	queues    []fifo // indexed by destination node
	pacerDone bool
	depthNow  int
	maxDepth  int
	lastSeq   map[int]int // per-flow last served Seq

	pendingPfns []uint32 // receiver's export awaiting barrier publication

	// nextArr is the pacer's progress through the node's arrival
	// schedule. It lives here, not in the pacer's stack, so the pacer a
	// crash kills can be respawned to resume exactly where it stopped —
	// the open-loop clients keep offering load to a crashed node.
	nextArr int

	arrivals       [NumClasses]int
	delivered      [NumClasses]int
	failed         [NumClasses]int
	deliveredBytes [NumClasses]uint64
	downDelivered  [NumClasses]int // deliveries whose arrival fell in a crash span
	orderViol      int
	retries        uint64 // udmalib-level initiation retries + resends
	lastDone       sim.Cycles
	samples        []Sample

	err error
}

func (ns *nodeState) fail(err error) {
	if ns.err == nil {
		ns.err = err
	}
}

// Driver binds a Plan to a live cluster: it spawns the serving
// processes (receiver, pacer, per-destination servers, sampler) on
// every node and owns the barrier-published control state. The owner of
// the cluster's run loop must call PublishControl at every lockstep
// barrier — exactly where simcheck publishes its own cross-node
// control — and Finish once the cluster has drained.
type Driver struct {
	Plan *Plan

	cl   *cluster.Cluster
	opts DriverOptions

	nodes []*nodeState
	hist  [NumClasses]*telemetry.Histogram // sojourn cycles, atomic
	mhist [NumClasses]*telemetry.Histogram // registry mirror (nil-safe)

	// Barrier-written, window-read control flags: processes only ever
	// read these mid-window, PublishControl only ever writes them when
	// no worker is running.
	published   []bool
	windowReady bool
	stopRecv    bool
	ctlErr      error

	// Churn mode: receiver exports parked per node until every window is
	// known, then one NIPT entry per flow is installed in a single
	// barrier pass (flowsPublished latches that it happened once).
	windows        [][]uint32
	flowsPublished bool

	// Crash awareness (availability.go): down mirrors the cluster's
	// crash state as of the last barrier; a down→up transition respawns
	// the node's serving processes. spans is the barrier-refreshed copy
	// of the cluster's crash events, read mid-window by servers to
	// attribute sojourns to outages.
	down     []bool
	spans    []cluster.CrashEvent
	respawns int
	histDown [NumClasses]*telemetry.Histogram // sojourns of crash-span arrivals

	work []*kernel.Proc // every non-receiver process
}

// NewDriver attaches a plan to a cluster and spawns the serving
// processes. The cluster's NIC must be configured with PIOWindow and at
// least Plan.NIPTEntries() NIPT pages.
func NewDriver(plan *Plan, cl *cluster.Cluster, opts DriverOptions) *Driver {
	if len(cl.Nodes) != plan.Cfg.Nodes {
		panic(fmt.Sprintf("loadgen: plan wants %d nodes, cluster has %d", plan.Cfg.Nodes, len(cl.Nodes)))
	}
	if opts.Retry.MaxAttempts == 0 {
		opts.Retry = udmalib.RetryPolicy{MaxAttempts: 12, Backoff: 512}
	}
	dr := &Driver{Plan: plan, cl: cl, opts: opts}
	dr.published = make([]bool, plan.Cfg.Nodes)
	dr.windows = make([][]uint32, plan.Cfg.Nodes)
	dr.down = make([]bool, plan.Cfg.Nodes)
	for c := 0; c < NumClasses; c++ {
		dr.hist[c] = &telemetry.Histogram{}
		dr.histDown[c] = &telemetry.Histogram{}
		dr.mhist[c] = opts.Metrics.Histogram("loadgen_sojourn_cycles",
			telemetry.L("class", Class(c).String()))
	}
	for i := 0; i < plan.Cfg.Nodes; i++ {
		ns := &nodeState{
			queues:  make([]fifo, plan.Cfg.Nodes),
			lastSeq: make(map[int]int),
		}
		dr.nodes = append(dr.nodes, ns)
	}
	for i := range dr.nodes {
		dr.spawnNode(i)
	}
	return dr
}

// spawnNode spawns one node's full serving complement: receiver, pacer,
// per-destination servers, sampler. Called once per node at NewDriver
// and again by PublishControl when a crashed node reboots — all the
// node-local progress state (queues, nextArr, lastSeq) lives in
// nodeState, so the respawned processes resume where the killed ones
// stopped.
func (dr *Driver) spawnNode(node int) {
	k := dr.cl.Nodes[node].Kernel
	k.Spawn(fmt.Sprintf("recv%d", node), dr.receiverBody(node))
	dr.work = append(dr.work,
		k.Spawn(fmt.Sprintf("pacer%d", node), dr.pacerBody(node)))
	for dst := 0; dst < dr.Plan.Cfg.Nodes; dst++ {
		if dst == node {
			continue
		}
		dr.work = append(dr.work,
			k.Spawn(fmt.Sprintf("serve%d-%d", node, dst), dr.serverBody(node, dst)))
	}
	dr.work = append(dr.work,
		k.Spawn(fmt.Sprintf("sample%d", node), dr.samplerBody(node)))
}

// receiverBody pins this node's receive window and parks the frame
// numbers for barrier publication into every sender's NIPT — incoming
// deliberate updates then land with no CPU involvement, exactly as on
// SHRIMP. It idles until PublishControl stops it.
func (dr *Driver) receiverBody(node int) func(p *kernel.Proc) {
	return func(p *kernel.Proc) {
		ns := dr.nodes[node]
		cfg := dr.Plan.Cfg
		buf, err := p.Alloc(cfg.WindowPages * addr.PageSize)
		if err != nil {
			ns.fail(fmt.Errorf("loadgen: node %d receive window alloc: %w", node, err))
			return
		}
		pfns, err := udmalib.ExportBuffer(dr.cl.Nodes[node].Kernel, p, buf, cfg.WindowPages)
		if err != nil {
			ns.fail(fmt.Errorf("loadgen: node %d export: %w", node, err))
			return
		}
		ns.pendingPfns = pfns
		for !dr.stopRecv {
			p.Sleep(2000)
		}
	}
}

// pacerBody walks this node's precomputed arrival schedule, sleeping on
// simulated time to each arrival instant and appending the arrival to
// its destination queue. It never waits for service — the whole point
// of the open loop — so at saturation the queues simply grow.
func (dr *Driver) pacerBody(node int) func(p *kernel.Proc) {
	return func(p *kernel.Proc) {
		ns := dr.nodes[node]
		arrCtr := dr.opts.Metrics.Counter("loadgen_arrivals", telemetry.L("node", fmt.Sprint(node)))
		schedule := dr.Plan.Arrivals[node]
		// Resume from ns.nextArr: a respawned pacer (the node crashed and
		// rebooted) walks the same schedule from where the kill hit it —
		// an arrival past its instant enqueues immediately, modeling the
		// clients that kept sending into the outage. The Sleep is the
		// only kill point in the loop, so the enqueue block is atomic and
		// no arrival is ever double-enqueued.
		for ns.nextArr < len(schedule) {
			ar := schedule[ns.nextArr]
			if now := p.Now(); now < ar.At {
				p.Sleep(ar.At - now)
			}
			fl := dr.Plan.Flows[ar.Flow]
			q := &ns.queues[fl.Dst]
			q.items = append(q.items, ar)
			ns.nextArr++
			ns.arrivals[fl.Class]++
			ns.depthNow++
			if ns.depthNow > ns.maxDepth {
				ns.maxDepth = ns.depthNow
			}
			arrCtr.Inc()
		}
		ns.pacerDone = true
	}
}

// serverBody drains one (source node, destination) FIFO queue: pop the
// head arrival, ship it by its flow's class, and record the sojourn —
// scheduled arrival to send completion, so time spent queued behind a
// saturated NIC is charged where a serving system would feel it.
func (dr *Driver) serverBody(node, dst int) func(p *kernel.Proc) {
	return func(p *kernel.Proc) {
		ns := dr.nodes[node]
		cfg := dr.Plan.Cfg
		d, err := udmalib.Open(p, dr.cl.Dev(node), true)
		if err != nil {
			ns.fail(fmt.Errorf("loadgen: node %d open nic: %w", node, err))
			return
		}
		defer func() { ns.retries += d.Stats().Retries }()
		large := ClassLarge.Size(cfg.WindowPages)
		buf, err := p.Alloc(large)
		if err != nil {
			ns.fail(fmt.Errorf("loadgen: node %d server buffer: %w", node, err))
			return
		}
		if err := p.WriteBuf(buf, workload.Payload(large, byte(node*16+dst+1))); err != nil {
			ns.fail(fmt.Errorf("loadgen: node %d server fill: %w", node, err))
			return
		}
		pioFirst, _, _ := dr.cl.NICs[node].PIOWindow()
		pioBase := d.Base() + addr.VAddr(pioFirst*addr.PageSize)
		entryBase := uint32(dst * cfg.WindowPages)

		// A crash can kill this server mid-send, after the arrival was
		// popped but before its outcome was recorded. Deferred cleanups
		// run on the kill unwind, so the in-flight message is charged to
		// the failed column — queued arrivals stay in the (host-memory)
		// FIFO for the respawned server, but the one on the wire died
		// with the node.
		inflight := -1
		defer func() {
			if inflight >= 0 {
				ns.failed[inflight]++
			}
		}()

		q := &ns.queues[dst]
		for {
			if q.head == len(q.items) {
				if ns.pacerDone {
					return
				}
				p.Sleep(500)
				continue
			}
			if !dr.windowReady {
				if dr.ctlErr != nil {
					return
				}
				p.Sleep(1000)
				continue
			}
			ar := q.items[q.head]
			q.head++
			ns.depthNow--
			fl := dr.Plan.Flows[ar.Flow]
			if last, seen := ns.lastSeq[ar.Flow]; (seen && ar.Seq != last+1) || (!seen && ar.Seq != 0) {
				ns.orderViol++
			}
			ns.lastSeq[ar.Flow] = ar.Seq

			entry := entryBase + uint32(ar.Seq%cfg.WindowPages)
			if fl.Class == ClassLarge {
				entry = entryBase // multi-page: span the window from its base
			}
			if cfg.Churn {
				// Every flow ships through its own single-page window:
				// the entry index is the flow id.
				entry = uint32(ar.Flow)
			}
			size := dr.Plan.MsgSize(fl.Class)
			inflight = int(fl.Class)
			var serr error
			switch fl.Class {
			case ClassSmall:
				// Spread PIO bursts across the window page, 64B apart.
				off := uint32(ar.Seq%63) * 64
				serr = pioSend(p, pioBase, entry, off, size/4, uint32(ar.Flow)<<8)
			default:
				serr = d.SendRetry(buf, udmalib.WindowOff(entry, 0), size, dr.opts.Retry)
			}
			inflight = -1
			now := p.Now()
			switch {
			case serr == nil:
				ns.delivered[fl.Class]++
				ns.deliveredBytes[fl.Class] += uint64(size)
				dr.hist[fl.Class].Observe(uint64(now - ar.At))
				dr.mhist[fl.Class].Observe(uint64(now - ar.At))
				if dr.inDown(ar.At) {
					ns.downDelivered[fl.Class]++
					dr.histDown[fl.Class].Observe(uint64(now - ar.At))
				}
				if now > ns.lastDone {
					ns.lastDone = now
				}
			case transferFailure(serr):
				// The message is lost to its flow but the system keeps
				// serving — exactly what the failed count is for.
				ns.failed[fl.Class]++
			default:
				ns.fail(fmt.Errorf("loadgen: node %d flow %d: %w", node, ar.Flow, serr))
				return
			}
		}
	}
}

// samplerBody records this node's queue depth and NIC pressure counters
// on a fixed simulated-time cadence — the time series the SLO readout
// plots saturation from.
func (dr *Driver) samplerBody(node int) func(p *kernel.Proc) {
	return func(p *kernel.Proc) {
		ns := dr.nodes[node]
		gauge := dr.opts.Metrics.Gauge("loadgen_queue_depth", telemetry.L("node", fmt.Sprint(node)))
		for {
			p.Sleep(dr.Plan.Cfg.SampleEvery)
			st := dr.cl.NICs[node].Stats()
			done := 0
			for c := 0; c < NumClasses; c++ {
				done += ns.delivered[c]
			}
			ns.samples = append(ns.samples, Sample{
				At:           p.Now(),
				Depth:        ns.depthNow,
				CreditStalls: st.CreditStalls,
				Retransmits:  st.Retransmits,
				Done:         done,
			})
			gauge.Set(int64(ns.depthNow))
			if ns.pacerDone && ns.depthNow == 0 {
				return
			}
		}
	}
}

// pioSend pushes one small message through the NIC's memory-mapped FIFO
// window: destination register, data words, launch. Fire-and-forget, as
// on the Section 9 baseline — completion means the packet left the
// board, and the reliability sublayer (when armed) carries it from
// there.
func pioSend(p *kernel.Proc, pioBase addr.VAddr, entry, off uint32, words int, tag uint32) error {
	if err := p.Store(pioBase+nic.PIORegDest, entry<<addr.PageShift|off); err != nil {
		return err
	}
	for w := 0; w < words; w++ {
		if err := p.Store(pioBase+nic.PIORegData, tag+uint32(w)*0x9E3779B9); err != nil {
			return err
		}
	}
	return p.Store(pioBase+nic.PIORegLaunch, 1)
}

// transferFailure reports whether err is a per-message delivery failure
// (retry budget exhausted, or a hard transfer error) rather than a
// driver bug.
func transferFailure(err error) bool {
	return errors.As(err, new(*udmalib.RetryExhaustedError)) ||
		errors.As(err, new(*udmalib.HardError))
}

// PublishControl performs the driver's cross-node control plane. It
// must be called at lockstep barriers only, when no worker goroutine is
// running: receiver windows parked mid-window are mapped into every
// sender's NIPT here, and the receiver stop flag is raised once all
// serving work has exited — both ordered identically at every worker
// count.
func (dr *Driver) PublishControl() {
	if dr.ctlErr != nil {
		dr.stopRecv = true
		return
	}
	// Crash transitions first (availability.go): a node that went down
	// retracts its publication so the respawned receiver's fresh export
	// is republished; a node that came back up gets its serving
	// processes respawned.
	dr.syncCrashState()
	allPublished := true
	for r, ns := range dr.nodes {
		if dr.published[r] {
			continue
		}
		if ns.pendingPfns == nil {
			allPublished = false
			continue
		}
		if dr.Plan.Cfg.Churn {
			// Flow entries need every destination window at once; park
			// the export until the last receiver reports in.
			dr.windows[r] = ns.pendingPfns
			if dr.flowsPublished {
				// Post-reboot republication: the flow population was
				// already installed once, so only the entries aimed at
				// this node's (fresh) window need rewriting.
				if err := dr.republishFlowEntries(r); err != nil {
					dr.ctlErr = err
					dr.stopRecv = true
					return
				}
			}
		} else {
			base := uint32(r * dr.Plan.Cfg.WindowPages)
			for s := range dr.nodes {
				if s == r {
					continue
				}
				if err := udmalib.MapSendWindow(dr.cl.NICs[s], base, r, ns.pendingPfns); err != nil {
					dr.ctlErr = fmt.Errorf("loadgen: publish node %d window into sender %d: %w", r, s, err)
					dr.stopRecv = true
					return
				}
			}
		}
		dr.published[r] = true
	}
	if allPublished {
		if dr.Plan.Cfg.Churn && !dr.flowsPublished {
			if err := dr.publishFlowEntries(); err != nil {
				dr.ctlErr = err
				dr.stopRecv = true
				return
			}
			dr.flowsPublished = true
		}
		dr.windowReady = true
	}
	if !dr.stopRecv && dr.workDone() {
		dr.stopRecv = true
	}
}

// publishFlowEntries installs one NIPT entry per flow on its source
// NIC — entry index == flow id, pointing at one frame of the
// destination's exported window. The backing table thus spans the whole
// flow population (thousands of short-lived mappings under churn) while
// a bounded NIPT cache chases only the live working set. Runs once, at
// a barrier, in flow order: identical at every worker count.
func (dr *Driver) publishFlowEntries() error {
	for f, fl := range dr.Plan.Flows {
		pfns := dr.windows[fl.Dst]
		e := nic.NIPTEntry{Valid: true, DestNode: fl.Dst, DestPFN: pfns[f%len(pfns)]}
		if err := dr.cl.NICs[fl.Src].SetNIPT(uint32(f), e); err != nil {
			return fmt.Errorf("loadgen: install flow %d entry on node %d: %w", f, fl.Src, err)
		}
	}
	return nil
}

// workDone reports whether every pacer, server and sampler has exited
// (receivers excluded — they are what the answer stops). A node that is
// currently down never counts as done: its killed processes have
// exited, but the reboot will respawn them to finish the queued work.
func (dr *Driver) workDone() bool {
	for i := range dr.down {
		if dr.down[i] {
			return false
		}
	}
	for _, p := range dr.work {
		if !p.Exited() {
			return false
		}
	}
	return true
}

// Err surfaces the first hard error, in deterministic node order.
func (dr *Driver) Err() error {
	if dr.ctlErr != nil {
		return dr.ctlErr
	}
	for _, ns := range dr.nodes {
		if ns.err != nil {
			return ns.err
		}
	}
	return nil
}
