package loadgen

import (
	"fmt"
	"hash/fnv"
	"io"

	"shrimp/internal/sim"
)

// Sample is one point of a node's queue-depth / NIC-pressure time
// series, taken every Config.SampleEvery cycles.
type Sample struct {
	At           sim.Cycles
	Depth        int    // messages queued on the node, all destinations
	CreditStalls uint64 // NIC lifetime counter at sample time
	Retransmits  uint64
	Done         int // node's cumulative deliveries — the availability curve
}

// ClassSLO is the serving readout for one traffic class.
type ClassSLO struct {
	Class     string
	Offered   int
	Delivered int
	Failed    int
	Bytes     uint64 // delivered payload bytes
	// Sojourn percentiles in cycles: scheduled arrival → send
	// completion, so queueing behind a saturated NIC is counted.
	P50, P99, P999 float64
	MeanSojourn    float64
	MaxSojourn     uint64
}

// Result is one trial's complete SLO readout.
type Result struct {
	Cfg Config

	// Span is the offered interval (first to last scheduled arrival);
	// Elapsed runs from StartAt to the last delivery. An unsaturated
	// system keeps Elapsed ≈ Span; past the knee Elapsed stretches.
	Span    sim.Cycles
	Elapsed sim.Cycles

	// OfferedRate is the realized schedule rate (messages per million
	// cycles of Span); AchievedRate is deliveries per million cycles of
	// Elapsed. Their ratio is the saturation signal Knee looks for.
	OfferedRate  float64
	AchievedRate float64

	Messages       int
	Delivered      int
	Failed         int
	DeliveredBytes uint64

	Classes [NumClasses]ClassSLO

	// OrderViolations counts per-flow FIFO breaches observed at serve
	// time — always zero unless the queueing layer is broken.
	OrderViolations int
	MaxQueueDepth   int
	Retries         uint64 // udmalib initiation retries across all servers

	// NIC lifetime aggregates across all nodes, post-drain.
	CreditStalls     uint64
	Retransmits      uint64
	DeliveryFailures uint64

	// NIPT cache aggregates across all nodes (zero when the cache is
	// unbounded and no lookups missed).
	NIPTLookups      uint64
	NIPTHits         uint64
	NIPTMisses       uint64
	NIPTEvictions    uint64
	NIPTRefillCycles uint64

	// Reliability-state reclamation aggregates, and the plan's flow
	// churn (FlowDeaths is schedule data, not simulation output).
	Reclaims      uint64
	Resurrections uint64
	FlowDeaths    int

	// Availability readout (all zero unless a cluster.CrashPlan fired).
	Crashes           uint64
	DowntimeCycles    sim.Cycles
	RecoveryLagCycles sim.Cycles
	Respawns          int // serving complements respawned after reboots
	// CrashAbandonedBytes is the NICs' abandoned ledger (queued/unacked
	// payload wiped at crash, never wire-final); CrashDroppedBytes sums
	// the wire-carried payload the crashes swallowed (backplane drops
	// into down nodes, wiped reseq buffers, invalidated receive DMAs).
	CrashAbandonedBytes uint64
	CrashDroppedBytes   uint64
	// Dips is the per-crash availability signature (availability.go);
	// DownClasses restricts the sojourn readout to messages that
	// arrived during an outage — the MTTR tail.
	Dips        []Dip
	DownClasses [NumClasses]ClassSLO

	// Samples[node] is each node's queue-depth time series.
	Samples [][]Sample
}

// Goodput is delivered payload bytes per million cycles.
func (r *Result) Goodput() float64 {
	if r.Elapsed == 0 {
		return 0
	}
	return float64(r.DeliveredBytes) * 1e6 / float64(r.Elapsed)
}

// Fingerprint digests everything the simulation determines — counts,
// bytes, sojourn histogram aggregates, queue series, final ordering
// state — into one value two bit-exact runs must share. Two runs of the
// same TrialConfig must produce the same fingerprint at any worker
// count.
func (r *Result) Fingerprint() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "span=%d el=%d msgs=%d del=%d fail=%d bytes=%d ord=%d depth=%d retry=%d",
		r.Span, r.Elapsed, r.Messages, r.Delivered, r.Failed,
		r.DeliveredBytes, r.OrderViolations, r.MaxQueueDepth, r.Retries)
	fmt.Fprintf(h, " stall=%d rtx=%d dfail=%d", r.CreditStalls, r.Retransmits, r.DeliveryFailures)
	fmt.Fprintf(h, " nipt=%d/%d/%d/%d/%d rec=%d res=%d deaths=%d",
		r.NIPTLookups, r.NIPTHits, r.NIPTMisses, r.NIPTEvictions, r.NIPTRefillCycles,
		r.Reclaims, r.Resurrections, r.FlowDeaths)
	fmt.Fprintf(h, " crash=%d dt=%d lag=%d resp=%d ab=%d cd=%d",
		r.Crashes, r.DowntimeCycles, r.RecoveryLagCycles, r.Respawns,
		r.CrashAbandonedBytes, r.CrashDroppedBytes)
	for c := range r.Classes {
		s := &r.Classes[c]
		fmt.Fprintf(h, " c%d=%d/%d/%d/%d max=%d", c, s.Offered, s.Delivered, s.Failed, s.Bytes, s.MaxSojourn)
	}
	for node, series := range r.Samples {
		fmt.Fprintf(h, " n%d:", node)
		for _, sm := range series {
			fmt.Fprintf(h, "(%d,%d,%d,%d,%d)", sm.At, sm.Depth, sm.CreditStalls, sm.Retransmits, sm.Done)
		}
	}
	return h.Sum64()
}

// WriteTable renders the per-class SLO readout as aligned text. costs
// may be nil, in which case latencies print in cycles.
func (r *Result) WriteTable(w io.Writer, costs *sim.CostModel) {
	unit, scale := "cycles", func(v float64) float64 { return v }
	if costs != nil {
		unit, scale = "µs", func(v float64) float64 { return costs.Micros(sim.Cycles(v)) }
	}
	fmt.Fprintf(w, "offered %.1f msgs/Mcycle, achieved %.1f; goodput %.0f B/Mcycle; max queue depth %d\n",
		r.OfferedRate, r.AchievedRate, r.Goodput(), r.MaxQueueDepth)
	if r.Cfg.Churn {
		fmt.Fprintf(w, "churn: %d flows (%d deaths); nipt %d lookups, %d misses, %d evictions, %d refill cycles; reclaims %d, resurrections %d\n",
			r.FlowDeaths+r.Cfg.ActiveFlows, r.FlowDeaths,
			r.NIPTLookups, r.NIPTMisses, r.NIPTEvictions, r.NIPTRefillCycles,
			r.Reclaims, r.Resurrections)
	}
	if r.Crashes > 0 {
		fmt.Fprintf(w, "chaos: %d crashes, %d cycles down, %d respawns; abandoned %d B, crash-dropped %d B\n",
			r.Crashes, r.DowntimeCycles, r.Respawns,
			r.CrashAbandonedBytes, r.CrashDroppedBytes)
		for _, d := range r.Dips {
			fmt.Fprintf(w, "  node %d down @%d for %d: dip depth %.2f, recovered @%d (width %d)\n",
				d.Node, d.DownAt, d.UpAt-d.DownAt, d.Depth, d.RecoverAt, d.Width)
		}
	}
	fmt.Fprintf(w, "%-16s %8s %10s %7s %10s %10s %10s\n",
		"class", "offered", "delivered", "failed", "p50 "+unit, "p99 "+unit, "p999 "+unit)
	for c := range r.Classes {
		s := &r.Classes[c]
		fmt.Fprintf(w, "%-16s %8d %10d %7d %10.1f %10.1f %10.1f\n",
			s.Class, s.Offered, s.Delivered, s.Failed,
			scale(s.P50), scale(s.P99), scale(s.P999))
	}
}

// Finish aggregates the trial once the cluster has drained: node-local
// counters fold in node order, the shared sojourn histograms yield the
// percentiles, and the NIC lifetime counters are read post-drain so
// retransmit timers have settled.
func (dr *Driver) Finish() (*Result, error) {
	if err := dr.Err(); err != nil {
		return nil, err
	}
	r := &Result{
		Cfg:      dr.Plan.Cfg,
		Span:     dr.Plan.Span,
		Messages: dr.Plan.Cfg.Messages,
		Samples:  make([][]Sample, len(dr.nodes)),
	}
	if dr.Plan.Span > 0 {
		r.OfferedRate = float64(r.Messages) * 1e6 / float64(dr.Plan.Span)
	}
	var lastDone sim.Cycles
	for i, ns := range dr.nodes {
		for c := 0; c < NumClasses; c++ {
			r.Delivered += ns.delivered[c]
			r.Failed += ns.failed[c]
			r.DeliveredBytes += ns.deliveredBytes[c]
			r.Classes[c].Delivered += ns.delivered[c]
			r.Classes[c].Failed += ns.failed[c]
			r.Classes[c].Bytes += ns.deliveredBytes[c]
		}
		r.OrderViolations += ns.orderViol
		r.Retries += ns.retries
		if ns.maxDepth > r.MaxQueueDepth {
			r.MaxQueueDepth = ns.maxDepth
		}
		if ns.lastDone > lastDone {
			lastDone = ns.lastDone
		}
		r.Samples[i] = ns.samples
		st := dr.cl.NICs[i].Stats()
		r.CreditStalls += st.CreditStalls
		r.Retransmits += st.Retransmits
		r.DeliveryFailures += st.DeliveryFailures
		r.NIPTLookups += st.NIPTLookups
		r.NIPTHits += st.NIPTHits
		r.NIPTMisses += st.NIPTMisses
		r.NIPTEvictions += st.NIPTEvictions
		r.NIPTRefillCycles += st.NIPTRefillCycles
		r.Reclaims += st.SenderReclaims + st.ReceiverReclaims
		r.Resurrections += st.Resurrections
		r.CrashAbandonedBytes += st.CrashAbandonedBytes
		r.CrashDroppedBytes += st.CrashDropBytes
		for c := 0; c < NumClasses; c++ {
			r.DownClasses[c].Delivered += ns.downDelivered[c]
		}
	}
	r.FlowDeaths = dr.Plan.FlowDeaths
	cs := dr.cl.CrashStats()
	r.Crashes = cs.Crashes
	r.DowntimeCycles = cs.DowntimeCycles
	r.RecoveryLagCycles = cs.RecoveryLagCycles
	r.Respawns = dr.respawns
	r.CrashDroppedBytes += dr.cl.Backplane.FaultStats().CrashDroppedDataBytes
	for c := 0; c < NumClasses; c++ {
		s := &r.Classes[c]
		s.Class = Class(c).String()
		s.Offered = dr.Plan.Offered[c]
		h := dr.hist[c]
		s.P50 = h.Quantile(0.50)
		s.P99 = h.Quantile(0.99)
		s.P999 = h.Quantile(0.999)
		s.MeanSojourn = h.Mean()
		s.MaxSojourn = h.Max()
		ds := &r.DownClasses[c]
		ds.Class = Class(c).String()
		hd := dr.histDown[c]
		ds.P50 = hd.Quantile(0.50)
		ds.P99 = hd.Quantile(0.99)
		ds.P999 = hd.Quantile(0.999)
		ds.MeanSojourn = hd.Mean()
		ds.MaxSojourn = hd.Max()
	}
	if lastDone > dr.Plan.Cfg.StartAt {
		r.Elapsed = lastDone - dr.Plan.Cfg.StartAt
	}
	if r.Elapsed > 0 {
		r.AchievedRate = float64(r.Delivered) * 1e6 / float64(r.Elapsed)
	}
	r.Dips = computeDips(dr.cl.CrashEvents(), r.Samples,
		r.Delivered, r.Elapsed, dr.Plan.Cfg.SampleEvery)
	return r, nil
}

// RatePoint is one point of an offered-rate sweep.
type RatePoint struct {
	Offered  float64
	Achieved float64
}

// Knee scans an ascending offered-rate sweep for the saturation knee:
// the first offered rate whose achieved rate falls below frac of it
// (frac 0 defaults to 0.9). ok is false when the system kept up at
// every point — the sweep never reached saturation.
func Knee(points []RatePoint, frac float64) (rate float64, ok bool) {
	if frac <= 0 {
		frac = 0.9
	}
	for _, pt := range points {
		if pt.Achieved < frac*pt.Offered {
			return pt.Offered, true
		}
	}
	return 0, false
}
