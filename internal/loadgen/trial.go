package loadgen

import (
	"fmt"

	"shrimp/internal/cluster"
	"shrimp/internal/interconnect"
	"shrimp/internal/kernel"
	"shrimp/internal/machine"
	"shrimp/internal/nic"
	"shrimp/internal/sim"
	"shrimp/internal/telemetry"
	"shrimp/internal/udmalib"
)

// TrialConfig is a self-contained trial: the load shape plus the
// machine regime it runs against.
type TrialConfig struct {
	Config

	// Workers is the cluster's host parallelism; any value yields the
	// same Result.Fingerprint.
	Workers int
	// Window is the lockstep horizon step (default 2000 cycles — well
	// under the retransmit timeout so ACKs never look late).
	Window sim.Cycles
	// RAMFrames per node (default 128).
	RAMFrames int
	// Limit bounds the run (default 2e9 cycles); hitting it is an error.
	Limit sim.Cycles

	// Fault perturbs the wire (lossy regime); the NIC reliability layer
	// is always armed, so a clean trial is simply a zero plan.
	Fault interconnect.FaultPlan
	// FaultInject wraps every NIC in device.Faulty at the given rates
	// (faulty regime), seeded from Config.Seed.
	FaultInject     bool
	FaultRejectRate float64
	FaultFailRate   float64

	// Topology declares the routed fabric (mesh/torus, width, per-link
	// capacity); the zero value is the near-square mesh at the
	// host-interface rate. See interconnect.Topology.
	Topology interconnect.Topology

	// Retry overrides the server send retry policy.
	Retry udmalib.RetryPolicy
	// Metrics mirrors driver instruments into a registry (optional).
	Metrics *telemetry.Registry

	// RetxTimeout is the NIC's base retransmit timeout (default 100_000
	// cycles — far above the saturated ACK RTT, so a clean wire never
	// resends spuriously). Crash/MTTR experiments lower it so peers of a
	// dead node reach the retry cap within the trial's span.
	RetxTimeout sim.Cycles
	// RelMaxRetries caps consecutive retransmit timeouts before a link
	// is declared broken (0 = the NIC default, 8).
	RelMaxRetries int

	// Crash schedules whole-node crash–restart faults (chaos regime);
	// see cluster.CrashPlan. The driver respawns a rebooted node's
	// serving processes and folds the outage into the availability
	// readout (Result.Crashes, Dips, DownClasses).
	Crash cluster.CrashPlan

	// NIPTCapacity bounds the on-board NIPT cache over the host-memory
	// backing table (0 = unbounded, the pre-cache behavior). Misses pay
	// a seeded refill on simulated time; NIPTRefillJitter widens the
	// refill cost draw.
	NIPTCapacity     int
	NIPTRefillJitter sim.Cycles
	// IdleReclaimAge ages idle per-destination reliability state into
	// the free pools at lockstep barriers (0 = never reclaim).
	IdleReclaimAge sim.Cycles
}

func (tc TrialConfig) withDefaults() TrialConfig {
	tc.Config = tc.Config.withDefaults()
	if tc.Window == 0 {
		tc.Window = 2000
	}
	if tc.RAMFrames == 0 {
		tc.RAMFrames = 128
	}
	if tc.Limit == 0 {
		tc.Limit = 2_000_000_000
	}
	if tc.RetxTimeout == 0 {
		tc.RetxTimeout = 100_000
	}
	return tc
}

// RunTrial builds a cluster for the regime, binds a freshly built plan
// to it, and drives the lockstep loop to completion — PublishControl at
// every barrier, mirroring cluster.Run's re-based horizons and
// skip-ahead. It returns the aggregated SLO readout.
func RunTrial(tc TrialConfig) (*Result, error) {
	tc = tc.withDefaults()
	plan := BuildPlan(tc.Config)
	cl := cluster.New(cluster.Config{
		Nodes:    tc.Nodes,
		Topology: tc.Topology,
		Machine: machine.Config{
			RAMFrames: tc.RAMFrames,
			Kernel:    kernel.Config{Quantum: 2000},
		},
		NIC: nic.Config{
			NIPTPages:        plan.NIPTEntries(),
			PIOWindow:        true,
			NIPTCapacity:     tc.NIPTCapacity,
			NIPTRefillJitter: tc.NIPTRefillJitter,
			NIPTSeed:         tc.Seed,
			// Reliable delivery is always armed: a serving system that
			// silently loses messages has no meaningful SLO. The default
			// retransmit timeout sits far above the saturated ACK RTT
			// (multi-page bursts queue tens of thousands of cycles of
			// wire time ahead of an ACK) so a clean wire never resends
			// spuriously — loss recovery then shows up where a serving
			// system feels it, in the sojourn tail.
			Reliability: nic.ReliabilityConfig{
				Enabled:        true,
				RetxTimeout:    tc.RetxTimeout,
				MaxRetries:     tc.RelMaxRetries,
				IdleReclaimAge: tc.IdleReclaimAge,
			},
		},
		Crash:           tc.Crash,
		Window:          tc.Window,
		Workers:         tc.Workers,
		FaultInject:     tc.FaultInject,
		FaultSeed:       tc.Seed,
		FaultRejectRate: tc.FaultRejectRate,
		FaultFailRate:   tc.FaultFailRate,
		Fault:           tc.Fault,
		Metrics:         tc.Metrics,
	})
	defer cl.Shutdown()
	dr := NewDriver(plan, cl, DriverOptions{Retry: tc.Retry, Metrics: tc.Metrics})

	var horizon sim.Cycles
	for {
		dr.PublishControl()
		base := cl.MinNow()
		if horizon > base {
			base = horizon
		}
		horizon = base + tc.Window
		if horizon < base || horizon > tc.Limit {
			horizon = tc.Limit
		}
		progress, err := cl.Step(horizon)
		if err != nil {
			return nil, fmt.Errorf("loadgen: %w", err)
		}
		if err := dr.Err(); err != nil {
			return nil, err
		}
		if cl.AllIdle() {
			cl.DrainHardware()
			break
		}
		if horizon >= tc.Limit {
			return nil, fmt.Errorf("loadgen: trial still running at the %d-cycle limit (offered rate too high to ever drain?)", tc.Limit)
		}
		if !progress {
			next := cl.NextRunnable(horizon)
			if next == sim.Forever {
				return nil, fmt.Errorf("loadgen: cluster deadlocked mid-trial")
			}
			if next > horizon {
				horizon = next - tc.Window // re-based past next at loop top
			}
		}
	}
	if tc.Metrics != nil {
		cl.PublishRollup()
	}
	return dr.Finish()
}
