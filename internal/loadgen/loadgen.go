// Package loadgen is the open-loop serving subsystem: a deterministic
// traffic driver that offers sustained load to a SHRIMP cluster and
// reads the result back as serving SLOs instead of benchmark figures.
//
// Closed-loop benchmarks (send N messages, drain, report) let the
// workload politely wait for the machine; a serving system does not get
// that courtesy. Here arrivals follow a seeded Poisson process at a
// configurable offered rate, scheduled entirely on simulated time:
// BuildPlan precomputes every arrival — its time, flow, class and
// per-flow sequence number — from the seed before the cluster runs a
// single cycle. Load therefore never adapts to service: when the NIC
// saturates, queues grow and sojourn time (arrival→delivery, queueing
// included) records exactly how far behind the machine fell.
//
// The flow model: thousands of logical flows, each pinned to a
// (source, destination, class) triple. Arrivals for one flow are served
// in order because every flow hashes to one per-destination FIFO queue
// on its source node, drained by a single server process; flows on
// different queues interleave freely. Three traffic classes cover the
// paper's mechanism spectrum — small messages through the PIO FIFO
// window, mid-size single-page UDMA sends, and large multi-page
// deliberate updates.
//
// Determinism: the arrival schedule is fixed before simulation, every
// queue and counter a process touches mid-window is local to its node,
// and all cross-node control (mapping receiver windows into sender
// NIPTs, stopping receivers) happens in Driver.PublishControl at
// lockstep barriers. A trial is therefore bit-exact at any
// cluster.Config.Workers count — Result.Fingerprint pins that down.
package loadgen

import (
	"fmt"
	"math"

	"shrimp/internal/addr"
	"shrimp/internal/sim"
)

// Class is one traffic class of the flow mix.
type Class int

const (
	// ClassSmall is a 64-byte message pushed through the NIC's
	// memory-mapped PIO FIFO window: the paper's Section 9 baseline,
	// fire-and-forget word stores with no DMA setup.
	ClassSmall Class = iota
	// ClassMid is a 2 KB UDMA deliberate update (single-page transfer).
	ClassMid
	// ClassLarge is a multi-page UDMA deliberate update spanning the
	// whole receive window (WindowPages pages).
	ClassLarge

	NumClasses = 3
)

// String names the class for tables and telemetry labels.
func (c Class) String() string {
	switch c {
	case ClassSmall:
		return "small-pio"
	case ClassMid:
		return "mid-udma"
	case ClassLarge:
		return "large-multipage"
	}
	return fmt.Sprintf("class-%d", int(c))
}

// Size is the class's message payload size given the receive-window
// span in pages.
func (c Class) Size(windowPages int) int {
	switch c {
	case ClassSmall:
		return 64
	case ClassMid:
		return 2048
	default:
		return windowPages * addr.PageSize
	}
}

// Config shapes one open-loop trial. Zero fields take defaults.
type Config struct {
	// Nodes is the cluster size (>= 2; every node both sends and
	// receives).
	Nodes int
	// Seed derives the whole arrival schedule and flow table.
	Seed uint64
	// Rate is the aggregate offered rate in messages per million
	// simulated cycles, across the whole cluster.
	Rate float64
	// Messages is the total number of arrivals to offer.
	Messages int
	// Flows is the number of logical flows (default 2048). Each flow is
	// pinned to a (src, dst, class) triple at plan build.
	Flows int
	// WindowPages is the receive-window span per destination node
	// (default 4): every node exports WindowPages pinned pages, mapped
	// into every sender's NIPT.
	WindowPages int
	// MixSmall/MixMid/MixLarge weight the class draw per flow
	// (default 6:3:1).
	MixSmall, MixMid, MixLarge int
	// StartAt is the first-arrival floor in cycles (default 64_000),
	// leaving room for the receive windows to export and publish before
	// traffic lands.
	StartAt sim.Cycles
	// SampleEvery is the queue-depth/credit-stall sampling period per
	// node (default 10_000 cycles).
	SampleEvery sim.Cycles

	// Churn switches the flow model to connection churn: instead of a
	// fixed population drawn uniformly, ActiveFlows flows are live at
	// any instant, each dies after a seeded per-flow message budget, and
	// a fresh flow — new identity, new (src, dst, class), its own NIPT
	// entry — immediately takes its slot. Total flows ≈
	// Messages/MsgsPerFlow (thousands at scale): the workload that
	// pressures a bounded NIPT cache and the reliability-state pools.
	Churn bool
	// ActiveFlows is the live-flow population in churn mode (default 64).
	ActiveFlows int
	// MsgsPerFlow is the mean per-flow message budget in churn mode
	// (default 3); each flow draws uniformly in [1, 2*MsgsPerFlow-1].
	MsgsPerFlow int
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 4
	}
	if c.Rate == 0 {
		c.Rate = 100
	}
	if c.Messages == 0 {
		c.Messages = 400
	}
	if c.Flows == 0 {
		c.Flows = 2048
	}
	if c.WindowPages == 0 {
		c.WindowPages = 4
	}
	if c.MixSmall == 0 && c.MixMid == 0 && c.MixLarge == 0 {
		c.MixSmall, c.MixMid, c.MixLarge = 6, 3, 1
	}
	if c.StartAt == 0 {
		c.StartAt = 64_000
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 10_000
	}
	if c.Churn {
		if c.ActiveFlows == 0 {
			c.ActiveFlows = 64
		}
		if c.MsgsPerFlow == 0 {
			c.MsgsPerFlow = 3
		}
	}
	return c
}

// Flow is one logical flow's fixed identity.
type Flow struct {
	Src, Dst int
	Class    Class
}

// Arrival is one scheduled message: its simulated arrival time, the
// flow it belongs to, and its position in that flow (Seq counts from 0
// in arrival order — the serving side checks it to prove per-flow FIFO
// ordering survived).
type Arrival struct {
	At   sim.Cycles
	Flow int
	Seq  int
}

// Plan is the precomputed, purely-data description of a trial: the
// flow table and every node's arrival schedule, all derived from the
// seed before any simulation runs. Two BuildPlan calls with the same
// Config yield identical plans; nothing in a Plan can depend on
// execution order.
type Plan struct {
	Cfg   Config
	Flows []Flow
	// Arrivals[src] is source node src's schedule, ascending in At.
	Arrivals [][]Arrival
	// Span is the offered interval: last arrival time minus StartAt.
	Span sim.Cycles
	// Offered and OfferedBytes count the schedule per class.
	Offered      [NumClasses]int
	OfferedBytes [NumClasses]uint64
	// FlowDeaths counts flows whose message budget ran out during the
	// schedule (churn mode only); each death birthed a replacement flow.
	FlowDeaths int
}

// BuildPlan derives a trial's complete arrival schedule from the seed.
// Inter-arrival gaps are exponential with mean 1e6/Rate cycles (a
// Poisson process at the offered rate), rounded up to one cycle; each
// arrival picks a uniform flow, and the flow's fixed (src, dst, class)
// decides where it queues and how it ships.
func BuildPlan(cfg Config) *Plan {
	cfg = cfg.withDefaults()
	if cfg.Nodes < 2 {
		panic(fmt.Sprintf("loadgen: %d nodes (need >= 2 to serve remote traffic)", cfg.Nodes))
	}
	rng := sim.NewRNG(cfg.Seed)
	p := &Plan{Cfg: cfg}

	weight := cfg.MixSmall + cfg.MixMid + cfg.MixLarge
	newFlow := func() Flow {
		src := rng.Intn(cfg.Nodes)
		dst := (src + 1 + rng.Intn(cfg.Nodes-1)) % cfg.Nodes
		class := ClassSmall
		switch pick := rng.Intn(weight); {
		case pick < cfg.MixSmall:
			class = ClassSmall
		case pick < cfg.MixSmall+cfg.MixMid:
			class = ClassMid
		default:
			class = ClassLarge
		}
		return Flow{Src: src, Dst: dst, Class: class}
	}

	if cfg.Churn {
		buildChurn(p, rng, newFlow)
		return p
	}

	p.Flows = make([]Flow, cfg.Flows)
	for f := range p.Flows {
		p.Flows[f] = newFlow()
	}

	meanGap := 1e6 / cfg.Rate
	p.Arrivals = make([][]Arrival, cfg.Nodes)
	seq := make([]int, cfg.Flows)
	t := cfg.StartAt
	for m := 0; m < cfg.Messages; m++ {
		// Exponential inter-arrival via inverse transform; 1-U is in
		// (0,1], so the log argument never hits zero.
		gap := sim.Cycles(-math.Log(1-rng.Float64()) * meanGap)
		if gap < 1 {
			gap = 1
		}
		t += gap
		f := rng.Intn(cfg.Flows)
		fl := p.Flows[f]
		p.Arrivals[fl.Src] = append(p.Arrivals[fl.Src], Arrival{At: t, Flow: f, Seq: seq[f]})
		seq[f]++
		p.Offered[fl.Class]++
		p.OfferedBytes[fl.Class] += uint64(fl.Class.Size(cfg.WindowPages))
	}
	p.Span = t - cfg.StartAt
	return p
}

// buildChurn derives a connection-churn schedule: ActiveFlows live
// slots, each holding a flow with a seeded message budget drawn in
// [1, 2*MsgsPerFlow-1]. Every arrival picks a uniform live slot; when
// the slot's budget hits zero the flow dies on simulated time and a
// freshly drawn flow — new identity (appended to p.Flows), new
// (src, dst, class) — is born into the slot. The flow population thus
// grows to ≈ Messages/MsgsPerFlow distinct identities over the
// schedule, each needing its own NIPT entry for only a short life: the
// access pattern that makes a bounded NIPT cache and idle-state
// reclamation earn their keep.
func buildChurn(p *Plan, rng *sim.RNG, newFlow func() Flow) {
	cfg := p.Cfg
	slots := make([]int, cfg.ActiveFlows)  // slot -> flow id
	budget := make([]int, cfg.ActiveFlows) // messages left before death
	drawBudget := func() int { return 1 + rng.Intn(2*cfg.MsgsPerFlow-1) }
	for s := range slots {
		slots[s] = len(p.Flows)
		p.Flows = append(p.Flows, newFlow())
		budget[s] = drawBudget()
	}

	meanGap := 1e6 / cfg.Rate
	p.Arrivals = make([][]Arrival, cfg.Nodes)
	var seq []int // per flow id, grown as flows are born
	t := cfg.StartAt
	for m := 0; m < cfg.Messages; m++ {
		gap := sim.Cycles(-math.Log(1-rng.Float64()) * meanGap)
		if gap < 1 {
			gap = 1
		}
		t += gap
		s := rng.Intn(cfg.ActiveFlows)
		f := slots[s]
		fl := p.Flows[f]
		for len(seq) <= f {
			seq = append(seq, 0)
		}
		p.Arrivals[fl.Src] = append(p.Arrivals[fl.Src], Arrival{At: t, Flow: f, Seq: seq[f]})
		seq[f]++
		p.Offered[fl.Class]++
		p.OfferedBytes[fl.Class] += uint64(p.MsgSize(fl.Class))
		if budget[s]--; budget[s] == 0 {
			p.FlowDeaths++
			slots[s] = len(p.Flows)
			p.Flows = append(p.Flows, newFlow())
			budget[s] = drawBudget()
		}
	}
	p.Span = t - cfg.StartAt
}

// NIPTEntries is the sender NIPT capacity a plan needs. In the fixed
// flow model: one WindowPages-sized window per destination node, at
// entry base dst*WindowPages. In churn mode every flow owns one entry
// (its index is the flow id), so the table spans the whole flow
// population — the working set a bounded cache then has to chase.
func (p *Plan) NIPTEntries() uint32 {
	if p.Cfg.Churn {
		return uint32(len(p.Flows))
	}
	return uint32(p.Cfg.Nodes * p.Cfg.WindowPages)
}

// MsgSize is the payload size class c ships under this plan. In churn
// mode every flow owns a single-page window, so ClassLarge caps at one
// page; the fixed flow model spans the whole WindowPages window.
func (p *Plan) MsgSize(c Class) int {
	if p.Cfg.Churn && c == ClassLarge {
		return addr.PageSize
	}
	return c.Size(p.Cfg.WindowPages)
}
