package loadgen

import (
	"reflect"
	"testing"

	"shrimp/internal/interconnect"
	"shrimp/internal/telemetry"
)

// testConfig is a small-but-real trial shape shared by the tests:
// enough messages for every class to appear, short enough to keep the
// suite fast.
func testConfig(rate float64) TrialConfig {
	return TrialConfig{
		Config: Config{
			Nodes:    3,
			Seed:     42,
			Rate:     rate,
			Messages: 150,
			Flows:    96,
		},
	}
}

func TestBuildPlanDeterministic(t *testing.T) {
	cfg := Config{Nodes: 4, Seed: 7, Rate: 250, Messages: 500, Flows: 64}
	a, b := BuildPlan(cfg), BuildPlan(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two plans from one config differ")
	}
	if a.Span == 0 {
		t.Fatal("zero arrival span")
	}
	total := 0
	for c := 0; c < NumClasses; c++ {
		total += a.Offered[c]
	}
	if total != 500 {
		t.Fatalf("class counts sum to %d, want 500", total)
	}
	// Per-source schedules ascend in time; per-flow sequences ascend by
	// one and stay on the flow's fixed source node.
	seq := make(map[int]int)
	for src, arr := range a.Arrivals {
		for i, ar := range arr {
			if i > 0 && ar.At < arr[i-1].At {
				t.Fatalf("node %d arrivals out of order at %d", src, i)
			}
			if a.Flows[ar.Flow].Src != src {
				t.Fatalf("flow %d scheduled on node %d but pinned to %d", ar.Flow, src, a.Flows[ar.Flow].Src)
			}
			if want := seq[ar.Flow]; ar.Seq != want {
				t.Fatalf("flow %d seq %d, want %d", ar.Flow, ar.Seq, want)
			}
			seq[ar.Flow]++
		}
	}
	// Flows never send to themselves.
	for f, fl := range a.Flows {
		if fl.Src == fl.Dst {
			t.Fatalf("flow %d is a self-loop (node %d)", f, fl.Src)
		}
	}
}

func TestPlanRateScalesGaps(t *testing.T) {
	slow := BuildPlan(Config{Nodes: 2, Seed: 9, Rate: 50, Messages: 400})
	fast := BuildPlan(Config{Nodes: 2, Seed: 9, Rate: 500, Messages: 400})
	// 10x the offered rate compresses the same seed's schedule ~10x.
	ratio := float64(slow.Span) / float64(fast.Span)
	if ratio < 5 || ratio > 20 {
		t.Fatalf("span ratio %.1f for a 10x rate change", ratio)
	}
}

func TestTrialCleanServes(t *testing.T) {
	res, err := RunTrial(testConfig(150))
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered+res.Failed != res.Messages {
		t.Fatalf("accounting: %d delivered + %d failed != %d offered",
			res.Delivered, res.Failed, res.Messages)
	}
	if res.Failed != 0 {
		t.Fatalf("%d failures on a clean wire", res.Failed)
	}
	if res.OrderViolations != 0 {
		t.Fatalf("%d per-flow FIFO violations", res.OrderViolations)
	}
	if res.Elapsed == 0 || res.AchievedRate == 0 || res.Goodput() == 0 {
		t.Fatalf("empty readout: %+v", res)
	}
	for c := range res.Classes {
		s := &res.Classes[c]
		if s.Delivered+s.Failed != s.Offered {
			t.Fatalf("class %s accounting: %d+%d != %d", s.Class, s.Delivered, s.Failed, s.Offered)
		}
		if s.Delivered > 0 && !(s.P50 <= s.P99 && s.P99 <= s.P999) {
			t.Fatalf("class %s percentiles unordered: %.0f/%.0f/%.0f", s.Class, s.P50, s.P99, s.P999)
		}
	}
	var samples int
	for _, series := range res.Samples {
		samples += len(series)
	}
	if samples == 0 {
		t.Fatal("no queue-depth samples recorded")
	}
}

func TestTrialBitExactAcrossRunsAndWorkers(t *testing.T) {
	base, err := RunTrial(testConfig(200))
	if err != nil {
		t.Fatal(err)
	}
	again, err := RunTrial(testConfig(200))
	if err != nil {
		t.Fatal(err)
	}
	if base.Fingerprint() != again.Fingerprint() {
		t.Fatalf("same config, different fingerprints: %016x vs %016x",
			base.Fingerprint(), again.Fingerprint())
	}
	par := testConfig(200)
	par.Workers = 4
	wide, err := RunTrial(par)
	if err != nil {
		t.Fatal(err)
	}
	if base.Fingerprint() != wide.Fingerprint() {
		t.Fatalf("workers 1 vs 4 diverge: %016x vs %016x",
			base.Fingerprint(), wide.Fingerprint())
	}
}

func TestTrialLossyWireAccounts(t *testing.T) {
	tc := testConfig(150)
	tc.Fault = interconnect.FaultPlan{
		Seed: 77, DropRate: 0.05, DupRate: 0.02, CorruptRate: 0.02, DelayRate: 0.05,
	}
	res, err := RunTrial(tc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered+res.Failed != res.Messages {
		t.Fatalf("lossy accounting: %d+%d != %d", res.Delivered, res.Failed, res.Messages)
	}
	if res.Retransmits == 0 {
		t.Fatal("5% drop produced no retransmits")
	}
	if res.OrderViolations != 0 {
		t.Fatalf("%d FIFO violations under loss", res.OrderViolations)
	}
	again, err := RunTrial(tc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fingerprint() != again.Fingerprint() {
		t.Fatal("lossy trial not reproducible")
	}
}

func TestTrialFaultyDeviceKeepsServing(t *testing.T) {
	tc := testConfig(150)
	tc.FaultInject = true
	tc.FaultRejectRate = 0.02
	tc.FaultFailRate = 0.02
	res, err := RunTrial(tc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered+res.Failed != res.Messages {
		t.Fatalf("faulty accounting: %d+%d != %d", res.Delivered, res.Failed, res.Messages)
	}
	if res.Delivered == 0 {
		t.Fatal("nothing delivered under 2% injection")
	}
	if res.Retries == 0 {
		t.Fatal("fault injection never exercised SendRetry")
	}
}

func TestSaturationStretchesElapsed(t *testing.T) {
	light, err := RunTrial(testConfig(50))
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := RunTrial(testConfig(5000))
	if err != nil {
		t.Fatal(err)
	}
	// Under light load the system keeps up with the schedule; far past
	// capacity the achieved rate detaches from the offered rate and the
	// queues visibly grow.
	if light.AchievedRate < 0.8*light.OfferedRate {
		t.Fatalf("light load fell behind: achieved %.1f of offered %.1f",
			light.AchievedRate, light.OfferedRate)
	}
	if heavy.AchievedRate > 0.9*heavy.OfferedRate {
		t.Fatalf("overload kept up?! achieved %.1f of offered %.1f",
			heavy.AchievedRate, heavy.OfferedRate)
	}
	if heavy.MaxQueueDepth <= light.MaxQueueDepth {
		t.Fatalf("overload queue depth %d <= light %d", heavy.MaxQueueDepth, light.MaxQueueDepth)
	}
	// Queueing is charged to sojourn: the mid-class tail degrades.
	if heavy.Classes[ClassMid].P99 <= light.Classes[ClassMid].P99 {
		t.Fatalf("overload p99 %.0f <= light p99 %.0f",
			heavy.Classes[ClassMid].P99, light.Classes[ClassMid].P99)
	}
}

func TestKnee(t *testing.T) {
	pts := []RatePoint{
		{Offered: 100, Achieved: 99},
		{Offered: 300, Achieved: 296},
		{Offered: 900, Achieved: 610},
		{Offered: 2700, Achieved: 620},
	}
	rate, ok := Knee(pts, 0.9)
	if !ok || rate != 900 {
		t.Fatalf("knee = %.0f ok=%v, want 900", rate, ok)
	}
	if _, ok := Knee(pts[:2], 0.9); ok {
		t.Fatal("knee found in an unsaturated sweep")
	}
	if _, ok := Knee(nil, 0); ok {
		t.Fatal("knee found in an empty sweep")
	}
}

func TestMetricsMirrorIsPureObserver(t *testing.T) {
	plain, err := RunTrial(testConfig(150))
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	tc := testConfig(150)
	tc.Metrics = reg
	mirrored, err := RunTrial(tc)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Fingerprint() != mirrored.Fingerprint() {
		t.Fatal("attaching telemetry changed the simulation")
	}
	snap := reg.Snapshot()
	found := false
	for _, h := range snap.Histograms {
		if h.Count > 0 && h.P999 > 0 &&
			len(h.Name) >= len("loadgen_sojourn_cycles") &&
			h.Name[:len("loadgen_sojourn_cycles")] == "loadgen_sojourn_cycles" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no populated loadgen sojourn histogram in snapshot: %+v", snap.Histograms)
	}
}
