package workload

import (
	"testing"

	"shrimp/internal/kernel"
	"shrimp/internal/machine"
	"shrimp/internal/sim"
)

func TestPayloadDeterministic(t *testing.T) {
	a := Payload(1024, 7)
	b := Payload(1024, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("payload not deterministic")
		}
	}
	c := Payload(1024, 8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical payloads")
	}
}

func TestPayloadLastWordNonzero(t *testing.T) {
	for seed := 0; seed < 64; seed++ {
		for _, n := range []int{4, 64, 4096} {
			p := Payload(n, byte(seed))
			w := uint32(p[n-4]) | uint32(p[n-3])<<8 | uint32(p[n-2])<<16 | uint32(p[n-1])<<24
			if w == 0 {
				t.Fatalf("Payload(%d, %d) has zero last word", n, seed)
			}
		}
	}
}

// TestPayloadTinyBuffers covers the n < 4 tail of the final-word fixup:
// its i >= 0 guard must keep sub-word payloads in bounds, and since
// every byte of such a payload falls inside the fixup range, every byte
// must come out nonzero — a receiver polling any of them sees arrival.
func TestPayloadTinyBuffers(t *testing.T) {
	if got := Payload(0, 3); len(got) != 0 {
		t.Fatalf("Payload(0, 3) returned %d bytes", len(got))
	}
	for n := 1; n < 4; n++ {
		for seed := 0; seed < 256; seed++ {
			p := Payload(n, byte(seed))
			if len(p) != n {
				t.Fatalf("Payload(%d, %d) returned %d bytes", n, seed, len(p))
			}
			for i, b := range p {
				if b == 0 {
					t.Fatalf("Payload(%d, %d) byte %d is zero", n, seed, i)
				}
			}
		}
	}
	// Tiny payloads stay seed-dependent where the fixup leaves room.
	if Payload(2, 1)[0] == Payload(2, 2)[0] {
		t.Fatal("2-byte payloads identical across seeds")
	}
}

func TestSweepsAreSane(t *testing.T) {
	for name, sizes := range map[string][]int{
		"fig8":  Fig8Sizes(),
		"hippi": HIPPIBlockSizes(),
		"multi": MultiPageSizes(),
	} {
		if len(sizes) < 3 {
			t.Errorf("%s sweep too short", name)
		}
		for i := 1; i < len(sizes); i++ {
			if sizes[i] <= sizes[i-1] {
				t.Errorf("%s sweep not increasing at %d", name, i)
			}
		}
	}
	// Figure 8's published knees must be in the sweep.
	has := map[int]bool{}
	for _, s := range Fig8Sizes() {
		has[s] = true
	}
	for _, knee := range []int{512, 4096, 8192} {
		if !has[knee] {
			t.Errorf("fig8 sweep missing knee %d", knee)
		}
	}
}

func TestPagerCreatesPressure(t *testing.T) {
	n := machine.New(0, machine.Config{RAMFrames: 24})
	defer n.Kernel.Shutdown()
	n.Kernel.Spawn("pager", Pager(40, 5_000_000))
	if err := n.Kernel.Run(sim.Forever); err != nil {
		t.Fatal(err)
	}
	if n.Kernel.Stats().Evictions == 0 {
		t.Fatal("pager with working set > RAM caused no evictions")
	}
}

func TestBurnerConsumesTime(t *testing.T) {
	n := machine.New(0, machine.Config{})
	defer n.Kernel.Shutdown()
	n.Kernel.Spawn("burner", Burner(100, 50_000))
	if err := n.Kernel.Run(sim.Forever); err != nil {
		t.Fatal(err)
	}
	if n.Clock.Now() < 50_000 {
		t.Fatalf("burner stopped at %d", n.Clock.Now())
	}
	_ = kernel.Config{}
}
