// Package workload provides the deterministic input generators shared
// by the experiments, benchmarks and examples: payload patterns,
// message-size sweeps matching the paper's figures, and canned process
// bodies (paging pressure, compute burners) used to create background
// load.
package workload

import (
	"shrimp/internal/addr"
	"shrimp/internal/kernel"
	"shrimp/internal/sim"
)

// Payload returns n deterministic, seed-dependent bytes whose last word
// is guaranteed nonzero (receivers poll the final word for arrival).
func Payload(n int, seed byte) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i)*31 + seed
	}
	for i := n - 4; i < n; i++ {
		if i >= 0 && out[i] == 0 {
			out[i] = 0xA5
		}
	}
	return out
}

// Fig8Sizes is the message-size sweep of the paper's Figure 8 (0–8 KB
// on the published x-axis), extended beyond 8 KB to exhibit the "max
// sustained" plateau.
func Fig8Sizes() []int {
	return []int{
		64, 128, 256, 512, 1024, 1536, 2048, 3072, 4096,
		4608, 5120, 6144, 7168, 8192, 12288, 16384, 32768, 65536,
	}
}

// HIPPIBlockSizes is the block-size sweep for the traditional-DMA
// overhead experiment (E3).
func HIPPIBlockSizes() []int {
	return []int{256, 1024, 4096, 16384, 65536, 131072, 262144, 524288}
}

// MultiPageSizes is the sweep for the Section 7 queueing experiment.
func MultiPageSizes() []int {
	return []int{4096, 8192, 16384, 32768, 65536}
}

// Pager returns a process body that creates steady paging pressure:
// it allocates pages and re-touches them in a rotating pattern for
// the given simulated duration, forcing the replacement sweep to run.
func Pager(pages int, duration sim.Cycles) func(p *kernel.Proc) {
	return func(p *kernel.Proc) {
		vas := make([]addr.VAddr, 0, pages)
		deadline := p.Now() + duration
		for i := 0; i < pages; i++ {
			va, err := p.Alloc(addr.PageSize)
			if err != nil {
				return
			}
			vas = append(vas, va)
		}
		i := 0
		for p.Now() < deadline {
			if err := p.Store(vas[i%len(vas)], uint32(i)); err != nil {
				return
			}
			i++
			p.Compute(50)
		}
	}
}

// Burner returns a process body that consumes CPU in fixed steps for
// the given duration — background load for scheduling experiments.
func Burner(step, duration sim.Cycles) func(p *kernel.Proc) {
	return func(p *kernel.Proc) {
		deadline := p.Now() + duration
		for p.Now() < deadline {
			p.Compute(step)
		}
	}
}
