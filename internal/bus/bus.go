// Package bus models the machine's I/O bus as a shared timing resource.
//
// The bus does not move bytes itself (the DMA engine and CPU do); it
// arbitrates *when* they move. DMA bursts serialize with each other —
// there is one EISA bus per node — and programmed-I/O word stores both
// occupy the bus and charge CPU time. This arbitration is what makes
// the burst-vs-PIO comparison of experiment E5 honest: a PIO word
// stream and a competing DMA burst contend here.
package bus

import (
	"fmt"

	"shrimp/internal/sim"
	"shrimp/internal/telemetry"
)

// Bus is one I/O bus. Not safe for concurrent use; the simulator is
// single-threaded.
type Bus struct {
	clock *sim.Clock
	costs *sim.CostModel

	busyUntil sim.Cycles

	burstBytes uint64
	pioWords   uint64
	bursts     uint64
	waitCycles sim.Cycles

	m busMetrics
}

// busMetrics holds the bus's telemetry instruments, resolved once at
// attach time. All nil (free no-ops) until SetMetrics is called with a
// live scope.
type busMetrics struct {
	bursts     *telemetry.Counter
	burstBytes *telemetry.Counter
	pioWords   *telemetry.Counter
	wait       *telemetry.Histogram
	occupancy  *telemetry.Counter // cycles the bus was reserved
}

// SetMetrics attaches telemetry instruments (nil scope disables them).
// Recording is a pure observation: it never advances the clock.
func (b *Bus) SetMetrics(s *telemetry.Scope) {
	b.m = busMetrics{
		bursts:     s.Counter("bus_bursts"),
		burstBytes: s.Counter("bus_burst_bytes"),
		pioWords:   s.Counter("bus_pio_words"),
		wait:       s.Histogram("bus_wait_cycles"),
		occupancy:  s.Counter("bus_busy_cycles"),
	}
}

// New returns an idle bus on the given clock.
func New(clock *sim.Clock, costs *sim.CostModel) *Bus {
	if clock == nil || costs == nil {
		panic("bus: New requires non-nil clock and costs")
	}
	return &Bus{clock: clock, costs: costs}
}

// ReserveBurst schedules a DMA burst of n bytes that may begin no
// earlier than 'earliest'. The burst waits for any in-progress bus
// activity, then occupies the bus for the engine startup plus the
// burst-mode transfer time. It returns the burst's start and end
// times; the caller schedules its completion event at 'end'.
func (b *Bus) ReserveBurst(earliest sim.Cycles, n int) (start, end sim.Cycles) {
	if n < 0 {
		panic(fmt.Sprintf("bus: ReserveBurst of %d bytes", n))
	}
	start = earliest
	if b.busyUntil > start {
		b.waitCycles += b.busyUntil - start
		b.m.wait.Observe(uint64(b.busyUntil - start))
		start = b.busyUntil
	} else {
		b.m.wait.Observe(0)
	}
	end = start + b.costs.DMAStartup + b.costs.DMACycles(n)
	b.busyUntil = end
	b.burstBytes += uint64(n)
	b.bursts++
	b.m.bursts.Inc()
	b.m.burstBytes.Add(uint64(n))
	b.m.occupancy.Add(uint64(end - start))
	return start, end
}

// PIOWord performs one programmed-I/O word transaction: the CPU is
// stalled for the word cost (charged on the clock) and the bus is
// occupied for the same interval. Returns when the word is on the wire.
func (b *Bus) PIOWord() {
	// AdvanceTo fires due events, and a fired event may itself reserve
	// a DMA burst, pushing busyUntil past the value captured before the
	// wait. Re-check after every advance so the PIO word never overlaps
	// a burst reserved while the CPU was stalled waiting for the bus.
	for b.busyUntil > b.clock.Now() {
		b.waitCycles += b.busyUntil - b.clock.Now()
		b.clock.AdvanceTo(b.busyUntil)
	}
	end := b.clock.Now() + b.costs.PIOWordCost
	b.busyUntil = end
	b.clock.AdvanceTo(end)
	b.pioWords++
	b.m.pioWords.Inc()
	b.m.occupancy.Add(uint64(b.costs.PIOWordCost))
}

// BusyUntil returns the time the bus becomes free.
func (b *Bus) BusyUntil() sim.Cycles { return b.busyUntil }

// Idle reports whether the bus is free at the current time.
func (b *Bus) Idle() bool { return b.busyUntil <= b.clock.Now() }

// Stats summarizes bus activity.
type Stats struct {
	BurstBytes uint64     // bytes moved by DMA bursts
	Bursts     uint64     // number of DMA bursts
	PIOWords   uint64     // programmed-I/O words
	WaitCycles sim.Cycles // total arbitration wait
}

// Stats returns cumulative counters.
func (b *Bus) Stats() Stats {
	return Stats{
		BurstBytes: b.burstBytes,
		Bursts:     b.bursts,
		PIOWords:   b.pioWords,
		WaitCycles: b.waitCycles,
	}
}
