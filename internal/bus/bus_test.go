package bus

import (
	"testing"

	"shrimp/internal/sim"
)

func testBus() (*Bus, *sim.Clock) {
	clock := sim.NewClock()
	costs := &sim.CostModel{
		CPUHz:           60e6,
		DMAStartup:      10,
		DMABytesPerCyc:  2,
		PIOWordCost:     8,
		LinkBytesPerCyc: 1,
	}
	return New(clock, costs), clock
}

func TestBurstTiming(t *testing.T) {
	b, _ := testBus()
	start, end := b.ReserveBurst(0, 100) // 10 startup + 50 transfer
	if start != 0 || end != 60 {
		t.Fatalf("burst = [%d,%d], want [0,60]", start, end)
	}
	if b.BusyUntil() != 60 {
		t.Fatalf("BusyUntil = %d, want 60", b.BusyUntil())
	}
}

func TestBurstsSerialize(t *testing.T) {
	b, _ := testBus()
	_, end1 := b.ReserveBurst(0, 100)
	start2, end2 := b.ReserveBurst(0, 100)
	if start2 != end1 {
		t.Fatalf("second burst started at %d, want %d (after first)", start2, end1)
	}
	if end2 != end1+60 {
		t.Fatalf("second burst ended at %d, want %d", end2, end1+60)
	}
	st := b.Stats()
	if st.Bursts != 2 || st.BurstBytes != 200 {
		t.Fatalf("stats = %+v", st)
	}
	if st.WaitCycles != end1 {
		t.Fatalf("WaitCycles = %d, want %d", st.WaitCycles, end1)
	}
}

func TestBurstAfterBusIdle(t *testing.T) {
	b, _ := testBus()
	b.ReserveBurst(0, 2) // busy [0,11]
	start, _ := b.ReserveBurst(100, 2)
	if start != 100 {
		t.Fatalf("burst requested at 100 started at %d", start)
	}
	if b.Stats().WaitCycles != 0 {
		t.Fatal("no contention expected")
	}
}

func TestZeroByteBurstCostsStartupOnly(t *testing.T) {
	b, _ := testBus()
	start, end := b.ReserveBurst(5, 0)
	if start != 5 || end != 15 {
		t.Fatalf("zero burst = [%d,%d], want [5,15]", start, end)
	}
}

func TestNegativeBurstPanics(t *testing.T) {
	b, _ := testBus()
	defer func() {
		if recover() == nil {
			t.Fatal("negative burst did not panic")
		}
	}()
	b.ReserveBurst(0, -1)
}

func TestPIOWordAdvancesClockAndBus(t *testing.T) {
	b, clock := testBus()
	b.PIOWord()
	if clock.Now() != 8 {
		t.Fatalf("PIO word advanced clock to %d, want 8", clock.Now())
	}
	b.PIOWord()
	if clock.Now() != 16 {
		t.Fatalf("second PIO word: clock %d, want 16", clock.Now())
	}
	if got := b.Stats().PIOWords; got != 2 {
		t.Fatalf("PIOWords = %d, want 2", got)
	}
}

func TestPIOWaitsForBurst(t *testing.T) {
	b, clock := testBus()
	b.ReserveBurst(0, 100) // busy [0,60]
	b.PIOWord()
	if clock.Now() != 68 {
		t.Fatalf("PIO after burst finished at %d, want 68", clock.Now())
	}
	if b.Stats().WaitCycles != 60 {
		t.Fatalf("WaitCycles = %d, want 60", b.Stats().WaitCycles)
	}
}

// TestPIODoesNotOverlapBurstReservedDuringWait is the regression test
// for the double-booking bug: while PIOWord stalls the CPU waiting for
// the bus, AdvanceTo fires due events, and a fired event may reserve a
// fresh burst. The old code captured busyUntil once before the wait and
// then claimed the bus at that stale time, overlapping the new burst.
func TestPIODoesNotOverlapBurstReservedDuringWait(t *testing.T) {
	b, clock := testBus()
	b.ReserveBurst(0, 100) // busy [0,60]
	// Mid-wait, a device completion grabs the bus for another burst the
	// moment the first one ends: busy through [60,120].
	var start2, end2 sim.Cycles
	clock.Schedule(30, "competing DMA", func() {
		start2, end2 = b.ReserveBurst(clock.Now(), 100)
	})
	b.PIOWord()
	if start2 != 60 || end2 != 120 {
		t.Fatalf("competing burst = [%d,%d], want [60,120]", start2, end2)
	}
	// The PIO word must queue behind BOTH bursts.
	if clock.Now() != 128 {
		t.Fatalf("PIO word finished at %d, want 128 (after the burst reserved mid-wait)", clock.Now())
	}
	if b.BusyUntil() != 128 {
		t.Fatalf("BusyUntil = %d, want 128", b.BusyUntil())
	}
}

func TestIdle(t *testing.T) {
	b, clock := testBus()
	if !b.Idle() {
		t.Fatal("fresh bus not idle")
	}
	b.ReserveBurst(0, 100)
	if b.Idle() {
		t.Fatal("bus idle during burst")
	}
	clock.Advance(60)
	if !b.Idle() {
		t.Fatal("bus busy after burst end")
	}
}

func TestNewRequiresDeps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(nil,nil) did not panic")
		}
	}()
	New(nil, nil)
}
