// Package mem implements the simulated machine's physical memory and
// the backing store (swap device) used by the kernel's demand-paging
// code. Physical memory is frame-granular: the kernel allocates and
// frees whole frames, and the DMA engines and CPU read and write byte
// ranges within them.
package mem

import (
	"fmt"

	"shrimp/internal/addr"
)

// Physical is the machine's RAM: a fixed number of page frames.
type Physical struct {
	frames int
	data   []byte
}

// NewPhysical returns RAM with the given number of 4 KB page frames.
// It panics if frames is not positive — a machine needs memory.
func NewPhysical(frames int) *Physical {
	if frames <= 0 {
		panic(fmt.Sprintf("mem: NewPhysical(%d): frame count must be positive", frames))
	}
	if frames > int(addr.RegionMaxPage) {
		panic(fmt.Sprintf("mem: NewPhysical(%d): exceeds the %d-frame memory region",
			frames, addr.RegionMaxPage))
	}
	return &Physical{
		frames: frames,
		data:   make([]byte, frames*addr.PageSize),
	}
}

// Frames returns the number of page frames.
func (p *Physical) Frames() int { return p.frames }

// Size returns total bytes of RAM.
func (p *Physical) Size() int { return len(p.data) }

// Contains reports whether the physical address range [a, a+n) lies
// entirely inside installed RAM in the real memory region.
func (p *Physical) Contains(a addr.PAddr, n int) bool {
	if addr.RegionOf(a) != addr.RegionMemory || n < 0 {
		return false
	}
	end := uint64(a) + uint64(n)
	return end <= uint64(len(p.data))
}

// Read copies n bytes starting at physical address a into a fresh
// slice. It returns an error for out-of-range accesses — the simulated
// bus master gets a bus error, not a Go panic.
func (p *Physical) Read(a addr.PAddr, n int) ([]byte, error) {
	if err := p.check(a, n); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, p.data[a:uint64(a)+uint64(n)])
	return out, nil
}

// ReadInto copies len(dst) bytes starting at a into dst.
func (p *Physical) ReadInto(a addr.PAddr, dst []byte) error {
	if err := p.check(a, len(dst)); err != nil {
		return err
	}
	copy(dst, p.data[a:uint64(a)+uint64(len(dst))])
	return nil
}

// Write copies src into memory starting at physical address a.
func (p *Physical) Write(a addr.PAddr, src []byte) error {
	if err := p.check(a, len(src)); err != nil {
		return err
	}
	copy(p.data[a:uint64(a)+uint64(len(src))], src)
	return nil
}

// ReadWord reads a 32-bit little-endian word at a (must be in range;
// unaligned reads are allowed, as on x86).
func (p *Physical) ReadWord(a addr.PAddr) (uint32, error) {
	if err := p.check(a, 4); err != nil {
		return 0, err
	}
	d := p.data[a : a+4]
	return uint32(d[0]) | uint32(d[1])<<8 | uint32(d[2])<<16 | uint32(d[3])<<24, nil
}

// WriteWord writes a 32-bit little-endian word at a.
func (p *Physical) WriteWord(a addr.PAddr, v uint32) error {
	if err := p.check(a, 4); err != nil {
		return err
	}
	d := p.data[a : a+4]
	d[0] = byte(v)
	d[1] = byte(v >> 8)
	d[2] = byte(v >> 16)
	d[3] = byte(v >> 24)
	return nil
}

// Frame returns the full contents of frame pfn as a copy.
func (p *Physical) Frame(pfn uint32) ([]byte, error) {
	return p.Read(addr.FrameAddr(pfn), addr.PageSize)
}

// SetFrame overwrites frame pfn with page (which must be PageSize long).
func (p *Physical) SetFrame(pfn uint32, page []byte) error {
	if len(page) != addr.PageSize {
		return fmt.Errorf("mem: SetFrame with %d bytes, want %d", len(page), addr.PageSize)
	}
	return p.Write(addr.FrameAddr(pfn), page)
}

// ZeroFrame clears frame pfn.
func (p *Physical) ZeroFrame(pfn uint32) error {
	a := addr.FrameAddr(pfn)
	if err := p.check(a, addr.PageSize); err != nil {
		return err
	}
	region := p.data[a : int(a)+addr.PageSize]
	for i := range region {
		region[i] = 0
	}
	return nil
}

func (p *Physical) check(a addr.PAddr, n int) error {
	if n < 0 {
		return fmt.Errorf("mem: negative length %d at %#x", n, uint32(a))
	}
	if !p.Contains(a, n) {
		return fmt.Errorf("mem: bus error: [%#x,+%d) outside %d-byte RAM", uint32(a), n, len(p.data))
	}
	return nil
}
