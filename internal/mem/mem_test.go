package mem

import (
	"bytes"
	"testing"
	"testing/quick"

	"shrimp/internal/addr"
)

func TestNewPhysicalGeometry(t *testing.T) {
	p := NewPhysical(16)
	if p.Frames() != 16 {
		t.Fatalf("Frames() = %d, want 16", p.Frames())
	}
	if p.Size() != 16*addr.PageSize {
		t.Fatalf("Size() = %d, want %d", p.Size(), 16*addr.PageSize)
	}
}

func TestNewPhysicalRejectsBadSizes(t *testing.T) {
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPhysical(%d) did not panic", n)
				}
			}()
			NewPhysical(n)
		}()
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	p := NewPhysical(4)
	src := []byte("protected user-level DMA")
	if err := p.Write(0x1234, src); err != nil {
		t.Fatal(err)
	}
	got, err := p.Read(0x1234, len(src))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("Read = %q, want %q", got, src)
	}
}

func TestReadIntoMatchesRead(t *testing.T) {
	p := NewPhysical(2)
	if err := p.Write(100, []byte{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 5)
	if err := p.ReadInto(100, dst); err != nil {
		t.Fatal(err)
	}
	want, _ := p.Read(100, 5)
	if !bytes.Equal(dst, want) {
		t.Fatalf("ReadInto = %v, Read = %v", dst, want)
	}
}

func TestReadReturnsCopy(t *testing.T) {
	p := NewPhysical(1)
	p.Write(0, []byte{9})
	got, _ := p.Read(0, 1)
	got[0] = 42
	again, _ := p.Read(0, 1)
	if again[0] != 9 {
		t.Fatal("Read returned a view into memory, want a copy")
	}
}

func TestOutOfRangeAccessIsBusError(t *testing.T) {
	p := NewPhysical(1)
	if _, err := p.Read(addr.PAddr(addr.PageSize-2), 4); err == nil {
		t.Fatal("read spanning end of RAM succeeded")
	}
	if err := p.Write(addr.PAddr(addr.PageSize), []byte{1}); err == nil {
		t.Fatal("write past end of RAM succeeded")
	}
	if _, err := p.Read(addr.PAddr(addr.MemProxyBase), 4); err == nil {
		t.Fatal("read of proxy-region address through RAM succeeded")
	}
	if _, err := p.Read(0, -1); err == nil {
		t.Fatal("negative-length read succeeded")
	}
}

func TestContains(t *testing.T) {
	p := NewPhysical(2)
	cases := []struct {
		a    addr.PAddr
		n    int
		want bool
	}{
		{0, 0, true},
		{0, 2 * addr.PageSize, true},
		{0, 2*addr.PageSize + 1, false},
		{addr.PAddr(2 * addr.PageSize), 0, true},
		{addr.PAddr(addr.MemProxyBase), 4, false},
		{0, -1, false},
	}
	for _, tc := range cases {
		if got := p.Contains(tc.a, tc.n); got != tc.want {
			t.Errorf("Contains(%#x, %d) = %v, want %v", uint32(tc.a), tc.n, got, tc.want)
		}
	}
}

func TestWordRoundTrip(t *testing.T) {
	p := NewPhysical(1)
	if err := p.WriteWord(8, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	v, err := p.ReadWord(8)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xDEADBEEF {
		t.Fatalf("ReadWord = %#x, want 0xDEADBEEF", v)
	}
}

func TestWordIsLittleEndian(t *testing.T) {
	p := NewPhysical(1)
	p.WriteWord(0, 0x04030201)
	b, _ := p.Read(0, 4)
	if !bytes.Equal(b, []byte{1, 2, 3, 4}) {
		t.Fatalf("word bytes = %v, want little-endian [1 2 3 4]", b)
	}
}

func TestUnalignedWordAllowed(t *testing.T) {
	p := NewPhysical(1)
	if err := p.WriteWord(3, 0x11223344); err != nil {
		t.Fatalf("unaligned WriteWord failed: %v", err)
	}
	if v, _ := p.ReadWord(3); v != 0x11223344 {
		t.Fatalf("unaligned ReadWord = %#x", v)
	}
}

func TestWordAtEdge(t *testing.T) {
	p := NewPhysical(1)
	if _, err := p.ReadWord(addr.PAddr(addr.PageSize - 3)); err == nil {
		t.Fatal("word read spanning end of RAM succeeded")
	}
	if _, err := p.ReadWord(addr.PAddr(addr.PageSize - 4)); err != nil {
		t.Fatalf("last full word read failed: %v", err)
	}
}

func TestFrameOps(t *testing.T) {
	p := NewPhysical(3)
	page := make([]byte, addr.PageSize)
	for i := range page {
		page[i] = byte(i)
	}
	if err := p.SetFrame(1, page); err != nil {
		t.Fatal(err)
	}
	got, err := p.Frame(1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, page) {
		t.Fatal("Frame round trip mismatch")
	}
	if err := p.ZeroFrame(1); err != nil {
		t.Fatal(err)
	}
	got, _ = p.Frame(1)
	for _, b := range got {
		if b != 0 {
			t.Fatal("ZeroFrame left nonzero bytes")
		}
	}
	// Neighbors untouched.
	p.SetFrame(0, page)
	p.SetFrame(2, page)
	p.ZeroFrame(1)
	f0, _ := p.Frame(0)
	f2, _ := p.Frame(2)
	if !bytes.Equal(f0, page) || !bytes.Equal(f2, page) {
		t.Fatal("ZeroFrame touched a neighboring frame")
	}
}

func TestSetFrameWrongSize(t *testing.T) {
	p := NewPhysical(1)
	if err := p.SetFrame(0, []byte{1, 2, 3}); err == nil {
		t.Fatal("SetFrame with short page succeeded")
	}
}

// Property: writes at disjoint addresses do not interfere.
func TestDisjointWritesProperty(t *testing.T) {
	p := NewPhysical(16) // 64 KB: covers every uint16 address
	prop := func(a16, b16 uint16, av, bv byte) bool {
		a := addr.PAddr(a16)
		b := addr.PAddr(b16)
		if a == b {
			return true
		}
		if err := p.Write(a, []byte{av}); err != nil {
			return false
		}
		if err := p.Write(b, []byte{bv}); err != nil {
			return false
		}
		ga, _ := p.Read(a, 1)
		gb, _ := p.Read(b, 1)
		return ga[0] == av && gb[0] == bv
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBackingStoreAllocFree(t *testing.T) {
	b := NewBackingStore()
	s1 := b.Alloc()
	s2 := b.Alloc()
	if s1 == s2 {
		t.Fatal("Alloc returned duplicate slots")
	}
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2", b.Len())
	}
	if err := b.Free(s1); err != nil {
		t.Fatal(err)
	}
	if err := b.Free(s1); err == nil {
		t.Fatal("double Free succeeded")
	}
	if b.Len() != 1 {
		t.Fatalf("Len = %d, want 1", b.Len())
	}
}

func TestBackingStoreFreshSlotReadsZero(t *testing.T) {
	b := NewBackingStore()
	s := b.Alloc()
	page, err := b.ReadPage(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(page) != addr.PageSize {
		t.Fatalf("page length %d", len(page))
	}
	for _, v := range page {
		if v != 0 {
			t.Fatal("fresh slot not zero-filled")
		}
	}
}

func TestBackingStoreRoundTrip(t *testing.T) {
	b := NewBackingStore()
	s := b.Alloc()
	page := make([]byte, addr.PageSize)
	for i := range page {
		page[i] = byte(i * 7)
	}
	if err := b.WritePage(s, page); err != nil {
		t.Fatal(err)
	}
	page[0] = 0xFF // caller's buffer must not alias the store
	got, err := b.ReadPage(s)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 || got[1] != 7 {
		t.Fatalf("swap contents corrupted: %v...", got[:4])
	}
	got[1] = 0xEE
	again, _ := b.ReadPage(s)
	if again[1] != 7 {
		t.Fatal("ReadPage returned a view, want a copy")
	}
}

func TestBackingStoreErrors(t *testing.T) {
	b := NewBackingStore()
	if _, err := b.ReadPage(99); err == nil {
		t.Fatal("read of unallocated slot succeeded")
	}
	if err := b.WritePage(99, make([]byte, addr.PageSize)); err == nil {
		t.Fatal("write of unallocated slot succeeded")
	}
	s := b.Alloc()
	if err := b.WritePage(s, []byte{1}); err == nil {
		t.Fatal("short page write succeeded")
	}
}
