package mem

import (
	"fmt"

	"shrimp/internal/addr"
)

// BackingStore models the swap device: page-granular storage indexed by
// an opaque slot number. The kernel writes a dirty page out to clean it
// and reads a page back in on a page fault. Timing is charged by the
// kernel (sim.CostModel.PageCleanCost / PageInLatency); this type only
// stores bytes.
type BackingStore struct {
	slots map[uint32][]byte
	next  uint32
}

// NewBackingStore returns an empty swap device.
func NewBackingStore() *BackingStore {
	return &BackingStore{slots: make(map[uint32][]byte)}
}

// Alloc reserves a fresh slot and returns its number. Fresh slots read
// back as zero pages until written.
func (b *BackingStore) Alloc() uint32 {
	s := b.next
	b.next++
	b.slots[s] = nil
	return s
}

// Free releases a slot. Freeing an unknown slot is an error: it means
// the kernel's swap bookkeeping is corrupt.
func (b *BackingStore) Free(slot uint32) error {
	if _, ok := b.slots[slot]; !ok {
		return fmt.Errorf("mem: free of unallocated swap slot %d", slot)
	}
	delete(b.slots, slot)
	return nil
}

// WritePage stores a page (PageSize bytes) into slot.
func (b *BackingStore) WritePage(slot uint32, page []byte) error {
	if _, ok := b.slots[slot]; !ok {
		return fmt.Errorf("mem: write to unallocated swap slot %d", slot)
	}
	if len(page) != addr.PageSize {
		return fmt.Errorf("mem: swap write of %d bytes, want %d", len(page), addr.PageSize)
	}
	cp := make([]byte, addr.PageSize)
	copy(cp, page)
	b.slots[slot] = cp
	return nil
}

// ReadPage returns the contents of slot (a zero page if never written).
func (b *BackingStore) ReadPage(slot uint32) ([]byte, error) {
	data, ok := b.slots[slot]
	if !ok {
		return nil, fmt.Errorf("mem: read of unallocated swap slot %d", slot)
	}
	page := make([]byte, addr.PageSize)
	copy(page, data) // nil data copies nothing: zero page
	return page, nil
}

// Len returns the number of allocated slots.
func (b *BackingStore) Len() int { return len(b.slots) }
