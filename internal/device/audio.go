package device

import (
	"fmt"

	"shrimp/internal/sim"
)

// Audio is a playback device with real-time semantics — the paper's
// "audio and video devices" class. The device consumes samples from an
// internal ring buffer at a fixed rate; software must keep the ring
// filled by DMA, and a drained ring is an audible glitch the device
// counts as an underrun. This is the UDMA use case where *initiation
// latency predictability* matters more than bandwidth: with a 2.8 µs
// user-level initiation, a process can top up a small ring from its
// compute loop; with a multi-hundred-µs kernel path it needs deep
// buffering.
//
// Device-proxy addressing: the ring is a linear byte window tiled over
// the device's proxy pages; writes append at the offset's position
// modulo the ring (the offset's low bits select the ring slot, letting
// the gather/queue machinery stream into it).
type Audio struct {
	name      string
	ring      []byte
	fill      int        // bytes currently buffered
	rate      float64    // consumption in bytes per cycle
	lastDrain sim.Cycles // time of the last drain accounting
	clock     *sim.Clock

	underruns uint64
	consumed  uint64
	writes    uint64
}

// NewAudio creates a playback device with a ringBytes-byte buffer
// consuming bytesPerSecond under the given cost model's clock rate.
func NewAudio(name string, ringBytes int, bytesPerSecond float64, clock *sim.Clock, costs *sim.CostModel) *Audio {
	if ringBytes <= 0 || ringBytes%4 != 0 {
		panic(fmt.Sprintf("device: NewAudio ring of %d bytes", ringBytes))
	}
	if bytesPerSecond <= 0 {
		panic("device: NewAudio with non-positive rate")
	}
	if clock == nil || costs == nil {
		panic("device: NewAudio requires clock and costs")
	}
	return &Audio{
		name:  name,
		ring:  make([]byte, ringBytes),
		rate:  bytesPerSecond / costs.CPUHz,
		clock: clock,
	}
}

// drain advances the consumption model to the present: the device has
// been playing since lastDrain, eating fill bytes at the fixed rate.
// Each time the ring runs dry with playback still expected, one
// underrun is counted (per drain window, matching how codecs report).
func (a *Audio) drain() {
	now := a.clock.Now()
	if now <= a.lastDrain {
		return
	}
	want := int(float64(now-a.lastDrain) * a.rate)
	a.lastDrain = now
	if want <= 0 {
		return
	}
	if want > a.fill {
		if a.writes > 0 {
			// Only count an underrun once playback has ever started
			// (a silent device with nothing queued is not glitching).
			a.underruns++
		}
		a.consumed += uint64(a.fill)
		a.fill = 0
		return
	}
	a.fill -= want
	a.consumed += uint64(want)
}

// Name implements Device.
func (a *Audio) Name() string { return a.name }

// Pages implements Device: enough proxy pages to address the ring.
func (a *Audio) Pages() uint32 {
	return uint32((len(a.ring) + pageSize - 1) / pageSize)
}

// CheckTransfer implements Device: sample (word) alignment, and the
// ring is write-only from the host (playback hardware).
func (a *Audio) CheckTransfer(da DevAddr, n int, toDevice bool) ErrBits {
	var bits ErrBits
	if !toDevice {
		bits |= ErrReadOnly
	}
	if da.Linear()%4 != 0 || n%4 != 0 {
		bits |= ErrAlignment
	}
	if n > len(a.ring) {
		bits |= ErrBounds
	}
	return bits
}

// TransferLatency implements Device (codec FIFO entry is immediate).
func (a *Audio) TransferLatency(DevAddr, int) sim.Cycles { return 0 }

// Write implements Device: append the payload to the ring. Data beyond
// free space is dropped (the codec cannot stall the bus), which shows
// up as neither fill nor underrun — the driver's queue-depth bug.
func (a *Audio) Write(_ DevAddr, data []byte, _ sim.Cycles) error {
	a.drain()
	room := len(a.ring) - a.fill
	n := len(data)
	if n > room {
		n = room
	}
	a.fill += n
	a.writes++
	return nil
}

// Read implements Device; playback hardware is write-only.
func (a *Audio) Read(DevAddr, int, sim.Cycles) ([]byte, error) {
	return nil, fmt.Errorf("device: %s is a playback device", a.name)
}

// Fill returns the bytes currently buffered (draining to the present).
func (a *Audio) Fill() int {
	a.drain()
	return a.fill
}

// Stats returns consumption and underrun counts (draining first).
func (a *Audio) Stats() (consumed, underruns, writes uint64) {
	a.drain()
	return a.consumed, a.underruns, a.writes
}

var _ Device = (*Audio)(nil)
