package device

import (
	"testing"

	"shrimp/internal/sim"
)

func audioRig(ringBytes int, rate float64) (*Audio, *sim.Clock) {
	clock := sim.NewClock()
	costs := &sim.CostModel{CPUHz: 60e6, DMABytesPerCyc: 1, LinkBytesPerCyc: 1}
	return NewAudio("dac0", ringBytes, rate, clock, costs), clock
}

func TestAudioConsumesAtRate(t *testing.T) {
	// 6 MB/s at 60 MHz = 0.1 bytes/cycle.
	a, clock := audioRig(4096, 6e6)
	a.Write(DevAddr{}, make([]byte, 1000), 0)
	if a.Fill() != 1000 {
		t.Fatalf("fill = %d", a.Fill())
	}
	clock.Advance(5000) // 500 bytes consumed
	if got := a.Fill(); got != 500 {
		t.Fatalf("fill after 5000 cycles = %d, want 500", got)
	}
	consumed, underruns, _ := a.Stats()
	if consumed != 500 || underruns != 0 {
		t.Fatalf("stats = %d consumed, %d underruns", consumed, underruns)
	}
}

func TestAudioUnderrunDetected(t *testing.T) {
	a, clock := audioRig(4096, 6e6)
	a.Write(DevAddr{}, make([]byte, 300), 0)
	clock.Advance(10_000) // wants 1000 bytes, has 300
	_, underruns, _ := a.Stats()
	if underruns != 1 {
		t.Fatalf("underruns = %d, want 1", underruns)
	}
	// Refill: playback resumes without further underruns.
	a.Write(DevAddr{}, make([]byte, 2000), 0)
	clock.Advance(5000)
	_, underruns, _ = a.Stats()
	if underruns != 1 {
		t.Fatalf("underruns after refill = %d, want still 1", underruns)
	}
}

func TestAudioNoUnderrunBeforeFirstPlayback(t *testing.T) {
	a, clock := audioRig(4096, 6e6)
	clock.Advance(100_000) // silence before anything was queued
	if _, underruns, _ := a.Stats(); underruns != 0 {
		t.Fatalf("underruns with nothing ever queued = %d", underruns)
	}
}

func TestAudioRingOverflowDrops(t *testing.T) {
	a, _ := audioRig(1024, 6e6)
	a.Write(DevAddr{}, make([]byte, 800), 0)
	a.Write(DevAddr{}, make([]byte, 800), 0) // only 224 fit
	if a.Fill() != 1024 {
		t.Fatalf("fill = %d, want ring capacity", a.Fill())
	}
}

func TestAudioCheckTransfer(t *testing.T) {
	a, _ := audioRig(4096, 6e6)
	if bits := a.CheckTransfer(DevAddr{0, 0}, 256, true); bits != 0 {
		t.Fatalf("valid write rejected: %#x", uint32(bits))
	}
	if bits := a.CheckTransfer(DevAddr{0, 0}, 256, false); bits&ErrReadOnly == 0 {
		t.Fatal("device→memory accepted on playback hardware")
	}
	if bits := a.CheckTransfer(DevAddr{0, 2}, 256, true); bits&ErrAlignment == 0 {
		t.Fatal("misaligned write accepted")
	}
	if bits := a.CheckTransfer(DevAddr{0, 0}, 8192, true); bits&ErrBounds == 0 {
		t.Fatal("oversized write accepted")
	}
	if _, err := a.Read(DevAddr{}, 4, 0); err == nil {
		t.Fatal("Read succeeded on playback device")
	}
	if a.Pages() != 1 {
		t.Fatalf("Pages = %d", a.Pages())
	}
}

func TestAudioConstructorValidation(t *testing.T) {
	clock := sim.NewClock()
	costs := &sim.CostModel{CPUHz: 60e6, DMABytesPerCyc: 1, LinkBytesPerCyc: 1}
	for name, fn := range map[string]func(){
		"zero ring": func() { NewAudio("x", 0, 1e6, clock, costs) },
		"odd ring":  func() { NewAudio("x", 1001, 1e6, clock, costs) },
		"zero rate": func() { NewAudio("x", 1024, 0, clock, costs) },
		"nil clock": func() { NewAudio("x", 1024, 1e6, nil, costs) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
