// Package device defines the I/O-device abstraction the DMA and UDMA
// engines transfer against, the device-proxy address map that routes a
// device-proxy page to its device, and two concrete devices from the
// paper's list of UDMA candidates: a disk and a graphics frame buffer
// (the SHRIMP network interface lives in internal/nic).
//
// A device is named by *device proxy addresses* (paper Section 4): a
// fixed one-to-one correspondence between device-proxy pages and
// DMA-able locations inside the device. What a device address means is
// device-specific — a pixel for a frame buffer, a block for a disk, a
// NIPT entry for the network interface.
package device

import (
	"fmt"

	"shrimp/internal/addr"
	"shrimp/internal/sim"
)

// DevAddr locates a spot inside a device: the device-relative proxy
// page index plus the byte offset on that page.
type DevAddr struct {
	Page uint32 // page index relative to the device's first proxy page
	Off  uint32 // byte offset within the page
}

// Linear returns the flat byte offset Page*PageSize + Off, for devices
// whose proxy pages tile a linear internal space.
func (d DevAddr) Linear() uint64 {
	return uint64(d.Page)*addr.PageSize + uint64(d.Off)
}

// Error bits reported in the device-specific portion of the UDMA status
// word (bits 18+; see internal/core). Devices return an ErrBits mask
// from CheckTransfer.
type ErrBits uint32

const (
	// ErrAlignment: the transfer violates the device's alignment rule
	// (the SHRIMP NIC requires 4-byte alignment).
	ErrAlignment ErrBits = 1 << iota
	// ErrBounds: the device address range does not exist on the device.
	ErrBounds
	// ErrInvalidEntry: the named translation entry is not configured
	// (e.g. an unmapped NIPT entry).
	ErrInvalidEntry
	// ErrReadOnly: a device-to-memory transfer from a write-only
	// location, or memory-to-device to a read-only one.
	ErrReadOnly
	// ErrQueueFull: the UDMA request queue refused the transfer.
	ErrQueueFull
	// ErrTransferFault: the transfer was accepted but failed during
	// data movement (a completion-time device fault or memory-system
	// error) or was terminated by the kernel. Reported by the UDMA
	// status word's error latch, not by CheckTransfer.
	ErrTransferFault
)

// Device is an I/O device that can source or sink DMA transfers.
// Implementations must be deterministic; all timing flows through the
// sim clock and cost model supplied at construction.
type Device interface {
	// Name identifies the device in traces and errors.
	Name() string

	// Pages returns how many device-proxy pages the device decodes.
	Pages() uint32

	// CheckTransfer validates an n-byte transfer at da. toDevice is
	// true for memory→device. It returns zero if the transfer is
	// acceptable, else the device-specific error bits. It must not
	// change device state.
	CheckTransfer(da DevAddr, n int, toDevice bool) ErrBits

	// TransferLatency returns extra per-transfer device time (seek,
	// packetization, …) beyond bus occupancy, charged before data
	// movement completes.
	TransferLatency(da DevAddr, n int) sim.Cycles

	// Write delivers data into the device at da (memory→device). The
	// engine calls it exactly once per completed transfer. now is the
	// completion time, letting devices timestamp or forward (the NIC
	// launches a packet here).
	Write(da DevAddr, data []byte, now sim.Cycles) error

	// Read extracts n bytes from the device at da (device→memory).
	Read(da DevAddr, n int, now sim.Cycles) ([]byte, error)
}

// Map routes device-proxy physical pages to attached devices. One Map
// serves one node; the kernel consults it when creating device-proxy
// mappings and the DMA engines when resolving transfer endpoints.
type Map struct {
	entries []mapEntry
}

type mapEntry struct {
	first, n uint32
	dev      Device
}

// NewMap returns an empty device map.
func NewMap() *Map { return &Map{} }

// Attach decodes nPages device-proxy pages starting at firstPage for
// dev. Ranges must not overlap.
func (m *Map) Attach(dev Device, firstPage uint32) error {
	n := dev.Pages()
	if n == 0 {
		return fmt.Errorf("device: %s decodes zero pages", dev.Name())
	}
	if uint64(firstPage)+uint64(n) > uint64(addr.RegionMaxPage) {
		return fmt.Errorf("device: %s range [%d,+%d) exceeds device proxy region",
			dev.Name(), firstPage, n)
	}
	for _, e := range m.entries {
		if firstPage < e.first+e.n && e.first < firstPage+n {
			return fmt.Errorf("device: %s range [%d,+%d) overlaps %s [%d,+%d)",
				dev.Name(), firstPage, n, e.dev.Name(), e.first, e.n)
		}
	}
	m.entries = append(m.entries, mapEntry{first: firstPage, n: n, dev: dev})
	return nil
}

// Resolve maps a device-proxy physical address to its device and
// device-relative address. ok is false if no device decodes the page.
func (m *Map) Resolve(pa addr.PAddr) (dev Device, da DevAddr, ok bool) {
	if addr.RegionOf(pa) != addr.RegionDevProxy {
		return nil, DevAddr{}, false
	}
	page := addr.DevProxyPage(pa)
	for _, e := range m.entries {
		if page >= e.first && page < e.first+e.n {
			return e.dev, DevAddr{Page: page - e.first, Off: addr.PPageOff(pa)}, true
		}
	}
	return nil, DevAddr{}, false
}

// PageRange returns the absolute device-proxy page range assigned to a
// device, for kernels building user mappings. ok is false if the device
// is not attached.
func (m *Map) PageRange(dev Device) (first, n uint32, ok bool) {
	for _, e := range m.entries {
		if e.dev == dev {
			return e.first, e.n, true
		}
	}
	return 0, 0, false
}

// Devices returns the attached devices in attach order.
func (m *Map) Devices() []Device {
	out := make([]Device, len(m.entries))
	for i, e := range m.entries {
		out[i] = e.dev
	}
	return out
}
