package device

import (
	"errors"
	"testing"
)

func TestFaultyPassThrough(t *testing.T) {
	inner := NewBuffer("b", 2, 4, 7)
	f := NewFaulty(inner)
	if f.Name() != "b+faulty" || f.Pages() != 2 {
		t.Fatal("identity not forwarded")
	}
	if f.TransferLatency(DevAddr{}, 64) != 7 {
		t.Fatal("latency not forwarded")
	}
	if bits := f.CheckTransfer(DevAddr{0, 2}, 8, true); bits&ErrAlignment == 0 {
		t.Fatal("inner validation not forwarded")
	}
	if err := f.Write(DevAddr{0, 0}, []byte{1, 2, 3, 4}, 0); err != nil {
		t.Fatal(err)
	}
	got, err := f.Read(DevAddr{0, 0}, 4, 0)
	if err != nil || got[0] != 1 {
		t.Fatalf("read = %v, %v", got, err)
	}
}

func TestFaultyRejectNext(t *testing.T) {
	f := NewFaulty(NewBuffer("b", 2, 0, 0))
	f.RejectNext = 2
	if bits := f.CheckTransfer(DevAddr{}, 4, true); bits != ErrBounds {
		t.Fatalf("default reject bits = %#x", uint32(bits))
	}
	f.RejectBits = ErrReadOnly
	if bits := f.CheckTransfer(DevAddr{}, 4, true); bits != ErrReadOnly {
		t.Fatal("custom reject bits not used")
	}
	if bits := f.CheckTransfer(DevAddr{}, 4, true); bits != 0 {
		t.Fatal("rejection did not expire")
	}
	rej, _ := f.Injected()
	if rej != 2 {
		t.Fatalf("rejected = %d", rej)
	}
}

func TestFaultyFailNext(t *testing.T) {
	f := NewFaulty(NewBuffer("b", 2, 0, 0))
	f.FailNext = 1
	if err := f.Write(DevAddr{}, []byte{1}, 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("write error = %v", err)
	}
	if err := f.Write(DevAddr{}, []byte{1}, 0); err != nil {
		t.Fatal("failure did not expire")
	}
	f.FailNext = 1
	if _, err := f.Read(DevAddr{}, 1, 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("read error = %v", err)
	}
	_, failed := f.Injected()
	if failed != 2 {
		t.Fatalf("failed = %d", failed)
	}
}
