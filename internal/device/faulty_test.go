package device

import (
	"errors"
	"testing"
)

func TestFaultyPassThrough(t *testing.T) {
	inner := NewBuffer("b", 2, 4, 7)
	f := NewFaulty(inner)
	if f.Name() != "b+faulty" || f.Pages() != 2 {
		t.Fatal("identity not forwarded")
	}
	if f.TransferLatency(DevAddr{}, 64) != 7 {
		t.Fatal("latency not forwarded")
	}
	if bits := f.CheckTransfer(DevAddr{0, 2}, 8, true); bits&ErrAlignment == 0 {
		t.Fatal("inner validation not forwarded")
	}
	if err := f.Write(DevAddr{0, 0}, []byte{1, 2, 3, 4}, 0); err != nil {
		t.Fatal(err)
	}
	got, err := f.Read(DevAddr{0, 0}, 4, 0)
	if err != nil || got[0] != 1 {
		t.Fatalf("read = %v, %v", got, err)
	}
}

func TestFaultyRejectNext(t *testing.T) {
	f := NewFaulty(NewBuffer("b", 2, 0, 0))
	f.RejectNext = 2
	if bits := f.CheckTransfer(DevAddr{}, 4, true); bits != ErrBounds {
		t.Fatalf("default reject bits = %#x", uint32(bits))
	}
	f.RejectBits = ErrReadOnly
	if bits := f.CheckTransfer(DevAddr{}, 4, true); bits != ErrReadOnly {
		t.Fatal("custom reject bits not used")
	}
	if bits := f.CheckTransfer(DevAddr{}, 4, true); bits != 0 {
		t.Fatal("rejection did not expire")
	}
	rej, _ := f.Injected()
	if rej != 2 {
		t.Fatalf("rejected = %d", rej)
	}
}

func TestFaultyFailNext(t *testing.T) {
	f := NewFaulty(NewBuffer("b", 2, 0, 0))
	f.FailNext = 1
	if err := f.Write(DevAddr{}, []byte{1}, 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("write error = %v", err)
	}
	if err := f.Write(DevAddr{}, []byte{1}, 0); err != nil {
		t.Fatal("failure did not expire")
	}
	f.FailNext = 1
	if _, err := f.Read(DevAddr{}, 1, 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("read error = %v", err)
	}
	_, failed := f.Injected()
	if failed != 2 {
		t.Fatalf("failed = %d", failed)
	}
}

func TestFaultyEveryNth(t *testing.T) {
	f := NewFaulty(NewBuffer("b", 2, 0, 0))
	f.InjectEveryNth(40, 4, 5)
	// Phases derive from the seed: check ops fault at op%4 == 40%4 == 0,
	// data ops at op%5 == (40>>17)%5 == 0.
	var rejects, fails []int
	for op := 0; op < 12; op++ {
		if bits := f.CheckTransfer(DevAddr{}, 4, true); bits != 0 {
			rejects = append(rejects, op)
		}
	}
	for op := 0; op < 15; op++ {
		if err := f.Write(DevAddr{}, []byte{1, 2, 3, 4}, 0); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("op %d: %v", op, err)
			}
			fails = append(fails, op)
		}
	}
	wantRej, wantFail := []int{0, 4, 8}, []int{0, 5, 10}
	if len(rejects) != len(wantRej) || len(fails) != len(wantFail) {
		t.Fatalf("rejects %v fails %v", rejects, fails)
	}
	for i := range wantRej {
		if rejects[i] != wantRej[i] {
			t.Fatalf("rejects %v, want %v", rejects, wantRej)
		}
	}
	for i := range wantFail {
		if fails[i] != wantFail[i] {
			t.Fatalf("fails %v, want %v", fails, wantFail)
		}
	}
	rej, failed := f.Injected()
	if rej != 3 || failed != 3 {
		t.Fatalf("Injected() = %d, %d", rej, failed)
	}
}

func TestFaultyEveryNthSeedShiftsPhase(t *testing.T) {
	// Different seeds must fault different ops — that is the whole point
	// of deriving the phase instead of always faulting op 0.
	firstFault := func(seed uint64) int {
		f := NewFaulty(NewBuffer("b", 2, 0, 0))
		f.InjectEveryNth(seed, 7, 0)
		for op := 0; ; op++ {
			if f.CheckTransfer(DevAddr{}, 4, true) != 0 {
				return op
			}
		}
	}
	seen := map[int]bool{}
	for seed := uint64(0); seed < 7; seed++ {
		seen[firstFault(seed)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("7 seeds all faulted the same op: %v", seen)
	}
}

func TestFaultyEveryNthReseedResets(t *testing.T) {
	f := NewFaulty(NewBuffer("b", 2, 0, 0))
	f.InjectEveryNth(0, 3, 0) // phase 0: op 0 faults
	if f.CheckTransfer(DevAddr{}, 4, true) == 0 {
		t.Fatal("op 0 should fault at phase 0")
	}
	f.InjectEveryNth(0, 3, 0) // re-arm resets the op counters
	if f.CheckTransfer(DevAddr{}, 4, true) == 0 {
		t.Fatal("re-arm did not reset the op counter")
	}
	f.InjectEveryNth(0, 0, 0) // zero disables the channel
	for op := 0; op < 10; op++ {
		if f.CheckTransfer(DevAddr{}, 4, true) != 0 {
			t.Fatal("disabled periodic injection still fired")
		}
	}
}
