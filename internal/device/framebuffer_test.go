package device

import (
	"bytes"
	"testing"
)

func pixelBytes(vals ...uint32) []byte {
	out := make([]byte, 0, 4*len(vals))
	for _, v := range vals {
		out = append(out, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return out
}

func TestFrameBufferBlitAndReadBack(t *testing.T) {
	f := NewFrameBuffer("fb", 8, 4, 0)
	// Blit two pixels at (2, 1) and verify via both Pixel and Read.
	da := DevAddr{Page: 0, Off: f.PixelOff(2, 1)}
	if err := f.Write(da, pixelBytes(0x11223344, 0xAABBCCDD), 0); err != nil {
		t.Fatal(err)
	}
	if got := f.Pixel(2, 1); got != 0x11223344 {
		t.Fatalf("pixel (2,1) = %#x", got)
	}
	if got := f.Pixel(3, 1); got != 0xAABBCCDD {
		t.Fatalf("pixel (3,1) = %#x", got)
	}
	back, err := f.Read(da, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, pixelBytes(0x11223344, 0xAABBCCDD)) {
		t.Fatalf("read-back %x", back)
	}
	if w, r := f.Stats(); w != 1 || r != 1 {
		t.Fatalf("stats writes=%d reads=%d", w, r)
	}
	// Neighboring pixels were untouched by the two-pixel blit.
	if f.Pixel(1, 1) != 0 || f.Pixel(4, 1) != 0 {
		t.Fatal("blit bled into neighboring pixels")
	}
}

func TestFrameBufferCheckTransferCombinedBits(t *testing.T) {
	f := NewFrameBuffer("fb", 8, 4, 0) // 128 bytes of pixels
	// A transfer that is both misaligned and out of bounds reports both
	// conditions, and validation is direction-independent.
	for _, toDevice := range []bool{true, false} {
		got := f.CheckTransfer(DevAddr{0, 126}, 6, toDevice)
		if got != ErrAlignment|ErrBounds {
			t.Errorf("toDevice=%v: bits %#x, want alignment|bounds", toDevice, uint32(got))
		}
	}
	if got := f.CheckTransfer(DevAddr{0, 0}, 6, true); got != ErrAlignment {
		t.Errorf("odd length: bits %#x, want alignment only", uint32(got))
	}
}

func TestFrameBufferRejectedAccessNotCounted(t *testing.T) {
	f := NewFrameBuffer("fb", 8, 4, 0)
	if err := f.Write(DevAddr{0, 124}, make([]byte, 8), 0); err == nil {
		t.Fatal("out-of-bounds blit accepted")
	}
	if _, err := f.Read(DevAddr{0, 2}, 4, 0); err == nil {
		t.Fatal("misaligned read-back accepted")
	}
	if w, r := f.Stats(); w != 0 || r != 0 {
		t.Fatalf("rejected accesses were counted: writes=%d reads=%d", w, r)
	}
}

func TestFrameBufferRetrace(t *testing.T) {
	f := NewFrameBuffer("fb", 8, 4, 77)
	if got := f.TransferLatency(DevAddr{}, 128); got != 77 {
		t.Fatalf("TransferLatency = %d, want the retrace cost 77", got)
	}
}

func TestFrameBufferSecondPagePixels(t *testing.T) {
	// 64x32 = 2048 pixels = 8 KB: pixel (0, 16) starts page 1, so a
	// DevAddr addressed through the second proxy page must land there.
	f := NewFrameBuffer("fb", 64, 32, 0)
	if f.Pages() != 2 {
		t.Fatalf("Pages() = %d, want 2", f.Pages())
	}
	da := DevAddr{Page: 1, Off: 0}
	if err := f.Write(da, pixelBytes(0xCAFEF00D), 0); err != nil {
		t.Fatal(err)
	}
	if got := f.Pixel(0, 16); got != 0xCAFEF00D {
		t.Fatalf("pixel (0,16) = %#x", got)
	}
}
