package device

import (
	"fmt"

	"shrimp/internal/sim"
)

// FrameBuffer is a graphics device driven by UDMA, the paper's leading
// example of a memory-mapped device ("if the device is a graphics
// frame-buffer, a device address might specify a pixel"). Pixels are
// 32-bit words in row-major order; device-proxy pages tile the pixel
// array linearly, so proxy offset = 4 × (y × width + x).
type FrameBuffer struct {
	name          string
	width, height int
	pixels        []uint32
	retrace       sim.Cycles // fixed per-transfer latency (sync with scan-out)

	writes uint64
	reads  uint64
}

// NewFrameBuffer creates a width×height 32-bit frame buffer.
func NewFrameBuffer(name string, width, height int, retrace sim.Cycles) *FrameBuffer {
	if width <= 0 || height <= 0 {
		panic(fmt.Sprintf("device: NewFrameBuffer %dx%d", width, height))
	}
	return &FrameBuffer{
		name:    name,
		width:   width,
		height:  height,
		pixels:  make([]uint32, width*height),
		retrace: retrace,
	}
}

// Name implements Device.
func (f *FrameBuffer) Name() string { return f.name }

// Width and Height return the geometry.
func (f *FrameBuffer) Width() int  { return f.width }
func (f *FrameBuffer) Height() int { return f.height }

// Pages implements Device: enough proxy pages to cover the pixel array.
func (f *FrameBuffer) Pages() uint32 {
	bytes := len(f.pixels) * 4
	return uint32((bytes + pageSize - 1) / pageSize)
}

// PixelOff returns the device offset of pixel (x, y) for transfers.
func (f *FrameBuffer) PixelOff(x, y int) uint32 {
	return uint32(4 * (y*f.width + x))
}

// CheckTransfer implements Device: pixel (word) alignment and bounds.
func (f *FrameBuffer) CheckTransfer(da DevAddr, n int, toDevice bool) ErrBits {
	var bits ErrBits
	if da.Linear()%4 != 0 || n%4 != 0 {
		bits |= ErrAlignment
	}
	if da.Linear()+uint64(n) > uint64(len(f.pixels)*4) {
		bits |= ErrBounds
	}
	return bits
}

// TransferLatency implements Device.
func (f *FrameBuffer) TransferLatency(DevAddr, int) sim.Cycles { return f.retrace }

// Write implements Device (memory→framebuffer): blit pixels.
func (f *FrameBuffer) Write(da DevAddr, data []byte, _ sim.Cycles) error {
	off := da.Linear()
	if off%4 != 0 || off+uint64(len(data)) > uint64(len(f.pixels)*4) {
		return fmt.Errorf("device: %s blit out of bounds or misaligned", f.name)
	}
	for i := 0; i+4 <= len(data); i += 4 {
		f.pixels[off/4+uint64(i/4)] = uint32(data[i]) | uint32(data[i+1])<<8 |
			uint32(data[i+2])<<16 | uint32(data[i+3])<<24
	}
	f.writes++
	return nil
}

// Read implements Device (framebuffer→memory): read-back.
func (f *FrameBuffer) Read(da DevAddr, n int, _ sim.Cycles) ([]byte, error) {
	off := da.Linear()
	if off%4 != 0 || off+uint64(n) > uint64(len(f.pixels)*4) {
		return nil, fmt.Errorf("device: %s read-back out of bounds", f.name)
	}
	out := make([]byte, n)
	for i := 0; i+4 <= n; i += 4 {
		v := f.pixels[off/4+uint64(i/4)]
		out[i] = byte(v)
		out[i+1] = byte(v >> 8)
		out[i+2] = byte(v >> 16)
		out[i+3] = byte(v >> 24)
	}
	f.reads++
	return out, nil
}

// Pixel returns the pixel at (x, y) (test/verification hook).
func (f *FrameBuffer) Pixel(x, y int) uint32 {
	return f.pixels[y*f.width+x]
}

// Stats returns blit and read-back counts.
func (f *FrameBuffer) Stats() (writes, reads uint64) { return f.writes, f.reads }

var _ Device = (*FrameBuffer)(nil)
