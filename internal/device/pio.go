package device

// PIODevice is a device exposing a programmed-I/O register window in
// addition to (or instead of) DMA. The memory-mapped-FIFO network
// interfaces the paper compares against in Section 9 work this way:
// "the host processor communicates with the network interface by
// reading or writing special memory locations that correspond to the
// FIFOs."
//
// The kernel routes user accesses to pages inside the PIO window
// straight to the device (each costing a bus word transaction) instead
// of to the UDMA controller.
type PIODevice interface {
	Device

	// PIOWindow returns the device-relative page range decoded as PIO
	// registers, or ok=false if the window is disabled.
	PIOWindow() (first, n uint32, ok bool)

	// PIOStore handles a 32-bit store into the window.
	PIOStore(da DevAddr, v uint32)

	// PIOLoad handles a 32-bit load from the window.
	PIOLoad(da DevAddr) uint32
}
