package device

import (
	"bytes"
	"testing"

	"shrimp/internal/addr"
)

func TestDevAddrLinear(t *testing.T) {
	d := DevAddr{Page: 3, Off: 100}
	if d.Linear() != 3*4096+100 {
		t.Fatalf("Linear = %d", d.Linear())
	}
}

func TestMapAttachAndResolve(t *testing.T) {
	m := NewMap()
	d1 := NewBuffer("d1", 4, 0, 0)
	d2 := NewBuffer("d2", 2, 0, 0)
	if err := m.Attach(d1, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Attach(d2, 4); err != nil {
		t.Fatal(err)
	}

	dev, da, ok := m.Resolve(addr.DevProxy(5, 7))
	if !ok || dev != d2 || da.Page != 1 || da.Off != 7 {
		t.Fatalf("Resolve = (%v,%+v,%v)", dev, da, ok)
	}
	dev, da, ok = m.Resolve(addr.DevProxy(0, 0))
	if !ok || dev != d1 || da.Page != 0 {
		t.Fatalf("Resolve page 0 = (%v,%+v,%v)", dev, da, ok)
	}
}

func TestMapResolveMisses(t *testing.T) {
	m := NewMap()
	m.Attach(NewBuffer("d", 2, 0, 0), 10)
	if _, _, ok := m.Resolve(addr.DevProxy(9, 0)); ok {
		t.Fatal("resolved below range")
	}
	if _, _, ok := m.Resolve(addr.DevProxy(12, 0)); ok {
		t.Fatal("resolved above range")
	}
	if _, _, ok := m.Resolve(addr.PAddr(0x1000)); ok {
		t.Fatal("resolved a memory address")
	}
}

func TestMapRejectsOverlap(t *testing.T) {
	m := NewMap()
	if err := m.Attach(NewBuffer("a", 4, 0, 0), 0); err != nil {
		t.Fatal(err)
	}
	cases := []uint32{0, 3}
	for _, first := range cases {
		if err := m.Attach(NewBuffer("b", 2, 0, 0), first); err == nil {
			t.Fatalf("overlapping attach at %d succeeded", first)
		}
	}
	if err := m.Attach(NewBuffer("c", 2, 0, 0), 4); err != nil {
		t.Fatalf("adjacent attach failed: %v", err)
	}
}

func TestMapRejectsOutOfRegion(t *testing.T) {
	m := NewMap()
	if err := m.Attach(NewBuffer("big", 8, 0, 0), addr.RegionMaxPage-4); err == nil {
		t.Fatal("attach past region end succeeded")
	}
}

func TestMapPageRange(t *testing.T) {
	m := NewMap()
	d := NewBuffer("d", 3, 0, 0)
	m.Attach(d, 100)
	first, n, ok := m.PageRange(d)
	if !ok || first != 100 || n != 3 {
		t.Fatalf("PageRange = (%d,%d,%v)", first, n, ok)
	}
	if _, _, ok := m.PageRange(NewBuffer("other", 1, 0, 0)); ok {
		t.Fatal("PageRange found unattached device")
	}
	if len(m.Devices()) != 1 || m.Devices()[0] != d {
		t.Fatal("Devices() wrong")
	}
}

func TestBufferReadWrite(t *testing.T) {
	b := NewBuffer("buf", 2, 0, 0)
	data := []byte("deliberate update")
	if err := b.Write(DevAddr{Page: 1, Off: 10}, data, 0); err != nil {
		t.Fatal(err)
	}
	got, err := b.Read(DevAddr{Page: 1, Off: 10}, len(data), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("Read = %q", got)
	}
	w, r := b.Counts()
	if w != 1 || r != 1 {
		t.Fatalf("Counts = (%d,%d)", w, r)
	}
}

func TestBufferBounds(t *testing.T) {
	b := NewBuffer("buf", 1, 0, 0)
	if err := b.Write(DevAddr{Page: 0, Off: 4090}, make([]byte, 100), 0); err == nil {
		t.Fatal("out-of-bounds write succeeded")
	}
	if _, err := b.Read(DevAddr{Page: 1, Off: 0}, 1, 0); err == nil {
		t.Fatal("out-of-bounds read succeeded")
	}
}

func TestBufferCheckTransfer(t *testing.T) {
	b := NewBuffer("buf", 1, 4, 0)
	cases := []struct {
		da       DevAddr
		n        int
		wantBits ErrBits
	}{
		{DevAddr{0, 0}, 64, 0},
		{DevAddr{0, 2}, 64, ErrAlignment},
		{DevAddr{0, 0}, 63, ErrAlignment},
		{DevAddr{0, 4092}, 8, ErrBounds},
		{DevAddr{0, 4094}, 8, ErrAlignment | ErrBounds},
	}
	for _, tc := range cases {
		if got := b.CheckTransfer(tc.da, tc.n, true); got != tc.wantBits {
			t.Errorf("CheckTransfer(%+v,%d) = %#x, want %#x", tc.da, tc.n, uint32(got), uint32(tc.wantBits))
		}
	}
}

func TestBufferNoAlignmentWhenDisabled(t *testing.T) {
	b := NewBuffer("buf", 1, 0, 0)
	if got := b.CheckTransfer(DevAddr{0, 3}, 5, false); got != 0 {
		t.Fatalf("unaligned transfer rejected with %#x despite align=0", uint32(got))
	}
}

func TestBufferLatency(t *testing.T) {
	b := NewBuffer("buf", 1, 0, 99)
	if got := b.TransferLatency(DevAddr{}, 4096); got != 99 {
		t.Fatalf("TransferLatency = %d, want 99", got)
	}
}

func TestBufferDirectHooks(t *testing.T) {
	b := NewBuffer("buf", 1, 0, 0)
	b.SetBytes(100, []byte{1, 2, 3})
	if got := b.Bytes(100, 3); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("Bytes = %v", got)
	}
}

func TestBufferZeroPagesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBuffer(0 pages) did not panic")
		}
	}()
	NewBuffer("bad", 0, 0, 0)
}
