package device

import (
	"fmt"

	"shrimp/internal/sim"
)

// Disk is a block storage device driven by UDMA, one of the paper's
// example device classes ("data storage devices such as disks and tape
// drives"). Device-proxy addressing: "If the device is a disk, a
// device address might name a block" — each device-proxy page names one
// 4 KB block, and the offset selects bytes within the block.
//
// Timing: a transfer pays a seek penalty proportional to the head
// distance from the last accessed block plus a fixed rotational
// latency, then streams at the bus burst rate (the engine charges
// that part).
type Disk struct {
	name   string
	blocks [][]byte

	seekPerBlock sim.Cycles // head movement cost per block of distance
	rotational   sim.Cycles // fixed per-access latency

	head       uint32 // current head position (block index)
	reads      uint64
	writes     uint64
	seekBlocks uint64
}

// NewDisk creates a disk with the given number of 4 KB blocks.
func NewDisk(name string, blocks uint32, seekPerBlock, rotational sim.Cycles) *Disk {
	if blocks == 0 {
		panic("device: NewDisk with zero blocks")
	}
	return &Disk{
		name:         name,
		blocks:       make([][]byte, blocks),
		seekPerBlock: seekPerBlock,
		rotational:   rotational,
	}
}

// Name implements Device.
func (d *Disk) Name() string { return d.name }

// Pages implements Device: one proxy page per block.
func (d *Disk) Pages() uint32 { return uint32(len(d.blocks)) }

// CheckTransfer implements Device. A transfer must stay within one
// block (the proxy page IS the block) and be sector-aligned (512 B),
// matching real disk DMA constraints.
func (d *Disk) CheckTransfer(da DevAddr, n int, toDevice bool) ErrBits {
	var bits ErrBits
	if da.Page >= uint32(len(d.blocks)) {
		bits |= ErrBounds
	}
	if int(da.Off)+n > pageSize {
		bits |= ErrBounds
	}
	if da.Off%512 != 0 || n%512 != 0 {
		bits |= ErrAlignment
	}
	return bits
}

// TransferLatency implements Device: seek + rotational delay.
func (d *Disk) TransferLatency(da DevAddr, n int) sim.Cycles {
	dist := int64(da.Page) - int64(d.head)
	if dist < 0 {
		dist = -dist
	}
	return d.rotational + sim.Cycles(dist)*d.seekPerBlock
}

// Write implements Device (memory→disk).
func (d *Disk) Write(da DevAddr, data []byte, _ sim.Cycles) error {
	if err := d.bounds(da, len(data)); err != nil {
		return err
	}
	d.moveHead(da.Page)
	blk := d.block(da.Page)
	copy(blk[da.Off:], data)
	d.writes++
	return nil
}

// Read implements Device (disk→memory).
func (d *Disk) Read(da DevAddr, n int, _ sim.Cycles) ([]byte, error) {
	if err := d.bounds(da, n); err != nil {
		return nil, err
	}
	d.moveHead(da.Page)
	blk := d.block(da.Page)
	out := make([]byte, n)
	copy(out, blk[da.Off:])
	d.reads++
	return out, nil
}

// Preload fills a block directly (test/setup hook, no timing).
func (d *Disk) Preload(block uint32, data []byte) error {
	if err := d.bounds(DevAddr{Page: block}, len(data)); err != nil {
		return err
	}
	copy(d.block(block), data)
	return nil
}

// Peek reads a block directly (test hook).
func (d *Disk) Peek(block uint32, n int) ([]byte, error) {
	if err := d.bounds(DevAddr{Page: block}, n); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, d.block(block))
	return out, nil
}

// Stats returns read/write/seek counters.
func (d *Disk) Stats() (reads, writes, seekBlocks uint64) {
	return d.reads, d.writes, d.seekBlocks
}

// Head returns the current head position.
func (d *Disk) Head() uint32 { return d.head }

func (d *Disk) bounds(da DevAddr, n int) error {
	if da.Page >= uint32(len(d.blocks)) || int(da.Off)+n > pageSize {
		return fmt.Errorf("device: %s access block %d off %d len %d out of bounds",
			d.name, da.Page, da.Off, n)
	}
	return nil
}

func (d *Disk) block(i uint32) []byte {
	if d.blocks[i] == nil {
		d.blocks[i] = make([]byte, pageSize)
	}
	return d.blocks[i]
}

func (d *Disk) moveHead(to uint32) {
	dist := int64(to) - int64(d.head)
	if dist < 0 {
		dist = -dist
	}
	d.seekBlocks += uint64(dist)
	d.head = to
}

var _ Device = (*Disk)(nil)
