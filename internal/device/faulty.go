package device

import (
	"errors"

	"shrimp/internal/sim"
)

// ErrInjected is the error a Faulty device returns when a scheduled
// fault fires.
var ErrInjected = errors.New("device: injected fault")

// Faulty wraps another device and injects failures for testing the
// error paths: validation rejections (CheckTransfer bits) and
// completion-time failures (Write/Read errors, which surface as a
// failed transfer on the engine's completion interrupt — the "memory
// system errors" the paper's termination discussion worries about).
type Faulty struct {
	Inner Device

	// RejectNext makes the next n CheckTransfer calls report RejectBits.
	RejectNext int
	// RejectBits is the validation failure to report (default
	// ErrBounds if zero while RejectNext > 0).
	RejectBits ErrBits
	// FailNext makes the next n Write/Read calls fail at completion.
	FailNext int

	rejected uint64
	failed   uint64
}

// NewFaulty wraps a device.
func NewFaulty(inner Device) *Faulty { return &Faulty{Inner: inner} }

// Name implements Device.
func (f *Faulty) Name() string { return f.Inner.Name() + "+faulty" }

// Pages implements Device.
func (f *Faulty) Pages() uint32 { return f.Inner.Pages() }

// CheckTransfer implements Device.
func (f *Faulty) CheckTransfer(da DevAddr, n int, toDevice bool) ErrBits {
	if f.RejectNext > 0 {
		f.RejectNext--
		f.rejected++
		bits := f.RejectBits
		if bits == 0 {
			bits = ErrBounds
		}
		return bits
	}
	return f.Inner.CheckTransfer(da, n, toDevice)
}

// TransferLatency implements Device.
func (f *Faulty) TransferLatency(da DevAddr, n int) sim.Cycles {
	return f.Inner.TransferLatency(da, n)
}

// Write implements Device.
func (f *Faulty) Write(da DevAddr, data []byte, now sim.Cycles) error {
	if f.FailNext > 0 {
		f.FailNext--
		f.failed++
		return ErrInjected
	}
	return f.Inner.Write(da, data, now)
}

// Read implements Device.
func (f *Faulty) Read(da DevAddr, n int, now sim.Cycles) ([]byte, error) {
	if f.FailNext > 0 {
		f.FailNext--
		f.failed++
		return nil, ErrInjected
	}
	return f.Inner.Read(da, n, now)
}

// Injected returns how many rejections and completion failures fired.
func (f *Faulty) Injected() (rejected, failed uint64) { return f.rejected, f.failed }

var _ Device = (*Faulty)(nil)
