package device

import (
	"errors"

	"shrimp/internal/sim"
)

// ErrInjected is the error a Faulty device returns when a scheduled
// fault fires.
var ErrInjected = errors.New("device: injected fault")

// Faulty wraps another device and injects failures for testing the
// error paths: validation rejections (CheckTransfer bits) and
// completion-time failures (Write/Read errors, which surface as a
// failed transfer on the engine's completion interrupt — the "memory
// system errors" the paper's termination discussion worries about).
type Faulty struct {
	Inner Device

	// RejectNext makes the next n CheckTransfer calls report RejectBits.
	RejectNext int
	// RejectBits is the validation failure to report (default
	// ErrBounds if zero while RejectNext > 0).
	RejectBits ErrBits
	// FailNext makes the next n Write/Read calls fail at completion.
	FailNext int

	// Rate-based injection (see InjectRates). Counter-based injection
	// above takes precedence when armed.
	rng     *sim.RNG
	rejectP float64
	failP   float64

	// Periodic injection (see InjectEveryNth).
	rejectN, failN         int
	rejectPhase, failPhase uint64
	checkOps, dataOps      uint64

	rejected uint64
	failed   uint64
}

// NewFaulty wraps a device.
func NewFaulty(inner Device) *Faulty { return &Faulty{Inner: inner} }

// InjectRates arms probabilistic fault injection driven by a seeded
// deterministic RNG: each CheckTransfer is rejected with probability
// rejectP and each completion-time Write/Read fails with probability
// failP. A nil rng disarms rate-based injection. The one-shot counters
// (RejectNext/FailNext) still take precedence when set, so tests can
// pin a specific fault on top of a background rate.
func (f *Faulty) InjectRates(rng *sim.RNG, rejectP, failP float64) {
	f.rng, f.rejectP, f.failP = rng, rejectP, failP
}

// InjectEveryNth arms fully deterministic periodic injection: every
// rejectN-th CheckTransfer is rejected and every failN-th Write/Read
// fails at completion, with the phase of each period derived from seed
// (so different seeds fault different ops without any hand-placed
// schedule — exactly what simcheck's randomized scenarios need). Zero
// disables a channel. One-shot counters still take precedence; periodic
// injection takes precedence over rate-based.
func (f *Faulty) InjectEveryNth(seed uint64, rejectN, failN int) {
	f.rejectN, f.failN = rejectN, failN
	if rejectN > 0 {
		f.rejectPhase = seed % uint64(rejectN)
	}
	if failN > 0 {
		f.failPhase = (seed >> 17) % uint64(failN)
	}
	f.checkOps, f.dataOps = 0, 0
}

// Name implements Device.
func (f *Faulty) Name() string { return f.Inner.Name() + "+faulty" }

// Pages implements Device.
func (f *Faulty) Pages() uint32 { return f.Inner.Pages() }

// CheckTransfer implements Device.
func (f *Faulty) CheckTransfer(da DevAddr, n int, toDevice bool) ErrBits {
	if f.RejectNext > 0 {
		f.RejectNext--
		f.rejected++
		bits := f.RejectBits
		if bits == 0 {
			bits = ErrBounds
		}
		return bits
	}
	if f.rejectN > 0 {
		op := f.checkOps
		f.checkOps++
		if op%uint64(f.rejectN) == f.rejectPhase {
			f.rejected++
			bits := f.RejectBits
			if bits == 0 {
				bits = ErrBounds
			}
			return bits
		}
	}
	if f.rng != nil && f.rejectP > 0 && f.rng.Float64() < f.rejectP {
		f.rejected++
		bits := f.RejectBits
		if bits == 0 {
			bits = ErrBounds
		}
		return bits
	}
	return f.Inner.CheckTransfer(da, n, toDevice)
}

// TransferLatency implements Device.
func (f *Faulty) TransferLatency(da DevAddr, n int) sim.Cycles {
	return f.Inner.TransferLatency(da, n)
}

// Write implements Device.
func (f *Faulty) Write(da DevAddr, data []byte, now sim.Cycles) error {
	if f.injectFail() {
		return ErrInjected
	}
	return f.Inner.Write(da, data, now)
}

// Read implements Device.
func (f *Faulty) Read(da DevAddr, n int, now sim.Cycles) ([]byte, error) {
	if f.injectFail() {
		return nil, ErrInjected
	}
	return f.Inner.Read(da, n, now)
}

func (f *Faulty) injectFail() bool {
	if f.FailNext > 0 {
		f.FailNext--
		f.failed++
		return true
	}
	if f.failN > 0 {
		op := f.dataOps
		f.dataOps++
		if op%uint64(f.failN) == f.failPhase {
			f.failed++
			return true
		}
	}
	if f.rng != nil && f.failP > 0 && f.rng.Float64() < f.failP {
		f.failed++
		return true
	}
	return false
}

// Injected returns how many rejections and completion failures fired.
func (f *Faulty) Injected() (rejected, failed uint64) { return f.rejected, f.failed }

// PIOWindow implements device.PIODevice by pass-through, so wrapping a
// device that also exposes a programmed-I/O window (the NIC's FIFO
// baseline) stays transparent. Fault injection targets DMA transfers
// only; PIO words are CPU stores and do not cross the DMA error paths.
func (f *Faulty) PIOWindow() (first, count uint32, ok bool) {
	if p, isPIO := f.Inner.(PIODevice); isPIO {
		return p.PIOWindow()
	}
	return 0, 0, false
}

// PIOStore implements device.PIODevice. Only reachable when PIOWindow
// reported a window, which implies Inner is a PIODevice.
func (f *Faulty) PIOStore(da DevAddr, v uint32) {
	f.Inner.(PIODevice).PIOStore(da, v)
}

// PIOLoad implements device.PIODevice.
func (f *Faulty) PIOLoad(da DevAddr) uint32 {
	return f.Inner.(PIODevice).PIOLoad(da)
}

var (
	_ Device    = (*Faulty)(nil)
	_ PIODevice = (*Faulty)(nil)
)
