package device

import (
	"fmt"

	"shrimp/internal/sim"
)

// Buffer is the simplest possible UDMA device: a flat byte store whose
// device-proxy pages tile its contents linearly. It serves as the
// reference device in tests and the quickstart example, and stands in
// for "memory-mapped devices such as graphics frame-buffers" in the
// paper's generality claim when no timing model is needed.
type Buffer struct {
	name    string
	data    []byte
	align   int        // required transfer alignment in bytes (0 = none)
	latency sim.Cycles // fixed per-transfer device latency

	writes, reads uint64
}

// NewBuffer returns an n-page buffer device. align is the required
// alignment of transfer addresses and lengths (0 or 1 disables the
// check); latency is charged per transfer.
func NewBuffer(name string, pages uint32, align int, latency sim.Cycles) *Buffer {
	if pages == 0 {
		panic("device: NewBuffer with zero pages")
	}
	return &Buffer{
		name:    name,
		data:    make([]byte, int(pages)*pageSize),
		align:   align,
		latency: latency,
	}
}

const pageSize = 4096

// Name implements Device.
func (b *Buffer) Name() string { return b.name }

// Pages implements Device.
func (b *Buffer) Pages() uint32 { return uint32(len(b.data) / pageSize) }

// CheckTransfer implements Device.
func (b *Buffer) CheckTransfer(da DevAddr, n int, toDevice bool) ErrBits {
	var bits ErrBits
	if b.align > 1 {
		if da.Linear()%uint64(b.align) != 0 || n%b.align != 0 {
			bits |= ErrAlignment
		}
	}
	if da.Linear()+uint64(n) > uint64(len(b.data)) {
		bits |= ErrBounds
	}
	return bits
}

// TransferLatency implements Device.
func (b *Buffer) TransferLatency(DevAddr, int) sim.Cycles { return b.latency }

// Write implements Device.
func (b *Buffer) Write(da DevAddr, data []byte, _ sim.Cycles) error {
	off := da.Linear()
	if off+uint64(len(data)) > uint64(len(b.data)) {
		return fmt.Errorf("device: %s write [%d,+%d) out of bounds", b.name, off, len(data))
	}
	copy(b.data[off:], data)
	b.writes++
	return nil
}

// Read implements Device.
func (b *Buffer) Read(da DevAddr, n int, _ sim.Cycles) ([]byte, error) {
	off := da.Linear()
	if off+uint64(n) > uint64(len(b.data)) {
		return nil, fmt.Errorf("device: %s read [%d,+%d) out of bounds", b.name, off, n)
	}
	out := make([]byte, n)
	copy(out, b.data[off:])
	b.reads++
	return out, nil
}

// Bytes returns the device contents at flat offset off (testing hook).
func (b *Buffer) Bytes(off, n int) []byte {
	out := make([]byte, n)
	copy(out, b.data[off:off+n])
	return out
}

// SetBytes stores directly into the device (testing hook / preload).
func (b *Buffer) SetBytes(off int, data []byte) {
	copy(b.data[off:], data)
}

// Counts returns how many DMA writes and reads completed against the
// device.
func (b *Buffer) Counts() (writes, reads uint64) { return b.writes, b.reads }

var _ Device = (*Buffer)(nil)
