package device

import (
	"testing"

	"shrimp/internal/sim"
)

// pioStub is a minimal PIODevice: one DMA-capable page followed by one
// register page that records the PIO traffic it sees.
type pioStub struct {
	stores []uint32
	loads  int
}

func (s *pioStub) Name() string  { return "pio-stub" }
func (s *pioStub) Pages() uint32 { return 2 }
func (s *pioStub) CheckTransfer(da DevAddr, n int, toDevice bool) ErrBits {
	if da.Page >= 1 { // the register page is not a DMA target
		return ErrBounds
	}
	return 0
}
func (s *pioStub) TransferLatency(DevAddr, int) sim.Cycles { return 0 }
func (s *pioStub) Write(DevAddr, []byte, sim.Cycles) error { return nil }
func (s *pioStub) Read(DevAddr, int, sim.Cycles) ([]byte, error) {
	return nil, nil
}
func (s *pioStub) PIOWindow() (first, n uint32, ok bool) { return 1, 1, true }
func (s *pioStub) PIOStore(da DevAddr, v uint32)         { s.stores = append(s.stores, v) }
func (s *pioStub) PIOLoad(da DevAddr) uint32 {
	s.loads++
	return 0x5A5A
}

func TestPIOWindowContract(t *testing.T) {
	var dev PIODevice = &pioStub{}
	first, n, ok := dev.PIOWindow()
	if !ok || first != 1 || n != 1 {
		t.Fatalf("window (%d,%d,%v)", first, n, ok)
	}
	// The register page refuses DMA: the kernel's router is what sends
	// accesses there down the PIO path instead.
	if bits := dev.CheckTransfer(DevAddr{Page: first}, 4, true); bits&ErrBounds == 0 {
		t.Fatal("register page accepted a DMA transfer")
	}
	dev.PIOStore(DevAddr{Page: first, Off: 0}, 42)
	if got := dev.PIOLoad(DevAddr{Page: first, Off: 4}); got != 0x5A5A {
		t.Fatalf("PIOLoad = %#x", got)
	}
}

// TestFaultyPIOPassThrough pins the documented property that the fault
// wrapper injects on the DMA path only: PIO words pass through
// untouched even while DMA rejection is forced.
func TestFaultyPIOPassThrough(t *testing.T) {
	inner := &pioStub{}
	f := NewFaulty(inner)
	f.RejectNext = 1000

	first, n, ok := f.PIOWindow()
	if !ok || first != 1 || n != 1 {
		t.Fatalf("wrapped window (%d,%d,%v)", first, n, ok)
	}
	f.PIOStore(DevAddr{Page: 1, Off: 0}, 7)
	f.PIOStore(DevAddr{Page: 1, Off: 0}, 8)
	if got := f.PIOLoad(DevAddr{Page: 1, Off: 4}); got != 0x5A5A {
		t.Fatalf("wrapped PIOLoad = %#x", got)
	}
	if len(inner.stores) != 2 || inner.stores[0] != 7 || inner.stores[1] != 8 {
		t.Fatalf("inner saw stores %v", inner.stores)
	}
	if inner.loads != 1 {
		t.Fatalf("inner saw %d loads", inner.loads)
	}
	// The same wrapper still rejects on the DMA path.
	if bits := f.CheckTransfer(DevAddr{Page: 0}, 4, true); bits == 0 {
		t.Fatal("RejectNext did not affect the DMA path")
	}
}

// TestFaultyNonPIOInner pins the wrapper's behavior around inner
// devices without a PIO window: it must report no window rather than
// panic on the type assertion.
func TestFaultyNonPIOInner(t *testing.T) {
	f := NewFaulty(NewBuffer("plain", 1, 1, 0))
	if _, _, ok := f.PIOWindow(); ok {
		t.Fatal("wrapper invented a PIO window for a non-PIO device")
	}
}
