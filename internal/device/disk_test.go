package device

import (
	"bytes"
	"testing"
)

func TestDiskReadWrite(t *testing.T) {
	d := NewDisk("sd0", 64, 10, 100)
	data := make([]byte, 512)
	for i := range data {
		data[i] = byte(i)
	}
	if err := d.Write(DevAddr{Page: 5, Off: 512}, data, 0); err != nil {
		t.Fatal(err)
	}
	got, err := d.Read(DevAddr{Page: 5, Off: 512}, 512, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("disk round trip failed")
	}
	r, w, _ := d.Stats()
	if r != 1 || w != 1 {
		t.Fatalf("stats = %d,%d", r, w)
	}
}

func TestDiskCheckTransfer(t *testing.T) {
	d := NewDisk("sd0", 8, 1, 1)
	cases := []struct {
		da   DevAddr
		n    int
		want ErrBits
	}{
		{DevAddr{0, 0}, 512, 0},
		{DevAddr{0, 512}, 1024, 0},
		{DevAddr{0, 100}, 512, ErrAlignment},
		{DevAddr{0, 0}, 500, ErrAlignment},
		{DevAddr{0, 3584}, 1024, ErrBounds},
		{DevAddr{9, 0}, 512, ErrBounds},
	}
	for _, tc := range cases {
		if got := d.CheckTransfer(tc.da, tc.n, true); got != tc.want {
			t.Errorf("CheckTransfer(%+v,%d) = %#x, want %#x", tc.da, tc.n, uint32(got), uint32(tc.want))
		}
	}
}

func TestDiskSeekModel(t *testing.T) {
	d := NewDisk("sd0", 100, 10, 50)
	// Head at 0: access block 20 → 50 + 20*10.
	if got := d.TransferLatency(DevAddr{Page: 20}, 512); got != 250 {
		t.Fatalf("latency = %d, want 250", got)
	}
	d.Write(DevAddr{Page: 20}, make([]byte, 512), 0)
	if d.Head() != 20 {
		t.Fatalf("head = %d, want 20", d.Head())
	}
	// Sequential access is now cheap.
	if got := d.TransferLatency(DevAddr{Page: 20}, 512); got != 50 {
		t.Fatalf("same-block latency = %d, want 50", got)
	}
	// Backward seek costs the same as forward.
	if got := d.TransferLatency(DevAddr{Page: 10}, 512); got != 150 {
		t.Fatalf("backward latency = %d, want 150", got)
	}
	_, _, seeks := d.Stats()
	if seeks != 20 {
		t.Fatalf("seekBlocks = %d, want 20", seeks)
	}
}

func TestDiskPreloadPeek(t *testing.T) {
	d := NewDisk("sd0", 4, 1, 1)
	if err := d.Preload(2, []byte("boot sector")); err != nil {
		t.Fatal(err)
	}
	got, err := d.Peek(2, 11)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "boot sector" {
		t.Fatalf("Peek = %q", got)
	}
	if err := d.Preload(9, nil); err == nil {
		t.Fatal("out-of-range preload succeeded")
	}
}

func TestDiskBoundsErrors(t *testing.T) {
	d := NewDisk("sd0", 2, 1, 1)
	if err := d.Write(DevAddr{Page: 2}, make([]byte, 512), 0); err == nil {
		t.Fatal("write past last block succeeded")
	}
	if _, err := d.Read(DevAddr{Page: 0, Off: 4000}, 512, 0); err == nil {
		t.Fatal("read across block end succeeded")
	}
}

func TestDiskZeroBlocksPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDisk(0) did not panic")
		}
	}()
	NewDisk("bad", 0, 1, 1)
}

func TestFrameBufferBlit(t *testing.T) {
	f := NewFrameBuffer("fb0", 64, 32, 7)
	// Blit two pixels at (3, 2).
	data := []byte{0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88}
	if err := f.Write(DevAddr{Page: 0, Off: f.PixelOff(3, 2)}, data, 0); err != nil {
		t.Fatal(err)
	}
	if got := f.Pixel(3, 2); got != 0x44332211 {
		t.Fatalf("pixel(3,2) = %#x", got)
	}
	if got := f.Pixel(4, 2); got != 0x88776655 {
		t.Fatalf("pixel(4,2) = %#x", got)
	}
	got, err := f.Read(DevAddr{Page: 0, Off: f.PixelOff(3, 2)}, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read-back mismatch")
	}
}

func TestFrameBufferGeometry(t *testing.T) {
	f := NewFrameBuffer("fb0", 640, 480, 0)
	wantPages := uint32((640*480*4 + pageSize - 1) / pageSize)
	if f.Pages() != wantPages {
		t.Fatalf("Pages = %d, want %d", f.Pages(), wantPages)
	}
	if f.Width() != 640 || f.Height() != 480 {
		t.Fatal("geometry accessors wrong")
	}
	if f.PixelOff(1, 1) != 4*(640+1) {
		t.Fatalf("PixelOff = %d", f.PixelOff(1, 1))
	}
}

func TestFrameBufferCheckTransfer(t *testing.T) {
	f := NewFrameBuffer("fb0", 16, 16, 0) // 1024 bytes of pixels
	if bits := f.CheckTransfer(DevAddr{0, 0}, 1024, true); bits != 0 {
		t.Fatalf("full blit rejected: %#x", uint32(bits))
	}
	if bits := f.CheckTransfer(DevAddr{0, 2}, 8, true); bits&ErrAlignment == 0 {
		t.Fatal("misaligned blit accepted")
	}
	if bits := f.CheckTransfer(DevAddr{0, 1020}, 8, true); bits&ErrBounds == 0 {
		t.Fatal("out-of-bounds blit accepted")
	}
	if f.TransferLatency(DevAddr{}, 4) != 0 {
		t.Fatal("latency should be 0 when retrace is 0")
	}
}

func TestFrameBufferBoundsErrors(t *testing.T) {
	f := NewFrameBuffer("fb0", 4, 4, 0)
	if err := f.Write(DevAddr{0, 60}, make([]byte, 8), 0); err == nil {
		t.Fatal("blit past end succeeded")
	}
	if _, err := f.Read(DevAddr{0, 62}, 4, 0); err == nil {
		t.Fatal("misaligned read-back succeeded")
	}
}

func TestFrameBufferBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewFrameBuffer(0,0) did not panic")
		}
	}()
	NewFrameBuffer("bad", 0, 10, 0)
}
