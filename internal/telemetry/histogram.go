package telemetry

import (
	"math"
	"math/bits"
)

// Histogram accumulates non-negative integer samples (cycles, bytes)
// into logarithmic power-of-two buckets: bucket i holds samples whose
// bit length is i, i.e. values in [2^(i-1), 2^i). 65 buckets cover the
// full uint64 range, so observation is O(1) with no allocation and no
// configuration — the property that lets it sit on the controller fast
// path. Quantiles are read back by walking the buckets and
// interpolating linearly within the winning bucket; exact min and max
// are tracked alongside so the tails are never extrapolated past
// observed reality.
//
// The nil Histogram is a valid "metrics off" value: Observe on nil is
// a no-op, readouts return zero.
type Histogram struct {
	buckets [65]uint64
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.buckets[bits.Len64(v)]++
	h.count++
	h.sum += v
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of all samples.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Min returns the smallest observed sample (0 when empty).
func (h *Histogram) Min() uint64 {
	if h == nil {
		return 0
	}
	return h.min
}

// Max returns the largest observed sample (0 when empty).
func (h *Histogram) Max() uint64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns an estimate of the q-th quantile (q in [0,1]):
// the bucket containing the rank is located, then the value is
// interpolated linearly across the bucket's range, clamped to the
// observed min/max so p0 and p100 are exact.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	if q <= 0 {
		return float64(h.min)
	}
	if q >= 1 {
		return float64(h.max)
	}
	rank := q * float64(h.count)
	var cum float64
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if rank <= next {
			lo, hi := bucketBounds(i)
			frac := (rank - cum) / float64(n)
			v := lo + frac*(hi-lo)
			return math.Max(float64(h.min), math.Min(float64(h.max), v))
		}
		cum = next
	}
	return float64(h.max)
}

// bucketBounds returns the value range [lo, hi] covered by bucket i.
func bucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		return 0, 0
	}
	if i == 1 {
		return 1, 1
	}
	lo = math.Ldexp(1, i-1)   // 2^(i-1)
	hi = math.Ldexp(1, i) - 1 // 2^i - 1
	return lo, hi
}
