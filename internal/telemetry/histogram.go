package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Histogram accumulates non-negative integer samples (cycles, bytes)
// into logarithmic power-of-two buckets: bucket i holds samples whose
// bit length is i, i.e. values in [2^(i-1), 2^i). 65 buckets cover the
// full uint64 range, so observation is O(1) with no allocation and no
// configuration — the property that lets it sit on the controller fast
// path. Quantiles are read back by walking the buckets and
// interpolating linearly within the winning bucket; exact min and max
// are tracked alongside so the tails are never extrapolated past
// observed reality.
//
// All fields update atomically so per-node scopes on parallel cluster
// workers may share one histogram; readouts taken at a barrier (when no
// worker is recording) are exact. Min is stored encoded as value+1 so
// that 0 can mean "no samples yet" without a separate flag.
//
// The nil Histogram is a valid "metrics off" value: Observe on nil is
// a no-op, readouts return zero.
type Histogram struct {
	buckets [65]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
	minEnc  atomic.Uint64 // observed min + 1; 0 = empty
	max     atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	enc := v + 1
	if v == math.MaxUint64 {
		enc = v // saturate rather than wrap to "empty"
	}
	for {
		cur := h.minEnc.Load()
		if cur != 0 && cur <= enc {
			break
		}
		if h.minEnc.CompareAndSwap(cur, enc) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bits.Len64(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all samples.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Min returns the smallest observed sample (0 when empty).
func (h *Histogram) Min() uint64 {
	if h == nil {
		return 0
	}
	enc := h.minEnc.Load()
	if enc == 0 {
		return 0
	}
	return enc - 1
}

// Max returns the largest observed sample (0 when empty).
func (h *Histogram) Max() uint64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(h.count.Load())
}

// Quantile returns an estimate of the q-th quantile (q in [0,1]):
// the bucket containing the rank is located, then the value is
// interpolated linearly across the bucket's range, clamped to the
// observed min/max so p0 and p100 are exact.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	count := h.count.Load()
	if count == 0 {
		return 0
	}
	min, max := float64(h.Min()), float64(h.max.Load())
	if q <= 0 {
		return min
	}
	if q >= 1 {
		return max
	}
	rank := q * float64(count)
	var cum float64
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if rank <= next {
			lo, hi := bucketBounds(i)
			frac := (rank - cum) / float64(n)
			v := lo + frac*(hi-lo)
			return math.Max(min, math.Min(max, v))
		}
		cum = next
	}
	return max
}

// bucketBounds returns the value range [lo, hi] covered by bucket i.
func bucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		return 0, 0
	}
	if i == 1 {
		return 1, 1
	}
	lo = math.Ldexp(1, i-1)   // 2^(i-1)
	hi = math.Ldexp(1, i) - 1 // 2^i - 1
	return lo, hi
}
