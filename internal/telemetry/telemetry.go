// Package telemetry is the simulator's observability layer: a metrics
// registry of counters, gauges and log-bucketed latency histograms,
// plus span-style timers, all keyed by name and small label sets.
//
// Three properties are load-bearing and guarded by tests:
//
//   - Pure observer. Recording reads the simulated clock but never
//     advances it, schedules no events, and consumes no randomness, so
//     a run with telemetry enabled is byte-identical to the same run
//     with it disabled (see internal/cluster's determinism-under-
//     observation test). A metric that perturbed timing would invalidate
//     every number it reported.
//
//   - Free when disabled. Like trace.Tracer, every instrument is
//     nil-safe: components hold possibly-nil *Counter/*Gauge/*Histogram
//     pointers resolved once at attach time, and a nil receiver is a
//     no-op. The hot paths pay one nil check per record point.
//
//   - Safe under concurrent scopes. When internal/cluster runs nodes on
//     parallel workers, each node records through its own per-node
//     scope into the shared registry. Counters, gauges and histograms
//     use atomics; spans shard by process (node) with a per-shard lock
//     and merge deterministically at read time (sorted process order,
//     then stable by start cycle) — so a snapshot taken after a barrier
//     is byte-identical regardless of worker count or goroutine
//     scheduling.
//
// Instruments are identified by a name plus an ordered label set
// ("udma_xfer_latency_cycles{node=0}"). Cycle-valued histograms use the
// _cycles suffix by convention; exporters convert to microseconds with
// the machine's cost model.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"shrimp/internal/sim"
)

// Label is one key=value dimension of an instrument.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing count. The nil Counter is a
// valid "metrics off" value: Add and Inc on nil are no-ops. Updates are
// atomic, so scopes on different workers may share one counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time level (queue depth, bytes outstanding) that
// also tracks its high-water mark. Nil-safe like Counter. Add is an
// atomic read-modify-write so concurrent deltas never lose updates; Set
// is a plain store and should only race with itself when callers accept
// last-writer-wins semantics (per-node gauges never share writers).
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// updateMax raises the high-water mark to at least v.
func (g *Gauge) updateMax(v int64) {
	for {
		cur := g.max.Load()
		if v <= cur || g.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Set replaces the level.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	g.updateMax(v)
}

// Add moves the level by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.updateMax(g.v.Add(delta))
}

// Value returns the current level (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max returns the high-water mark (0 on nil).
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}

// Registry holds every instrument and the per-process span shards. The
// zero value is unusable; call New. A nil *Registry is a valid "metrics
// off" value: every method on nil returns nil instruments or empty
// results. The mutex guards only the instrument maps and shard
// directory — instrument updates themselves are lock-free.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	shards   map[string]*spanShard
}

// DefaultSpanCapacity bounds each process's span ring: newest spans are
// kept, SpansTotal keeps the lifetime count (same windowed-vs-lifetime
// contract as trace.Tracer).
const DefaultSpanCapacity = 32768

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		shards:   make(map[string]*spanShard),
	}
}

// key renders the canonical instrument identity: name{k=v,k=v} with
// labels in the order given (scopes sort once at construction).
func key(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteByte('=')
		sb.WriteString(l.Value)
	}
	sb.WriteByte('}')
	return sb.String()
}

// Counter returns (creating if needed) the counter with the given name
// and labels. Nil registry returns nil — a valid no-op instrument.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	k := key(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns (creating if needed) the gauge with the given identity.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	k := key(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns (creating if needed) the histogram with the given
// identity.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	k := key(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[k]
	if !ok {
		h = &Histogram{}
		r.hists[k] = h
	}
	return h
}

// Span is one timed interval on a named track, exported to Perfetto as
// a complete ("X") event. Proc groups tracks into processes (one per
// node); Value/Detail carry span-specific payload (byte counts, error
// text).
type Span struct {
	Proc   string // process grouping, e.g. "node0" ("" = simulator)
	Track  string // thread-like track within the process, e.g. "udma"
	Name   string // event name, e.g. "xfer"
	Start  sim.Cycles
	End    sim.Cycles
	Value  uint64
	Detail string
}

// spanShard is one process's span ring. All spans for a given Proc land
// in the same shard; under parallel cluster execution each node is one
// process, so a shard has exactly one writer per window and the lock is
// uncontended. Ring storage grows on demand up to DefaultSpanCapacity,
// then wraps (oldest spans overwritten, total keeps counting).
type spanShard struct {
	mu    sync.Mutex
	spans []Span
	next  int
	full  bool
	total uint64
}

func (sh *spanShard) record(s Span) {
	sh.mu.Lock()
	sh.total++
	if !sh.full && len(sh.spans) < DefaultSpanCapacity {
		sh.spans = append(sh.spans, s)
	} else {
		sh.spans[sh.next] = s
		sh.next++
		if sh.next == len(sh.spans) {
			sh.next = 0
		}
		sh.full = true
	}
	sh.mu.Unlock()
}

// ordered returns the shard's buffered spans, oldest first.
func (sh *spanShard) ordered() []Span {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if !sh.full {
		return append([]Span(nil), sh.spans...)
	}
	out := make([]Span, 0, len(sh.spans))
	out = append(out, sh.spans[sh.next:]...)
	out = append(out, sh.spans[:sh.next]...)
	return out
}

// shard returns (creating if needed) the span shard for a process.
func (r *Registry) shard(proc string) *spanShard {
	r.mu.Lock()
	defer r.mu.Unlock()
	sh, ok := r.shards[proc]
	if !ok {
		sh = &spanShard{}
		r.shards[proc] = sh
	}
	return sh
}

// RecordSpan appends a span to its process's ring. Nil-safe.
func (r *Registry) RecordSpan(s Span) {
	if r == nil {
		return
	}
	r.shard(s.Proc).record(s)
}

// Spans returns the buffered spans merged across processes: shards are
// visited in sorted process order and the concatenation is stably
// sorted by start cycle, so the result is a deterministic function of
// what each process recorded — independent of which worker recorded
// first in wall-clock time. (SpansTotal counts every span ever
// recorded; this is the windowed view.)
func (r *Registry) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	procs := make([]string, 0, len(r.shards))
	for p := range r.shards {
		procs = append(procs, p)
	}
	shards := make([]*spanShard, 0, len(procs))
	sort.Strings(procs)
	for _, p := range procs {
		shards = append(shards, r.shards[p])
	}
	r.mu.Unlock()

	var out []Span
	for _, sh := range shards {
		out = append(out, sh.ordered()...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// SpansTotal returns how many spans were recorded, including ones the
// rings have overwritten.
func (r *Registry) SpansTotal() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var total uint64
	for _, sh := range r.shards {
		sh.mu.Lock()
		total += sh.total
		sh.mu.Unlock()
	}
	return total
}

// Scope is a registry handle with a pre-bound label set (typically
// node=N). Components resolve their instruments once through a scope at
// attach time; a nil *Scope resolves every instrument to nil, so the
// same code path is free when metrics are off.
type Scope struct {
	reg    *Registry
	labels []Label
	proc   string
	shard  *spanShard
}

// Scope binds labels (sorted by key for a canonical identity). The
// node label, when present, also names the Perfetto process for spans
// recorded through this scope. Nil registry returns nil.
func (r *Registry) Scope(labels ...Label) *Scope {
	if r == nil {
		return nil
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	proc := ""
	for _, l := range ls {
		if l.Key == "node" {
			proc = "node" + l.Value
		}
	}
	return &Scope{reg: r, labels: ls, proc: proc, shard: r.shard(proc)}
}

// Registry returns the underlying registry (nil for a nil scope).
func (s *Scope) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// Counter resolves a counter under the scope's labels.
func (s *Scope) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	return s.reg.Counter(name, s.labels...)
}

// Gauge resolves a gauge under the scope's labels.
func (s *Scope) Gauge(name string) *Gauge {
	if s == nil {
		return nil
	}
	return s.reg.Gauge(name, s.labels...)
}

// Histogram resolves a histogram under the scope's labels.
func (s *Scope) Histogram(name string) *Histogram {
	if s == nil {
		return nil
	}
	return s.reg.Histogram(name, s.labels...)
}

// Span records a timed interval on the given track, grouped under the
// scope's node process. Nil-safe. The shard was resolved at scope
// construction, so the hot path takes only the shard's own lock.
func (s *Scope) Span(track, name string, start, end sim.Cycles, value uint64, detail string) {
	if s == nil {
		return
	}
	s.shard.record(Span{
		Proc: s.proc, Track: track, Name: name,
		Start: start, End: end, Value: value, Detail: detail,
	})
}

// String renders a scope for diagnostics.
func (s *Scope) String() string {
	if s == nil {
		return "scope(off)"
	}
	return fmt.Sprintf("scope(%s)", key("", s.labels))
}
