// Package telemetry is the simulator's observability layer: a metrics
// registry of counters, gauges and log-bucketed latency histograms,
// plus span-style timers, all keyed by name and small label sets.
//
// Two properties are load-bearing and guarded by tests:
//
//   - Pure observer. Recording reads the simulated clock but never
//     advances it, schedules no events, and consumes no randomness, so
//     a run with telemetry enabled is byte-identical to the same run
//     with it disabled (see internal/cluster's determinism-under-
//     observation test). A metric that perturbed timing would invalidate
//     every number it reported.
//
//   - Free when disabled. Like trace.Tracer, every instrument is
//     nil-safe: components hold possibly-nil *Counter/*Gauge/*Histogram
//     pointers resolved once at attach time, and a nil receiver is a
//     no-op. The hot paths pay one nil check per record point.
//
// Instruments are identified by a name plus an ordered label set
// ("udma_xfer_latency_cycles{node=0}"). Cycle-valued histograms use the
// _cycles suffix by convention; exporters convert to microseconds with
// the machine's cost model.
package telemetry

import (
	"fmt"
	"sort"
	"strings"

	"shrimp/internal/sim"
)

// Label is one key=value dimension of an instrument.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing count. The nil Counter is a
// valid "metrics off" value: Add and Inc on nil are no-ops.
type Counter struct {
	v uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a point-in-time level (queue depth, bytes outstanding) that
// also tracks its high-water mark. Nil-safe like Counter.
type Gauge struct {
	v   int64
	max int64
}

// Set replaces the level.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v = v
	if v > g.max {
		g.max = v
	}
}

// Add moves the level by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.Set(g.v + delta)
}

// Value returns the current level (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Max returns the high-water mark (0 on nil).
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max
}

// Registry holds every instrument and the span ring. The zero value is
// unusable; call New. A nil *Registry is a valid "metrics off" value:
// every method on nil returns nil instruments or empty results.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	spans      []Span
	spanNext   int
	spanFull   bool
	spansTotal uint64
}

// DefaultSpanCapacity bounds the span ring: newest spans are kept,
// SpansTotal keeps the lifetime count (same windowed-vs-lifetime
// contract as trace.Tracer).
const DefaultSpanCapacity = 32768

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		spans:    make([]Span, DefaultSpanCapacity),
	}
}

// key renders the canonical instrument identity: name{k=v,k=v} with
// labels in the order given (scopes sort once at construction).
func key(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteByte('=')
		sb.WriteString(l.Value)
	}
	sb.WriteByte('}')
	return sb.String()
}

// Counter returns (creating if needed) the counter with the given name
// and labels. Nil registry returns nil — a valid no-op instrument.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	k := key(name, labels)
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns (creating if needed) the gauge with the given identity.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	k := key(name, labels)
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns (creating if needed) the histogram with the given
// identity.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	k := key(name, labels)
	h, ok := r.hists[k]
	if !ok {
		h = &Histogram{}
		r.hists[k] = h
	}
	return h
}

// Span is one timed interval on a named track, exported to Perfetto as
// a complete ("X") event. Proc groups tracks into processes (one per
// node); Value/Detail carry span-specific payload (byte counts, error
// text).
type Span struct {
	Proc   string // process grouping, e.g. "node0" ("" = simulator)
	Track  string // thread-like track within the process, e.g. "udma"
	Name   string // event name, e.g. "xfer"
	Start  sim.Cycles
	End    sim.Cycles
	Value  uint64
	Detail string
}

// RecordSpan appends a span to the ring. Nil-safe.
func (r *Registry) RecordSpan(s Span) {
	if r == nil {
		return
	}
	r.spans[r.spanNext] = s
	r.spanNext++
	r.spansTotal++
	if r.spanNext == len(r.spans) {
		r.spanNext = 0
		r.spanFull = true
	}
}

// Spans returns the buffered spans, oldest first (the windowed view;
// SpansTotal counts every span ever recorded).
func (r *Registry) Spans() []Span {
	if r == nil {
		return nil
	}
	if !r.spanFull {
		out := make([]Span, r.spanNext)
		copy(out, r.spans[:r.spanNext])
		return out
	}
	out := make([]Span, 0, len(r.spans))
	out = append(out, r.spans[r.spanNext:]...)
	out = append(out, r.spans[:r.spanNext]...)
	return out
}

// SpansTotal returns how many spans were recorded, including ones the
// ring has overwritten.
func (r *Registry) SpansTotal() uint64 {
	if r == nil {
		return 0
	}
	return r.spansTotal
}

// Scope is a registry handle with a pre-bound label set (typically
// node=N). Components resolve their instruments once through a scope at
// attach time; a nil *Scope resolves every instrument to nil, so the
// same code path is free when metrics are off.
type Scope struct {
	reg    *Registry
	labels []Label
	proc   string
}

// Scope binds labels (sorted by key for a canonical identity). The
// node label, when present, also names the Perfetto process for spans
// recorded through this scope. Nil registry returns nil.
func (r *Registry) Scope(labels ...Label) *Scope {
	if r == nil {
		return nil
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	proc := ""
	for _, l := range ls {
		if l.Key == "node" {
			proc = "node" + l.Value
		}
	}
	return &Scope{reg: r, labels: ls, proc: proc}
}

// Registry returns the underlying registry (nil for a nil scope).
func (s *Scope) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// Counter resolves a counter under the scope's labels.
func (s *Scope) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	return s.reg.Counter(name, s.labels...)
}

// Gauge resolves a gauge under the scope's labels.
func (s *Scope) Gauge(name string) *Gauge {
	if s == nil {
		return nil
	}
	return s.reg.Gauge(name, s.labels...)
}

// Histogram resolves a histogram under the scope's labels.
func (s *Scope) Histogram(name string) *Histogram {
	if s == nil {
		return nil
	}
	return s.reg.Histogram(name, s.labels...)
}

// Span records a timed interval on the given track, grouped under the
// scope's node process. Nil-safe.
func (s *Scope) Span(track, name string, start, end sim.Cycles, value uint64, detail string) {
	if s == nil {
		return
	}
	s.reg.RecordSpan(Span{
		Proc: s.proc, Track: track, Name: name,
		Start: start, End: end, Value: value, Detail: detail,
	})
}

// String renders a scope for diagnostics.
func (s *Scope) String() string {
	if s == nil {
		return "scope(off)"
	}
	return fmt.Sprintf("scope(%s)", key("", s.labels))
}
