package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"shrimp/internal/sim"
	"shrimp/internal/trace"
)

// TraceSource names one trace.Tracer to bridge into the exported trace
// (typically one per node). Name becomes the Perfetto process name.
type TraceSource struct {
	Name   string
	Tracer *trace.Tracer
}

// chromeEvent is one Chrome trace_event record. Field order matters
// only for readability; Perfetto and chrome://tracing key off name/ph/
// ts/pid/tid. Timestamps are microseconds of simulated time.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace exports the registry's spans and the given tracers'
// buffered events as a Chrome trace_event JSON array — the format
// ui.perfetto.dev and chrome://tracing load directly. Each tracer
// source becomes a process with one "events" thread of instant events;
// each distinct span (Proc, Track) pair becomes a process/thread with
// complete events carrying durations. Cycles convert to microseconds
// through the cost model, so the timeline reads in simulated wall time.
//
// Both the registry and the sources are optional: a nil registry
// exports only tracer events, and vice versa.
func WriteChromeTrace(w io.Writer, costs *sim.CostModel, reg *Registry, sources ...TraceSource) error {
	if costs == nil {
		return fmt.Errorf("telemetry: WriteChromeTrace requires a cost model")
	}
	us := func(c sim.Cycles) float64 { return costs.Micros(c) }

	var events []chromeEvent
	nextPid := 0
	meta := func(pid int, name string) {
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": name},
		})
	}
	threadMeta := func(pid, tid int, name string) {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}

	for _, src := range sources {
		if src.Tracer == nil {
			continue
		}
		pid := nextPid
		nextPid++
		name := src.Name
		if name == "" {
			name = fmt.Sprintf("tracer%d", pid)
		}
		meta(pid, name)
		threadMeta(pid, 0, "events")
		for _, e := range src.Tracer.Events() {
			args := map[string]any{"a": e.A, "b": e.B}
			if e.Note != "" {
				args["note"] = e.Note
			}
			events = append(events, chromeEvent{
				Name: e.Kind.String(), Ph: "i", S: "t",
				Ts: us(e.At), Pid: pid, Tid: 0, Args: args,
			})
		}
	}

	// Group spans by process, then assign tids per track. Processes and
	// tracks are sorted so the export is deterministic.
	spans := reg.Spans()
	procs := map[string]map[string]bool{}
	for _, s := range spans {
		proc := s.Proc
		if proc == "" {
			proc = "sim"
		}
		if procs[proc] == nil {
			procs[proc] = map[string]bool{}
		}
		procs[proc][s.Track] = true
	}
	procNames := make([]string, 0, len(procs))
	for p := range procs {
		procNames = append(procNames, p)
	}
	sort.Strings(procNames)
	pidOf := map[string]int{}
	tidOf := map[string]map[string]int{}
	for _, p := range procNames {
		pid := nextPid
		nextPid++
		pidOf[p] = pid
		meta(pid, p)
		tracks := make([]string, 0, len(procs[p]))
		for t := range procs[p] {
			tracks = append(tracks, t)
		}
		sort.Strings(tracks)
		tidOf[p] = map[string]int{}
		for i, t := range tracks {
			tidOf[p][t] = i
			threadMeta(pid, i, t)
		}
	}
	for _, s := range spans {
		proc := s.Proc
		if proc == "" {
			proc = "sim"
		}
		dur := us(s.End) - us(s.Start)
		if dur < 0 {
			dur = 0
		}
		args := map[string]any{}
		if s.Value != 0 {
			args["value"] = s.Value
		}
		if s.Detail != "" {
			args["detail"] = s.Detail
		}
		if len(args) == 0 {
			args = nil
		}
		events = append(events, chromeEvent{
			Name: s.Name, Ph: "X", Ts: us(s.Start), Dur: &dur,
			Pid: pidOf[proc], Tid: tidOf[proc][s.Track], Args: args,
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(events)
}
