package telemetry

import (
	"sync"
	"testing"

	"shrimp/internal/sim"
)

// TestScopeConcurrentHammer drives one scope's instruments from many
// goroutines at once — the shape of parallel cluster execution, where
// per-node scopes on different workers share a registry (and, for
// rollup instruments, sometimes the same counter). Totals must be
// exact: every increment lands, the gauge high-water mark is the true
// peak, histogram count/sum match what was observed, and every span is
// accounted for. Run under -race this is also the data-race gate for
// satellite coverage of the telemetry layer.
func TestScopeConcurrentHammer(t *testing.T) {
	const (
		goroutines = 16
		perG       = 10_000
	)
	reg := New()
	sc := reg.Scope(L("node", "0"))

	ctr := sc.Counter("hammer_ops")
	g := sc.Gauge("hammer_level")
	h := sc.Histogram("hammer_lat_cycles")

	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				ctr.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(uint64(w*perG + i))
				if i%100 == 0 {
					sc.Span("hammer", "op", sim.Cycles(i), sim.Cycles(i+1), uint64(w), "")
				}
			}
		}(w)
	}
	wg.Wait()

	const total = goroutines * perG
	if got := ctr.Value(); got != total {
		t.Errorf("counter lost updates: got %d want %d", got, total)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge level: got %d want 0", got)
	}
	if mx := g.Max(); mx < 1 || mx > goroutines {
		t.Errorf("gauge max %d outside [1,%d]", mx, goroutines)
	}
	if got := h.Count(); got != total {
		t.Errorf("histogram count: got %d want %d", got, total)
	}
	// Sum over all observed values w*perG+i = sum of 0..total-1.
	wantSum := uint64(total) * uint64(total-1) / 2
	if got := h.Sum(); got != wantSum {
		t.Errorf("histogram sum: got %d want %d", got, wantSum)
	}
	if got := h.Min(); got != 0 {
		t.Errorf("histogram min: got %d want 0", got)
	}
	if got := h.Max(); got != total-1 {
		t.Errorf("histogram max: got %d want %d", got, total-1)
	}
	wantSpans := uint64(goroutines * (perG / 100))
	if got := reg.SpansTotal(); got != wantSpans {
		t.Errorf("spans total: got %d want %d", got, wantSpans)
	}
	if got := uint64(len(reg.Spans())); got != wantSpans {
		t.Errorf("spans buffered: got %d want %d", got, wantSpans)
	}
}

// TestSpansDeterministicMerge checks that the merged span view is a
// pure function of what each process recorded, not of recording
// interleaving: two registries fed the same per-process spans in
// different wall-clock orders read back identically.
func TestSpansDeterministicMerge(t *testing.T) {
	mk := func(order []int) []Span {
		reg := New()
		a := reg.Scope(L("node", "0"))
		b := reg.Scope(L("node", "1"))
		scopes := []*Scope{a, b}
		for _, who := range order {
			sc := scopes[who%2]
			sc.Span("t", "ev", sim.Cycles(who), sim.Cycles(who+1), uint64(who), "")
		}
		return reg.Spans()
	}
	// Same multiset per process, different global interleavings.
	x := mk([]int{0, 2, 4, 1, 3, 5})
	y := mk([]int{1, 3, 5, 0, 2, 4})
	if len(x) != len(y) {
		t.Fatalf("span counts differ: %d vs %d", len(x), len(y))
	}
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("span %d differs: %+v vs %+v", i, x[i], y[i])
		}
	}
}
