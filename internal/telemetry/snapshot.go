package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// CounterSnap is one counter's rendered state.
type CounterSnap struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeSnap is one gauge's rendered state.
type GaugeSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
	Max   int64  `json:"max"`
}

// HistSnap is one histogram's rendered state, with the percentile
// readout the paper's latency tables are built from. P999 is the
// serving-SLO tail (internal/loadgen's sojourn readout); with few
// samples it degenerates toward the observed max, which is the honest
// answer for a tail nobody sampled.
type HistSnap struct {
	Name  string  `json:"name"`
	Count uint64  `json:"count"`
	Sum   uint64  `json:"sum"`
	Min   uint64  `json:"min"`
	Max   uint64  `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
}

// Snapshot is a point-in-time, deterministically ordered rendering of a
// registry: every instrument sorted by canonical name.
type Snapshot struct {
	Counters   []CounterSnap `json:"counters"`
	Gauges     []GaugeSnap   `json:"gauges"`
	Histograms []HistSnap    `json:"histograms"`
	SpansTotal uint64        `json:"spans_total"`
}

// Snapshot renders the registry's current state. Nil-safe: a nil
// registry snapshots as empty.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, c := range r.counters {
		counters[k] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, g := range r.gauges {
		gauges[k] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, h := range r.hists {
		hists[k] = h
	}
	r.mu.Unlock()
	for k, c := range counters {
		s.Counters = append(s.Counters, CounterSnap{Name: k, Value: c.Value()})
	}
	for k, g := range gauges {
		s.Gauges = append(s.Gauges, GaugeSnap{Name: k, Value: g.Value(), Max: g.Max()})
	}
	for k, h := range hists {
		s.Histograms = append(s.Histograms, HistSnap{
			Name: k, Count: h.Count(), Sum: h.Sum(), Min: h.Min(), Max: h.Max(),
			Mean: h.Mean(), P50: h.Quantile(0.50), P90: h.Quantile(0.90),
			P99: h.Quantile(0.99), P999: h.Quantile(0.999),
		})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	s.SpansTotal = r.SpansTotal()
	return s
}

// WriteText renders the snapshot as aligned human-readable text.
func (s *Snapshot) WriteText(w io.Writer) {
	if len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Histograms) == 0 {
		fmt.Fprintln(w, "(no metrics recorded)")
		return
	}
	width := 0
	for _, c := range s.Counters {
		if len(c.Name) > width {
			width = len(c.Name)
		}
	}
	for _, g := range s.Gauges {
		if len(g.Name) > width {
			width = len(g.Name)
		}
	}
	for _, h := range s.Histograms {
		if len(h.Name) > width {
			width = len(h.Name)
		}
	}
	if len(s.Counters) > 0 {
		fmt.Fprintln(w, "counters:")
		for _, c := range s.Counters {
			fmt.Fprintf(w, "  %-*s  %d\n", width, c.Name, c.Value)
		}
	}
	if len(s.Gauges) > 0 {
		fmt.Fprintln(w, "gauges:")
		for _, g := range s.Gauges {
			fmt.Fprintf(w, "  %-*s  %d (max %d)\n", width, g.Name, g.Value, g.Max)
		}
	}
	if len(s.Histograms) > 0 {
		fmt.Fprintln(w, "histograms:")
		for _, h := range s.Histograms {
			fmt.Fprintf(w, "  %-*s  count=%d min=%d p50=%.0f p90=%.0f p99=%.0f p999=%.0f max=%d mean=%.1f\n",
				width, h.Name, h.Count, h.Min, h.P50, h.P90, h.P99, h.P999, h.Max, h.Mean)
		}
	}
	if s.SpansTotal > 0 {
		fmt.Fprintf(w, "spans: %d recorded\n", s.SpansTotal)
	}
}

// WriteJSON renders the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Hist looks up a histogram snapshot by its canonical name, for tests
// and experiment tables.
func (s *Snapshot) Hist(name string) (HistSnap, bool) {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return HistSnap{}, false
}

// Counter looks up a counter snapshot by its canonical name.
func (s *Snapshot) Counter(name string) (CounterSnap, bool) {
	for _, c := range s.Counters {
		if c.Name == name {
			return c, true
		}
	}
	return CounterSnap{}, false
}
