package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"

	"shrimp/internal/sim"
	"shrimp/internal/trace"
)

// testCosts is a 60 MHz model (16.7 ns/cycle) matching SHRIMP1996's
// clock, without importing machine (which imports this package).
func testCosts() *sim.CostModel { return &sim.CostModel{CPUHz: 60e6} }

// TestChromeTraceShape validates the exporter against the acceptance
// contract: the output is a JSON array of objects carrying ts/ph/name,
// with tracer events as instants and registry spans as complete events
// whose durations are in simulated microseconds.
func TestChromeTraceShape(t *testing.T) {
	costs := testCosts()
	clock := sim.NewClock()
	tr := trace.New(clock, 64)
	tr.Record(trace.EvStore, 0x1000, 64, "")
	clock.Advance(120)
	tr.Record(trace.EvInitiation, 0x1000, 0x2000, "64B")

	r := New()
	s := r.Scope(L("node", "0"))
	s.Span("udma", "xfer", 0, 600, 4096, "")
	s.Span("dma", "burst", 100, 400, 4096, "")

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, costs, r, TraceSource{Name: "node0", Tracer: tr}); err != nil {
		t.Fatal(err)
	}

	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("not a JSON array: %v\n%s", err, buf.String())
	}
	if len(events) == 0 {
		t.Fatal("no events exported")
	}
	var instants, completes, metas int
	for _, e := range events {
		name, ok := e["name"].(string)
		if !ok || name == "" {
			t.Fatalf("event missing name: %v", e)
		}
		ph, ok := e["ph"].(string)
		if !ok {
			t.Fatalf("event missing ph: %v", e)
		}
		if _, ok := e["ts"]; !ok && ph != "M" {
			t.Fatalf("non-metadata event missing ts: %v", e)
		}
		switch ph {
		case "i":
			instants++
		case "X":
			completes++
			dur, ok := e["dur"].(float64)
			if !ok || dur <= 0 {
				t.Fatalf("complete event without positive dur: %v", e)
			}
		case "M":
			metas++
		}
	}
	if instants != 2 || completes != 2 || metas == 0 {
		t.Fatalf("instants=%d completes=%d metas=%d", instants, completes, metas)
	}

	// 600 cycles at 60 MHz = 10 µs for the udma span.
	for _, e := range events {
		if e["name"] == "xfer" {
			if dur := e["dur"].(float64); dur < 9.9 || dur > 10.1 {
				t.Fatalf("xfer dur = %g µs, want ≈10", dur)
			}
		}
	}
}

// TestChromeTraceEmptyInputs: nil registry, nil tracers — still a valid
// (possibly empty) JSON array.
func TestChromeTraceEmptyInputs(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, testCosts(), nil, TraceSource{Name: "x", Tracer: nil}); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(events) != 0 {
		t.Fatalf("expected empty array, got %d events", len(events))
	}
	if err := WriteChromeTrace(&buf, nil, nil); err == nil {
		t.Fatal("nil cost model accepted")
	}
}
