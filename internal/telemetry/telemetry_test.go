package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry produced live instruments")
	}
	// All nil-instrument operations must be no-ops, not panics.
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(42)
	if c.Value() != 0 || g.Value() != 0 || g.Max() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments accumulated state")
	}
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("nil histogram reads nonzero")
	}
	var s *Scope
	if s.Counter("x") != nil || s.Gauge("y") != nil || s.Histogram("z") != nil {
		t.Fatal("nil scope produced live instruments")
	}
	s.Span("t", "n", 0, 10, 0, "")
	if r.Scope(L("node", "0")) != nil {
		t.Fatal("nil registry produced a scope")
	}
	r.RecordSpan(Span{})
	if r.Spans() != nil || r.SpansTotal() != 0 {
		t.Fatal("nil registry recorded spans")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Histograms) != 0 {
		t.Fatal("nil registry snapshot non-empty")
	}
}

func TestCounterGauge(t *testing.T) {
	r := New()
	c := r.Counter("requests", L("node", "0"))
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("counter = %d", c.Value())
	}
	// Same identity resolves to the same instrument.
	if r.Counter("requests", L("node", "0")) != c {
		t.Fatal("counter identity not stable")
	}
	// Different labels are different instruments.
	if r.Counter("requests", L("node", "1")) == c {
		t.Fatal("labels ignored in identity")
	}

	g := r.Gauge("depth")
	g.Set(3)
	g.Add(4)
	g.Set(2)
	if g.Value() != 2 || g.Max() != 7 {
		t.Fatalf("gauge value=%d max=%d", g.Value(), g.Max())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for v := uint64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	if h.Count() != 1000 || h.Min() != 1 || h.Max() != 1000 {
		t.Fatalf("count=%d min=%d max=%d", h.Count(), h.Min(), h.Max())
	}
	if m := h.Mean(); m < 500 || m > 501 {
		t.Fatalf("mean = %g", m)
	}
	// Log-bucketed quantiles are approximate: within a factor of 2.
	p50 := h.Quantile(0.50)
	if p50 < 250 || p50 > 1000 {
		t.Fatalf("p50 = %g", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 500 || p99 > 1000 {
		t.Fatalf("p99 = %g", p99)
	}
	if h.Quantile(0) != 1 || h.Quantile(1) != 1000 {
		t.Fatalf("p0=%g p100=%g", h.Quantile(0), h.Quantile(1))
	}
	// Quantiles never extrapolate past observed extremes.
	var one Histogram
	one.Observe(777)
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 0.999, 1} {
		if got := one.Quantile(q); got != 777 {
			t.Fatalf("single-sample quantile(%g) = %g", q, got)
		}
	}
}

// TestHistogramP999TailBucket pins the tail readout the serving SLOs
// depend on: with 1000 samples in a low bucket and a handful of slow
// outliers in a far higher bucket, p999 must land in the outlier
// bucket (p99 must not), and it must stay clamped to the observed max.
func TestHistogramP999TailBucket(t *testing.T) {
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Observe(100) // bucket [64,128)
	}
	for i := 0; i < 2; i++ {
		h.Observe(1 << 20) // the stragglers: bucket [2^20, 2^21)
	}
	p99, p999 := h.Quantile(0.99), h.Quantile(0.999)
	if p99 >= 128 {
		t.Fatalf("p99 = %g, want inside the fast bucket (< 128)", p99)
	}
	if p999 < 1<<20 {
		t.Fatalf("p999 = %g, want inside the tail bucket (>= %d)", p999, 1<<20)
	}
	if max := float64(h.Max()); p999 > max {
		t.Fatalf("p999 = %g extrapolated past observed max %g", p999, max)
	}
	if p999 < p99 {
		t.Fatalf("p999 %g < p99 %g", p999, p99)
	}
}

func TestHistogramZeroAndHuge(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(1 << 62)
	if h.Min() != 0 || h.Max() != 1<<62 {
		t.Fatalf("min=%d max=%d", h.Min(), h.Max())
	}
	if got := h.Quantile(1); got != float64(uint64(1)<<62) {
		t.Fatalf("p100 = %g", got)
	}
}

func TestScopeLabelsSortedCanonical(t *testing.T) {
	r := New()
	a := r.Scope(L("node", "0"), L("dev", "nic"))
	b := r.Scope(L("dev", "nic"), L("node", "0"))
	ca := a.Counter("pkts")
	cb := b.Counter("pkts")
	if ca != cb {
		t.Fatal("label order changed instrument identity")
	}
	ca.Inc()
	snap := r.Snapshot()
	if _, ok := snap.Counter("pkts{dev=nic,node=0}"); !ok {
		t.Fatalf("canonical name missing: %+v", snap.Counters)
	}
}

func TestSpanRingWindowedVsLifetime(t *testing.T) {
	r := New()
	for i := 0; i < DefaultSpanCapacity+10; i++ {
		r.RecordSpan(Span{Name: "s", Start: 0, End: 1, Value: uint64(i)})
	}
	spans := r.Spans()
	if len(spans) != DefaultSpanCapacity {
		t.Fatalf("ring holds %d", len(spans))
	}
	if spans[0].Value != 10 || spans[len(spans)-1].Value != DefaultSpanCapacity+9 {
		t.Fatalf("ring order wrong: first=%d last=%d", spans[0].Value, spans[len(spans)-1].Value)
	}
	if r.SpansTotal() != DefaultSpanCapacity+10 {
		t.Fatalf("lifetime total = %d", r.SpansTotal())
	}
}

func TestSnapshotTextAndJSON(t *testing.T) {
	r := New()
	s := r.Scope(L("node", "0"))
	s.Counter("bus_pio_words").Add(7)
	s.Gauge("udma_queue_depth").Set(3)
	h := s.Histogram("udma_xfer_latency_cycles")
	for i := 0; i < 100; i++ {
		h.Observe(uint64(1000 + i))
	}
	snap := r.Snapshot()

	var text bytes.Buffer
	snap.WriteText(&text)
	out := text.String()
	for _, want := range []string{
		"bus_pio_words{node=0}", "udma_queue_depth{node=0}",
		"udma_xfer_latency_cycles{node=0}", "p50=", "p99=", "p999=",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("text snapshot missing %q:\n%s", want, out)
		}
	}

	var jbuf bytes.Buffer
	if err := snap.WriteJSON(&jbuf); err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := json.Unmarshal(jbuf.Bytes(), &decoded); err != nil {
		t.Fatalf("snapshot JSON invalid: %v", err)
	}
	hs, ok := decoded.Hist("udma_xfer_latency_cycles{node=0}")
	if !ok || hs.Count != 100 || hs.P50 <= 0 || hs.P99 <= 0 || hs.P999 <= 0 {
		t.Fatalf("decoded histogram: %+v (ok=%v)", hs, ok)
	}

	var empty bytes.Buffer
	New().Snapshot().WriteText(&empty)
	if !strings.Contains(empty.String(), "no metrics") {
		t.Fatalf("empty snapshot = %q", empty.String())
	}
}
