package cluster_test

import (
	"bytes"
	"fmt"
	"testing"

	"shrimp/internal/addr"
	"shrimp/internal/cluster"
	"shrimp/internal/kernel"
	"shrimp/internal/nic"
	"shrimp/internal/sim"
	"shrimp/internal/udmalib"
)

func pattern(n int, seed byte) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i)*3 + seed
	}
	return out
}

// waitChan polls a Go channel used as an out-of-band control plane
// between nodes, yielding simulated time between attempts. A process
// must never block its coroutine on a bare channel receive: the node's
// kernel would never regain control and the cluster scheduler would
// hang (nodes execute one at a time).
func waitChan[T any](p *kernel.Proc, ch chan T) T {
	for {
		select {
		case v := <-ch:
			return v
		default:
			p.Sleep(5_000)
		}
	}
}

func TestTwoNodeDeliberateUpdate(t *testing.T) {
	c := cluster.New(cluster.Config{
		Nodes: 2,
		NIC:   nic.Config{NIPTPages: 64},
	})
	defer c.Shutdown()

	const msgBytes = 8192
	payload := pattern(msgBytes, 1)
	recvReady := make(chan []uint32, 1)
	var recvData []byte
	var recvErr, sendErr error

	// Receiver on node 0: allocate and export a buffer, then poll its
	// tail word until the message lands (no CPU involvement in the
	// receive itself — that is the point of deliberate update).
	c.Nodes[0].Kernel.Spawn("recv", func(p *kernel.Proc) {
		va, err := p.Alloc(msgBytes)
		if err != nil {
			recvErr = err
			return
		}
		pfns, err := udmalib.ExportBuffer(c.Nodes[0].Kernel, p, va, msgBytes/addr.PageSize)
		if err != nil {
			recvErr = err
			return
		}
		recvReady <- pfns
		for {
			v, err := p.Load(va + msgBytes - 4)
			if err != nil {
				recvErr = err
				return
			}
			if v != 0 {
				break
			}
			p.Compute(200)
		}
		recvData, recvErr = p.ReadBuf(va, msgBytes)
	})

	// Sender on node 1.
	c.Nodes[1].Kernel.Spawn("send", func(p *kernel.Proc) {
		pfns := waitChan(p, recvReady)
		if err := udmalib.MapSendWindow(c.NICs[1], 0, 0, pfns); err != nil {
			sendErr = err
			return
		}
		d, err := udmalib.Open(p, c.NICs[1], true)
		if err != nil {
			sendErr = err
			return
		}
		va, _ := p.Alloc(msgBytes)
		p.WriteBuf(va, payload)
		sendErr = d.Send(va, udmalib.WindowOff(0, 0), msgBytes)
	})

	if err := c.Run(500_000_000); err != nil {
		t.Fatalf("cluster run: %v", err)
	}
	if sendErr != nil {
		t.Fatalf("sender: %v", sendErr)
	}
	if recvErr != nil {
		t.Fatalf("receiver: %v", recvErr)
	}
	if !bytes.Equal(recvData, payload) {
		t.Fatalf("message corrupted in flight (first bytes % x vs % x)",
			recvData[:8], payload[:8])
	}
	if s := c.NICs[1].Stats(); s.PacketsSent != 2 { // 8 KB = two page updates
		t.Fatalf("packets sent = %d, want 2", s.PacketsSent)
	}
}

func TestFourNodeAllToAll(t *testing.T) {
	const nodes = 4
	const msgBytes = 4096
	c := cluster.New(cluster.Config{
		Nodes: nodes,
		NIC:   nic.Config{NIPTPages: 64},
	})
	defer c.Shutdown()

	type export struct {
		node int
		pfns []uint32
	}
	exports := make(chan export, nodes)
	errs := make([]error, nodes)
	verified := make([]bool, nodes)

	for i := 0; i < nodes; i++ {
		i := i
		c.Nodes[i].Kernel.Spawn(fmt.Sprintf("peer%d", i), func(p *kernel.Proc) {
			// Export one receive page per peer (slot s receives from
			// sender s).
			va, _ := p.Alloc(nodes * msgBytes)
			pfns, err := udmalib.ExportBuffer(c.Nodes[i].Kernel, p, va, nodes)
			if err != nil {
				errs[i] = err
				return
			}
			exports <- export{node: i, pfns: pfns}

			// Node 0 is the mapping master: collect everyone's exported
			// frames and install every sender's NIPT window.
			if i == 0 {
				all := make([][]uint32, nodes)
				for got := 0; got < nodes; got++ {
					e := waitChan(p, exports)
					all[e.node] = e.pfns
				}
				for s := 0; s < nodes; s++ {
					for d := 0; d < nodes; d++ {
						if s == d {
							continue
						}
						if err := c.NICs[s].SetNIPT(uint32(d), nic.NIPTEntry{
							Valid: true, DestNode: d, DestPFN: all[d][s],
						}); err != nil {
							errs[i] = err
							return
						}
					}
				}
			}

			// Send one page to every peer; NIPT entries may not be
			// installed yet, so retry hardware "invalid entry" errors.
			dev, err := udmalib.Open(p, c.NICs[i], true)
			if err != nil {
				errs[i] = err
				return
			}
			src, _ := p.Alloc(msgBytes)
			p.WriteBuf(src, pattern(msgBytes, byte(0x10*i+1)))
			for d := 0; d < nodes; d++ {
				if d == i {
					continue
				}
				for {
					err := dev.Send(src, udmalib.WindowOff(uint32(d), 0), msgBytes)
					if err == nil {
						break
					}
					if _, ok := err.(*udmalib.HardError); ok {
						p.Sleep(10_000)
						continue
					}
					errs[i] = err
					return
				}
			}

			// Wait for and verify every peer's page.
			for s := 0; s < nodes; s++ {
				if s == i {
					continue
				}
				slot := va + addr.VAddr(s*msgBytes)
				for {
					v, err := p.Load(slot + msgBytes - 4)
					if err != nil {
						errs[i] = err
						return
					}
					if v != 0 {
						break
					}
					p.Compute(500)
				}
				got, err := p.ReadBuf(slot, msgBytes)
				if err != nil {
					errs[i] = err
					return
				}
				if !bytes.Equal(got, pattern(msgBytes, byte(0x10*s+1))) {
					errs[i] = fmt.Errorf("node %d: slot %d corrupted", i, s)
					return
				}
			}
			verified[i] = true
		})
	}

	if err := c.Run(5_000_000_000); err != nil {
		t.Fatalf("cluster run: %v", err)
	}
	for i := 0; i < nodes; i++ {
		if errs[i] != nil {
			t.Fatalf("node %d: %v", i, errs[i])
		}
		if !verified[i] {
			t.Fatalf("node %d never verified all peer pages", i)
		}
	}
	var totalSent uint64
	for i := range c.NICs {
		totalSent += c.NICs[i].Stats().BytesSent
	}
	if totalSent != uint64(nodes*(nodes-1)*msgBytes) {
		t.Fatalf("total bytes sent = %d, want %d", totalSent, nodes*(nodes-1)*msgBytes)
	}
}

func TestClusterProtectionAcrossProcesses(t *testing.T) {
	// A process that never called MapDevice cannot touch the NIC, even
	// on a cluster node where another process communicates heavily.
	c := cluster.New(cluster.Config{Nodes: 2, NIC: nic.Config{NIPTPages: 16}})
	defer c.Shutdown()
	var intruderErr error
	c.Nodes[0].Kernel.Spawn("intruder", func(p *kernel.Proc) {
		_, intruderErr = p.Load(addr.VAddr(addr.DevProxy(0, 0)))
	})
	if err := c.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if intruderErr == nil {
		t.Fatal("intruder touched the NIC without a mapping")
	}
}

func TestClusterConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-node cluster did not panic")
		}
	}()
	cluster.New(cluster.Config{Nodes: 0})
}

// TestHardwareDrainsAfterLastExit is the regression test for a real
// bug: a process that exits right after initiating its final transfer
// leaves the DMA completion (and the packet it launches) pending in the
// node's event queue. The cluster must keep that node's hardware
// clock moving so the data still reaches the peer — here the receiver
// is an active process polling for exactly that data.
func TestHardwareDrainsAfterLastExit(t *testing.T) {
	c := cluster.New(cluster.Config{Nodes: 2, NIC: nic.Config{NIPTPages: 8}})
	defer c.Shutdown()

	ready := make(chan []uint32, 1)
	var got uint32
	var recvErr, sendErr error
	c.Nodes[0].Kernel.Spawn("recv", func(p *kernel.Proc) {
		va, _ := p.Alloc(addr.PageSize)
		pfns, err := udmalib.ExportBuffer(c.Nodes[0].Kernel, p, va, 1)
		if err != nil {
			recvErr = err
			return
		}
		ready <- pfns
		for {
			v, err := p.Load(va)
			if err != nil {
				recvErr = err
				return
			}
			if v != 0 {
				got = v
				return
			}
			p.Compute(200)
		}
	})
	c.Nodes[1].Kernel.Spawn("send", func(p *kernel.Proc) {
		pfns := waitChan(p, ready)
		if err := udmalib.MapSendWindow(c.NICs[1], 0, 0, pfns); err != nil {
			sendErr = err
			return
		}
		d, err := udmalib.Open(p, c.NICs[1], true)
		if err != nil {
			sendErr = err
			return
		}
		src, _ := p.Alloc(addr.PageSize)
		p.Store(src, 0xC0FFEE)
		// Fire and EXIT: no completion wait. The engine, the packet
		// and the remote receive DMA all outlive this process.
		sendErr = d.SendAsync(src, 0, 4)
	})
	if err := c.Run(2_000_000_000); err != nil {
		t.Fatal(err)
	}
	if sendErr != nil || recvErr != nil {
		t.Fatalf("send=%v recv=%v", sendErr, recvErr)
	}
	if got != 0xC0FFEE {
		t.Fatalf("receiver got %#x", got)
	}
}

func TestClusterMaxNow(t *testing.T) {
	c := cluster.New(cluster.Config{Nodes: 2, NIC: nic.Config{NIPTPages: 4}})
	defer c.Shutdown()
	c.Nodes[0].Kernel.Spawn("busy", func(p *kernel.Proc) { p.Compute(50_000) })
	if err := c.Run(sim.Forever); err != nil {
		t.Fatal(err)
	}
	if c.MaxNow() < 50_000 {
		t.Fatalf("MaxNow = %d", c.MaxNow())
	}
}
