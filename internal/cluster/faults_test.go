package cluster_test

import (
	"errors"
	"fmt"
	"testing"

	"shrimp/internal/addr"
	"shrimp/internal/cluster"
	"shrimp/internal/kernel"
	"shrimp/internal/machine"
	"shrimp/internal/nic"
	"shrimp/internal/udmalib"
	"shrimp/internal/workload"
)

// runFaultedScenario drives a 3-node ring whose NICs sit behind
// per-node fault injectors, recovering with SendRetry, and returns a
// fingerprint of everything observable.
func runFaultedScenario(t *testing.T) (fp string, injected uint64) {
	t.Helper()
	const nodes = 3
	c := cluster.New(cluster.Config{
		Nodes:           nodes,
		Machine:         machine.Config{RAMFrames: 64},
		NIC:             nic.Config{NIPTPages: 8},
		FaultInject:     true,
		FaultSeed:       0xC10C_FA17,
		FaultRejectRate: 0.08,
		FaultFailRate:   0.08,
	})
	defer c.Shutdown()

	delivered := make([]int, nodes)
	exhausted := make([]int, nodes)
	errs := make([]error, nodes)
	for i := 0; i < nodes; i++ {
		dst := (i + 1) % nodes
		if err := udmalib.MapSendWindow(c.NICs[i], 0, dst, []uint32{40}); err != nil {
			t.Fatal(err)
		}
		i := i
		c.Nodes[i].Kernel.Spawn("sender", func(p *kernel.Proc) {
			// Open the fault wrapper, not the bare NIC: the wrapper is
			// what the node decodes.
			d, err := udmalib.Open(p, c.Dev(i), true)
			if err != nil {
				errs[i] = err
				return
			}
			va, _ := p.Alloc(addr.PageSize)
			p.WriteBuf(va, workload.Payload(1024, byte(i+1)))
			for m := 0; m < 12; m++ {
				switch err := d.SendRetry(va, 0, 1024, udmalib.DefaultRetryPolicy()); {
				case err == nil:
					delivered[i]++
				case errors.As(err, new(*udmalib.RetryExhaustedError)):
					exhausted[i]++
				default:
					errs[i] = err
					return
				}
			}
		})
	}
	if err := c.Run(2_000_000_000); err != nil {
		t.Fatal(err)
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}

	for i := 0; i < nodes; i++ {
		if delivered[i]+exhausted[i] != 12 {
			t.Fatalf("node %d: %d delivered + %d exhausted of 12 (a send hung or escaped)",
				i, delivered[i], exhausted[i])
		}
		rej, fail := c.Faulty[i].Injected()
		injected += rej + fail
		ks := c.Nodes[i].Kernel.Stats()
		fp += fmt.Sprintf("n%d clock=%d ok=%d x=%d rej=%d fail=%d dmafail=%d sent=%d|",
			i, c.Nodes[i].Clock.Now(), delivered[i], exhausted[i],
			rej, fail, ks.DMAFailures, c.NICs[i].Stats().BytesSent)
	}
	return fp, injected
}

// TestFaultInjectedClusterIsDeterministic extends the determinism
// guarantee to the fault path: with fault injection on, the injected
// fault pattern and every recovery it provokes are a pure function of
// the cluster seed — two identical runs are cycle-identical.
func TestFaultInjectedClusterIsDeterministic(t *testing.T) {
	a, injectedA := runFaultedScenario(t)
	b, injectedB := runFaultedScenario(t)
	if injectedA == 0 {
		t.Fatal("no faults fired; the scenario exercises nothing")
	}
	if a != b || injectedA != injectedB {
		t.Fatalf("two identical fault-injected runs diverged:\n  %s\n  %s", a, b)
	}
}
