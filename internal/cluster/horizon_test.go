package cluster_test

import (
	"testing"

	"shrimp/internal/addr"
	"shrimp/internal/cluster"
	"shrimp/internal/kernel"
	"shrimp/internal/nic"
	"shrimp/internal/raceflag"
	"shrimp/internal/sim"
	"shrimp/internal/udmalib"
)

// TestRunFlushesMailAtLimit is the regression test for the parked-mail
// leak: a limit-bounded Run used to return with the final window's
// cross-node packets still sitting in the outbox mailboxes, never
// merged onto the receiver clocks — so post-run reads of backplane and
// NIC state undercounted in-flight traffic. Run must flush (account)
// the mail before returning at the limit.
func TestRunFlushesMailAtLimit(t *testing.T) {
	c := cluster.New(cluster.Config{Nodes: 2, NIC: nic.Config{NIPTPages: 8}})
	defer c.Shutdown()

	ready := make(chan []uint32, 1)
	c.Nodes[0].Kernel.Spawn("recv", func(p *kernel.Proc) {
		va, _ := p.Alloc(addr.PageSize)
		pfns, err := udmalib.ExportBuffer(c.Nodes[0].Kernel, p, va, 1)
		if err != nil {
			t.Error(err)
			return
		}
		ready <- pfns
		for { // poll forever; the run ends at the limit
			if _, err := p.Load(va); err != nil {
				return
			}
			p.Compute(500)
		}
	})
	c.Nodes[1].Kernel.Spawn("send", func(p *kernel.Proc) {
		pfns := waitChan(p, ready)
		if err := udmalib.MapSendWindow(c.NICs[1], 0, 0, pfns); err != nil {
			t.Error(err)
			return
		}
		d, err := udmalib.Open(p, c.NICs[1], true)
		if err != nil {
			t.Error(err)
			return
		}
		src, _ := p.Alloc(addr.PageSize)
		p.Store(src, 1)
		for { // send forever so every window — including the last — parks mail
			if err := d.Send(src, 0, addr.PageSize); err != nil {
				return
			}
		}
	})

	if err := c.Run(3_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	pkts, _, _, _ := c.Backplane.Stats()
	if pkts == 0 {
		t.Fatal("no traffic generated; test rig is broken")
	}
	if c.Backplane.MailPending() {
		t.Fatal("Run returned at limit with deferred mail still parked (unflushed, unaccounted)")
	}
}

// TestRunSkipsNoOpWindows pins the horizon skip-ahead: a process that
// sleeps far beyond the window size used to cost ceil(sleep/window)
// empty barrier rounds (flush nothing, run nothing, join). Run must
// jump the horizon to the next runnable time instead. Before the fix
// this workload took >5000 rounds; with re-basing and skip-ahead it
// takes a handful.
func TestRunSkipsNoOpWindows(t *testing.T) {
	c := cluster.New(cluster.Config{Nodes: 2, NIC: nic.Config{NIPTPages: 4}, Window: 10_000})
	defer c.Shutdown()

	var woke bool
	c.Nodes[0].Kernel.Spawn("sleeper", func(p *kernel.Proc) {
		p.Compute(1_000)
		p.Sleep(50_000_000) // 5000 windows of nothing
		p.Compute(1_000)
		woke = true
	})

	if err := c.Run(sim.Forever); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !woke {
		t.Fatal("sleeper never woke")
	}
	if c.MaxNow() < 50_000_000 {
		t.Fatalf("MaxNow = %d, want >= 50M", c.MaxNow())
	}
	if r := c.Rounds(); r > 50 {
		t.Fatalf("Run used %d barrier rounds for a sparse timeline, want <= 50 (no-op windows not skipped)", r)
	}
}

// TestRunCatchesOvershootInOneRound covers the re-based horizon: a
// processor whose compute quantum overshoots the window by many
// multiples must be caught up in O(1) rounds, not ceil(overshoot/window)
// no-op rounds (the special case PR 3's deadlock detection papered
// over, now deleted).
func TestRunCatchesOvershootInOneRound(t *testing.T) {
	c := cluster.New(cluster.Config{Nodes: 2, NIC: nic.Config{NIPTPages: 4}, Window: 10_000})
	defer c.Shutdown()
	c.Nodes[0].Kernel.Spawn("burst", func(p *kernel.Proc) {
		p.Compute(25_000_000) // one quantum, 2500 windows long
	})
	if err := c.Run(sim.Forever); err != nil {
		t.Fatalf("run: %v", err)
	}
	if r := c.Rounds(); r > 50 {
		t.Fatalf("Run used %d rounds to absorb a single overshooting quantum, want <= 50", r)
	}
}

// TestStepSteadyStateAllocs guards the pooled barrier: once warmed up,
// a Step round on an idle cluster (flush, horizon computation, fan-out,
// coast, join) must not allocate. This is what makes thousands of
// windows per run cheap.
func TestStepSteadyStateAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("exact alloc counts are meaningless under -race")
	}
	c := cluster.New(cluster.Config{Nodes: 4, Workers: 4, NIC: nic.Config{NIPTPages: 4}})
	defer c.Shutdown()
	// No processes: every kernel is all-exited, so a window is pure
	// barrier machinery (the hot path minus workload noise).
	horizon := sim.Cycles(0)
	step := func() {
		horizon += 10_000
		if _, err := c.Step(horizon); err != nil {
			t.Fatalf("step: %v", err)
		}
	}
	step() // warm up pool and scratch
	if n := testing.AllocsPerRun(100, step); n != 0 {
		t.Fatalf("Step allocates %.1f times per barrier round, want 0", n)
	}
}

// TestNextRunnable checks the skip-ahead oracle directly: it must see
// scheduled events, overshot live clocks, and report Forever only when
// nothing can ever run.
func TestNextRunnable(t *testing.T) {
	c := cluster.New(cluster.Config{Nodes: 2, NIC: nic.Config{NIPTPages: 4}})
	defer c.Shutdown()
	c.Nodes[0].Kernel.Spawn("sleeper", func(p *kernel.Proc) {
		p.Sleep(1_000_000)
	})
	// Run one window: the sleeper schedules its wake event and blocks.
	if _, err := c.Step(10_000); err != nil {
		t.Fatal(err)
	}
	next := c.NextRunnable(10_000)
	if next == sim.Forever {
		t.Fatal("NextRunnable missed the sleeper's wake event")
	}
	if next > 1_001_000 {
		t.Fatalf("NextRunnable = %d, want about the wake time", next)
	}
}
