package cluster_test

import (
	"fmt"
	"testing"

	"shrimp/internal/addr"
	"shrimp/internal/cluster"
	"shrimp/internal/interconnect"
	"shrimp/internal/kernel"
	"shrimp/internal/machine"
	"shrimp/internal/nic"
	"shrimp/internal/telemetry"
	"shrimp/internal/udmalib"
	"shrimp/internal/workload"
)

// runParallelWorkload runs a fixed 8-node ring workload (senders,
// compute burners, a lossy wire with the reliability layer fighting it)
// at the given worker count and fingerprints everything observable:
// per-node clocks, kernel stats, NIC stats, backplane launch totals,
// fault-plan ledger, and the full telemetry snapshot.
func runParallelWorkload(t *testing.T, workers int) string {
	t.Helper()
	const nodes = 8
	reg := telemetry.New()
	c := cluster.New(cluster.Config{
		Nodes:   nodes,
		Workers: workers,
		Machine: machine.Config{RAMFrames: 64, Kernel: kernel.Config{Quantum: 1500}},
		NIC: nic.Config{
			NIPTPages:   8,
			Reliability: nic.ReliabilityConfig{Enabled: true, Window: 4, MaxPending: 8},
		},
		Fault: interconnect.FaultPlan{
			Seed:     99,
			DropRate: 0.05, DupRate: 0.02, CorruptRate: 0.02, DelayRate: 0.10,
		},
		Metrics: reg,
	})
	defer c.Shutdown()

	for i := 0; i < nodes; i++ {
		dst := (i + 3) % nodes // multi-hop mesh routes
		if err := udmalib.MapSendWindow(c.NICs[i], 0, dst, []uint32{40, 41}); err != nil {
			t.Fatal(err)
		}
		i := i
		c.Nodes[i].Kernel.Spawn("sender", func(p *kernel.Proc) {
			d, err := udmalib.Open(p, c.NICs[i], true)
			if err != nil {
				return
			}
			va, _ := p.Alloc(addr.PageSize)
			p.WriteBuf(va, workload.Payload(2048, byte(i+1)))
			for m := 0; m < 8; m++ {
				if d.SendRetry(va, 0, 2048, udmalib.RetryPolicy{MaxAttempts: 20, Backoff: 512}) != nil {
					return
				}
			}
		})
		c.Nodes[i].Kernel.Spawn("burner", workload.Burner(700, 150_000))
	}
	if err := c.Run(1_000_000_000); err != nil {
		t.Fatal(err)
	}
	c.PublishRollup()

	fp := ""
	for i := 0; i < nodes; i++ {
		ks := c.Nodes[i].Kernel.Stats()
		ns := c.NICs[i].Stats()
		fp += fmt.Sprintf("n%d clock=%d ctx=%d inv=%d pf=%d sent=%d recv=%d retx=%d acks=%d|",
			i, c.Nodes[i].Clock.Now(), ks.ContextSwitches, ks.Invals,
			ks.PageFaults, ns.BytesSent, ns.BytesReceived, ns.Retransmits, ns.AcksSent)
	}
	pkts, bytes, rp, rb := c.Backplane.Stats()
	if pkts == 0 || bytes == 0 {
		t.Fatalf("workload sent no traffic (pkts=%d bytes=%d): fingerprint would be vacuous", pkts, bytes)
	}
	fp += fmt.Sprintf("wire pkts=%d bytes=%d retx=%d retxb=%d fs=%+v|",
		pkts, bytes, rp, rb, c.Backplane.FaultStats())
	fp += fmt.Sprintf("metrics=%+v", *reg.Snapshot())
	return fp
}

// TestParallelWorkersBitExact is the tentpole invariant: the simulation
// is a pure function of its configuration, not of the host worker
// count. Every observable — clocks, scheduler decisions, retransmits,
// the fault ledger, the telemetry snapshot — must be byte-identical at
// workers 1, 2, 4 and 8.
func TestParallelWorkersBitExact(t *testing.T) {
	ref := runParallelWorkload(t, 1)
	for _, w := range []int{2, 4, 8} {
		if got := runParallelWorkload(t, w); got != ref {
			t.Fatalf("workers=%d diverged from workers=1:\n  %s\nvs\n  %s", w, got, ref)
		}
	}
}
