package cluster_test

import (
	"fmt"
	"testing"

	"shrimp/internal/addr"
	"shrimp/internal/cluster"
	"shrimp/internal/kernel"
	"shrimp/internal/machine"
	"shrimp/internal/nic"
	"shrimp/internal/udmalib"
	"shrimp/internal/workload"
)

// runDeterministicScenario runs a fixed multi-node workload and returns
// a fingerprint of everything observable: final clocks, kernel stats
// and NIC stats.
func runDeterministicScenario(t *testing.T) string {
	t.Helper()
	const nodes = 3
	c := cluster.New(cluster.Config{
		Nodes:   nodes,
		Machine: machine.Config{RAMFrames: 64, Kernel: kernel.Config{Quantum: 1500}},
		NIC:     nic.Config{NIPTPages: 8},
	})
	defer c.Shutdown()

	for i := 0; i < nodes; i++ {
		dst := (i + 1) % nodes
		if err := udmalib.MapSendWindow(c.NICs[i], 0, dst, []uint32{40}); err != nil {
			t.Fatal(err)
		}
		i := i
		// Two processes per node: a sender and a compute burner, so the
		// scheduler, the I1 protocol and the backplane all participate.
		c.Nodes[i].Kernel.Spawn("sender", func(p *kernel.Proc) {
			d, err := udmalib.Open(p, c.NICs[i], true)
			if err != nil {
				return
			}
			va, _ := p.Alloc(addr.PageSize)
			p.WriteBuf(va, workload.Payload(1024, byte(i+1)))
			for m := 0; m < 12; m++ {
				if d.Send(va, 0, 1024) != nil {
					return
				}
			}
		})
		c.Nodes[i].Kernel.Spawn("burner", workload.Burner(700, 200_000))
	}
	if err := c.Run(1_000_000_000); err != nil {
		t.Fatal(err)
	}

	fp := ""
	for i := 0; i < nodes; i++ {
		ks := c.Nodes[i].Kernel.Stats()
		ns := c.NICs[i].Stats()
		fp += fmt.Sprintf("n%d clock=%d ctx=%d inv=%d pf=%d sent=%d recv=%d|",
			i, c.Nodes[i].Clock.Now(), ks.ContextSwitches, ks.Invals,
			ks.PageFaults, ns.BytesSent, ns.BytesReceived)
	}
	return fp
}

// TestSimulationIsDeterministic checks DESIGN.md §6's guarantee: the
// same configuration produces cycle-identical runs — clocks, scheduler
// decisions, retry counts, packet counts, everything.
func TestSimulationIsDeterministic(t *testing.T) {
	a := runDeterministicScenario(t)
	b := runDeterministicScenario(t)
	if a != b {
		t.Fatalf("two identical runs diverged:\n  %s\n  %s", a, b)
	}
}

// TestSixteenNodeScale drives a 16-node mesh ring (hops up to 6) to
// exercise the windowed lockstep and mesh routing at a size well beyond
// the paper's 4-node prototype.
func TestSixteenNodeScale(t *testing.T) {
	const nodes = 16
	c := cluster.New(cluster.Config{
		Nodes:   nodes,
		Machine: machine.Config{RAMFrames: 64},
		NIC:     nic.Config{NIPTPages: 8},
	})
	defer c.Shutdown()

	errs := make([]error, nodes)
	for i := 0; i < nodes; i++ {
		dst := (i + 5) % nodes // non-neighbor destinations: multi-hop routes
		if err := udmalib.MapSendWindow(c.NICs[i], 0, dst, []uint32{40}); err != nil {
			t.Fatal(err)
		}
		i := i
		c.Nodes[i].Kernel.Spawn(fmt.Sprintf("s%d", i), func(p *kernel.Proc) {
			d, err := udmalib.Open(p, c.NICs[i], true)
			if err != nil {
				errs[i] = err
				return
			}
			va, _ := p.Alloc(addr.PageSize)
			p.WriteBuf(va, workload.Payload(4096, byte(i+1)))
			errs[i] = d.Send(va, 0, 4096)
		})
	}
	if err := c.Run(2_000_000_000); err != nil {
		t.Fatal(err)
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	for i := 0; i < nodes; i++ {
		src := (i - 5 + nodes) % nodes
		want := workload.Payload(4096, byte(src+1))
		got, err := c.Nodes[i].RAM.Read(addr.FrameAddr(40), 4096)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("node %d: payload from %d corrupted at %d", i, src, j)
			}
		}
	}
}
