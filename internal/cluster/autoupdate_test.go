package cluster_test

import (
	"testing"

	"shrimp/internal/addr"
	"shrimp/internal/cluster"
	"shrimp/internal/kernel"
	"shrimp/internal/nic"
	"shrimp/internal/udmalib"
)

// TestAutomaticUpdateEndToEnd exercises SHRIMP's second transfer
// strategy: after MapAutoUpdate, ordinary stores to the exported page
// are snooped by the NIC and appear in the remote page with no
// initiation sequence at all.
func TestAutomaticUpdateEndToEnd(t *testing.T) {
	c := cluster.New(cluster.Config{Nodes: 2, NIC: nic.Config{NIPTPages: 16}})
	defer c.Shutdown()

	recvReady := make(chan []uint32, 1)
	var recvWord, recvWord2 uint32
	var recvErr, sendErr error

	c.Nodes[0].Kernel.Spawn("recv", func(p *kernel.Proc) {
		va, _ := p.Alloc(addr.PageSize)
		pfns, err := udmalib.ExportBuffer(c.Nodes[0].Kernel, p, va, 1)
		if err != nil {
			recvErr = err
			return
		}
		recvReady <- pfns
		// Poll for the sentinel the sender's LAST store writes.
		for {
			v, err := p.Load(va + 256)
			if err != nil {
				recvErr = err
				return
			}
			if v == 0xF1A5F1A5 {
				break
			}
			p.Compute(200)
		}
		recvWord, _ = p.Load(va)
		recvWord2, _ = p.Load(va + 4)
	})

	c.Nodes[1].Kernel.Spawn("send", func(p *kernel.Proc) {
		pfns := waitChan(p, recvReady)
		if err := udmalib.MapSendWindow(c.NICs[1], 3, 0, pfns); err != nil {
			sendErr = err
			return
		}
		src, _ := p.Alloc(addr.PageSize)
		if err := p.MapAutoUpdate(c.NICs[1], src, 1, 3); err != nil {
			sendErr = err
			return
		}
		// Plain stores; no STORE/LOAD initiation sequence anywhere.
		p.Store(src, 0xAAAA5555)
		p.Store(src+4, 0x12345678)
		p.Store(src+256, 0xF1A5F1A5) // non-contiguous: flushes the pair
		if err := p.UnmapAutoUpdate(src); err != nil {
			sendErr = err
		}
	})

	if err := c.Run(1_000_000_000); err != nil {
		t.Fatal(err)
	}
	if sendErr != nil {
		t.Fatalf("sender: %v", sendErr)
	}
	if recvErr != nil {
		t.Fatalf("receiver: %v", recvErr)
	}
	if recvWord != 0xAAAA5555 || recvWord2 != 0x12345678 {
		t.Fatalf("remote words = %#x, %#x", recvWord, recvWord2)
	}
	st := c.NICs[1].Stats()
	if st.AutoWords != 3 {
		t.Fatalf("AutoWords = %d, want 3", st.AutoWords)
	}
	if st.AutoPackets < 2 {
		t.Fatalf("AutoPackets = %d, want >= 2 (gap forces a flush)", st.AutoPackets)
	}
}

func TestAutoUpdateMappingErrors(t *testing.T) {
	c := cluster.New(cluster.Config{Nodes: 1, NIC: nic.Config{NIPTPages: 4}})
	defer c.Shutdown()
	var errs []error
	c.Nodes[0].Kernel.Spawn("p", func(p *kernel.Proc) {
		va, _ := p.Alloc(2 * addr.PageSize)
		errs = append(errs, p.MapAutoUpdate(nil, va, 1, 0))                // nil sink
		errs = append(errs, p.MapAutoUpdate(c.NICs[0], va+12, 1, 0))       // misaligned
		errs = append(errs, p.MapAutoUpdate(c.NICs[0], va, 0, 0))          // zero pages
		errs = append(errs, p.MapAutoUpdate(c.NICs[0], 0x00F0_0000, 1, 0)) // unmapped page
		errs = append(errs, p.UnmapAutoUpdate(va))                         // nothing mapped there
		// A valid mapping, then an overlapping one.
		if err := p.MapAutoUpdate(c.NICs[0], va, 2, 0); err != nil {
			t.Errorf("valid MapAutoUpdate failed: %v", err)
		}
		errs = append(errs, p.MapAutoUpdate(c.NICs[0], va+addr.PageSize, 1, 2))
	})
	if err := c.Nodes[0].Kernel.Run(1_000_000_000); err != nil {
		t.Fatal(err)
	}
	for i, err := range errs {
		if err == nil {
			t.Errorf("invalid MapAutoUpdate case %d succeeded", i)
		}
	}
}

func TestAutoUpdatePagesArePinned(t *testing.T) {
	c := cluster.New(cluster.Config{Nodes: 1, NIC: nic.Config{NIPTPages: 4}})
	defer c.Shutdown()
	var before, during, after int
	c.Nodes[0].Kernel.Spawn("p", func(p *kernel.Proc) {
		va, _ := p.Alloc(addr.PageSize)
		before = c.Nodes[0].Kernel.FreeFrames()
		p.MapAutoUpdate(c.NICs[0], va, 1, 0)
		during = int(c.Nodes[0].Kernel.Stats().Pins)
		p.UnmapAutoUpdate(va)
		after = int(c.Nodes[0].Kernel.Stats().Unpins)
	})
	if err := c.Nodes[0].Kernel.Run(1_000_000_000); err != nil {
		t.Fatal(err)
	}
	if during != 1 || after != 1 {
		t.Fatalf("pins=%d unpins=%d, want 1,1", during, after)
	}
	_ = before
}
