package cluster_test

import (
	"testing"

	"shrimp/internal/addr"
	"shrimp/internal/cluster"
	"shrimp/internal/interconnect"
	"shrimp/internal/kernel"
	"shrimp/internal/nic"
	"shrimp/internal/udmalib"
)

// TestClusterTopologyPlumbing checks that the cluster hands the declared
// topology through to the backplane verbatim: a torus config yields a
// torus fabric, and the zero value still means "near-square mesh".
func TestClusterTopologyPlumbing(t *testing.T) {
	c := cluster.New(cluster.Config{
		Nodes:    8,
		Topology: interconnect.Torus(8),
		NIC:      nic.Config{NIPTPages: 16},
	})
	defer c.Shutdown()
	topo := c.Backplane.Topology()
	if topo.Kind != interconnect.KindTorus || topo.Nodes != 8 {
		t.Fatalf("backplane topology = %+v, want 8-node torus", topo)
	}

	d := cluster.New(cluster.Config{Nodes: 5, NIC: nic.Config{NIPTPages: 16}})
	defer d.Shutdown()
	if got := d.Backplane.Topology(); got.Kind != interconnect.KindMesh || got.Nodes != 5 {
		t.Fatalf("default topology = %+v, want 5-node mesh", got)
	}
}

// TestClusterTopologyNodeMismatchPanics: declaring a fabric sized for a
// different node count than the cluster must be a construction error,
// not a silent reshape.
func TestClusterTopologyNodeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("cluster.New accepted Topology.Nodes=4 with Nodes=8")
		}
	}()
	cluster.New(cluster.Config{
		Nodes:    8,
		Topology: interconnect.Mesh(4),
		NIC:      nic.Config{NIPTPages: 16},
	})
}

// TestLimitBoundedRunFlushesMail drives a cluster into its Run limit
// while a send from the final window is still parked in the deferred
// mailboxes, and checks the limit path flushes it: after Run returns,
// MailPending is false and the packet is visible in the backplane
// ledger even though no one ever went idle.
func TestLimitBoundedRunFlushesMail(t *testing.T) {
	c := cluster.New(cluster.Config{
		Nodes:  2,
		Window: 2000,
		NIC:    nic.Config{NIPTPages: 16},
	})
	defer c.Shutdown()

	const msgBytes = addr.PageSize
	recvReady := make(chan []uint32, 1)
	var recvErr, sendErr error

	c.Nodes[0].Kernel.Spawn("recv", func(p *kernel.Proc) {
		va, err := p.Alloc(msgBytes)
		if err != nil {
			recvErr = err
			return
		}
		pfns, err := udmalib.ExportBuffer(c.Nodes[0].Kernel, p, va, 1)
		if err != nil {
			recvErr = err
			return
		}
		recvReady <- pfns
		for { // poll forever: the cluster never goes idle
			p.Compute(1000)
		}
	})
	c.Nodes[1].Kernel.Spawn("send", func(p *kernel.Proc) {
		pfns := waitChan(p, recvReady)
		if err := udmalib.MapSendWindow(c.NICs[1], 0, 0, pfns); err != nil {
			sendErr = err
			return
		}
		d, err := udmalib.Open(p, c.NICs[1], true)
		if err != nil {
			sendErr = err
			return
		}
		va, _ := p.Alloc(msgBytes)
		if err := d.Send(va, udmalib.WindowOff(0, 0), msgBytes); err != nil {
			sendErr = err
			return
		}
		for {
			p.Compute(1000)
		}
	})

	// Low enough that the spinners are still going, high enough that the
	// send has been issued (first windows cover setup + the send).
	if err := c.Run(400_000); err != nil {
		t.Fatalf("cluster run: %v", err)
	}
	if sendErr != nil || recvErr != nil {
		t.Fatalf("procs: send=%v recv=%v", sendErr, recvErr)
	}
	if c.Backplane.MailPending() {
		t.Fatalf("limit-bounded Run left deferred mail parked")
	}
	if pkts, _, _, _ := c.Backplane.Stats(); pkts == 0 {
		t.Fatalf("backplane ledger empty after limit flush")
	}
}
