package cluster_test

import (
	"fmt"
	"testing"

	"shrimp/internal/addr"
	"shrimp/internal/cluster"
	"shrimp/internal/kernel"
	"shrimp/internal/machine"
	"shrimp/internal/nic"
	"shrimp/internal/telemetry"
	"shrimp/internal/udmalib"
	"shrimp/internal/workload"
)

// runObservedScenario runs the same fixed multi-node workload as
// determinism_test.go with an optional telemetry registry attached, and
// returns (fingerprint of all observable final state, registry).
func runObservedScenario(t *testing.T, reg *telemetry.Registry) string {
	t.Helper()
	const nodes = 3
	c := cluster.New(cluster.Config{
		Nodes:   nodes,
		Machine: machine.Config{RAMFrames: 64, Kernel: kernel.Config{Quantum: 1500}},
		NIC:     nic.Config{NIPTPages: 8},
		Metrics: reg,
	})
	defer c.Shutdown()

	for i := 0; i < nodes; i++ {
		dst := (i + 1) % nodes
		if err := udmalib.MapSendWindow(c.NICs[i], 0, dst, []uint32{40}); err != nil {
			t.Fatal(err)
		}
		i := i
		c.Nodes[i].Kernel.Spawn("sender", func(p *kernel.Proc) {
			d, err := udmalib.Open(p, c.NICs[i], true)
			if err != nil {
				return
			}
			va, _ := p.Alloc(addr.PageSize)
			p.WriteBuf(va, workload.Payload(1024, byte(i+1)))
			for m := 0; m < 12; m++ {
				if d.Send(va, 0, 1024) != nil {
					return
				}
			}
		})
		c.Nodes[i].Kernel.Spawn("burner", workload.Burner(700, 200_000))
	}
	if err := c.Run(1_000_000_000); err != nil {
		t.Fatal(err)
	}
	c.PublishRollup()

	fp := ""
	for i := 0; i < nodes; i++ {
		ks := c.Nodes[i].Kernel.Stats()
		ns := c.NICs[i].Stats()
		bs := c.Nodes[i].Bus.Stats()
		fp += fmt.Sprintf("n%d clock=%d ctx=%d inv=%d pf=%d sent=%d recv=%d bursts=%d wait=%d|",
			i, c.Nodes[i].Clock.Now(), ks.ContextSwitches, ks.Invals,
			ks.PageFaults, ns.BytesSent, ns.BytesReceived,
			bs.Bursts, bs.WaitCycles)
	}
	return fp
}

// TestTelemetryIsPureObserver checks the central design guarantee of
// internal/telemetry: attaching a registry to every layer of every node
// must not change the simulation in any observable way. The same-seed
// run with telemetry enabled and with it disabled must produce
// byte-identical final state — clocks, scheduler decisions, retry
// counts, bus arbitration, packet counts.
func TestTelemetryIsPureObserver(t *testing.T) {
	plain := runObservedScenario(t, nil)
	reg := telemetry.New()
	observed := runObservedScenario(t, reg)
	if plain != observed {
		t.Fatalf("telemetry perturbed the simulation:\n  off: %s\n  on:  %s", plain, observed)
	}

	// The observed run must also have actually recorded something, or
	// the test proves nothing.
	snap := reg.Snapshot()
	if len(snap.Counters) == 0 || len(snap.Histograms) == 0 {
		t.Fatalf("observed run recorded no telemetry (counters=%d hists=%d)",
			len(snap.Counters), len(snap.Histograms))
	}
	if c, ok := snap.Counter("nic_packets_sent{node=0}"); !ok || c.Value == 0 {
		t.Fatalf("nic_packets_sent{node=0} missing or zero: %+v", snap.Counters)
	}
	if h, ok := snap.Hist("udma_xfer_latency_cycles{node=0}"); !ok || h.Count == 0 || h.P50 <= 0 {
		t.Fatalf("udma_xfer_latency_cycles{node=0} missing or empty")
	}

	// And the telemetry itself is deterministic: a second observed run
	// yields an identical snapshot.
	reg2 := telemetry.New()
	runObservedScenario(t, reg2)
	if fmt.Sprintf("%+v", reg.Snapshot()) != fmt.Sprintf("%+v", reg2.Snapshot()) {
		t.Fatal("two identical observed runs produced different telemetry snapshots")
	}
}
