package cluster

import (
	"errors"
	"math"

	"shrimp/internal/sim"
)

// CrashPlan is the node crash–restart fault model: whole-node failures
// on a seeded schedule over simulated time, composing with the wire's
// FaultPlan and the device-level FaultInject. Crash times are drawn
// from an exponential distribution with mean MTBF (the classic
// availability model); each crash picks a uniform node, powers it off
// for MTTR cycles, then reboots it.
//
// Determinism: the plan is applied only at lockstep barriers, after
// Backplane.Flush and before any worker runs — the same publication
// point as every other cross-node control action — and all randomness
// flows from Seed through a private RNG that no simulation path shares.
// An armed plan whose first crash lies beyond the run is therefore
// bit-identical to no plan at all, which is exactly what e17's
// "ample MTTR == no-crash" fingerprint check pins down.
type CrashPlan struct {
	// Seed roots the crash schedule's RNG stream.
	Seed uint64
	// MTBF is the mean time between crashes in cycles (exponential
	// inter-crash gaps). Zero disables the plan.
	MTBF sim.Cycles
	// MTTR is how long a crashed node stays down before rebooting
	// (default 100_000 cycles when the plan is enabled).
	MTTR sim.Cycles
	// FirstAt offsets the whole schedule: no crash fires before it.
	// Setting it past the run's span arms the machinery without ever
	// firing — the no-crash-equality control.
	FirstAt sim.Cycles
	// MaxCrashes caps the total crashes fired. Zero = unlimited.
	MaxCrashes int
}

// Enabled reports whether the plan can ever fire.
func (p CrashPlan) Enabled() bool { return p.MTBF > 0 }

// CrashEvent records one crash–reboot cycle for availability readouts.
// DownAt is the barrier time the crash took effect — the scheduled draw
// may be earlier when the cluster skipped a quiet stretch, but the node
// was demonstrably alive until this barrier. UpAt is zero while the
// node is still down.
type CrashEvent struct {
	Node   int
	DownAt sim.Cycles
	UpAt   sim.Cycles
}

// CrashStats aggregates the plan's outcomes.
type CrashStats struct {
	// Crashes is the number of crash events fired.
	Crashes uint64
	// DowntimeCycles sums each node's actual down span (DownAt→UpAt;
	// open spans are not included until the reboot fires).
	DowntimeCycles sim.Cycles
	// RecoveryLagCycles sums, over completed reboots, how far past the
	// scheduled MTTR expiry the barrier that performed the reboot was —
	// the orchestration latency on top of the configured repair time.
	RecoveryLagCycles sim.Cycles
}

// errNodeCrash is the machine-check reason handed to the kernel.
var errNodeCrash = errors.New("cluster: node crashed (chaos plan)")

// crashState is the running schedule.
type crashState struct {
	plan      CrashPlan
	rng       *sim.RNG
	nextAt    sim.Cycles
	fired     int
	downUntil []sim.Cycles // 0 = up; else scheduled reboot time
	events    []CrashEvent
	open      []int // per node: index+1 into events of the open span, 0 = none
	// freshBoot counts reboots fired at the latest barrier that no driver
	// has had a publish round to observe yet. While nonzero the cluster
	// refuses to report AllIdle: the reboot may be the only thing left
	// (every process killed by a whole-cluster outage), and draining now
	// would end the run before the driver can respawn the node's work.
	freshBoot int
	stats     CrashStats
}

func newCrashState(p CrashPlan, nodes int) *crashState {
	if p.MTTR <= 0 {
		p.MTTR = 100_000
	}
	cs := &crashState{
		plan:      p,
		rng:       sim.NewRNG(p.Seed ^ 0xC7A5_4_9E57A27),
		downUntil: make([]sim.Cycles, nodes),
		open:      make([]int, nodes),
	}
	cs.nextAt = p.FirstAt + cs.expGap()
	return cs
}

// expGap draws one exponential inter-crash gap (mean MTBF, min 1).
func (cs *crashState) expGap() sim.Cycles {
	g := sim.Cycles(-math.Log(1-cs.rng.Float64()) * float64(cs.plan.MTBF))
	if g < 1 {
		g = 1
	}
	return g
}

// applyCrashReboot runs the schedule up to the barrier time. Called by
// Step after Backplane.Flush and before any worker runs; reboots fire
// before new crashes so a node whose MTTR expired this barrier is up
// before the next crash draw can pick it again.
func (c *Cluster) applyCrashReboot() {
	cs := c.crash
	if cs == nil {
		return
	}
	now := c.MinNow()
	cs.freshBoot = 0 // last barrier's reboots have had their publish round
	for i := range cs.downUntil {
		if cs.downUntil[i] != 0 && now >= cs.downUntil[i] {
			c.rebootNode(i, now)
		}
	}
	for cs.nextAt <= now && (cs.plan.MaxCrashes == 0 || cs.fired < cs.plan.MaxCrashes) {
		node := cs.rng.Intn(len(c.Nodes))
		cs.nextAt += cs.expGap()
		if cs.downUntil[node] != 0 {
			continue // already down; the draw is consumed either way
		}
		c.crashNode(node, now)
	}
}

// crashNode powers node i off: the backplane drops its links, the NIC
// wipes its volatile state into the crash ledgers, and the kernel
// machine-checks and kills every process.
func (c *Cluster) crashNode(i int, now sim.Cycles) {
	cs := c.crash
	cs.fired++
	cs.stats.Crashes++
	until := now + cs.plan.MTTR
	if until <= now {
		until = now + 1
	}
	cs.downUntil[i] = until
	cs.events = append(cs.events, CrashEvent{Node: i, DownAt: now})
	cs.open[i] = len(cs.events)
	c.Backplane.SetNodeDown(i, true)
	c.NICs[i].Crash()
	c.Nodes[i].Kernel.Crash(errNodeCrash)
}

// rebootNode powers node i back on and closes its crash event.
func (c *Cluster) rebootNode(i int, now sim.Cycles) {
	cs := c.crash
	cs.freshBoot++
	cs.downUntil[i] = 0
	c.Backplane.SetNodeDown(i, false)
	c.NICs[i].Reboot()
	c.Nodes[i].Kernel.Reboot()
	if idx := cs.open[i]; idx != 0 {
		ev := &cs.events[idx-1]
		ev.UpAt = now
		cs.open[i] = 0
		cs.stats.DowntimeCycles += now - ev.DownAt
		scheduled := ev.DownAt + cs.plan.MTTR
		if now > scheduled {
			cs.stats.RecoveryLagCycles += now - scheduled
		}
	}
}

// NodeDown reports whether node i is currently crashed.
func (c *Cluster) NodeDown(i int) bool {
	return c.crash != nil && c.crash.downUntil[i] != 0
}

// CrashEvents returns a copy of the crash–reboot record so far (open
// spans have UpAt == 0).
func (c *Cluster) CrashEvents() []CrashEvent {
	if c.crash == nil {
		return nil
	}
	out := make([]CrashEvent, len(c.crash.events))
	copy(out, c.crash.events)
	return out
}

// CrashStats returns the plan's aggregate outcomes.
func (c *Cluster) CrashStats() CrashStats {
	if c.crash == nil {
		return CrashStats{}
	}
	return c.crash.stats
}
