// Package cluster assembles a multi-node SHRIMP machine: N nodes, each
// with its own clock and kernel, a network interface per node, and one
// routing backplane.
//
// Execution model: every node simulates on its own clock. Cluster.Run
// drives the kernels in windowed lockstep — each node runs until its
// local clock reaches a global horizon, then the horizon advances. A
// packet launched in one window is therefore visible to its receiver no
// later than the next window, bounding cross-node causality error by
// the window size (default 10k cycles ≈ 170 µs; tighten for latency
// experiments). This keeps every node's CPU concurrently "running" in
// simulated time, which a single shared clock cannot do with
// coroutine-style processes.
//
// The lockstep windows are also the unit of host parallelism
// (Config.Workers): the backplane runs in deferred-mailbox mode, so a
// node's inbound packets for a window are fully determined before the
// window starts — Step flushes all mailboxes at the barrier, then runs
// each node's kernel+clock on a worker goroutine. Nothing a node does
// mid-window can touch another node's clock or event queue, and the
// barrier merge orders deliveries by (arrival, sender, sequence), so
// the simulation is bit-identical at every worker count (the
// conservative parallel discrete-event design; see DESIGN.md §11).
package cluster

import (
	"errors"
	"fmt"
	"strconv"

	"shrimp/internal/device"
	"shrimp/internal/interconnect"
	"shrimp/internal/kernel"
	"shrimp/internal/machine"
	"shrimp/internal/nic"
	"shrimp/internal/sim"
	"shrimp/internal/sweep"
	"shrimp/internal/telemetry"
)

// Config describes a cluster.
type Config struct {
	// Nodes is the node count (the paper's prototype had four).
	Nodes int
	// Machine configures each node (Clock is ignored: every node gets
	// its own).
	Machine machine.Config
	// NIC configures each node's network interface.
	NIC nic.Config
	// Window is the lockstep horizon step in cycles (default 10_000).
	Window sim.Cycles

	// Topology declares the routed fabric shape (mesh or torus), the
	// router-grid width, and the per-link capacity. The zero value is a
	// near-square mesh over Nodes with links at the host-interface rate
	// — the historical backplane. Topology.Nodes may be left zero (it
	// is filled from Nodes); setting it to anything else is a wiring
	// panic.
	Topology interconnect.Topology

	// Workers is the number of host goroutines that run node windows in
	// parallel (0 or 1 = serial, today's behavior). Any value produces
	// bit-identical simulations: cross-node packets sit in per-sender
	// mailboxes until the next barrier, so worker scheduling never
	// reorders a simulated event. Values above the node count buy
	// nothing. Note that cluster drivers which poke node state from the
	// test goroutine *between* Step calls are fine at any Workers, but
	// drivers that share host state across node processes mid-window
	// (e.g. a Go channel between processes on different nodes) are only
	// safe at Workers <= 1.
	Workers int

	// FaultInject wraps every node's NIC in a device.Faulty so the
	// fault-recovery experiments can exercise the error paths under
	// cluster traffic. Each node gets its own deterministic RNG derived
	// from FaultSeed and the node ID; CheckTransfer rejects with
	// probability FaultRejectRate and each DMA read/write fails with
	// probability FaultFailRate.
	FaultInject     bool
	FaultSeed       uint64
	FaultRejectRate float64
	FaultFailRate   float64
	// FaultEveryNth arms device.Faulty's deterministic periodic mode on
	// every wrapped NIC (seeded from FaultSeed and the node ID) instead
	// of hand-placed schedules: every Nth DMA completion fails. Zero
	// leaves the periodic channel off. Requires FaultInject.
	FaultEveryNth int

	// Fault perturbs the backplane itself: drops, duplicates, late
	// deliveries, corruption and link flaps, all derived from Fault.Seed
	// (see interconnect.FaultPlan). Enable NIC.Reliability alongside it
	// or packets will be silently lost.
	Fault interconnect.FaultPlan

	// Crash is the node crash–restart schedule (crashplan.go): seeded
	// whole-node failures applied at lockstep barriers, each wiping the
	// node's NIC and kernel state for MTTR cycles before a reboot.
	// Enable NIC.Reliability alongside it or in-flight packets toward a
	// down node are silently lost; with it, peers observe the crash as
	// a retry-cap DeliveryError.
	Crash CrashPlan

	// Metrics attaches a telemetry registry to every node (bus, DMA
	// engine, UDMA controller, kernel, NIC), each under its node=<id>
	// label. Nil leaves all instruments as free no-ops. Telemetry is a
	// pure observer: enabling it never changes simulated time, so runs
	// with and without it are byte-identical.
	Metrics *telemetry.Registry
}

// Cluster is the assembled machine.
type Cluster struct {
	Nodes     []*machine.Node
	NICs      []*nic.Interface
	Backplane *interconnect.Backplane
	// Faulty holds each node's injection wrapper when Config.FaultInject
	// is set (nil entries otherwise). The wrapper, not the raw NIC, is
	// what the node's device map decodes — use Dev to address the NIC
	// from udmalib.
	Faulty []*device.Faulty

	window  sim.Cycles
	workers int
	metrics *telemetry.Registry

	// Parallel-window machinery, allocated once at New so a steady-state
	// barrier round allocates nothing: the persistent worker pool, the
	// per-node scratch for clock snapshots / per-node horizons / window
	// results, and the prebuilt fan-out closure.
	pool     *sweep.Pool
	nows     []sim.Cycles
	horizons []sim.Cycles
	stepRes  []stepResult
	stepFn   func(int)

	// stepCap bounds per-link horizon extension. Run sets it to the run
	// limit so a lookahead-extended node never simulates past the time
	// the caller asked for; direct Step callers get sim.Forever (the
	// extension is still bounded by the other clocks plus one flight).
	stepCap sim.Cycles

	// crash is the running crash–restart schedule (nil = no plan).
	crash *crashState

	rounds uint64 // barrier rounds executed (Step calls)
}

// stepResult is one node's window outcome, written into the
// preallocated stepRes slot by the worker that ran the node.
type stepResult struct {
	moved bool
	err   error
}

// Dev returns the device attached to node i's proxy pages: the fault
// wrapper when injection is on, the raw NIC otherwise. udmalib.Open and
// MapDevice resolve devices by identity, so callers must use this
// handle rather than NICs[i] when FaultInject is set.
func (c *Cluster) Dev(i int) device.Device {
	if c.Faulty[i] != nil {
		return c.Faulty[i]
	}
	return c.NICs[i]
}

// New builds and wires a cluster. The NIC occupies device-proxy pages
// starting at 0 on every node.
func New(cfg Config) *Cluster {
	if cfg.Nodes <= 0 {
		panic(fmt.Sprintf("cluster: %d nodes", cfg.Nodes))
	}
	costs := cfg.Machine.Costs
	if costs == nil {
		costs = machine.SHRIMP1996()
	}
	window := cfg.Window
	if window == 0 {
		window = 10_000
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	topo := cfg.Topology
	if topo.Nodes == 0 {
		topo.Nodes = cfg.Nodes
	} else if topo.Nodes != cfg.Nodes {
		panic(fmt.Sprintf("cluster: topology declares %d nodes but Config.Nodes is %d",
			topo.Nodes, cfg.Nodes))
	}
	c := &Cluster{
		Backplane: interconnect.New(costs, topo),
		window:    window,
		workers:   workers,
		metrics:   cfg.Metrics,
	}
	// Mailbox mode even at Workers=1, so the simulated schedule is the
	// same at every worker count (serial is the reference, not a
	// different simulation).
	c.Backplane.SetDeferred(true)
	if cfg.Fault.Enabled() {
		c.Backplane.SetFaultPlan(cfg.Fault)
	}
	if cfg.Crash.Enabled() {
		c.crash = newCrashState(cfg.Crash, cfg.Nodes)
	}
	for i := 0; i < cfg.Nodes; i++ {
		mcfg := cfg.Machine
		mcfg.Costs = costs
		mcfg.Clock = nil // per-node clock
		mcfg.Metrics = cfg.Metrics
		node := machine.New(i, mcfg)
		iface := nic.New(i, node.Clock, costs, node.RAM, node.Bus, c.Backplane, cfg.NIC)
		iface.SetMetrics(node.Metrics)
		var faulty *device.Faulty
		var dev device.Device = iface
		if cfg.FaultInject {
			faulty = device.NewFaulty(iface)
			// Per-node RNG stream: same cluster seed, decorrelated by
			// node ID so nodes do not fault in lockstep.
			faulty.InjectRates(sim.NewRNG(cfg.FaultSeed^(uint64(i+1)*0x9E3779B97F4A7C15)),
				cfg.FaultRejectRate, cfg.FaultFailRate)
			if cfg.FaultEveryNth > 0 {
				faulty.InjectEveryNth(cfg.FaultSeed^uint64(i+1), 0, cfg.FaultEveryNth)
			}
			dev = faulty
		}
		node.AttachDevice(dev, 0)
		c.Nodes = append(c.Nodes, node)
		c.NICs = append(c.NICs, iface)
		c.Faulty = append(c.Faulty, faulty)
	}
	c.pool = sweep.NewPool(workers)
	c.nows = make([]sim.Cycles, cfg.Nodes)
	c.horizons = make([]sim.Cycles, cfg.Nodes)
	c.stepRes = make([]stepResult, cfg.Nodes)
	c.stepFn = c.runNodeWindow
	c.stepCap = sim.Forever
	return c
}

// Run drives all nodes until every process on every node has exited or
// each node's clock has passed limit. Per-node deadlocks are expected
// while a node waits for a packet another node has not sent yet; the
// run ends with kernel.ErrDeadlock only when no node has anything left
// that could ever run (NextRunnable finds nothing).
//
// Each round re-bases the horizon on the furthest-behind clock —
// max(horizon, MinNow()) + window — instead of marching by fixed
// +window increments, so a processor that overshot its window (charge()
// yields only after the clock moves) is caught in one round rather than
// ceil(overshoot/window) empty barrier rounds. A round that still makes
// no progress skips the horizon straight to the next runnable time
// (earliest pending event, or an overshot clock), so sparse timelines —
// a retransmit timer 100k cycles out, a sleeping benchmark loop — cost
// one barrier instead of dozens of no-op flush/run/join cycles.
func (c *Cluster) Run(limit sim.Cycles) error {
	c.stepCap = limit
	defer func() { c.stepCap = sim.Forever }()
	var horizon sim.Cycles
	for {
		base := c.MinNow()
		if horizon > base {
			base = horizon
		}
		horizon = base + c.window
		if horizon < base || horizon > limit {
			horizon = limit
		}
		progress, err := c.Step(horizon)
		if err != nil {
			return err
		}
		if c.AllIdle() {
			c.DrainHardware()
			return nil
		}
		if horizon >= limit {
			// The final window's sends are still parked in the outbox
			// mailboxes. Flush them onto the receiver clocks (without
			// running anything — limit is reached) so callers reading
			// NIC/backplane state after a limit-bounded run see every
			// in-flight packet accounted for.
			c.Backplane.Flush()
			return nil
		}
		if !progress {
			next := c.NextRunnable(horizon)
			if next == sim.Forever {
				return kernel.ErrDeadlock
			}
			if next > horizon {
				horizon = next - c.window // re-based to next+window at loop top
			}
		}
	}
}

// NextRunnable returns the earliest simulated time after `after` at
// which any node could do something: the earliest scheduled event on
// any clock, or the clock of a live (non-exited) node that has overshot
// `after` and is waiting for the horizon to catch up. sim.Forever means
// nothing can ever run again — the cluster is deadlocked (deferred mail
// does not count: callers flush before asking).
func (c *Cluster) NextRunnable(after sim.Cycles) sim.Cycles {
	next := sim.Forever
	for _, n := range c.Nodes {
		if at, ok := n.Clock.NextEventAt(); ok && at < next {
			next = at
		}
		if !n.Kernel.AllExited() {
			if now := n.Clock.Now(); now > after && now < next {
				next = now
			}
		}
	}
	// A crashed node's scheduled reboot is a future runnable too: without
	// it, a chaos schedule that downs every node at one barrier (all
	// processes killed, no events anywhere) would read as a deadlock and
	// the reboot barrier would never be reached. Exited kernels coast
	// their clocks to the horizon, so skipping the horizon to downUntil
	// is enough to carry simulated time across a whole-cluster outage.
	if at := c.NextReboot(); at < next {
		next = at
	}
	// A reboot fired at the last barrier but not yet observed by any
	// driver publish round is runnable immediately: the driver's next
	// barrier respawns the node's work, so there is always a "next thing"
	// one window out even when no event is scheduled anywhere.
	if c.crash != nil && c.crash.freshBoot > 0 {
		if at := after + 1; at < next {
			next = at
		}
	}
	return next
}

// NextReboot returns the earliest pending reboot time across crashed
// nodes, or sim.Forever when no node is down (or no plan is armed).
func (c *Cluster) NextReboot() sim.Cycles {
	next := sim.Forever
	if c.crash == nil {
		return next
	}
	for _, du := range c.crash.downUntil {
		if du != 0 && du < next {
			next = du
		}
	}
	return next
}

// Rounds returns the number of barrier rounds (Step calls) executed so
// far — the denominator for per-window overhead accounting, and what
// the no-op-window regression tests pin down.
func (c *Cluster) Rounds() uint64 { return c.rounds }

// Step runs one lockstep window. It is the parallel barrier: first
// every deferred cross-node delivery from earlier windows is flushed
// onto the receiver clocks (deterministic merge, see interconnect.
// Flush), fixing each node's inbound events for the window; then every
// node's kernel runs until its local clock reaches horizon (exited
// nodes coast so their hardware events still fire), with up to
// Config.Workers nodes running concurrently. Mid-window a node touches
// only its own clock, kernel, RAM and the backplane's per-sender
// outbox shard, so worker scheduling cannot perturb the simulation.
//
// Step reports whether any node's clock moved — callers, like Run, end
// the simulation when a whole round makes no progress and no events
// are pending. Extracted from Run so external drivers (the simcheck
// runner) can interleave work — invariant audits, process kills —
// between windows, when no process is mid-instruction, no worker is
// running, and node state is consistent.
func (c *Cluster) Step(horizon sim.Cycles) (progress bool, err error) {
	c.rounds++
	c.Backplane.Flush()
	// Crash and reboot nodes at the barrier, after the flush (so mail
	// already launched toward the victim still merges onto its clock,
	// where the down guard swallows it into the crash ledger) and before
	// any worker runs — the schedule is a pure function of simulation
	// state, bit-identical at any worker count (crashplan.go).
	c.applyCrashReboot()
	// Reclaim idle reliability state at the barrier, after the flush and
	// before any worker runs: reclamation then observes barrier-consistent
	// quiescence on every board, keeping it — like every other cross-node
	// control action — bit-identical at any worker count (reclaim.go).
	for _, nic := range c.NICs {
		nic.ReclaimIdle()
	}
	c.computeHorizons(horizon)
	c.pool.Run(len(c.Nodes), c.stepFn)
	// Aggregate in node order so the reported error is deterministic.
	for i := range c.stepRes {
		if c.stepRes[i].moved {
			progress = true
		}
	}
	for i := range c.stepRes {
		if c.stepRes[i].err != nil {
			return progress, c.stepRes[i].err
		}
	}
	return progress, nil
}

// computeHorizons fills c.horizons with each node's window end: the
// global horizon, extended per node by the Chandy–Misra per-link bound
// — node i may run to min over senders j of (clock_j + LinkLookahead
// (j, i)) when that beats the global horizon, because no packet j
// launches this window can be timestamped for i any earlier (launch
// time ≥ clock_j, flight ≥ LinkLookahead). On large meshes this is what
// keeps a far corner of the machine from serializing on the slowest
// node: distance buys lookahead. The bound is computed at the barrier
// from barrier-visible clocks only, so it — and therefore the entire
// simulated schedule — is a pure function of simulation state,
// independent of worker count. stepCap (the Run limit) caps the
// extension so a bounded run never simulates past its limit.
func (c *Cluster) computeHorizons(base sim.Cycles) {
	for i, n := range c.Nodes {
		c.nows[i] = n.Clock.Now()
	}
	for i := range c.Nodes {
		bound := sim.Forever
		for j := range c.Nodes {
			if j == i {
				continue
			}
			b := c.nows[j] + c.Backplane.LinkLookahead(j, i)
			if b < c.nows[j] { // overflow: effectively unbounded
				b = sim.Forever
			}
			if b < bound {
				bound = b
			}
		}
		h := base
		if bound != sim.Forever && bound > c.stepCap {
			bound = c.stepCap
		}
		if bound != sim.Forever && bound > h {
			h = bound
		}
		c.horizons[i] = h
	}
}

// runNodeWindow runs node i's kernel+clock to its window horizon; it is
// the pool fan-out body, prebuilt at New so Step allocates nothing.
func (c *Cluster) runNodeWindow(i int) {
	n := c.Nodes[i]
	horizon := c.horizons[i]
	before := n.Clock.Now()
	err := n.Kernel.Run(horizon)
	if err != nil && !errors.Is(err, kernel.ErrDeadlock) {
		c.stepRes[i] = stepResult{err: fmt.Errorf("cluster: node %d: %w", n.ID, err)}
		return
	}
	if n.Kernel.AllExited() {
		// The node's software is done but its hardware may not
		// be: in-flight DMA completions launch packets, receive
		// DMAs land data other nodes are polling for. Let the
		// node's clock follow the horizon so those events fire.
		// Coasting over an empty event queue is not progress, though —
		// counting it as such would hide a stalled cluster behind one
		// exited node and defeat Run's no-op-window skip-ahead.
		at, ok := n.Clock.NextEventAt()
		n.Clock.AdvanceTo(horizon)
		c.stepRes[i] = stepResult{moved: ok && at <= horizon}
		return
	}
	c.stepRes[i] = stepResult{moved: n.Clock.Now() != before}
}

// Window returns the configured lockstep horizon step.
func (c *Cluster) Window() sim.Cycles { return c.window }

// DrainHardware fires every remaining scheduled event on every node
// (in-flight transfers, packets, receive DMAs, flush timers) once all
// software has exited. The nodes drain as one merged event loop: each
// round advances every clock to the globally-earliest pending event, so
// cross-node causality holds — a retransmit timer on one node cannot
// fire ahead of the ACK another node sends earlier in simulated time
// (a per-node RunUntilIdle sweep would run one node arbitrarily far
// ahead and make the reliability layer retransmit spuriously at drain).
// Each round first flushes the deferred mailboxes (an event fired
// during the drain may launch new packets, which park as mail until
// the next round). The drain itself is serial: it is not on the
// performance path, and the strict earliest-event-first order is what
// the reliability layer's timing proofs lean on.
func (c *Cluster) DrainHardware() {
	for {
		c.Backplane.Flush()
		next := sim.Forever
		for _, n := range c.Nodes {
			if at, ok := n.Clock.NextEventAt(); ok && at < next {
				next = at
			}
		}
		if next == sim.Forever {
			// No scheduled events anywhere and Flush just emptied the
			// mailboxes: nothing can ever fire again.
			return
		}
		for _, n := range c.Nodes {
			n.Clock.AdvanceTo(next)
		}
	}
}

// Shutdown kills all processes on all nodes and retires the worker
// pool. Stepping after Shutdown still works — the pool falls back to a
// serial loop — so teardown ordering is forgiving.
func (c *Cluster) Shutdown() {
	for _, n := range c.Nodes {
		n.Kernel.Shutdown()
	}
	c.pool.Close()
}

// MaxNow returns the furthest-ahead node clock — the cluster-wide
// elapsed time for aggregate-bandwidth arithmetic.
func (c *Cluster) MaxNow() sim.Cycles {
	var m sim.Cycles
	for _, n := range c.Nodes {
		if now := n.Clock.Now(); now > m {
			m = now
		}
	}
	return m
}

// MinNow returns the furthest-behind node clock — the base the next
// lockstep horizon is computed from.
func (c *Cluster) MinNow() sim.Cycles {
	m := sim.Forever
	for _, n := range c.Nodes {
		if now := n.Clock.Now(); now < m {
			m = now
		}
	}
	return m
}

// AllIdle reports whether every process on every node has exited. A
// crashed node awaiting its reboot is never idle — its driver will
// respawn work once the MTTR expires, so draining before the reboot
// barrier would end the run with offered work still unaccounted. The
// same holds for one barrier after the reboot fires (freshBoot): the
// driver observes down→up at its next publish round, which must happen
// before the run is allowed to drain.
func (c *Cluster) AllIdle() bool {
	if c.NextReboot() != sim.Forever {
		return false
	}
	if c.crash != nil && c.crash.freshBoot > 0 {
		return false
	}
	for _, n := range c.Nodes {
		if !kernelIdle(n) {
			return false
		}
	}
	return true
}

func kernelIdle(n *machine.Node) bool {
	// A node is idle for termination purposes when no process can ever
	// run again: the kernel reports all-exited via a zero-length Run.
	return n.Kernel.AllExited()
}

// PublishRollup folds per-node hardware counters into cluster-level
// telemetry: per-node clock gauges plus unlabeled cluster totals for
// packets, payload bytes and receive drops. Call it after a run (it
// reads hardware state, so mid-run calls capture a mid-run snapshot).
// No-op without an attached registry.
func (c *Cluster) PublishRollup() {
	if c.metrics == nil {
		return
	}
	var pktsSent, bytesSent, pktsRecv, bytesRecv, drops uint64
	var retrans, retransBytes, creditStalls, deliveryFails uint64
	var niptHits, niptMisses, niptEvict, niptRefill, reclaims uint64
	for i, n := range c.Nodes {
		c.Nodes[i].Metrics.Gauge("node_clock_cycles").Set(int64(n.Clock.Now()))
		s := c.NICs[i].Stats()
		pktsSent += s.PacketsSent
		bytesSent += s.BytesSent
		pktsRecv += s.PacketsReceived
		bytesRecv += s.BytesReceived
		drops += s.RecvDrops
		retrans += s.Retransmits
		retransBytes += s.RetransBytes
		creditStalls += s.CreditStalls
		deliveryFails += s.DeliveryFailures
		niptHits += s.NIPTHits
		niptMisses += s.NIPTMisses
		niptEvict += s.NIPTEvictions
		niptRefill += s.NIPTRefillCycles
		reclaims += s.SenderReclaims + s.ReceiverReclaims
	}
	root := c.metrics.Scope()
	root.Gauge("cluster_nodes").Set(int64(len(c.Nodes)))
	root.Gauge("cluster_max_cycles").Set(int64(c.MaxNow()))
	root.Gauge("cluster_packets_sent").Set(int64(pktsSent))
	root.Gauge("cluster_bytes_sent").Set(int64(bytesSent))
	root.Gauge("cluster_packets_recv").Set(int64(pktsRecv))
	root.Gauge("cluster_bytes_recv").Set(int64(bytesRecv))
	root.Gauge("cluster_recv_drops").Set(int64(drops))
	root.Gauge("cluster_retransmits").Set(int64(retrans))
	root.Gauge("cluster_retrans_bytes").Set(int64(retransBytes))
	root.Gauge("cluster_credit_stalls").Set(int64(creditStalls))
	root.Gauge("cluster_delivery_failures").Set(int64(deliveryFails))
	root.Gauge("cluster_nipt_hits").Set(int64(niptHits))
	root.Gauge("cluster_nipt_misses").Set(int64(niptMisses))
	root.Gauge("cluster_nipt_evictions").Set(int64(niptEvict))
	root.Gauge("cluster_nipt_refill_cycles").Set(int64(niptRefill))
	root.Gauge("cluster_rel_reclaims").Set(int64(reclaims))
	fs := c.Backplane.FaultStats()
	root.Gauge("cluster_wire_drops").Set(int64(fs.Drops + fs.FlapDrops))
	root.Gauge("cluster_wire_dups").Set(int64(fs.Dups))
	root.Gauge("cluster_wire_corrupts").Set(int64(fs.Corrupts))
	// Routed-fabric link telemetry: one busy-cycles counter and one
	// queue-depth gauge per directed link that carried traffic, under
	// link{src,dst} labels, plus cluster totals. Reading LinkStats is a
	// pure observation — runs with and without metrics stay
	// byte-identical.
	var linkBusy, linkWait, linkPkts, linkPeak uint64
	for _, ls := range c.Backplane.LinkStats() {
		linkBusy += ls.BusyCycles
		linkWait += ls.WaitCycles
		linkPkts += ls.Packets
		if ls.PeakQueue > linkPeak {
			linkPeak = ls.PeakQueue
		}
		scope := c.metrics.Scope(
			telemetry.L("src", strconv.Itoa(ls.From)),
			telemetry.L("dst", strconv.Itoa(ls.To)))
		ctr := scope.Counter("link_busy_cycles")
		ctr.Add(ls.BusyCycles - ctr.Value()) // counters are monotonic; publish the delta
		scope.Gauge("link_queue_depth").Set(int64(ls.PeakQueue))
	}
	root.Gauge("cluster_links_used").Set(int64(len(c.Backplane.LinkStats())))
	root.Gauge("cluster_link_busy_cycles").Set(int64(linkBusy))
	root.Gauge("cluster_link_wait_cycles").Set(int64(linkWait))
	root.Gauge("cluster_link_packets").Set(int64(linkPkts))
	root.Gauge("cluster_link_queue_peak").Set(int64(linkPeak))
	if c.crash != nil {
		var abandoned, crashDropped uint64
		for i := range c.NICs {
			s := c.NICs[i].Stats()
			abandoned += s.CrashAbandonedBytes
			crashDropped += s.CrashDropBytes
		}
		cs := c.crash.stats
		root.Gauge("cluster_crashes").Set(int64(cs.Crashes))
		root.Gauge("cluster_downtime_cycles").Set(int64(cs.DowntimeCycles))
		root.Gauge("cluster_recovery_lag_cycles").Set(int64(cs.RecoveryLagCycles))
		root.Gauge("cluster_crash_abandoned_bytes").Set(int64(abandoned))
		root.Gauge("cluster_crash_dropped_bytes").Set(int64(crashDropped + fs.CrashDroppedDataBytes))
	}
}

// AnyPending reports whether any node has scheduled events outstanding
// or any cross-node packet is parked in a backplane mailbox awaiting
// the next barrier flush.
func (c *Cluster) AnyPending() bool {
	for _, n := range c.Nodes {
		if n.Clock.Pending() > 0 {
			return true
		}
	}
	return c.Backplane.MailPending()
}
