// Package cluster assembles a multi-node SHRIMP machine: N nodes, each
// with its own clock and kernel, a network interface per node, and one
// routing backplane.
//
// Execution model: every node simulates on its own clock. Cluster.Run
// drives the kernels in windowed lockstep — each node runs until its
// local clock reaches a global horizon, then the horizon advances. A
// packet launched in one window is therefore visible to its receiver no
// later than the next window, bounding cross-node causality error by
// the window size (default 10k cycles ≈ 170 µs; tighten for latency
// experiments). This keeps every node's CPU concurrently "running" in
// simulated time, which a single shared clock cannot do with
// coroutine-style processes.
package cluster

import (
	"errors"
	"fmt"

	"shrimp/internal/interconnect"
	"shrimp/internal/kernel"
	"shrimp/internal/machine"
	"shrimp/internal/nic"
	"shrimp/internal/sim"
)

// Config describes a cluster.
type Config struct {
	// Nodes is the node count (the paper's prototype had four).
	Nodes int
	// Machine configures each node (Clock is ignored: every node gets
	// its own).
	Machine machine.Config
	// NIC configures each node's network interface.
	NIC nic.Config
	// Window is the lockstep horizon step in cycles (default 10_000).
	Window sim.Cycles
}

// Cluster is the assembled machine.
type Cluster struct {
	Nodes     []*machine.Node
	NICs      []*nic.Interface
	Backplane *interconnect.Backplane

	window sim.Cycles
}

// New builds and wires a cluster. The NIC occupies device-proxy pages
// starting at 0 on every node.
func New(cfg Config) *Cluster {
	if cfg.Nodes <= 0 {
		panic(fmt.Sprintf("cluster: %d nodes", cfg.Nodes))
	}
	costs := cfg.Machine.Costs
	if costs == nil {
		costs = machine.SHRIMP1996()
	}
	window := cfg.Window
	if window == 0 {
		window = 10_000
	}
	c := &Cluster{
		Backplane: interconnect.New(costs),
		window:    window,
	}
	for i := 0; i < cfg.Nodes; i++ {
		mcfg := cfg.Machine
		mcfg.Costs = costs
		mcfg.Clock = nil // per-node clock
		node := machine.New(i, mcfg)
		iface := nic.New(i, node.Clock, costs, node.RAM, node.Bus, c.Backplane, cfg.NIC)
		node.AttachDevice(iface, 0)
		c.Nodes = append(c.Nodes, node)
		c.NICs = append(c.NICs, iface)
	}
	return c
}

// Run drives all nodes until every process on every node has exited or
// each node's clock has passed limit. Per-node deadlocks are expected
// while a node waits for a packet another node has not sent yet; a
// whole round in which no node makes progress and none has pending
// events ends the run.
func (c *Cluster) Run(limit sim.Cycles) error {
	horizon := c.minNow() + c.window
	for {
		if horizon > limit {
			horizon = limit
		}
		progress := false
		for _, n := range c.Nodes {
			before := n.Clock.Now()
			err := n.Kernel.Run(horizon)
			if err != nil && !errors.Is(err, kernel.ErrDeadlock) {
				return fmt.Errorf("cluster: node %d: %w", n.ID, err)
			}
			if n.Kernel.AllExited() {
				// The node's software is done but its hardware may not
				// be: in-flight DMA completions launch packets, receive
				// DMAs land data other nodes are polling for. Let the
				// node's clock follow the horizon so those events fire.
				n.Clock.AdvanceTo(horizon)
			}
			if n.Clock.Now() != before {
				progress = true
			}
		}
		if c.allExitedOrIdle() {
			c.drainHardware()
			return nil
		}
		if horizon >= limit {
			return nil
		}
		if !progress && !c.anyPending() {
			return kernel.ErrDeadlock
		}
		horizon += c.window
	}
}

// drainHardware fires every remaining scheduled event on every node
// (in-flight transfers, packets, receive DMAs, flush timers) once all
// software has exited. Events fired on one node may schedule events on
// another, so sweep until the whole cluster is quiescent.
func (c *Cluster) drainHardware() {
	for {
		fired := 0
		for _, n := range c.Nodes {
			fired += n.Clock.RunUntilIdle()
		}
		if fired == 0 {
			return
		}
	}
}

// Shutdown kills all processes on all nodes.
func (c *Cluster) Shutdown() {
	for _, n := range c.Nodes {
		n.Kernel.Shutdown()
	}
}

// MaxNow returns the furthest-ahead node clock — the cluster-wide
// elapsed time for aggregate-bandwidth arithmetic.
func (c *Cluster) MaxNow() sim.Cycles {
	var m sim.Cycles
	for _, n := range c.Nodes {
		if now := n.Clock.Now(); now > m {
			m = now
		}
	}
	return m
}

func (c *Cluster) minNow() sim.Cycles {
	m := sim.Forever
	for _, n := range c.Nodes {
		if now := n.Clock.Now(); now < m {
			m = now
		}
	}
	return m
}

func (c *Cluster) allExitedOrIdle() bool {
	for _, n := range c.Nodes {
		if !kernelIdle(n) {
			return false
		}
	}
	return true
}

func kernelIdle(n *machine.Node) bool {
	// A node is idle for termination purposes when no process can ever
	// run again: the kernel reports all-exited via a zero-length Run.
	return n.Kernel.AllExited()
}

func (c *Cluster) anyPending() bool {
	for _, n := range c.Nodes {
		if n.Clock.Pending() > 0 {
			return true
		}
	}
	return false
}
