// Package simcheck is the deterministic simulation checker: it
// generates randomized multi-node scenarios from a seed — interleaved
// UDMA transfers, context switches, paging pressure, faulty-device
// injection, PIO traffic, process kills — and audits the paper's four
// kernel invariants (plus end-to-end byte conservation and monotonic
// simulated time) after every lockstep window. Because every source of
// nondeterminism flows from sim.RNG and the event clocks, any failure
// reproduces exactly from its seed:
//
//	go test ./internal/simcheck -run TestSimCheck -simcheck.seed=N
//
// The auditor observes only: it reads kernel frame tables, page tables
// and controller reference counts between windows (when no process is
// mid-instruction) and never advances a clock, so checked and
// unchecked runs are cycle-identical.
package simcheck

import (
	"fmt"
	"hash/fnv"
	"strings"

	"shrimp/internal/kernel"
	"shrimp/internal/sim"
	"shrimp/internal/sweep"
	"shrimp/internal/telemetry"
	"shrimp/internal/trace"
)

// Violation is one detected invariant breach.
type Violation struct {
	Node      int
	Step      int    // lockstep window index (-1: before/after stepping)
	Invariant string // "I1".."I4", "conservation", "memory", "refcount", ...
	Detail    string
}

func (v Violation) String() string {
	return fmt.Sprintf("node %d step %d: %s: %s", v.Node, v.Step, v.Invariant, v.Detail)
}

// Options tunes a checker run.
type Options struct {
	// Hooks deliberately break the kernel under test — the checker's own
	// tests use them to prove the auditor catches each violation class.
	Hooks kernel.TestHooks
	// Override mutates the seed-derived scenario configuration before
	// the cluster is built (bias tests toward specific pressure).
	Override func(*ScenarioConfig)
	// MaxViolations stops the run after this many findings (default 8);
	// one broken invariant tends to trip the auditor every window.
	MaxViolations int
	// Workers sets cluster.Config.Workers: how many host goroutines run
	// node windows in parallel. Any value yields the same fingerprint,
	// violations, metrics and traces as Workers=1 — the tentpole
	// invariant TestSimCheckWorkerEquivalence holds over seeds.
	Workers int
	// Metrics attaches a telemetry registry to the scenario's cluster
	// (nil = instruments off). Used by the parallel-determinism tests to
	// compare snapshots across worker counts.
	Metrics *telemetry.Registry
}

// Report is the outcome of one seeded run.
type Report struct {
	Seed       uint64
	Cfg        ScenarioConfig
	Steps      int // lockstep windows executed
	Violations []Violation
	// Trail is the event-ring slice of TrailNode captured at the first
	// violation — the compact repro context a builder reads first.
	Trail     []trace.Event
	TrailNode int
	// Fingerprint digests final clocks and hardware/kernel counters;
	// two runs of the same seed must produce the same fingerprint.
	Fingerprint uint64
	// TraceSummaries holds each node's trace.Summary at end of run —
	// per-kind lifetime event counts, compared across worker counts by
	// the parallel-determinism tests.
	TraceSummaries []string
}

// Failed reports whether any violation was detected.
func (r *Report) Failed() bool { return len(r.Violations) > 0 }

// ReproCommand is the one-command reproduction for this seed.
func (r *Report) ReproCommand() string {
	return fmt.Sprintf("go test ./internal/simcheck -run TestSimCheck -simcheck.seed=%d", r.Seed)
}

// String renders the report; for failures it includes every violation,
// the event trail and the repro command.
func (r *Report) String() string {
	var b strings.Builder
	if !r.Failed() {
		fmt.Fprintf(&b, "simcheck seed %d: ok (%d nodes, %d steps, fp %016x)",
			r.Seed, r.Cfg.Nodes, r.Steps, r.Fingerprint)
		return b.String()
	}
	fmt.Fprintf(&b, "simcheck seed %d: FAIL (%d violations in %d steps)\n",
		r.Seed, len(r.Violations), r.Steps)
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  %s\n", v)
	}
	if len(r.Trail) > 0 {
		fmt.Fprintf(&b, "trail (node %d, last %d events):\n", r.TrailNode, len(r.Trail))
		for _, e := range r.Trail {
			fmt.Fprintf(&b, "  %s\n", e)
		}
	}
	fmt.Fprintf(&b, "repro: %s", r.ReproCommand())
	return b.String()
}

// Run executes one seeded scenario under the online auditor and
// returns its report.
func Run(seed uint64, opts Options) *Report {
	if opts.MaxViolations <= 0 {
		opts.MaxViolations = 8
	}
	s := buildScenario(seed, opts)
	defer s.cl.Shutdown()

	var horizon sim.Cycles
	step := 0
	for ; ; step++ {
		// Re-base on the furthest-behind clock, mirroring cluster.Run:
		// an overshooting processor is caught up in one round instead of
		// ceil(overshoot/window) no-op windows (which used to eat into
		// the MaxSteps liveness budget doing nothing).
		base := s.cl.MinNow()
		if horizon > base {
			base = horizon
		}
		horizon = base + s.cfg.Window
		s.step = step
		s.runKills(step)
		s.publishControl()
		s.inStep = true
		progress, err := s.cl.Step(horizon)
		s.inStep = false
		s.collect()
		if err != nil {
			s.fail(0, "runtime", err.Error())
		}
		s.audit(step)
		if s.serve != nil {
			if err := s.serve.Err(); err != nil {
				s.fail(0, "serve-error", err.Error())
				break
			}
		}
		if s.capped() {
			break
		}
		if s.cl.AllIdle() {
			s.cl.DrainHardware()
			s.drained = true
			s.audit(step)
			break
		}
		s.maybeStopReceivers()
		if step >= s.cfg.MaxSteps {
			s.fail(0, "liveness", fmt.Sprintf("no completion after %d windows", step))
			break
		}
		if !progress {
			// Nothing ran and nothing is parked mid-flight: a round that
			// makes no progress is a deadlock exactly when no node has a
			// future event or overshot clock to wake to.
			next := s.cl.NextRunnable(horizon)
			if next == sim.Forever {
				s.fail(0, "liveness", "cluster deadlock: no progress and no pending events")
				break
			}
			if next > horizon {
				horizon = next - s.cfg.Window // re-based past next at loop top
			}
		}
	}
	s.finalVerify()

	summaries := make([]string, len(s.tracers))
	for i, tr := range s.tracers {
		summaries[i] = tr.Summary()
	}
	return &Report{
		Seed:           seed,
		Cfg:            s.cfg,
		Steps:          step + 1,
		Violations:     s.violations,
		Trail:          s.trail,
		TrailNode:      s.trailNode,
		Fingerprint:    s.fingerprint(),
		TraceSummaries: summaries,
	}
}

// Sweep runs count seeded scenarios (seeds first..first+count-1), up to
// workers at a time. Every run builds its own cluster, so runs share
// nothing and the parallelism is trivially safe; reports come back in
// seed order, so sweep output is byte-identical at any worker count.
// (opts.Workers parallelism *within* each run composes freely with
// this, but for throughput sweeps prefer one worker per seed.)
func Sweep(first uint64, count, workers int, opts Options) []*Report {
	return sweep.Run(count, workers, func(i int) *Report {
		return Run(first+uint64(i), opts)
	})
}

// fingerprint digests final simulated time and the counters of every
// layer; any divergence between two runs of one seed shows up here.
func (s *scenario) fingerprint() uint64 {
	h := fnv.New64a()
	for i, n := range s.cl.Nodes {
		fmt.Fprintf(h, "n%d clock=%d kstats=%+v ustats=%+v nic=%+v",
			i, n.Clock.Now(), n.Kernel.Stats(), n.UDMA.Stats(), s.cl.NICs[i].Stats())
		w, r := s.scratch[i].Counts()
		fmt.Fprintf(h, " scratch=%d/%d", w, r)
	}
	p, by, rp, rb := s.cl.Backplane.Stats()
	fmt.Fprintf(h, " net=%d/%d/%d/%d fault=%+v crash=%+v", p, by, rp, rb,
		s.cl.Backplane.FaultStats(), s.cl.CrashStats())
	return h.Sum64()
}
