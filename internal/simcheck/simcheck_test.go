package simcheck

import (
	"flag"
	"fmt"
	"runtime"
	"testing"

	"shrimp/internal/telemetry"
)

// seedFlag reruns exactly one seed — the one-command repro every
// failure report prints.
var seedFlag = flag.Uint64("simcheck.seed", 0, "run only this simcheck seed (0 = full sweep)")

// TestSimCheck sweeps randomized scenarios under the online auditor:
// 64 seeds in -short mode, 256 otherwise. With -simcheck.seed=N it runs
// only seed N, which is how a reported failure is reproduced.
func TestSimCheck(t *testing.T) {
	if *seedFlag != 0 {
		rep := Run(*seedFlag, Options{})
		t.Log(rep.String())
		if rep.Failed() {
			t.Fatalf("seed %d failed", rep.Seed)
		}
		return
	}
	seeds := 256
	if testing.Short() {
		seeds = 64
	}
	for _, rep := range Sweep(1, seeds, runtime.GOMAXPROCS(0), Options{}) {
		if rep.Failed() {
			t.Fatalf("\n%s", rep.String())
		}
	}
}

// lossyOverride forces the acceptance-criteria fault mix onto any
// scenario: multi-node, 10% drop, 2% corruption, duplicates and
// reordering delays, with the reliability sublayer armed.
func lossyOverride(cfg *ScenarioConfig) {
	if cfg.Nodes < 2 {
		cfg.Nodes = 2
	}
	cfg.Lossy = true
	cfg.DropRate = 0.10
	cfg.CorruptRate = 0.02
	cfg.DupRate = 0.02
	cfg.DelayRate = 0.10
}

// TestSimCheckLossySweep is the acceptance sweep for the reliable
// delivery layer: every seed runs multi-node traffic over a wire with
// 10% drop + 2% corruption + duplication + reordering, and the full
// auditor (invariants, final page verification, end-to-end byte
// conservation across retransmission) must stay silent — every
// transfer either completed byte-exact or failed with a typed error
// after the retry cap. A subset of seeds is run twice to prove the
// outcome and telemetry reproduce exactly.
func TestSimCheckLossySweep(t *testing.T) {
	seeds := 256
	if testing.Short() {
		seeds = 64
	}
	opts := Options{Override: lossyOverride}
	for _, rep := range Sweep(1, seeds, runtime.GOMAXPROCS(0), opts) {
		if rep.Failed() {
			t.Fatalf("\n%s", rep.String())
		}
		if rep.Seed%32 == 0 {
			again := Run(rep.Seed, opts)
			if again.Fingerprint != rep.Fingerprint {
				t.Fatalf("seed %d: lossy run not reproducible: %016x vs %016x",
					rep.Seed, rep.Fingerprint, again.Fingerprint)
			}
		}
	}
}

// TestSimCheckDeterminism proves the repro contract: two runs of one
// seed produce identical fingerprints (final clocks plus every
// hardware and kernel counter).
func TestSimCheckDeterminism(t *testing.T) {
	for _, seed := range []uint64{1, 7, 23, 101} {
		a := Run(seed, Options{})
		b := Run(seed, Options{})
		if a.Fingerprint != b.Fingerprint {
			t.Errorf("seed %d: fingerprints differ: %016x vs %016x", seed, a.Fingerprint, b.Fingerprint)
		}
		if a.Failed() != b.Failed() || len(a.Violations) != len(b.Violations) {
			t.Errorf("seed %d: runs disagree on violations: %d vs %d",
				seed, len(a.Violations), len(b.Violations))
		}
	}
}

// TestSimCheckWorkerEquivalence is the acceptance criterion for the
// parallel execution core: for every seed, a scenario run with eight
// cluster workers must be indistinguishable from the serial run —
// identical fingerprint (clocks plus every hardware/kernel counter),
// identical violations, identical per-node trace summaries.
func TestSimCheckWorkerEquivalence(t *testing.T) {
	seeds := uint64(64)
	if testing.Short() {
		seeds = 16
	}
	for seed := uint64(1); seed <= seeds; seed++ {
		serial := Run(seed, Options{})
		par := Run(seed, Options{Workers: 8})
		if serial.Fingerprint != par.Fingerprint {
			t.Fatalf("seed %d: workers=8 fingerprint %016x != workers=1 %016x",
				seed, par.Fingerprint, serial.Fingerprint)
		}
		if len(serial.Violations) != len(par.Violations) {
			t.Fatalf("seed %d: violation counts differ across workers: %d vs %d",
				seed, len(serial.Violations), len(par.Violations))
		}
		if fmt.Sprint(serial.TraceSummaries) != fmt.Sprint(par.TraceSummaries) {
			t.Fatalf("seed %d: trace summaries differ across workers:\n%v\nvs\n%v",
				seed, serial.TraceSummaries, par.TraceSummaries)
		}
	}
}

// TestSimCheckLossyWorkerEquivalence is satellite coverage for the same
// invariant under the hostile-wire mix: a lossy scenario (drops,
// corruption, duplicates, reordering, retransmission timers) run at
// workers=1 and workers=8 must agree on the scenario fingerprint, the
// full telemetry snapshot and every node's trace summary.
func TestSimCheckLossyWorkerEquivalence(t *testing.T) {
	run := func(workers int) (*Report, string) {
		reg := telemetry.New()
		rep := Run(3, Options{Override: lossyOverride, Workers: workers, Metrics: reg})
		return rep, fmt.Sprintf("%+v", *reg.Snapshot())
	}
	serial, serialSnap := run(1)
	if serial.Failed() {
		t.Fatalf("lossy scenario failed serially:\n%s", serial.String())
	}
	par, parSnap := run(8)
	if par.Fingerprint != serial.Fingerprint {
		t.Fatalf("workers=8 fingerprint %016x != workers=1 %016x", par.Fingerprint, serial.Fingerprint)
	}
	if parSnap != serialSnap {
		t.Fatalf("metric snapshots differ across workers:\n%s\nvs\n%s", parSnap, serialSnap)
	}
	if fmt.Sprint(par.TraceSummaries) != fmt.Sprint(serial.TraceSummaries) {
		t.Fatalf("trace summaries differ across workers:\n%v\nvs\n%v",
			par.TraceSummaries, serial.TraceSummaries)
	}
}

// serveOverride switches a seed's scenario to open-loop serving: the
// internal/loadgen driver replaces the random op programs while the
// seed keeps drawing the machine shape (RAM, quanta, cleaner, faults,
// lossy wire) the auditor then checks underneath the load.
func serveOverride(cfg *ScenarioConfig) {
	cfg.Serve = true
}

// TestSimCheckServeSweep runs the invariant auditor under open-loop
// load: per-destination FIFO flows of PIO and UDMA traffic at a steady
// offered rate, over whatever machine regime each seed draws (including
// fault injection and lossy wires), with I1–I4, refcount and byte
// conservation checked at every window and the driver's own books
// (delivered + typed-failed = offered, per-flow order) at the end.
func TestSimCheckServeSweep(t *testing.T) {
	seeds := 24
	if testing.Short() {
		seeds = 8
	}
	opts := Options{Override: serveOverride}
	for _, rep := range Sweep(1, seeds, runtime.GOMAXPROCS(0), opts) {
		if rep.Failed() {
			t.Fatalf("\n%s", rep.String())
		}
		if !rep.Cfg.Serve || rep.Cfg.Nodes < 2 {
			t.Fatalf("seed %d: serve override not applied: %+v", rep.Seed, rep.Cfg)
		}
	}
}

// TestSimCheckServeWorkerEquivalence is the acceptance criterion for
// serving on the parallel core: a serve scenario run with eight cluster
// workers must be indistinguishable from the serial run — identical
// fingerprint, violations and per-node trace summaries.
func TestSimCheckServeWorkerEquivalence(t *testing.T) {
	seeds := uint64(12)
	if testing.Short() {
		seeds = 4
	}
	for seed := uint64(1); seed <= seeds; seed++ {
		serial := Run(seed, Options{Override: serveOverride})
		if serial.Failed() {
			t.Fatalf("seed %d failed serially:\n%s", seed, serial.String())
		}
		par := Run(seed, Options{Override: serveOverride, Workers: 8})
		if serial.Fingerprint != par.Fingerprint {
			t.Fatalf("seed %d: workers=8 fingerprint %016x != workers=1 %016x",
				seed, par.Fingerprint, serial.Fingerprint)
		}
		if len(serial.Violations) != len(par.Violations) {
			t.Fatalf("seed %d: violation counts differ across workers: %d vs %d",
				seed, len(serial.Violations), len(par.Violations))
		}
		if fmt.Sprint(serial.TraceSummaries) != fmt.Sprint(par.TraceSummaries) {
			t.Fatalf("seed %d: trace summaries differ across workers:\n%v\nvs\n%v",
				seed, serial.TraceSummaries, par.TraceSummaries)
		}
	}
}

// TestSimCheckServeLossyWorkerEquivalence composes the two hardest
// regimes: open-loop load over the acceptance-criteria hostile wire,
// serial vs eight workers, comparing fingerprint, telemetry snapshot
// (including the loadgen sojourn mirrors) and trace summaries.
func TestSimCheckServeLossyWorkerEquivalence(t *testing.T) {
	run := func(workers int) (*Report, string) {
		reg := telemetry.New()
		rep := Run(5, Options{
			Override: func(cfg *ScenarioConfig) { lossyOverride(cfg); serveOverride(cfg) },
			Workers:  workers,
			Metrics:  reg,
		})
		return rep, fmt.Sprintf("%+v", *reg.Snapshot())
	}
	serial, serialSnap := run(1)
	if serial.Failed() {
		t.Fatalf("lossy serve scenario failed serially:\n%s", serial.String())
	}
	par, parSnap := run(8)
	if par.Fingerprint != serial.Fingerprint {
		t.Fatalf("workers=8 fingerprint %016x != workers=1 %016x", par.Fingerprint, serial.Fingerprint)
	}
	if parSnap != serialSnap {
		t.Fatalf("metric snapshots differ across workers:\n%s\nvs\n%s", parSnap, serialSnap)
	}
	if fmt.Sprint(par.TraceSummaries) != fmt.Sprint(serial.TraceSummaries) {
		t.Fatalf("trace summaries differ across workers:\n%v\nvs\n%v",
			par.TraceSummaries, serial.TraceSummaries)
	}
}

// churnOverride switches a seed's scenario to connection-churn serving:
// short-lived flows with one NIPT entry each, a bounded NIPT cache
// (forced on seeds that drew none, so every run has eviction pressure),
// and idle-state reclamation on lossy seeds where the reliability layer
// is armed.
func churnOverride(cfg *ScenarioConfig) {
	cfg.Serve = true
	cfg.ServeChurn = true
	if cfg.NIPTCapacity == 0 {
		cfg.NIPTCapacity = 8
	}
	if cfg.Lossy && cfg.IdleReclaimAge == 0 {
		cfg.IdleReclaimAge = 40_000
	}
}

// TestSimCheckChurnSweep runs the invariant auditor under connection
// churn: flow birth/death on simulated time, thousands of short-lived
// NIPT entries chased by a small cache, over whatever machine regime
// each seed draws — with I1–I4, conservation and the serve books
// checked exactly as in the fixed-flow sweep.
func TestSimCheckChurnSweep(t *testing.T) {
	seeds := 256
	if testing.Short() {
		seeds = 64
	}
	opts := Options{Override: churnOverride}
	for _, rep := range Sweep(1, seeds, runtime.GOMAXPROCS(0), opts) {
		if rep.Failed() {
			t.Fatalf("\n%s", rep.String())
		}
		if !rep.Cfg.ServeChurn || rep.Cfg.NIPTCapacity == 0 {
			t.Fatalf("seed %d: churn override not applied: %+v", rep.Seed, rep.Cfg)
		}
	}
}

// TestSimCheckChurnWorkerEquivalence: churn composes flow birth/death,
// cache refills on simulated time and barrier-published reclamation —
// the run must still be bit-exact between one worker and eight.
func TestSimCheckChurnWorkerEquivalence(t *testing.T) {
	seeds := uint64(12)
	if testing.Short() {
		seeds = 4
	}
	for seed := uint64(1); seed <= seeds; seed++ {
		serial := Run(seed, Options{Override: churnOverride})
		if serial.Failed() {
			t.Fatalf("seed %d failed serially:\n%s", seed, serial.String())
		}
		par := Run(seed, Options{Override: churnOverride, Workers: 8})
		if serial.Fingerprint != par.Fingerprint {
			t.Fatalf("seed %d: workers=8 fingerprint %016x != workers=1 %016x",
				seed, par.Fingerprint, serial.Fingerprint)
		}
		if len(serial.Violations) != len(par.Violations) {
			t.Fatalf("seed %d: violation counts differ across workers: %d vs %d",
				seed, len(serial.Violations), len(par.Violations))
		}
		if fmt.Sprint(serial.TraceSummaries) != fmt.Sprint(par.TraceSummaries) {
			t.Fatalf("seed %d: trace summaries differ across workers:\n%v\nvs\n%v",
				seed, serial.TraceSummaries, par.TraceSummaries)
		}
	}
}

// chaosOverride forces the node crash–restart plan onto any scenario:
// multi-node (a lone node crashing proves nothing about its peers) with
// an MTBF small enough that crashes reliably fire inside the run.
func chaosOverride(cfg *ScenarioConfig) {
	if cfg.Nodes < 2 {
		cfg.Nodes = 2
	}
	cfg.CrashMTBF = 120_000
	cfg.CrashMTTR = 50_000
	cfg.CrashMax = 2
}

// TestSimCheckChaosSweep is the acceptance sweep for the crash–restart
// fault model: every seed runs with whole-node power loss armed on top
// of whatever machine regime it drew (fault injection, lossy wires,
// kills), and the full auditor — invariants, refcounts, end-to-end byte
// conservation including the crash ledgers — must stay silent. A subset
// of seeds reruns to prove chaos outcomes reproduce exactly.
func TestSimCheckChaosSweep(t *testing.T) {
	seeds := 256
	if testing.Short() {
		seeds = 64
	}
	opts := Options{Override: chaosOverride}
	for _, rep := range Sweep(1, seeds, runtime.GOMAXPROCS(0), opts) {
		if rep.Failed() {
			t.Fatalf("\n%s", rep.String())
		}
		if rep.Seed%32 == 0 {
			again := Run(rep.Seed, opts)
			if again.Fingerprint != rep.Fingerprint {
				t.Fatalf("seed %d: chaos run not reproducible: %016x vs %016x",
					rep.Seed, rep.Fingerprint, again.Fingerprint)
			}
		}
	}
}

// TestSimCheckChaosWorkerEquivalence: crash and reboot are barrier
// actions like every other cross-node control, so a chaos run must be
// bit-exact between one worker and eight.
func TestSimCheckChaosWorkerEquivalence(t *testing.T) {
	seeds := uint64(12)
	if testing.Short() {
		seeds = 4
	}
	for seed := uint64(1); seed <= seeds; seed++ {
		serial := Run(seed, Options{Override: chaosOverride})
		if serial.Failed() {
			t.Fatalf("seed %d failed serially:\n%s", seed, serial.String())
		}
		par := Run(seed, Options{Override: chaosOverride, Workers: 8})
		if serial.Fingerprint != par.Fingerprint {
			t.Fatalf("seed %d: workers=8 fingerprint %016x != workers=1 %016x",
				seed, par.Fingerprint, serial.Fingerprint)
		}
		if len(serial.Violations) != len(par.Violations) {
			t.Fatalf("seed %d: violation counts differ across workers: %d vs %d",
				seed, len(serial.Violations), len(par.Violations))
		}
		if fmt.Sprint(serial.TraceSummaries) != fmt.Sprint(par.TraceSummaries) {
			t.Fatalf("seed %d: trace summaries differ across workers:\n%v\nvs\n%v",
				seed, serial.TraceSummaries, par.TraceSummaries)
		}
	}
}

// TestSimCheckChaosServeLossyWorkerEquivalence composes every regime at
// once: open-loop serving over the hostile wire while nodes crash and
// reboot mid-load — the respawn path, epoch resurrection and the crash
// byte ledgers all active — serial vs eight workers, comparing
// fingerprint, telemetry snapshot and trace summaries.
func TestSimCheckChaosServeLossyWorkerEquivalence(t *testing.T) {
	run := func(workers int) (*Report, string) {
		reg := telemetry.New()
		rep := Run(5, Options{
			Override: func(cfg *ScenarioConfig) {
				lossyOverride(cfg)
				serveOverride(cfg)
				chaosOverride(cfg)
			},
			Workers: workers,
			Metrics: reg,
		})
		return rep, fmt.Sprintf("%+v", *reg.Snapshot())
	}
	serial, serialSnap := run(1)
	if serial.Failed() {
		t.Fatalf("chaos serve scenario failed serially:\n%s", serial.String())
	}
	par, parSnap := run(8)
	if par.Fingerprint != serial.Fingerprint {
		t.Fatalf("workers=8 fingerprint %016x != workers=1 %016x", par.Fingerprint, serial.Fingerprint)
	}
	if parSnap != serialSnap {
		t.Fatalf("metric snapshots differ across workers:\n%s\nvs\n%s", parSnap, serialSnap)
	}
	if fmt.Sprint(par.TraceSummaries) != fmt.Sprint(serial.TraceSummaries) {
		t.Fatalf("trace summaries differ across workers:\n%v\nvs\n%v",
			par.TraceSummaries, serial.TraceSummaries)
	}
}

// TestSimCheckCoversMechanisms checks the sweep actually exercises the
// machinery the invariants guard: across the -short seed range the
// scenarios must include multi-node clusters, queued controllers, fault
// injection, cleaners and kills.
func TestSimCheckCoversMechanisms(t *testing.T) {
	var multi, queued, faulty, cleaner, kills, lossy, flappy, capped, reclaim, chaos bool
	for seed := uint64(1); seed <= 64; seed++ {
		cfg := deriveConfig(seed)
		multi = multi || cfg.Nodes > 1
		queued = queued || cfg.QueueDepth > 0
		faulty = faulty || cfg.FaultInject
		cleaner = cleaner || cfg.Cleaner
		kills = kills || cfg.Kills > 0
		lossy = lossy || cfg.Lossy
		flappy = flappy || cfg.FlapPeriod > 0
		capped = capped || cfg.NIPTCapacity > 0
		reclaim = reclaim || cfg.IdleReclaimAge > 0
		chaos = chaos || cfg.CrashMTBF > 0
	}
	for name, ok := range map[string]bool{
		"multi-node": multi, "queued": queued, "fault-inject": faulty,
		"cleaner": cleaner, "kills": kills, "lossy-wire": lossy, "link-flap": flappy,
		"bounded-nipt": capped, "idle-reclaim": reclaim, "node-crash": chaos,
	} {
		if !ok {
			t.Errorf("seed sweep never produced a %s scenario", name)
		}
	}
}
