package simcheck

import (
	"testing"

	"shrimp/internal/kernel"
)

// These tests prove the auditor has teeth: each one breaks exactly one
// kernel invariant through a test hook, sweeps seeds with the scenario
// biased toward the pressure that invariant guards against, and demands
// a violation report of the matching class (with seed and step, so the
// failure is reproducible).

// sweepBroken runs seeds under the hooks/override until one report
// fails, returning that report. maxSeeds bounds the hunt.
func sweepBroken(t *testing.T, hooks kernel.TestHooks, override func(*ScenarioConfig), maxSeeds uint64) *Report {
	t.Helper()
	for seed := uint64(1); seed <= maxSeeds; seed++ {
		rep := Run(seed, Options{Hooks: hooks, Override: override})
		if rep.Failed() {
			return rep
		}
	}
	t.Fatalf("broken kernel undetected across %d seeds", maxSeeds)
	return nil
}

func wantInvariant(t *testing.T, rep *Report, accept ...string) {
	t.Helper()
	ok := map[string]bool{}
	for _, a := range accept {
		ok[a] = true
	}
	for _, v := range rep.Violations {
		if ok[v.Invariant] {
			t.Logf("caught:\n%s", rep.String())
			if v.Step < 0 {
				t.Errorf("violation carries no step: %+v", v)
			}
			return
		}
	}
	t.Fatalf("no %v violation in report:\n%s", accept, rep.String())
}

// TestBrokenI1 skips the context-switch Inval. Any scenario with two
// runnable processes trips it almost immediately.
func TestBrokenI1(t *testing.T) {
	rep := sweepBroken(t, kernel.TestHooks{SkipI1Inval: true}, nil, 8)
	wantInvariant(t, rep, "I1")
}

// TestBrokenI2 leaves stale proxy PTEs behind on eviction. Tiny RAM
// plus transfer and paging pressure forces evictions of pages that
// processes hold proxy mappings for.
func TestBrokenI2(t *testing.T) {
	rep := sweepBroken(t, kernel.TestHooks{SkipI2ProxyInval: true}, func(cfg *ScenarioConfig) {
		cfg.Nodes = 1
		cfg.RAMFrames = 24
		cfg.ProcsPerNode = 3
		cfg.OpsPerProc = 10
		cfg.FaultInject = false
		cfg.Kills = 0
	}, 32)
	wantInvariant(t, rep, "I2", "memory", "conservation")
}

// TestBrokenI3 skips marking the real page dirty when a proxy write
// upgrade makes the proxy PTE writable. A fast cleaner then clears the
// (never-set) dirty bit while the writable proxy survives.
func TestBrokenI3(t *testing.T) {
	rep := sweepBroken(t, kernel.TestHooks{SkipI3Dirty: true}, func(cfg *ScenarioConfig) {
		cfg.Nodes = 1
		cfg.ProcsPerNode = 3
		cfg.OpsPerProc = 10
		cfg.Cleaner = true
		cfg.CleanerPeriod = 5_000
		cfg.FaultInject = false
		cfg.Kills = 0
	}, 32)
	wantInvariant(t, rep, "I3")
}

// TestBrokenI4 lets the evictor pick frames the UDMA hardware still
// references. Slow devices keep transfers in flight long enough for
// paging pressure to steal their frames; the damage shows up as an I4
// audit hit or as corrupted bytes downstream.
func TestBrokenI4(t *testing.T) {
	rep := sweepBroken(t, kernel.TestHooks{SkipI4Guard: true}, func(cfg *ScenarioConfig) {
		cfg.Nodes = 1
		cfg.RAMFrames = 24
		cfg.QueueDepth = 8
		cfg.SysQueueDepth = 2
		cfg.DeviceLatency = 20_000
		cfg.ProcsPerNode = 4
		cfg.OpsPerProc = 10
		cfg.FaultInject = false
		cfg.Kills = 0
	}, 32)
	wantInvariant(t, rep, "I4", "conservation", "memory", "refcount")
}
