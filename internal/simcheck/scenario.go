package simcheck

import (
	"bytes"
	"errors"
	"fmt"

	"shrimp/internal/addr"
	"shrimp/internal/cluster"
	"shrimp/internal/core"
	"shrimp/internal/device"
	"shrimp/internal/interconnect"
	"shrimp/internal/kernel"
	"shrimp/internal/loadgen"
	"shrimp/internal/machine"
	"shrimp/internal/nic"
	"shrimp/internal/sim"
	"shrimp/internal/trace"
	"shrimp/internal/udmalib"
)

// ScenarioConfig is the seed-derived shape of one randomized run. Every
// field is exported so Options.Override can bias a test toward specific
// pressure (tiny RAM for eviction storms, deep queues for I4, a fast
// cleaner for I3).
type ScenarioConfig struct {
	Nodes         int
	RAMFrames     int
	QueueDepth    int
	SysQueueDepth int
	Quantum       sim.Cycles
	Window        sim.Cycles // lockstep horizon step = audit interval
	ProcsPerNode  int
	OpsPerProc    int
	DeviceLatency sim.Cycles // scratch-buffer transfer latency
	ScratchPages  uint32
	NIPTPages     uint32

	Cleaner       bool
	CleanerPeriod sim.Cycles

	FaultInject     bool
	FaultRejectRate float64
	FaultFailRate   float64

	// Lossy perturbs the backplane (interconnect.FaultPlan) and arms the
	// NIC reliability sublayer to survive it; byte conservation is then
	// asserted end-to-end across retransmission.
	Lossy       bool
	DropRate    float64
	DupRate     float64
	CorruptRate float64
	DelayRate   float64
	FlapPeriod  sim.Cycles
	FlapDown    sim.Cycles

	Kills    int // processes killed mid-run (never receivers)
	MaxSteps int // liveness bound, in lockstep windows

	// Serve replaces the random per-process op programs with the
	// internal/loadgen open-loop driver: seeded Poisson arrivals across
	// per-destination FIFO flows, served over PIO and UDMA while the
	// auditor checks every invariant between windows. These fields are
	// set only via Options.Override — never drawn from the seed — so
	// every existing seed's scenario shape is untouched.
	Serve            bool
	ServeRate        float64 // offered messages per million cycles
	ServeMessages    int
	ServeFlows       int
	ServeWindowPages int

	// ServeChurn switches the serve driver to the connection-churn flow
	// model: short-lived flows, one NIPT entry each, births and deaths
	// on simulated time. Override-only, like the other Serve fields.
	ServeChurn       bool
	ServeActiveFlows int
	ServeMsgsPerFlow int

	// NIPTCapacity bounds the board's NIPT cache over the host-memory
	// backing table (0 = unbounded); IdleReclaimAge ages idle
	// reliability state into the free pools at barriers. Both are
	// seed-drawn, after the lossy block, so earlier per-seed fields
	// keep their values.
	NIPTCapacity   int
	IdleReclaimAge sim.Cycles

	// CrashMTBF > 0 arms the cluster's node crash–restart chaos plan
	// (cluster.CrashPlan): whole nodes lose power at seeded instants and
	// reboot after CrashMTTR, wiping all volatile board state and
	// killing every kernel process. Seed-drawn last, after the
	// reclamation draw, so every earlier field keeps its per-seed value.
	CrashMTBF sim.Cycles
	CrashMTTR sim.Cycles
	CrashMax  int

	// Routed-fabric draws (newest of all, after the crash block, same
	// append-only rule): Torus closes the router grid's rows and
	// columns into rings, and LinkBytesPerCyc throttles every fabric
	// link below the host-interface rate so barrier-time contention
	// resolution gets exercised (0 = links at the host-interface rate,
	// the historical fabric).
	Torus           bool
	LinkBytesPerCyc float64
}

// randomConfig draws a scenario shape from the master RNG. Ranges are
// chosen so every mechanism gets regular exercise: small RAM forces
// evictions against UDMA references (I4), non-zero quanta force context
// switches mid-sequence (I1), the cleaner clears dirty bits against
// live proxy mappings (I3), queue depths of 0 cover the basic machine.
func randomConfig(rng *sim.RNG) ScenarioConfig {
	cfg := ScenarioConfig{
		Nodes:         1 + rng.Intn(3),
		RAMFrames:     48 + rng.Intn(65),
		QueueDepth:    []int{0, 2, 4, 8}[rng.Intn(4)],
		Quantum:       sim.Cycles(1200 + rng.Intn(2800)),
		Window:        sim.Cycles(4000 + rng.Intn(12000)),
		ProcsPerNode:  2 + rng.Intn(3),
		OpsPerProc:    3 + rng.Intn(6),
		DeviceLatency: []sim.Cycles{0, 50, 2000, 20000}[rng.Intn(4)],
		NIPTPages:     64,
		MaxSteps:      60_000,
	}
	cfg.ScratchPages = uint32(2 * cfg.ProcsPerNode)
	if cfg.QueueDepth > 0 && rng.Bool() {
		cfg.SysQueueDepth = 2
	}
	if rng.Intn(3) == 0 {
		cfg.Cleaner = true
		cfg.CleanerPeriod = sim.Cycles(30_000 + rng.Intn(90_000))
	}
	if rng.Intn(3) == 0 {
		cfg.FaultInject = true
		cfg.FaultRejectRate = 0.02
		cfg.FaultFailRate = 0.02
	}
	if rng.Intn(2) == 0 {
		cfg.Kills = rng.Intn(3)
	}
	// Lossy-wire draws come last so adding them kept every earlier
	// field's per-seed value stable.
	if rng.Intn(3) == 0 {
		cfg.Lossy = true
		cfg.DropRate = 0.02 + 0.08*rng.Float64()
		cfg.DupRate = 0.02
		cfg.CorruptRate = 0.02
		cfg.DelayRate = 0.05
		if rng.Bool() {
			cfg.FlapPeriod = sim.Cycles(20_000 + rng.Intn(40_000))
			cfg.FlapDown = sim.Cycles(2_000 + rng.Intn(4_000))
		}
	}
	// Bounded-NIPT and reclamation draws also come last (same rule as
	// the lossy block: new draws never move existing per-seed values).
	if rng.Intn(3) == 0 {
		cfg.NIPTCapacity = 1 + rng.Intn(31)
	}
	if cfg.Lossy && rng.Intn(2) == 0 {
		cfg.IdleReclaimAge = sim.Cycles(20_000 + rng.Intn(60_000))
	}
	// Crash-plan draws are the newest, so they come last of all (same
	// append-only rule): a quarter of seeds get whole-node power loss.
	if rng.Intn(4) == 0 {
		cfg.CrashMTBF = sim.Cycles(150_000 + rng.Intn(250_000))
		cfg.CrashMTTR = sim.Cycles(30_000 + rng.Intn(90_000))
		cfg.CrashMax = 1 + rng.Intn(2)
	}
	// Routed-fabric draws come after the crash block (append-only rule
	// again): a third of seeds wrap the mesh into a torus, and a third
	// throttle the fabric links below the host-interface rate so link
	// contention actually bites.
	cfg.Torus = rng.Intn(3) == 0
	if rng.Intn(3) == 0 {
		cfg.LinkBytesPerCyc = 0.3 + 0.6*rng.Float64()
	}
	return cfg
}

// topology translates the scenario's fabric draws into the cluster's
// topology declaration.
func (cfg ScenarioConfig) topology() interconnect.Topology {
	topo := interconnect.Mesh(cfg.Nodes)
	if cfg.Torus {
		topo = interconnect.Torus(cfg.Nodes)
	}
	topo.LinkBytesPerCyc = cfg.LinkBytesPerCyc
	return topo
}

// faultPlan translates the scenario's lossy knobs into the backplane's
// fault plan. The wire gets its own seed stream, decorrelated from the
// scenario-shape and per-process streams.
func (cfg ScenarioConfig) faultPlan(seed uint64) interconnect.FaultPlan {
	if !cfg.Lossy {
		return interconnect.FaultPlan{}
	}
	return interconnect.FaultPlan{
		Seed:        seed ^ 0xFA17_ED_B1_7,
		DropRate:    cfg.DropRate,
		DupRate:     cfg.DupRate,
		CorruptRate: cfg.CorruptRate,
		DelayRate:   cfg.DelayRate,
		FlapPeriod:  cfg.FlapPeriod,
		FlapDown:    cfg.FlapDown,
	}
}

// crashPlan translates the scenario's chaos knobs into the cluster's
// node crash–restart schedule. Like the wire's fault plan, the schedule
// draws from its own decorrelated seed stream — and that stream is
// private to the plan, so arming it never perturbs the simulation.
func (cfg ScenarioConfig) crashPlan(seed uint64) cluster.CrashPlan {
	if cfg.CrashMTBF == 0 {
		return cluster.CrashPlan{}
	}
	return cluster.CrashPlan{
		Seed:       seed ^ 0xC4A5_4ED0DE,
		MTBF:       cfg.CrashMTBF,
		MTTR:       cfg.CrashMTTR,
		FirstAt:    30_000,
		MaxCrashes: cfg.CrashMax,
	}
}

// deriveConfig reports the scenario shape a seed produces, without
// building it — tests use it to assert the sweep's mechanism coverage.
func deriveConfig(seed uint64) ScenarioConfig {
	return randomConfig(sim.NewRNG(seed))
}

const (
	roleWorker = iota
	roleSender
	roleReceiver
)

type procInfo struct {
	node int
	p    *kernel.Proc
	role int
}

type killPlan struct {
	victim int // index into procs
	step   int
}

// remotePlan tracks one exported receive window: which frames the
// sender's NIPT names and what bytes the last *successful* send put in
// each page. A page whose send errored (fault injection) or whose
// sender was killed mid-transfer is tainted — its content is legally
// unpredictable — and excluded from final verification.
type remotePlan struct {
	senderNode, recvNode int
	pages                int
	pfns                 []uint32
	expect               [][]byte
	tainted              []bool
}

type touchRec struct {
	va      addr.VAddr
	pattern []byte
}

type scenario struct {
	seed    uint64
	cfg     ScenarioConfig
	opts    Options
	cl      *cluster.Cluster
	tracers []*trace.Tracer
	scratch []*device.Buffer
	// scratchFirst is each node's scratch device-proxy first page.
	scratchFirst []uint32

	step       int
	violations []Violation
	overflow   bool // violations beyond MaxViolations were dropped
	trail      []trace.Event
	trailNode  int

	// inStep is true while cluster workers are running a window; fail()
	// then buffers into the caller's per-node slice (procViol) instead
	// of the shared record, and collect() merges the buffers in node
	// order at the barrier — so the violation list is identical at every
	// worker count.
	inStep   bool
	procViol [][]Violation

	lastNow []sim.Cycles

	procs []procInfo
	kills []killPlan

	// serve is the open-loop load driver when cfg.Serve is set; it owns
	// the node processes and the barrier-published control state that
	// procs/remote/pendingPfns own in the randomized scenario.
	serve *loadgen.Driver

	remote *remotePlan
	// pendingPfns is the receiver's exported window awaiting barrier
	// publication: the receiver writes it mid-window (touching only its
	// own node), and publishControl() maps it into the *sender's* NIPT
	// at the next barrier, when no worker is running.
	pendingPfns []uint32
	windowReady bool
	stopRecv    bool
	drained     bool // DrainHardware ran: nothing is in flight anywhere
}

// fail records a violation. At a barrier (auditor, kill plan, final
// verification) it lands directly in the shared record; mid-window,
// when node processes run on parallel workers, it is buffered in the
// failing node's private slice and merged at the next barrier.
func (s *scenario) fail(node int, invariant, detail string) {
	v := Violation{Node: node, Step: s.step, Invariant: invariant, Detail: detail}
	if s.inStep {
		if len(s.procViol[node]) > s.opts.MaxViolations {
			return // already beyond what collect() could ever keep
		}
		s.procViol[node] = append(s.procViol[node], v)
		return
	}
	s.record(v)
}

// record appends one violation to the shared list, capturing the
// node's event trail on the first finding. Barrier-only.
func (s *scenario) record(v Violation) {
	if len(s.violations) >= s.opts.MaxViolations {
		s.overflow = true
		return
	}
	if len(s.violations) == 0 {
		s.trail = s.tracers[v.Node].Tail(24)
		s.trailNode = v.Node
	}
	s.violations = append(s.violations, v)
}

// collect merges the per-node mid-window violation buffers into the
// shared record, in node order — a deterministic sequence no matter
// which worker goroutine found what first.
func (s *scenario) collect() {
	for node := range s.procViol {
		for _, v := range s.procViol[node] {
			s.record(v)
		}
		s.procViol[node] = s.procViol[node][:0]
	}
}

func (s *scenario) capped() bool {
	return len(s.violations) >= s.opts.MaxViolations
}

// opError reports an unexpected operation error. With fault injection
// or a lossy wire on, hard errors are the scenario working as intended
// (injected faults, broken-link DeliveryErrors, credit-stall bounces)
// and are ignored; without them, any op error other than a queue-full
// refusal (a documented transient on the queued machine) is a finding.
func (s *scenario) opError(node int, what string, err error) {
	if err == nil || s.cfg.FaultInject || s.cfg.Lossy || queueFull(err) {
		return
	}
	s.fail(node, "op-error", what+": "+err.Error())
}

// queueFull reports whether err is the controller refusing a transfer
// because its request queue is full — legal machine behavior the
// scenario must tolerate (the op's verification is skipped).
func queueFull(err error) bool {
	var he *udmalib.HardError
	return errors.As(err, &he) && he.Status.DeviceErr()&device.ErrQueueFull != 0
}

func buildScenario(seed uint64, opts Options) *scenario {
	rng := sim.NewRNG(seed)
	cfg := randomConfig(rng)
	if opts.Override != nil {
		opts.Override(&cfg)
	}
	var plan *loadgen.Plan
	if cfg.Serve {
		// Serve-mode floors and defaults (the fields are Override-set,
		// never seed-drawn): open-loop traffic needs at least two nodes,
		// and the NIPT must hold the plan's whole backing table — one
		// window per destination per sender, or in churn mode one entry
		// per flow, which is why the plan is built before the cluster.
		if cfg.Nodes < 2 {
			cfg.Nodes = 2
		}
		if cfg.ServeRate == 0 {
			cfg.ServeRate = 150
		}
		if cfg.ServeMessages == 0 {
			cfg.ServeMessages = 120
		}
		if cfg.ServeFlows == 0 {
			cfg.ServeFlows = 256
		}
		if cfg.ServeWindowPages == 0 {
			cfg.ServeWindowPages = 2
		}
		if cfg.ServeChurn && cfg.ServeActiveFlows == 0 {
			cfg.ServeActiveFlows = 32
		}
		if cfg.ServeChurn && cfg.ServeMsgsPerFlow == 0 {
			cfg.ServeMsgsPerFlow = 2
		}
		plan = loadgen.BuildPlan(loadgen.Config{
			Nodes:       cfg.Nodes,
			Seed:        seed ^ 0x10ad_9e4, // decorrelated from shape draws
			Rate:        cfg.ServeRate,
			Messages:    cfg.ServeMessages,
			Flows:       cfg.ServeFlows,
			WindowPages: cfg.ServeWindowPages,
			Churn:       cfg.ServeChurn,
			ActiveFlows: cfg.ServeActiveFlows,
			MsgsPerFlow: cfg.ServeMsgsPerFlow,
		})
		if need := plan.NIPTEntries(); cfg.NIPTPages < need {
			cfg.NIPTPages = need
		}
	}
	s := &scenario{seed: seed, cfg: cfg, opts: opts, step: -1}

	s.cl = cluster.New(cluster.Config{
		Nodes:    cfg.Nodes,
		Topology: cfg.topology(),
		Machine: machine.Config{
			RAMFrames: cfg.RAMFrames,
			UDMA: core.Config{
				QueueDepth:       cfg.QueueDepth,
				SystemQueueDepth: cfg.SysQueueDepth,
			},
			Kernel: kernel.Config{Quantum: cfg.Quantum},
		},
		NIC: nic.Config{
			NIPTPages:        cfg.NIPTPages,
			PIOWindow:        true,
			NIPTCapacity:     cfg.NIPTCapacity,
			NIPTRefillJitter: 16,
			NIPTSeed:         seed,
			Reliability: nic.ReliabilityConfig{
				Enabled:        cfg.Lossy,
				IdleReclaimAge: cfg.IdleReclaimAge,
			},
		},
		Crash:           cfg.crashPlan(seed),
		Window:          cfg.Window,
		Workers:         opts.Workers,
		FaultInject:     cfg.FaultInject,
		FaultSeed:       seed,
		FaultRejectRate: cfg.FaultRejectRate,
		FaultFailRate:   cfg.FaultFailRate,
		Fault:           cfg.faultPlan(seed),
		Metrics:         opts.Metrics,
	})
	s.procViol = make([][]Violation, cfg.Nodes)

	for i, n := range s.cl.Nodes {
		tr := trace.New(n.Clock, 512)
		n.SetTracer(tr)
		s.cl.NICs[i].SetTracer(tr)
		s.cl.Backplane.SetTracer(i, tr)
		s.tracers = append(s.tracers, tr)
		s.lastNow = append(s.lastNow, n.Clock.Now())

		first := s.cl.NICs[i].Pages()
		scratch := device.NewBuffer(fmt.Sprintf("scratch%d", i), cfg.ScratchPages, 1, cfg.DeviceLatency)
		n.AttachDevice(scratch, first)
		s.scratch = append(s.scratch, scratch)
		s.scratchFirst = append(s.scratchFirst, first)

		n.Kernel.SetTestHooks(opts.Hooks)
		if cfg.Cleaner {
			n.Kernel.StartCleaner(cfg.CleanerPeriod)
		}
	}

	if cfg.Serve {
		// The loadgen driver spawns every process (receivers, pacers,
		// servers, samplers) and parks its cross-node control for
		// publishControl, exactly like the randomized scenario's receiver
		// does. No kill plan: killing a pacer or server would strand its
		// queues and turn the liveness bound into a false failure.
		s.serve = loadgen.NewDriver(plan, s.cl, loadgen.DriverOptions{Metrics: opts.Metrics})
		return s
	}

	if cfg.Nodes >= 2 {
		s.remote = &remotePlan{
			senderNode: 0,
			recvNode:   cfg.Nodes - 1,
			pages:      2,
		}
		s.remote.expect = make([][]byte, s.remote.pages)
		s.remote.tainted = make([]bool, s.remote.pages)
	}

	for i, n := range s.cl.Nodes {
		for j := 0; j < cfg.ProcsPerNode; j++ {
			role := roleWorker
			if s.remote != nil && j == 0 {
				if i == s.remote.senderNode {
					role = roleSender
				} else if i == s.remote.recvNode {
					role = roleReceiver
				}
			}
			// Decorrelated per-process stream: every process draws its
			// op sequence independently of scenario-shape draws.
			prng := sim.NewRNG(seed ^ (uint64(i+1)<<20|uint64(j+1))*0x9E3779B97F4A7C15)
			p := n.Kernel.Spawn(fmt.Sprintf("n%dp%d", i, j), s.procBody(i, j, role, prng))
			s.procs = append(s.procs, procInfo{node: i, p: p, role: role})
		}
	}

	// Kill plan: victims drawn from non-receiver processes, fired at
	// early window boundaries while transfer activity is high.
	for k := 0; k < cfg.Kills; k++ {
		victim := rng.Intn(len(s.procs))
		if s.procs[victim].role == roleReceiver {
			continue
		}
		s.kills = append(s.kills, killPlan{victim: victim, step: 1 + rng.Intn(40)})
	}
	return s
}

// runKills fires the kill plan entries due at this step. Kills happen
// at window boundaries — between instructions, exactly when a real
// kernel's signal delivery would preempt the victim.
func (s *scenario) runKills(step int) {
	for _, kp := range s.kills {
		if kp.step != step {
			continue
		}
		pi := s.procs[kp.victim]
		if pi.p.Exited() {
			continue
		}
		s.cl.Nodes[pi.node].Kernel.Kill(pi.p)
		if pi.role == roleSender && s.remote != nil {
			// The sender may die mid-transfer: every window page's
			// content is now unpredictable.
			for j := range s.remote.tainted {
				s.remote.tainted[j] = true
			}
		}
	}
}

// maybeStopReceivers releases the receiver's polling loop once every
// other process has exited (no more senders can exist).
func (s *scenario) maybeStopReceivers() {
	if s.stopRecv {
		return
	}
	for _, pi := range s.procs {
		if pi.role != roleReceiver && !pi.p.Exited() {
			return
		}
	}
	s.stopRecv = true
}

// finalVerify runs the end-of-run conservation checks that need the
// cluster fully drained: every un-tainted exported page must hold
// exactly the bytes of the last successful remote send to it, and on a
// lossy wire every payload byte ever launched must be accounted for.
func (s *scenario) finalVerify() {
	s.auditWire()
	if s.serve != nil {
		s.serveVerify()
		return
	}
	rp := s.remote
	if rp == nil || rp.pfns == nil {
		return
	}
	if s.cl.NICs[rp.senderNode].Stats().DeliveryFailures > 0 {
		// The reliability layer gave up on some window at some point; a
		// "successful" Send only covers DMA into the board, so every
		// exported page's content is now legally unpredictable.
		for j := range rp.tainted {
			rp.tainted[j] = true
		}
	}
	if s.cl.CrashStats().Crashes > 0 {
		// A node lost power mid-run: in-flight packets were swallowed,
		// senders were killed mid-transfer and exported frames may have
		// been recycled through the reboot — page contents are legally
		// unpredictable everywhere.
		for j := range rp.tainted {
			rp.tainted[j] = true
		}
	}
	ram := s.cl.Nodes[rp.recvNode].RAM
	for j := 0; j < rp.pages; j++ {
		if rp.tainted[j] || rp.expect[j] == nil {
			continue
		}
		page, err := ram.Frame(rp.pfns[j])
		if err != nil {
			s.fail(rp.recvNode, "conservation", fmt.Sprintf("exported frame %d: %v", rp.pfns[j], err))
			continue
		}
		if !bytes.Equal(page, rp.expect[j]) {
			s.fail(rp.recvNode, "conservation",
				fmt.Sprintf("exported page %d (frame %d) differs from last successful send (first diff at %d)",
					j, rp.pfns[j], firstDiff(page, rp.expect[j])))
		}
	}
}

// serveVerify is finalVerify for serve mode: the load driver's own
// end-of-run books must balance — a hard driver error is a finding, and
// on a drained cluster every offered message must be delivered or
// typed-failed, in per-flow FIFO order, with failures only where the
// regime injects them.
func (s *scenario) serveVerify() {
	if err := s.serve.Err(); err != nil {
		s.fail(0, "serve-error", err.Error())
		return
	}
	if !s.drained {
		return // liveness already failed; mid-flight accounting is meaningless
	}
	res, err := s.serve.Finish()
	if err != nil {
		s.fail(0, "serve-error", err.Error())
		return
	}
	if res.Delivered+res.Failed != res.Messages {
		s.fail(0, "serve-accounting",
			fmt.Sprintf("%d delivered + %d failed != %d offered", res.Delivered, res.Failed, res.Messages))
	}
	if res.OrderViolations != 0 {
		s.fail(0, "serve-order", fmt.Sprintf("%d per-flow FIFO violations", res.OrderViolations))
	}
	if !s.cfg.FaultInject && !s.cfg.Lossy && s.cfg.CrashMTBF == 0 && res.Failed != 0 {
		s.fail(0, "serve-accounting", fmt.Sprintf("%d failures on a clean machine", res.Failed))
	}
	if res.NIPTHits+res.NIPTMisses != res.NIPTLookups {
		s.fail(0, "serve-accounting",
			fmt.Sprintf("nipt cache books: %d hits + %d misses != %d lookups",
				res.NIPTHits, res.NIPTMisses, res.NIPTLookups))
	}
	if s.cfg.NIPTCapacity == 0 && res.NIPTMisses != 0 {
		s.fail(0, "serve-accounting",
			fmt.Sprintf("%d misses on an unbounded NIPT", res.NIPTMisses))
	}
}

// auditWire asserts byte conservation end-to-end across retransmission:
// once the cluster is drained, every data payload byte launched into
// the backplane (first transmissions + retransmits + fabric-made
// copies) is either dropped on the wire by the plan, delivered to
// memory, discarded as a duplicate, dropped by CRC, dropped from a full
// reseq buffer, dropped for a bad address, or still parked in a reseq
// buffer of a dead epoch. Nothing double-counted, nothing silently
// lost.
func (s *scenario) auditWire() {
	if !s.cfg.Lossy || !s.drained {
		return
	}
	_, wireBytes, _, wireRetransBytes := s.cl.Backplane.Stats()
	fs := s.cl.Backplane.FaultStats()
	var firstTx, retrans, recv, dup, corrupt, reseq, recvDrop, held, crashDrop uint64
	for i := range s.cl.Nodes {
		st := s.cl.NICs[i].Stats()
		firstTx += st.BytesSent
		retrans += st.RetransBytes
		recv += st.BytesReceived
		dup += st.DupBytes
		corrupt += st.CorruptBytes
		reseq += st.ReseqBytes
		recvDrop += st.RecvDropBytes
		held += s.cl.NICs[i].ReseqHeldBytes()
		crashDrop += st.CrashDropBytes
	}
	if firstTx+retrans != wireBytes {
		s.fail(0, "wire-conservation",
			fmt.Sprintf("NIC sent %d first-tx + %d retrans bytes but the wire carried %d",
				firstTx, retrans, wireBytes))
	}
	if retrans != wireRetransBytes {
		s.fail(0, "wire-conservation",
			fmt.Sprintf("NIC counted %d retrans bytes, backplane %d", retrans, wireRetransBytes))
	}
	// Crash terms: wire-carried bytes a node crash kept out of memory —
	// swallowed at the backplane while the destination was down
	// (fs.CrashDroppedDataBytes), or ledgered on the dead board itself
	// (arrival at a down connector, wiped reseq buffers, receive DMAs
	// invalidated by the generation bump).
	launched := wireBytes + fs.DupDataBytes
	accounted := fs.DroppedDataBytes + fs.CrashDroppedDataBytes +
		recv + dup + corrupt + reseq + recvDrop + held + crashDrop
	if launched != accounted {
		s.fail(0, "wire-conservation",
			fmt.Sprintf("launched %d data bytes (wire %d + fabric dups %d) but accounted %d (plan-dropped %d + crash-wire-dropped %d + delivered %d + dup-dropped %d + crc-dropped %d + reseq-dropped %d + addr-dropped %d + reseq-held %d + crash-board-dropped %d)",
				launched, wireBytes, fs.DupDataBytes, accounted,
				fs.DroppedDataBytes, fs.CrashDroppedDataBytes, recv, dup, corrupt,
				reseq, recvDrop, held, crashDrop))
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// patternBytes fills n bytes from a splitmix-style stream so every op's
// payload is unique and position-sensitive.
func patternBytes(tag uint64, n int) []byte {
	out := make([]byte, n)
	x := tag
	for i := range out {
		x += 0x9E3779B97F4A7C15
		z := x
		z ^= z >> 30
		z *= 0xBF58476D1CE4E5B9
		z ^= z >> 27
		out[i] = byte(z)
	}
	return out
}

// --- process programs -------------------------------------------------------

// procBody returns the coroutine for one scenario process. Everything
// it does is drawn from its private RNG, so the instruction stream for
// (seed, node, index) is fixed regardless of scheduling.
func (s *scenario) procBody(node, idx, role int, rng *sim.RNG) func(p *kernel.Proc) {
	return func(p *kernel.Proc) {
		if role == roleReceiver {
			s.receiverBody(node, p)
			return
		}

		d, err := udmalib.Open(p, s.scratch[node], true)
		if err != nil {
			s.opError(node, "open scratch", err)
			return
		}
		nd, err := udmalib.Open(p, s.cl.Dev(node), true)
		if err != nil {
			s.opError(node, "open nic", err)
			return
		}
		srcBuf, err := p.Alloc(2 * addr.PageSize)
		if err != nil {
			s.opError(node, "alloc", err)
			return
		}
		// Disjoint scratch pages per process: conservation checks must
		// never race a sibling's transfer to the same device page.
		myPage := uint32(2*idx) % s.cfg.ScratchPages

		var touched []touchRec
		for op := 0; op < s.cfg.OpsPerProc; op++ {
			pick := rng.Intn(100)
			switch {
			case role == roleSender && pick < 40:
				s.opRemoteSend(node, p, nd, srcBuf, rng)
			case pick < 55:
				s.opLocalSend(node, p, d, srcBuf, myPage, rng, false)
			case pick < 65:
				s.opLocalSend(node, p, d, srcBuf, myPage, rng, true)
			case pick < 75:
				s.opLocalRecv(node, p, d, srcBuf, myPage, rng)
			case pick < 85:
				if len(touched) < 3 {
					if rec, ok := s.opTouch(node, p, rng); ok {
						touched = append(touched, rec)
					}
				} else {
					p.Compute(sim.Cycles(200 + rng.Intn(3000)))
				}
			case pick < 90:
				p.Sleep(sim.Cycles(500 + rng.Intn(5000)))
			case pick < 94:
				s.opStatusProbe(node, p, srcBuf, rng)
			case pick < 97:
				s.opPIOPoke(node, p, nd, rng)
			default:
				s.opDMAWrite(node, p, srcBuf, myPage, rng)
			}
		}
		// Late re-verification: pages written long ago must still hold
		// their bytes after every eviction/page-in/transfer since — the
		// check that turns a broken I4 into a visible corruption.
		for _, rec := range touched {
			got, rerr := p.ReadBuf(rec.va, len(rec.pattern))
			if rerr != nil {
				s.opError(node, "re-read touched buffer", rerr)
				continue
			}
			if !bytes.Equal(got, rec.pattern) {
				s.fail(node, "memory",
					fmt.Sprintf("buffer %#x corrupted (first diff at %d)", uint32(rec.va), firstDiff(got, rec.pattern)))
			}
		}
	}
}

// receiverBody exports a pinned window for the sender's NIPT and then
// idles until the run winds down; incoming deliberate updates land in
// its frames with no CPU involvement, exactly as on SHRIMP.
func (s *scenario) receiverBody(node int, p *kernel.Proc) {
	rp := s.remote
	k := s.cl.Nodes[node].Kernel
	buf, err := p.Alloc(rp.pages * addr.PageSize)
	if err != nil {
		s.opError(node, "receiver alloc", err)
		return
	}
	pfns, err := udmalib.ExportBuffer(k, p, buf, rp.pages)
	if err != nil {
		s.opError(node, "export buffer", err)
		return
	}
	// Mapping the window writes the *sender's* NIPT — another node's
	// hardware, off-limits mid-window. Park the export for barrier
	// publication (publishControl) instead; senders poll windowReady.
	s.pendingPfns = pfns
	for !s.stopRecv {
		p.Sleep(1500)
	}
}

// publishControl performs cross-node control-plane actions parked by
// process bodies. Called at window barriers only, when no worker is
// running: the receiver's exported window is mapped into the sender's
// NIPT here, so the NIPT write is ordered identically at every worker
// count.
func (s *scenario) publishControl() {
	if s.serve != nil {
		s.serve.PublishControl()
		return
	}
	rp := s.remote
	if rp == nil || s.windowReady || s.pendingPfns == nil {
		return
	}
	if err := udmalib.MapSendWindow(s.cl.NICs[rp.senderNode], 0, rp.recvNode, s.pendingPfns); err != nil {
		s.opError(rp.recvNode, "map send window", err)
		s.pendingPfns = nil
		return
	}
	rp.pfns = s.pendingPfns
	s.windowReady = true
}

// opLocalSend transfers a random payload to this process's private
// scratch pages and verifies the device holds exactly those bytes.
func (s *scenario) opLocalSend(node int, p *kernel.Proc, d *udmalib.Dev,
	srcBuf addr.VAddr, myPage uint32, rng *sim.RNG, queued bool) {
	n := 64 + rng.Intn(2*addr.PageSize-64)
	pattern := patternBytes(rng.Uint64(), n)
	if err := p.WriteBuf(srcBuf, pattern); err != nil {
		s.opError(node, "send fill", err)
		return
	}
	devOff := myPage * addr.PageSize
	var err error
	if queued && s.cfg.QueueDepth > 0 {
		err = d.QueuedSend(srcBuf, devOff, n)
	} else {
		err = d.Send(srcBuf, devOff, n)
	}
	if err != nil {
		s.opError(node, "send", err)
		return
	}
	if got := s.scratch[node].Bytes(int(devOff), n); !bytes.Equal(got, pattern) {
		s.fail(node, "conservation",
			fmt.Sprintf("scratch page %d has wrong bytes after %dB send (first diff at %d)",
				myPage, n, firstDiff(got, pattern)))
	}
}

// opLocalRecv runs the device→memory direction and verifies the bytes
// that arrived in process memory.
func (s *scenario) opLocalRecv(node int, p *kernel.Proc, d *udmalib.Dev,
	dstBuf addr.VAddr, myPage uint32, rng *sim.RNG) {
	n := 64 + rng.Intn(addr.PageSize-64)
	devOff := (myPage + 1) * addr.PageSize
	pattern := patternBytes(rng.Uint64(), n)
	s.scratch[node].SetBytes(int(devOff), pattern)
	if err := d.Recv(dstBuf, devOff, n); err != nil {
		s.opError(node, "recv", err)
		return
	}
	got, err := p.ReadBuf(dstBuf, n)
	if err != nil {
		s.opError(node, "recv read-back", err)
		return
	}
	if !bytes.Equal(got, pattern) {
		s.fail(node, "conservation",
			fmt.Sprintf("recv of %dB from scratch page %d delivered wrong bytes (first diff at %d)",
				n, myPage+1, firstDiff(got, pattern)))
	}
}

// opTouch allocates fresh pages and fills them — paging pressure that
// forces evictions against whatever the UDMA hardware holds.
func (s *scenario) opTouch(node int, p *kernel.Proc, rng *sim.RNG) (touchRec, bool) {
	pages := 1 + rng.Intn(3)
	va, err := p.Alloc(pages * addr.PageSize)
	if err != nil {
		s.opError(node, "touch alloc", err)
		return touchRec{}, false
	}
	pattern := patternBytes(rng.Uint64(), pages*addr.PageSize)
	if err := p.WriteBuf(va, pattern); err != nil {
		s.opError(node, "touch fill", err)
		return touchRec{}, false
	}
	got, err := p.ReadBuf(va, len(pattern))
	if err != nil {
		s.opError(node, "touch read-back", err)
		return touchRec{}, false
	}
	if !bytes.Equal(got, pattern) {
		s.fail(node, "memory", fmt.Sprintf("freshly written buffer %#x reads back wrong", uint32(va)))
		return touchRec{}, false
	}
	return touchRec{va: va, pattern: pattern}, true
}

// opStatusProbe exercises the state machine's reject edges: an
// abandoned Store (cleared by the next context switch's Inval — I1), a
// mem→mem BadLoad, and a plain status poll.
func (s *scenario) opStatusProbe(node int, p *kernel.Proc, srcBuf addr.VAddr, rng *sim.RNG) {
	if err := p.Store(addr.VProxy(srcBuf), uint32(64+rng.Intn(256))); err != nil {
		s.opError(node, "probe store", err)
		return
	}
	if rng.Bool() {
		// Abandon the sequence: the DestLoaded latch must be cleared by
		// I1 before any other process's LOAD can consume it.
		return
	}
	if _, err := p.Load(addr.VProxy(srcBuf + addr.PageSize)); err != nil {
		s.opError(node, "probe badload", err)
		return
	}
	if _, err := p.Load(addr.VProxy(srcBuf)); err != nil {
		s.opError(node, "probe poll", err)
	}
}

// opPIOPoke drives the NIC's memory-mapped FIFO registers at an
// unmapped NIPT entry — the packet is dropped by the board, so the op
// exercises the PIO path with no memory side effects.
func (s *scenario) opPIOPoke(node int, p *kernel.Proc, nd *udmalib.Dev, rng *sim.RNG) {
	pioBase := nd.Base() + addr.VAddr(s.cfg.NIPTPages*addr.PageSize)
	invalidEntry := s.cfg.NIPTPages - 1
	if err := p.Store(pioBase+nic.PIORegDest, invalidEntry<<12); err != nil {
		s.opError(node, "pio dest", err)
		return
	}
	words := 1 + rng.Intn(4)
	for w := 0; w < words; w++ {
		if err := p.Store(pioBase+nic.PIORegData, uint32(rng.Uint64())); err != nil {
			s.opError(node, "pio data", err)
			return
		}
	}
	if err := p.Store(pioBase+nic.PIORegLaunch, 1); err != nil {
		s.opError(node, "pio launch", err)
		return
	}
	if _, err := p.Load(pioBase + nic.PIORegStatus); err != nil {
		s.opError(node, "pio status", err)
	}
}

// opDMAWrite runs the traditional kernel-initiated path against the
// scratch device, so syscall pinning and the system queue interleave
// with user-level UDMA traffic.
func (s *scenario) opDMAWrite(node int, p *kernel.Proc, srcBuf addr.VAddr, myPage uint32, rng *sim.RNG) {
	n := 64 + rng.Intn(addr.PageSize-64)
	pattern := patternBytes(rng.Uint64(), n)
	if err := p.WriteBuf(srcBuf, pattern); err != nil {
		s.opError(node, "dma fill", err)
		return
	}
	devPA := addr.DevProxy(s.scratchFirst[node]+myPage, 0)
	if err := p.DMAWrite(srcBuf, devPA, n, kernel.DMAOptions{}); err != nil {
		s.opError(node, "dma write", err)
		return
	}
	devOff := int(myPage) * addr.PageSize
	if got := s.scratch[node].Bytes(devOff, n); !bytes.Equal(got, pattern) {
		s.fail(node, "conservation",
			fmt.Sprintf("scratch page %d has wrong bytes after %dB DMAWrite (first diff at %d)",
				myPage, n, firstDiff(got, pattern)))
	}
}

// opRemoteSend performs a deliberate update: one full page through the
// sender NIC into the receiver's exported frame. The page is marked
// tainted across the transfer so a mid-send kill or injected fault
// disqualifies it from final verification instead of failing it.
func (s *scenario) opRemoteSend(node int, p *kernel.Proc, nd *udmalib.Dev,
	srcBuf addr.VAddr, rng *sim.RNG) {
	rp := s.remote
	for waits := 0; !s.windowReady; waits++ {
		if waits > 200 {
			return // receiver never exported; nothing to send into
		}
		p.Sleep(800)
	}
	j := rng.Intn(rp.pages)
	pattern := patternBytes(rng.Uint64(), addr.PageSize)
	if err := p.WriteBuf(srcBuf, pattern); err != nil {
		s.opError(node, "remote fill", err)
		return
	}
	rp.tainted[j] = true
	if err := nd.Send(srcBuf, udmalib.WindowOff(uint32(j), 0), addr.PageSize); err != nil {
		s.opError(node, "remote send", err)
		return // page stays tainted: delivery state unknown
	}
	rp.expect[j] = pattern
	rp.tainted[j] = false
}
