package simcheck

import (
	"fmt"

	"shrimp/internal/addr"
	"shrimp/internal/machine"
	"shrimp/internal/mmu"
)

// audit runs the online invariant checks against every node. It is
// called between lockstep windows, when no process is mid-instruction,
// and only reads state — an audited run is cycle-identical to an
// unaudited one.
func (s *scenario) audit(step int) {
	for i, n := range s.cl.Nodes {
		if s.capped() {
			return
		}
		s.auditNode(i, n)
	}
}

func (s *scenario) auditNode(node int, n *machine.Node) {
	// Simulated time is monotonic: an event clock that moves backward
	// invalidates every latency number the simulator reports.
	now := n.Clock.Now()
	if now < s.lastNow[node] {
		s.fail(node, "time", fmt.Sprintf("clock moved backward: %d -> %d", s.lastNow[node], now))
	}
	s.lastNow[node] = now

	// I1: every context switch fired exactly one Inval. The controller
	// latch carries a destination across the two-instruction initiation;
	// without the Inval the next process's LOAD consumes the previous
	// process's STORE and user-level protection is gone (paper §5).
	st := n.Kernel.Stats()
	if st.Invals != st.ContextSwitches {
		s.fail(node, "I1", fmt.Sprintf("%d context switches but %d Invals", st.ContextSwitches, st.Invals))
	}

	frames := n.Kernel.FrameStates()

	// Frame accounting: every frame is on the free list or marked used,
	// never both, never neither.
	used := 0
	for _, f := range frames {
		if f.Used {
			used++
		}
	}
	if used+n.Kernel.FreeFrames() != len(frames) {
		s.fail(node, "frame-accounting",
			fmt.Sprintf("%d used + %d free != %d frames", used, n.Kernel.FreeFrames(), len(frames)))
	}

	// I2/I3: walk every live process's memory-proxy PTEs against the
	// real mappings they shadow. Exited processes are skipped — reap
	// tears their tables down lazily.
	for _, p := range n.Kernel.Procs() {
		if p.Exited() {
			continue
		}
		as := p.AddressSpace()
		as.Walk(func(vpn uint32, e *mmu.PTE) bool {
			va := addr.PageAddr(vpn)
			if addr.VRegionOf(va) != addr.RegionMemProxy || !e.Valid || !e.Present {
				return true
			}
			realPTE := as.Lookup(addr.VPN(addr.VUnproxy(va)))
			// I2: a proxy PTE may be valid only while the real page it
			// shadows is mapped and resident, and must name exactly the
			// proxy-space alias of the real page's frame.
			if realPTE == nil || !realPTE.Valid || !realPTE.Present {
				s.fail(node, "I2",
					fmt.Sprintf("pid %d proxy vpn %#x present but real page is not", p.PID(), vpn))
				return !s.capped()
			}
			if want := addr.PFN(addr.Proxy(addr.FrameAddr(realPTE.PPN))); e.PPN != want {
				s.fail(node, "I2",
					fmt.Sprintf("pid %d proxy vpn %#x maps ppn %#x, real frame aliases to %#x",
						p.PID(), vpn, e.PPN, want))
				return !s.capped()
			}
			// I3: a writable proxy page means the CPU can initiate an
			// incoming transfer into the real page without a trap, so
			// the real page must already be dirty (and writable).
			if e.Writable && !(realPTE.Dirty && realPTE.Writable) {
				s.fail(node, "I3",
					fmt.Sprintf("pid %d proxy vpn %#x writable but real page dirty=%v writable=%v",
						p.PID(), vpn, realPTE.Dirty, realPTE.Writable))
				return !s.capped()
			}
			return true
		})
		if s.capped() {
			return
		}
	}

	// I4: every frame the UDMA hardware references — queued transfers,
	// the in-flight transfer, and the engine's current source and
	// destination — must still be allocated. A freed-but-referenced
	// frame is the wild-DMA bug the paper's reference counts exist to
	// prevent.
	if n.UDMA != nil {
		for _, pfn := range n.UDMA.ReferencedFrames() {
			if int(pfn) >= len(frames) {
				continue // device-region endpoint, not a RAM frame
			}
			if !frames[pfn].Used {
				s.fail(node, "I4", fmt.Sprintf("UDMA references freed frame %d", pfn))
			}
		}
		if err := n.UDMA.AuditRefCounts(); err != nil {
			s.fail(node, "refcount", err.Error())
		}
	}
	if n.Engine.Busy() {
		for _, pa := range []addr.PAddr{n.Engine.Source(), n.Engine.Destination()} {
			if addr.RegionOf(pa) != addr.RegionMemory {
				continue
			}
			pfn := addr.PFN(pa)
			if int(pfn) < len(frames) && !frames[pfn].Used {
				s.fail(node, "I4", fmt.Sprintf("DMA engine touches freed frame %d", pfn))
			}
		}
	}
}
