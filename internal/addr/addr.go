// Package addr defines the simulated machine's address types and the
// proxy address-space layout from the paper (Section 4, Figures 2–3).
//
// Addresses are 32 bits, pages are 4 KB. The physical and virtual
// address spaces are partitioned into four regions selected by the top
// two address bits:
//
//	00xx... real memory space
//	01xx... memory proxy space
//	10xx... device proxy space
//	11xx... kernel / unmapped
//
// With this layout the PROXY function of the paper — the one-to-one
// association between a real memory address and its memory-proxy alias —
// is a single bit flip, exactly the "somewhat more general scheme" of a
// fixed offset the paper describes:
//
//	PROXY(a)    = a | MemProxyBase
//	PROXY⁻¹(p)  = p &^ MemProxyBase
package addr

import "fmt"

// VAddr is a virtual address in some process's address space.
type VAddr uint32

// PAddr is a physical address on the machine bus.
type PAddr uint32

// Page geometry.
const (
	PageShift  = 12
	PageSize   = 1 << PageShift // 4096
	OffsetMask = PageSize - 1
)

// Region bases and the region-select mask (top two bits).
const (
	RegionMask    uint32 = 0xC000_0000
	MemoryBase    uint32 = 0x0000_0000
	MemProxyBase  uint32 = 0x4000_0000
	DevProxyBase  uint32 = 0x8000_0000
	KernelBase    uint32 = 0xC000_0000
	RegionSize    uint32 = 0x4000_0000 // bytes per region
	RegionMaxPage        = RegionSize >> PageShift
)

// Region identifies which quarter of the address space an address is in.
type Region int

const (
	RegionMemory Region = iota
	RegionMemProxy
	RegionDevProxy
	RegionKernel
)

// String returns a short human-readable region name.
func (r Region) String() string {
	switch r {
	case RegionMemory:
		return "memory"
	case RegionMemProxy:
		return "mem-proxy"
	case RegionDevProxy:
		return "dev-proxy"
	case RegionKernel:
		return "kernel"
	default:
		return fmt.Sprintf("region(%d)", int(r))
	}
}

// IsProxy reports whether the region is one of the two proxy regions,
// i.e. whether references to it are interpreted by the UDMA hardware.
func (r Region) IsProxy() bool {
	return r == RegionMemProxy || r == RegionDevProxy
}

// RegionOf decodes the region of a physical address.
func RegionOf(a PAddr) Region {
	return Region(uint32(a) >> 30)
}

// VRegionOf decodes the region of a virtual address. The simulated
// machine lays virtual regions out at the same bases as physical ones.
func VRegionOf(a VAddr) Region {
	return Region(uint32(a) >> 30)
}

// Proxy returns the memory-proxy alias of a real physical memory
// address: PROXY(a). It panics if a is not in the real memory region,
// because the hardware association only exists for real memory.
func Proxy(a PAddr) PAddr {
	if RegionOf(a) != RegionMemory {
		panic(fmt.Sprintf("addr: Proxy of non-memory address %#x (%s)", uint32(a), RegionOf(a)))
	}
	return a | PAddr(MemProxyBase)
}

// Unproxy returns the real memory address associated with a memory-proxy
// address: PROXY⁻¹(p). It panics if p is not in the memory proxy region.
func Unproxy(p PAddr) PAddr {
	if RegionOf(p) != RegionMemProxy {
		panic(fmt.Sprintf("addr: Unproxy of non-proxy address %#x (%s)", uint32(p), RegionOf(p)))
	}
	return p &^ PAddr(MemProxyBase)
}

// VProxy is the virtual-space PROXY function: the memory-proxy alias of
// a virtual memory address. It panics if a is not in the memory region.
func VProxy(a VAddr) VAddr {
	if VRegionOf(a) != RegionMemory {
		panic(fmt.Sprintf("addr: VProxy of non-memory address %#x (%s)", uint32(a), VRegionOf(a)))
	}
	return a | VAddr(MemProxyBase)
}

// VUnproxy inverts VProxy. It panics if p is not in the memory proxy
// region.
func VUnproxy(p VAddr) VAddr {
	if VRegionOf(p) != RegionMemProxy {
		panic(fmt.Sprintf("addr: VUnproxy of non-proxy address %#x (%s)", uint32(p), VRegionOf(p)))
	}
	return p &^ VAddr(MemProxyBase)
}

// DevProxy forms a device-proxy physical address from a page index
// within the device proxy region and a byte offset on that page.
func DevProxy(page uint32, off uint32) PAddr {
	if page >= RegionMaxPage {
		panic(fmt.Sprintf("addr: device proxy page %d out of range", page))
	}
	if off >= PageSize {
		panic(fmt.Sprintf("addr: device proxy offset %d out of range", off))
	}
	return PAddr(DevProxyBase | page<<PageShift | off)
}

// DevProxyPage extracts the device-proxy page index from a device-proxy
// physical address. It panics if p is not in the device proxy region.
func DevProxyPage(p PAddr) uint32 {
	if RegionOf(p) != RegionDevProxy {
		panic(fmt.Sprintf("addr: DevProxyPage of %#x (%s)", uint32(p), RegionOf(p)))
	}
	return (uint32(p) &^ DevProxyBase) >> PageShift
}

// VPN returns the virtual page number of a virtual address (including
// its region bits, so proxy pages have distinct VPNs from their real
// counterparts).
func VPN(a VAddr) uint32 { return uint32(a) >> PageShift }

// PFN returns the physical frame number of a physical address.
func PFN(a PAddr) uint32 { return uint32(a) >> PageShift }

// PageOff returns the offset of a virtual address within its page.
func PageOff(a VAddr) uint32 { return uint32(a) & OffsetMask }

// PPageOff returns the offset of a physical address within its page.
func PPageOff(a PAddr) uint32 { return uint32(a) & OffsetMask }

// PageBase returns the address of the start of the page containing a.
func PageBase(a VAddr) VAddr { return a &^ OffsetMask }

// PPageBase returns the start of the physical page containing a.
func PPageBase(a PAddr) PAddr { return a &^ OffsetMask }

// FrameAddr returns the physical address of the start of frame pfn.
func FrameAddr(pfn uint32) PAddr { return PAddr(pfn << PageShift) }

// PageAddr returns the virtual address of the start of page vpn.
func PageAddr(vpn uint32) VAddr { return VAddr(vpn << PageShift) }

// SamePage reports whether two virtual addresses are on the same page.
func SamePage(a, b VAddr) bool { return VPN(a) == VPN(b) }

// SpanCrossesPage reports whether [a, a+n) crosses a page boundary.
// Zero- and one-byte spans never cross.
func SpanCrossesPage(a VAddr, n int) bool {
	if n <= 1 {
		return false
	}
	return VPN(a) != VPN(a+VAddr(n-1))
}

// BytesToPageEnd returns how many bytes remain on a's page starting at
// a, inclusive of a itself.
func BytesToPageEnd(a VAddr) int {
	return PageSize - int(PageOff(a))
}
