package addr

import "testing"

// FuzzProxyAddr throws arbitrary 32-bit addresses at the proxy
// address-space algebra: the PROXY/PROXY⁻¹ bijection, region decoding,
// and page arithmetic must round-trip exactly for every address in
// their domain and panic only outside it.
func FuzzProxyAddr(f *testing.F) {
	f.Add(uint32(0))
	f.Add(uint32(0x0000_1234))
	f.Add(uint32(MemProxyBase))
	f.Add(uint32(DevProxyBase | 0x7F_F000))
	f.Add(uint32(KernelBase | 1))
	f.Add(^uint32(0))
	f.Fuzz(func(t *testing.T, raw uint32) {
		pa := PAddr(raw)
		va := VAddr(raw)
		region := RegionOf(pa)
		if vr := VRegionOf(va); vr != region {
			t.Fatalf("region split-brain for %#x: physical %v, virtual %v", raw, region, vr)
		}

		switch region {
		case RegionMemory:
			p := Proxy(pa)
			if RegionOf(p) != RegionMemProxy {
				t.Fatalf("Proxy(%#x) = %#x not in mem-proxy region", raw, uint32(p))
			}
			if back := Unproxy(p); back != pa {
				t.Fatalf("Unproxy(Proxy(%#x)) = %#x", raw, uint32(back))
			}
			if PPageOff(p) != PPageOff(pa) {
				t.Fatalf("Proxy(%#x) moved the page offset", raw)
			}
			vp := VProxy(va)
			if back := VUnproxy(vp); back != va {
				t.Fatalf("VUnproxy(VProxy(%#x)) = %#x", raw, uint32(back))
			}
			if VPN(vp) == VPN(va) {
				t.Fatalf("VProxy(%#x) kept the same VPN %#x", raw, VPN(va))
			}
		case RegionMemProxy:
			real := Unproxy(pa)
			if RegionOf(real) != RegionMemory {
				t.Fatalf("Unproxy(%#x) = %#x not in memory region", raw, uint32(real))
			}
			if p := Proxy(real); p != pa {
				t.Fatalf("Proxy(Unproxy(%#x)) = %#x", raw, uint32(p))
			}
		case RegionDevProxy:
			page := DevProxyPage(pa)
			if page >= RegionMaxPage {
				t.Fatalf("DevProxyPage(%#x) = %d out of range", raw, page)
			}
			if back := DevProxy(page, PPageOff(pa)); back != pa {
				t.Fatalf("DevProxy(DevProxyPage(%#x)) = %#x", raw, uint32(back))
			}
		case RegionKernel:
			mustPanic(t, "Proxy", func() { Proxy(pa) })
			mustPanic(t, "Unproxy", func() { Unproxy(pa) })
			mustPanic(t, "DevProxyPage", func() { DevProxyPage(pa) })
		}

		// Page arithmetic invariants hold for every address.
		if got := PageAddr(VPN(va)) + VAddr(PageOff(va)); got != va {
			t.Fatalf("PageAddr(VPN)+PageOff != identity for %#x: %#x", raw, uint32(got))
		}
		if got := FrameAddr(PFN(pa)) + PAddr(PPageOff(pa)); got != pa {
			t.Fatalf("FrameAddr(PFN)+PPageOff != identity for %#x: %#x", raw, uint32(got))
		}
		if PageBase(va) != PageAddr(VPN(va)) {
			t.Fatalf("PageBase disagrees with PageAddr∘VPN for %#x", raw)
		}
		if n := BytesToPageEnd(va); n < 1 || n > PageSize {
			t.Fatalf("BytesToPageEnd(%#x) = %d", raw, n)
		}
		if SpanCrossesPage(va, BytesToPageEnd(va)) {
			t.Fatalf("span of BytesToPageEnd(%#x) crosses its page", raw)
		}
		if !SamePage(va, va+VAddr(BytesToPageEnd(va)-1)) {
			t.Fatalf("last byte of %#x's page is on another page", raw)
		}
	})
}
