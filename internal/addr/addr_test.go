package addr

import (
	"testing"
	"testing/quick"
)

func TestRegionDecode(t *testing.T) {
	cases := []struct {
		a    PAddr
		want Region
	}{
		{0x0000_0000, RegionMemory},
		{0x3FFF_FFFF, RegionMemory},
		{0x4000_0000, RegionMemProxy},
		{0x7FFF_FFFF, RegionMemProxy},
		{0x8000_0000, RegionDevProxy},
		{0xBFFF_FFFF, RegionDevProxy},
		{0xC000_0000, RegionKernel},
		{0xFFFF_FFFF, RegionKernel},
	}
	for _, tc := range cases {
		if got := RegionOf(tc.a); got != tc.want {
			t.Errorf("RegionOf(%#x) = %v, want %v", uint32(tc.a), got, tc.want)
		}
		if got := VRegionOf(VAddr(tc.a)); got != tc.want {
			t.Errorf("VRegionOf(%#x) = %v, want %v", uint32(tc.a), got, tc.want)
		}
	}
}

func TestRegionString(t *testing.T) {
	if RegionMemory.String() != "memory" || RegionMemProxy.String() != "mem-proxy" ||
		RegionDevProxy.String() != "dev-proxy" || RegionKernel.String() != "kernel" {
		t.Fatal("unexpected region names")
	}
	if Region(99).String() != "region(99)" {
		t.Fatal("unknown region name")
	}
}

func TestIsProxy(t *testing.T) {
	if RegionMemory.IsProxy() || RegionKernel.IsProxy() {
		t.Fatal("memory/kernel regions must not be proxy")
	}
	if !RegionMemProxy.IsProxy() || !RegionDevProxy.IsProxy() {
		t.Fatal("proxy regions must report IsProxy")
	}
}

// Property from the paper: PROXY is a bijection between real memory and
// memory proxy space, and PROXY⁻¹ inverts it.
func TestProxyRoundTrip(t *testing.T) {
	prop := func(raw uint32) bool {
		a := PAddr(raw &^ RegionMask) // force into memory region
		p := Proxy(a)
		if RegionOf(p) != RegionMemProxy {
			return false
		}
		return Unproxy(p) == a
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVProxyRoundTrip(t *testing.T) {
	prop := func(raw uint32) bool {
		a := VAddr(raw &^ RegionMask)
		p := VProxy(a)
		return VRegionOf(p) == RegionMemProxy && VUnproxy(p) == a
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProxyPreservesOffsetWithinRegion(t *testing.T) {
	a := PAddr(0x0012_3456)
	p := Proxy(a)
	if uint32(p) != 0x4012_3456 {
		t.Fatalf("Proxy(%#x) = %#x, want 0x40123456", uint32(a), uint32(p))
	}
}

func TestProxyPanicsOutsideMemory(t *testing.T) {
	mustPanic(t, "Proxy(dev)", func() { Proxy(PAddr(DevProxyBase)) })
	mustPanic(t, "Unproxy(mem)", func() { Unproxy(PAddr(0)) })
	mustPanic(t, "VProxy(proxy)", func() { VProxy(VAddr(MemProxyBase)) })
	mustPanic(t, "VUnproxy(mem)", func() { VUnproxy(VAddr(0)) })
}

func TestDevProxyComposeDecompose(t *testing.T) {
	p := DevProxy(12345, 678)
	if RegionOf(p) != RegionDevProxy {
		t.Fatalf("DevProxy produced region %v", RegionOf(p))
	}
	if got := DevProxyPage(p); got != 12345 {
		t.Fatalf("DevProxyPage = %d, want 12345", got)
	}
	if got := PPageOff(p); got != 678 {
		t.Fatalf("offset = %d, want 678", got)
	}
}

func TestDevProxyBounds(t *testing.T) {
	mustPanic(t, "page too big", func() { DevProxy(RegionMaxPage, 0) })
	mustPanic(t, "offset too big", func() { DevProxy(0, PageSize) })
	mustPanic(t, "DevProxyPage of memory addr", func() { DevProxyPage(PAddr(0)) })
	// Largest valid values must not panic.
	DevProxy(RegionMaxPage-1, PageSize-1)
}

func TestPageArithmetic(t *testing.T) {
	a := VAddr(0x0001_2345)
	if VPN(a) != 0x12 {
		t.Fatalf("VPN = %#x, want 0x12", VPN(a))
	}
	if PageOff(a) != 0x345 {
		t.Fatalf("PageOff = %#x, want 0x345", PageOff(a))
	}
	if PageBase(a) != 0x0001_2000 {
		t.Fatalf("PageBase = %#x", uint32(PageBase(a)))
	}
	if PageAddr(VPN(a)) != PageBase(a) {
		t.Fatal("PageAddr(VPN(a)) != PageBase(a)")
	}
	p := PAddr(0x0002_3456)
	if PFN(p) != 0x23 {
		t.Fatalf("PFN = %#x, want 0x23", PFN(p))
	}
	if PPageBase(p) != 0x0002_3000 {
		t.Fatalf("PPageBase = %#x", uint32(PPageBase(p)))
	}
	if FrameAddr(PFN(p)) != PPageBase(p) {
		t.Fatal("FrameAddr(PFN(p)) != PPageBase(p)")
	}
}

func TestProxyVPNsDistinctFromRealVPNs(t *testing.T) {
	a := VAddr(0x0000_5000)
	if VPN(a) == VPN(VProxy(a)) {
		t.Fatal("proxy page shares VPN with its real page; PTEs would collide")
	}
}

func TestSamePage(t *testing.T) {
	if !SamePage(0x1000, 0x1FFF) {
		t.Fatal("same-page addresses reported different")
	}
	if SamePage(0x1FFF, 0x2000) {
		t.Fatal("adjacent pages reported same")
	}
}

func TestSpanCrossesPage(t *testing.T) {
	cases := []struct {
		a    VAddr
		n    int
		want bool
	}{
		{0x1000, 0, false},
		{0x1000, 1, false},
		{0x1000, PageSize, false},
		{0x1000, PageSize + 1, true},
		{0x1FFF, 1, false},
		{0x1FFF, 2, true},
		{0x1800, 0x800, false},
		{0x1800, 0x801, true},
	}
	for _, tc := range cases {
		if got := SpanCrossesPage(tc.a, tc.n); got != tc.want {
			t.Errorf("SpanCrossesPage(%#x, %d) = %v, want %v", uint32(tc.a), tc.n, got, tc.want)
		}
	}
}

func TestBytesToPageEnd(t *testing.T) {
	if got := BytesToPageEnd(0x1000); got != PageSize {
		t.Fatalf("BytesToPageEnd(page start) = %d, want %d", got, PageSize)
	}
	if got := BytesToPageEnd(0x1FFF); got != 1 {
		t.Fatalf("BytesToPageEnd(last byte) = %d, want 1", got)
	}
}

// Property: a span fits on one page iff its length is at most the bytes
// remaining on the page.
func TestSpanVsRemainingProperty(t *testing.T) {
	prop := func(raw uint32, n uint16) bool {
		a := VAddr(raw &^ RegionMask)
		if int(n) == 0 {
			return true
		}
		crosses := SpanCrossesPage(a, int(n))
		fits := int(n) <= BytesToPageEnd(a)
		return crosses == !fits
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", name)
		}
	}()
	fn()
}
