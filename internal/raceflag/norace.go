//go:build !race

// Package raceflag exposes whether the binary was built with the race
// detector. Exact-allocation assertions (testing.AllocsPerRun == 0) are
// meaningless under -race — the detector instruments allocations — so
// those tests skip themselves when Enabled is true, keeping the race CI
// job focused on what it can actually check: data-race freedom.
package raceflag

// Enabled reports whether the race detector is compiled in.
const Enabled = false
