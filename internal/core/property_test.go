package core

import (
	"testing"
	"testing/quick"

	"shrimp/internal/addr"
	"shrimp/internal/device"
)

// refModel is an abstract, obviously-correct model of the basic (queue-
// less) state machine of Figure 5 against which the hardware
// implementation is checked over random event sequences.
type refModel struct {
	state       State
	busyLeft    int // remaining abstract "ticks" of the in-flight transfer
	destIsDev   bool
	initiations int
	badLoads    int
}

func (m *refModel) tick() {
	if m.busyLeft > 0 {
		m.busyLeft--
	}
}

func (m *refModel) store(toDev bool, n int32) {
	if n < 0 { // Inval
		if m.state == DestLoaded {
			m.state = Idle
		}
		return
	}
	if m.busyLeft > 0 {
		return // busy basic machine ignores Store
	}
	m.state = DestLoaded
	m.destIsDev = toDev
}

func (m *refModel) load(fromDev bool) {
	if m.state != DestLoaded {
		return
	}
	if fromDev == m.destIsDev {
		m.badLoads++
		m.state = Idle
		return
	}
	m.initiations++
	m.state = Idle
	m.busyLeft = 3 // abstract transfer duration (ticks)
}

// TestControllerMatchesReferenceModel drives random event sequences
// through both the hardware and the reference model and compares the
// observable outcomes (initiation and BadLoad counts, terminal state).
func TestControllerMatchesReferenceModel(t *testing.T) {
	type op struct {
		Kind  uint8 // 0 store-mem, 1 store-dev, 2 load-mem, 3 load-dev, 4 inval, 5 advance
		Count uint16
	}
	prop := func(ops []op) bool {
		r := newRigQuiet(Config{})
		model := &refModel{}

		// The abstract "tick" is one third of a fixed-size transfer, so
		// advance the real clock by matching fractions.
		const count = 512 // bytes per transfer in this test
		tickCycles := (r.transferCycles(count) + 2) / 3

		memProxy := addr.Proxy(0x3000)
		devProxy := addr.DevProxy(1, 0)
		for _, o := range ops {
			switch o.Kind % 6 {
			case 0:
				r.ctl.Store(memProxy, count)
				model.store(false, count)
			case 1:
				r.ctl.Store(devProxy, count)
				model.store(true, count)
			case 2:
				r.ctl.Load(memProxy)
				model.load(false)
			case 3:
				r.ctl.Load(devProxy)
				model.load(true)
			case 4:
				r.ctl.Store(memProxy, -1)
				model.store(false, -1)
			case 5:
				r.clock.Advance(tickCycles)
				model.tick()
			}
		}
		st := r.ctl.Stats()
		if st.Initiations != uint64(model.initiations) {
			t.Logf("initiations: hw %d vs model %d", st.Initiations, model.initiations)
			return false
		}
		if st.BadLoads != uint64(model.badLoads) {
			t.Logf("badloads: hw %d vs model %d", st.BadLoads, model.badLoads)
			return false
		}
		// Terminal latch state must agree (Transferring may differ by
		// one tick of rounding, so only compare DestLoaded-ness).
		hwLatched := r.ctl.State() == DestLoaded
		if hwLatched != (model.state == DestLoaded) {
			t.Logf("latch: hw %v vs model %v", r.ctl.State(), model.state)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestRandomInitiationsAlwaysDeliverData fires a long random schedule
// of valid single-page initiations with waits and checks every byte
// arrives where it was aimed.
func TestRandomInitiationsAlwaysDeliverData(t *testing.T) {
	prop := func(seed uint16) bool {
		r := newRigQuiet(Config{QueueDepth: int(seed%4) * 2})
		rng := newSplitMix(uint64(seed) + 1)
		type sent struct {
			devOff uint32
			val    byte
			n      int
		}
		var sends []sent
		for i := 0; i < 12; i++ {
			n := 4 * (1 + int(rng()%64))
			devPage := uint32(rng() % 8)
			devOff := uint32(rng()%64) * 4
			if int(devOff)+n > addr.PageSize {
				devOff = 0
			}
			// One source page per send: a queued transfer reads its
			// source at completion time, so re-using a page before the
			// earlier transfer drains would (correctly!) deliver the
			// newer data.
			srcPA := addr.PAddr(0x4000 + uint32(i)*0x1000)
			val := byte(rng())
			payload := make([]byte, n)
			for j := range payload {
				payload[j] = val
			}
			if err := r.ram.Write(srcPA, payload); err != nil {
				return false
			}
			st := r.initiate(addr.DevProxy(devPage, devOff), addr.Proxy(srcPA), int32(n))
			if !st.Initiated() {
				// Busy basic machine: drain and retry once.
				r.clock.RunUntilIdle()
				st = r.initiate(addr.DevProxy(devPage, devOff), addr.Proxy(srcPA), int32(n))
				if !st.Initiated() {
					return false
				}
			}
			sends = append(sends, sent{devOff: devPage*addr.PageSize + devOff, val: val, n: n})
			if rng()%2 == 0 {
				r.clock.RunUntilIdle()
			}
		}
		r.clock.RunUntilIdle()
		// Later sends may overwrite earlier overlapping ones; verify the
		// LAST write to each region (walk backwards, skip covered).
		covered := map[uint32]bool{}
		for i := len(sends) - 1; i >= 0; i-- {
			s := sends[i]
			ok := true
			for b := 0; b < s.n; b++ {
				off := s.devOff + uint32(b)
				if covered[off] {
					continue
				}
				covered[off] = true
				if r.buf.Bytes(int(off), 1)[0] != s.val {
					ok = false
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQueueFullRemainingBytesTwoProcesses interleaves two initiators
// (two time-sliced processes sharing the controller, each with its own
// source and destination pages) until the request queue refuses a
// transfer, and checks the paper's REMAINING-BYTES contract on the
// refusal: the status LOAD reports the actual outstanding work —
// engine remaining plus every queued request — not the latched count of
// the refused request; the refuser's latch survives (DestLoaded) so the
// LOAD alone can retry; and as the queue drains, successive refusals
// report monotonically non-increasing outstanding byte counts until the
// retry initiates.
func TestQueueFullRemainingBytesTwoProcesses(t *testing.T) {
	prop := func(seed uint16) bool {
		depth := 1 + int(seed%4)
		r := newRigQuiet(Config{QueueDepth: depth})
		rng := newSplitMix(uint64(seed)*977 + 7)

		// Two "processes": disjoint source frames and device pages, so
		// both can legally have work outstanding at once.
		type proc struct {
			srcPA   addr.PAddr
			devPage uint32
		}
		procs := [2]proc{{srcPA: 0x4000, devPage: 1}, {srcPA: 0x8000, devPage: 5}}

		queuedBytes := 0 // bytes accepted (inflight + queued) so far
		var full Status
		fullSeen := false
		// Fill: alternate initiators, no clock advance, until a refusal.
		for i := 0; i < 2*(depth+2) && !fullSeen; i++ {
			p := procs[i%2]
			n := 4 * (8 + int(rng()%120)) // 32..508 bytes
			st := r.initiate(addr.DevProxy(p.devPage, 0), addr.Proxy(p.srcPA), int32(n))
			switch {
			case st.Initiated():
				queuedBytes += n
			case st.DeviceErr()&device.ErrQueueFull != 0:
				full = st
				fullSeen = true
			default:
				t.Logf("unexpected status %v", st)
				return false
			}
		}
		if !fullSeen {
			t.Logf("queue (depth %d) never filled", depth)
			return false
		}

		// The refusal reports the true outstanding figure: everything
		// accepted so far, minus what the engine has already moved —
		// here, nothing, because the clock never advanced.
		if full.Remaining() != queuedBytes {
			t.Logf("REMAINING-BYTES %d, want %d outstanding", full.Remaining(), queuedBytes)
			return false
		}
		if full.Initiated() || full.Invalid() {
			t.Logf("queue-full status looks initiated or invalid: %v", full)
			return false
		}
		// The refused initiator's latch must survive so a LOAD alone can
		// retry once the queue drains (the library's initiateQueued
		// protocol depends on this).
		if r.ctl.State() != DestLoaded {
			t.Logf("state after refusal = %v, want DestLoaded", r.ctl.State())
			return false
		}

		// Drain in steps, retrying with the LOAD alone. Outstanding
		// bytes must never increase between consecutive refusals, and
		// the retry must eventually initiate.
		retrySrc := procs[1].srcPA // the last refused initiator's source
		lastOutstanding := full.Remaining()
		for tries := 0; ; tries++ {
			if tries > 64 {
				t.Log("LOAD retry never initiated")
				return false
			}
			r.clock.Advance(r.transferCycles(128))
			st := r.ctl.Load(addr.Proxy(retrySrc))
			if st.Initiated() {
				break
			}
			if st.DeviceErr()&device.ErrQueueFull == 0 {
				// Latch lost or another failure: protocol broken.
				t.Logf("retry status %v", st)
				return false
			}
			if st.Remaining() > lastOutstanding {
				t.Logf("outstanding grew while draining: %d -> %d", lastOutstanding, st.Remaining())
				return false
			}
			lastOutstanding = st.Remaining()
		}
		r.clock.RunUntilIdle()
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// newSplitMix is a tiny local RNG for property tests (keeps them
// independent of sim.RNG).
func newSplitMix(seed uint64) func() uint64 {
	s := seed
	return func() uint64 {
		s += 0x9E3779B97F4A7C15
		z := s
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
}
