package core

import (
	"errors"
	"testing"

	"shrimp/internal/addr"
	"shrimp/internal/device"
)

// TestDequeueRejectionFailsRequestAndStartsNext is the regression test
// for the dequeue-time panic: a queued request that the engine rejects
// when it is popped (validated at enqueue, conditions changed while it
// waited) must fail that request alone and start the one behind it.
func TestDequeueRejectionFailsRequestAndStartsNext(t *testing.T) {
	r, f := faultyRig(Config{QueueDepth: 4})
	for i := 0; i < 3; i++ {
		r.ram.Write(addr.PAddr(0x3000+i*0x1000), []byte{byte(20 + i)})
		st := r.initiate(addr.DevProxy(0, uint32(128*i)), addr.Proxy(addr.PAddr(0x3000+i*0x1000)), 4)
		if !st.Initiated() {
			t.Fatalf("initiation %d: %v", i, st)
		}
	}
	// Armed only now, after every enqueue-time validation passed: the
	// rejection fires inside engine.Start when request #1 is popped at
	// request #0's completion.
	f.RejectNext = 1
	r.clock.RunUntilIdle()

	if got := r.buf.Bytes(0, 1)[0]; got != 20 {
		t.Fatalf("request 0 did not deliver: %d", got)
	}
	if got := r.buf.Bytes(128, 1)[0]; got == 21 {
		t.Fatal("rejected request 1 still moved data")
	}
	if got := r.buf.Bytes(256, 1)[0]; got != 22 {
		t.Fatalf("request 2 behind the rejection did not deliver: %d", got)
	}
	st := r.ctl.Stats()
	if st.DequeueRejects != 1 || st.Failures != 1 {
		t.Fatalf("DequeueRejects=%d Failures=%d, want 1/1", st.DequeueRejects, st.Failures)
	}
	if r.ctl.State() != Idle || r.ctl.QueueLen() != 0 {
		t.Fatalf("machine not drained: state=%v queue=%d", r.ctl.State(), r.ctl.QueueLen())
	}
	for i := 0; i < 3; i++ {
		if r.ctl.PageInUse(addr.PFN(addr.PAddr(0x3000 + i*0x1000))) {
			t.Fatalf("frame %d still referenced (I4 leak)", i)
		}
	}
	// The rejected transfer's base carries the latched error bits,
	// read-to-clear.
	poll := r.ctl.Load(addr.Proxy(0x4000))
	if poll.DeviceErr()&device.ErrBounds == 0 {
		t.Fatalf("poll of rejected base missing error bits: %v", poll)
	}
	if again := r.ctl.Load(addr.Proxy(0x4000)); again.DeviceErr() != 0 {
		t.Fatalf("error latch not cleared by read: %v", again)
	}
	// The surviving transfers' bases never latched anything.
	if poll := r.ctl.Load(addr.Proxy(0x3000)); poll.DeviceErr() != 0 {
		t.Fatalf("clean base reports error: %v", poll)
	}
}

// TestErrorLatchHeldWhileSameBaseStillMatches: a poll must not consume
// the latched error while a later same-base transfer is still in flight
// — the waiter is polling on MATCH and ignoring error bits.
func TestErrorLatchHeldWhileSameBaseStillMatches(t *testing.T) {
	r, f := faultyRig(Config{QueueDepth: 4})
	r.ram.Write(0x3000, []byte{7})
	// Two transfers from the SAME base: the first fails at completion,
	// the second (queued behind) is still matching when we poll.
	st := r.initiate(addr.DevProxy(0, 0), addr.Proxy(0x3000), 4)
	if !st.Initiated() {
		t.Fatal(st)
	}
	st = r.initiate(addr.DevProxy(0, 128), addr.Proxy(0x3000), 4)
	if !st.Initiated() {
		t.Fatal(st)
	}
	f.FailNext = 1 // first completion fails
	// Advance only to the first completion: deliverAt of transfer #2 is
	// still pending, so its base still matches.
	r.clock.Advance(r.transferCycles(4))
	poll := r.ctl.Load(addr.Proxy(0x3000))
	if !poll.Match() {
		t.Skip("second transfer already done on this cost model")
	}
	if poll.DeviceErr() != 0 {
		t.Fatalf("latch consumed while base still matching: %v", poll)
	}
	r.clock.RunUntilIdle()
	poll = r.ctl.Load(addr.Proxy(0x3000))
	if poll.Match() || poll.DeviceErr()&device.ErrTransferFault == 0 {
		t.Fatalf("latched failure not reported once matching stopped: %v", poll)
	}
}

// TestImmediateEngineRejectionSurfacesInStatus is the regression test
// for the immediate-dispatch panic: the device validates the request but
// the engine refuses it (memory endpoint outside installed RAM, which
// only the engine checks). The initiating LOAD must report the error.
func TestImmediateEngineRejectionSurfacesInStatus(t *testing.T) {
	r := newRig(t, Config{})
	// The rig installs 64 frames (0x40000 bytes); 0x41000 is a valid
	// proxy address whose memory target does not exist.
	st := r.initiate(addr.DevProxy(0, 0), addr.Proxy(0x41000), 64)
	if st.Initiated() {
		t.Fatalf("out-of-RAM source initiated: %v", st)
	}
	if st.DeviceErr()&device.ErrTransferFault == 0 {
		t.Fatalf("engine rejection missing error bits: %v", st)
	}
	if r.ctl.State() != Idle {
		t.Fatalf("state = %v, want Idle", r.ctl.State())
	}
	if r.ctl.Stats().DeviceErrors == 0 {
		t.Fatal("rejection not counted")
	}
	// Machine immediately reusable.
	r.ram.Write(0x2000, []byte{5})
	st = r.initiate(addr.DevProxy(0, 0), addr.Proxy(0x2000), 4)
	if !st.Initiated() {
		t.Fatalf("post-rejection initiation: %v", st)
	}
	r.clock.RunUntilIdle()
	if r.buf.Bytes(0, 1)[0] != 5 {
		t.Fatal("post-rejection transfer did not deliver")
	}
}

// TestEnqueueSystemRejectionFailsTicket: an invalid system-queue
// submission would never become startable; the kernel must get a ticket
// already failed, not nil (nil means "queue full, retry later") and not
// a ticket that never completes.
func TestEnqueueSystemRejectionFailsTicket(t *testing.T) {
	r, f := faultyRig(Config{SystemQueueDepth: 2})
	r.ram.Write(0x2000, []byte{1, 2, 3, 4})
	f.RejectNext = 1
	tk := r.ctl.EnqueueSystem(0x2000, addr.DevProxy(0, 0), 4)
	if tk == nil {
		t.Fatal("rejected submission returned nil (retry) instead of a failed ticket")
	}
	if !tk.Done || tk.Err == nil {
		t.Fatalf("ticket = %+v, want Done with error", tk)
	}
	if r.ctl.Stats().Failures != 1 {
		t.Fatalf("Failures = %d", r.ctl.Stats().Failures)
	}
	// The engine is free and the next submission works.
	tk = r.ctl.EnqueueSystem(0x2000, addr.DevProxy(0, 0), 4)
	if tk == nil || tk.Done {
		t.Fatalf("post-rejection submission: %+v", tk)
	}
	r.clock.RunUntilIdle()
	if !tk.Done || tk.Err != nil {
		t.Fatalf("post-rejection completion: %+v", tk)
	}
}

// TestTerminateFailsTicketsAndLatchesError: the machine-check path must
// deliver core.ErrTerminated to every outstanding ticket and latch the
// error for polling users.
func TestTerminateFailsTicketsAndLatchesError(t *testing.T) {
	r := newRig(t, Config{QueueDepth: 4, SystemQueueDepth: 2})
	r.ram.Write(0x5000, []byte{9})
	st := r.initiate(addr.DevProxy(0, 0), addr.Proxy(0x5000), 4096) // user, in flight
	if !st.Initiated() {
		t.Fatal(st)
	}
	tk := r.ctl.EnqueueSystem(0x6000, addr.DevProxy(1, 0), 64) // system, queued
	if tk == nil || tk.Done {
		t.Fatalf("system submission: %+v", tk)
	}
	if n := r.ctl.Terminate(); n != 2 {
		t.Fatalf("Terminate discarded %d, want 2", n)
	}
	if !tk.Done || !errors.Is(tk.Err, ErrTerminated) {
		t.Fatalf("system ticket after Terminate: %+v", tk)
	}
	poll := r.ctl.Load(addr.Proxy(0x5000))
	if poll.DeviceErr()&device.ErrTransferFault == 0 {
		t.Fatalf("terminated user transfer left no latched error: %v", poll)
	}
	if again := r.ctl.Load(addr.Proxy(0x5000)); again.DeviceErr() != 0 {
		t.Fatalf("latch not read-to-clear: %v", again)
	}
	if r.ctl.Stats().Failures != 2 {
		t.Fatalf("Failures = %d, want 2", r.ctl.Stats().Failures)
	}
}

// TestQueueFullStatusReportsOutstandingBytes is the regression test for
// the queue-full status word: REMAINING-BYTES must report the actual
// outstanding work, not the latched count of the refused request.
func TestQueueFullStatusReportsOutstandingBytes(t *testing.T) {
	r := newRig(t, Config{QueueDepth: 1})
	r.ram.Write(0x3000, make([]byte, 8))
	// Fill: one in flight, one queued.
	for i := 0; i < 2; i++ {
		st := r.initiate(addr.DevProxy(0, uint32(512*i)), addr.Proxy(addr.PAddr(0x3000+i*0x1000)), 512)
		if !st.Initiated() {
			t.Fatalf("initiation %d: %v", i, st)
		}
	}
	// Third request of a tiny 8 bytes: refused. The old code echoed the
	// refused request's own count (8); it must instead report what the
	// hardware is still working on — at least the queued 512 bytes.
	st := r.initiate(addr.DevProxy(0, 2048), addr.Proxy(0x5000), 8)
	if st.Initiated() || st.DeviceErr() != device.ErrQueueFull {
		t.Fatalf("queue-full status: %v", st)
	}
	if st.Remaining() < 512 {
		t.Fatalf("queue-full REMAINING-BYTES = %d, want >= 512 (the outstanding work)", st.Remaining())
	}
	want := r.ctl.outstandingBytes()
	if want > remainingMax {
		want = remainingMax
	}
	if st.Remaining() != want {
		t.Fatalf("queue-full REMAINING-BYTES = %d, want %d", st.Remaining(), want)
	}
}

// TestEnqueueSystemCountsInitiations: the stats fix — system-queue
// submissions are initiations too.
func TestEnqueueSystemCountsInitiations(t *testing.T) {
	r := newRig(t, Config{SystemQueueDepth: 2})
	r.ram.Write(0x2000, []byte{1})
	if tk := r.ctl.EnqueueSystem(0x2000, addr.DevProxy(0, 0), 4); tk == nil {
		t.Fatal("submission refused")
	}
	if tk := r.ctl.EnqueueSystem(0x2000, addr.DevProxy(0, 64), 4); tk == nil {
		t.Fatal("queued submission refused")
	}
	if got := r.ctl.Stats().Initiations; got != 2 {
		t.Fatalf("Initiations = %d, want 2", got)
	}
	r.clock.RunUntilIdle()
}
