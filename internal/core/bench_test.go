package core

import (
	"testing"

	"shrimp/internal/addr"
	"shrimp/internal/telemetry"
)

// benchmarkFastPath drives the controller's two-instruction initiation
// plus the engine completion — the hot path every transfer takes — with
// telemetry either detached (nil instruments, the default) or attached.
// Comparing the two benchmarks shows what an enabled registry costs;
// the design target is under 2x.
func benchmarkFastPath(b *testing.B, withMetrics bool) {
	r := newRigQuiet(Config{})
	if withMetrics {
		scope := telemetry.New().Scope(telemetry.L("node", "0"))
		r.ctl.SetMetrics(scope)
		r.eng.SetMetrics(scope)
	}
	const count = 64
	payload := make([]byte, count)
	if err := r.ram.Write(0x5000, payload); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.ctl.Store(addr.DevProxy(2, 0), count)
		if st := r.ctl.Load(addr.Proxy(0x5000)); !st.Initiated() {
			b.Fatalf("initiation failed: %v", st)
		}
		r.clock.RunUntilIdle()
	}
}

func BenchmarkControllerFastPathNoMetrics(b *testing.B) { benchmarkFastPath(b, false) }
func BenchmarkControllerFastPathMetrics(b *testing.B)   { benchmarkFastPath(b, true) }
