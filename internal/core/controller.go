package core

import (
	"errors"
	"fmt"
	"sort"

	"shrimp/internal/addr"
	"shrimp/internal/device"
	"shrimp/internal/dma"
	"shrimp/internal/sim"
	"shrimp/internal/telemetry"
	"shrimp/internal/trace"
)

// ErrTerminated is the error delivered to tickets and the status-word
// error latch when the kernel's Terminate (machine-check path) discards
// a pending or in-flight transfer.
var ErrTerminated = errors.New("core: transfer terminated")

// State is the UDMA state machine state (paper Figure 5).
type State int

const (
	Idle State = iota
	DestLoaded
	Transferring
)

func (s State) String() string {
	switch s {
	case Idle:
		return "Idle"
	case DestLoaded:
		return "DestLoaded"
	case Transferring:
		return "Transferring"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// request is one pending transfer: endpoints already translated to bus
// addresses, count already clamped to page boundaries, base remembered
// for the MATCH flag.
type request struct {
	src, dst addr.PAddr
	count    int
	base     addr.PAddr // physical proxy address of the initiating LOAD
	ticket   *SysTicket // non-nil for system-queue submissions

	// Telemetry timestamps (pure observation; never read by the state
	// machine): when the request was accepted and when the engine
	// actually started it.
	enqueuedAt sim.Cycles
	startedAt  sim.Cycles
}

// SysTicket tracks one system-queue submission to completion. The
// kernel polls Done between engine-completion wakeups.
type SysTicket struct {
	Done bool
	Err  error
}

// Config selects controller variants for the ablation experiments.
type Config struct {
	// QueueDepth is the Section 7 request queue size. Zero gives the
	// basic controller of Sections 3–6: while a transfer is in flight
	// the machine ignores Store events and refuses initiations.
	QueueDepth int
	// SystemQueueDepth enables the paper's two-priority-queue variant:
	// a second queue reserved for the kernel, drained before the user
	// queue. Zero disables it.
	SystemQueueDepth int
}

// Controller is the UDMA hardware: the state machine interpreting the
// two-instruction initiation sequence, physical proxy-address
// translation, and the interface the kernel reads to maintain
// invariant I4. It drives one standard dma.Engine.
//
// The controller is deliberately ignorant of processes: "the UDMA
// device is stateless with respect to a context switch ... The UDMA
// device does not know which user process is running" (Section 6).
// Atomicity of the two-reference sequence is the kernel's job (I1),
// done by firing Inval on every context switch.
type Controller struct {
	engine *dma.Engine
	devmap *device.Map
	clock  *sim.Clock
	cfg    Config

	state State
	// Latched by the Store half of the sequence.
	dest  addr.PAddr
	count int

	// In-flight transfer, for MATCH/remaining and I4.
	inflight    request
	hasInflight bool

	userQ []request
	sysQ  []request

	tracer *trace.Tracer // nil = tracing off

	// pageRefs counts, per physical frame, how many pending or
	// in-flight requests touch it — the "reference-count register" the
	// paper proposes for I4 with queueing.
	pageRefs map[uint32]int

	// failedBits is the per-transfer error latch: when a transfer fails
	// after its initiating LOAD already returned success (a completion-
	// time fault, a dequeue-time rejection, a kernel Terminate), the
	// error bits are latched under the transfer's base proxy address. A
	// status poll of that address reports and clears them — the read-to-
	// clear error register the paper's termination discussion implies.
	// A new initiation from the same base drops any stale entry.
	failedBits map[addr.PAddr]device.ErrBits

	stats Stats
	m     ctlMetrics
}

// ctlMetrics holds the controller's telemetry instruments. Nil
// instruments are free no-ops, matching the nil-tracer idiom, so the
// initiation fast path costs one pointer check per record point when
// metrics are off.
type ctlMetrics struct {
	scope       *telemetry.Scope
	initiations *telemetry.Counter
	completions *telemetry.Counter
	failures    *telemetry.Counter
	queueFull   *telemetry.Counter
	queueDepth  *telemetry.Gauge
	latency     *telemetry.Histogram // enqueue (accepted LOAD) → completion
	queueWait   *telemetry.Histogram // enqueue → engine start
	bytes       *telemetry.Histogram
}

// SetMetrics attaches telemetry instruments (nil scope disables them).
// Recording never advances the clock or changes controller decisions:
// a run with metrics enabled is cycle-identical to one without.
func (c *Controller) SetMetrics(s *telemetry.Scope) {
	c.m = ctlMetrics{
		scope:       s,
		initiations: s.Counter("udma_initiations"),
		completions: s.Counter("udma_completions"),
		failures:    s.Counter("udma_failures"),
		queueFull:   s.Counter("udma_queue_full"),
		queueDepth:  s.Gauge("udma_queue_depth"),
		latency:     s.Histogram("udma_xfer_latency_cycles"),
		queueWait:   s.Histogram("udma_queue_wait_cycles"),
		bytes:       s.Histogram("udma_xfer_bytes"),
	}
}

// observeQueueDepth publishes the combined queue length after any
// enqueue/dequeue transition.
func (c *Controller) observeQueueDepth() {
	c.m.queueDepth.Set(int64(len(c.userQ) + len(c.sysQ)))
}

// Stats counts controller events for the experiments.
type Stats struct {
	Stores         uint64 // Store events (positive nbytes)
	Loads          uint64 // Load events
	Invals         uint64 // Inval events
	Initiations    uint64 // transfers started or enqueued
	BadLoads       uint64 // WRONG-SPACE rejections
	DeviceErrors   uint64 // device-validation rejections
	QueueFull      uint64 // initiations refused for a full queue
	Busy           uint64 // loads observing a busy basic controller
	Completions    uint64 // engine completions
	Terminations   uint64 // kernel-initiated Terminate calls
	Failures       uint64 // accepted transfers that did not complete
	DequeueRejects uint64 // queued requests the engine rejected at dispatch
	MaxQueueLen    int    // high-water mark of the user queue
}

// New wires a controller onto a DMA engine and device map. It
// registers itself on the engine's completion interrupt to pop queued
// requests.
func New(engine *dma.Engine, devmap *device.Map, clock *sim.Clock, cfg Config) *Controller {
	if engine == nil || devmap == nil || clock == nil {
		panic("core: New requires non-nil engine, devmap and clock")
	}
	if cfg.QueueDepth < 0 || cfg.SystemQueueDepth < 0 {
		panic("core: negative queue depth")
	}
	c := &Controller{
		engine:     engine,
		devmap:     devmap,
		clock:      clock,
		cfg:        cfg,
		pageRefs:   make(map[uint32]int),
		failedBits: make(map[addr.PAddr]device.ErrBits),
	}
	engine.OnComplete(func(err error) { c.onEngineDone(err) })
	return c
}

// SetTracer attaches an event tracer (nil disables tracing).
func (c *Controller) SetTracer(t *trace.Tracer) { c.tracer = t }

// State returns the current state-machine state. With queueing enabled
// the machine reports Transferring whenever work is in flight or
// queued, matching what the status word shows a user.
func (c *Controller) State() State {
	if c.state == DestLoaded {
		return DestLoaded
	}
	if c.busy() {
		return Transferring
	}
	return Idle
}

// Stats returns a copy of the event counters.
func (c *Controller) Stats() Stats { return c.stats }

// QueueLen returns the current user-queue length.
func (c *Controller) QueueLen() int { return len(c.userQ) }

func (c *Controller) busy() bool {
	return c.engine.Busy() || len(c.userQ) > 0 || len(c.sysQ) > 0
}

// Store is the hardware's reaction to a store of value at proxy
// physical address pa (the STORE half of the initiation sequence, or an
// Inval when value is negative). The paper's Store event latches the
// DESTINATION and COUNT registers.
//
// pa must be in a proxy region; the machine's bus decode guarantees it.
func (c *Controller) Store(pa addr.PAddr, value int32) {
	mustProxy(pa, "Store")
	if value < 0 {
		// Inval event: terminate an incomplete initiation sequence.
		c.stats.Invals++
		c.tracer.Record(trace.EvInval, uint64(pa), 0, "")
		c.state = Idle
		return
	}
	c.stats.Stores++
	c.tracer.Record(trace.EvStore, uint64(pa), uint64(value), "")
	if c.cfg.QueueDepth == 0 && c.busy() {
		// Basic machine: "if no transition is depicted for a given
		// event in a given state, then that event does not cause a
		// state transition" — Store in Transferring is ignored.
		return
	}
	// Idle --Store--> DestLoaded, or DestLoaded --Store--> DestLoaded
	// (overwrites the registers).
	c.dest = pa
	c.count = int(value)
	c.state = DestLoaded
}

// Inval is the kernel-facing spelling of storing a negative value to
// any valid proxy address; the context-switch code calls it (I1).
func (c *Controller) Inval() {
	c.Store(addr.PAddr(addr.MemProxyBase), -1)
}

// Load is the hardware's reaction to a load from proxy physical
// address pa: the LOAD half of the initiation sequence, or a status
// poll. It returns the status word.
func (c *Controller) Load(pa addr.PAddr) Status {
	mustProxy(pa, "Load")
	c.stats.Loads++
	c.tracer.Record(trace.EvLoad, uint64(pa), 0, "")

	if c.state != DestLoaded {
		// Status poll (or a LOAD whose STORE half was lost to an Inval
		// or ignored by a busy basic machine).
		if c.busy() {
			c.stats.Busy++
		}
		return c.pollStatus(pa)
	}

	// BadLoad: source in the same proxy region as the destination asks
	// for mem→mem or dev→dev, which the basic UDMA device rejects.
	if addr.RegionOf(pa) == addr.RegionOf(c.dest) {
		c.stats.BadLoads++
		c.tracer.Record(trace.EvBadLoad, uint64(pa), uint64(c.dest), "")
		c.state = Idle
		return makeStatus(false, c.busy(), false, false, true, 0, 0) |
			c.matchBit(pa)
	}

	req, errBits := c.makeRequest(pa)
	if errBits != 0 {
		c.stats.DeviceErrors++
		c.state = Idle
		return makeStatus(false, c.busy(), false, false, false, 0, errBits)
	}

	// Dispatch: straight to the engine if it is free and nothing is
	// queued ahead; otherwise queue (if allowed and roomy).
	switch {
	case !c.engine.Busy() && len(c.userQ) == 0 && len(c.sysQ) == 0:
		if err := c.engine.Start(req.src, req.dst, req.count); err != nil {
			// The device validated the request but the engine refused it
			// (e.g. a memory endpoint outside installed RAM, which only
			// the engine checks). Surface the error in this LOAD's
			// status word instead of crashing the machine.
			c.stats.DeviceErrors++
			c.tracer.Record(trace.EvTransferFail, uint64(req.src), uint64(req.dst), err.Error())
			c.state = Idle
			return makeStatus(false, c.busy(), false, false, false, 0, errBitsOf(err))
		}
		delete(c.failedBits, req.base)
		req.enqueuedAt = c.clock.Now()
		req.startedAt = req.enqueuedAt
		c.m.queueWait.Observe(0)
		c.inflight = req
		c.hasInflight = true
		c.ref(req)
	case c.cfg.QueueDepth > 0 && len(c.userQ) < c.cfg.QueueDepth:
		delete(c.failedBits, req.base)
		req.enqueuedAt = c.clock.Now()
		c.userQ = append(c.userQ, req)
		if len(c.userQ) > c.stats.MaxQueueLen {
			c.stats.MaxQueueLen = len(c.userQ)
		}
		c.observeQueueDepth()
		c.ref(req)
	case c.cfg.QueueDepth > 0:
		// Queue full: refuse, keep DestLoaded so the user can retry
		// the LOAD alone once the queue drains. REMAINING-BYTES reports
		// the actual outstanding work (engine remaining plus queued
		// bytes), the same figure a status poll computes — not the raw
		// latched count of the refused request.
		c.stats.QueueFull++
		c.m.queueFull.Inc()
		return makeStatus(false, true, false, c.matchAny(pa), false, c.outstandingBytes(), device.ErrQueueFull)
	default:
		// Basic machine busy: the Store half was accepted while idle
		// but another initiation won; report busy, drop the latch.
		c.stats.Busy++
		c.state = Idle
		return makeStatus(false, true, false, c.matchAny(pa), false, 0, 0)
	}

	c.stats.Initiations++
	c.m.initiations.Inc()
	c.tracer.Record(trace.EvInitiation, uint64(req.src), uint64(req.dst),
		fmt.Sprintf("%dB", req.count))
	c.state = Idle // latch consumed; machine-level state is now derived
	return makeStatus(true, true, false, false, false, req.count, 0)
}

// pollStatus builds the status word for a LOAD that does not initiate.
// If a transfer based at pa failed after its initiation succeeded, the
// latched error bits are reported and cleared.
func (c *Controller) pollStatus(pa addr.PAddr) Status {
	busy := c.busy()
	remaining := 0
	if busy {
		remaining = c.outstandingBytes()
	}
	match := c.matchAny(pa)
	var bits device.ErrBits
	if !match {
		// The latch holds until no same-base transfer remains matching,
		// so a poll cannot consume the error while the caller is still
		// (correctly) waiting on MATCH for other in-flight work.
		if b, ok := c.failedBits[pa]; ok {
			bits = b
			delete(c.failedBits, pa)
		}
	}
	return makeStatus(false, busy, !busy && c.state == Idle, match, false, remaining, bits)
}

// outstandingBytes is the REMAINING-BYTES a poll reports: what is left
// of the in-flight transfer plus every queued request.
func (c *Controller) outstandingBytes() int {
	remaining := c.engine.Remaining()
	for _, r := range c.userQ {
		remaining += r.count
	}
	for _, r := range c.sysQ {
		remaining += r.count
	}
	return remaining
}

func (c *Controller) matchBit(pa addr.PAddr) Status {
	if c.matchAny(pa) {
		return statusMatch
	}
	return 0
}

// matchAny implements the MATCH flag: the referenced address equals the
// base address of the in-progress transfer — or, with queueing, of any
// queued transfer (waiting for the last transfer of a multi-page send
// must keep matching until that page actually moves).
func (c *Controller) matchAny(pa addr.PAddr) bool {
	if c.hasInflight && c.inflight.base == pa {
		return true
	}
	for _, r := range c.userQ {
		if r.base == pa {
			return true
		}
	}
	for _, r := range c.sysQ {
		if r.base == pa {
			return true
		}
	}
	return false
}

// makeRequest translates the latched destination and the loaded source
// into bus addresses, clamps the count so the transfer crosses no page
// boundary in either space (Section 4: "a basic UDMA transfer cannot
// cross a page boundary"), and validates against the device.
func (c *Controller) makeRequest(srcProxy addr.PAddr) (request, device.ErrBits) {
	src := translateProxy(srcProxy)
	dst := translateProxy(c.dest)

	count := c.count
	if room := addr.PageSize - int(addr.PPageOff(src)); count > room {
		count = room
	}
	if room := addr.PageSize - int(addr.PPageOff(dst)); count > room {
		count = room
	}
	if count <= 0 {
		// A zero-byte request is meaningless; hardware reports bounds.
		return request{}, device.ErrBounds
	}

	// Validate the device endpoint (exactly one endpoint is a device,
	// or the engine would have nothing to do — BadLoad already filtered
	// same-region pairs).
	for _, end := range []struct {
		a        addr.PAddr
		toDevice bool
	}{{dst, true}, {src, false}} {
		if addr.RegionOf(end.a) != addr.RegionDevProxy {
			continue
		}
		dev, da, ok := c.devmap.Resolve(end.a)
		if !ok {
			return request{}, device.ErrBounds
		}
		if bits := dev.CheckTransfer(da, count, end.toDevice); bits != 0 {
			return request{}, bits
		}
	}
	return request{src: src, dst: dst, count: count, base: srcProxy}, 0
}

// EnqueueSystem lets the kernel submit a transfer on the reserved
// high-priority queue (the two-queue variant of Section 7). It returns
// a ticket the kernel polls for completion, or nil if the system queue
// is full or the variant is disabled.
func (c *Controller) EnqueueSystem(src, dst addr.PAddr, count int) *SysTicket {
	if c.cfg.SystemQueueDepth == 0 || len(c.sysQ) >= c.cfg.SystemQueueDepth {
		return nil
	}
	req := request{src: src, dst: dst, count: count, base: 0, ticket: &SysTicket{},
		enqueuedAt: c.clock.Now()}
	if !c.engine.Busy() && len(c.sysQ) == 0 {
		if err := c.engine.Start(src, dst, count); err != nil {
			// An invalid request would never become startable: fail the
			// ticket immediately rather than making the kernel wait for
			// a completion that cannot come.
			c.failTransfer(req, err)
			return req.ticket
		}
		c.stats.Initiations++
		c.m.initiations.Inc()
		c.m.queueWait.Observe(0)
		req.startedAt = req.enqueuedAt
		c.inflight = req
		c.hasInflight = true
		c.ref(req)
		return req.ticket
	}
	c.stats.Initiations++
	c.m.initiations.Inc()
	c.sysQ = append(c.sysQ, req)
	c.observeQueueDepth()
	c.ref(req)
	return req.ticket
}

// SystemQueueAvailable reports whether the controller has the reserved
// kernel queue (the kernel's DMA path checks this once at boot).
func (c *Controller) SystemQueueAvailable() bool {
	return c.cfg.SystemQueueDepth > 0
}

// onEngineDone pops the next request when a transfer finishes
// (system queue first), returning the machine to Idle when drained. A
// failed transfer is recorded — trace event, stats, error latch,
// ticket — but still frees the engine for the next request.
func (c *Controller) onEngineDone(err error) {
	c.stats.Completions++
	c.m.completions.Inc()
	if c.hasInflight {
		if err != nil {
			c.failTransfer(c.inflight, err)
		} else {
			c.tracer.Record(trace.EvTransferDone, uint64(c.inflight.src), uint64(c.inflight.dst), "")
			if t := c.inflight.ticket; t != nil {
				t.Done = true
			}
		}
		now := c.clock.Now()
		c.m.latency.Observe(uint64(now - c.inflight.enqueuedAt))
		c.m.bytes.Observe(uint64(c.inflight.count))
		c.m.scope.Span("udma", "xfer", c.inflight.enqueuedAt, now,
			uint64(c.inflight.count), "")
		c.unref(c.inflight)
		c.hasInflight = false
	}
	c.startNext()
}

// startNext pops queued requests (system queue first) until one starts
// or the queues drain. A request the engine rejects at dispatch time —
// validated at enqueue, but conditions changed while it waited — is
// failed like a completed-with-error transfer and the next one runs;
// one bad request must not wedge or crash the machine.
func (c *Controller) startNext() {
	for {
		var next request
		switch {
		case len(c.sysQ) > 0:
			next = c.sysQ[0]
			c.sysQ = c.sysQ[1:]
		case len(c.userQ) > 0:
			next = c.userQ[0]
			c.userQ = c.userQ[1:]
		default:
			return
		}
		c.observeQueueDepth()
		if startErr := c.engine.Start(next.src, next.dst, next.count); startErr != nil {
			c.stats.DequeueRejects++
			c.failTransfer(next, startErr)
			c.unref(next)
			continue
		}
		next.startedAt = c.clock.Now()
		c.m.queueWait.Observe(uint64(next.startedAt - next.enqueuedAt))
		c.inflight = next
		c.hasInflight = true
		return
	}
}

// failTransfer records a transfer that was accepted but did not
// complete: counters, the trace, the user-visible error latch, and the
// kernel's ticket.
func (c *Controller) failTransfer(r request, err error) {
	c.stats.Failures++
	c.m.failures.Inc()
	c.tracer.Record(trace.EvTransferFail, uint64(r.src), uint64(r.dst), err.Error())
	if r.base != 0 {
		c.failedBits[r.base] = errBitsOf(err)
	}
	if t := r.ticket; t != nil {
		t.Done = true
		t.Err = err
	}
}

// errBitsOf maps a transfer error onto the device-specific bits of the
// status word: device rejections keep the bits the device reported,
// everything else (bus errors, terminations) reports ErrTransferFault.
func errBitsOf(err error) device.ErrBits {
	var te *dma.TransferError
	if errors.As(err, &te) && te.Bits != 0 {
		return te.Bits
	}
	return device.ErrTransferFault
}

// Terminate aborts the in-flight transfer (if any) and discards every
// queued request, returning the machine to Idle. The paper notes the
// basic design lacks this but that "it is not hard to imagine adding
// one. This could be useful for dealing with memory system errors that
// the DMA hardware cannot handle transparently." The kernel invokes it
// from its machine-check path; it is not reachable from user proxy
// references. It returns how many transfers (in flight + queued) were
// discarded.
func (c *Controller) Terminate() int {
	n := 0
	if c.engine.Busy() {
		c.engine.Abort()
		n++
	}
	// Abort suppresses the completion interrupt, so release the
	// in-flight refcounts (and fail any ticket / latch the error for a
	// polling user) here.
	if c.hasInflight {
		c.unref(c.inflight)
		c.failTransfer(c.inflight, ErrTerminated)
		c.hasInflight = false
	}
	for _, r := range c.userQ {
		c.unref(r)
		c.failTransfer(r, ErrTerminated)
		n++
	}
	c.userQ = c.userQ[:0]
	for _, r := range c.sysQ {
		c.unref(r)
		c.failTransfer(r, ErrTerminated)
		n++
	}
	c.sysQ = c.sysQ[:0]
	c.observeQueueDepth()
	c.state = Idle
	c.stats.Terminations++
	c.tracer.Record(trace.EvTerminate, uint64(n), 0, "")
	return n
}

// --- invariant I4 support -------------------------------------------------

// PageInUse is the kernel's associative query: does any in-flight or
// queued transfer touch physical memory frame pfn? The kernel must not
// remap a frame while this is true (invariant I4).
func (c *Controller) PageInUse(pfn uint32) bool {
	return c.pageRefs[pfn] > 0
}

// Registers returns the engine's SOURCE and DESTINATION registers and
// whether a transfer is in flight — the register peek the basic (queue-
// less) kernel check reads.
func (c *Controller) Registers() (src, dst addr.PAddr, busy bool) {
	return c.engine.Source(), c.engine.Destination(), c.engine.Busy()
}

// DestLoadedFrame returns the physical frame latched in the DESTINATION
// register while in the DestLoaded state, and whether the latch is
// occupied. The kernel may Inval to clear it (Section 6, I4: "If the
// hardware is in the DestLoaded state, the kernel may also cause an
// Inval event in order to clear the DESTINATION register").
func (c *Controller) DestLoadedFrame() (pfn uint32, ok bool) {
	if c.state != DestLoaded {
		return 0, false
	}
	d := translateProxy(c.dest)
	if addr.RegionOf(d) != addr.RegionMemory {
		return 0, false
	}
	return addr.PFN(d), true
}

// ReferencedFrames returns every physical memory frame currently named
// by the in-flight transfer or a queued request, in ascending order —
// the full I4 audit surface, where PageInUse answers for one frame.
func (c *Controller) ReferencedFrames() []uint32 {
	out := make([]uint32, 0, len(c.pageRefs))
	for pfn := range c.pageRefs {
		out = append(out, pfn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AuditRefCounts recomputes the expected per-frame reference counts
// from the in-flight request and both queues and compares them with
// the live pageRefs map, returning an error on the first mismatch.
// External consistency checkers call it; the hardware never does.
func (c *Controller) AuditRefCounts() error {
	want := make(map[uint32]int)
	add := func(r request) {
		for _, a := range []addr.PAddr{r.src, r.dst} {
			if addr.RegionOf(a) == addr.RegionMemory {
				want[addr.PFN(a)]++
			}
		}
	}
	if c.hasInflight {
		add(c.inflight)
	}
	for _, r := range c.sysQ {
		add(r)
	}
	for _, r := range c.userQ {
		add(r)
	}
	for pfn, n := range want {
		if c.pageRefs[pfn] != n {
			return fmt.Errorf("core: frame %d refcount %d, want %d", pfn, c.pageRefs[pfn], n)
		}
	}
	for pfn, n := range c.pageRefs {
		if want[pfn] != n {
			return fmt.Errorf("core: frame %d refcount %d, want %d", pfn, n, want[pfn])
		}
	}
	return nil
}

func (c *Controller) ref(r request) {
	for _, a := range []addr.PAddr{r.src, r.dst} {
		if addr.RegionOf(a) == addr.RegionMemory {
			c.pageRefs[addr.PFN(a)]++
		}
	}
}

func (c *Controller) unref(r request) {
	for _, a := range []addr.PAddr{r.src, r.dst} {
		if addr.RegionOf(a) == addr.RegionMemory {
			pfn := addr.PFN(a)
			if c.pageRefs[pfn] <= 0 {
				panic(fmt.Sprintf("core: page refcount underflow on frame %d", pfn))
			}
			c.pageRefs[pfn]--
			if c.pageRefs[pfn] == 0 {
				delete(c.pageRefs, pfn)
			}
		}
	}
}

// translateProxy applies PROXY⁻¹ to memory-proxy addresses and passes
// device-proxy addresses through (they are the device's bus addresses).
func translateProxy(pa addr.PAddr) addr.PAddr {
	switch addr.RegionOf(pa) {
	case addr.RegionMemProxy:
		return addr.Unproxy(pa)
	case addr.RegionDevProxy:
		return pa
	default:
		panic(fmt.Sprintf("core: translateProxy of non-proxy address %#x", uint32(pa)))
	}
}

func mustProxy(pa addr.PAddr, op string) {
	if !addr.RegionOf(pa).IsProxy() {
		panic(fmt.Sprintf("core: %s routed non-proxy address %#x to UDMA", op, uint32(pa)))
	}
}
