package core

import (
	"bytes"
	"testing"

	"shrimp/internal/addr"
)

func TestTerminateAbortsInFlight(t *testing.T) {
	r := newRig(t, Config{})
	payload := []byte("should never arrive....")
	r.ram.Write(0x5000, payload)
	st := r.initiate(addr.DevProxy(0, 0), addr.Proxy(0x5000), 4096)
	if !st.Initiated() {
		t.Fatal(st)
	}
	n := r.ctl.Terminate()
	if n != 1 {
		t.Fatalf("Terminate discarded %d, want 1", n)
	}
	if r.ctl.State() != Idle {
		t.Fatalf("state after Terminate = %v", r.ctl.State())
	}
	r.clock.RunUntilIdle()
	if got := r.buf.Bytes(0, len(payload)); bytes.Equal(got, payload) {
		t.Fatal("terminated transfer still moved data")
	}
	// The frame must have been released for invariant I4.
	if r.ctl.PageInUse(addr.PFN(0x5000)) {
		t.Fatal("terminated transfer still holds its frame")
	}
	if r.ctl.Stats().Terminations != 1 {
		t.Fatal("termination not counted")
	}
}

func TestTerminateDrainsQueue(t *testing.T) {
	r := newRig(t, Config{QueueDepth: 8})
	for i := 0; i < 4; i++ {
		st := r.initiate(addr.DevProxy(uint32(i), 0), addr.Proxy(addr.PAddr(0x5000+i*0x1000)), 4096)
		if !st.Initiated() {
			t.Fatalf("initiation %d: %v", i, st)
		}
	}
	n := r.ctl.Terminate()
	if n != 4 { // 1 in flight + 3 queued
		t.Fatalf("Terminate discarded %d, want 4", n)
	}
	if r.ctl.QueueLen() != 0 {
		t.Fatalf("queue length %d after Terminate", r.ctl.QueueLen())
	}
	for i := 0; i < 4; i++ {
		if r.ctl.PageInUse(addr.PFN(addr.PAddr(0x5000 + i*0x1000))) {
			t.Fatalf("frame %d still referenced after Terminate", i)
		}
	}
	// The machine is reusable afterward.
	r.ram.Write(0x9000, []byte{42})
	st := r.initiate(addr.DevProxy(0, 128), addr.Proxy(0x9000), 4)
	if !st.Initiated() {
		t.Fatalf("post-Terminate initiation: %v", st)
	}
	r.clock.RunUntilIdle()
	if r.buf.Bytes(128, 1)[0] != 42 {
		t.Fatal("post-Terminate transfer did not complete")
	}
}

func TestTerminateIdleIsNoOp(t *testing.T) {
	r := newRig(t, Config{})
	if n := r.ctl.Terminate(); n != 0 {
		t.Fatalf("idle Terminate discarded %d", n)
	}
	if r.ctl.State() != Idle {
		t.Fatal("state changed")
	}
}

func TestTerminateClearsDestLoadedLatch(t *testing.T) {
	r := newRig(t, Config{})
	r.ctl.Store(addr.DevProxy(0, 0), 64)
	if r.ctl.State() != DestLoaded {
		t.Fatal("latch not set")
	}
	r.ctl.Terminate()
	if r.ctl.State() != Idle {
		t.Fatal("Terminate left the latch occupied")
	}
}
