package core

import (
	"bytes"
	"testing"

	"shrimp/internal/addr"
	"shrimp/internal/bus"
	"shrimp/internal/device"
	"shrimp/internal/dma"
	"shrimp/internal/mem"
	"shrimp/internal/sim"
)

type rig struct {
	clock *sim.Clock
	ram   *mem.Physical
	buf   *device.Buffer
	eng   *dma.Engine
	ctl   *Controller
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	return newRigQuiet(cfg)
}

// newRigQuiet builds a rig without a testing.T (property tests call it
// from inside quick.Check closures).
func newRigQuiet(cfg Config) *rig {
	clock := sim.NewClock()
	costs := &sim.CostModel{
		CPUHz:           60e6,
		DMAStartup:      10,
		DMABytesPerCyc:  2,
		LinkBytesPerCyc: 1,
	}
	ram := mem.NewPhysical(64)
	devmap := device.NewMap()
	buf := device.NewBuffer("buf", 16, 0, 0)
	if err := devmap.Attach(buf, 0); err != nil {
		panic(err)
	}
	eng := dma.New(clock, costs, bus.New(clock, costs), ram, devmap)
	return &rig{clock: clock, ram: ram, buf: buf, eng: eng, ctl: New(eng, devmap, clock, cfg)}
}

// transferCycles returns the engine+bus time for an n-byte transfer on
// this rig's cost model (device latency is zero here).
func (r *rig) transferCycles(n int) sim.Cycles {
	return 10 + sim.Cycles((n+1)/2)
}

// initiate performs the canonical two-instruction sequence: STORE count
// to the destination's proxy address, LOAD from the source's proxy
// address.
func (r *rig) initiate(dstProxy, srcProxy addr.PAddr, count int32) Status {
	r.ctl.Store(dstProxy, count)
	return r.ctl.Load(srcProxy)
}

func TestTwoInstructionMemToDev(t *testing.T) {
	r := newRig(t, Config{})
	payload := []byte("user-level DMA with full protection")
	r.ram.Write(0x5000, payload)

	st := r.initiate(addr.DevProxy(2, 128), addr.Proxy(0x5000), int32(len(payload)))
	if !st.Initiated() {
		t.Fatalf("initiation failed: %v", st)
	}
	if st.Remaining() != len(payload) {
		t.Fatalf("accepted count = %d, want %d", st.Remaining(), len(payload))
	}
	if r.ctl.State() != Transferring {
		t.Fatalf("state = %v, want Transferring", r.ctl.State())
	}
	r.clock.RunUntilIdle()
	if got := r.buf.Bytes(2*4096+128, len(payload)); !bytes.Equal(got, payload) {
		t.Fatalf("device got %q, want %q", got, payload)
	}
	if r.ctl.State() != Idle {
		t.Fatalf("state after completion = %v, want Idle", r.ctl.State())
	}
}

func TestTwoInstructionDevToMem(t *testing.T) {
	r := newRig(t, Config{})
	payload := []byte("device to any location in memory")
	r.buf.SetBytes(300, payload)

	// STORE names the memory destination, LOAD names the device source.
	st := r.initiate(addr.Proxy(0x7000), addr.DevProxy(0, 300), int32(len(payload)))
	if !st.Initiated() {
		t.Fatalf("initiation failed: %v", st)
	}
	r.clock.RunUntilIdle()
	got, _ := r.ram.Read(0x7000, len(payload))
	if !bytes.Equal(got, payload) {
		t.Fatalf("RAM got %q, want %q", got, payload)
	}
}

func TestBadLoadSameRegion(t *testing.T) {
	r := newRig(t, Config{})
	// mem→mem: both proxies in memory proxy space.
	st := r.initiate(addr.Proxy(0x1000), addr.Proxy(0x2000), 64)
	if st.Initiated() || !st.WrongSpace() {
		t.Fatalf("mem→mem: %v, want wrong-space rejection", st)
	}
	if r.ctl.State() != Idle {
		t.Fatalf("state after BadLoad = %v, want Idle", r.ctl.State())
	}
	// dev→dev.
	st = r.initiate(addr.DevProxy(0, 0), addr.DevProxy(1, 0), 64)
	if st.Initiated() || !st.WrongSpace() {
		t.Fatalf("dev→dev: %v, want wrong-space rejection", st)
	}
	if got := r.ctl.Stats().BadLoads; got != 2 {
		t.Fatalf("BadLoads = %d, want 2", got)
	}
}

func TestInvalTerminatesSequence(t *testing.T) {
	r := newRig(t, Config{})
	r.ctl.Store(addr.DevProxy(0, 0), 64)
	if r.ctl.State() != DestLoaded {
		t.Fatalf("state = %v, want DestLoaded", r.ctl.State())
	}
	r.ctl.Store(addr.Proxy(0x1000), -1) // Inval event
	if r.ctl.State() != Idle {
		t.Fatalf("state after Inval = %v, want Idle", r.ctl.State())
	}
	// The victim's LOAD now reports invalid, not an initiation.
	st := r.ctl.Load(addr.Proxy(0x5000))
	if st.Initiated() || !st.Invalid() || !st.Retryable() {
		t.Fatalf("post-Inval load: %v, want retryable invalid", st)
	}
}

func TestInvalHelperEquivalent(t *testing.T) {
	r := newRig(t, Config{})
	r.ctl.Store(addr.DevProxy(0, 0), 64)
	r.ctl.Inval()
	if r.ctl.State() != Idle {
		t.Fatal("Inval() did not reset latch")
	}
	if r.ctl.Stats().Invals != 1 {
		t.Fatal("Inval not counted")
	}
}

func TestStoreOverwritesInDestLoaded(t *testing.T) {
	r := newRig(t, Config{})
	payload := []byte("abcdefgh")
	r.ram.Write(0x3000, payload)
	r.ctl.Store(addr.DevProxy(0, 0), 4)
	r.ctl.Store(addr.DevProxy(0, 512), 8) // overwrite DEST and COUNT
	st := r.ctl.Load(addr.Proxy(0x3000))
	if !st.Initiated() || st.Remaining() != 8 {
		t.Fatalf("after overwrite: %v", st)
	}
	r.clock.RunUntilIdle()
	if got := r.buf.Bytes(512, 8); !bytes.Equal(got, payload) {
		t.Fatalf("device got %q at overwritten destination", got)
	}
	if got := r.buf.Bytes(0, 4); bytes.Equal(got, payload[:4]) {
		t.Fatal("transfer also hit the overwritten destination")
	}
}

func TestLoadWithoutStoreIsStatusPoll(t *testing.T) {
	r := newRig(t, Config{})
	st := r.ctl.Load(addr.Proxy(0x1000))
	if st.Initiated() {
		t.Fatal("bare LOAD initiated a transfer")
	}
	if !st.Invalid() || st.Transferring() {
		t.Fatalf("bare LOAD status: %v, want invalid+idle", st)
	}
}

func TestBusyBasicMachineIgnoresStore(t *testing.T) {
	r := newRig(t, Config{})
	st := r.initiate(addr.DevProxy(0, 0), addr.Proxy(0x1000), 4096)
	if !st.Initiated() {
		t.Fatal(st)
	}
	// Second process tries to initiate while the engine is busy: the
	// Store is ignored, the Load reports transferring, and the caller
	// must retry the whole sequence.
	st2 := r.initiate(addr.DevProxy(1, 0), addr.Proxy(0x2000), 64)
	if st2.Initiated() {
		t.Fatal("initiation succeeded on a busy basic machine")
	}
	if !st2.Transferring() || !st2.Retryable() {
		t.Fatalf("busy status: %v", st2)
	}
	r.clock.RunUntilIdle()
	// Retry succeeds once idle.
	st3 := r.initiate(addr.DevProxy(1, 0), addr.Proxy(0x2000), 64)
	if !st3.Initiated() {
		t.Fatalf("retry after drain failed: %v", st3)
	}
}

func TestCompletionPollingWithMatch(t *testing.T) {
	r := newRig(t, Config{})
	src := addr.Proxy(0x5000)
	st := r.initiate(addr.DevProxy(0, 0), src, 4096)
	if !st.Initiated() {
		t.Fatal(st)
	}
	// Repeat the initiating LOAD: match set while in flight.
	st = r.ctl.Load(src)
	if !st.Match() || !st.Transferring() {
		t.Fatalf("mid-flight poll: %v, want match+transferring", st)
	}
	if st.Remaining() == 0 {
		t.Fatal("mid-flight remaining = 0")
	}
	// A different address must not match.
	if st := r.ctl.Load(addr.Proxy(0x9000)); st.Match() {
		t.Fatalf("unrelated poll matched: %v", st)
	}
	r.clock.RunUntilIdle()
	st = r.ctl.Load(src)
	if st.Match() || st.Transferring() {
		t.Fatalf("post-completion poll: %v, want no match", st)
	}
}

func TestTransferClampedAtSourcePageBoundary(t *testing.T) {
	r := newRig(t, Config{})
	// Source 100 bytes before a page end; ask for 512.
	srcPA := addr.PAddr(0x5000 - 100)
	st := r.initiate(addr.DevProxy(0, 0), addr.Proxy(srcPA), 512)
	if !st.Initiated() {
		t.Fatal(st)
	}
	if st.Remaining() != 100 {
		t.Fatalf("accepted %d bytes, want clamp to 100", st.Remaining())
	}
}

func TestTransferClampedAtDestPageBoundary(t *testing.T) {
	r := newRig(t, Config{})
	st := r.initiate(addr.DevProxy(0, 4096-64), addr.Proxy(0x5000), 512)
	if !st.Initiated() {
		t.Fatal(st)
	}
	if st.Remaining() != 64 {
		t.Fatalf("accepted %d bytes, want clamp to 64", st.Remaining())
	}
}

func TestZeroCountRejected(t *testing.T) {
	r := newRig(t, Config{})
	st := r.initiate(addr.DevProxy(0, 0), addr.Proxy(0x5000), 0)
	if st.Initiated() || st.DeviceErr() == 0 {
		t.Fatalf("zero-byte initiation: %v, want device error", st)
	}
}

func TestDeviceAlignmentErrorReported(t *testing.T) {
	clock := sim.NewClock()
	costs := &sim.CostModel{CPUHz: 60e6, DMAStartup: 1, DMABytesPerCyc: 1, LinkBytesPerCyc: 1}
	ram := mem.NewPhysical(16)
	devmap := device.NewMap()
	strict := device.NewBuffer("strict", 4, 4, 0)
	devmap.Attach(strict, 0)
	eng := dma.New(clock, costs, bus.New(clock, costs), ram, devmap)
	ctl := New(eng, devmap, clock, Config{})

	ctl.Store(addr.DevProxy(0, 2), 64) // misaligned device offset
	st := ctl.Load(addr.Proxy(0x1000))
	if st.Initiated() || st.DeviceErr()&device.ErrAlignment == 0 {
		t.Fatalf("misaligned: %v, want alignment error", st)
	}
	if ctl.State() != Idle {
		t.Fatalf("state after device error = %v, want Idle", ctl.State())
	}
}

func TestUndecodedDevicePageReported(t *testing.T) {
	r := newRig(t, Config{})
	st := r.initiate(addr.DevProxy(4000, 0), addr.Proxy(0x1000), 64)
	if st.Initiated() || st.DeviceErr()&device.ErrBounds == 0 {
		t.Fatalf("undecoded device page: %v", st)
	}
}

func TestRegistersVisibleForI4(t *testing.T) {
	r := newRig(t, Config{})
	r.initiate(addr.DevProxy(0, 0), addr.Proxy(0x5000), 4096)
	src, dst, busy := r.ctl.Registers()
	if !busy || src != 0x5000 || addr.RegionOf(dst) != addr.RegionDevProxy {
		t.Fatalf("Registers = %#x,%#x,%v", uint32(src), uint32(dst), busy)
	}
	if !r.ctl.PageInUse(addr.PFN(0x5000)) {
		t.Fatal("source frame not reported in use")
	}
	if r.ctl.PageInUse(addr.PFN(0x9000)) {
		t.Fatal("unrelated frame reported in use")
	}
	r.clock.RunUntilIdle()
	if r.ctl.PageInUse(addr.PFN(0x5000)) {
		t.Fatal("frame still in use after completion")
	}
}

func TestDestLoadedFrameForI4(t *testing.T) {
	r := newRig(t, Config{})
	if _, ok := r.ctl.DestLoadedFrame(); ok {
		t.Fatal("idle latch reports a frame")
	}
	r.ctl.Store(addr.Proxy(0x6000), 64) // memory destination latched
	pfn, ok := r.ctl.DestLoadedFrame()
	if !ok || pfn != addr.PFN(0x6000) {
		t.Fatalf("DestLoadedFrame = (%d,%v)", pfn, ok)
	}
	r.ctl.Inval()
	if _, ok := r.ctl.DestLoadedFrame(); ok {
		t.Fatal("latch still occupied after Inval")
	}
	// Device destinations are not memory frames.
	r.ctl.Store(addr.DevProxy(0, 0), 64)
	if _, ok := r.ctl.DestLoadedFrame(); ok {
		t.Fatal("device destination reported as a memory frame")
	}
}

func TestQueueAcceptsWhileBusy(t *testing.T) {
	r := newRig(t, Config{QueueDepth: 4})
	for i := 0; i < 3; i++ {
		src := addr.PAddr(0x5000 + i*addr.PageSize)
		r.ram.Write(src, []byte{byte(i + 1)})
		st := r.initiate(addr.DevProxy(0, uint32(i*64)), addr.Proxy(src), 64)
		if !st.Initiated() {
			t.Fatalf("initiation %d failed: %v", i, st)
		}
	}
	if r.ctl.QueueLen() != 2 {
		t.Fatalf("QueueLen = %d, want 2 (one in flight)", r.ctl.QueueLen())
	}
	r.clock.RunUntilIdle()
	for i := 0; i < 3; i++ {
		if got := r.buf.Bytes(i*64, 1)[0]; got != byte(i+1) {
			t.Fatalf("queued transfer %d wrote %d", i, got)
		}
	}
	if r.ctl.Stats().Completions != 3 {
		t.Fatalf("Completions = %d, want 3", r.ctl.Stats().Completions)
	}
}

func TestQueueFullRefusedAndRetryable(t *testing.T) {
	r := newRig(t, Config{QueueDepth: 1})
	r.initiate(addr.DevProxy(0, 0), addr.Proxy(0x1000), 4096) // in flight
	r.initiate(addr.DevProxy(1, 0), addr.Proxy(0x2000), 4096) // queued
	st := r.initiate(addr.DevProxy(1, 0), addr.Proxy(0x3000), 4096)
	if st.Initiated() || st.DeviceErr()&device.ErrQueueFull == 0 {
		t.Fatalf("queue-full status: %v", st)
	}
	if r.ctl.Stats().QueueFull != 1 {
		t.Fatal("QueueFull not counted")
	}
	// The latch survives a queue-full refusal: once the queue drains a
	// bare LOAD completes the sequence without repeating the STORE.
	r.clock.RunUntilIdle()
	st = r.ctl.Load(addr.Proxy(0x3000))
	if !st.Initiated() {
		t.Fatalf("post-drain LOAD: %v, want initiation", st)
	}
}

func TestQueueMatchCoversQueuedTransfers(t *testing.T) {
	r := newRig(t, Config{QueueDepth: 4})
	last := addr.Proxy(0x8000)
	r.initiate(addr.DevProxy(0, 0), addr.Proxy(0x5000), 4096)
	r.initiate(addr.DevProxy(0, 4096-64), last, 64) // queued
	st := r.ctl.Load(last)
	if !st.Match() {
		t.Fatalf("queued transfer's base did not match: %v", st)
	}
	r.clock.RunUntilIdle()
	if st := r.ctl.Load(last); st.Match() {
		t.Fatalf("match persists after completion: %v", st)
	}
}

func TestQueuePageRefcounts(t *testing.T) {
	r := newRig(t, Config{QueueDepth: 4})
	r.initiate(addr.DevProxy(0, 0), addr.Proxy(0x5000), 4096)
	r.initiate(addr.DevProxy(1, 0), addr.Proxy(0x5000), 4096) // same frame queued
	if !r.ctl.PageInUse(addr.PFN(0x5000)) {
		t.Fatal("frame with two pending uses not reported")
	}
	// Drain one transfer: still referenced by the queued one.
	at, _ := r.clock.NextEventAt()
	r.clock.AdvanceTo(at)
	if !r.ctl.PageInUse(addr.PFN(0x5000)) {
		t.Fatal("frame released while still queued")
	}
	r.clock.RunUntilIdle()
	if r.ctl.PageInUse(addr.PFN(0x5000)) {
		t.Fatal("frame still referenced after drain")
	}
}

func TestSystemQueuePriority(t *testing.T) {
	r := newRig(t, Config{QueueDepth: 4, SystemQueueDepth: 2})
	// Fill: one in flight, one user queued.
	r.ram.Write(0x5000, []byte{1})
	r.ram.Write(0x6000, []byte{2})
	r.ram.Write(0x7000, []byte{3})
	r.initiate(addr.DevProxy(0, 0), addr.Proxy(0x5000), 64)
	r.initiate(addr.DevProxy(0, 64), addr.Proxy(0x6000), 64)
	// Kernel submits a system transfer; it must run before the queued
	// user transfer.
	ticket := r.ctl.EnqueueSystem(0x7000, addr.DevProxy(0, 128), 64)
	if ticket == nil {
		t.Fatal("EnqueueSystem refused")
	}
	// After the in-flight transfer completes, the system one runs next.
	at, _ := r.clock.NextEventAt()
	r.clock.AdvanceTo(at) // completes first user transfer, starts system
	if got := r.buf.Bytes(128, 1)[0]; got == 2 {
		t.Fatal("user transfer ran before system transfer")
	}
	r.clock.RunUntilIdle()
	if got := r.buf.Bytes(64, 1)[0]; got != 2 {
		t.Fatalf("user transfer never completed: %d", got)
	}
	if got := r.buf.Bytes(128, 1)[0]; got != 3 {
		t.Fatalf("system transfer wrote %d", got)
	}
	if !ticket.Done || ticket.Err != nil {
		t.Fatalf("ticket = %+v", ticket)
	}
}

func TestSystemQueueDisabled(t *testing.T) {
	r := newRig(t, Config{})
	if r.ctl.EnqueueSystem(0x1000, addr.DevProxy(0, 0), 64) != nil {
		t.Fatal("EnqueueSystem succeeded with disabled system queue")
	}
	if r.ctl.SystemQueueAvailable() {
		t.Fatal("SystemQueueAvailable true with depth 0")
	}
}

func TestSystemQueueRunsImmediatelyWhenIdle(t *testing.T) {
	r := newRig(t, Config{SystemQueueDepth: 2})
	r.ram.Write(0x4000, []byte{9})
	ticket := r.ctl.EnqueueSystem(0x4000, addr.DevProxy(0, 0), 64)
	if ticket == nil {
		t.Fatal("EnqueueSystem refused on idle machine")
	}
	r.clock.RunUntilIdle()
	if got := r.buf.Bytes(0, 1)[0]; got != 9 {
		t.Fatalf("system transfer wrote %d", got)
	}
	if !ticket.Done {
		t.Fatal("ticket not completed")
	}
}

func TestStatelessAcrossContextSwitch(t *testing.T) {
	// Section 6: "Once started, a UDMA transfer continues regardless of
	// whether the process that started it is de-scheduled."
	r := newRig(t, Config{})
	payload := []byte("survives descheduling")
	r.ram.Write(0x5000, payload)
	st := r.initiate(addr.DevProxy(0, 0), addr.Proxy(0x5000), int32(len(payload)))
	if !st.Initiated() {
		t.Fatal(st)
	}
	r.ctl.Inval() // context switch fires Inval mid-transfer
	if r.ctl.State() != Transferring {
		t.Fatalf("Inval during Transferring changed state to %v", r.ctl.State())
	}
	r.clock.RunUntilIdle()
	if got := r.buf.Bytes(0, len(payload)); !bytes.Equal(got, payload) {
		t.Fatal("transfer did not survive the context-switch Inval")
	}
}

func TestStatsCounting(t *testing.T) {
	r := newRig(t, Config{})
	r.initiate(addr.DevProxy(0, 0), addr.Proxy(0x1000), 64)
	r.clock.RunUntilIdle()
	r.initiate(addr.Proxy(0x1000), addr.Proxy(0x2000), 64) // BadLoad
	r.ctl.Inval()
	st := r.ctl.Stats()
	if st.Stores != 2 || st.Loads != 2 || st.Invals != 1 ||
		st.Initiations != 1 || st.BadLoads != 1 || st.Completions != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNonProxyAddressPanics(t *testing.T) {
	r := newRig(t, Config{})
	for name, fn := range map[string]func(){
		"store": func() { r.ctl.Store(addr.PAddr(0x1000), 64) },
		"load":  func() { r.ctl.Load(addr.PAddr(0x1000)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s of non-proxy address did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(nil...) did not panic")
		}
	}()
	New(nil, nil, nil, Config{})
}

func TestNegativeQueueDepthPanics(t *testing.T) {
	r := newRig(t, Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("negative queue depth did not panic")
		}
	}()
	New(r.eng, device.NewMap(), r.clock, Config{QueueDepth: -1})
}

func TestStateString(t *testing.T) {
	if Idle.String() != "Idle" || DestLoaded.String() != "DestLoaded" ||
		Transferring.String() != "Transferring" {
		t.Fatal("state names wrong")
	}
}
