// Package core implements the paper's primary contribution: the UDMA
// hardware extension that lets a user process initiate a protected DMA
// transfer with two ordinary memory references,
//
//	STORE nbytes TO PROXY(destAddr)
//	LOAD  status FROM PROXY(srcAddr)
//
// The controller sits between the CPU and the standard DMA engine
// (paper Figure 4). Physical accesses that decode into the memory-proxy
// or device-proxy regions are routed here by the machine; everything
// the controller sees has already passed MMU translation and permission
// checking, which is precisely how UDMA gets protection for free.
//
// The package provides the transfer-initiation state machine of Figure
// 5 (Idle / DestLoaded / Transferring with Store, Load, Inval and
// BadLoad events), the status word returned by every proxy LOAD, the
// PROXY⁻¹ physical address translation, and the multi-page request
// queue of Section 7 (including the per-page reference counts the
// kernel's invariant I4 queries, and the two-priority-queue variant the
// paper suggests).
package core

import (
	"fmt"
	"strings"

	"shrimp/internal/device"
)

// Status is the word returned by every LOAD from proxy space. The bit
// layout follows the paper's field list (Section 5, "Status Returned by
// Proxy LOADs"):
//
//	bit 0    INITIATION flag   — zero iff this LOAD started a transfer
//	bit 1    TRANSFERRING flag — engine busy (or queue non-empty)
//	bit 2    INVALID flag      — machine in the Idle state
//	bit 3    MATCH flag        — transferring and address == transfer base
//	bit 4    WRONG-SPACE flag  — this access was a BadLoad
//	bits 5–17  REMAINING-BYTES — bytes left if DestLoaded/Transferring
//	bits 18–31 device-specific error bits (device.ErrBits)
type Status uint32

const (
	statusInitiation   Status = 1 << 0
	statusTransferring Status = 1 << 1
	statusInvalid      Status = 1 << 2
	statusMatch        Status = 1 << 3
	statusWrongSpace   Status = 1 << 4

	remainingShift = 5
	remainingBits  = 13
	remainingMax   = 1<<remainingBits - 1 // 8191: holds a full 4 KB page count
	remainingMask  = Status(remainingMax) << remainingShift

	deviceErrShift = remainingShift + remainingBits // 18
)

// Initiated reports whether the LOAD that returned this status started
// (or, with queueing, enqueued) a transfer. Per the paper the
// INITIATION flag is *zero* on success.
func (s Status) Initiated() bool { return s&statusInitiation == 0 }

// Transferring reports the TRANSFERRING flag.
func (s Status) Transferring() bool { return s&statusTransferring != 0 }

// Invalid reports the INVALID flag (the machine was in the Idle state,
// i.e. no STORE half of an initiation sequence was pending).
func (s Status) Invalid() bool { return s&statusInvalid != 0 }

// Match reports the MATCH flag: a transfer whose base address equals
// the loaded address is still in progress. The completion idiom is to
// repeat the initiating LOAD until Match is false.
func (s Status) Match() bool { return s&statusMatch != 0 }

// WrongSpace reports the WRONG-SPACE flag: the access was a BadLoad,
// i.e. it asked for a memory-to-memory or device-to-device transfer.
func (s Status) WrongSpace() bool { return s&statusWrongSpace != 0 }

// Remaining returns the REMAINING-BYTES field.
func (s Status) Remaining() int {
	return int(s>>remainingShift) & remainingMax
}

// DeviceErr returns the device-specific error bits.
func (s Status) DeviceErr() device.ErrBits {
	return device.ErrBits(s >> deviceErrShift)
}

// Failed reports whether a "real error" occurred (the paper: "If other
// error bits are set, a real error has occurred"), as opposed to a
// retryable busy/invalid condition.
func (s Status) Failed() bool {
	return s.WrongSpace() || s.DeviceErr() != 0
}

// Retryable reports whether the user library should simply retry the
// two-instruction sequence: the initiation failed only because the
// machine was busy or had been Inval'd (e.g. by a context switch).
func (s Status) Retryable() bool {
	return !s.Initiated() && !s.Failed()
}

func makeStatus(initiated, transferring, invalid, match, wrongSpace bool, remaining int, dev device.ErrBits) Status {
	var s Status
	if !initiated {
		s |= statusInitiation
	}
	if transferring {
		s |= statusTransferring
	}
	if invalid {
		s |= statusInvalid
	}
	if match {
		s |= statusMatch
	}
	if wrongSpace {
		s |= statusWrongSpace
	}
	if remaining < 0 {
		remaining = 0
	}
	if remaining > remainingMax {
		remaining = remainingMax
	}
	s |= Status(remaining) << remainingShift
	s |= Status(dev) << deviceErrShift
	return s
}

// String renders the status for traces and error messages.
func (s Status) String() string {
	var parts []string
	if s.Initiated() {
		parts = append(parts, "initiated")
	}
	if s.Transferring() {
		parts = append(parts, "transferring")
	}
	if s.Invalid() {
		parts = append(parts, "invalid")
	}
	if s.Match() {
		parts = append(parts, "match")
	}
	if s.WrongSpace() {
		parts = append(parts, "wrong-space")
	}
	if r := s.Remaining(); r > 0 {
		parts = append(parts, fmt.Sprintf("remaining=%d", r))
	}
	if e := s.DeviceErr(); e != 0 {
		parts = append(parts, fmt.Sprintf("deverr=%#x", uint32(e)))
	}
	if len(parts) == 0 {
		parts = append(parts, "none")
	}
	return "status(" + strings.Join(parts, ",") + ")"
}
