package core

import (
	"strings"
	"testing"
	"testing/quick"

	"shrimp/internal/device"
)

func TestStatusFlagRoundTrip(t *testing.T) {
	prop := func(initiated, transferring, invalid, match, wrong bool, rem16 uint16, dev8 uint8) bool {
		rem := int(rem16) % (remainingMax + 1)
		dev := device.ErrBits(dev8)
		s := makeStatus(initiated, transferring, invalid, match, wrong, rem, dev)
		return s.Initiated() == initiated &&
			s.Transferring() == transferring &&
			s.Invalid() == invalid &&
			s.Match() == match &&
			s.WrongSpace() == wrong &&
			s.Remaining() == rem &&
			s.DeviceErr() == dev
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInitiationFlagIsZeroOnSuccess(t *testing.T) {
	// The paper defines the INITIATION flag as "zero if the access
	// started a DMA transfer" — the raw bit must be 0 on success.
	s := makeStatus(true, true, false, false, false, 100, 0)
	if uint32(s)&1 != 0 {
		t.Fatalf("initiation bit = %d on success, want 0", uint32(s)&1)
	}
	s = makeStatus(false, false, true, false, false, 0, 0)
	if uint32(s)&1 != 1 {
		t.Fatal("initiation bit not set on failure")
	}
}

func TestRemainingClamped(t *testing.T) {
	s := makeStatus(false, true, false, false, false, 1<<20, 0)
	if s.Remaining() != remainingMax {
		t.Fatalf("Remaining = %d, want clamp to %d", s.Remaining(), remainingMax)
	}
	s = makeStatus(false, true, false, false, false, -5, 0)
	if s.Remaining() != 0 {
		t.Fatalf("negative remaining encoded as %d", s.Remaining())
	}
}

func TestRemainingHoldsFullPage(t *testing.T) {
	s := makeStatus(true, true, false, false, false, 4096, 0)
	if s.Remaining() != 4096 {
		t.Fatalf("Remaining = %d, want 4096", s.Remaining())
	}
}

func TestFailedAndRetryable(t *testing.T) {
	cases := []struct {
		name      string
		s         Status
		failed    bool
		retryable bool
	}{
		{"success", makeStatus(true, true, false, false, false, 64, 0), false, false},
		{"busy", makeStatus(false, true, false, false, false, 0, 0), false, true},
		{"idle/invalid", makeStatus(false, false, true, false, false, 0, 0), false, true},
		{"wrong space", makeStatus(false, false, false, false, true, 0, 0), true, false},
		{"device error", makeStatus(false, false, false, false, false, 0, device.ErrAlignment), true, false},
		{"queue full", makeStatus(false, true, false, false, false, 0, device.ErrQueueFull), true, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.s.Failed() != tc.failed {
				t.Errorf("Failed() = %v, want %v", tc.s.Failed(), tc.failed)
			}
			if tc.s.Retryable() != tc.retryable {
				t.Errorf("Retryable() = %v, want %v", tc.s.Retryable(), tc.retryable)
			}
		})
	}
}

func TestDeviceErrBitsPreserved(t *testing.T) {
	all := device.ErrAlignment | device.ErrBounds | device.ErrInvalidEntry |
		device.ErrReadOnly | device.ErrQueueFull
	s := makeStatus(false, false, false, false, false, 0, all)
	if s.DeviceErr() != all {
		t.Fatalf("DeviceErr = %#x, want %#x", uint32(s.DeviceErr()), uint32(all))
	}
}

func TestStatusString(t *testing.T) {
	s := makeStatus(true, true, false, false, false, 128, 0)
	str := s.String()
	for _, want := range []string{"initiated", "transferring", "remaining=128"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() = %q missing %q", str, want)
		}
	}
	if got := Status(1).String(); !strings.Contains(got, "none") && len(got) == 0 {
		t.Errorf("empty status String() = %q", got)
	}
}
