package core_test

import (
	"fmt"

	"shrimp/internal/addr"
	"shrimp/internal/bus"
	"shrimp/internal/core"
	"shrimp/internal/device"
	"shrimp/internal/dma"
	"shrimp/internal/mem"
	"shrimp/internal/sim"
)

// Example demonstrates the raw hardware view of the paper's
// two-instruction initiation sequence against a bare controller (no
// kernel, no processes — the physical addresses here are what the MMU
// would have produced).
func Example() {
	clock := sim.NewClock()
	costs := &sim.CostModel{CPUHz: 60e6, DMAStartup: 120, DMABytesPerCyc: 0.55, LinkBytesPerCyc: 1}
	ram := mem.NewPhysical(16)
	devmap := device.NewMap()
	card := device.NewBuffer("card", 4, 4, 0)
	devmap.Attach(card, 0)
	engine := dma.New(clock, costs, bus.New(clock, costs), ram, devmap)
	ctl := core.New(engine, devmap, clock, core.Config{})

	// The data to send sits at physical address 0x5000.
	ram.Write(0x5000, []byte("hello, SHRIMP!!!"))

	// STORE nbytes TO PROXY(dest): the device's proxy page 0.
	ctl.Store(addr.DevProxy(0, 0), 16)
	// LOAD status FROM PROXY(src): the memory-proxy alias of 0x5000.
	st := ctl.Load(addr.Proxy(0x5000))
	fmt.Println("initiated:", st.Initiated(), "bytes:", st.Remaining())

	// Completion idiom: repeat the LOAD until MATCH clears.
	clock.RunUntilIdle()
	st = ctl.Load(addr.Proxy(0x5000))
	fmt.Println("still matching:", st.Match())
	fmt.Printf("device holds: %s\n", card.Bytes(0, 16))

	// Output:
	// initiated: true bytes: 16
	// still matching: false
	// device holds: hello, SHRIMP!!!
}

// ExampleController_Inval shows invariant I1's recovery: a context
// switch fires Inval, and the victim's LOAD reports a retryable status.
func ExampleController_Inval() {
	clock := sim.NewClock()
	costs := &sim.CostModel{CPUHz: 60e6, DMAStartup: 1, DMABytesPerCyc: 1, LinkBytesPerCyc: 1}
	ram := mem.NewPhysical(16)
	devmap := device.NewMap()
	devmap.Attach(device.NewBuffer("card", 4, 0, 0), 0)
	engine := dma.New(clock, costs, bus.New(clock, costs), ram, devmap)
	ctl := core.New(engine, devmap, clock, core.Config{})

	ctl.Store(addr.DevProxy(0, 0), 64) // victim's STORE half
	ctl.Inval()                        // context switch!
	st := ctl.Load(addr.Proxy(0x2000)) // victim's LOAD half

	fmt.Println("initiated:", st.Initiated())
	fmt.Println("retryable:", st.Retryable())
	// Output:
	// initiated: false
	// retryable: true
}
