package core

import (
	"errors"
	"testing"

	"shrimp/internal/addr"
	"shrimp/internal/bus"
	"shrimp/internal/device"
	"shrimp/internal/dma"
	"shrimp/internal/mem"
	"shrimp/internal/sim"
)

func faultyRig(cfg Config) (*rig, *device.Faulty) {
	clock := sim.NewClock()
	costs := &sim.CostModel{
		CPUHz: 60e6, DMAStartup: 10, DMABytesPerCyc: 2, LinkBytesPerCyc: 1,
	}
	ram := mem.NewPhysical(64)
	devmap := device.NewMap()
	inner := device.NewBuffer("buf", 16, 0, 0)
	faulty := device.NewFaulty(inner)
	if err := devmap.Attach(faulty, 0); err != nil {
		panic(err)
	}
	eng := dma.New(clock, costs, bus.New(clock, costs), ram, devmap)
	return &rig{clock: clock, ram: ram, buf: inner, eng: eng,
		ctl: New(eng, devmap, clock, cfg)}, faulty
}

func TestValidationRejectionSurfacesInStatus(t *testing.T) {
	r, f := faultyRig(Config{})
	f.RejectNext = 1
	f.RejectBits = device.ErrAlignment
	st := r.initiate(addr.DevProxy(0, 0), addr.Proxy(0x1000), 64)
	if st.Initiated() || st.DeviceErr()&device.ErrAlignment == 0 {
		t.Fatalf("status = %v", st)
	}
	// Machine immediately reusable.
	st = r.initiate(addr.DevProxy(0, 0), addr.Proxy(0x1000), 64)
	if !st.Initiated() {
		t.Fatalf("post-rejection initiation: %v", st)
	}
	rej, _ := f.Injected()
	if rej != 1 {
		t.Fatalf("rejections = %d", rej)
	}
}

func TestCompletionFailureFreesTheEngine(t *testing.T) {
	// A transfer that fails at completion (the paper's "memory system
	// errors") must still return the engine to Idle so the machine
	// keeps working.
	r, f := faultyRig(Config{})
	f.FailNext = 1
	r.ram.Write(0x2000, []byte{1, 2, 3, 4})
	st := r.initiate(addr.DevProxy(0, 0), addr.Proxy(0x2000), 4)
	if !st.Initiated() {
		t.Fatal(st)
	}
	r.clock.RunUntilIdle()
	if r.ctl.State() != Idle {
		t.Fatalf("state after failed completion = %v", r.ctl.State())
	}
	if r.ctl.PageInUse(addr.PFN(0x2000)) {
		t.Fatal("failed transfer still holds its frame (I4 leak)")
	}
	// Next transfer succeeds and delivers.
	st = r.initiate(addr.DevProxy(0, 64), addr.Proxy(0x2000), 4)
	if !st.Initiated() {
		t.Fatal(st)
	}
	r.clock.RunUntilIdle()
	if r.buf.Bytes(64, 1)[0] != 1 {
		t.Fatal("post-failure transfer did not deliver")
	}
}

func TestQueueSurvivesMidstreamFailure(t *testing.T) {
	// With queueing, a completion failure on one request must not stall
	// or corrupt the requests behind it.
	r, f := faultyRig(Config{QueueDepth: 4})
	for i := 0; i < 3; i++ {
		r.ram.Write(addr.PAddr(0x3000+i*0x1000), []byte{byte(10 + i)})
		st := r.initiate(addr.DevProxy(0, uint32(128*i)), addr.Proxy(addr.PAddr(0x3000+i*0x1000)), 4)
		if !st.Initiated() {
			t.Fatalf("initiation %d: %v", i, st)
		}
	}
	// Fail the SECOND transfer's completion (first is already in
	// flight when we arm the injector... arm for the next Write call).
	// At this point transfer 0 has not completed yet; fail it instead —
	// any one of the three demonstrates the property.
	f.FailNext = 1
	r.clock.RunUntilIdle()
	// Exactly one transfer failed; the other two delivered.
	delivered := 0
	for i := 0; i < 3; i++ {
		if r.buf.Bytes(128*i, 1)[0] == byte(10+i) {
			delivered++
		}
	}
	if delivered != 2 {
		t.Fatalf("delivered %d of 3 with one injected failure", delivered)
	}
	if r.ctl.State() != Idle || r.ctl.QueueLen() != 0 {
		t.Fatalf("machine not drained: state=%v queue=%d", r.ctl.State(), r.ctl.QueueLen())
	}
	if !errors.Is(device.ErrInjected, device.ErrInjected) {
		t.Fatal("sentinel comparison broken")
	}
}

func TestEngineReportsCompletionError(t *testing.T) {
	r, f := faultyRig(Config{})
	var got error
	r.eng.OnComplete(func(err error) {
		if err != nil {
			got = err
		}
	})
	f.FailNext = 1
	r.ram.Write(0x2000, []byte{9})
	r.initiate(addr.DevProxy(0, 0), addr.Proxy(0x2000), 4)
	r.clock.RunUntilIdle()
	if !errors.Is(got, device.ErrInjected) {
		t.Fatalf("completion error = %v", got)
	}
	tr, _ := r.eng.Stats()
	if tr != 0 {
		t.Fatalf("failed transfer counted as completed: %d", tr)
	}
}
