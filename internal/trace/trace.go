// Package trace provides a lightweight event tracer for the simulated
// machine: a fixed-capacity ring buffer of timestamped events that the
// UDMA controller, kernel and network interface feed when a tracer is
// attached. It exists for the same reason hardware people put logic
// analyzers on buses — the interesting bugs in this system are
// orderings (a context-switch Inval landing between two references, an
// eviction racing a transfer), and a linear event record is how you see
// them.
//
// Tracing is strictly opt-in and free when disabled: components hold a
// nil *Tracer and skip the call.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"shrimp/internal/sim"
)

// Kind classifies an event.
type Kind int

const (
	// UDMA controller events.
	EvStore Kind = iota
	EvLoad
	EvInval
	EvInitiation
	EvBadLoad
	EvTransferDone
	EvTransferFail
	EvTerminate
	// Kernel events.
	EvContextSwitch
	EvPageFault
	EvProxyFault
	EvEviction
	EvPageIn
	EvSegfault
	EvMachineCheck
	// Network events.
	EvPacketSend
	EvPacketRecv
	// Wire fault events (recorded by the backplane fault plan on the
	// sender's tracer).
	EvWireDrop
	EvWireDup
	EvWireCorrupt
	EvWireDelay
	EvLinkFlap
	// NIC reliability-layer events.
	EvRetransmit
	EvCrcDrop
	EvDupDrop
	EvCreditStall
	EvDeliveryFail
)

var kindNames = map[Kind]string{
	EvStore:         "store",
	EvLoad:          "load",
	EvInval:         "inval",
	EvInitiation:    "initiate",
	EvBadLoad:       "badload",
	EvTransferDone:  "xfer-done",
	EvTransferFail:  "xfer-fail",
	EvTerminate:     "terminate",
	EvContextSwitch: "ctx-switch",
	EvPageFault:     "page-fault",
	EvProxyFault:    "proxy-fault",
	EvEviction:      "evict",
	EvPageIn:        "page-in",
	EvSegfault:      "segfault",
	EvMachineCheck:  "machine-check",
	EvPacketSend:    "pkt-send",
	EvPacketRecv:    "pkt-recv",
	EvWireDrop:      "wire-drop",
	EvWireDup:       "wire-dup",
	EvWireCorrupt:   "wire-corrupt",
	EvWireDelay:     "wire-delay",
	EvLinkFlap:      "link-flap",
	EvRetransmit:    "retransmit",
	EvCrcDrop:       "crc-drop",
	EvDupDrop:       "dup-drop",
	EvCreditStall:   "credit-stall",
	EvDeliveryFail:  "delivery-fail",
}

// Kinds returns every known event kind in numeric order, derived from
// the name table so newly added kinds cannot be silently dropped by
// summaries.
func Kinds() []Kind {
	out := make([]Kind, 0, len(kindNames))
	for k := range kindNames {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String returns the event kind's short name.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one trace record. A and B carry kind-specific operands
// (addresses, counts, pids); Note is optional human context.
type Event struct {
	At   sim.Cycles
	Kind Kind
	A, B uint64
	Note string
}

func (e Event) String() string {
	s := fmt.Sprintf("%10d  %-11s a=%#x b=%#x", e.At, e.Kind, e.A, e.B)
	if e.Note != "" {
		s += "  " + e.Note
	}
	return s
}

// Tracer is a fixed-capacity ring buffer of events. The zero value is
// unusable; call New. A nil *Tracer is a valid "tracing off" value:
// Record on nil is a no-op.
type Tracer struct {
	clock *sim.Clock
	ring  []Event
	next  int
	full  bool
	total uint64
	// counts is maintained per-kind at record time so Counts and Summary
	// report lifetime totals even after the ring wraps and old events
	// are overwritten.
	counts map[Kind]uint64

	filter map[Kind]bool // nil = record everything
}

// New returns a tracer recording up to capacity events on the clock.
func New(clock *sim.Clock, capacity int) *Tracer {
	if clock == nil {
		panic("trace: New requires a clock")
	}
	if capacity <= 0 {
		capacity = 1024
	}
	return &Tracer{clock: clock, ring: make([]Event, capacity), counts: make(map[Kind]uint64)}
}

// Filter restricts recording to the given kinds (nil/empty clears the
// filter).
func (t *Tracer) Filter(kinds ...Kind) {
	if len(kinds) == 0 {
		t.filter = nil
		return
	}
	t.filter = make(map[Kind]bool, len(kinds))
	for _, k := range kinds {
		t.filter[k] = true
	}
}

// Record appends an event. Safe to call on a nil tracer.
func (t *Tracer) Record(kind Kind, a, b uint64, note string) {
	if t == nil {
		return
	}
	if t.filter != nil && !t.filter[kind] {
		return
	}
	t.ring[t.next] = Event{At: t.clock.Now(), Kind: kind, A: a, B: b, Note: note}
	t.next++
	t.total++
	t.counts[kind]++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
}

// Events returns the *buffered* events, oldest first — at most the ring
// capacity. After a wrap this window covers only the newest events;
// Counts, Summary and Total still report the whole lifetime.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	if !t.full {
		out := make([]Event, t.next)
		copy(out, t.ring[:t.next])
		return out
	}
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Tail returns the newest n buffered events, oldest first (the compact
// event-trail slice failure reports embed). n <= 0 or n larger than the
// buffered window returns everything buffered.
func (t *Tracer) Tail(n int) []Event {
	evs := t.Events()
	if n <= 0 || n >= len(evs) {
		return evs
	}
	return evs[len(evs)-n:]
}

// Total returns how many events were recorded (including overwritten).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.total
}

// Dump writes the buffered events to w, one per line.
func (t *Tracer) Dump(w io.Writer) {
	if t == nil {
		return
	}
	for _, e := range t.Events() {
		fmt.Fprintln(w, e)
	}
}

// Counts returns lifetime per-kind event counts. Unlike Events, the
// counts are accumulated at record time, so they stay accurate after
// the ring wraps and overwrites old events.
func (t *Tracer) Counts() map[Kind]uint64 {
	out := make(map[Kind]uint64)
	if t == nil {
		return out
	}
	for k, c := range t.counts {
		out[k] = c
	}
	return out
}

// BufferedCounts returns per-kind counts of only the events still in
// the ring (the window Events returns). Compare with Counts to see how
// much history a wrap discarded.
func (t *Tracer) BufferedCounts() map[Kind]uint64 {
	out := make(map[Kind]uint64)
	for _, e := range t.Events() {
		out[e.Kind]++
	}
	return out
}

// Summary renders the lifetime per-kind counts compactly. The kind list
// is derived from the name table, so every kind — including ones added
// after this function was written — is reported.
func (t *Tracer) Summary() string {
	counts := t.Counts()
	var parts []string
	for _, k := range Kinds() {
		if c := counts[k]; c > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", k, c))
		}
	}
	if len(parts) == 0 {
		return "(no events)"
	}
	return strings.Join(parts, " ")
}
