package trace

import (
	"bytes"
	"strings"
	"testing"

	"shrimp/internal/sim"
)

func TestRecordAndEvents(t *testing.T) {
	clock := sim.NewClock()
	tr := New(clock, 8)
	tr.Record(EvStore, 0x1000, 64, "")
	clock.Advance(10)
	tr.Record(EvLoad, 0x2000, 0, "poll")

	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events", len(evs))
	}
	if evs[0].Kind != EvStore || evs[0].At != 0 || evs[0].A != 0x1000 {
		t.Fatalf("first event %+v", evs[0])
	}
	if evs[1].Kind != EvLoad || evs[1].At != 10 || evs[1].Note != "poll" {
		t.Fatalf("second event %+v", evs[1])
	}
	if tr.Total() != 2 {
		t.Fatalf("Total = %d", tr.Total())
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	clock := sim.NewClock()
	tr := New(clock, 4)
	for i := 0; i < 10; i++ {
		tr.Record(EvStore, uint64(i), 0, "")
		clock.Advance(1)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d, want 4", len(evs))
	}
	for i, e := range evs {
		if e.A != uint64(6+i) {
			t.Fatalf("ring order wrong: %+v", evs)
		}
	}
	if tr.Total() != 10 {
		t.Fatalf("Total = %d", tr.Total())
	}
}

// TestCountsSurviveRingWrap is the regression test for Counts and
// Summary undercounting after a wrap: they must report lifetime totals,
// while BufferedCounts reports only the windowed ring contents.
func TestCountsSurviveRingWrap(t *testing.T) {
	clock := sim.NewClock()
	tr := New(clock, 4)
	for i := 0; i < 100; i++ {
		tr.Record(EvStore, uint64(i), 0, "")
	}
	tr.Record(EvInitiation, 0, 0, "")
	tr.Record(EvTransferDone, 0, 0, "")

	counts := tr.Counts()
	if counts[EvStore] != 100 {
		t.Fatalf("lifetime store count = %d, want 100 (wrap lost history)", counts[EvStore])
	}
	if counts[EvInitiation] != 1 || counts[EvTransferDone] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	sum := tr.Summary()
	if !strings.Contains(sum, "store=100") {
		t.Fatalf("summary undercounts after wrap: %q", sum)
	}

	// The window still only holds the newest capacity events.
	buffered := tr.BufferedCounts()
	var windowed uint64
	for _, c := range buffered {
		windowed += c
	}
	if windowed != 4 {
		t.Fatalf("buffered counts cover %d events, want ring capacity 4", windowed)
	}
	if buffered[EvStore] != 2 || buffered[EvInitiation] != 1 || buffered[EvTransferDone] != 1 {
		t.Fatalf("buffered = %v", buffered)
	}
	if tr.Total() != 102 {
		t.Fatalf("Total = %d", tr.Total())
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.Record(EvStore, 1, 2, "x") // must not panic
	if tr.Events() != nil {
		t.Fatal("nil tracer has events")
	}
	if tr.Total() != 0 {
		t.Fatal("nil tracer has total")
	}
	var buf bytes.Buffer
	tr.Dump(&buf)
	if buf.Len() != 0 {
		t.Fatal("nil tracer dumped output")
	}
	if len(tr.Counts()) != 0 || len(tr.BufferedCounts()) != 0 {
		t.Fatal("nil tracer has counts")
	}
}

func TestFilter(t *testing.T) {
	tr := New(sim.NewClock(), 16)
	tr.Filter(EvInitiation, EvBadLoad)
	tr.Record(EvStore, 1, 0, "")
	tr.Record(EvInitiation, 2, 0, "")
	tr.Record(EvLoad, 3, 0, "")
	tr.Record(EvBadLoad, 4, 0, "")
	evs := tr.Events()
	if len(evs) != 2 || evs[0].Kind != EvInitiation || evs[1].Kind != EvBadLoad {
		t.Fatalf("filtered events: %+v", evs)
	}
	tr.Filter() // clear
	tr.Record(EvStore, 5, 0, "")
	if len(tr.Events()) != 3 {
		t.Fatal("filter not cleared")
	}
}

func TestDumpAndSummary(t *testing.T) {
	tr := New(sim.NewClock(), 16)
	tr.Record(EvInitiation, 0x5000, 0x80000000, "64B")
	tr.Record(EvInitiation, 0x6000, 0x80001000, "")
	tr.Record(EvPacketSend, 1, 4096, "")
	var buf bytes.Buffer
	tr.Dump(&buf)
	out := buf.String()
	if !strings.Contains(out, "initiate") || !strings.Contains(out, "pkt-send") {
		t.Fatalf("dump missing kinds:\n%s", out)
	}
	if !strings.Contains(out, "64B") {
		t.Fatal("dump missing note")
	}
	sum := tr.Summary()
	if !strings.Contains(sum, "initiate=2") || !strings.Contains(sum, "pkt-send=1") {
		t.Fatalf("summary = %q", sum)
	}
	if New(sim.NewClock(), 4).Summary() != "(no events)" {
		t.Fatal("empty summary wrong")
	}
}

func TestKindString(t *testing.T) {
	if EvStore.String() != "store" || EvPacketRecv.String() != "pkt-recv" {
		t.Fatal("kind names wrong")
	}
	if Kind(99).String() != "kind(99)" {
		t.Fatal("unknown kind name wrong")
	}
}

func TestDefaultCapacity(t *testing.T) {
	tr := New(sim.NewClock(), 0)
	for i := 0; i < 2000; i++ {
		tr.Record(EvStore, 0, 0, "")
	}
	if got := len(tr.Events()); got != 1024 {
		t.Fatalf("default capacity held %d", got)
	}
}

func TestNewRequiresClock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(nil) did not panic")
		}
	}()
	New(nil, 8)
}

// TestKindsCoverEveryDeclaredKind is the regression test for the
// summary dropping kinds: every constant from EvStore through
// EvDeliveryFail must be named and enumerated by Kinds(), so Summary
// can never silently omit an event class (the fault-recovery kinds
// EvTransferFail and EvMachineCheck were invisible to the old
// hand-maintained list).
func TestKindsCoverEveryDeclaredKind(t *testing.T) {
	kinds := Kinds()
	if len(kinds) != int(EvDeliveryFail)+1 {
		t.Fatalf("Kinds() enumerates %d kinds, want %d", len(kinds), int(EvDeliveryFail)+1)
	}
	for i, k := range kinds {
		if int(k) != i {
			t.Fatalf("Kinds()[%d] = %v (gap or duplicate)", i, k)
		}
		if strings.HasPrefix(k.String(), "kind(") {
			t.Fatalf("kind %d has no name", i)
		}
	}
}

// TestSummaryIncludesFaultKinds: the new fault-path events show up in
// the per-kind summary.
func TestSummaryIncludesFaultKinds(t *testing.T) {
	tr := New(sim.NewClock(), 8)
	tr.Record(EvTransferFail, 0x4000, 64, "bounds")
	tr.Record(EvTransferFail, 0x5000, 64, "injected")
	tr.Record(EvMachineCheck, 0, 0, "parity")
	sum := tr.Summary()
	if !strings.Contains(sum, "xfer-fail=2") || !strings.Contains(sum, "machine-check=1") {
		t.Fatalf("summary = %q", sum)
	}
	counts := tr.Counts()
	if counts[EvTransferFail] != 2 || counts[EvMachineCheck] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}
