// Package machine assembles one simulated SHRIMP node — CPU cost
// model, RAM, swap, MMU+TLB, I/O bus, DMA engine, UDMA controller,
// device map and kernel — and provides the calibrated SHRIMP1996
// configuration used by every experiment.
package machine

import (
	"fmt"
	"strconv"

	"shrimp/internal/bus"
	"shrimp/internal/core"
	"shrimp/internal/device"
	"shrimp/internal/dma"
	"shrimp/internal/kernel"
	"shrimp/internal/mem"
	"shrimp/internal/mmu"
	"shrimp/internal/sim"
	"shrimp/internal/telemetry"
	"shrimp/internal/trace"
)

// SHRIMP1996 returns the cost model calibrated against the paper's
// published measurements: a 60 MHz Pentium Xpress node (16.7 ns/cycle)
// on an EISA I/O bus, attached to an Intel Paragon routing backplane.
//
// Calibration anchors (see EXPERIMENTS.md for the paper-vs-measured
// table):
//   - two uncached proxy references + user-level alignment checking
//     ≈ 2.8 µs (paper Section 8) → UncachedRef = 60 cycles (1 µs per
//     EISA I/O reference) plus library ALU work;
//   - EISA burst mode ≈ 33 MB/s → 0.55 bytes/cycle;
//   - traditional kernel DMA initiation in the hundreds-to-thousands
//     of instructions (Sections 1–2) → syscall/pin/translate costs;
//   - HIPPI-era kernel send overhead ≈ 350 µs is modeled separately in
//     experiment E3 by scaling these kernel costs.
func SHRIMP1996() *sim.CostModel {
	return &sim.CostModel{
		CPUHz: 60e6,

		ALUOp:             1,
		MemRefHit:         1,
		WriteThroughStore: 10, // ~24 MB/s word-by-word write-through
		TLBMiss:           20,
		UncachedRef:       60, // 1 µs EISA I/O reference
		FaultTrap:         100,
		FaultHandler:      200,

		SyscallEntry:   150,
		SyscallExit:    100,
		ContextSwitch:  300,
		PinPage:        300,
		UnpinPage:      200,
		TranslatePage:  100,
		BuildDescPage:  50,
		CopyPerWord:    3, // ~80 MB/s kernel memcpy
		InterruptEntry: 250,
		MapProxyPage:   150,
		PageInLatency:  300_000, // 5 ms backing store read
		PageCleanCost:  300_000, // 5 ms backing store write

		DMAStartup:     120,  // 2 µs engine arbitration + first word
		DMABytesPerCyc: 0.55, // 33 MB/s EISA burst
		PIOWordCost:    60,   // 1 µs per programmed-I/O word (4 MB/s)

		NIPTLookup:      10,
		PacketHeader:    60,  // 1 µs header assembly
		PacketPerPage:   120, // 2 µs FIFO entry + launch
		LinkBytesPerCyc: 2.9, // ~175 MB/s Paragon backplane link
		LinkLatency:     30,  // 0.5 µs per hop
		RecvDMAStartup:  120,
	}
}

// Config describes one node.
type Config struct {
	// Costs is the machine cost model; nil selects SHRIMP1996.
	Costs *sim.CostModel
	// RAMFrames is installed memory in 4 KB frames (default 256 = 1 MB).
	RAMFrames int
	// TLBEntries sizes the TLB (default 64; 0 legitimately disables
	// caching for the TLB ablation).
	TLBEntries *int
	// NoUDMA builds a traditional-DMA-only node (baseline machine).
	NoUDMA bool
	// UDMA configures the controller (queue depths).
	UDMA core.Config
	// Kernel configures scheduling and bounce buffers.
	Kernel kernel.Config
	// Clock shares an external clock (cluster builds); nil creates one.
	Clock *sim.Clock
	// Metrics attaches a telemetry registry; every hardware layer of
	// the node records into it under a node=<id> label. Nil (the
	// default) leaves all instruments as free no-ops. Telemetry is a
	// pure observer: enabling it never changes simulated time.
	Metrics *telemetry.Registry
}

// Node is one assembled machine.
type Node struct {
	ID     int
	Clock  *sim.Clock
	Costs  *sim.CostModel
	RAM    *mem.Physical
	Swap   *mem.BackingStore
	TLB    *mmu.TLB
	MMU    *mmu.MMU
	Bus    *bus.Bus
	Engine *dma.Engine
	UDMA   *core.Controller // nil when cfg.NoUDMA
	DevMap *device.Map
	Kernel *kernel.Kernel
	// Metrics is the node's telemetry scope (node=<id>); nil when the
	// config carried no registry.
	Metrics *telemetry.Scope
}

// New assembles a node. Devices are attached afterward with
// AttachDevice, before the first process touches them.
func New(id int, cfg Config) *Node {
	costs := cfg.Costs
	if costs == nil {
		costs = SHRIMP1996()
	}
	if err := costs.Validate(); err != nil {
		panic(fmt.Sprintf("machine: %v", err))
	}
	frames := cfg.RAMFrames
	if frames == 0 {
		frames = 256
	}
	tlbEntries := 64
	if cfg.TLBEntries != nil {
		tlbEntries = *cfg.TLBEntries
	}
	clock := cfg.Clock
	if clock == nil {
		clock = sim.NewClock()
	}

	n := &Node{
		ID:     id,
		Clock:  clock,
		Costs:  costs,
		RAM:    mem.NewPhysical(frames),
		Swap:   mem.NewBackingStore(),
		TLB:    mmu.NewTLB(tlbEntries),
		DevMap: device.NewMap(),
	}
	n.MMU = mmu.New(n.TLB, clock, costs)
	n.Bus = bus.New(clock, costs)
	n.Engine = dma.New(clock, costs, n.Bus, n.RAM, n.DevMap)
	if !cfg.NoUDMA {
		n.UDMA = core.New(n.Engine, n.DevMap, clock, cfg.UDMA)
	}
	n.Kernel = kernel.New(clock, costs, n.RAM, n.Swap, n.MMU, n.Bus,
		n.Engine, n.UDMA, n.DevMap, cfg.Kernel)
	if cfg.Metrics != nil {
		scope := cfg.Metrics.Scope(telemetry.L("node", strconv.Itoa(id)))
		n.Metrics = scope
		n.Bus.SetMetrics(scope)
		n.Engine.SetMetrics(scope)
		if n.UDMA != nil {
			n.UDMA.SetMetrics(scope)
		}
		n.Kernel.SetMetrics(scope)
	}
	return n
}

// SetTracer attaches one event tracer to the node's kernel and UDMA
// controller so a single ring holds the interleaved event record (nil
// disables tracing). Devices with their own tracers (the NIC) are
// attached by the caller.
func (n *Node) SetTracer(t *trace.Tracer) {
	n.Kernel.SetTracer(t)
	if n.UDMA != nil {
		n.UDMA.SetTracer(t)
	}
}

// AttachDevice decodes a device's proxy pages starting at firstPage.
func (n *Node) AttachDevice(dev device.Device, firstPage uint32) {
	if err := n.DevMap.Attach(dev, firstPage); err != nil {
		panic(fmt.Sprintf("machine: %v", err))
	}
}

// Micros converts node cycles to microseconds.
func (n *Node) Micros(c sim.Cycles) float64 { return n.Costs.Micros(c) }
