package machine

import (
	"testing"

	"shrimp/internal/device"
	"shrimp/internal/sim"
)

func TestSHRIMP1996Valid(t *testing.T) {
	m := SHRIMP1996()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Calibration anchors (see EXPERIMENTS.md).
	if us := m.Micros(2 * m.UncachedRef); us < 1.5 || us > 2.5 {
		t.Fatalf("two uncached refs = %.2f µs, want ~2 µs", us)
	}
	if bw := m.DMABandwidth() / 1e6; bw < 30 || bw > 36 {
		t.Fatalf("burst bandwidth = %.1f MB/s, want ~33 (EISA)", bw)
	}
	if bw := m.LinkBytesPerCyc * m.CPUHz / 1e6; bw < 150 || bw > 200 {
		t.Fatalf("link bandwidth = %.1f MB/s, want ~175 (Paragon)", bw)
	}
}

func TestNewDefaults(t *testing.T) {
	n := New(3, Config{})
	defer n.Kernel.Shutdown()
	if n.ID != 3 {
		t.Fatalf("ID = %d", n.ID)
	}
	if n.RAM.Frames() != 256 {
		t.Fatalf("default frames = %d", n.RAM.Frames())
	}
	if n.TLB.Size() != 64 {
		t.Fatalf("default TLB = %d", n.TLB.Size())
	}
	if n.UDMA == nil {
		t.Fatal("default machine lacks UDMA")
	}
	if n.Clock == nil || n.Kernel == nil || n.Engine == nil {
		t.Fatal("incomplete assembly")
	}
}

func TestNoUDMAConfig(t *testing.T) {
	n := New(0, Config{NoUDMA: true})
	defer n.Kernel.Shutdown()
	if n.UDMA != nil {
		t.Fatal("NoUDMA machine has a controller")
	}
}

func TestZeroTLBConfig(t *testing.T) {
	zero := 0
	n := New(0, Config{TLBEntries: &zero})
	defer n.Kernel.Shutdown()
	if n.TLB.Size() != 0 {
		t.Fatalf("TLB size = %d, want 0", n.TLB.Size())
	}
}

func TestSharedClock(t *testing.T) {
	clock := sim.NewClock()
	a := New(0, Config{Clock: clock})
	b := New(1, Config{Clock: clock})
	defer a.Kernel.Shutdown()
	defer b.Kernel.Shutdown()
	if a.Clock != clock || b.Clock != clock {
		t.Fatal("nodes did not share the provided clock")
	}
}

func TestAttachDevice(t *testing.T) {
	n := New(0, Config{})
	defer n.Kernel.Shutdown()
	d := device.NewBuffer("d", 4, 0, 0)
	n.AttachDevice(d, 10)
	first, count, ok := n.DevMap.PageRange(d)
	if !ok || first != 10 || count != 4 {
		t.Fatalf("PageRange = %d,%d,%v", first, count, ok)
	}
	// Overlapping attach must panic (wiring error).
	defer func() {
		if recover() == nil {
			t.Fatal("overlapping AttachDevice did not panic")
		}
	}()
	n.AttachDevice(device.NewBuffer("e", 4, 0, 0), 12)
}

func TestBadCostModelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid cost model did not panic")
		}
	}()
	New(0, Config{Costs: &sim.CostModel{}})
}

func TestMicros(t *testing.T) {
	n := New(0, Config{})
	defer n.Kernel.Shutdown()
	if us := n.Micros(60); us < 0.9 || us > 1.1 {
		t.Fatalf("Micros(60) = %f at 60 MHz", us)
	}
}
