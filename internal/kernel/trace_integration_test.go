package kernel_test

import (
	"testing"

	"shrimp/internal/addr"
	"shrimp/internal/core"
	"shrimp/internal/kernel"
	"shrimp/internal/machine"
	"shrimp/internal/trace"
)

// TestTraceRecordsCanonicalSendSequence attaches a tracer and checks
// the hardware event order of one two-instruction send: the STORE
// latches, the LOAD initiates, the transfer completes — with the
// demand-created proxy mappings faulting in between.
func TestTraceRecordsCanonicalSendSequence(t *testing.T) {
	n, buf := newNode(t, machine.Config{})
	tr := trace.New(n.Clock, 128)
	n.UDMA.SetTracer(tr)
	n.Kernel.SetTracer(tr)

	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		devVA, _ := p.MapDevice(buf, true)
		va, _ := p.Alloc(4096)
		p.WriteBuf(va, []byte{1, 2, 3, 4})
		p.Store(devVA, 4)
		p.Load(addr.VProxy(va))
		for {
			v, _ := p.Load(addr.VProxy(va))
			if !core.Status(v).Match() {
				break
			}
		}
	})
	run(t, n)

	var order []trace.Kind
	for _, e := range tr.Events() {
		order = append(order, e.Kind)
	}
	// Find the canonical subsequence store → initiate → xfer-done.
	want := []trace.Kind{trace.EvStore, trace.EvInitiation, trace.EvTransferDone}
	wi := 0
	for _, k := range order {
		if wi < len(want) && k == want[wi] {
			wi++
		}
	}
	if wi != len(want) {
		t.Fatalf("canonical sequence not found in trace: %v", order)
	}
	counts := tr.Counts()
	if counts[trace.EvProxyFault] == 0 {
		t.Fatal("no proxy faults traced: on-demand mapping invisible")
	}
	if counts[trace.EvInitiation] != 1 {
		t.Fatalf("initiations traced: %d", counts[trace.EvInitiation])
	}
	// Timestamps are monotone.
	evs := tr.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatalf("trace timestamps not monotone: %v then %v", evs[i-1], evs[i])
		}
	}
}
