package kernel_test

import (
	"errors"
	"testing"

	"shrimp/internal/addr"
	"shrimp/internal/core"
	"shrimp/internal/kernel"
	"shrimp/internal/machine"
	"shrimp/internal/mmu"
	"shrimp/internal/sim"
)

func TestCleanerDaemonCleansDirtyPages(t *testing.T) {
	n, _ := newNode(t, machine.Config{})
	stop := n.Kernel.StartCleaner(100_000)
	defer stop()

	var stillDirty bool
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		va, _ := p.Alloc(4 * addr.PageSize)
		for i := 0; i < 4; i++ {
			p.Store(va+addr.VAddr(i*addr.PageSize), uint32(i))
		}
		// Let several daemon periods elapse (each clean costs 300k
		// cycles itself, so give it room).
		p.Sleep(5_000_000)
		stillDirty = false
		for i := 0; i < 4; i++ {
			if p.AddressSpace().Lookup(addr.VPN(va) + uint32(i)).Dirty {
				stillDirty = true
			}
		}
	})
	run(t, n)
	if stillDirty {
		t.Fatal("cleaner daemon left dirty pages after several periods")
	}
	if n.Kernel.Stats().CleanedPages < 4 {
		t.Fatalf("cleaned %d pages", n.Kernel.Stats().CleanedPages)
	}
}

func TestCleanerDaemonMaintainsI3WithUDMA(t *testing.T) {
	// The daemon write-protects proxy pages when it cleans; a later
	// destination use must re-fault, re-dirty and still work.
	n, buf := newNode(t, machine.Config{})
	stop := n.Kernel.StartCleaner(200_000)
	defer stop()

	var err2 error
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		devVA, _ := p.MapDevice(buf, true)
		va, _ := p.Alloc(addr.PageSize)
		for round := 0; round < 3; round++ {
			// Incoming transfer: memory is the destination.
			if err := p.Store(addr.VProxy(va), 64); err != nil {
				err2 = err
				return
			}
			if _, err := p.Load(devVA); err != nil {
				err2 = err
				return
			}
			for {
				v, _ := p.Load(devVA)
				if !core.Status(v).Match() {
					break
				}
			}
			if !p.AddressSpace().Lookup(addr.VPN(va)).Dirty {
				err2 = errors.New("destination page not dirty after transfer")
				return
			}
			// Give the daemon time to clean it again.
			p.Sleep(2_000_000)
		}
	})
	run(t, n)
	if err2 != nil {
		t.Fatal(err2)
	}
	st := n.Kernel.Stats()
	if st.CleanedPages == 0 {
		t.Fatal("daemon never cleaned")
	}
	if st.ProxyUpgrades < 2 {
		t.Fatalf("proxy re-upgrades = %d, want >= 2 (I3 cycle)", st.ProxyUpgrades)
	}
}

func TestCleanerStops(t *testing.T) {
	n, _ := newNode(t, machine.Config{})
	stop := n.Kernel.StartCleaner(50_000)
	var cleanedAtStop uint64
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		va, _ := p.Alloc(addr.PageSize)
		p.Store(va, 1)
		p.Sleep(1_000_000)
		stop()
		cleanedAtStop = n.Kernel.Stats().CleanedPages
		p.Store(va, 2)
		p.Sleep(1_000_000)
	})
	run(t, n)
	if n.Kernel.Stats().CleanedPages != cleanedAtStop {
		t.Fatal("cleaner kept cleaning after stop")
	}
	// Drain the one orphaned scheduled tick, if any.
	n.Clock.RunUntilIdle()
}

func TestCleanerZeroPeriodPanics(t *testing.T) {
	n, _ := newNode(t, machine.Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("StartCleaner(0) did not panic")
		}
	}()
	n.Kernel.StartCleaner(0)
}

func TestCleanPageOfNonResidentFails(t *testing.T) {
	n, _ := newNode(t, machine.Config{})
	var err error
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		err = n.Kernel.CleanPage(p, 0x700)
	})
	run(t, n)
	if err == nil {
		t.Fatal("CleanPage of unmapped page succeeded")
	}
	_ = mmu.PTE{}
	_ = sim.Cycles(0)
}
