package kernel

import (
	"fmt"

	"shrimp/internal/addr"
)

// AutoUpdateSink is the hardware that receives stores snooped from the
// memory bus — the SHRIMP network interface's automatic-update path
// implements it. Automatic update is SHRIMP's second transfer
// strategy, which the paper's current design retains alongside UDMA
// deliberate update (Section 9); it relies on a fixed mapping between
// a local source page and a remote destination page.
type AutoUpdateSink interface {
	// SnoopWrite receives one 32-bit store at byte offset off of the
	// page exported through translation entry 'entry'.
	SnoopWrite(entry uint32, off uint32, v uint32)
	// FlushAutoUpdate forces out any write-combining state; the kernel
	// calls it on context switch so one process's tail writes cannot
	// linger in the board while another runs.
	FlushAutoUpdate()
}

// autoRange is one automatic-update export: pages [firstVPN,
// firstVPN+nPages) snoop through entries [firstEntry, ...).
type autoRange struct {
	firstVPN   uint32
	nPages     uint32
	firstEntry uint32
	sink       AutoUpdateSink
	pfns       []uint32 // pinned frames, released on UnmapAutoUpdate
}

// MapAutoUpdate establishes an automatic-update binding: every store
// the process makes to the n pages at va is propagated through the
// sink's translation entries [firstEntry, firstEntry+n). The pages are
// pinned — the fixed page mapping is the defining property (and
// limitation) of automatic update.
func (p *Proc) MapAutoUpdate(sink AutoUpdateSink, va addr.VAddr, pages int, firstEntry uint32) error {
	k := p.kernel
	k.stats.Syscalls++
	p.inKernel++
	defer func() { p.inKernel-- }()
	k.clock.Advance(k.costs.SyscallEntry)
	defer k.clock.Advance(k.costs.SyscallExit)

	if sink == nil {
		return fmt.Errorf("kernel: MapAutoUpdate with nil sink")
	}
	if addr.PageOff(va) != 0 {
		return fmt.Errorf("kernel: MapAutoUpdate at non-page-aligned %#x", uint32(va))
	}
	if pages <= 0 {
		return fmt.Errorf("kernel: MapAutoUpdate of %d pages", pages)
	}
	firstVPN := addr.VPN(va)
	for _, r := range p.autoRanges {
		if firstVPN < r.firstVPN+r.nPages && r.firstVPN < firstVPN+uint32(pages) {
			return fmt.Errorf("kernel: MapAutoUpdate overlaps an existing export")
		}
	}
	r := autoRange{
		firstVPN:   firstVPN,
		nPages:     uint32(pages),
		firstEntry: firstEntry,
		sink:       sink,
	}
	for i := 0; i < pages; i++ {
		pfn, err := k.pinResident(p, firstVPN+uint32(i))
		if err != nil {
			for _, done := range r.pfns {
				k.unpinFrame(done)
			}
			return err
		}
		r.pfns = append(r.pfns, pfn)
	}
	p.autoRanges = append(p.autoRanges, r)
	return nil
}

// UnmapAutoUpdate removes the binding covering va, flushing the sink
// and unpinning the pages.
func (p *Proc) UnmapAutoUpdate(va addr.VAddr) error {
	k := p.kernel
	k.stats.Syscalls++
	p.inKernel++
	defer func() { p.inKernel-- }()
	k.clock.Advance(k.costs.SyscallEntry)
	defer k.clock.Advance(k.costs.SyscallExit)

	vpn := addr.VPN(va)
	for i, r := range p.autoRanges {
		if vpn >= r.firstVPN && vpn < r.firstVPN+r.nPages {
			r.sink.FlushAutoUpdate()
			for _, pfn := range r.pfns {
				k.unpinFrame(pfn)
			}
			p.autoRanges = append(p.autoRanges[:i], p.autoRanges[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("kernel: no automatic-update export covers %#x", uint32(va))
}

// pinResident is pinUserPage without the syscall accounting (callers
// are already inside a syscall).
func (k *Kernel) pinResident(p *Proc, vpn uint32) (uint32, error) {
	pte := p.as.Lookup(vpn)
	if pte == nil {
		return 0, fmt.Errorf("kernel: page %d not mapped", vpn)
	}
	if !pte.Present {
		if err := k.pageIn(p, vpn, pte); err != nil {
			return 0, err
		}
	}
	if !pte.Writable {
		return 0, fmt.Errorf("kernel: page %d is read-only", vpn)
	}
	pte.Dirty = true
	k.pinFrame(pte.PPN)
	return pte.PPN, nil
}

// snoopStore propagates a store to any automatic-update export it
// falls in. Called from the Store fast path after the memory write.
// Exported pages are write-through (the board snoops the memory bus),
// so the store pays the write-through penalty on top of the ordinary
// reference cost; the snoop itself is hardware and free to the CPU.
func (p *Proc) snoopStore(va addr.VAddr, v uint32) {
	if len(p.autoRanges) == 0 {
		return
	}
	vpn := addr.VPN(va)
	for i := range p.autoRanges {
		r := &p.autoRanges[i]
		if vpn >= r.firstVPN && vpn < r.firstVPN+r.nPages {
			p.charge(p.kernel.costs.WriteThroughStore)
			r.sink.SnoopWrite(r.firstEntry+(vpn-r.firstVPN), addr.PageOff(va), v)
			return
		}
	}
}

// flushAutoUpdates forces out the combining state of every sink the
// process exports through (context-switch path).
func (p *Proc) flushAutoUpdates() {
	for i := range p.autoRanges {
		p.autoRanges[i].sink.FlushAutoUpdate()
	}
}
