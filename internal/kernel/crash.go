package kernel

// Node crash–restart support: the operating-system half of
// cluster.CrashPlan (the board half is nic.Crash/Reboot).
//
// A crash is modeled as the most violent machine check possible: the
// in-flight transfer aborts, the UDMA queue empties, and — unlike an
// ordinary MachineCheck — every process is killed. The kill is marked
// here (at the lockstep barrier, before any worker runs) but each
// process unwinds on its own node's clock during subsequent windows,
// through the ordinary killedPanic path: deferred cleanups run, frames
// release (UDMA-referenced ones park), exactly as for Kill. That keeps
// the teardown deterministic at any worker count: the only cross-node
// action is the barrier-published mark.

// Crash responds to a whole-node power loss: machine-check teardown of
// the DMA hardware state plus a kill of every live process. It returns
// the number of transfers the termination discarded.
func (k *Kernel) Crash(reason error) int {
	n := k.MachineCheck(reason)
	for _, p := range k.procs {
		k.Kill(p)
	}
	return n
}

// Reboot brings the node's OS back after a crash. The simulated kernel
// keeps no volatile state a crash must rebuild — address spaces died
// with their processes, and the frame table is authoritative in host
// memory — so the reboot only sweeps parked frames whose hardware
// references the Terminate dropped. New processes may be spawned
// immediately (the serving driver respawns its workers here).
func (k *Kernel) Reboot() {
	k.drainParked()
}
