package kernel_test

import (
	"testing"

	"shrimp/internal/addr"
	"shrimp/internal/device"
	"shrimp/internal/kernel"
	"shrimp/internal/machine"
	"shrimp/internal/sim"
	"shrimp/internal/udmalib"
	"shrimp/internal/workload"
)

// audioRun plays through a small ring: the process alternates a fixed
// compute burst with a 512-byte ring top-up, via UDMA or the kernel
// DMA path, and returns the underrun count.
//
// The budget is tuned so the difference between the two transfer paths
// (a full UDMA send of 512 B costs ≈27 µs including the burst; the
// kernel syscall path ≈37 µs) is exactly what decides whether the
// deadline holds: at 6 MB/s a 512-byte period is 85.3 µs and the
// compute burst is 55 µs, leaving ~30 µs for the top-up. UDMA fits; a
// syscall does not. This is the paper's "common, fine-grain
// operations" argument with a deadline attached.
func audioRun(t *testing.T, udma bool) uint64 {
	t.Helper()
	n := machine.New(0, machine.Config{})
	dac := device.NewAudio("dac0", 2048, 6e6, n.Clock, n.Costs)
	n.AttachDevice(dac, 0)
	defer n.Kernel.Shutdown()

	const chunk = 512
	const bursts = 64
	var runErr error
	n.Kernel.Spawn("player", func(p *kernel.Proc) {
		va, _ := p.Alloc(addr.PageSize)
		p.WriteBuf(va, workload.Payload(chunk, 3))
		var d *udmalib.Dev
		var err error
		if udma {
			d, err = udmalib.Open(p, dac, true)
		} else {
			_, err = p.MapDevice(dac, true)
		}
		if err != nil {
			runErr = err
			return
		}
		// Prefill the ring, then enter the compute/top-up loop.
		for i := 0; i < 3; i++ {
			if udma {
				err = d.Send(va, 0, chunk)
			} else {
				err = p.DMAWrite(va, addr.DevProxy(0, 0), chunk, kernel.DMAOptions{})
			}
			if err != nil {
				runErr = err
				return
			}
		}
		for i := 0; i < bursts; i++ {
			p.Compute(3300) // 55 µs of "decoding"
			if udma {
				err = d.Send(va, 0, chunk)
			} else {
				err = p.DMAWrite(va, addr.DevProxy(0, 0), chunk, kernel.DMAOptions{})
			}
			if err != nil {
				runErr = err
				return
			}
		}
	})
	if err := n.Kernel.Run(sim.Forever); err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	_, underruns, writes := dac.Stats()
	if writes == 0 {
		t.Fatal("no audio data ever reached the device")
	}
	return underruns
}

func TestAudioDeadlineUDMAKeepsUpKernelDMADoesNot(t *testing.T) {
	udmaUnderruns := audioRun(t, true)
	kernelUnderruns := audioRun(t, false)
	if udmaUnderruns != 0 {
		t.Fatalf("UDMA playback underran %d times", udmaUnderruns)
	}
	if kernelUnderruns == 0 {
		t.Fatal("kernel-DMA playback met the deadline; the initiation gap should have broken it")
	}
}
