package kernel_test

import (
	"bytes"
	"testing"

	"shrimp/internal/addr"
	"shrimp/internal/core"
	"shrimp/internal/kernel"
	"shrimp/internal/machine"
	"shrimp/internal/sim"
	"shrimp/internal/udmalib"
)

// kernelDMALatencyUnderLoad measures how long one kernel DMA syscall
// takes while a user process keeps the UDMA request queue saturated.
func kernelDMALatencyUnderLoad(t *testing.T, sysDepth int) sim.Cycles {
	t.Helper()
	n, buf := newNode(t, machine.Config{
		UDMA:   core.Config{QueueDepth: 8, SystemQueueDepth: sysDepth},
		Kernel: kernel.Config{Quantum: 3000},
	})

	// User process: a firehose of queued page sends.
	n.Kernel.Spawn("firehose", func(p *kernel.Proc) {
		d, err := udmalib.Open(p, buf, true)
		if err != nil {
			return
		}
		va, _ := p.Alloc(4 * addr.PageSize)
		p.WriteBuf(va, bytes.Repeat([]byte{0xEE}, 4*addr.PageSize))
		for i := 0; i < 40; i++ {
			if err := d.QueuedSend(va, 4096, 4*addr.PageSize); err != nil {
				return
			}
		}
	})

	var latency sim.Cycles
	var dmaErr error
	n.Kernel.Spawn("driver", func(p *kernel.Proc) {
		va, _ := p.Alloc(addr.PageSize)
		p.WriteBuf(va, bytes.Repeat([]byte{0x11}, 1024))
		// Let the firehose fill the queue first.
		p.Sleep(50_000)
		start := p.Now()
		dmaErr = p.DMAWrite(va, addr.DevProxy(0, 0), 1024, kernel.DMAOptions{})
		latency = p.Now() - start
	})
	if err := n.Kernel.Run(sim.Forever); err != nil {
		t.Fatal(err)
	}
	if dmaErr != nil {
		t.Fatal(dmaErr)
	}
	// The kernel transfer must have delivered its data.
	if got := buf.Bytes(0, 4); !bytes.Equal(got, []byte{0x11, 0x11, 0x11, 0x11}) {
		t.Fatalf("kernel DMA data missing: % x", got)
	}
	return latency
}

// TestSystemQueueGivesKernelPriority reproduces the Section 7 remark
// that a second queue "with the higher priority queue reserved for the
// system would certainly be useful": with it, a kernel DMA overtakes
// the user backlog; without it, the kernel waits behind whatever the
// user has queued.
func TestSystemQueueGivesKernelPriority(t *testing.T) {
	withPriority := kernelDMALatencyUnderLoad(t, 2)
	withoutPriority := kernelDMALatencyUnderLoad(t, 0)
	if withPriority >= withoutPriority {
		t.Fatalf("system queue did not help: %d cycles with vs %d without",
			withPriority, withoutPriority)
	}
	// The gap should be substantial: at least one queued user page's
	// worth of bus time (~7.5k cycles).
	if withoutPriority-withPriority < 5_000 {
		t.Fatalf("priority advantage only %d cycles", withoutPriority-withPriority)
	}
}
