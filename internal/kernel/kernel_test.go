package kernel_test

import (
	"bytes"
	"errors"
	"testing"

	"shrimp/internal/addr"
	"shrimp/internal/core"
	"shrimp/internal/device"
	"shrimp/internal/kernel"
	"shrimp/internal/machine"
	"shrimp/internal/sim"
)

// newNode builds a standard test node with a 16-page Buffer device.
func newNode(t *testing.T, cfg machine.Config) (*machine.Node, *device.Buffer) {
	t.Helper()
	n := machine.New(0, cfg)
	buf := device.NewBuffer("buf", 16, 0, 0)
	n.AttachDevice(buf, 0)
	t.Cleanup(n.Kernel.Shutdown)
	return n, buf
}

// forceOut applies memory pressure until the page at va has been
// evicted (bounded; reports whether it succeeded). The clock-sweep
// replacement policy picks victims in frame order, so a specific page
// goes out only after the hand passes its frame.
func forceOut(p *kernel.Proc, va addr.VAddr) bool {
	for i := 0; i < 200; i++ {
		pte := p.AddressSpace().Lookup(addr.VPN(va))
		if pte == nil || !pte.Present {
			return true
		}
		a, err := p.Alloc(4096)
		if err != nil {
			return false
		}
		p.Store(a, 1) // touch so fresh pages are referenced
	}
	return false
}

func run(t *testing.T, n *machine.Node) {
	t.Helper()
	if err := n.Kernel.Run(sim.Forever); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestSpawnRunExit(t *testing.T) {
	n, _ := newNode(t, machine.Config{})
	ran := false
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		p.Compute(100)
		ran = true
	})
	run(t, n)
	if !ran {
		t.Fatal("process did not run")
	}
	if n.Clock.Now() < 100 {
		t.Fatalf("clock = %d, want >= 100", n.Clock.Now())
	}
}

func TestAllocLoadStore(t *testing.T) {
	n, _ := newNode(t, machine.Config{})
	var got uint32
	var loadErr error
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		va, err := p.Alloc(8192)
		if err != nil {
			loadErr = err
			return
		}
		if err := p.Store(va+4, 0xCAFEBABE); err != nil {
			loadErr = err
			return
		}
		got, loadErr = p.Load(va + 4)
	})
	run(t, n)
	if loadErr != nil {
		t.Fatal(loadErr)
	}
	if got != 0xCAFEBABE {
		t.Fatalf("Load = %#x", got)
	}
}

func TestAllocZeroFilled(t *testing.T) {
	n, _ := newNode(t, machine.Config{})
	var data []byte
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		va, _ := p.Alloc(4096)
		data, _ = p.ReadBuf(va, 4096)
	})
	run(t, n)
	for _, b := range data {
		if b != 0 {
			t.Fatal("fresh allocation not zero-filled")
		}
	}
}

func TestWildAccessSegfaults(t *testing.T) {
	n, _ := newNode(t, machine.Config{})
	var err error
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		_, err = p.Load(0x0FFF_0000)
	})
	run(t, n)
	var sf *kernel.SegfaultError
	if !errors.As(err, &sf) {
		t.Fatalf("wild load returned %v, want SegfaultError", err)
	}
	if n.Kernel.Stats().Segfaults != 1 {
		t.Fatal("segfault not counted")
	}
}

func TestUDMATwoInstructionSendFromProcess(t *testing.T) {
	n, buf := newNode(t, machine.Config{})
	payload := []byte("full protection, two user-level memory references")
	var st core.Status
	var opErr error
	n.Kernel.Spawn("sender", func(p *kernel.Proc) {
		devVA, err := p.MapDevice(buf, true)
		if err != nil {
			opErr = err
			return
		}
		va, _ := p.Alloc(4096)
		if err := p.WriteBuf(va, payload); err != nil {
			opErr = err
			return
		}
		// The paper's sequence: STORE nbytes to the destination proxy,
		// LOAD status from the source proxy.
		if err := p.Store(devVA+256, uint32(len(payload))); err != nil {
			opErr = err
			return
		}
		v, err := p.Load(addr.VProxy(va))
		if err != nil {
			opErr = err
			return
		}
		st = core.Status(v)
		// Poll for completion by repeating the LOAD.
		for {
			v, _ := p.Load(addr.VProxy(va))
			if !core.Status(v).Match() {
				break
			}
		}
	})
	run(t, n)
	if opErr != nil {
		t.Fatal(opErr)
	}
	if !st.Initiated() {
		t.Fatalf("initiation failed: %v", st)
	}
	if got := buf.Bytes(256, len(payload)); !bytes.Equal(got, payload) {
		t.Fatalf("device got %q", got)
	}
}

func TestUDMADevToMemThroughProxyWrite(t *testing.T) {
	n, buf := newNode(t, machine.Config{})
	payload := []byte("incoming data to any memory location")
	buf.SetBytes(512, payload)
	var got []byte
	var opErr error
	n.Kernel.Spawn("receiver", func(p *kernel.Proc) {
		devVA, _ := p.MapDevice(buf, true)
		va, _ := p.Alloc(4096)
		// STORE to the *memory* proxy names memory as the destination;
		// this requires write permission and fires the I3 protocol.
		if err := p.Store(addr.VProxy(va), uint32(len(payload))); err != nil {
			opErr = err
			return
		}
		if _, err := p.Load(devVA + 512); err != nil {
			opErr = err
			return
		}
		for {
			v, _ := p.Load(devVA + 512)
			if !core.Status(v).Match() {
				break
			}
		}
		got, opErr = p.ReadBuf(va, len(payload))
	})
	run(t, n)
	if opErr != nil {
		t.Fatal(opErr)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("memory got %q, want %q", got, payload)
	}
}

func TestI3ReadOnlyPageCannotBeDestination(t *testing.T) {
	n, buf := newNode(t, machine.Config{})
	var storeErr error
	var loadOK bool
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		devVA, _ := p.MapDevice(buf, true)
		va, _ := p.AllocReadOnly(4096, []byte("read-only source data"))
		// Destination use: STORE to PROXY(va) must segfault.
		storeErr = p.Store(addr.VProxy(va), 64)
		// Source use: still fine.
		if err := p.Store(devVA, 21); err != nil {
			return
		}
		v, err := p.Load(addr.VProxy(va))
		loadOK = err == nil && core.Status(v).Initiated()
	})
	run(t, n)
	var sf *kernel.SegfaultError
	if !errors.As(storeErr, &sf) {
		t.Fatalf("store to read-only proxy returned %v, want segfault", storeErr)
	}
	if !loadOK {
		t.Fatal("read-only page could not be used as a transfer source")
	}
}

func TestI3ProxyWriteMarksRealPageDirty(t *testing.T) {
	n, _ := newNode(t, machine.Config{})
	var dirtyBefore, dirtyAfter bool
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		va, _ := p.Alloc(4096)
		vpn := addr.VPN(va)
		// Start from a clean page, as after a cleaner pass.
		p.AddressSpace().Lookup(vpn).Dirty = false
		dirtyBefore = p.AddressSpace().Lookup(vpn).Dirty
		p.Store(addr.VProxy(va), 128) // destination naming → write fault → upgrade
		dirtyAfter = p.AddressSpace().Lookup(vpn).Dirty
	})
	run(t, n)
	if dirtyBefore || !dirtyAfter {
		t.Fatalf("dirty before=%v after=%v, want false→true", dirtyBefore, dirtyAfter)
	}
	if n.Kernel.Stats().ProxyUpgrades == 0 {
		t.Fatal("no I3 upgrade recorded")
	}
}

func TestI3CleanPageWriteProtectsProxy(t *testing.T) {
	n, _ := newNode(t, machine.Config{})
	var err2 error
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		va, _ := p.Alloc(4096)
		vpn := addr.VPN(va)
		p.Store(addr.VProxy(va), 128) // make proxy writable, page dirty
		if err := n.Kernel.CleanPage(p, vpn); err != nil {
			err2 = err
			return
		}
		if p.AddressSpace().Lookup(vpn).Dirty {
			err2 = errors.New("page still dirty after clean")
			return
		}
		proxyPTE := p.AddressSpace().Lookup(addr.VPN(addr.VProxy(va)))
		if proxyPTE == nil || proxyPTE.Writable {
			err2 = errors.New("proxy page still writable after clean (I3 violated)")
			return
		}
		// Writing through the proxy again must re-dirty the page.
		if err := p.Store(addr.VProxy(va), 64); err != nil {
			err2 = err
			return
		}
		if !p.AddressSpace().Lookup(vpn).Dirty {
			err2 = errors.New("re-upgrade did not mark page dirty")
		}
	})
	run(t, n)
	if err2 != nil {
		t.Fatal(err2)
	}
}

func TestI3CleanRaceKeepsDirtyWhileDMAInFlight(t *testing.T) {
	n, buf := newNode(t, machine.Config{})
	var err2 error
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		devVA, _ := p.MapDevice(buf, true)
		va, _ := p.Alloc(4096)
		vpn := addr.VPN(va)
		// Start a slow dev→mem transfer into the page.
		p.Store(addr.VProxy(va), 4096)
		p.Load(devVA)
		if !n.Kernel.UDMA().PageInUse(p.AddressSpace().Lookup(vpn).PPN) {
			err2 = errors.New("frame not marked in use during transfer")
			return
		}
		// Cleaner runs mid-transfer: the dirty bit must survive.
		if err := n.Kernel.CleanPage(p, vpn); err != nil {
			err2 = err
			return
		}
		if !p.AddressSpace().Lookup(vpn).Dirty {
			err2 = errors.New("clean cleared dirty bit during in-flight DMA (I3 race)")
		}
	})
	run(t, n)
	if err2 != nil {
		t.Fatal(err2)
	}
	if n.Kernel.Stats().CleanRaceKeeps == 0 {
		t.Fatal("race keep not recorded")
	}
}

func TestI2EvictionInvalidatesProxyMapping(t *testing.T) {
	// Small RAM so allocations force eviction.
	n, _ := newNode(t, machine.Config{RAMFrames: 24})
	var err2 error
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		va, _ := p.Alloc(4096)
		p.WriteBuf(va, []byte("victim page"))
		p.Store(addr.VProxy(va), 64)         // create proxy mapping
		p.Store(addr.VProxy(va), ^uint32(0)) // Inval: don't leave a latch
		proxyVPN := addr.VPN(addr.VProxy(va))
		if p.AddressSpace().Lookup(proxyVPN) == nil {
			err2 = errors.New("proxy mapping was not created")
			return
		}
		// Apply pressure until the victim page goes out.
		if !forceOut(p, va) {
			err2 = errors.New("test inconclusive: victim page never evicted")
			return
		}
		if p.AddressSpace().Lookup(proxyVPN) != nil {
			err2 = errors.New("I2 violated: proxy mapping survived eviction of its real page")
			return
		}
		// Touching the page again pages it in; the proxy fault rebuilds
		// the mapping against the *new* frame.
		if _, err := p.Load(va); err != nil {
			err2 = err
			return
		}
		data, err := p.ReadBuf(va, 11)
		if err != nil {
			err2 = err
			return
		}
		if string(data) != "victim page" {
			err2 = errors.New("page contents lost across eviction: " + string(data))
		}
	})
	run(t, n)
	if err2 != nil {
		t.Fatal(err2)
	}
	if n.Kernel.Stats().Evictions == 0 || n.Kernel.Stats().PageIns == 0 {
		t.Fatalf("stats = %+v: expected evictions and page-ins", n.Kernel.Stats())
	}
}

func TestI2ProxyFaultPagesInSwappedPage(t *testing.T) {
	n, buf := newNode(t, machine.Config{RAMFrames: 24})
	var st core.Status
	var err2 error
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		devVA, _ := p.MapDevice(buf, true)
		va, _ := p.Alloc(4096)
		p.WriteBuf(va, []byte("swapped-out source"))
		if !forceOut(p, va) {
			err2 = errors.New("test inconclusive: page never evicted")
			return
		}
		// Case 2 of the proxy fault handler: the LOAD of PROXY(va)
		// pages the real page in, then maps the proxy page.
		p.Store(devVA, 18)
		v, err := p.Load(addr.VProxy(va))
		if err != nil {
			err2 = err
			return
		}
		st = core.Status(v)
		// The paged-in contents must be intact and must reach the
		// device; wait for the transfer to finish.
		if data, _ := p.ReadBuf(va, 18); string(data) != "swapped-out source" {
			err2 = errors.New("page-in corrupted contents: " + string(data))
			return
		}
		for {
			v, _ := p.Load(addr.VProxy(va))
			if !core.Status(v).Match() {
				break
			}
		}
	})
	run(t, n)
	if err2 != nil {
		t.Fatal(err2)
	}
	if !st.Initiated() {
		t.Fatalf("initiation after page-in failed: %v", st)
	}
	r := make([]byte, 18)
	copy(r, buf.Bytes(0, 18))
	if string(r) != "swapped-out source" {
		t.Fatalf("device got %q", r)
	}
}

func TestProxyFaultOnUnmappedPageSegfaults(t *testing.T) {
	n, _ := newNode(t, machine.Config{})
	var err error
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		// Case 3: no real mapping behind the proxy page.
		_, err = p.Load(addr.VAddr(addr.MemProxyBase | 0x0050_0000))
	})
	run(t, n)
	var sf *kernel.SegfaultError
	if !errors.As(err, &sf) {
		t.Fatalf("got %v, want segfault", err)
	}
}

func TestI4EvictionSkipsFramesHeldByUDMA(t *testing.T) {
	// A very slow device keeps the transfer in flight across the whole
	// pressure phase, so the replacement sweep must repeatedly pass over
	// (and refuse) the source frame.
	n := machine.New(0, machine.Config{RAMFrames: 24})
	slow := device.NewBuffer("slow", 16, 0, 60_000_000) // ~1 s device latency
	n.AttachDevice(slow, 0)
	t.Cleanup(n.Kernel.Shutdown)
	var err2 error
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		devVA, _ := p.MapDevice(slow, true)
		src, _ := p.Alloc(4096)
		p.WriteBuf(src, bytes.Repeat([]byte{0xAB}, 4096))
		// Launch a full-page transfer, then apply enough pressure that
		// every frame is considered for eviction while it is in flight.
		p.Store(devVA, 4096)
		v, _ := p.Load(addr.VProxy(src))
		if !core.Status(v).Initiated() {
			err2 = errors.New("initiation failed")
			return
		}
		for i := 0; i < 40; i++ {
			a, err := p.Alloc(4096)
			if err != nil {
				err2 = err
				return
			}
			p.Store(a, 1)
		}
		if !n.Kernel.UDMA().PageInUse(p.AddressSpace().Lookup(addr.VPN(src)).PPN) {
			err2 = errors.New("test inconclusive: transfer finished before pressure")
			return
		}
		// Wait out the transfer without busy-polling.
		for {
			v, _ := p.Load(addr.VProxy(src))
			if !core.Status(v).Match() {
				break
			}
			p.Sleep(5_000_000)
		}
		got := slow.Bytes(0, 4096)
		for _, b := range got {
			if b != 0xAB {
				err2 = errors.New("transferred data corrupted by remap")
				return
			}
		}
	})
	run(t, n)
	if err2 != nil {
		t.Fatal(err2)
	}
	if n.Kernel.Stats().EvictionStallsI4 == 0 {
		t.Fatal("eviction never consulted the I4 guard (frame was never a candidate)")
	}
}

func TestI4DestLoadedLatchClearedByInval(t *testing.T) {
	n, _ := newNode(t, machine.Config{RAMFrames: 24})
	var err2 error
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		dst, _ := p.Alloc(4096)
		// Latch dst as a destination, then leave the sequence hanging.
		if err := p.Store(addr.VProxy(dst), 4096); err != nil {
			err2 = err
			return
		}
		if _, ok := n.Kernel.UDMA().DestLoadedFrame(); !ok {
			err2 = errors.New("latch not occupied")
			return
		}
		// Memory pressure: the kernel may Inval the latch to free the
		// frame rather than stall.
		if _, err := p.Alloc(28 * 4096); err != nil {
			err2 = err
		}
	})
	run(t, n)
	if err2 != nil {
		t.Fatal(err2)
	}
}

func TestI1ContextSwitchInvalsPartialSequence(t *testing.T) {
	// Quantum so small that the victim is preempted between its STORE
	// and LOAD; the interloper must not be able to hijack the latched
	// destination, and the victim's LOAD must return a retryable status.
	n, buf := newNode(t, machine.Config{
		Kernel: kernel.Config{Quantum: 70}, // one uncached ref each slice
	})
	payload := []byte("must not leak to wrong destination!")
	var victimStatus core.Status
	var victimErr error
	var retried bool

	n.Kernel.Spawn("victim", func(p *kernel.Proc) {
		devVA, _ := p.MapDevice(buf, true)
		va, _ := p.Alloc(4096)
		p.WriteBuf(va, payload)
		// First attempt: STORE, get preempted, LOAD.
		p.Store(devVA+0, uint32(len(payload)))
		v, err := p.Load(addr.VProxy(va))
		if err != nil {
			victimErr = err
			return
		}
		victimStatus = core.Status(v)
		// The library idiom: retry the whole sequence until it sticks.
		for !core.Status(v).Initiated() {
			retried = true
			if core.Status(v).Failed() {
				victimErr = errors.New("hard failure: " + core.Status(v).String())
				return
			}
			p.Store(devVA+0, uint32(len(payload)))
			v, _ = p.Load(addr.VProxy(va))
		}
		for {
			s, _ := p.Load(addr.VProxy(va))
			if !core.Status(s).Match() {
				break
			}
		}
	})
	n.Kernel.Spawn("interloper", func(p *kernel.Proc) {
		// Burn CPU so context switches happen around the victim's
		// two-instruction sequence.
		for i := 0; i < 300; i++ {
			p.Compute(10)
		}
	})
	run(t, n)
	if victimErr != nil {
		t.Fatal(victimErr)
	}
	if n.Kernel.Stats().Invals == 0 {
		t.Fatal("no context-switch Invals fired")
	}
	if !victimStatus.Initiated() && !retried {
		t.Fatal("victim neither succeeded first try nor retried")
	}
	if got := buf.Bytes(0, len(payload)); !bytes.Equal(got, payload) {
		t.Fatalf("payload corrupted or missing: %q", got)
	}
}

func TestI1InterleavedProcessesCannotMixHalves(t *testing.T) {
	// Process A STOREs a destination, is preempted; process B STOREs
	// its own destination and LOADs. B's transfer must use B's
	// destination, and A's LOAD must not initiate with B's state.
	// (The quantum must comfortably exceed the cost of the two-
	// instruction sequence, as any real scheduler's does — a quantum
	// close to one I/O reference livelocks both senders, since every
	// switch Invals the other's half-finished sequence.)
	n, buf := newNode(t, machine.Config{
		Kernel: kernel.Config{Quantum: 500},
	})
	aPayload := bytes.Repeat([]byte{0xAA}, 64)
	bPayload := bytes.Repeat([]byte{0xBB}, 64)
	var aDone, bDone bool
	sendAll := func(p *kernel.Proc, devOff uint32, payload []byte, done *bool) {
		devVA, _ := p.MapDevice(buf, true)
		va, _ := p.Alloc(4096)
		p.WriteBuf(va, payload)
		for try := 0; ; try++ {
			if try > 10_000 {
				return // fail the test via !done rather than hanging
			}
			p.Store(devVA+addr.VAddr(devOff), uint32(len(payload)))
			v, err := p.Load(addr.VProxy(va))
			if err != nil {
				return
			}
			st := core.Status(v)
			if st.Initiated() {
				break
			}
			if st.Failed() {
				return
			}
		}
		for {
			v, _ := p.Load(addr.VProxy(va))
			if !core.Status(v).Match() {
				break
			}
		}
		*done = true
	}
	n.Kernel.Spawn("A", func(p *kernel.Proc) { sendAll(p, 0, aPayload, &aDone) })
	n.Kernel.Spawn("B", func(p *kernel.Proc) { sendAll(p, 2048, bPayload, &bDone) })
	run(t, n)
	if !aDone || !bDone {
		t.Fatalf("aDone=%v bDone=%v", aDone, bDone)
	}
	if got := buf.Bytes(0, 64); !bytes.Equal(got, aPayload) {
		t.Fatalf("A's region corrupted: % x", got[:8])
	}
	if got := buf.Bytes(2048, 64); !bytes.Equal(got, bPayload) {
		t.Fatalf("B's region corrupted: % x", got[:8])
	}
}

func TestMapDeviceGrantsAndProtection(t *testing.T) {
	n, buf := newNode(t, machine.Config{})
	var ungranted, roWrite error
	n.Kernel.Spawn("nogrant", func(p *kernel.Proc) {
		// Touching device proxy space without MapDevice → segfault.
		_, ungranted = p.Load(addr.VAddr(addr.DevProxy(0, 0)))
	})
	n.Kernel.Spawn("rogrант", func(p *kernel.Proc) {
		devVA, _ := p.MapDevice(buf, false) // read-only grant
		roWrite = p.Store(devVA, 64)
	})
	run(t, n)
	var sf *kernel.SegfaultError
	if !errors.As(ungranted, &sf) {
		t.Fatalf("ungranted access: %v, want segfault", ungranted)
	}
	if !errors.As(roWrite, &sf) {
		t.Fatalf("read-only grant write: %v, want segfault", roWrite)
	}
}

func TestTraditionalDMAWrite(t *testing.T) {
	n, buf := newNode(t, machine.Config{})
	payload := bytes.Repeat([]byte("kernel-DMA "), 400) // ~4.4 KB, 2 pages
	var err2 error
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		va, _ := p.Alloc(len(payload))
		p.WriteBuf(va, payload)
		err2 = p.DMAWrite(va, addr.DevProxy(0, 0), len(payload), kernel.DMAOptions{})
	})
	run(t, n)
	if err2 != nil {
		t.Fatal(err2)
	}
	if got := buf.Bytes(0, len(payload)); !bytes.Equal(got, payload) {
		t.Fatal("device contents wrong after kernel DMA")
	}
	st := n.Kernel.Stats()
	if st.Pins != 2 || st.Unpins != 2 {
		t.Fatalf("pins=%d unpins=%d, want 2,2", st.Pins, st.Unpins)
	}
	if st.Syscalls == 0 {
		t.Fatal("no syscall recorded")
	}
}

func TestTraditionalDMARead(t *testing.T) {
	n, buf := newNode(t, machine.Config{})
	payload := []byte("from the device into user memory")
	buf.SetBytes(100, payload)
	var got []byte
	var err2 error
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		va, _ := p.Alloc(4096)
		if err := p.DMARead(va, addr.DevProxy(0, 100), len(payload), kernel.DMAOptions{}); err != nil {
			err2 = err
			return
		}
		got, err2 = p.ReadBuf(va, len(payload))
	})
	run(t, n)
	if err2 != nil {
		t.Fatal(err2)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("got %q", got)
	}
}

func TestTraditionalDMABounce(t *testing.T) {
	n, buf := newNode(t, machine.Config{
		Kernel: kernel.Config{BounceFrames: 4},
	})
	payload := bytes.Repeat([]byte{7}, 3*4096)
	var err2 error
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		va, _ := p.Alloc(len(payload))
		p.WriteBuf(va, payload)
		err2 = p.DMAWrite(va, addr.DevProxy(0, 0), len(payload), kernel.DMAOptions{Bounce: true})
	})
	run(t, n)
	if err2 != nil {
		t.Fatal(err2)
	}
	if got := buf.Bytes(0, len(payload)); !bytes.Equal(got, payload) {
		t.Fatal("device contents wrong after bounce DMA")
	}
	if n.Kernel.Stats().Pins != 0 {
		t.Fatal("bounce path pinned user pages")
	}
}

func TestBounceWithoutBuffersFails(t *testing.T) {
	n, _ := newNode(t, machine.Config{})
	var err2 error
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		va, _ := p.Alloc(4096)
		err2 = p.DMAWrite(va, addr.DevProxy(0, 0), 64, kernel.DMAOptions{Bounce: true})
	})
	run(t, n)
	if err2 == nil {
		t.Fatal("bounce DMA succeeded without bounce buffers")
	}
}

func TestUDMAFasterThanTraditional(t *testing.T) {
	// The headline claim: initiating via UDMA is dramatically cheaper
	// than the kernel path for the same small transfer.
	elapsed := func(useUDMA bool) sim.Cycles {
		n, buf := newNode(t, machine.Config{})
		var start, end sim.Cycles
		n.Kernel.Spawn("p", func(p *kernel.Proc) {
			devVA, _ := p.MapDevice(buf, true)
			va, _ := p.Alloc(4096)
			p.WriteBuf(va, bytes.Repeat([]byte{1}, 1024))
			// Warm the proxy mappings so we measure steady state.
			p.Store(devVA, 4)
			p.Load(addr.VProxy(va))
			for {
				v, _ := p.Load(addr.VProxy(va))
				if !core.Status(v).Match() && !core.Status(v).Transferring() {
					break
				}
			}
			start = p.Now()
			if useUDMA {
				p.Store(devVA+1024, 1024)
				p.Load(addr.VProxy(va))
				for {
					v, _ := p.Load(addr.VProxy(va))
					if !core.Status(v).Match() {
						break
					}
				}
			} else {
				p.DMAWrite(va, addr.DevProxy(0, 2048), 1024, kernel.DMAOptions{})
			}
			end = p.Now()
		})
		run(t, n)
		return end - start
	}
	udma, trad := elapsed(true), elapsed(false)
	if udma >= trad {
		t.Fatalf("UDMA (%d cycles) not faster than traditional (%d cycles)", udma, trad)
	}
}

func TestPreemptionInterleavesProcesses(t *testing.T) {
	n, _ := newNode(t, machine.Config{Kernel: kernel.Config{Quantum: 50}})
	var order []string
	for _, name := range []string{"a", "b"} {
		name := name
		n.Kernel.Spawn(name, func(p *kernel.Proc) {
			for i := 0; i < 5; i++ {
				p.Compute(40)
				order = append(order, name)
			}
		})
	}
	run(t, n)
	if len(order) != 10 {
		t.Fatalf("order = %v", order)
	}
	// With a 50-cycle quantum and 40-cycle steps, the two processes
	// must interleave rather than run to completion back-to-back.
	switches := 0
	for i := 1; i < len(order); i++ {
		if order[i] != order[i-1] {
			switches++
		}
	}
	if switches < 3 {
		t.Fatalf("processes barely interleaved: %v", order)
	}
	if n.Kernel.Stats().ContextSwitches == 0 {
		t.Fatal("no context switches recorded")
	}
}

func TestSleepWakes(t *testing.T) {
	n, _ := newNode(t, machine.Config{})
	var woke sim.Cycles
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		p.Sleep(5000)
		woke = p.Now()
	})
	run(t, n)
	if woke < 5000 {
		t.Fatalf("woke at %d, want >= 5000", woke)
	}
}

func TestPinUserPageSurvivesPressure(t *testing.T) {
	n, _ := newNode(t, machine.Config{RAMFrames: 24})
	var err2 error
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		va, _ := p.Alloc(4096)
		p.WriteBuf(va, []byte("pinned receive buffer"))
		pfn, err := n.Kernel.PinUserPage(p, addr.VPN(va))
		if err != nil {
			err2 = err
			return
		}
		if _, err := p.Alloc(28 * 4096); err != nil {
			err2 = err
			return
		}
		pte := p.AddressSpace().Lookup(addr.VPN(va))
		if !pte.Present || pte.PPN != pfn {
			err2 = errors.New("pinned page was evicted or moved")
			return
		}
		n.Kernel.UnpinUserPage(pfn)
	})
	run(t, n)
	if err2 != nil {
		t.Fatal(err2)
	}
}

func TestDeadlockDetected(t *testing.T) {
	n, _ := newNode(t, machine.Config{})
	n.Kernel.Spawn("stuck", func(p *kernel.Proc) {
		p.Sleep(sim.Forever) // never wakes within any horizon
	})
	// Sleep schedules an event at Forever; run with a finite limit.
	if err := n.Kernel.Run(1_000_000); err != nil {
		t.Fatalf("Run returned %v, want nil at time limit", err)
	}
}

func TestShutdownKillsBlockedProcesses(t *testing.T) {
	n, _ := newNode(t, machine.Config{})
	n.Kernel.Spawn("loop", func(p *kernel.Proc) {
		for {
			p.Compute(1000)
		}
	})
	n.Kernel.RunFor(10_000)
	n.Kernel.Shutdown() // must not hang; Cleanup will call it again
}

func TestNoUDMAMachine(t *testing.T) {
	n := machine.New(0, machine.Config{NoUDMA: true})
	buf := device.NewBuffer("buf", 4, 0, 0)
	n.AttachDevice(buf, 0)
	t.Cleanup(n.Kernel.Shutdown)
	payload := []byte("baseline still works")
	var err2 error
	var proxyVal uint32
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		va, _ := p.Alloc(4096)
		p.WriteBuf(va, payload)
		if err := p.DMAWrite(va, addr.DevProxy(0, 0), len(payload), kernel.DMAOptions{}); err != nil {
			err2 = err
			return
		}
		// Proxy loads hit the open bus.
		proxyVal, _ = p.Load(addr.VProxy(va))
	})
	if err := n.Kernel.Run(sim.Forever); err != nil {
		t.Fatal(err)
	}
	if err2 != nil {
		t.Fatal(err2)
	}
	if !bytes.Equal(buf.Bytes(0, len(payload)), payload) {
		t.Fatal("kernel DMA failed on no-UDMA machine")
	}
	if proxyVal != ^uint32(0) {
		t.Fatalf("proxy load on no-UDMA machine = %#x, want open bus", proxyVal)
	}
}

func TestKernelStatsAccumulate(t *testing.T) {
	n, buf := newNode(t, machine.Config{})
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		devVA, _ := p.MapDevice(buf, true)
		va, _ := p.Alloc(4096)
		p.Store(devVA, 64)
		p.Load(addr.VProxy(va))
	})
	run(t, n)
	st := n.Kernel.Stats()
	if st.PageFaults == 0 || st.ProxyFaults == 0 || st.Syscalls == 0 {
		t.Fatalf("stats = %+v", st)
	}
}
