package kernel_test

import (
	"testing"

	"shrimp/internal/addr"
	"shrimp/internal/core"
	"shrimp/internal/device"
	"shrimp/internal/kernel"
	"shrimp/internal/machine"
	"shrimp/internal/sim"
	"shrimp/internal/udmalib"
)

// TestKillBlockedProcess kills a process parked in a long sleep: the
// kill must make it runnable, unwind it promptly, and release every
// frame it owned back to the free list. A second Kill of the corpse is
// a no-op.
func TestKillBlockedProcess(t *testing.T) {
	n, _ := newNode(t, machine.Config{})
	baseline := n.Kernel.FreeFrames()

	reached := false
	p := n.Kernel.Spawn("sleeper", func(p *kernel.Proc) {
		va, err := p.Alloc(3 * addr.PageSize)
		if err != nil {
			t.Errorf("alloc: %v", err)
			return
		}
		if err := p.WriteBuf(va, make([]byte, 3*addr.PageSize)); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		p.Sleep(1_000_000_000)
		reached = true // the kill must prevent this
	})

	// Let it allocate and block.
	if err := n.Kernel.Run(n.Clock.Now() + 200_000); err != nil {
		t.Fatal(err)
	}
	if p.Exited() || !p.Blocked() {
		t.Fatalf("sleeper not blocked before kill (exited=%v)", p.Exited())
	}
	if n.Kernel.FreeFrames() >= baseline {
		t.Fatal("sleeper owns no frames; the release check would be vacuous")
	}

	n.Kernel.Kill(p)
	if err := n.Kernel.Run(sim.Forever); err != nil {
		t.Fatal(err)
	}
	if !p.Exited() {
		t.Fatal("killed process did not exit")
	}
	if reached {
		t.Fatal("killed process ran past its sleep")
	}
	if got := n.Kernel.FreeFrames(); got != baseline {
		t.Fatalf("free frames after kill: %d, want the %d of before spawn", got, baseline)
	}
	for _, f := range n.Kernel.FrameStates() {
		if f.Used && f.OwnerPID == p.PID() {
			t.Fatalf("dead pid still owns a frame: %+v", f)
		}
	}
	n.Kernel.Kill(p) // corpse: must be a no-op, not a panic
}

// TestKillDefersUDMAHeldFrames kills a process while its queued UDMA
// transfer is still in flight on a slow device. Reap must not free the
// source frame out from under the hardware (invariant I4): the frame is
// parked — counted in ReapDeferrals, still Used — until the transfer
// completes, and only then returns to the free list.
func TestKillDefersUDMAHeldFrames(t *testing.T) {
	const slow = 200_000 // device latency keeps the transfer in flight
	n := machine.New(0, machine.Config{
		UDMA: core.Config{QueueDepth: 2},
	})
	buf := device.NewBuffer("slowbuf", 4, 0, slow)
	n.AttachDevice(buf, 0)
	t.Cleanup(n.Kernel.Shutdown)
	baseline := n.Kernel.FreeFrames()

	p := n.Kernel.Spawn("sender", func(p *kernel.Proc) {
		d, err := udmalib.Open(p, buf, true)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		va, err := p.Alloc(addr.PageSize)
		if err != nil {
			t.Errorf("alloc: %v", err)
			return
		}
		if err := p.WriteBuf(va, make([]byte, addr.PageSize)); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		// Synchronous: the process polls for completion until killed.
		if err := d.QueuedSend(va, 0, addr.PageSize); err != nil {
			// The kill may surface as an aborted wait; both are fine.
			t.Logf("queued send ended with: %v", err)
		}
	})

	// Run until the transfer is initiated but nowhere near complete.
	for i := 0; i < 200 && n.UDMA.Stats().Initiations == 0; i++ {
		if err := n.Kernel.Run(n.Clock.Now() + 2_000); err != nil {
			t.Fatal(err)
		}
	}
	if n.UDMA.Stats().Initiations == 0 {
		t.Fatal("transfer never initiated")
	}

	n.Kernel.Kill(p)
	if err := n.Kernel.Run(sim.Forever); err != nil {
		t.Fatal(err)
	}
	if !p.Exited() {
		t.Fatal("killed process did not exit")
	}

	// The transfer is still in flight: its source frame must have been
	// parked, not freed.
	if got := n.Kernel.Stats().ReapDeferrals; got == 0 {
		t.Fatal("no reap deferral recorded for the in-flight frame")
	}
	parked := 0
	for _, f := range n.Kernel.FrameStates() {
		if f.Parked {
			if !f.Used {
				t.Fatalf("parked frame not marked used: %+v", f)
			}
			parked++
		}
	}
	if parked == 0 {
		t.Fatal("no frame parked while the transfer holds it")
	}
	if n.Kernel.FreeFrames() == baseline {
		t.Fatal("every frame freed while the hardware still references one")
	}

	// Completion fires the engine interrupt; the drain hands the parked
	// frames back.
	n.Clock.RunUntilIdle()
	if got := n.Kernel.FreeFrames(); got != baseline {
		t.Fatalf("free frames after drain: %d, want %d", got, baseline)
	}
	for _, f := range n.Kernel.FrameStates() {
		if f.Parked {
			t.Fatalf("frame still parked after completion: %+v", f)
		}
	}
}
