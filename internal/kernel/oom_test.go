package kernel_test

import (
	"testing"

	"shrimp/internal/addr"
	"shrimp/internal/kernel"
	"shrimp/internal/machine"
)

// TestAllocFailsGracefullyWhenAllFramesPinned exercises the kernel's
// out-of-memory path: with every frame pinned, Alloc must return an
// error (not panic, not loop forever).
func TestAllocFailsGracefullyWhenAllFramesPinned(t *testing.T) {
	n, _ := newNode(t, machine.Config{RAMFrames: 12})
	var allocErr, recovered error
	var pinnedCount int
	n.Kernel.Spawn("hog", func(p *kernel.Proc) {
		// Pin everything we can get.
		var pinned []uint32
		for {
			va, err := p.Alloc(addr.PageSize)
			if err != nil {
				allocErr = err
				break
			}
			pfn, err := n.Kernel.PinUserPage(p, addr.VPN(va))
			if err != nil {
				allocErr = err
				break
			}
			pinned = append(pinned, pfn)
		}
		pinnedCount = len(pinned)
		// The machine recovers once pins are dropped.
		for _, pfn := range pinned {
			n.Kernel.UnpinUserPage(pfn)
		}
		_, recovered = p.Alloc(addr.PageSize)
	})
	run(t, n)
	if allocErr == nil {
		t.Fatal("exhaustion never surfaced an error")
	}
	if pinnedCount == 0 || pinnedCount > 12 {
		t.Fatalf("pinned %d of 12 frames before failing", pinnedCount)
	}
	if recovered != nil {
		t.Fatalf("Alloc after unpinning failed: %v", recovered)
	}
}

// TestHeapExhaustionIsAnError drives the heap cursor toward the end of
// the 1 GB memory region and checks the failure is a clean error.
func TestHeapExhaustionIsAnError(t *testing.T) {
	n, _ := newNode(t, machine.Config{RAMFrames: 24})
	var err error
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		// Jump the heap cursor near the region end by allocating one
		// page, then asking for more than the remaining region.
		va, e := p.Alloc(addr.PageSize)
		if e != nil {
			err = e
			return
		}
		_ = va
		remainingPages := int(addr.RegionMaxPage) // far more than the region has left
		_, err = p.Alloc(remainingPages * addr.PageSize)
	})
	run(t, n)
	if err == nil {
		t.Fatal("allocating beyond the memory region succeeded")
	}
}
