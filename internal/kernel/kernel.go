// Package kernel implements the simulated node's operating system: a
// round-robin scheduler over coroutine processes, demand-paged virtual
// memory with a backing store, the proxy-mapping support the UDMA
// mechanism requires (paper Section 6, invariants I1–I4), and the
// traditional kernel-initiated DMA syscall path that serves as the
// paper's baseline (Section 2).
//
// The four invariants, where they live:
//
//	I1 (atomicity)          — switchTo fires Controller.Inval on every
//	                          context switch.
//	I2 (mapping consistency)— handleMemProxyFault creates proxy PTEs on
//	                          demand with the 3-case handler; evictFrame
//	                          invalidates the proxy PTE whenever the
//	                          real mapping changes.
//	I3 (content consistency)— proxy PTEs are writable only while the
//	                          real page is dirty; the proxy write-
//	                          protection fault marks the real page dirty
//	                          and upgrades; CleanPage write-protects the
//	                          proxy page and re-checks in-flight DMA.
//	I4 (register consistency)— evictFrame refuses victims whose frame is
//	                          in the engine registers or the UDMA queue
//	                          (Controller.PageInUse), optionally
//	                          Inval-ing a DestLoaded latch.
package kernel

import (
	"errors"
	"fmt"

	"shrimp/internal/addr"
	"shrimp/internal/bus"
	"shrimp/internal/core"
	"shrimp/internal/device"
	"shrimp/internal/dma"
	"shrimp/internal/mem"
	"shrimp/internal/mmu"
	"shrimp/internal/sim"
	"shrimp/internal/telemetry"
	"shrimp/internal/trace"
)

// Config tunes the kernel.
type Config struct {
	// Quantum is the scheduling time slice in cycles. Zero disables
	// preemption (processes run until they block or exit).
	Quantum sim.Cycles
	// BounceFrames is the number of pre-pinned kernel bounce-buffer
	// frames reserved for the copying traditional-DMA variant. Zero
	// disables that path.
	BounceFrames int
}

// Stats counts kernel events for the experiments.
type Stats struct {
	ContextSwitches  uint64
	Invals           uint64 // I1 Invals fired by context switches
	PageFaults       uint64
	ProxyFaults      uint64 // faults resolved by proxy-mapping handlers
	ProxyUpgrades    uint64 // I3 write-enable upgrades
	PageIns          uint64
	PageOuts         uint64
	Evictions        uint64
	EvictionStallsI4 uint64 // victims skipped because UDMA held the frame
	Pins             uint64
	Unpins           uint64
	Syscalls         uint64
	Segfaults        uint64
	CleanedPages     uint64
	CleanRaceKeeps   uint64 // I3: dirty kept because DMA was in flight
	DMAFailures      uint64 // engine completions that carried an error
	MachineChecks    uint64 // MachineCheck invocations
	ReapDeferrals    uint64 // frames parked at reap because UDMA held them
}

// Kernel is one node's operating system instance.
type Kernel struct {
	clock  *sim.Clock
	costs  *sim.CostModel
	ram    *mem.Physical
	swap   *mem.BackingStore
	mmu    *mmu.MMU
	iobus  *bus.Bus
	engine *dma.Engine
	udma   *core.Controller // nil on a traditional-DMA-only machine
	devmap *device.Map

	cfg   Config
	stats Stats

	procs   []*Proc
	nextPID int
	current *Proc
	rrIndex int

	frames    []frameInfo
	freeList  []uint32
	clockHand int

	bounceBase  uint32 // first bounce frame; bounce frames are contiguous
	bounceCount int

	// engineWaiters are processes blocked until the next DMA engine
	// completion (the traditional-DMA syscall path).
	engineWaiters []*Proc
	// engineNotify is a one-shot slot the traditional-DMA path arms
	// after Start: the next completion's error is delivered through it.
	// Exactly one transfer is in flight at a time, so the completion
	// that fires while the slot is armed is that transfer's.
	engineNotify func(err error)
	// abortEpoch increments on every MachineCheck, letting a process
	// whose in-flight transfer was aborted (no completion will fire)
	// observe the termination instead of sleeping forever.
	abortEpoch uint64

	// runLimit is the current Run deadline; charge yields past it so
	// non-blocking processes cannot wedge the scheduler.
	runLimit sim.Cycles

	// parkedFrames are frames whose owner exited while the UDMA
	// hardware still referenced them (I4 applies to reap exactly as it
	// does to eviction); they drain when the hardware lets go.
	parkedFrames []uint32

	hooks TestHooks

	tracer *trace.Tracer // nil = tracing off
	m      kernMetrics
}

// kernMetrics holds the kernel's telemetry instruments (nil no-ops
// until SetMetrics attaches a live scope).
type kernMetrics struct {
	ctxSwitches   *telemetry.Counter
	invals        *telemetry.Counter
	pageFaults    *telemetry.Counter
	proxyFaults   *telemetry.Counter
	pins          *telemetry.Counter
	unpins        *telemetry.Counter
	evictions     *telemetry.Counter
	pageIns       *telemetry.Counter
	machineChecks *telemetry.Counter
}

// SetMetrics attaches telemetry instruments (nil scope disables them).
func (k *Kernel) SetMetrics(s *telemetry.Scope) {
	k.m = kernMetrics{
		ctxSwitches:   s.Counter("kernel_context_switches"),
		invals:        s.Counter("kernel_invals"),
		pageFaults:    s.Counter("kernel_page_faults"),
		proxyFaults:   s.Counter("kernel_proxy_faults"),
		pins:          s.Counter("kernel_pins"),
		unpins:        s.Counter("kernel_unpins"),
		evictions:     s.Counter("kernel_evictions"),
		pageIns:       s.Counter("kernel_page_ins"),
		machineChecks: s.Counter("kernel_machine_checks"),
	}
}

type frameInfo struct {
	owner  *Proc
	vpn    uint32
	pinned int
	kernel bool // kernel-owned (bounce buffers); never evicted
	used   bool
	parked bool // owner exited while UDMA referenced the frame
}

// ErrDeadlock is returned by Run when processes are blocked but no
// future event can wake them.
var ErrDeadlock = errors.New("kernel: all processes blocked with no pending events")

// New assembles a kernel. udma may be nil for a machine without the
// UDMA extension (the pure-baseline configuration of experiment E3).
func New(clock *sim.Clock, costs *sim.CostModel, ram *mem.Physical, swap *mem.BackingStore,
	m *mmu.MMU, iobus *bus.Bus, engine *dma.Engine, udma *core.Controller,
	devmap *device.Map, cfg Config) *Kernel {
	if clock == nil || costs == nil || ram == nil || swap == nil || m == nil ||
		iobus == nil || engine == nil || devmap == nil {
		panic("kernel: New requires non-nil dependencies (udma may be nil)")
	}
	if cfg.BounceFrames < 0 || cfg.BounceFrames >= ram.Frames() {
		panic(fmt.Sprintf("kernel: BounceFrames %d out of range", cfg.BounceFrames))
	}
	k := &Kernel{
		clock: clock, costs: costs, ram: ram, swap: swap, mmu: m,
		iobus: iobus, engine: engine, udma: udma, devmap: devmap, cfg: cfg,
		frames:   make([]frameInfo, ram.Frames()),
		runLimit: sim.Forever,
	}
	// Burn swap slot 0 so PTE.SwapSlot==0 can mean "no slot assigned".
	k.swap.Alloc()

	// Reserve bounce frames at the top of RAM: contiguous, pinned,
	// kernel-owned.
	k.bounceCount = cfg.BounceFrames
	k.bounceBase = uint32(ram.Frames() - cfg.BounceFrames)
	for i := 0; i < cfg.BounceFrames; i++ {
		k.frames[k.bounceBase+uint32(i)] = frameInfo{kernel: true, used: true}
	}
	for pfn := uint32(0); pfn < k.bounceBase; pfn++ {
		k.freeList = append(k.freeList, pfn)
	}

	// Wake traditional-DMA waiters on every engine completion; count
	// failed completions so the experiments can see the error rate the
	// kernel observed on its interrupt line.
	engine.OnComplete(func(err error) {
		if err != nil {
			k.stats.DMAFailures++
		}
		k.drainParked()
		if fn := k.engineNotify; fn != nil {
			k.engineNotify = nil
			fn(err)
		}
		waiters := k.engineWaiters
		k.engineWaiters = nil
		for _, p := range waiters {
			k.wake(p)
		}
	})
	return k
}

// MachineCheck is the kernel's response to a memory-system error the
// DMA hardware cannot handle transparently — exactly the situation the
// paper's termination discussion anticipates. It charges the interrupt
// cost, invokes the controller's Terminate (aborting the in-flight
// transfer, discarding every queued request, and failing outstanding
// system tickets with core.ErrTerminated), and wakes any process
// blocked on the engine so it observes its failed ticket instead of
// sleeping forever. It returns how many transfers were discarded.
func (k *Kernel) MachineCheck(reason error) int {
	k.stats.MachineChecks++
	k.m.machineChecks.Inc()
	msg := ""
	if reason != nil {
		msg = reason.Error()
	}
	k.tracer.Record(trace.EvMachineCheck, 0, 0, msg)
	k.clock.Advance(k.costs.InterruptEntry)
	n := 0
	if k.udma != nil {
		n = k.udma.Terminate()
	} else if k.engine.Busy() {
		// A machine without the UDMA extension still aborts the raw
		// engine transfer.
		k.engine.Abort()
		n = 1
	}
	// Terminate dropped the controller's references; any frames parked
	// at reap behind those references can go now.
	k.drainParked()
	// The aborted transfer's completion will never fire: bump the epoch
	// so its waiter returns ErrTerminated, and disarm the notify slot so
	// an unrelated later completion cannot be misattributed.
	k.abortEpoch++
	k.engineNotify = nil
	waiters := k.engineWaiters
	k.engineWaiters = nil
	for _, p := range waiters {
		k.wake(p)
	}
	return n
}

// SetTracer attaches an event tracer (nil disables tracing).
func (k *Kernel) SetTracer(t *trace.Tracer) { k.tracer = t }

// Clock exposes the node clock (read-mostly; tests and experiments).
func (k *Kernel) Clock() *sim.Clock { return k.clock }

// Costs exposes the cost model.
func (k *Kernel) Costs() *sim.CostModel { return k.costs }

// Stats returns a copy of the kernel counters.
func (k *Kernel) Stats() Stats { return k.stats }

// UDMA returns the node's UDMA controller, or nil.
func (k *Kernel) UDMA() *core.Controller { return k.udma }

// Engine returns the node's DMA engine.
func (k *Kernel) Engine() *dma.Engine { return k.engine }

// FreeFrames returns the number of unallocated frames.
func (k *Kernel) FreeFrames() int { return len(k.freeList) }

// Spawn creates a process running fn and adds it to the run queue. The
// function receives its Proc, whose Load/Store/syscall methods are the
// process's instruction stream.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	k.nextPID++
	p := &Proc{
		pid:    k.nextPID,
		name:   name,
		kernel: k,
		as:     mmu.NewAddressSpace(k.nextPID),
		state:  procReady,
		resume: make(chan resumeMsg),
		yield:  make(chan yieldReason),
		// User heap starts above the first page, well inside the real
		// memory region.
		heapNext: 0x0001_0000 >> addr.PageShift,
		fn:       fn,
	}
	go p.main()
	k.procs = append(k.procs, p)
	return p
}

// Run drives the machine until every process has exited, the simulated
// clock passes limit, or a deadlock is detected. Pass sim.Forever for
// no time limit.
func (k *Kernel) Run(limit sim.Cycles) error {
	k.runLimit = limit
	for {
		if k.clock.Now() > limit {
			return nil
		}
		p := k.nextReady()
		if p == nil {
			if k.allExited() {
				return nil
			}
			// Everyone is blocked: let simulated time move to the next
			// hardware event (DMA completion, packet arrival, timer).
			at, ok := k.clock.NextEventAt()
			if !ok {
				return ErrDeadlock
			}
			if at > limit {
				return nil
			}
			k.clock.AdvanceTo(at)
			continue
		}
		k.switchTo(p)
		reason := p.runSlice()
		switch reason {
		case yieldExit:
			k.reap(p)
		case yieldBlock, yieldPreempt:
			// State already recorded by the proc.
		}
	}
}

// RunFor is Run with a relative limit.
func (k *Kernel) RunFor(d sim.Cycles) error {
	return k.Run(k.clock.Now() + d)
}

// Shutdown kills every live process (for tests and harness cleanup so
// no goroutines outlive the simulation).
func (k *Kernel) Shutdown() {
	for _, p := range k.procs {
		if p.state == procExited {
			continue
		}
		p.killed = true
		if p.state == procBlocked {
			p.state = procReady
		}
	}
	// Drive remaining processes to their kill points.
	for {
		p := k.nextReady()
		if p == nil {
			break
		}
		k.current = p
		if p.runSlice() == yieldExit {
			k.reap(p)
		}
	}
}

// AllExited reports whether every spawned process has exited.
func (k *Kernel) AllExited() bool { return k.allExited() }

func (k *Kernel) allExited() bool {
	for _, p := range k.procs {
		if p.state != procExited {
			return false
		}
	}
	return true
}

// nextReady picks the next runnable process round-robin.
func (k *Kernel) nextReady() *Proc {
	n := len(k.procs)
	for i := 0; i < n; i++ {
		p := k.procs[(k.rrIndex+i)%n]
		if p.state == procReady {
			k.rrIndex = (k.rrIndex + i + 1) % n
			return p
		}
	}
	return nil
}

// switchTo performs the context switch to p, charging the switch cost
// and firing the UDMA Inval that maintains invariant I1. Resuming the
// same process (it was merely preempted with nobody else runnable) is
// free and fires no Inval — there was no context switch.
func (k *Kernel) switchTo(p *Proc) {
	if k.current == p {
		p.quantum = k.cfg.Quantum
		return
	}
	k.stats.ContextSwitches++
	k.m.ctxSwitches.Inc()
	k.tracer.Record(trace.EvContextSwitch, uint64(p.pid), 0, p.name)
	k.clock.Advance(k.costs.ContextSwitch)
	if k.current != nil {
		// Automatic update: drain the outgoing process's combining
		// buffers so its tail writes do not linger in the board.
		k.current.flushAutoUpdates()
	}
	if k.udma != nil && !k.hooks.SkipI1Inval {
		// I1: "the operating system must invalidate any partially
		// initiated UDMA transfer on every context switch ... with a
		// single STORE instruction."
		k.udma.Inval()
		k.stats.Invals++
		k.m.invals.Inc()
	}
	k.current = p
	p.quantum = k.cfg.Quantum
}

func (k *Kernel) reap(p *Proc) {
	// Tear down automatic-update exports: flush the boards and drop
	// the pins so the frames below can be released.
	for i := range p.autoRanges {
		p.autoRanges[i].sink.FlushAutoUpdate()
		for _, pfn := range p.autoRanges[i].pfns {
			k.unpinFrame(pfn)
		}
	}
	p.autoRanges = nil
	// Release every frame and swap slot the process holds. A frame the
	// UDMA hardware still references — a queued request from this
	// process, or an in-flight transfer — must not return to the free
	// list yet (I4 applies to reap exactly as to eviction): it is
	// parked and drained when the hardware completes or terminates.
	p.as.Walk(func(vpn uint32, e *mmu.PTE) bool {
		if e.Present && addr.RegionOf(addr.PAddr(e.PPN<<addr.PageShift)) == addr.RegionMemory {
			if k.frameBusyForRelease(e.PPN) {
				k.parkFrame(e.PPN)
			} else {
				k.releaseFrame(e.PPN)
			}
		}
		if e.SwapSlot != 0 {
			if err := k.swap.Free(e.SwapSlot); err != nil {
				panic(fmt.Sprintf("kernel: reap pid %d: %v", p.pid, err))
			}
		}
		return true
	})
	k.mmu.TLB().FlushASID(p.as.ASID)
	if k.current == p {
		k.current = nil
	}
}

func (k *Kernel) wake(p *Proc) {
	if p.state == procBlocked {
		p.state = procReady
	}
}

// blockCurrentUntilEngineDone registers the current process to be woken
// at the next engine completion. Must be called from process context.
func (k *Kernel) blockOnEngine(p *Proc) {
	k.engineWaiters = append(k.engineWaiters, p)
	p.block()
}

// Kill marks p for termination. The next time the scheduler resumes it
// the process unwinds — deferred cleanups run, frames are released
// (UDMA-referenced ones parked) — and exits; a blocked process becomes
// runnable so the kill takes effect promptly. Killing an exited process
// is a no-op. Must not be called from process context.
func (k *Kernel) Kill(p *Proc) {
	if p.state == procExited {
		return
	}
	p.killed = true
	if p.state == procBlocked {
		p.state = procReady
	}
}

// Procs returns the spawned processes, live and exited, in spawn order
// (external auditors walk their address spaces).
func (k *Kernel) Procs() []*Proc {
	out := make([]*Proc, len(k.procs))
	copy(out, k.procs)
	return out
}

// FrameState is a read-only snapshot of one physical frame's kernel
// bookkeeping, for external auditors.
type FrameState struct {
	Used     bool // allocated or parked; false = on the free list
	Kernel   bool // kernel-owned bounce frame
	Parked   bool // owner exited while UDMA referenced the frame
	Pinned   int
	OwnerPID int // 0 when unowned (free, kernel or parked)
	VPN      uint32
}

// FrameStates snapshots every physical frame's bookkeeping.
func (k *Kernel) FrameStates() []FrameState {
	out := make([]FrameState, len(k.frames))
	for i := range k.frames {
		fi := &k.frames[i]
		out[i] = FrameState{
			Used: fi.used, Kernel: fi.kernel, Parked: fi.parked,
			Pinned: fi.pinned, VPN: fi.vpn,
		}
		if fi.owner != nil {
			out[i].OwnerPID = fi.owner.pid
		}
	}
	return out
}

// frameBusyForRelease reports whether the DMA hardware still references
// pfn, so reap must defer releasing it. Unlike frameHeldByUDMA it also
// peeks the engine registers when a controller is present — the
// kernel's traditional-DMA path can Start the engine directly without
// entering the controller's reference counts — and it never fires the
// DestLoaded-clearing Inval (the latch may belong to a live process
// mid-sequence; I1 handles it at the next switch).
func (k *Kernel) frameBusyForRelease(pfn uint32) bool {
	if k.udma != nil && k.udma.PageInUse(pfn) {
		return true
	}
	return k.engineRegisterNames(pfn)
}

// parkFrame detaches a frame from its (exiting) owner without freeing
// it; drainParked returns it to the free list when the hardware is
// done with it.
func (k *Kernel) parkFrame(pfn uint32) {
	k.frames[pfn] = frameInfo{used: true, parked: true}
	k.parkedFrames = append(k.parkedFrames, pfn)
	k.stats.ReapDeferrals++
}

// drainParked frees parked frames whose hardware references are gone.
// Called on every engine completion and after a Terminate.
func (k *Kernel) drainParked() {
	if len(k.parkedFrames) == 0 {
		return
	}
	keep := k.parkedFrames[:0]
	for _, pfn := range k.parkedFrames {
		if k.frameBusyForRelease(pfn) {
			keep = append(keep, pfn)
		} else {
			k.frames[pfn].parked = false
			k.releaseFrame(pfn)
		}
	}
	k.parkedFrames = keep
}

// EngineWaiters reports how many processes are blocked waiting for a
// DMA engine completion (diagnostic; simcheck's liveness reporting
// reads it).
func (k *Kernel) EngineWaiters() int { return len(k.engineWaiters) }
