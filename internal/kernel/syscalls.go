package kernel

import (
	"fmt"

	"shrimp/internal/addr"
	"shrimp/internal/core"
	"shrimp/internal/device"
	"shrimp/internal/mmu"
	"shrimp/internal/sim"
)

// MapDevice grants the process access to dev's device-proxy pages
// (paper Section 4: "An operating system call is responsible for
// creating the mapping. The system call decides whether to grant
// permission ... and whether the permission is read-only."). The PTEs
// themselves are created lazily by the device-proxy fault handler; the
// syscall records the grant and returns the virtual base address of
// the device's proxy window.
func (p *Proc) MapDevice(dev device.Device, writable bool) (addr.VAddr, error) {
	k := p.kernel
	k.stats.Syscalls++
	p.inKernel++
	defer func() { p.inKernel-- }()
	k.clock.Advance(k.costs.SyscallEntry)
	defer k.clock.Advance(k.costs.SyscallExit)

	first, n, ok := k.devmap.PageRange(dev)
	if !ok {
		return 0, fmt.Errorf("kernel: MapDevice: %s is not attached to this node", dev.Name())
	}
	p.devGrants = append(p.devGrants, devGrant{firstPage: first, nPages: n, writable: writable})
	return addr.VAddr(addr.DevProxy(first, 0)), nil
}

// PinUserPage ensures the process page at vpn is resident and pinned,
// returning its physical frame. The SHRIMP mapping syscalls use it to
// export receive buffers to remote nodes: incoming packets DMA straight
// into physical memory, so the frame must stay put for as long as a
// remote NIPT entry names it. The page is marked dirty while exported
// (its contents can change beneath the VM system at any time).
func (k *Kernel) PinUserPage(p *Proc, vpn uint32) (uint32, error) {
	k.stats.Syscalls++
	p.inKernel++
	defer func() { p.inKernel-- }()
	k.clock.Advance(k.costs.SyscallEntry)
	defer k.clock.Advance(k.costs.SyscallExit)

	pte := p.as.Lookup(vpn)
	if pte == nil {
		return 0, fmt.Errorf("kernel: PinUserPage: page %d not mapped", vpn)
	}
	if !pte.Present {
		if err := k.pageIn(p, vpn, pte); err != nil {
			return 0, err
		}
	}
	if !pte.Writable {
		return 0, fmt.Errorf("kernel: PinUserPage: page %d is read-only", vpn)
	}
	pte.Dirty = true
	k.pinFrame(pte.PPN)
	return pte.PPN, nil
}

// UnpinUserPage releases a PinUserPage pin.
func (k *Kernel) UnpinUserPage(pfn uint32) {
	k.unpinFrame(pfn)
}

// DMAOptions tunes the traditional-DMA syscalls for the ablation
// experiments.
type DMAOptions struct {
	// Bounce copies through the kernel's pre-pinned bounce buffers
	// instead of pinning user pages ("copying pages into special
	// pre-pinned I/O buffers", Section 1).
	Bounce bool
}

// DMAWrite is the traditional kernel-initiated DMA transfer of n bytes
// from user memory at va to the device location named by the
// device-proxy physical address devPA (paper Section 2). The process
// blocks until the transfer completes. All four steps are charged:
// syscall entry, translation + permission check + pinning, descriptor
// build + engine programming, completion interrupt + unpin + return.
func (p *Proc) DMAWrite(va addr.VAddr, devPA addr.PAddr, n int, opts DMAOptions) error {
	return p.traditionalDMA(va, devPA, n, true, opts)
}

// DMARead is the device→memory direction: n bytes from devPA into the
// process's memory at va.
func (p *Proc) DMARead(va addr.VAddr, devPA addr.PAddr, n int, opts DMAOptions) error {
	return p.traditionalDMA(va, devPA, n, false, opts)
}

func (p *Proc) traditionalDMA(va addr.VAddr, devPA addr.PAddr, n int, toDevice bool, opts DMAOptions) error {
	k := p.kernel
	k.stats.Syscalls++
	p.inKernel++
	defer func() { p.inKernel-- }()

	// Step 1: system call entry.
	k.clock.Advance(k.costs.SyscallEntry)
	defer k.clock.Advance(k.costs.SyscallExit)

	if n <= 0 {
		return fmt.Errorf("kernel: DMA of %d bytes", n)
	}
	if addr.RegionOf(devPA) != addr.RegionDevProxy {
		return fmt.Errorf("kernel: DMA device address %#x not in device space", uint32(devPA))
	}
	if _, _, ok := k.devmap.Resolve(devPA); !ok {
		return fmt.Errorf("kernel: DMA device address %#x not decoded by any device", uint32(devPA))
	}

	if opts.Bounce {
		return p.dmaBounce(va, devPA, n, toDevice)
	}
	return p.dmaPinned(va, devPA, n, toDevice)
}

// dmaPinned is the pin-per-transfer variant: translate, verify, pin
// every page, run the transfers, unpin.
func (p *Proc) dmaPinned(va addr.VAddr, devPA addr.PAddr, n int, toDevice bool) error {
	k := p.kernel
	access := mmu.Read
	if !toDevice {
		access = mmu.Write
	}

	// Step 2: translate user pages, verify permission, pin, build the
	// descriptor.
	type seg struct {
		pa    addr.PAddr
		dev   addr.PAddr
		count int
	}
	var segs []seg
	var pinned []uint32
	defer func() {
		for _, pfn := range pinned {
			k.unpinFrame(pfn)
		}
	}()

	off := 0
	dev := devPA
	for off < n {
		a := va + addr.VAddr(off)
		k.clock.Advance(k.costs.TranslatePage)
		// Touch the page so a swapped-out page faults in, then probe
		// for the physical address without disturbing reference bits.
		if _, _, err := p.translate(a, access); err != nil {
			return err
		}
		tr, fault := k.mmu.Probe(p.as, a, access)
		if fault != nil {
			return p.segfault(a, access, fault.Kind)
		}
		if addr.RegionOf(tr.PA) != addr.RegionMemory {
			return fmt.Errorf("kernel: DMA on non-memory virtual range")
		}
		pfn := addr.PFN(tr.PA)
		k.pinFrame(pfn)
		pinned = append(pinned, pfn)
		if !toDevice {
			// Incoming DMA dirties the page; the kernel knows because
			// it set the transfer up (traditional path).
			p.as.Lookup(addr.VPN(a)).Dirty = true
		}

		chunk := min(min(addr.BytesToPageEnd(a), n-off),
			addr.PageSize-int(addr.PPageOff(dev)))
		k.clock.Advance(k.costs.BuildDescPage)
		segs = append(segs, seg{pa: tr.PA, dev: dev, count: chunk})
		off += chunk
		dev += addr.PAddr(chunk)
	}

	// Step 3: run the engine over the descriptor, one bus transfer per
	// segment; the controller chains segments and raises a single
	// completion interrupt for the whole request.
	for _, s := range segs {
		src, dst := s.pa, s.dev
		if !toDevice {
			src, dst = s.dev, s.pa
		}
		if err := p.engineTransfer(src, dst, s.count); err != nil {
			return err
		}
	}
	k.clock.Advance(k.costs.InterruptEntry)
	// Step 4: unpin (deferred) and return.
	return nil
}

// dmaBounce is the copying variant: data moves through pre-pinned
// kernel buffers, so no per-transfer pinning — but every byte is copied
// by the CPU.
func (p *Proc) dmaBounce(va addr.VAddr, devPA addr.PAddr, n int, toDevice bool) error {
	k := p.kernel
	if k.bounceCount == 0 {
		return fmt.Errorf("kernel: bounce buffers not configured")
	}
	bounceBytes := k.bounceCount * addr.PageSize
	access := mmu.Read
	if !toDevice {
		access = mmu.Write
	}

	off := 0
	dev := devPA
	for off < n {
		chunk := min(n-off, bounceBytes)
		// Also split at device page boundaries inside engineTransfer's
		// caller loop below; the bounce buffer itself is physically
		// contiguous.
		if toDevice {
			if err := p.copyUserToBounce(va+addr.VAddr(off), chunk); err != nil {
				return err
			}
		}
		// Transfer bounce ↔ device in device-page-sized pieces.
		done := 0
		for done < chunk {
			piece := min(chunk-done, addr.PageSize-int(addr.PPageOff(dev)))
			bouncePA := addr.FrameAddr(k.bounceBase) + addr.PAddr(done)
			src, dst := bouncePA, dev
			if !toDevice {
				src, dst = dev, bouncePA
			}
			k.clock.Advance(k.costs.BuildDescPage)
			if err := p.engineTransfer(src, dst, piece); err != nil {
				return err
			}
			done += piece
			dev += addr.PAddr(piece)
		}
		if !toDevice {
			if err := p.copyBounceToUser(va+addr.VAddr(off), chunk); err != nil {
				return err
			}
		}
		_ = access
		off += chunk
	}
	k.clock.Advance(k.costs.InterruptEntry)
	return nil
}

func (p *Proc) copyUserToBounce(va addr.VAddr, n int) error {
	k := p.kernel
	data, err := p.ReadBuf(va, n)
	if err != nil {
		return err
	}
	k.clock.Advance(k.costs.CopyPerWord * sim.Cycles((n+3)/4))
	return k.ram.Write(addr.FrameAddr(k.bounceBase), data)
}

func (p *Proc) copyBounceToUser(va addr.VAddr, n int) error {
	k := p.kernel
	data, err := k.ram.Read(addr.FrameAddr(k.bounceBase), n)
	if err != nil {
		return err
	}
	k.clock.Advance(k.costs.CopyPerWord * sim.Cycles((n+3)/4))
	return p.WriteBuf(va, data)
}

// engineTransfer runs one bus transfer on the shared DMA engine,
// blocking the process until it completes. With the two-priority-queue
// controller variant the kernel submits on the reserved system queue —
// the paper's "higher priority queue reserved for the system" — and so
// overtakes queued user UDMA work instead of waiting behind it. On a
// basic controller (or a no-UDMA machine) it contends for the idle
// engine like everyone else.
func (p *Proc) engineTransfer(src, dst addr.PAddr, count int) error {
	k := p.kernel

	if k.udma != nil && k.udma.SystemQueueAvailable() {
		var ticket *core.SysTicket
		for {
			if ticket = k.udma.EnqueueSystem(src, dst, count); ticket != nil {
				break
			}
			k.blockOnEngine(p) // system queue full: wait for a completion
		}
		for !ticket.Done {
			k.blockOnEngine(p)
		}
		return ticket.Err
	}

	for {
		if !k.engine.Busy() {
			if err := k.engine.Start(src, dst, count); err != nil {
				return err
			}
			break
		}
		k.blockOnEngine(p)
	}
	// Sleep until the transfer is over; the single request-level
	// interrupt is charged by the caller. The notify slot captures the
	// completion's per-transfer error (the next completion is ours:
	// user work initiated after our Start queues behind it). But
	// without the reserved system queue the kernel shares the engine's
	// interrupt with user transfers and holds no ticket, so it cannot
	// return at "its" interrupt — it conservatively sleeps until the
	// engine falls idle. A machine check that aborts the transfer (its
	// completion never fires) bumps the epoch instead.
	epoch := k.abortEpoch
	done := false
	var transferErr error
	k.engineNotify = func(err error) {
		done = true
		transferErr = err
	}
	for !done || k.engine.Busy() {
		if !done && k.abortEpoch != epoch {
			return core.ErrTerminated
		}
		k.blockOnEngine(p)
	}
	return transferErr
}
