package kernel

import (
	"fmt"

	"shrimp/internal/addr"
	"shrimp/internal/core"
	"shrimp/internal/mmu"
	"shrimp/internal/sim"
	"shrimp/internal/trace"
)

type procState int

const (
	procReady procState = iota
	procRunning
	procBlocked
	procExited
)

type yieldReason int

const (
	yieldPreempt yieldReason = iota
	yieldBlock
	yieldExit
)

type resumeMsg struct{}

// killedPanic is the sentinel used to unwind a killed process's
// goroutine.
type killedPanic struct{}

// SegfaultError reports an illegal access; the paper's kernel would
// core-dump the process, the simulator surfaces it to the program so
// tests can assert on it.
type SegfaultError struct {
	VA     addr.VAddr
	Access mmu.Access
	Kind   mmu.FaultKind
}

func (e *SegfaultError) Error() string {
	return fmt.Sprintf("segfault: %s of %#x (%s)", e.Access, uint32(e.VA), e.Kind)
}

// Proc is one simulated user process. Its exported methods are the
// process's "instruction set": each charges simulated time, goes
// through the MMU, and may fault into the kernel. Methods must only be
// called from within the process's own function (the coroutine the
// kernel resumed); the simulator is single-threaded by handoff.
type Proc struct {
	pid    int
	name   string
	kernel *Kernel
	as     *mmu.AddressSpace

	state  procState
	resume chan resumeMsg
	yield  chan yieldReason
	fn     func(p *Proc)

	quantum  sim.Cycles
	inKernel int // >0 while executing kernel code: no preemption
	killed   bool

	heapNext uint32 // next free heap VPN

	// devGrants records device-proxy page ranges this process may map
	// (created by the MapDevice syscall; faulted in on demand).
	devGrants []devGrant

	// autoRanges are the process's automatic-update exports (see
	// autoupdate.go): stores to these pages are snooped to a sink.
	autoRanges []autoRange

	segfaults int
}

type devGrant struct {
	firstPage, nPages uint32 // absolute device-proxy page numbers
	writable          bool
}

// PID returns the process id.
func (p *Proc) PID() int { return p.pid }

// Name returns the spawn name.
func (p *Proc) Name() string { return p.name }

// Segfaults returns how many illegal accesses the process has made.
func (p *Proc) Segfaults() int { return p.segfaults }

// Exited reports whether the process has finished (or been killed and
// reaped).
func (p *Proc) Exited() bool { return p.state == procExited }

// AddressSpace exposes the page table for tests and kernel-side tools.
func (p *Proc) AddressSpace() *mmu.AddressSpace { return p.as }

// main is the coroutine body.
func (p *Proc) main() {
	<-p.resume
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killedPanic); !ok {
				panic(r)
			}
		}
		p.state = procExited
		p.yield <- yieldExit
	}()
	p.state = procRunning
	p.fn(p)
}

// runSlice resumes the process and waits for it to yield. Called by
// the scheduler only.
func (p *Proc) runSlice() yieldReason {
	p.state = procRunning
	p.resume <- resumeMsg{}
	return <-p.yield
}

// doYield parks the process with the given reason and state, returning
// when the scheduler resumes it.
func (p *Proc) doYield(reason yieldReason, state procState) {
	p.state = state
	p.yield <- reason
	<-p.resume
	p.state = procRunning
	if p.killed {
		panic(killedPanic{})
	}
}

// block parks the process until some kernel event calls wake.
func (p *Proc) block() {
	p.doYield(yieldBlock, procBlocked)
}

// charge consumes simulated CPU time and honors preemption. Kernel
// code (inKernel > 0) is not preemptible.
func (p *Proc) charge(c sim.Cycles) {
	if p.killed {
		panic(killedPanic{})
	}
	p.kernel.clock.Advance(c)
	// A run-limit yield lets Run(limit) regain control from processes
	// that never block (busy loops with preemption disabled).
	if p.kernel.clock.Now() > p.kernel.runLimit {
		p.doYield(yieldPreempt, procReady)
		return
	}
	if p.kernel.cfg.Quantum == 0 || p.inKernel > 0 {
		return
	}
	if p.quantum <= c {
		p.quantum = 0
		p.doYield(yieldPreempt, procReady)
		return
	}
	p.quantum -= c
}

// Sleep blocks the process for d cycles of simulated time.
func (p *Proc) Sleep(d sim.Cycles) {
	k := p.kernel
	k.clock.ScheduleAfter(d, "sleep-wake", func() { k.wake(p) })
	p.block()
}

// Compute charges d cycles of pure computation.
func (p *Proc) Compute(d sim.Cycles) { p.charge(d) }

// Now returns the current simulated time.
func (p *Proc) Now() sim.Cycles { return p.kernel.clock.Now() }

// Micros converts a cycle count to microseconds under the node's cost
// model (convenience for examples and experiments).
func (p *Proc) Micros(c sim.Cycles) float64 { return p.kernel.costs.Micros(c) }

// --- memory instructions ---------------------------------------------------

// Load performs one 32-bit user-level load. For ordinary memory it
// returns the word at va; for proxy addresses it returns the UDMA
// status word — this is the LOAD half of the paper's two-instruction
// initiation sequence. Illegal accesses return a *SegfaultError.
func (p *Proc) Load(va addr.VAddr) (uint32, error) {
	pa, uncached, err := p.translate(va, mmu.Read)
	if err != nil {
		return 0, err
	}
	switch addr.RegionOf(pa) {
	case addr.RegionMemory:
		if uncached {
			p.charge(p.kernel.costs.UncachedRef)
		} else {
			p.charge(p.kernel.costs.MemRefHit)
		}
		v, rerr := p.kernel.ram.ReadWord(pa)
		if rerr != nil {
			return 0, rerr
		}
		return v, nil
	case addr.RegionMemProxy, addr.RegionDevProxy:
		v, pio := p.kernel.proxyLoad(pa)
		if !pio {
			// A PIO word's bus transaction already stalled the CPU;
			// UDMA status loads cost one uncached reference.
			p.charge(p.kernel.costs.UncachedRef)
		}
		return v, nil
	default:
		return 0, p.segfault(va, mmu.Read, mmu.FaultUnmapped)
	}
}

// Store performs one 32-bit user-level store. A store to a proxy
// address is the STORE half of the initiation sequence (or an Inval
// when v's sign bit is set).
func (p *Proc) Store(va addr.VAddr, v uint32) error {
	pa, uncached, err := p.translate(va, mmu.Write)
	if err != nil {
		return err
	}
	switch addr.RegionOf(pa) {
	case addr.RegionMemory:
		if uncached {
			p.charge(p.kernel.costs.UncachedRef)
		} else {
			p.charge(p.kernel.costs.MemRefHit)
		}
		if err := p.kernel.ram.WriteWord(pa, v); err != nil {
			return err
		}
		p.snoopStore(va, v) // automatic update, if the page is exported
		return nil
	case addr.RegionMemProxy, addr.RegionDevProxy:
		if pio := p.kernel.proxyStore(pa, int32(v)); !pio {
			p.charge(p.kernel.costs.UncachedRef)
		}
		return nil
	default:
		return p.segfault(va, mmu.Write, mmu.FaultUnmapped)
	}
}

// UDMAStatus decodes a proxy LOAD result.
func UDMAStatus(v uint32) core.Status { return core.Status(v) }

// WriteBuf places data into the process's memory without charging
// simulated time for the byte movement — the benchmarks use it to model
// payload data that already exists before the measured operation. The
// page-level machinery still runs for real: translations happen, pages
// fault in, dirty bits are set (invariant I3 depends on that).
// Automatic-update exports are NOT snooped by WriteBuf — only real
// Store instructions reach the bus the NIC snoops.
func (p *Proc) WriteBuf(va addr.VAddr, data []byte) error {
	off := 0
	for off < len(data) {
		a := va + addr.VAddr(off)
		n := min(addr.BytesToPageEnd(a), len(data)-off)
		pa, _, err := p.translate(a, mmu.Write)
		if err != nil {
			return err
		}
		if addr.RegionOf(pa) != addr.RegionMemory {
			return p.segfault(a, mmu.Write, mmu.FaultUnmapped)
		}
		if err := p.kernel.ram.Write(pa, data[off:off+n]); err != nil {
			return err
		}
		off += n
	}
	return nil
}

// ReadBuf copies n bytes out of the process's memory without charging
// time (verification hook; the inverse of WriteBuf).
func (p *Proc) ReadBuf(va addr.VAddr, n int) ([]byte, error) {
	out := make([]byte, 0, n)
	for len(out) < n {
		a := va + addr.VAddr(len(out))
		chunk := min(addr.BytesToPageEnd(a), n-len(out))
		pa, _, err := p.translate(a, mmu.Read)
		if err != nil {
			return nil, err
		}
		if addr.RegionOf(pa) != addr.RegionMemory {
			return nil, p.segfault(a, mmu.Read, mmu.FaultUnmapped)
		}
		b, rerr := p.kernel.ram.Read(pa, chunk)
		if rerr != nil {
			return nil, rerr
		}
		out = append(out, b...)
	}
	return out, nil
}

// translate runs the MMU, invoking the kernel fault handlers until the
// access succeeds or is ruled illegal.
func (p *Proc) translate(va addr.VAddr, access mmu.Access) (addr.PAddr, bool, error) {
	for attempt := 0; ; attempt++ {
		tr, fault := p.kernel.mmu.Translate(p.as, va, access)
		if fault == nil {
			return tr.PA, tr.Uncached, nil
		}
		if attempt >= 4 {
			// A correct kernel resolves a fault in one pass; repeated
			// faults on the same access indicate a handler bug.
			panic(fmt.Sprintf("kernel: unresolvable fault loop at %#x (%v)", uint32(va), fault))
		}
		if err := p.kernel.handleFault(p, fault); err != nil {
			return 0, false, err
		}
	}
}

func (p *Proc) segfault(va addr.VAddr, access mmu.Access, kind mmu.FaultKind) error {
	p.segfaults++
	p.kernel.stats.Segfaults++
	p.kernel.tracer.Record(trace.EvSegfault, uint64(va), uint64(p.pid), kind.String())
	return &SegfaultError{VA: va, Access: access, Kind: kind}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Blocked reports whether the process is blocked in the kernel
// (diagnostic; simcheck's liveness reporting reads it).
func (p *Proc) Blocked() bool { return p.state == procBlocked }
