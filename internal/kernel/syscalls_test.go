package kernel_test

import (
	"bytes"
	"errors"
	"testing"

	"shrimp/internal/addr"
	"shrimp/internal/device"
	"shrimp/internal/kernel"
	"shrimp/internal/machine"
)

func TestDMAWriteArgumentValidation(t *testing.T) {
	n, _ := newNode(t, machine.Config{})
	var errZero, errNeg, errBadDev, errUndecoded error
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		va, _ := p.Alloc(4096)
		errZero = p.DMAWrite(va, addr.DevProxy(0, 0), 0, kernel.DMAOptions{})
		errNeg = p.DMAWrite(va, addr.DevProxy(0, 0), -8, kernel.DMAOptions{})
		errBadDev = p.DMAWrite(va, addr.PAddr(0x1000), 64, kernel.DMAOptions{})
		errUndecoded = p.DMAWrite(va, addr.DevProxy(3000, 0), 64, kernel.DMAOptions{})
	})
	run(t, n)
	for name, err := range map[string]error{
		"zero count": errZero, "negative count": errNeg,
		"memory address as device": errBadDev, "undecoded device": errUndecoded,
	} {
		if err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestDMAWriteFromUnmappedMemorySegfaults(t *testing.T) {
	n, _ := newNode(t, machine.Config{})
	var err error
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		err = p.DMAWrite(0x0050_0000, addr.DevProxy(0, 0), 64, kernel.DMAOptions{})
	})
	run(t, n)
	var sf *kernel.SegfaultError
	if !errors.As(err, &sf) {
		t.Fatalf("got %v, want segfault", err)
	}
	if n.Kernel.Stats().Pins != 0 {
		t.Fatal("failed DMA left pages pinned")
	}
}

func TestDMAReadIntoReadOnlyPageSegfaults(t *testing.T) {
	n, _ := newNode(t, machine.Config{})
	var err error
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		va, _ := p.AllocReadOnly(4096, nil)
		err = p.DMARead(va, addr.DevProxy(0, 0), 64, kernel.DMAOptions{})
	})
	run(t, n)
	var sf *kernel.SegfaultError
	if !errors.As(err, &sf) {
		t.Fatalf("got %v, want segfault", err)
	}
}

func TestDMAWritePagesInSwappedSource(t *testing.T) {
	// The syscall path must page in a swapped-out source page before
	// pinning it — step 2 of the paper's traditional sequence.
	n, buf := newNode(t, machine.Config{RAMFrames: 24})
	payload := []byte("paged out then DMA'd")
	var err error
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		va, _ := p.Alloc(4096)
		p.WriteBuf(va, payload)
		if !forceOut(p, va) {
			err = errors.New("inconclusive: page never evicted")
			return
		}
		err = p.DMAWrite(va, addr.DevProxy(0, 0), len(payload), kernel.DMAOptions{})
	})
	run(t, n)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(0, len(payload)), payload) {
		t.Fatal("swapped source delivered wrong data")
	}
	if n.Kernel.Stats().PageIns == 0 {
		t.Fatal("no page-in recorded")
	}
}

func TestDMAWriteSpanningDevicePages(t *testing.T) {
	// A transfer whose device range crosses device-page boundaries must
	// be segmented on the device side too.
	n, buf := newNode(t, machine.Config{})
	payload := bytes.Repeat([]byte{0xCD}, 6000)
	var err error
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		va, _ := p.Alloc(8192)
		p.WriteBuf(va, payload)
		err = p.DMAWrite(va, addr.DevProxy(0, 2048), len(payload), kernel.DMAOptions{})
	})
	run(t, n)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(2048, len(payload)), payload) {
		t.Fatal("device-page-spanning transfer corrupted")
	}
}

func TestBounceRoundTripRead(t *testing.T) {
	n, buf := newNode(t, machine.Config{Kernel: kernel.Config{BounceFrames: 2}})
	payload := bytes.Repeat([]byte{0x5A}, 3*4096) // larger than the bounce pool
	buf.SetBytes(0, payload)
	var got []byte
	var err error
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		va, _ := p.Alloc(len(payload))
		if err = p.DMARead(va, addr.DevProxy(0, 0), len(payload), kernel.DMAOptions{Bounce: true}); err != nil {
			return
		}
		got, err = p.ReadBuf(va, len(payload))
	})
	run(t, n)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("bounce read corrupted data")
	}
}

func TestMapDeviceUnattached(t *testing.T) {
	n, _ := newNode(t, machine.Config{})
	other := device.NewBuffer("elsewhere", 2, 0, 0)
	var err error
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		_, err = p.MapDevice(other, true)
	})
	run(t, n)
	if err == nil {
		t.Fatal("MapDevice of unattached device succeeded")
	}
}

func TestAllocValidation(t *testing.T) {
	n, _ := newNode(t, machine.Config{})
	var errZero, errNeg error
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		_, errZero = p.Alloc(0)
		_, errNeg = p.Alloc(-5)
	})
	run(t, n)
	if errZero == nil || errNeg == nil {
		t.Fatal("bad Alloc sizes accepted")
	}
}

func TestWriteBufReadBufSpanPages(t *testing.T) {
	n, _ := newNode(t, machine.Config{})
	payload := bytes.Repeat([]byte{7, 8, 9}, 3000) // 9000 bytes, 3 pages
	var got []byte
	var err error
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		va, _ := p.Alloc(3 * 4096)
		if err = p.WriteBuf(va+100, payload); err != nil {
			return
		}
		got, err = p.ReadBuf(va+100, len(payload))
	})
	run(t, n)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("page-spanning buffer round trip failed")
	}
}

func TestPinUserPageErrors(t *testing.T) {
	n, _ := newNode(t, machine.Config{})
	var errUnmapped, errRO error
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		_, errUnmapped = n.Kernel.PinUserPage(p, 0x700)
		va, _ := p.AllocReadOnly(4096, nil)
		_, errRO = n.Kernel.PinUserPage(p, addr.VPN(va))
	})
	run(t, n)
	if errUnmapped == nil {
		t.Fatal("pin of unmapped page succeeded")
	}
	if errRO == nil {
		t.Fatal("pin of read-only page succeeded")
	}
}
