package kernel

import (
	"fmt"

	"shrimp/internal/addr"
	"shrimp/internal/device"
	"shrimp/internal/mmu"
	"shrimp/internal/sim"
	"shrimp/internal/trace"
)

// Alloc maps n bytes (rounded up to whole pages) of fresh, zero-filled,
// writable memory into the process and returns its page-aligned base
// virtual address. Frames are allocated eagerly; under memory pressure
// this evicts other pages.
func (p *Proc) Alloc(n int) (addr.VAddr, error) {
	if n <= 0 {
		return 0, fmt.Errorf("kernel: Alloc(%d): size must be positive", n)
	}
	pages := (n + addr.PageSize - 1) / addr.PageSize
	base := p.heapNext
	// Validate the whole range before allocating anything: the heap
	// must stay inside the 1 GB memory region.
	if uint64(base)+uint64(pages) > uint64(addr.RegionMaxPage) {
		return 0, fmt.Errorf("kernel: Alloc(%d): heap would exhaust the memory region", n)
	}
	for i := 0; i < pages; i++ {
		vpn := base + uint32(i)
		pfn, err := p.kernel.allocFrame(p, vpn)
		if err != nil {
			return 0, err
		}
		if err := p.kernel.ram.ZeroFrame(pfn); err != nil {
			return 0, err
		}
		p.as.Set(vpn, mmu.PTE{Valid: true, Present: true, Writable: true, PPN: pfn})
	}
	p.heapNext = base + uint32(pages)
	return addr.PageAddr(base), nil
}

// AllocReadOnly is Alloc followed by write-protecting the pages, for
// testing the "read-only page can be a source but not a destination"
// rule.
func (p *Proc) AllocReadOnly(n int, contents []byte) (addr.VAddr, error) {
	va, err := p.Alloc(n)
	if err != nil {
		return 0, err
	}
	if contents != nil {
		if err := p.WriteBuf(va, contents); err != nil {
			return 0, err
		}
	}
	pages := (n + addr.PageSize - 1) / addr.PageSize
	for i := 0; i < pages; i++ {
		vpn := addr.VPN(va) + uint32(i)
		pte := p.as.Lookup(vpn)
		pte.Writable = false
		// Clean slate: pretend the initial contents came from a file,
		// so I3 starts from "not dirty".
		pte.Dirty = false
		p.kernel.mmu.TLB().FlushPage(p.as.ASID, vpn)
		// Invalidate any proxy mapping so its writability is re-derived.
		p.kernel.invalidateProxyPTE(p, vpn)
	}
	return va, nil
}

// --- frame management ------------------------------------------------------

// allocFrame hands out a free frame, evicting a victim under pressure.
func (k *Kernel) allocFrame(owner *Proc, vpn uint32) (uint32, error) {
	for attempt := 0; attempt < 64; attempt++ {
		if n := len(k.freeList); n > 0 {
			pfn := k.freeList[n-1]
			k.freeList = k.freeList[:n-1]
			k.frames[pfn] = frameInfo{owner: owner, vpn: vpn, used: true}
			return pfn, nil
		}
		if err := k.evictOne(); err != nil {
			return 0, err
		}
	}
	return 0, fmt.Errorf("kernel: allocFrame: could not free a frame")
}

func (k *Kernel) releaseFrame(pfn uint32) {
	k.frames[pfn] = frameInfo{}
	k.freeList = append(k.freeList, pfn)
}

// Pin prevents eviction of the frame backing (proc, vpn) — the
// traditional DMA path (paper Section 2: pages "pinned to prevent the
// virtual memory system from paging them out").
func (k *Kernel) pinFrame(pfn uint32) {
	k.frames[pfn].pinned++
	k.stats.Pins++
	k.m.pins.Inc()
	k.clock.Advance(k.costs.PinPage)
}

func (k *Kernel) unpinFrame(pfn uint32) {
	if k.frames[pfn].pinned <= 0 {
		panic(fmt.Sprintf("kernel: unpin of unpinned frame %d", pfn))
	}
	k.frames[pfn].pinned--
	k.stats.Unpins++
	k.m.unpins.Inc()
	k.clock.Advance(k.costs.UnpinPage)
}

// evictOne selects a victim frame with a second-chance clock sweep and
// pages it out. Invariant I4: a frame named in the engine's SOURCE or
// DESTINATION register, or in the UDMA request queue, is never chosen —
// "the kernel must either find another page to remap, or wait until
// the transfer finishes."
func (k *Kernel) evictOne() error {
	total := len(k.frames)
	// Up to two full sweeps: the first may only clear reference bits.
	for pass := 0; pass < 2*total; pass++ {
		pfn := uint32(k.clockHand)
		k.clockHand = (k.clockHand + 1) % total
		fi := &k.frames[pfn]
		if !fi.used || fi.kernel || fi.pinned > 0 || fi.owner == nil {
			continue
		}
		if !k.hooks.SkipI4Guard && k.frameHeldByUDMA(pfn) {
			k.stats.EvictionStallsI4++
			continue
		}
		pte := fi.owner.as.Lookup(fi.vpn)
		if pte == nil || !pte.Present {
			panic(fmt.Sprintf("kernel: frame table out of sync for frame %d", pfn))
		}
		if pte.Referenced {
			pte.Referenced = false // second chance
			continue
		}
		return k.evictFrame(pfn, fi.owner, fi.vpn, pte)
	}
	// Every candidate is held by UDMA or referenced; wait for the
	// hardware to finish something, then the caller retries.
	if at, ok := k.clock.NextEventAt(); ok {
		k.clock.AdvanceTo(at)
		return nil
	}
	return fmt.Errorf("kernel: memory exhausted: all frames pinned or held by UDMA")
}

// frameHeldByUDMA implements the I4 check. Without queueing the kernel
// reads the two engine registers; with queueing it uses the
// reference-count query. A frame latched in a DestLoaded destination
// register is freed by firing Inval, exactly as Section 6 permits.
func (k *Kernel) frameHeldByUDMA(pfn uint32) bool {
	if k.udma == nil {
		// Traditional path only: the engine registers still matter.
		if !k.engine.Busy() {
			return false
		}
		return k.engineRegisterNames(pfn)
	}
	if k.udma.PageInUse(pfn) {
		return true
	}
	if latched, ok := k.udma.DestLoadedFrame(); ok && latched == pfn {
		k.udma.Inval() // clear the DESTINATION register, then reuse
		return false
	}
	return false
}

func (k *Kernel) engineRegisterNames(pfn uint32) bool {
	src, dst, busy := k.engine.Source(), k.engine.Destination(), k.engine.Busy()
	if !busy {
		return false
	}
	if addr.RegionOf(src) == addr.RegionMemory && addr.PFN(src) == pfn {
		return true
	}
	if addr.RegionOf(dst) == addr.RegionMemory && addr.PFN(dst) == pfn {
		return true
	}
	return false
}

// evictFrame writes the page out if needed and unmaps it, maintaining
// I2 by invalidating the proxy PTE whenever the real mapping changes.
func (k *Kernel) evictFrame(pfn uint32, owner *Proc, vpn uint32, pte *mmu.PTE) error {
	k.stats.Evictions++
	k.m.evictions.Inc()
	k.tracer.Record(trace.EvEviction, uint64(pfn), uint64(vpn), owner.name)

	if pte.Dirty || pte.SwapSlot == 0 {
		if pte.SwapSlot == 0 {
			pte.SwapSlot = k.swap.Alloc()
		}
		page, err := k.ram.Frame(pfn)
		if err != nil {
			return err
		}
		if err := k.swap.WritePage(pte.SwapSlot, page); err != nil {
			return err
		}
		k.clock.Advance(k.costs.PageCleanCost)
		k.stats.PageOuts++
	}

	pte.Present = false
	pte.Dirty = false
	pte.PPN = 0
	k.mmu.TLB().FlushPage(owner.as.ASID, vpn)

	// I2: the proxy mapping is valid only while the real mapping is.
	if !k.hooks.SkipI2ProxyInval {
		k.invalidateProxyPTE(owner, vpn)
	}

	k.releaseFrame(pfn)
	return nil
}

// invalidateProxyPTE drops the memory-proxy mapping for real page vpn.
func (k *Kernel) invalidateProxyPTE(owner *Proc, vpn uint32) {
	proxyVPN := addr.VPN(addr.VProxy(addr.PageAddr(vpn)))
	if owner.as.Lookup(proxyVPN) != nil {
		owner.as.Clear(proxyVPN)
		k.mmu.TLB().FlushPage(owner.as.ASID, proxyVPN)
	}
}

// pageIn brings a swapped-out page back into a frame.
func (k *Kernel) pageIn(p *Proc, vpn uint32, pte *mmu.PTE) error {
	pfn, err := k.allocFrame(p, vpn)
	if err != nil {
		return err
	}
	page, err := k.swap.ReadPage(pte.SwapSlot)
	if err != nil {
		return err
	}
	if err := k.ram.SetFrame(pfn, page); err != nil {
		return err
	}
	k.clock.Advance(k.costs.PageInLatency)
	k.stats.PageIns++
	k.m.pageIns.Inc()
	k.tracer.Record(trace.EvPageIn, uint64(pfn), uint64(vpn), p.name)
	pte.Present = true
	pte.Dirty = false
	pte.PPN = pfn
	k.mmu.TLB().FlushPage(p.as.ASID, vpn)
	return nil
}

// --- fault handling ---------------------------------------------------------

// handleFault dispatches an MMU fault taken by process p. A returned
// error is the process's problem (segfault); nil means the access
// should be retried.
func (k *Kernel) handleFault(p *Proc, f *mmu.Fault) error {
	k.stats.PageFaults++
	k.m.pageFaults.Inc()
	kind := trace.EvPageFault
	if addr.VRegionOf(f.VA).IsProxy() {
		kind = trace.EvProxyFault
	}
	k.tracer.Record(kind, uint64(f.VA), uint64(p.pid), f.Kind.String())
	p.inKernel++
	defer func() { p.inKernel-- }()
	k.clock.Advance(k.costs.FaultHandler)

	switch addr.VRegionOf(f.VA) {
	case addr.RegionMemory:
		return k.handleMemFault(p, f)
	case addr.RegionMemProxy:
		return k.handleMemProxyFault(p, f)
	case addr.RegionDevProxy:
		return k.handleDevProxyFault(p, f)
	default:
		return p.segfault(f.VA, f.Access, f.Kind)
	}
}

func (k *Kernel) handleMemFault(p *Proc, f *mmu.Fault) error {
	vpn := addr.VPN(f.VA)
	switch f.Kind {
	case mmu.FaultNotPresent:
		pte := p.as.Lookup(vpn)
		if pte == nil {
			return p.segfault(f.VA, f.Access, f.Kind)
		}
		return k.pageIn(p, vpn, pte)
	default:
		// Unmapped heap or a write to read-only data: illegal.
		return p.segfault(f.VA, f.Access, f.Kind)
	}
}

// handleMemProxyFault implements the paper's on-demand proxy-mapping
// creation with its three cases (Section 6, "Maintaining I2"), plus the
// I3 write-upgrade protocol ("Maintaining I3").
func (k *Kernel) handleMemProxyFault(p *Proc, f *mmu.Fault) error {
	k.stats.ProxyFaults++
	k.m.proxyFaults.Inc()
	proxyVPN := addr.VPN(f.VA)
	realVPN := addr.VPN(addr.VUnproxy(f.VA))
	realPTE := p.as.Lookup(realVPN)

	if f.Kind == mmu.FaultProtection {
		// A write to a read-only proxy page: the I3 protocol. Enable
		// the write only if the real page may legally be written.
		if realPTE == nil || !realPTE.Writable {
			return p.segfault(f.VA, f.Access, f.Kind)
		}
		proxyPTE := p.as.Lookup(proxyVPN)
		if proxyPTE == nil {
			// The proxy mapping vanished between fault and handler
			// (e.g. eviction); retry from scratch.
			return nil
		}
		// "the kernel enables writes to PROXY(vmem_page) so the user's
		// transfer can take place; the kernel also marks vmem_page as
		// dirty to maintain I3."
		if !k.hooks.SkipI3Dirty {
			realPTE.Dirty = true
		}
		proxyPTE.Writable = true
		k.mmu.TLB().FlushPage(p.as.ASID, proxyVPN)
		k.stats.ProxyUpgrades++
		return nil
	}

	// Unmapped (or stale) proxy page: the three cases.
	switch {
	case realPTE == nil:
		// Case 3: vmem_page is not accessible — illegal access.
		return p.segfault(f.VA, f.Access, f.Kind)
	case !realPTE.Present:
		// Case 2: valid but not in core — page in, then fall through
		// to case 1 on retry (cheaper: do it now).
		if err := k.pageIn(p, realVPN, realPTE); err != nil {
			return err
		}
	}
	// Case 1: in core and accessible — create the mapping
	// PROXY(vmem_page) → PROXY(pmem_page).
	realPA := addr.FrameAddr(realPTE.PPN)
	if addr.RegionOf(realPA) != addr.RegionMemory {
		return p.segfault(f.VA, f.Access, f.Kind)
	}
	// I3: proxy writable only while the real page is dirty; and a
	// read-only real page may only ever be a transfer source.
	writable := realPTE.Writable && realPTE.Dirty
	if f.Access == mmu.Write && !writable {
		if !realPTE.Writable {
			return p.segfault(f.VA, f.Access, f.Kind)
		}
		// The faulting access is itself a store: mark dirty and map
		// writable in one step (saves the immediate protection fault).
		if !k.hooks.SkipI3Dirty {
			realPTE.Dirty = true
		}
		writable = true
		k.stats.ProxyUpgrades++
	}
	p.as.Set(proxyVPN, mmu.PTE{
		Valid: true, Present: true,
		Writable: writable,
		Uncached: true,
		PPN:      addr.PFN(addr.Proxy(realPA)),
	})
	k.clock.Advance(k.costs.MapProxyPage)
	return nil
}

// handleDevProxyFault creates a device-proxy mapping on demand if the
// process holds a grant from the MapDevice syscall.
func (k *Kernel) handleDevProxyFault(p *Proc, f *mmu.Fault) error {
	if f.Kind == mmu.FaultProtection {
		// Device grants are fixed at MapDevice time; no upgrades.
		return p.segfault(f.VA, f.Access, f.Kind)
	}
	k.stats.ProxyFaults++
	k.m.proxyFaults.Inc()
	vpn := addr.VPN(f.VA)
	// The simulated machine identity-maps device proxy space: virtual
	// device-proxy page N corresponds to physical device-proxy page N.
	devPage := addr.DevProxyPage(addr.PAddr(f.VA))
	for _, g := range p.devGrants {
		if devPage >= g.firstPage && devPage < g.firstPage+g.nPages {
			if f.Access == mmu.Write && !g.writable {
				return p.segfault(f.VA, f.Access, f.Kind)
			}
			p.as.Set(vpn, mmu.PTE{
				Valid: true, Present: true,
				Writable: g.writable,
				Uncached: true,
				PPN:      uint32(f.VA) >> addr.PageShift,
			})
			k.clock.Advance(k.costs.MapProxyPage)
			return nil
		}
	}
	return p.segfault(f.VA, f.Access, f.Kind)
}

// --- page cleaning (I3) -----------------------------------------------------

// CleanPage writes a dirty page to backing store and clears its dirty
// bit, write-protecting the proxy page to maintain I3. The race the
// paper warns about — "make sure not to clear the dirty bit if a DMA
// transfer to the page is in progress" — is closed by re-checking the
// UDMA reference count: if the frame is a pending transfer target the
// page simply stays dirty.
func (k *Kernel) CleanPage(p *Proc, vpn uint32) error {
	pte := p.as.Lookup(vpn)
	if pte == nil || !pte.Present {
		return fmt.Errorf("kernel: CleanPage of non-resident page %d", vpn)
	}
	if !pte.Dirty {
		return nil
	}
	if pte.SwapSlot == 0 {
		pte.SwapSlot = k.swap.Alloc()
	}
	// I3 race check, half one: the swap copy below snapshots the frame
	// at the *start* of the write-out, so a device→memory transfer that
	// is in flight anywhere across the clean must leave the page dirty —
	// otherwise its data would exist only in a frame the VM system now
	// believes is clean, and a later replacement would lose it.
	inFlightBefore := k.udma != nil && k.udma.PageInUse(pte.PPN)

	page, err := k.ram.Frame(pte.PPN)
	if err != nil {
		return err
	}
	if err := k.swap.WritePage(pte.SwapSlot, page); err != nil {
		return err
	}
	k.clock.Advance(k.costs.PageCleanCost)
	k.stats.CleanedPages++

	// Half two: a transfer may also have *started* while the write-out
	// was in progress.
	if inFlightBefore || (k.udma != nil && k.udma.PageInUse(pte.PPN)) {
		k.stats.CleanRaceKeeps++
		return nil
	}

	pte.Dirty = false
	// Write-protect the proxy page so the next DMA destination use
	// re-marks the page dirty.
	proxyVPN := addr.VPN(addr.VProxy(addr.PageAddr(vpn)))
	if proxyPTE := p.as.Lookup(proxyVPN); proxyPTE != nil {
		proxyPTE.Writable = false
		k.mmu.TLB().FlushPage(p.as.ASID, proxyVPN)
	}
	return nil
}

// StartCleaner runs the page-cleaner daemon: every period cycles it
// sweeps all live processes and writes their dirty pages to backing
// store, write-protecting the corresponding proxy pages (the I3
// protocol's steady-state producer). Real kernels run exactly such a
// daemon so replacement rarely blocks on a write-out. Returns a stop
// function.
func (k *Kernel) StartCleaner(period sim.Cycles) (stop func()) {
	if period == 0 {
		panic("kernel: StartCleaner with zero period")
	}
	stopped := false
	var tick func()
	tick = func() {
		// The daemon dies with the last process — otherwise the
		// self-rescheduling tick would keep the event queue non-empty
		// forever and cluster drains could never finish.
		if stopped || k.allExited() {
			return
		}
		for _, p := range k.procs {
			if p.state == procExited {
				continue
			}
			// Best effort: a failed clean (e.g. a page racing a
			// transfer) just stays dirty for the next pass.
			_ = k.CleanAllDirty(p)
		}
		k.clock.ScheduleAfter(period, "page-cleaner", tick)
	}
	k.clock.ScheduleAfter(period, "page-cleaner", tick)
	return func() { stopped = true }
}

// CleanAllDirty sweeps every resident dirty page of p (the page-cleaner
// daemon's pass).
func (k *Kernel) CleanAllDirty(p *Proc) error {
	var vpns []uint32
	p.as.Walk(func(vpn uint32, e *mmu.PTE) bool {
		if e.Present && e.Dirty && addr.VRegionOf(addr.PageAddr(vpn)) == addr.RegionMemory {
			vpns = append(vpns, vpn)
		}
		return true
	})
	for _, vpn := range vpns {
		if err := k.CleanPage(p, vpn); err != nil {
			return err
		}
	}
	return nil
}

// --- proxy access routing ---------------------------------------------------

// proxyStore routes a store that physically decoded into proxy space:
// PIO windows go to the device, everything else to the UDMA hardware.
// It reports whether the access was a PIO word, whose full cost (the
// bus transaction, which stalls the CPU) it has already charged — the
// caller must not also charge an uncached reference.
func (k *Kernel) proxyStore(pa addr.PAddr, v int32) (pio bool) {
	if dev, da, ok := k.pioResolve(pa); ok {
		k.iobus.PIOWord()
		dev.PIOStore(da, uint32(v))
		return true
	}
	if k.udma == nil {
		return false // writes to nonexistent hardware are dropped on the bus
	}
	k.udma.Store(pa, v)
	return false
}

func (k *Kernel) proxyLoad(pa addr.PAddr) (v uint32, pio bool) {
	if dev, da, ok := k.pioResolve(pa); ok {
		k.iobus.PIOWord()
		return dev.PIOLoad(da), true
	}
	if k.udma == nil {
		return ^uint32(0), false // open bus
	}
	return uint32(k.udma.Load(pa)), false
}

func (k *Kernel) pioResolve(pa addr.PAddr) (device.PIODevice, device.DevAddr, bool) {
	if addr.RegionOf(pa) != addr.RegionDevProxy {
		return nil, device.DevAddr{}, false
	}
	dev, da, ok := k.devmap.Resolve(pa)
	if !ok {
		return nil, device.DevAddr{}, false
	}
	pio, ok := dev.(device.PIODevice)
	if !ok {
		return nil, device.DevAddr{}, false
	}
	first, n, ok := pio.PIOWindow()
	if !ok || da.Page < first || da.Page >= first+n {
		return nil, device.DevAddr{}, false
	}
	return pio, da, true
}
