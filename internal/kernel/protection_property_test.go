package kernel_test

import (
	"fmt"
	"testing"

	"shrimp/internal/addr"
	"shrimp/internal/core"
	"shrimp/internal/device"
	"shrimp/internal/kernel"
	"shrimp/internal/machine"
	"shrimp/internal/sim"
	"shrimp/internal/udmalib"
	"shrimp/internal/workload"
)

// TestProtectionUnderRandomizedSharing is the paper's central promise
// ("a UDMA device can be used concurrently by an arbitrary number of
// untrusting processes without compromising protection") stress-tested:
// for several seeds, 2–5 processes with randomized message sizes,
// compute bursts and scheduling quanta all hammer one device. Every
// byte must land in its owner's region with its owner's pattern.
func TestProtectionUnderRandomizedSharing(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := sim.NewRNG(seed)
			procs := 2 + rng.Intn(4)
			quantum := sim.Cycles(1000 + rng.Intn(4000))
			queueDepth := rng.Intn(3) * 4 // 0, 4 or 8

			n := machine.New(0, machine.Config{
				RAMFrames: 64 + procs*4,
				Kernel:    kernel.Config{Quantum: quantum},
				UDMA:      core.Config{QueueDepth: queueDepth},
			})
			buf := device.NewBuffer("buf", uint32(procs), 4, 0)
			n.AttachDevice(buf, 0)
			defer n.Kernel.Shutdown()

			type plan struct {
				msgs  int
				size  int
				burst sim.Cycles
			}
			plans := make([]plan, procs)
			errs := make([]error, procs)
			for i := 0; i < procs; i++ {
				plans[i] = plan{
					msgs:  4 + rng.Intn(12),
					size:  4 * (16 + rng.Intn(200)), // 64..860 bytes, 4-aligned
					burst: sim.Cycles(rng.Intn(2000)),
				}
				i := i
				n.Kernel.Spawn(fmt.Sprintf("p%d", i), func(p *kernel.Proc) {
					d, err := udmalib.Open(p, buf, true)
					if err != nil {
						errs[i] = err
						return
					}
					va, err := p.Alloc(addr.PageSize)
					if err != nil {
						errs[i] = err
						return
					}
					if err := p.WriteBuf(va, workload.Payload(plans[i].size, byte(i+1))); err != nil {
						errs[i] = err
						return
					}
					for m := 0; m < plans[i].msgs; m++ {
						if plans[i].burst > 0 {
							p.Compute(plans[i].burst)
						}
						var err error
						if queueDepth > 0 {
							err = d.QueuedSend(va, uint32(i)<<addr.PageShift, plans[i].size)
						} else {
							err = d.Send(va, uint32(i)<<addr.PageShift, plans[i].size)
						}
						if err != nil {
							errs[i] = err
							return
						}
					}
				})
			}
			if err := n.Kernel.Run(sim.Forever); err != nil {
				t.Fatal(err)
			}
			for i, err := range errs {
				if err != nil {
					t.Fatalf("proc %d: %v", i, err)
				}
			}
			for i := 0; i < procs; i++ {
				want := workload.Payload(plans[i].size, byte(i+1))
				got := buf.Bytes(i*addr.PageSize, plans[i].size)
				for j := range want {
					if got[j] != want[j] {
						t.Fatalf("proc %d region corrupted at byte %d (quantum=%d depth=%d)",
							i, j, quantum, queueDepth)
					}
				}
			}
			// The paper's recovery protocol must have been visible in at
			// least some seeds — we only assert its accounting is sane.
			ks := n.Kernel.Stats()
			if ks.Invals != ks.ContextSwitches {
				t.Fatalf("I1 violated: %d invals for %d switches", ks.Invals, ks.ContextSwitches)
			}
		})
	}
}
