package kernel

// TestHooks deliberately disable individual invariant-maintenance steps
// so the simulation checker (internal/simcheck) can prove its auditor
// detects each class of violation: a checker that has never seen a
// broken kernel fail is itself unverified. Production code never sets
// any of these.
type TestHooks struct {
	// SkipI1Inval makes switchTo skip the context-switch Inval (and its
	// counters), breaking invariant I1.
	SkipI1Inval bool
	// SkipI2ProxyInval makes evictFrame leave the stale proxy PTE
	// behind when the real mapping is destroyed, breaking I2.
	SkipI2ProxyInval bool
	// SkipI3Dirty makes the proxy write-upgrade path enable writes
	// without marking the real page dirty, breaking I3.
	SkipI3Dirty bool
	// SkipI4Guard makes evictOne ignore UDMA references when choosing
	// victims, breaking I4.
	SkipI4Guard bool
}

// SetTestHooks installs invariant-breaking hooks (tests only).
func (k *Kernel) SetTestHooks(h TestHooks) { k.hooks = h }
