package kernel_test

import (
	"bytes"
	"errors"
	"testing"

	"shrimp/internal/addr"
	"shrimp/internal/core"
	"shrimp/internal/kernel"
	"shrimp/internal/machine"
	"shrimp/internal/workload"
)

// TestMachineCheckAbortsBlockedDMA: a machine check raised while a
// traditional-DMA syscall is blocked on the engine must fail that
// syscall with core.ErrTerminated — not leave the process asleep
// forever — and the machine must stay usable. Both kernel paths are
// covered: the reserved system queue (ticket) and the basic shared
// engine (epoch).
func TestMachineCheckAbortsBlockedDMA(t *testing.T) {
	cases := []struct {
		name string
		cfg  machine.Config
	}{
		{"system queue ticket path", machine.Config{
			UDMA: core.Config{SystemQueueDepth: 2},
		}},
		{"basic engine path", machine.Config{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n, buf := newNode(t, tc.cfg)

			// Interrupt watcher: the moment the engine goes busy with the
			// process's transfer, raise a machine check. Re-arms until it
			// fires once, then never again.
			fired := false
			discarded := -1
			var watch func()
			watch = func() {
				if fired {
					return
				}
				if n.Engine.Busy() {
					fired = true
					discarded = n.Kernel.MachineCheck(errors.New("injected parity error"))
					return
				}
				n.Clock.ScheduleAfter(100, "mc-watch", watch)
			}
			n.Clock.ScheduleAfter(100, "mc-watch", watch)

			payload := workload.Payload(2*addr.PageSize, 9)
			var first, second error
			n.Kernel.Spawn("victim", func(p *kernel.Proc) {
				va, _ := p.Alloc(len(payload))
				p.WriteBuf(va, payload)
				first = p.DMAWrite(va, addr.DevProxy(0, 0), len(payload), kernel.DMAOptions{})
				// The machine must be immediately reusable after the check.
				second = p.DMAWrite(va, addr.DevProxy(4, 0), len(payload), kernel.DMAOptions{})
			})
			run(t, n)

			if !fired {
				t.Fatal("machine check never fired (engine never seen busy)")
			}
			if discarded < 1 {
				t.Fatalf("MachineCheck discarded %d transfers, want >= 1", discarded)
			}
			if !errors.Is(first, core.ErrTerminated) {
				t.Fatalf("interrupted DMAWrite returned %v, want core.ErrTerminated", first)
			}
			if second != nil {
				t.Fatalf("post-check DMAWrite: %v", second)
			}
			if got := buf.Bytes(4*addr.PageSize, len(payload)); !bytes.Equal(got, payload) {
				t.Fatal("post-check transfer did not deliver")
			}
			ks := n.Kernel.Stats()
			if ks.MachineChecks != 1 {
				t.Fatalf("MachineChecks = %d, want 1", ks.MachineChecks)
			}
		})
	}
}
