package dma

import (
	"errors"
	"testing"

	"shrimp/internal/addr"
	"shrimp/internal/bus"
	"shrimp/internal/device"
	"shrimp/internal/mem"
	"shrimp/internal/sim"
)

// TestStartErrorKinds drives every synchronous rejection path and
// checks the typed error the caller sees.
func TestStartErrorKinds(t *testing.T) {
	cases := []struct {
		name     string
		src, dst addr.PAddr
		count    int
		busyTrap bool // start a transfer first so the engine is busy
		kind     FaultKind
		bits     device.ErrBits
	}{
		{name: "busy", src: 0x1000, dst: addr.DevProxy(0, 0), count: 4,
			busyTrap: true, kind: FaultBusy},
		{name: "zero count", src: 0x1000, dst: addr.DevProxy(0, 0), count: 0,
			kind: FaultBadRequest},
		{name: "mem to mem", src: 0x1000, dst: 0x2000, count: 4,
			kind: FaultBadRequest},
		{name: "dev to dev", src: addr.DevProxy(0, 0), dst: addr.DevProxy(1, 0), count: 4,
			kind: FaultBadRequest},
		{name: "memory outside RAM", src: 0x40_0000, dst: addr.DevProxy(0, 0), count: 4,
			kind: FaultBusError},
		{name: "no device decodes", src: 0x1000, dst: addr.DevProxy(200, 0), count: 4,
			kind: FaultDeviceReject, bits: device.ErrBounds},
		{name: "device rejects", src: 0x1000, dst: addr.DevProxy(0, 2), count: 4,
			kind: FaultDeviceReject, bits: device.ErrAlignment},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := newAlignedRig(t)
			if tc.busyTrap {
				if err := r.eng.Start(0x2000, addr.DevProxy(0, 64), 4); err != nil {
					t.Fatal(err)
				}
			}
			err := r.eng.Start(tc.src, tc.dst, tc.count)
			var te *TransferError
			if !errors.As(err, &te) {
				t.Fatalf("error = %v (%T), want *TransferError", err, err)
			}
			if te.Kind != tc.kind {
				t.Fatalf("kind = %v, want %v", te.Kind, tc.kind)
			}
			if te.Stage != "start" {
				t.Fatalf("stage = %q", te.Stage)
			}
			if tc.bits != 0 && te.Bits&tc.bits == 0 {
				t.Fatalf("bits = %#x, want %#x set", uint32(te.Bits), uint32(tc.bits))
			}
			if !tc.busyTrap && r.eng.Busy() {
				t.Fatal("rejected Start left the engine busy")
			}
			r.clock.RunUntilIdle()
		})
	}
}

// newAlignedRig is newRig with a 4-byte-alignment device, so an odd
// source address exercises the device-reject path.
func newAlignedRig(t *testing.T) *rig {
	t.Helper()
	clock := sim.NewClock()
	costs := &sim.CostModel{
		CPUHz: 60e6, DMAStartup: 10, DMABytesPerCyc: 2,
		PIOWordCost: 8, LinkBytesPerCyc: 1,
	}
	ram := mem.NewPhysical(16)
	devmap := device.NewMap()
	buf := device.NewBuffer("buf", 4, 4, 0)
	if err := devmap.Attach(buf, 0); err != nil {
		t.Fatal(err)
	}
	extra := device.NewBuffer("buf2", 4, 4, 0)
	if err := devmap.Attach(extra, 4); err != nil {
		t.Fatal(err)
	}
	return &rig{clock: clock, costs: costs, ram: ram, devmap: devmap, buf: buf,
		eng: New(clock, costs, bus.New(clock, costs), ram, devmap)}
}

// TestCompletionErrorIsTypedAndCounted: a completion-time device fault
// reaches the interrupt listeners as a *TransferError wrapping the
// device's error, and the engine's failure counters move.
func TestCompletionErrorIsTypedAndCounted(t *testing.T) {
	clock := sim.NewClock()
	costs := &sim.CostModel{
		CPUHz: 60e6, DMAStartup: 10, DMABytesPerCyc: 2, LinkBytesPerCyc: 1,
	}
	ram := mem.NewPhysical(16)
	devmap := device.NewMap()
	faulty := device.NewFaulty(device.NewBuffer("buf", 4, 0, 0))
	if err := devmap.Attach(faulty, 0); err != nil {
		t.Fatal(err)
	}
	eng := New(clock, costs, bus.New(clock, costs), ram, devmap)

	var got error
	calls := 0
	eng.OnComplete(func(err error) { calls++; got = err })

	ram.Write(0x1000, []byte{1, 2, 3, 4})
	faulty.FailNext = 1
	if err := eng.Start(0x1000, addr.DevProxy(0, 0), 4); err != nil {
		t.Fatal(err)
	}
	clock.RunUntilIdle()

	if calls != 1 {
		t.Fatalf("completion fired %d times", calls)
	}
	var te *TransferError
	if !errors.As(got, &te) {
		t.Fatalf("completion error = %v (%T), want *TransferError", got, got)
	}
	if te.Kind != FaultDevice || te.Stage != "complete" {
		t.Fatalf("kind=%v stage=%q", te.Kind, te.Stage)
	}
	if !errors.Is(got, device.ErrInjected) {
		t.Fatalf("cause not unwrapped: %v", got)
	}
	fails, failBytes := eng.FailStats()
	if fails != 1 || failBytes != 4 {
		t.Fatalf("FailStats = %d/%d, want 1/4", fails, failBytes)
	}
	done, bytes := eng.Stats()
	if done != 0 || bytes != 0 {
		t.Fatalf("failed transfer counted as success: %d/%d", done, bytes)
	}

	// The engine is idle and reusable.
	if eng.Busy() {
		t.Fatal("engine busy after failed completion")
	}
	if err := eng.Start(0x1000, addr.DevProxy(0, 64), 4); err != nil {
		t.Fatal(err)
	}
	clock.RunUntilIdle()
	done, _ = eng.Stats()
	if done != 1 {
		t.Fatal("post-failure transfer did not complete")
	}
}

// TestDevToMemCompletionFault covers the read direction: the device's
// Read fails, the memory side is untouched, the error is typed.
func TestDevToMemCompletionFault(t *testing.T) {
	clock := sim.NewClock()
	costs := &sim.CostModel{
		CPUHz: 60e6, DMAStartup: 10, DMABytesPerCyc: 2, LinkBytesPerCyc: 1,
	}
	ram := mem.NewPhysical(16)
	devmap := device.NewMap()
	faulty := device.NewFaulty(device.NewBuffer("buf", 4, 0, 0))
	if err := devmap.Attach(faulty, 0); err != nil {
		t.Fatal(err)
	}
	eng := New(clock, costs, bus.New(clock, costs), ram, devmap)

	var got error
	eng.OnComplete(func(err error) { got = err })
	ram.Write(0x2000, []byte{0xAA, 0xAA, 0xAA, 0xAA})
	faulty.FailNext = 1
	if err := eng.Start(addr.DevProxy(0, 0), 0x2000, 4); err != nil {
		t.Fatal(err)
	}
	clock.RunUntilIdle()
	var te *TransferError
	if !errors.As(got, &te) || te.Kind != FaultDevice {
		t.Fatalf("error = %v", got)
	}
	w, _ := ram.Read(0x2000, 4)
	for _, b := range w {
		if b != 0xAA {
			t.Fatal("failed read clobbered memory")
		}
	}
}
