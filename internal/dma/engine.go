// Package dma implements the traditional DMA engine of the paper's
// Figure 1: SOURCE, DESTINATION and COUNT registers, a transfer state
// machine that streams data across the I/O bus in burst mode, and a
// completion interrupt. It is used two ways:
//
//   - directly by the kernel's traditional-DMA syscall path (the
//     baseline the paper argues against), and
//   - as the standard engine underneath the UDMA extension in
//     internal/core (paper Figure 4: "the additional hardware is
//     situated between the standard DMA engine and the CPU").
package dma

import (
	"fmt"

	"shrimp/internal/addr"
	"shrimp/internal/bus"
	"shrimp/internal/device"
	"shrimp/internal/mem"
	"shrimp/internal/sim"
)

// Direction of a transfer relative to memory.
type Direction int

const (
	MemToDev Direction = iota
	DevToMem
)

func (d Direction) String() string {
	if d == DevToMem {
		return "dev→mem"
	}
	return "mem→dev"
}

// Engine is one traditional DMA engine. Exactly one transfer is in
// flight at a time; Start while busy is rejected (the UDMA layer and
// the kernel both check Busy first, but hardware refuses regardless).
type Engine struct {
	clock  *sim.Clock
	costs  *sim.CostModel
	iobus  *bus.Bus
	ram    *mem.Physical
	devmap *device.Map

	// Architectural registers, readable by the kernel for invariant I4.
	src, dst addr.PAddr
	count    int

	busy      bool
	dir       Direction
	startAt   sim.Cycles
	doneAt    sim.Cycles
	doneEvent *sim.Event

	// onComplete is the interrupt line: every registered listener fires
	// at completion time (UDMA state machine, kernel interrupt handler).
	onComplete []func(err error)

	transfers uint64
	bytes     uint64
}

// New wires an engine to its node's clock, bus, RAM and device map.
func New(clock *sim.Clock, costs *sim.CostModel, iobus *bus.Bus, ram *mem.Physical, devmap *device.Map) *Engine {
	if clock == nil || costs == nil || iobus == nil || ram == nil || devmap == nil {
		panic("dma: New requires non-nil dependencies")
	}
	return &Engine{clock: clock, costs: costs, iobus: iobus, ram: ram, devmap: devmap}
}

// OnComplete registers an interrupt listener invoked (in registration
// order) when each transfer finishes. The error is non-nil if the
// transfer aborted (bus error, device rejection).
func (e *Engine) OnComplete(fn func(err error)) {
	e.onComplete = append(e.onComplete, fn)
}

// Busy reports whether a transfer is in flight.
func (e *Engine) Busy() bool { return e.busy }

// Source returns the SOURCE register (valid while busy; kernels read it
// for invariant I4's remap check).
func (e *Engine) Source() addr.PAddr { return e.src }

// Destination returns the DESTINATION register.
func (e *Engine) Destination() addr.PAddr { return e.dst }

// Count returns the COUNT register as programmed.
func (e *Engine) Count() int { return e.count }

// Remaining estimates the bytes not yet transferred at the current
// time, interpolating linearly over the burst (this feeds the
// REMAINING-BYTES field of the UDMA status word). Zero when idle.
func (e *Engine) Remaining() int {
	if !e.busy {
		return 0
	}
	now := e.clock.Now()
	if now >= e.doneAt {
		return 0
	}
	if now <= e.startAt {
		return e.count
	}
	total := float64(e.doneAt - e.startAt)
	left := float64(e.doneAt-now) / total
	return int(float64(e.count) * left)
}

// DoneAt returns the completion time of the in-flight transfer (valid
// while busy).
func (e *Engine) DoneAt() sim.Cycles { return e.doneAt }

// Stats returns the number of completed transfers and bytes moved.
func (e *Engine) Stats() (transfers, bytes uint64) { return e.transfers, e.bytes }

// Start programs the registers and begins a transfer. Exactly one of
// src/dst must be a real-memory address and the other a device-proxy
// address; the direction is inferred. The transfer occupies the I/O
// bus in burst mode and completes asynchronously: data moves and the
// completion interrupt fires when the simulated clock reaches the
// transfer's end time.
//
// Start validates against the device (alignment, bounds) before
// accepting; a rejected transfer leaves the engine idle.
func (e *Engine) Start(src, dst addr.PAddr, count int) error {
	if e.busy {
		return fmt.Errorf("dma: engine busy until cycle %d", e.doneAt)
	}
	if count <= 0 {
		return fmt.Errorf("dma: byte count %d must be positive", count)
	}

	srcR, dstR := addr.RegionOf(src), addr.RegionOf(dst)
	var dir Direction
	switch {
	case srcR == addr.RegionMemory && dstR == addr.RegionDevProxy:
		dir = MemToDev
	case srcR == addr.RegionDevProxy && dstR == addr.RegionMemory:
		dir = DevToMem
	default:
		return fmt.Errorf("dma: unsupported transfer %s → %s", srcR, dstR)
	}

	memA, devA := src, dst
	if dir == DevToMem {
		memA, devA = dst, src
	}
	if !e.ram.Contains(memA, count) {
		return fmt.Errorf("dma: memory range [%#x,+%d) outside RAM", uint32(memA), count)
	}
	dev, da, ok := e.devmap.Resolve(devA)
	if !ok {
		return fmt.Errorf("dma: no device decodes %#x", uint32(devA))
	}
	if bits := dev.CheckTransfer(da, count, dir == MemToDev); bits != 0 {
		return fmt.Errorf("dma: device %s rejected transfer: error bits %#x", dev.Name(), uint32(bits))
	}

	e.src, e.dst, e.count, e.dir = src, dst, count, dir
	e.busy = true

	devLat := dev.TransferLatency(da, count)
	start, end := e.iobus.ReserveBurst(e.clock.Now(), count)
	e.startAt = start
	e.doneAt = end + devLat

	e.doneEvent = e.clock.Schedule(e.doneAt, "dma-complete", func() {
		e.complete(dev, da, dir, memA, count)
	})
	return nil
}

// complete moves the data and fires the interrupt. Runs at doneAt.
func (e *Engine) complete(dev device.Device, da device.DevAddr, dir Direction, memA addr.PAddr, count int) {
	var err error
	switch dir {
	case MemToDev:
		var data []byte
		data, err = e.ram.Read(memA, count)
		if err == nil {
			err = dev.Write(da, data, e.clock.Now())
		}
	case DevToMem:
		var data []byte
		data, err = dev.Read(da, count, e.clock.Now())
		if err == nil {
			err = e.ram.Write(memA, data)
		}
	}
	e.busy = false
	e.doneEvent = nil
	if err == nil {
		e.transfers++
		e.bytes += uint64(count)
	}
	for _, fn := range e.onComplete {
		fn(err)
	}
}

// Abort cancels an in-flight transfer without moving data or firing the
// completion interrupt. The paper notes a termination mechanism "could
// be useful for dealing with memory system errors"; the kernel also
// uses it in fault-injection tests.
func (e *Engine) Abort() {
	if !e.busy {
		return
	}
	e.clock.Cancel(e.doneEvent)
	e.doneEvent = nil
	e.busy = false
}
