// Package dma implements the traditional DMA engine of the paper's
// Figure 1: SOURCE, DESTINATION and COUNT registers, a transfer state
// machine that streams data across the I/O bus in burst mode, and a
// completion interrupt. It is used two ways:
//
//   - directly by the kernel's traditional-DMA syscall path (the
//     baseline the paper argues against), and
//   - as the standard engine underneath the UDMA extension in
//     internal/core (paper Figure 4: "the additional hardware is
//     situated between the standard DMA engine and the CPU").
package dma

import (
	"fmt"

	"shrimp/internal/addr"
	"shrimp/internal/bus"
	"shrimp/internal/device"
	"shrimp/internal/mem"
	"shrimp/internal/sim"
	"shrimp/internal/telemetry"
)

// FaultKind classifies why a transfer failed. The kind distinguishes
// conditions the software above can retry or must report: a busy engine
// is transient, a device rejection carries status bits for the user, a
// bus error is the paper's "memory system error that the DMA hardware
// cannot handle transparently".
type FaultKind int

const (
	FaultNone FaultKind = iota
	// FaultBusy: Start was called while a transfer was in flight.
	FaultBusy
	// FaultBadRequest: malformed request (non-positive count, endpoint
	// regions the engine cannot pair).
	FaultBadRequest
	// FaultBusError: a memory endpoint fell outside installed RAM, or
	// RAM refused the access at completion time.
	FaultBusError
	// FaultDeviceReject: the device's CheckTransfer refused the request
	// at Start time (alignment, bounds, invalid entry, read-only).
	FaultDeviceReject
	// FaultDevice: the device failed the data movement at completion
	// time (an injected fault, a broken block, a dead link).
	FaultDevice
)

func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultBusy:
		return "busy"
	case FaultBadRequest:
		return "bad-request"
	case FaultBusError:
		return "bus-error"
	case FaultDeviceReject:
		return "device-reject"
	case FaultDevice:
		return "device-fault"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// TransferError is the typed per-transfer error the engine reports,
// both synchronously from Start and asynchronously through the
// completion interrupt. Callers inspect Kind to decide between retry,
// user-visible status bits, and the kernel's machine-check path.
type TransferError struct {
	Kind     FaultKind
	Stage    string // "start" or "complete"
	Src, Dst addr.PAddr
	Count    int
	Bits     device.ErrBits // device error bits, when the device reported any
	Err      error          // underlying cause, if any
}

func (e *TransferError) Error() string {
	s := fmt.Sprintf("dma: %s %s→%s (%dB) failed at %s",
		e.Kind, fmtAddr(e.Src), fmtAddr(e.Dst), e.Count, e.Stage)
	if e.Bits != 0 {
		s += fmt.Sprintf(": error bits %#x", uint32(e.Bits))
	}
	if e.Err != nil {
		s += ": " + e.Err.Error()
	}
	return s
}

// Unwrap exposes the underlying cause for errors.Is/As chains (e.g.
// device.ErrInjected from a fault injector).
func (e *TransferError) Unwrap() error { return e.Err }

func fmtAddr(a addr.PAddr) string { return fmt.Sprintf("%#x", uint32(a)) }

// Direction of a transfer relative to memory.
type Direction int

const (
	MemToDev Direction = iota
	DevToMem
)

func (d Direction) String() string {
	if d == DevToMem {
		return "dev→mem"
	}
	return "mem→dev"
}

// Engine is one traditional DMA engine. Exactly one transfer is in
// flight at a time; Start while busy is rejected (the UDMA layer and
// the kernel both check Busy first, but hardware refuses regardless).
type Engine struct {
	clock  *sim.Clock
	costs  *sim.CostModel
	iobus  *bus.Bus
	ram    *mem.Physical
	devmap *device.Map

	// Architectural registers, readable by the kernel for invariant I4.
	src, dst addr.PAddr
	count    int

	busy      bool
	dir       Direction
	startAt   sim.Cycles
	doneAt    sim.Cycles
	doneEvent *sim.Event

	// onComplete is the interrupt line: every registered listener fires
	// at completion time (UDMA state machine, kernel interrupt handler).
	onComplete []func(err error)

	transfers   uint64
	bytes       uint64
	failures    uint64
	failedBytes uint64

	m engineMetrics
}

// engineMetrics holds the engine's telemetry instruments (all nil
// no-ops until SetMetrics attaches a live scope).
type engineMetrics struct {
	scope     *telemetry.Scope
	transfers *telemetry.Counter
	failures  *telemetry.Counter
	bytes     *telemetry.Histogram
	cycles    *telemetry.Histogram
}

// SetMetrics attaches telemetry instruments (nil scope disables them).
func (e *Engine) SetMetrics(s *telemetry.Scope) {
	e.m = engineMetrics{
		scope:     s,
		transfers: s.Counter("dma_transfers"),
		failures:  s.Counter("dma_failures"),
		bytes:     s.Histogram("dma_transfer_bytes"),
		cycles:    s.Histogram("dma_transfer_cycles"),
	}
}

// New wires an engine to its node's clock, bus, RAM and device map.
func New(clock *sim.Clock, costs *sim.CostModel, iobus *bus.Bus, ram *mem.Physical, devmap *device.Map) *Engine {
	if clock == nil || costs == nil || iobus == nil || ram == nil || devmap == nil {
		panic("dma: New requires non-nil dependencies")
	}
	return &Engine{clock: clock, costs: costs, iobus: iobus, ram: ram, devmap: devmap}
}

// OnComplete registers an interrupt listener invoked (in registration
// order) when each transfer finishes. The error is non-nil if the
// transfer aborted (bus error, device rejection).
func (e *Engine) OnComplete(fn func(err error)) {
	e.onComplete = append(e.onComplete, fn)
}

// Busy reports whether a transfer is in flight.
func (e *Engine) Busy() bool { return e.busy }

// Source returns the SOURCE register (valid while busy; kernels read it
// for invariant I4's remap check).
func (e *Engine) Source() addr.PAddr { return e.src }

// Destination returns the DESTINATION register.
func (e *Engine) Destination() addr.PAddr { return e.dst }

// Count returns the COUNT register as programmed.
func (e *Engine) Count() int { return e.count }

// Remaining estimates the bytes not yet transferred at the current
// time, interpolating linearly over the burst (this feeds the
// REMAINING-BYTES field of the UDMA status word). Zero when idle.
func (e *Engine) Remaining() int {
	if !e.busy {
		return 0
	}
	now := e.clock.Now()
	if now >= e.doneAt {
		return 0
	}
	if now <= e.startAt {
		return e.count
	}
	total := float64(e.doneAt - e.startAt)
	left := float64(e.doneAt-now) / total
	return int(float64(e.count) * left)
}

// DoneAt returns the completion time of the in-flight transfer (valid
// while busy).
func (e *Engine) DoneAt() sim.Cycles { return e.doneAt }

// Stats returns the number of completed transfers and bytes moved.
func (e *Engine) Stats() (transfers, bytes uint64) { return e.transfers, e.bytes }

// FailStats returns the number of failed transfers and the bytes they
// would have moved.
func (e *Engine) FailStats() (failures, failedBytes uint64) { return e.failures, e.failedBytes }

// Start programs the registers and begins a transfer. Exactly one of
// src/dst must be a real-memory address and the other a device-proxy
// address; the direction is inferred. The transfer occupies the I/O
// bus in burst mode and completes asynchronously: data moves and the
// completion interrupt fires when the simulated clock reaches the
// transfer's end time.
//
// Start validates against the device (alignment, bounds) before
// accepting; a rejected transfer leaves the engine idle.
func (e *Engine) Start(src, dst addr.PAddr, count int) error {
	startErr := func(kind FaultKind, bits device.ErrBits, cause error) *TransferError {
		return &TransferError{Kind: kind, Stage: "start", Src: src, Dst: dst,
			Count: count, Bits: bits, Err: cause}
	}
	if e.busy {
		return startErr(FaultBusy, 0, fmt.Errorf("engine busy until cycle %d", e.doneAt))
	}
	if count <= 0 {
		return startErr(FaultBadRequest, 0, fmt.Errorf("byte count %d must be positive", count))
	}

	srcR, dstR := addr.RegionOf(src), addr.RegionOf(dst)
	var dir Direction
	switch {
	case srcR == addr.RegionMemory && dstR == addr.RegionDevProxy:
		dir = MemToDev
	case srcR == addr.RegionDevProxy && dstR == addr.RegionMemory:
		dir = DevToMem
	default:
		return startErr(FaultBadRequest, 0, fmt.Errorf("unsupported transfer %s → %s", srcR, dstR))
	}

	memA, devA := src, dst
	if dir == DevToMem {
		memA, devA = dst, src
	}
	if !e.ram.Contains(memA, count) {
		return startErr(FaultBusError, 0, fmt.Errorf("memory range [%#x,+%d) outside RAM", uint32(memA), count))
	}
	dev, da, ok := e.devmap.Resolve(devA)
	if !ok {
		return startErr(FaultDeviceReject, device.ErrBounds, fmt.Errorf("no device decodes %#x", uint32(devA)))
	}
	if bits := dev.CheckTransfer(da, count, dir == MemToDev); bits != 0 {
		return startErr(FaultDeviceReject, bits, fmt.Errorf("device %s rejected transfer", dev.Name()))
	}

	e.src, e.dst, e.count, e.dir = src, dst, count, dir
	e.busy = true

	devLat := dev.TransferLatency(da, count)
	start, end := e.iobus.ReserveBurst(e.clock.Now(), count)
	e.startAt = start
	e.doneAt = end + devLat

	e.doneEvent = e.clock.Schedule(e.doneAt, "dma-complete", func() {
		e.complete(dev, da, dir, memA, count)
	})
	return nil
}

// complete moves the data and fires the interrupt. Runs at doneAt.
func (e *Engine) complete(dev device.Device, da device.DevAddr, dir Direction, memA addr.PAddr, count int) {
	// A completion-time failure is classified by which side of the bus
	// refused: RAM errors are bus errors, device errors are device
	// faults. Both are wrapped as a TransferError so listeners see one
	// typed shape on the interrupt line.
	var err error
	kind := FaultNone
	switch dir {
	case MemToDev:
		var data []byte
		if data, err = e.ram.Read(memA, count); err != nil {
			kind = FaultBusError
		} else if err = dev.Write(da, data, e.clock.Now()); err != nil {
			kind = FaultDevice
		}
	case DevToMem:
		var data []byte
		if data, err = dev.Read(da, count, e.clock.Now()); err != nil {
			kind = FaultDevice
		} else if err = e.ram.Write(memA, data); err != nil {
			kind = FaultBusError
		}
	}
	e.busy = false
	e.doneEvent = nil
	if err == nil {
		e.transfers++
		e.bytes += uint64(count)
		e.m.transfers.Inc()
	} else {
		e.failures++
		e.failedBytes += uint64(count)
		e.m.failures.Inc()
		err = &TransferError{Kind: kind, Stage: "complete", Src: e.src, Dst: e.dst,
			Count: count, Err: err}
	}
	e.m.bytes.Observe(uint64(count))
	now := e.clock.Now()
	e.m.cycles.Observe(uint64(now - e.startAt))
	e.m.scope.Span("dma", dir.String(), e.startAt, now, uint64(count), "")
	for _, fn := range e.onComplete {
		fn(err)
	}
}

// Abort cancels an in-flight transfer without moving data or firing the
// completion interrupt. The paper notes a termination mechanism "could
// be useful for dealing with memory system errors"; the kernel also
// uses it in fault-injection tests.
func (e *Engine) Abort() {
	if !e.busy {
		return
	}
	e.clock.Cancel(e.doneEvent)
	e.doneEvent = nil
	e.busy = false
}
