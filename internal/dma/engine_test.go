package dma

import (
	"bytes"
	"testing"

	"shrimp/internal/addr"
	"shrimp/internal/bus"
	"shrimp/internal/device"
	"shrimp/internal/mem"
	"shrimp/internal/sim"
)

type rig struct {
	clock  *sim.Clock
	costs  *sim.CostModel
	ram    *mem.Physical
	devmap *device.Map
	buf    *device.Buffer
	eng    *Engine
}

func newRig(t *testing.T, devLatency sim.Cycles) *rig {
	t.Helper()
	clock := sim.NewClock()
	costs := &sim.CostModel{
		CPUHz:           60e6,
		DMAStartup:      10,
		DMABytesPerCyc:  2,
		PIOWordCost:     8,
		LinkBytesPerCyc: 1,
	}
	ram := mem.NewPhysical(16)
	devmap := device.NewMap()
	buf := device.NewBuffer("buf", 4, 0, devLatency)
	if err := devmap.Attach(buf, 0); err != nil {
		t.Fatal(err)
	}
	iobus := bus.New(clock, costs)
	return &rig{
		clock: clock, costs: costs, ram: ram, devmap: devmap, buf: buf,
		eng: New(clock, costs, iobus, ram, devmap),
	}
}

func TestMemToDevTransfer(t *testing.T) {
	r := newRig(t, 0)
	payload := []byte("SHRIMP deliberate update payload")
	if err := r.ram.Write(0x2000, payload); err != nil {
		t.Fatal(err)
	}

	if err := r.eng.Start(0x2000, addr.DevProxy(1, 64), len(payload)); err != nil {
		t.Fatal(err)
	}
	if !r.eng.Busy() {
		t.Fatal("engine not busy after Start")
	}
	// Data must not appear before completion.
	if got := r.buf.Bytes(4096+64, len(payload)); bytes.Equal(got, payload) {
		t.Fatal("data arrived before transfer time elapsed")
	}
	r.clock.RunUntilIdle()
	if r.eng.Busy() {
		t.Fatal("engine busy after completion")
	}
	if got := r.buf.Bytes(4096+64, len(payload)); !bytes.Equal(got, payload) {
		t.Fatalf("device got %q, want %q", got, payload)
	}
	tr, b := r.eng.Stats()
	if tr != 1 || b != uint64(len(payload)) {
		t.Fatalf("stats = (%d,%d)", tr, b)
	}
}

func TestDevToMemTransfer(t *testing.T) {
	r := newRig(t, 0)
	payload := []byte("incoming packet data")
	r.buf.SetBytes(200, payload)

	if err := r.eng.Start(addr.DevProxy(0, 200), 0x3000, len(payload)); err != nil {
		t.Fatal(err)
	}
	r.clock.RunUntilIdle()
	got, _ := r.ram.Read(0x3000, len(payload))
	if !bytes.Equal(got, payload) {
		t.Fatalf("RAM got %q, want %q", got, payload)
	}
}

func TestTransferTiming(t *testing.T) {
	r := newRig(t, 0)
	r.ram.Write(0, make([]byte, 100))
	if err := r.eng.Start(0, addr.DevProxy(0, 0), 100); err != nil {
		t.Fatal(err)
	}
	// 10 startup + 100/2 transfer = 60 cycles.
	if r.eng.DoneAt() != 60 {
		t.Fatalf("DoneAt = %d, want 60", r.eng.DoneAt())
	}
	r.clock.Advance(59)
	if !r.eng.Busy() {
		t.Fatal("engine finished early")
	}
	r.clock.Advance(1)
	if r.eng.Busy() {
		t.Fatal("engine still busy at DoneAt")
	}
}

func TestDeviceLatencyAdds(t *testing.T) {
	r := newRig(t, 40)
	r.eng.Start(0, addr.DevProxy(0, 0), 100)
	if r.eng.DoneAt() != 100 { // 60 bus + 40 device
		t.Fatalf("DoneAt = %d, want 100", r.eng.DoneAt())
	}
}

func TestCompletionInterrupt(t *testing.T) {
	r := newRig(t, 0)
	var order []string
	var gotErr error = errSentinel
	r.eng.OnComplete(func(err error) { order = append(order, "first"); gotErr = err })
	r.eng.OnComplete(func(err error) { order = append(order, "second") })
	r.eng.Start(0, addr.DevProxy(0, 0), 8)
	r.clock.RunUntilIdle()
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("listeners fired %v", order)
	}
	if gotErr != nil {
		t.Fatalf("completion error = %v, want nil", gotErr)
	}
}

var errSentinel = bytes.ErrTooLarge

func TestRegistersReadableWhileBusy(t *testing.T) {
	r := newRig(t, 0)
	src, dst := addr.PAddr(0x1000), addr.DevProxy(2, 0)
	r.eng.Start(src, dst, 256)
	if r.eng.Source() != src || r.eng.Destination() != dst || r.eng.Count() != 256 {
		t.Fatalf("registers = %#x,%#x,%d", uint32(r.eng.Source()), uint32(r.eng.Destination()), r.eng.Count())
	}
}

func TestRemainingInterpolates(t *testing.T) {
	r := newRig(t, 0)
	r.eng.Start(0, addr.DevProxy(0, 0), 100) // done at 60
	if got := r.eng.Remaining(); got != 100 {
		t.Fatalf("Remaining at start = %d, want 100", got)
	}
	r.clock.Advance(30)
	got := r.eng.Remaining()
	if got <= 0 || got >= 100 {
		t.Fatalf("Remaining mid-flight = %d, want in (0,100)", got)
	}
	r.clock.Advance(30)
	if got := r.eng.Remaining(); got != 0 {
		t.Fatalf("Remaining after done = %d, want 0", got)
	}
}

func TestStartWhileBusyRejected(t *testing.T) {
	r := newRig(t, 0)
	if err := r.eng.Start(0, addr.DevProxy(0, 0), 8); err != nil {
		t.Fatal(err)
	}
	if err := r.eng.Start(0x1000, addr.DevProxy(0, 512), 8); err == nil {
		t.Fatal("second Start while busy succeeded")
	}
	r.clock.RunUntilIdle()
	if err := r.eng.Start(0x1000, addr.DevProxy(0, 512), 8); err != nil {
		t.Fatalf("Start after completion failed: %v", err)
	}
}

func TestBadRegionCombinations(t *testing.T) {
	r := newRig(t, 0)
	cases := []struct {
		name     string
		src, dst addr.PAddr
	}{
		{"mem to mem", 0x1000, 0x2000},
		{"dev to dev", addr.DevProxy(0, 0), addr.DevProxy(1, 0)},
		{"proxy-region src", addr.PAddr(addr.MemProxyBase), 0x1000},
		{"kernel dst", 0x1000, addr.PAddr(addr.KernelBase)},
	}
	for _, tc := range cases {
		if err := r.eng.Start(tc.src, tc.dst, 8); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
	if r.eng.Busy() {
		t.Fatal("engine busy after rejected starts")
	}
}

func TestBadCountRejected(t *testing.T) {
	r := newRig(t, 0)
	for _, n := range []int{0, -4} {
		if err := r.eng.Start(0, addr.DevProxy(0, 0), n); err == nil {
			t.Errorf("count %d accepted", n)
		}
	}
}

func TestOutOfRAMRejected(t *testing.T) {
	r := newRig(t, 0)
	far := addr.PAddr(15*addr.PageSize + 4090)
	if err := r.eng.Start(far, addr.DevProxy(0, 0), 64); err == nil {
		t.Fatal("transfer spanning RAM end accepted")
	}
}

func TestUnmappedDeviceRejected(t *testing.T) {
	r := newRig(t, 0)
	if err := r.eng.Start(0, addr.DevProxy(500, 0), 8); err == nil {
		t.Fatal("transfer to undecoded device page accepted")
	}
}

func TestDeviceValidationRejected(t *testing.T) {
	clock := sim.NewClock()
	costs := &sim.CostModel{CPUHz: 60e6, DMAStartup: 1, DMABytesPerCyc: 1, LinkBytesPerCyc: 1}
	ram := mem.NewPhysical(4)
	devmap := device.NewMap()
	strict := device.NewBuffer("strict", 1, 4, 0)
	devmap.Attach(strict, 0)
	eng := New(clock, costs, bus.New(clock, costs), ram, devmap)

	if err := eng.Start(0, addr.DevProxy(0, 2), 8); err == nil {
		t.Fatal("misaligned transfer accepted")
	}
	if err := eng.Start(0, addr.DevProxy(0, 0), 7); err == nil {
		t.Fatal("misaligned length accepted")
	}
}

func TestAbort(t *testing.T) {
	r := newRig(t, 0)
	fired := false
	r.eng.OnComplete(func(error) { fired = true })
	r.ram.Write(0, []byte{1, 2, 3, 4})
	r.eng.Start(0, addr.DevProxy(0, 0), 4)
	r.eng.Abort()
	if r.eng.Busy() {
		t.Fatal("busy after abort")
	}
	r.clock.RunUntilIdle()
	if fired {
		t.Fatal("completion interrupt fired after abort")
	}
	if got := r.buf.Bytes(0, 4); bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Fatal("aborted transfer moved data")
	}
	r.eng.Abort() // idle abort is a no-op
}

func TestBackToBackTransfersShareBus(t *testing.T) {
	r := newRig(t, 0)
	r.eng.Start(0, addr.DevProxy(0, 0), 100)
	r.clock.RunUntilIdle()
	first := r.clock.Now()
	r.eng.Start(0, addr.DevProxy(0, 512), 100)
	r.clock.RunUntilIdle()
	if r.clock.Now()-first != 60 {
		t.Fatalf("second transfer took %d cycles, want 60", r.clock.Now()-first)
	}
}

func TestDirectionString(t *testing.T) {
	if MemToDev.String() != "mem→dev" || DevToMem.String() != "dev→mem" {
		t.Fatal("direction strings wrong")
	}
}

func TestNewRequiresDeps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with nils did not panic")
		}
	}()
	New(nil, nil, nil, nil, nil)
}
