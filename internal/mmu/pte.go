// Package mmu implements the simulated machine's memory management
// unit: per-process two-level page tables, hardware-maintained
// referenced/dirty bits, a TLB with LRU replacement, and the fault
// taxonomy the kernel's demand-paging and proxy-mapping code depends
// on.
//
// The UDMA mechanism (paper Sections 3–4) does all of its permission
// checking and virtual-to-physical translation here — that is the whole
// point: a proxy page is just a page-table entry whose frame number
// lands in a proxy region of the physical address space, so the
// ordinary MMU enforces UDMA protection for free.
package mmu

import (
	"fmt"

	"shrimp/internal/addr"
)

// Access distinguishes read and write references for permission checks.
type Access int

const (
	Read Access = iota
	Write
)

func (a Access) String() string {
	if a == Write {
		return "write"
	}
	return "read"
}

// PTE is one page-table entry. PPN is a *physical page number including
// region bits* (physical address >> 12), so an entry can map a virtual
// page onto real memory, memory proxy space, or device proxy space; the
// region bits travel through translation untouched, which is how the
// UDMA hardware recognizes proxy references on the bus.
type PTE struct {
	// Valid means the process has a legitimate mapping for the page
	// (possibly swapped out). An invalid/absent entry means the access
	// is illegal: FaultUnmapped.
	Valid bool
	// Present means the page is in core: PPN names its frame. A valid
	// but non-present page is on backing store (SwapSlot).
	Present bool
	// Writable allows stores. The kernel toggles this on proxy pages to
	// maintain invariant I3 (proxy writable ⇒ real page dirty).
	Writable bool
	// Uncached marks the page as uncachable; proxy pages are always
	// uncached (the paper: proxy space "is uncachable and it is not
	// backed by any real physical memory").
	Uncached bool
	// Dirty and Referenced are maintained by the MMU on access, as on
	// x86. The kernel clears Dirty when it cleans a page.
	Dirty      bool
	Referenced bool
	// PPN is the physical page number (with region bits) when Present.
	PPN uint32
	// SwapSlot is the backing-store slot when Valid && !Present.
	SwapSlot uint32
}

// PAddr composes the physical address this entry maps va's offset to.
func (e *PTE) PAddr(va addr.VAddr) addr.PAddr {
	return addr.PAddr(e.PPN<<addr.PageShift | addr.PageOff(va))
}

const (
	dirBits   = 10
	tableBits = 10
	dirSize   = 1 << dirBits
	tableSize = 1 << tableBits
)

// AddressSpace is one process's two-level page table: a 1024-entry
// directory of 1024-entry tables, covering the full 32-bit space
// (4 GB / 4 KB pages = 2^20 pages = dirSize * tableSize).
type AddressSpace struct {
	// ASID tags TLB entries so the TLB need not be flushed wholesale on
	// context switch (the simulated hardware supports ASIDs; a flushing
	// configuration is available via TLB.FlushAll).
	ASID int

	dir [dirSize]*[tableSize]PTE

	mapped int // count of Valid entries, for introspection
}

// NewAddressSpace returns an empty address space with the given ASID.
func NewAddressSpace(asid int) *AddressSpace {
	return &AddressSpace{ASID: asid}
}

// Lookup returns the PTE for vpn, or nil if no valid entry exists.
// The returned pointer aliases the table: mutations through it are the
// kernel editing the page table (callers must then flush the TLB page).
func (as *AddressSpace) Lookup(vpn uint32) *PTE {
	t := as.dir[vpn>>tableBits]
	if t == nil {
		return nil
	}
	e := &t[vpn&(tableSize-1)]
	if !e.Valid {
		return nil
	}
	return e
}

// Set installs (or overwrites) the PTE for vpn.
func (as *AddressSpace) Set(vpn uint32, pte PTE) {
	di := vpn >> tableBits
	t := as.dir[di]
	if t == nil {
		t = new([tableSize]PTE)
		as.dir[di] = t
	}
	was := t[vpn&(tableSize-1)].Valid
	t[vpn&(tableSize-1)] = pte
	if pte.Valid && !was {
		as.mapped++
	} else if !pte.Valid && was {
		as.mapped--
	}
}

// Clear removes any mapping for vpn.
func (as *AddressSpace) Clear(vpn uint32) {
	di := vpn >> tableBits
	t := as.dir[di]
	if t == nil {
		return
	}
	if t[vpn&(tableSize-1)].Valid {
		as.mapped--
	}
	t[vpn&(tableSize-1)] = PTE{}
}

// Mapped returns the number of valid entries.
func (as *AddressSpace) Mapped() int { return as.mapped }

// Walk calls fn for every valid entry, in ascending VPN order. fn may
// mutate the entry; returning false stops the walk.
func (as *AddressSpace) Walk(fn func(vpn uint32, e *PTE) bool) {
	for di := 0; di < dirSize; di++ {
		t := as.dir[di]
		if t == nil {
			continue
		}
		for ti := 0; ti < tableSize; ti++ {
			e := &t[ti]
			if !e.Valid {
				continue
			}
			if !fn(uint32(di<<tableBits|ti), e) {
				return
			}
		}
	}
}

// FaultKind classifies translation failures the way the kernel's fault
// handler dispatches on them.
type FaultKind int

const (
	// FaultUnmapped: no valid mapping — an illegal access ("core dump"
	// in the paper's terms), or a proxy page whose mapping has not been
	// created on demand yet.
	FaultUnmapped FaultKind = iota
	// FaultNotPresent: valid mapping but the page is on backing store;
	// the kernel pages it in.
	FaultNotPresent
	// FaultProtection: a write to a page mapped read-only; for proxy
	// pages this is the I3 dirty-bit protocol firing.
	FaultProtection
)

func (k FaultKind) String() string {
	switch k {
	case FaultUnmapped:
		return "unmapped"
	case FaultNotPresent:
		return "not-present"
	case FaultProtection:
		return "protection"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// Fault describes a failed translation.
type Fault struct {
	Kind   FaultKind
	VA     addr.VAddr
	Access Access
}

func (f *Fault) Error() string {
	return fmt.Sprintf("mmu: %s fault on %s of %#x", f.Kind, f.Access, uint32(f.VA))
}
