package mmu

import (
	"strings"
	"testing"

	"shrimp/internal/addr"
)

func TestPTEPAddrComposition(t *testing.T) {
	e := &PTE{Valid: true, Present: true, PPN: 0x123}
	got := e.PAddr(addr.VAddr(0x7_0456))
	if got != addr.PAddr(0x123<<addr.PageShift|0x456) {
		t.Fatalf("PAddr = %#x", uint32(got))
	}
	// Proxy-region PPNs keep their region bits through composition.
	e.PPN = addr.MemProxyBase>>addr.PageShift | 7
	got = e.PAddr(addr.VAddr(0x10))
	if addr.RegionOf(got) != addr.RegionMemProxy || addr.PPageOff(got) != 0x10 {
		t.Fatalf("proxy PAddr = %#x", uint32(got))
	}
}

func TestFaultStrings(t *testing.T) {
	cases := map[FaultKind]string{
		FaultUnmapped:   "unmapped",
		FaultNotPresent: "not-present",
		FaultProtection: "protection",
		FaultKind(42):   "fault(42)",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%v.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	f := &Fault{Kind: FaultProtection, VA: 0x1234, Access: Write}
	msg := f.Error()
	for _, frag := range []string{"protection", "write", "0x1234"} {
		if !strings.Contains(msg, frag) {
			t.Errorf("fault message %q missing %q", msg, frag)
		}
	}
	if Read.String() != "read" || Write.String() != "write" {
		t.Fatal("access strings wrong")
	}
}

func TestAddressSpaceCoversFullRange(t *testing.T) {
	as := NewAddressSpace(1)
	// Highest and lowest VPNs both work (full 2^20-page coverage).
	lo, hi := uint32(0), uint32(1<<20-1)
	as.Set(lo, PTE{Valid: true, Present: true, PPN: 1})
	as.Set(hi, PTE{Valid: true, Present: true, PPN: 2})
	if as.Lookup(lo) == nil || as.Lookup(hi) == nil {
		t.Fatal("extreme VPNs not addressable")
	}
	if as.Mapped() != 2 {
		t.Fatalf("Mapped = %d", as.Mapped())
	}
}
