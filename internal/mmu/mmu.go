package mmu

import (
	"shrimp/internal/addr"
	"shrimp/internal/sim"
)

// Translation is a successful MMU translation result.
type Translation struct {
	PA       addr.PAddr
	Uncached bool
	// TLBHit reports whether the translation was served from the TLB
	// (diagnostics and the TLB ablation experiment).
	TLBHit bool
}

// MMU performs translation and permission checking against an address
// space's page table, charging TLB-hit or page-walk cycles on the
// machine clock.
type MMU struct {
	tlb   *TLB
	clock *sim.Clock
	costs *sim.CostModel

	walks  uint64
	faults uint64
}

// New returns an MMU using the given TLB, clock and cost model.
func New(tlb *TLB, clock *sim.Clock, costs *sim.CostModel) *MMU {
	if tlb == nil || clock == nil || costs == nil {
		panic("mmu: New requires non-nil tlb, clock and costs")
	}
	return &MMU{tlb: tlb, clock: clock, costs: costs}
}

// TLB exposes the TLB for kernel shootdowns and statistics.
func (m *MMU) TLB() *TLB { return m.tlb }

// Stats returns the number of page-table walks and faults taken.
func (m *MMU) Stats() (walks, faults uint64) { return m.walks, m.faults }

// Translate resolves va for the given access in address space as.
// On success it returns the translation; on failure it returns a Fault
// describing what the kernel must do. Time is charged on the clock:
// nothing extra for a TLB hit (the base memory-reference cost is the
// CPU's to charge), TLBMiss cycles for a page walk, and FaultTrap
// cycles when a fault is raised.
//
// Hardware-maintained bits: a successful read sets Referenced; a
// successful write sets Referenced and Dirty on the PTE. A write
// through a TLB-cached translation still consults the PTE for the
// dirty-bit update, as real MMUs do via a micro-walk.
func (m *MMU) Translate(as *AddressSpace, va addr.VAddr, access Access) (Translation, *Fault) {
	vpn := addr.VPN(va)

	if e := m.tlb.lookup(as.ASID, vpn); e != nil {
		if access == Write && !e.writable {
			// Cached read-only translation cannot satisfy a write;
			// fall through to the full walk so the fault carries
			// current PTE state.
			m.tlb.FlushPage(as.ASID, vpn)
		} else {
			if pte := as.Lookup(vpn); pte != nil {
				pte.Referenced = true
				if access == Write {
					pte.Dirty = true
				}
			}
			return Translation{
				PA:       addr.PAddr(e.ppn<<addr.PageShift | addr.PageOff(va)),
				Uncached: e.uncached,
				TLBHit:   true,
			}, nil
		}
	}

	// Page-table walk.
	m.walks++
	m.clock.Advance(m.costs.TLBMiss)

	pte := as.Lookup(vpn)
	switch {
	case pte == nil:
		return m.fault(FaultUnmapped, va, access)
	case !pte.Present:
		return m.fault(FaultNotPresent, va, access)
	case access == Write && !pte.Writable:
		return m.fault(FaultProtection, va, access)
	}

	pte.Referenced = true
	if access == Write {
		pte.Dirty = true
	}
	m.tlb.insert(as.ASID, vpn, pte.PPN, pte.Writable, pte.Uncached)
	return Translation{PA: pte.PAddr(va), Uncached: pte.Uncached}, nil
}

// Probe translates without charging time, touching reference bits, or
// filling the TLB. The kernel uses it for bookkeeping decisions.
func (m *MMU) Probe(as *AddressSpace, va addr.VAddr, access Access) (Translation, *Fault) {
	pte := as.Lookup(addr.VPN(va))
	switch {
	case pte == nil:
		return Translation{}, &Fault{Kind: FaultUnmapped, VA: va, Access: access}
	case !pte.Present:
		return Translation{}, &Fault{Kind: FaultNotPresent, VA: va, Access: access}
	case access == Write && !pte.Writable:
		return Translation{}, &Fault{Kind: FaultProtection, VA: va, Access: access}
	}
	return Translation{PA: pte.PAddr(va), Uncached: pte.Uncached}, nil
}

func (m *MMU) fault(kind FaultKind, va addr.VAddr, access Access) (Translation, *Fault) {
	m.faults++
	m.clock.Advance(m.costs.FaultTrap)
	return Translation{}, &Fault{Kind: kind, VA: va, Access: access}
}
