package mmu

// tlbEntry caches one translation, tagged by (ASID, VPN).
type tlbEntry struct {
	asid     int
	vpn      uint32
	ppn      uint32
	writable bool
	uncached bool
	lastUse  uint64
	valid    bool
}

// TLB is a fully-associative translation lookaside buffer with LRU
// replacement. Entries are tagged with the owning address space's ASID.
//
// Correctness note: the TLB never caches permission *more* permissive
// than the PTE at fill time, and the kernel must call FlushPage after
// editing a PTE (a real OS does exactly this with INVLPG). The dirty
// bit is not cached: stores consult the PTE so the MMU can set Dirty —
// this mirrors hardware that takes a micro-fault to set the D bit.
type TLB struct {
	entries []tlbEntry
	tick    uint64

	hits   uint64
	misses uint64
}

// NewTLB returns a TLB with the given number of entries (e.g. 64).
// A size of zero disables caching: every translation is a miss, which
// is useful for the TLB ablation benchmarks.
func NewTLB(size int) *TLB {
	if size < 0 {
		size = 0
	}
	return &TLB{entries: make([]tlbEntry, size)}
}

// Size returns the TLB capacity in entries.
func (t *TLB) Size() int { return len(t.entries) }

// Stats returns cumulative hit and miss counts.
func (t *TLB) Stats() (hits, misses uint64) { return t.hits, t.misses }

// lookup returns the cached entry or nil.
func (t *TLB) lookup(asid int, vpn uint32) *tlbEntry {
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.asid == asid && e.vpn == vpn {
			t.tick++
			e.lastUse = t.tick
			t.hits++
			return e
		}
	}
	t.misses++
	return nil
}

// insert fills an entry, evicting the LRU one if needed.
func (t *TLB) insert(asid int, vpn, ppn uint32, writable, uncached bool) {
	if len(t.entries) == 0 {
		return
	}
	victim := 0
	var oldest uint64 = ^uint64(0)
	for i := range t.entries {
		e := &t.entries[i]
		if !e.valid {
			victim = i
			break
		}
		if e.lastUse < oldest {
			oldest = e.lastUse
			victim = i
		}
	}
	t.tick++
	t.entries[victim] = tlbEntry{
		asid: asid, vpn: vpn, ppn: ppn,
		writable: writable, uncached: uncached,
		lastUse: t.tick, valid: true,
	}
}

// FlushPage invalidates any cached translation for (asid, vpn). The
// kernel must call this after changing a PTE.
func (t *TLB) FlushPage(asid int, vpn uint32) {
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.asid == asid && e.vpn == vpn {
			e.valid = false
		}
	}
}

// FlushASID invalidates all translations for one address space.
func (t *TLB) FlushASID(asid int) {
	for i := range t.entries {
		if t.entries[i].asid == asid {
			t.entries[i].valid = false
		}
	}
}

// FlushAll empties the TLB.
func (t *TLB) FlushAll() {
	for i := range t.entries {
		t.entries[i].valid = false
	}
}
