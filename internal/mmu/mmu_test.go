package mmu

import (
	"testing"
	"testing/quick"

	"shrimp/internal/addr"
	"shrimp/internal/sim"
)

func testMMU(tlbSize int) (*MMU, *sim.Clock) {
	clock := sim.NewClock()
	costs := &sim.CostModel{
		CPUHz: 60e6, TLBMiss: 20, FaultTrap: 50,
		DMABytesPerCyc: 1, LinkBytesPerCyc: 1,
	}
	return New(NewTLB(tlbSize), clock, costs), clock
}

func mapPage(as *AddressSpace, vpn, ppn uint32, writable bool) {
	as.Set(vpn, PTE{Valid: true, Present: true, Writable: writable, PPN: ppn})
}

func TestTranslateBasics(t *testing.T) {
	m, _ := testMMU(8)
	as := NewAddressSpace(1)
	mapPage(as, 5, 42, true)

	tr, f := m.Translate(as, 5*addr.PageSize+0x123, Read)
	if f != nil {
		t.Fatalf("fault: %v", f)
	}
	want := addr.PAddr(42*addr.PageSize + 0x123)
	if tr.PA != want {
		t.Fatalf("PA = %#x, want %#x", uint32(tr.PA), uint32(want))
	}
	if tr.TLBHit {
		t.Fatal("first access reported a TLB hit")
	}

	tr2, f := m.Translate(as, 5*addr.PageSize+0x456, Read)
	if f != nil {
		t.Fatalf("fault on second access: %v", f)
	}
	if !tr2.TLBHit {
		t.Fatal("second access missed the TLB")
	}
}

func TestTranslateChargesWalkCycles(t *testing.T) {
	m, clock := testMMU(8)
	as := NewAddressSpace(1)
	mapPage(as, 1, 1, true)

	m.Translate(as, addr.PageSize, Read) // miss: walk
	afterMiss := clock.Now()
	if afterMiss != 20 {
		t.Fatalf("walk charged %d cycles, want 20", afterMiss)
	}
	m.Translate(as, addr.PageSize+4, Read) // hit: free at MMU level
	if clock.Now() != afterMiss {
		t.Fatalf("TLB hit charged %d cycles, want 0", clock.Now()-afterMiss)
	}
}

func TestFaultTaxonomy(t *testing.T) {
	m, _ := testMMU(8)
	as := NewAddressSpace(1)
	mapPage(as, 1, 1, false)                                 // read-only
	as.Set(2, PTE{Valid: true, Present: false, SwapSlot: 7}) // swapped out
	mapPage(as, 3, 3, true)                                  // fine

	cases := []struct {
		name   string
		va     addr.VAddr
		access Access
		want   FaultKind
	}{
		{"unmapped read", 0, Read, FaultUnmapped},
		{"unmapped write", 9 * addr.PageSize, Write, FaultUnmapped},
		{"write to read-only", addr.PageSize, Write, FaultProtection},
		{"swapped out", 2 * addr.PageSize, Read, FaultNotPresent},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, f := m.Translate(as, tc.va, tc.access)
			if f == nil {
				t.Fatal("no fault")
			}
			if f.Kind != tc.want {
				t.Fatalf("fault kind = %v, want %v", f.Kind, tc.want)
			}
			if f.VA != tc.va || f.Access != tc.access {
				t.Fatalf("fault = %+v", f)
			}
		})
	}
	if _, f := m.Translate(as, addr.PageSize, Read); f != nil {
		t.Fatalf("read of read-only page faulted: %v", f)
	}
}

func TestFaultChargesTrapCycles(t *testing.T) {
	m, clock := testMMU(8)
	as := NewAddressSpace(1)
	m.Translate(as, 0, Read)
	if clock.Now() != 20+50 { // walk + trap
		t.Fatalf("fault path charged %d cycles, want 70", clock.Now())
	}
}

func TestReferencedAndDirtyBits(t *testing.T) {
	m, _ := testMMU(8)
	as := NewAddressSpace(1)
	mapPage(as, 1, 1, true)
	pte := as.Lookup(1)

	m.Translate(as, addr.PageSize, Read)
	if !pte.Referenced || pte.Dirty {
		t.Fatalf("after read: ref=%v dirty=%v, want true,false", pte.Referenced, pte.Dirty)
	}
	m.Translate(as, addr.PageSize, Write)
	if !pte.Dirty {
		t.Fatal("write did not set dirty bit")
	}
}

func TestDirtyBitSetEvenOnTLBHit(t *testing.T) {
	m, _ := testMMU(8)
	as := NewAddressSpace(1)
	mapPage(as, 1, 1, true)
	m.Translate(as, addr.PageSize, Read) // fill TLB
	pte := as.Lookup(1)
	pte.Dirty = false

	tr, f := m.Translate(as, addr.PageSize, Write)
	if f != nil || !tr.TLBHit {
		t.Fatalf("expected TLB-hit write, got hit=%v fault=%v", tr.TLBHit, f)
	}
	if !pte.Dirty {
		t.Fatal("TLB-hit write did not set PTE dirty bit")
	}
}

func TestWriteThroughReadOnlyTLBEntryFaults(t *testing.T) {
	m, _ := testMMU(8)
	as := NewAddressSpace(1)
	mapPage(as, 1, 1, false)
	if _, f := m.Translate(as, addr.PageSize, Read); f != nil {
		t.Fatalf("read faulted: %v", f)
	}
	_, f := m.Translate(as, addr.PageSize, Write)
	if f == nil || f.Kind != FaultProtection {
		t.Fatalf("write after cached read-only entry: fault=%v, want protection", f)
	}
}

// The I3 upgrade pattern: kernel makes a proxy page writable after a
// protection fault; the next write must succeed (TLB flushed).
func TestPTEUpgradeVisibleAfterFlush(t *testing.T) {
	m, _ := testMMU(8)
	as := NewAddressSpace(1)
	mapPage(as, 1, 1, false)
	m.Translate(as, addr.PageSize, Read) // cache it

	pte := as.Lookup(1)
	pte.Writable = true
	m.TLB().FlushPage(as.ASID, 1)

	if _, f := m.Translate(as, addr.PageSize, Write); f != nil {
		t.Fatalf("write after upgrade faulted: %v", f)
	}
}

func TestDowngradeRequiresFlush(t *testing.T) {
	m, _ := testMMU(8)
	as := NewAddressSpace(1)
	mapPage(as, 1, 1, true)
	m.Translate(as, addr.PageSize, Write) // cache writable entry

	pte := as.Lookup(1)
	pte.Writable = false
	// Without a flush the stale TLB entry still allows the write — this
	// documents why the kernel MUST flush (as real kernels must).
	if _, f := m.Translate(as, addr.PageSize, Write); f != nil {
		t.Fatalf("stale-TLB write unexpectedly faulted: %v", f)
	}
	m.TLB().FlushPage(as.ASID, 1)
	if _, f := m.Translate(as, addr.PageSize, Write); f == nil {
		t.Fatal("write after downgrade+flush did not fault")
	}
}

func TestUncachedAttributeSurvivesTLB(t *testing.T) {
	m, _ := testMMU(8)
	as := NewAddressSpace(1)
	as.Set(1, PTE{Valid: true, Present: true, Writable: true, Uncached: true,
		PPN: addr.MemProxyBase>>addr.PageShift | 3})

	tr, f := m.Translate(as, addr.PageSize, Read)
	if f != nil || !tr.Uncached {
		t.Fatalf("first: fault=%v uncached=%v", f, tr.Uncached)
	}
	if addr.RegionOf(tr.PA) != addr.RegionMemProxy {
		t.Fatalf("proxy PPN translated to region %v", addr.RegionOf(tr.PA))
	}
	tr, f = m.Translate(as, addr.PageSize+8, Read)
	if f != nil || !tr.Uncached || !tr.TLBHit {
		t.Fatalf("second: fault=%v uncached=%v hit=%v", f, tr.Uncached, tr.TLBHit)
	}
}

func TestASIDIsolation(t *testing.T) {
	m, _ := testMMU(8)
	as1 := NewAddressSpace(1)
	as2 := NewAddressSpace(2)
	mapPage(as1, 1, 10, true)
	mapPage(as2, 1, 20, true)

	tr1, _ := m.Translate(as1, addr.PageSize, Read)
	tr2, _ := m.Translate(as2, addr.PageSize, Read)
	if addr.PFN(tr1.PA) != 10 || addr.PFN(tr2.PA) != 20 {
		t.Fatalf("cross-ASID confusion: %#x / %#x", uint32(tr1.PA), uint32(tr2.PA))
	}
	// Both again — must hit their own entries.
	tr1b, _ := m.Translate(as1, addr.PageSize, Read)
	if !tr1b.TLBHit || addr.PFN(tr1b.PA) != 10 {
		t.Fatalf("ASID 1 re-access: hit=%v pfn=%d", tr1b.TLBHit, addr.PFN(tr1b.PA))
	}
}

func TestTLBEvictionLRU(t *testing.T) {
	m, _ := testMMU(2)
	as := NewAddressSpace(1)
	for vpn := uint32(1); vpn <= 3; vpn++ {
		mapPage(as, vpn, vpn+100, true)
	}
	m.Translate(as, 1*addr.PageSize, Read) // fill 1
	m.Translate(as, 2*addr.PageSize, Read) // fill 2
	m.Translate(as, 1*addr.PageSize, Read) // touch 1 (2 is now LRU)
	m.Translate(as, 3*addr.PageSize, Read) // evicts 2

	tr, _ := m.Translate(as, 1*addr.PageSize, Read)
	if !tr.TLBHit {
		t.Fatal("recently used entry was evicted")
	}
	tr, _ = m.Translate(as, 2*addr.PageSize, Read)
	if tr.TLBHit {
		t.Fatal("LRU entry was not evicted")
	}
}

func TestZeroSizeTLBAlwaysMisses(t *testing.T) {
	m, clock := testMMU(0)
	as := NewAddressSpace(1)
	mapPage(as, 1, 1, true)
	m.Translate(as, addr.PageSize, Read)
	m.Translate(as, addr.PageSize, Read)
	if clock.Now() != 40 { // two walks
		t.Fatalf("zero TLB charged %d cycles, want 40", clock.Now())
	}
	hits, misses := m.TLB().Stats()
	_ = hits
	_ = misses // stats on disabled TLB are unused but must not crash
}

func TestProbeHasNoSideEffects(t *testing.T) {
	m, clock := testMMU(8)
	as := NewAddressSpace(1)
	mapPage(as, 1, 1, true)
	before := clock.Now()
	tr, f := m.Probe(as, addr.PageSize+4, Write)
	if f != nil || tr.PA != addr.PAddr(addr.PageSize+4) {
		t.Fatalf("probe: %v %v", tr, f)
	}
	if clock.Now() != before {
		t.Fatal("Probe charged cycles")
	}
	pte := as.Lookup(1)
	if pte.Referenced || pte.Dirty {
		t.Fatal("Probe touched PTE bits")
	}
	if _, f := m.Probe(as, 5*addr.PageSize, Read); f == nil || f.Kind != FaultUnmapped {
		t.Fatalf("probe of unmapped = %v", f)
	}
}

func TestFlushASIDAndAll(t *testing.T) {
	m, _ := testMMU(8)
	as1, as2 := NewAddressSpace(1), NewAddressSpace(2)
	mapPage(as1, 1, 1, true)
	mapPage(as2, 1, 2, true)
	m.Translate(as1, addr.PageSize, Read)
	m.Translate(as2, addr.PageSize, Read)

	m.TLB().FlushASID(1)
	tr, _ := m.Translate(as1, addr.PageSize, Read)
	if tr.TLBHit {
		t.Fatal("FlushASID(1) left ASID 1 entry")
	}
	tr, _ = m.Translate(as2, addr.PageSize, Read)
	if !tr.TLBHit {
		t.Fatal("FlushASID(1) removed ASID 2 entry")
	}

	m.TLB().FlushAll()
	tr, _ = m.Translate(as2, addr.PageSize, Read)
	if tr.TLBHit {
		t.Fatal("FlushAll left an entry")
	}
}

func TestAddressSpaceSetClearCounts(t *testing.T) {
	as := NewAddressSpace(1)
	if as.Mapped() != 0 {
		t.Fatal("fresh space has mappings")
	}
	mapPage(as, 7, 1, true)
	mapPage(as, 7, 2, true) // overwrite, still one mapping
	if as.Mapped() != 1 {
		t.Fatalf("Mapped = %d, want 1", as.Mapped())
	}
	as.Clear(7)
	as.Clear(7) // double clear: no-op
	if as.Mapped() != 0 {
		t.Fatalf("Mapped = %d, want 0", as.Mapped())
	}
	if as.Lookup(7) != nil {
		t.Fatal("cleared entry still resolves")
	}
	as.Clear(12345) // clear of never-touched directory: no-op
}

func TestWalkVisitsInOrder(t *testing.T) {
	as := NewAddressSpace(1)
	for _, vpn := range []uint32{9000, 3, 1024, 5} {
		mapPage(as, vpn, vpn, true)
	}
	var got []uint32
	as.Walk(func(vpn uint32, e *PTE) bool {
		got = append(got, vpn)
		return true
	})
	want := []uint32{3, 5, 1024, 9000}
	if len(got) != len(want) {
		t.Fatalf("Walk visited %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Walk order %v, want %v", got, want)
		}
	}
	// Early stop.
	count := 0
	as.Walk(func(uint32, *PTE) bool { count++; return false })
	if count != 1 {
		t.Fatalf("Walk continued after false: %d visits", count)
	}
}

// Property: translation preserves the page offset and maps the page
// number via the PTE, for arbitrary in-page offsets.
func TestTranslationOffsetProperty(t *testing.T) {
	m, _ := testMMU(16)
	as := NewAddressSpace(1)
	mapPage(as, 77, 123, true)
	prop := func(off16 uint16) bool {
		off := uint32(off16) % addr.PageSize
		va := addr.VAddr(77*addr.PageSize + off)
		tr, f := m.Translate(as, va, Read)
		if f != nil {
			return false
		}
		return tr.PA == addr.PAddr(123*addr.PageSize+off)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewRequiresDeps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(nil,...) did not panic")
		}
	}()
	New(nil, nil, nil)
}

func TestStatsCount(t *testing.T) {
	m, _ := testMMU(4)
	as := NewAddressSpace(1)
	mapPage(as, 1, 1, true)
	m.Translate(as, addr.PageSize, Read)   // walk
	m.Translate(as, addr.PageSize, Read)   // hit
	m.Translate(as, 9*addr.PageSize, Read) // walk + fault
	walks, faults := m.Stats()
	if walks != 2 || faults != 1 {
		t.Fatalf("Stats = (%d,%d), want (2,1)", walks, faults)
	}
	hits, misses := m.TLB().Stats()
	_ = misses
	if hits != 1 {
		t.Fatalf("TLB hits = %d, want 1", hits)
	}
}
