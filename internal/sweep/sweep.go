// Package sweep is the shared parallel fan-out runner for embarrassingly
// parallel simulation work: seed sweeps (internal/simcheck), fault- and
// loss-rate curves (internal/experiments e12/e13), and the fuzz driver.
//
// Each work item builds its own simulator instance, so items share no
// state and determinism is preserved trivially: parallelism changes
// only wall-clock time, never results. Run returns results in input
// order regardless of which worker finished first, so callers' output
// (reports, tables, JSON artifacts) is byte-identical at any worker
// count — the same invariant internal/cluster maintains for nodes
// within one simulation.
package sweep

import (
	"sync"
	"sync/atomic"
)

// Run evaluates fn(0..n-1) using up to workers goroutines and returns
// the results indexed by input position. workers <= 1 (or n <= 1) runs
// serially on the calling goroutine. Work is handed out by an atomic
// counter so a slow item never blocks the others behind a fixed
// partition.
func Run[T any](n, workers int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return out
}
