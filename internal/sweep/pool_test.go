package sweep

import (
	"sync/atomic"
	"testing"

	"shrimp/internal/raceflag"
)

func TestPoolRunsEveryItemOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 8} {
		p := NewPool(workers)
		for _, n := range []int{0, 1, 3, 17, 100} {
			counts := make([]atomic.Int32, n)
			p.Run(n, func(i int) { counts[i].Add(1) })
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: item %d ran %d times", workers, n, i, got)
				}
			}
		}
		p.Close()
	}
}

func TestPoolNilAndClosedFallBackSerial(t *testing.T) {
	var nilPool *Pool
	ran := 0
	nilPool.Run(5, func(int) { ran++ })
	if ran != 5 {
		t.Fatalf("nil pool ran %d items, want 5", ran)
	}

	p := NewPool(4)
	p.Close()
	ran = 0
	p.Run(5, func(int) { ran++ }) // must not touch the closed channel
	if ran != 5 {
		t.Fatalf("closed pool ran %d items, want 5", ran)
	}
	p.Close() // double Close is harmless
}

func TestPoolReusableAcrossJobs(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var total atomic.Int64
	for round := 0; round < 200; round++ {
		p.Run(13, func(i int) { total.Add(int64(i)) })
	}
	if got := total.Load(); got != 200*13*12/2 {
		t.Fatalf("total = %d, want %d", got, 200*13*12/2)
	}
}

// TestPoolSteadyStateAllocs guards the reason Pool exists: a window
// barrier must not pay goroutine spawns or slice allocations. The job
// closure is prebuilt, exactly as the cluster prebuilds its stepFn.
func TestPoolSteadyStateAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("exact alloc counts are meaningless under -race")
	}
	p := NewPool(4)
	defer p.Close()
	var sink atomic.Int64
	fn := func(i int) { sink.Add(int64(i)) }
	p.Run(16, fn) // warm up
	if n := testing.AllocsPerRun(100, func() { p.Run(16, fn) }); n != 0 {
		t.Fatalf("Pool.Run allocates %.1f per call, want 0", n)
	}
}
