package sweep

import (
	"sync/atomic"
	"testing"
)

func TestRunOrderAndCoverage(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 8, 100} {
		n := 57
		var calls atomic.Int64
		got := Run(n, workers, func(i int) int {
			calls.Add(1)
			return i * i
		})
		if len(got) != n {
			t.Fatalf("workers=%d: len=%d want %d", workers, len(got), n)
		}
		if c := calls.Load(); c != int64(n) {
			t.Fatalf("workers=%d: %d calls want %d", workers, c, n)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d]=%d want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunEmpty(t *testing.T) {
	if got := Run(0, 4, func(i int) int { return i }); got != nil {
		t.Fatalf("n=0: got %v want nil", got)
	}
}
