package sweep

import (
	"sync"
	"sync/atomic"
)

// Pool is a persistent worker crew for repeated same-shaped fan-outs —
// the cluster's per-window node stepping, where Run's spawn-per-call
// goroutines dominated the profile (a lockstep window is tens of
// microseconds; goroutine creation plus teardown is a large fraction of
// that, every window, thousands of windows per run).
//
// A Pool keeps workers-1 goroutines parked on a wake channel; Run posts
// one job (fn, n), wakes exactly the helpers the job can use, and joins
// in on the calling goroutine so the caller's core is never idle. Work
// items are handed out by an atomic counter, same as Run — a slow item
// never blocks the rest behind a fixed partition.
//
// A Pool is not reentrant: one Run at a time, always from the same
// owner (the cluster barrier loop). That matches its only use and keeps
// the steady state allocation-free.
type Pool struct {
	workers int
	wake    chan struct{}
	busy    sync.WaitGroup

	// Current job; written by Run before any wake, read by helpers.
	fn   func(int)
	n    int
	next atomic.Int64
}

// NewPool returns a pool that runs fan-outs on up to workers
// goroutines (the caller counts as one). workers <= 1 spawns nothing;
// Run then degrades to a plain serial loop.
func NewPool(workers int) *Pool {
	p := &Pool{workers: workers}
	if workers > 1 {
		p.wake = make(chan struct{})
		for w := 0; w < workers-1; w++ {
			go p.helper(p.wake)
		}
	}
	return p
}

// helper takes the channel as an argument so Close's p.wake = nil never
// races with a parked goroutine re-reading the field.
func (p *Pool) helper(wake <-chan struct{}) {
	for range wake {
		p.drain()
		p.busy.Done()
	}
}

// drain claims and runs work items until the counter runs out.
func (p *Pool) drain() {
	for {
		i := int(p.next.Add(1)) - 1
		if i >= p.n {
			return
		}
		p.fn(i)
	}
}

// Run evaluates fn(0..n-1) on the pool, returning when all items are
// done. The caller participates, so a nil, closed, or single-worker
// pool simply runs the loop inline. Steady state allocates nothing:
// no goroutines are created and the job state lives in the Pool.
func (p *Pool) Run(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if p == nil || p.wake == nil || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	p.fn = fn
	p.n = n
	p.next.Store(0)
	helpers := p.workers - 1
	if helpers > n-1 {
		helpers = n - 1
	}
	p.busy.Add(helpers)
	for w := 0; w < helpers; w++ {
		p.wake <- struct{}{}
	}
	p.drain()
	p.busy.Wait()
	p.fn = nil
}

// Close retires the worker goroutines. Run remains usable afterwards —
// it falls back to the serial loop — so shutdown ordering between the
// pool's owner and late callers is forgiving.
func (p *Pool) Close() {
	if p == nil || p.wake == nil {
		return
	}
	close(p.wake)
	p.wake = nil
}
