package nic

import (
	"bytes"
	"testing"

	"shrimp/internal/addr"
)

func auPair(t *testing.T) *pair {
	t.Helper()
	p := newPair(t, Config{NIPTPages: 8})
	p.nics[0].SetNIPT(2, NIPTEntry{Valid: true, DestNode: 1, DestPFN: 5})
	return p
}

func drain(p *pair) {
	p.clocks[0].RunUntilIdle()
	p.clocks[1].RunUntilIdle()
}

func TestAutoUpdateSingleWord(t *testing.T) {
	p := auPair(t)
	p.nics[0].SnoopWrite(2, 100, 0xDEADBEEF)
	drain(p) // timeout flush fires
	got, _ := p.rams[1].ReadWord(addr.PAddr(5*addr.PageSize + 100))
	if got != 0xDEADBEEF {
		t.Fatalf("remote word = %#x", got)
	}
	st := p.nics[0].Stats()
	if st.AutoWords != 1 || st.AutoPackets != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAutoUpdateCombinesContiguousWords(t *testing.T) {
	p := auPair(t)
	for i := uint32(0); i < 8; i++ {
		p.nics[0].SnoopWrite(2, 64+i*4, 0x11111111*(i+1))
	}
	drain(p)
	st := p.nics[0].Stats()
	if st.AutoWords != 8 {
		t.Fatalf("AutoWords = %d", st.AutoWords)
	}
	if st.AutoPackets != 1 {
		t.Fatalf("AutoPackets = %d, want 1 combined packet", st.AutoPackets)
	}
	want := make([]byte, 32)
	for i := 0; i < 8; i++ {
		v := uint32(0x11111111 * (i + 1))
		want[i*4] = byte(v)
		want[i*4+1] = byte(v >> 8)
		want[i*4+2] = byte(v >> 16)
		want[i*4+3] = byte(v >> 24)
	}
	got, _ := p.rams[1].Read(addr.PAddr(5*addr.PageSize+64), 32)
	if !bytes.Equal(got, want) {
		t.Fatalf("remote burst = % x", got[:8])
	}
}

func TestAutoUpdateGapFlushes(t *testing.T) {
	p := auPair(t)
	p.nics[0].SnoopWrite(2, 0, 1)
	p.nics[0].SnoopWrite(2, 512, 2) // non-contiguous: first burst flushes
	drain(p)
	if st := p.nics[0].Stats(); st.AutoPackets != 2 {
		t.Fatalf("AutoPackets = %d, want 2", st.AutoPackets)
	}
	w0, _ := p.rams[1].ReadWord(addr.PAddr(5 * addr.PageSize))
	w1, _ := p.rams[1].ReadWord(addr.PAddr(5*addr.PageSize + 512))
	if w0 != 1 || w1 != 2 {
		t.Fatalf("remote words = %d, %d", w0, w1)
	}
}

func TestAutoUpdateFullBufferFlushes(t *testing.T) {
	p := auPair(t)
	words := autoUpdateCombineMax / 4
	for i := 0; i < words+1; i++ {
		p.nics[0].SnoopWrite(2, uint32(i*4), uint32(i))
	}
	// The first flush happened synchronously at the full buffer; the
	// leftover word is still pending.
	if st := p.nics[0].Stats(); st.AutoPackets != 1 {
		t.Fatalf("AutoPackets = %d before drain", st.AutoPackets)
	}
	if !p.nics[0].AutoUpdatePending() {
		t.Fatal("leftover word not pending")
	}
	drain(p)
	if st := p.nics[0].Stats(); st.AutoPackets != 2 {
		t.Fatalf("AutoPackets = %d after drain", st.AutoPackets)
	}
}

func TestAutoUpdateTimeoutFlush(t *testing.T) {
	p := auPair(t)
	p.nics[0].SnoopWrite(2, 0, 7)
	if !p.nics[0].AutoUpdatePending() {
		t.Fatal("word not pending")
	}
	p.clocks[0].Advance(autoUpdateFlushDelay + 1)
	if p.nics[0].AutoUpdatePending() {
		t.Fatal("timeout did not flush")
	}
}

func TestAutoUpdateExplicitFlush(t *testing.T) {
	p := auPair(t)
	p.nics[0].SnoopWrite(2, 0, 7)
	p.nics[0].FlushAutoUpdate()
	if p.nics[0].AutoUpdatePending() {
		t.Fatal("explicit flush left data")
	}
	p.nics[0].FlushAutoUpdate() // idempotent
	drain(p)
	if st := p.nics[0].Stats(); st.AutoPackets != 1 {
		t.Fatalf("AutoPackets = %d", st.AutoPackets)
	}
}

func TestAutoUpdateInvalidEntryDropped(t *testing.T) {
	p := auPair(t)
	p.nics[0].SnoopWrite(5, 0, 1) // entry 5 invalid
	p.nics[0].SnoopWrite(99, 0, 1)
	drain(p)
	st := p.nics[0].Stats()
	if st.AutoDrops != 2 || st.AutoPackets != 0 {
		t.Fatalf("stats = %+v", st)
	}
}
