package nic

// Node crash–restart support: the board half of cluster.CrashPlan.
//
// Crash models a power loss: everything volatile on the board — the
// reliability sublayer's per-destination protocol state, the PIO FIFO,
// the automatic-update combining buffer, the NIPT cache lines — is
// gone. The host-memory structures survive: the authoritative NIPT
// backing table (`nipt`), and the compact epoch memories the
// reclamation machinery already keeps (`senderMem`/`recvMem`). Reboot
// therefore needs to restore nothing explicitly: the NIPT refaults
// line-by-line from the backing table, and reliability state
// resurrects from the epoch memories through the ordinary sender()/
// receiver() pool path, epoch-bumped so peers resynchronize exactly as
// after breakLink.
//
// Determinism: Crash and Reboot are called only by the cluster at
// lockstep barriers (after Backplane.Flush, before any worker runs),
// in node order — the same publication discipline as ReclaimIdle — so
// a chaos run is bit-identical at any worker count. The teardown
// iterates live state in sorted-key order for the same reason.
//
// Byte accounting across the boundary splits two ways:
//
//   - pending/unacked packets wiped here were queued on the dead board;
//     the wipe abandons their *future* (re)transmissions, not any bytes
//     already on the wire (every launched copy is separately accounted
//     where it lands or drops). They go to the CrashAbandoned ledger,
//     which is observability-only.
//   - resequencing-buffer payloads were wire-carried and now can never
//     reach memory; they go to the CrashDropped ledger, which the
//     simcheck wire-conservation audit charges against launched bytes
//     (alongside arrivals while down and receive DMAs invalidated by
//     the generation bump — see DeliverPacket and deliverData).

// Crash powers the board off. Packets already in flight toward it are
// swallowed by the backplane's down-node guard or the DeliverPacket
// down guard; events the pre-crash board scheduled observe the
// generation bump and bail.
func (n *Interface) Crash() {
	n.down = true
	n.gen++
	n.stats.Crashes++

	if n.rel != nil {
		for _, dest := range sortedKeys(n.rel.senders) {
			s := n.rel.senders[dest]
			if s.timer != nil {
				n.clock.Cancel(s.timer)
				s.timer = nil
			}
			for _, p := range s.pending {
				n.stats.CrashAbandonedPkts++
				n.stats.CrashAbandonedBytes += uint64(len(p.payload))
			}
			for _, p := range s.unacked {
				n.stats.CrashAbandonedPkts++
				n.stats.CrashAbandonedBytes += uint64(len(p.payload))
			}
			// Keep the epoch in host memory, exactly like an idle
			// reclaim: post-reboot traffic resurrects the sender at
			// epoch+1 and the receiver resynchronizes through its
			// ordinary higher-epoch path.
			n.rel.senderMem[dest] = s.epoch
			delete(n.rel.senders, dest)
			s.pending = s.pending[:0]
			s.unacked = s.unacked[:0]
			s.broken = nil
			n.rel.senderPool = append(n.rel.senderPool, s)
		}
		for _, src := range sortedKeys(n.rel.receivers) {
			r := n.rel.receivers[src]
			for _, q := range r.reseq {
				n.stats.CrashDropped++
				n.stats.CrashDropBytes += uint64(len(q.Payload))
			}
			for k := range r.reseq {
				delete(r.reseq, k)
			}
			// Keep the dedupe horizon in host memory so a peer whose
			// link never broke during a short outage cannot replay
			// packets delivered before the crash.
			n.rel.recvMem[src] = rxMemory{epoch: r.epoch, expected: r.expected}
			delete(n.rel.receivers, src)
			n.rel.recvPool = append(n.rel.recvPool, r)
		}
		n.publishReclaimGauges()
	}

	// The PIO FIFO and the automatic-update combining buffer die with
	// the board.
	n.pio = pioState{}
	if n.auto.flushEv != nil {
		n.clock.Cancel(n.auto.flushEv)
		n.auto.flushEv = nil
	}
	n.auto.active = false
	n.auto.data = n.auto.data[:0]

	// NIPT cache lines (and any transfer pin) are volatile; the backing
	// table in host memory stays authoritative.
	if n.cache != nil {
		for idx := range n.cache.lines {
			delete(n.cache.lines, idx)
		}
		n.cache.hasPin = false
	}
}

// Reboot powers the board back on. The NIPT is "rebuilt" implicitly:
// the host-memory backing table was never lost, and with a bounded
// cache the working set refaults through the ordinary miss path,
// paying refill costs just like a cold board.
func (n *Interface) Reboot() {
	n.down = false
}

// Down reports whether the board is crashed.
func (n *Interface) Down() bool { return n.down }
