// Package nic implements the SHRIMP network interface of the paper's
// Section 8 and Figure 6: a UDMA device whose device-proxy pages index
// the Network Interface Page Table (NIPT), a packetizer that turns a
// completed memory→NIC DMA into a network packet ("deliberate update"),
// receive-side DMA logic that writes arriving packets straight into
// physical memory, and — for the Section 9 comparison — a memory-mapped
// FIFO programmed-I/O mode.
package nic

import (
	"fmt"

	"shrimp/internal/addr"
	"shrimp/internal/bus"
	"shrimp/internal/device"
	"shrimp/internal/interconnect"
	"shrimp/internal/mem"
	"shrimp/internal/sim"
	"shrimp/internal/telemetry"
	"shrimp/internal/trace"
)

// NIPTEntry names a remote physical page: "each entry of which
// specifies a remote node and a physical memory page on that node."
type NIPTEntry struct {
	Valid    bool
	DestNode int
	DestPFN  uint32
}

// Stats counts NIC activity.
type Stats struct {
	PacketsSent     uint64
	BytesSent       uint64
	PacketsReceived uint64
	BytesReceived   uint64
	PIOWords        uint64
	RecvDrops       uint64 // packets addressed outside installed RAM
	RecvDropBytes   uint64 // payload bytes of those drops
	// LastRecvAt is the receiver-clock completion time of the most
	// recent receive DMA (latency measurements).
	LastRecvAt sim.Cycles
	// Automatic-update counters (see autoupdate.go).
	AutoWords   uint64 // snooped 32-bit stores
	AutoPackets uint64 // combined packets launched
	AutoDrops   uint64 // words/bursts dropped for invalid entries

	// Reliability-layer counters (see reliable.go). PacketsSent/BytesSent
	// count first transmissions only; retransmissions are broken out so
	// goodput vs. wire throughput stays measurable.
	Retransmits      uint64
	RetransBytes     uint64
	AcksSent         uint64
	AcksReceived     uint64
	DupAcks          uint64
	DupDropped       uint64 // duplicate data packets discarded by the receiver
	DupBytes         uint64
	CorruptDropped   uint64 // packets failing the CRC check (never delivered)
	CorruptBytes     uint64
	ReseqDropped     uint64 // out-of-order packets the reseq buffer couldn't hold
	ReseqBytes       uint64
	CreditStalls     uint64 // transfers bounced queue-full by flow control
	DeliveryFailures uint64 // links declared broken after the retry cap
	FailedPackets    uint64 // packets abandoned by broken links
	FailedBytes      uint64

	// NIPT cache counters (see niptcache.go). Hits+Misses == Lookups
	// always; with capacity 0 every lookup is a hit (the whole table is
	// on the board, the seed behavior).
	NIPTLookups      uint64
	NIPTHits         uint64
	NIPTMisses       uint64
	NIPTEvictions    uint64
	NIPTRefillCycles uint64 // total simulated cycles spent on miss refills

	// Reliability-state reclamation counters (see reclaim.go).
	SenderReclaims   uint64 // idle per-destination send state returned to the pool
	ReceiverReclaims uint64 // idle per-source receive state returned to the pool
	Resurrections    uint64 // reclaimed destinations re-established by new traffic

	// Crash-restart counters (see crash.go). The abandoned ledger holds
	// queued/unacked packets wiped by a crash that were never launched
	// onto the wire in their final form (observability only); the
	// dropped ledger holds wire-carried payload bytes the crash made
	// undeliverable (reseq buffers wiped, arrivals while down, receive
	// DMAs invalidated mid-flight) and balances the simcheck
	// wire-conservation audit across the crash boundary.
	Crashes             uint64
	CrashAbandonedPkts  uint64 // pending+unacked packets wiped at crash
	CrashAbandonedBytes uint64
	CrashDropped        uint64 // wire-carried packets the crash swallowed
	CrashDropBytes      uint64
}

// Interface is one node's SHRIMP network interface board.
//
// Send path (deliberate update): a UDMA transfer moves data from memory
// to the NIC; the device-proxy page of the *destination* indexes the
// NIPT, whose entry plus the page offset forms the remote physical
// address; the board assembles a packet and launches it.
//
// Receive path: arriving packets are written into physical memory by
// the board's EISA DMA logic with no CPU involvement.
type Interface struct {
	nodeID int
	clock  *sim.Clock
	costs  *sim.CostModel
	ram    *mem.Physical
	iobus  *bus.Bus
	net    *interconnect.Backplane

	nipt  []NIPTEntry // host-memory backing table (always authoritative)
	cache *niptCache  // nil = unbounded on-NIC table (seed behavior)

	pioPages uint32 // PIO window pages appended after the NIPT pages
	pio      pioState
	auto     autoUpdateState

	rel *reliability // nil = raw wire (the paper's reliable-backplane mode)

	// Crash-restart state (crash.go). down marks the board powered off
	// between Crash and Reboot; gen bumps at every crash so events the
	// pre-crash board scheduled (receive-DMA completions, deferred NIPT
	// refill launches) recognise themselves as stale and bail.
	down bool
	gen  uint64

	tracer *trace.Tracer // nil = tracing off

	stats Stats
	m     nicMetrics
}

// nicMetrics holds the board's telemetry instruments, resolved once at
// attach time. All nil (free no-ops) until SetMetrics is called.
type nicMetrics struct {
	scope       *telemetry.Scope
	pktsSent    *telemetry.Counter
	bytesSent   *telemetry.Counter
	pktsRecv    *telemetry.Counter
	bytesRecv   *telemetry.Counter
	niptLookups *telemetry.Counter
	recvDrops   *telemetry.Counter
	pktBytes    *telemetry.Histogram

	// NIPT cache instruments.
	niptHits         *telemetry.Counter
	niptMisses       *telemetry.Counter
	niptEvictions    *telemetry.Counter
	niptRefillCycles *telemetry.Counter

	// Reliability-state pool instruments (see reclaim.go).
	relReclaims  *telemetry.Counter
	relSenders   *telemetry.Gauge
	relReceivers *telemetry.Gauge
	relPoolFree  *telemetry.Gauge

	// Reliability-layer instruments.
	retransmits      *telemetry.Counter
	acksSent         *telemetry.Counter
	acksRecv         *telemetry.Counter
	dupAcks          *telemetry.Counter
	crcDropped       *telemetry.Counter
	dupDropped       *telemetry.Counter
	creditStalls     *telemetry.Counter
	deliveryFailures *telemetry.Counter
	ackRTT           *telemetry.Histogram
}

// pioState is the memory-mapped FIFO mode's register file.
type pioState struct {
	destWord uint32 // device-proxy page index << 12 | offset
	buf      []byte
}

// PIO register offsets within the PIO window's first page.
const (
	PIORegDest   = 0  // store: set destination (NIPT index<<12 | page offset)
	PIORegData   = 4  // store: push one 32-bit data word
	PIORegLaunch = 8  // store: launch the accumulated packet
	PIORegStatus = 12 // load: FIFO status (always ready in this model)
)

// Config sizes the board.
type Config struct {
	// NIPTPages is the NIPT size; the SHRIMP board indexes it with 15
	// bits, giving 32 K destination pages (the default).
	NIPTPages uint32
	// PIOWindow enables the memory-mapped FIFO mode with one register
	// page after the NIPT pages.
	PIOWindow bool
	// NIPTCapacity bounds the on-NIC resident NIPT entries; the full
	// table lives in a host-memory backing store and data-path lookups
	// that miss pay a refill cost (niptcache.go). 0 = unbounded: the
	// whole table fits on the board, the original SHRIMP assumption.
	NIPTCapacity int
	// NIPTRefill is the per-miss refill cost; 0 means the default
	// (niptRefillDefault). Ignored when NIPTCapacity is 0.
	NIPTRefill sim.Cycles
	// NIPTRefillJitter adds a seeded 0..J-1 cycle draw to each refill,
	// modeling host-memory contention. 0 = fixed cost.
	NIPTRefillJitter sim.Cycles
	// NIPTSeed seeds the refill-jitter stream (mixed with the node ID
	// so boards draw independently).
	NIPTSeed uint64
	// Reliability enables the reliable-delivery sublayer (reliable.go);
	// required when the backplane carries a fault plan.
	Reliability ReliabilityConfig
}

// New builds a network interface for a node.
func New(nodeID int, clock *sim.Clock, costs *sim.CostModel, ram *mem.Physical,
	iobus *bus.Bus, net *interconnect.Backplane, cfg Config) *Interface {
	if clock == nil || costs == nil || ram == nil || iobus == nil || net == nil {
		panic("nic: New requires non-nil dependencies")
	}
	pages := cfg.NIPTPages
	if pages == 0 {
		pages = 32768 // 15-bit NIPT index
	}
	nic := &Interface{
		nodeID: nodeID,
		clock:  clock,
		costs:  costs,
		ram:    ram,
		iobus:  iobus,
		net:    net,
		nipt:   make([]NIPTEntry, pages),
	}
	if cfg.PIOWindow {
		nic.pioPages = 1
	}
	if cfg.NIPTCapacity > 0 {
		refill := cfg.NIPTRefill
		if refill == 0 {
			refill = niptRefillDefault
		}
		nic.cache = &niptCache{
			cap:    cfg.NIPTCapacity,
			lines:  make(map[uint32]niptLine, cfg.NIPTCapacity),
			refill: refill,
			jitter: cfg.NIPTRefillJitter,
			rng:    sim.NewRNG(cfg.NIPTSeed ^ uint64(nodeID+1)*0x9E3779B97F4A7C15),
		}
	}
	if cfg.Reliability.Enabled {
		nic.rel = newReliability(cfg.Reliability)
	}
	net.Attach(nic)
	return nic
}

// Reliable reports whether the reliable-delivery sublayer is active.
func (n *Interface) Reliable() bool { return n.rel != nil }

// --- NIPT management (privileged: called by kernel-level mapping code) ---

// SetTracer attaches an event tracer (nil disables tracing).
func (n *Interface) SetTracer(t *trace.Tracer) { n.tracer = t }

// SetMetrics attaches telemetry instruments (nil scope disables them).
// Recording is a pure observation: it never advances the clock.
func (n *Interface) SetMetrics(s *telemetry.Scope) {
	n.m = nicMetrics{
		scope:       s,
		pktsSent:    s.Counter("nic_packets_sent"),
		bytesSent:   s.Counter("nic_bytes_sent"),
		pktsRecv:    s.Counter("nic_packets_recv"),
		bytesRecv:   s.Counter("nic_bytes_recv"),
		niptLookups: s.Counter("nic_nipt_lookups"),
		recvDrops:   s.Counter("nic_recv_drops"),
		pktBytes:    s.Histogram("nic_packet_bytes"),

		niptHits:         s.Counter("nipt_hits"),
		niptMisses:       s.Counter("nipt_misses"),
		niptEvictions:    s.Counter("nipt_evictions"),
		niptRefillCycles: s.Counter("nipt_refill_cycles"),

		relReclaims:  s.Counter("nic_rel_reclaims"),
		relSenders:   s.Gauge("nic_rel_senders_active"),
		relReceivers: s.Gauge("nic_rel_receivers_active"),
		relPoolFree:  s.Gauge("nic_rel_pool_free"),

		retransmits:      s.Counter("nic_retransmits"),
		acksSent:         s.Counter("nic_acks_sent"),
		acksRecv:         s.Counter("nic_acks_recv"),
		dupAcks:          s.Counter("nic_dup_acks"),
		crcDropped:       s.Counter("nic_crc_dropped"),
		dupDropped:       s.Counter("nic_dup_dropped"),
		creditStalls:     s.Counter("nic_credit_stalls"),
		deliveryFailures: s.Counter("nic_delivery_failures"),
		ackRTT:           s.Histogram("nic_ack_rtt_cycles"),
	}
}

// SetNIPT installs an entry. Index range is checked; the kernel owns
// the policy of which process may install what. With a bounded cache,
// installing a valid entry write-allocates (installs are warm — the
// board just walked the host table to write it), and invalidating one
// drops its residency.
func (n *Interface) SetNIPT(index uint32, e NIPTEntry) error {
	if index >= uint32(len(n.nipt)) {
		return fmt.Errorf("nic: NIPT index %d out of range (%d entries)", index, len(n.nipt))
	}
	n.nipt[index] = e
	if n.cache != nil {
		if e.Valid {
			n.installLine(index)
		} else {
			n.invalidateLine(index)
		}
	}
	return nil
}

// NIPT returns the entry at index (tests and diagnostics).
func (n *Interface) NIPT(index uint32) (NIPTEntry, error) {
	if index >= uint32(len(n.nipt)) {
		return NIPTEntry{}, fmt.Errorf("nic: NIPT index %d out of range", index)
	}
	return n.nipt[index], nil
}

// NIPTSize returns the number of NIPT entries.
func (n *Interface) NIPTSize() uint32 { return uint32(len(n.nipt)) }

// Stats returns a copy of the counters.
func (n *Interface) Stats() Stats { return n.stats }

// --- device.Device (the UDMA send path) -------------------------------------

// Name implements device.Device.
func (n *Interface) Name() string { return fmt.Sprintf("shrimp-nic%d", n.nodeID) }

// Pages implements device.Device: one proxy page per NIPT entry, plus
// the PIO window.
func (n *Interface) Pages() uint32 { return uint32(len(n.nipt)) + n.pioPages }

// CheckTransfer implements device.Device. The SHRIMP board accepts
// only memory→device transfers ("SHRIMP uses UDMA only for
// memory-to-device transfers"), requires 4-byte alignment, and requires
// a valid NIPT entry.
func (n *Interface) CheckTransfer(da device.DevAddr, nbytes int, toDevice bool) device.ErrBits {
	var bits device.ErrBits
	if !toDevice {
		bits |= device.ErrReadOnly
	}
	if da.Page >= uint32(len(n.nipt)) {
		// PIO window or beyond: not a DMA target.
		return bits | device.ErrBounds
	}
	if da.Off%4 != 0 || nbytes%4 != 0 {
		bits |= device.ErrAlignment
	}
	if !n.nipt[da.Page].Valid {
		bits |= device.ErrInvalidEntry
	}
	if bits == 0 && n.rel != nil {
		// Credit-based flow control: a slow or flapping receiver shows
		// up here as a full retransmit buffer, and the transfer bounces
		// queue-full — a transient the UDMA library already retries —
		// instead of overrunning the link.
		s := n.sender(n.nipt[da.Page].DestNode)
		if s.broken == nil && len(s.pending)+len(s.unacked) >= n.rel.cfg.MaxPending {
			n.stats.CreditStalls++
			n.m.creditStalls.Inc()
			n.tracer.Record(trace.EvCreditStall, uint64(s.dest), uint64(len(s.unacked)), "")
			bits |= device.ErrQueueFull
		}
	}
	return bits
}

// TransferLatency implements device.Device: NIPT lookup + header
// assembly + FIFO/launch overhead per packet. With a bounded cache a
// miss adds the host-memory refill cost, and the entry is pinned for
// the duration of the transfer (released by the completion Write).
func (n *Interface) TransferLatency(da device.DevAddr, _ int) sim.Cycles {
	n.m.niptLookups.Inc()
	lat := n.costs.NIPTLookup + n.costs.PacketHeader + n.costs.PacketPerPage
	if da.Page < uint32(len(n.nipt)) && n.nipt[da.Page].Valid {
		lat += n.lookupNIPT(da.Page, true)
	}
	return lat
}

// Write implements device.Device: the DMA engine delivers the payload,
// the board forms the packet and launches it into the backplane.
func (n *Interface) Write(da device.DevAddr, data []byte, now sim.Cycles) error {
	n.releasePin(da.Page)
	e := n.nipt[da.Page]
	if !e.Valid {
		return fmt.Errorf("nic: write through invalid NIPT entry %d", da.Page)
	}
	return n.launch(e, da.Off, data)
}

// Read implements device.Device; the send-only SHRIMP board rejects it.
func (n *Interface) Read(device.DevAddr, int, sim.Cycles) ([]byte, error) {
	return nil, fmt.Errorf("nic: %s does not support device-to-memory UDMA", n.Name())
}

func (n *Interface) launch(e NIPTEntry, off uint32, data []byte) error {
	if n.down {
		// A crashed board launches nothing; the packet dies on the dead
		// board before ever reaching the wire (no ledger entry needed —
		// first-transmission counting never saw it).
		return nil
	}
	// "The destination page number is concatenated with the offset to
	// form the destination physical address."
	destAddr := addr.PAddr(e.DestPFN<<addr.PageShift | off)
	payload := make([]byte, len(data))
	copy(payload, data)
	if n.rel != nil {
		return n.relSend(e.DestNode, destAddr, payload)
	}
	n.net.Send(&interconnect.Packet{
		Src:      n.nodeID,
		Dst:      e.DestNode,
		DestAddr: destAddr,
		Payload:  payload,
	})
	n.stats.PacketsSent++
	n.stats.BytesSent += uint64(len(data))
	n.m.pktsSent.Inc()
	n.m.bytesSent.Add(uint64(len(data)))
	n.m.pktBytes.Observe(uint64(len(data)))
	n.tracer.Record(trace.EvPacketSend, uint64(e.DestNode), uint64(len(data)), "")
	return nil
}

// --- interconnect.Endpoint (the receive path) --------------------------------

// NodeID implements interconnect.Endpoint.
func (n *Interface) NodeID() int { return n.nodeID }

// NodeClock implements interconnect.Endpoint.
func (n *Interface) NodeClock() *sim.Clock { return n.clock }

// DeliverPacket implements interconnect.Endpoint. With the reliability
// sublayer on, arriving packets pass through the protocol first: ACKs
// feed the send half, data packets are CRC-checked, deduped and
// resequenced, and only in-order clean data reaches the memory path.
func (n *Interface) DeliverPacket(pkt *interconnect.Packet) {
	if n.down {
		// The board is powered off: anything already in flight toward it
		// when the crash hit lands on a dead connector. Wire-carried data
		// payloads go to the crash-drop ledger so byte conservation holds.
		if pkt.Kind == interconnect.PktData {
			n.stats.CrashDropped++
			n.stats.CrashDropBytes += uint64(len(pkt.Payload))
		}
		return
	}
	if n.rel != nil {
		if pkt.Kind == interconnect.PktAck {
			n.handleAck(pkt)
			return
		}
		n.recvData(pkt)
		return
	}
	n.deliverData(pkt)
}

// deliverData is the board's raw receive path: "At the receiving node,
// packet data is transferred directly to physical memory by the EISA
// DMA Logic." The receive DMA occupies the node's I/O bus like any
// burst, then the data lands.
func (n *Interface) deliverData(pkt *interconnect.Packet) {
	if !n.ram.Contains(pkt.DestAddr, len(pkt.Payload)) {
		// A corrupt NIPT entry on the sender named memory we don't
		// have; drop and count (a real board would raise an error
		// interrupt).
		n.stats.RecvDrops++
		n.stats.RecvDropBytes += uint64(len(pkt.Payload))
		n.m.recvDrops.Inc()
		return
	}
	arrive := n.clock.Now()
	_, end := n.iobus.ReserveBurst(arrive+n.costs.RecvDMAStartup, len(pkt.Payload))
	dest := pkt.DestAddr
	payload := pkt.Payload
	gen := n.gen
	n.clock.Schedule(end, "recv-dma-complete", func() {
		if n.gen != gen {
			// The board crashed between packet arrival and DMA
			// completion: the data never reached memory. It was
			// wire-carried, so it joins the crash-drop ledger.
			n.stats.CrashDropped++
			n.stats.CrashDropBytes += uint64(len(payload))
			return
		}
		if err := n.ram.Write(dest, payload); err != nil {
			n.stats.RecvDrops++
			n.stats.RecvDropBytes += uint64(len(payload))
			n.m.recvDrops.Inc()
			return
		}
		n.stats.PacketsReceived++
		n.stats.BytesReceived += uint64(len(payload))
		n.stats.LastRecvAt = n.clock.Now()
		n.m.pktsRecv.Inc()
		n.m.bytesRecv.Add(uint64(len(payload)))
		n.m.scope.Span("nic", "recv-dma", arrive, n.clock.Now(), uint64(len(payload)), "")
		n.tracer.Record(trace.EvPacketRecv, uint64(pkt.Src), uint64(len(payload)), "")
	})
}

// --- device.PIODevice (the Section 9 FIFO baseline) ---------------------------

// PIOWindow implements device.PIODevice.
func (n *Interface) PIOWindow() (first, count uint32, ok bool) {
	if n.pioPages == 0 {
		return 0, 0, false
	}
	return uint32(len(n.nipt)), n.pioPages, true
}

// PIOStore implements device.PIODevice: the word-at-a-time FIFO
// protocol. The bus word cost is charged by the kernel's router.
func (n *Interface) PIOStore(da device.DevAddr, v uint32) {
	n.stats.PIOWords++
	switch da.Off {
	case PIORegDest:
		n.pio.destWord = v
		n.pio.buf = n.pio.buf[:0]
	case PIORegData:
		n.pio.buf = append(n.pio.buf,
			byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	case PIORegLaunch:
		idx := n.pio.destWord >> addr.PageShift
		off := n.pio.destWord & addr.OffsetMask
		if idx >= uint32(len(n.nipt)) || !n.nipt[idx].Valid {
			n.pio.buf = n.pio.buf[:0]
			return
		}
		// Header assembly still costs time on the board, but the
		// launch is asynchronous to the CPU.
		data := make([]byte, len(n.pio.buf))
		copy(data, n.pio.buf)
		n.pio.buf = n.pio.buf[:0]
		e := n.nipt[idx]
		if delay := n.lookupNIPT(idx, false); delay > 0 {
			// The board is fetching the entry from the host table;
			// the launch fires when the refill lands — asynchronous
			// to the CPU, which already moved on. If the board crashes
			// before the refill lands, the deferred launch is stale
			// (the FIFO contents died with the board) and must not fire
			// into the rebooted incarnation.
			gen := n.gen
			n.clock.ScheduleAfter(delay, "nipt-refill-launch", func() {
				if n.gen != gen {
					return
				}
				n.launch(e, off, data)
			})
			return
		}
		n.launch(e, off, data)
	}
}

// PIOLoad implements device.PIODevice.
func (n *Interface) PIOLoad(da device.DevAddr) uint32 {
	n.stats.PIOWords++
	if da.Off == PIORegStatus {
		return 1 // FIFO ready
	}
	return 0
}

var (
	_ device.Device         = (*Interface)(nil)
	_ device.PIODevice      = (*Interface)(nil)
	_ interconnect.Endpoint = (*Interface)(nil)
)
