package nic

import (
	"fmt"
	"hash/fnv"
	"testing"

	"shrimp/internal/addr"
	"shrimp/internal/device"
	"shrimp/internal/sim"
)

// The cache-vs-unbounded equivalence property: the NIPT cache is a pure
// performance model, never a correctness change. For any seeded op
// sequence over K entries,
//
//   - a board with NIPTCapacity >= K is *bit-identical* to the
//     unbounded board — same stats (hits, misses, evictions, refill),
//     same clocks, same delivered bytes — because SetNIPT
//     write-allocates and nothing is ever evicted, so no miss ever
//     draws the refill RNG;
//   - a board with any smaller capacity still delivers byte-identical
//     transfers (timing and hit rates differ, payloads never do).
//
// The op mix deliberately interleaves every lookup path: kernel-style
// SetNIPT installs and teardowns, DMA-engine sends (CheckTransfer →
// TransferLatency → completion Write, with the pin held in between),
// PIO FIFO launches (including the delayed launch a miss schedules),
// and idle time.

const propEntries = 12 // distinct NIPT indices the op sequence uses

func TestNIPTCapacityEquivalence(t *testing.T) {
	var tinyMisses, tinyEvictions uint64
	for seed := uint64(1); seed <= 64; seed++ {
		baseStats, baseRAM, _ := runNIPTOps(t, seed, 0)
		eqStats, eqRAM, _ := runNIPTOps(t, seed, propEntries)
		if baseStats != eqStats {
			t.Fatalf("seed %d: capacity %d diverged from unbounded:\n %s\nvs %s",
				seed, propEntries, eqStats, baseStats)
		}
		if baseRAM != eqRAM {
			t.Fatalf("seed %d: capacity %d delivered different bytes", seed, propEntries)
		}
		// Under real eviction pressure only timing may change: the
		// delivered bytes must still match the unbounded run.
		_, tinyRAM, tiny := runNIPTOps(t, seed, 3)
		if tinyRAM != baseRAM {
			t.Fatalf("seed %d: capacity 3 delivered different bytes", seed)
		}
		tinyMisses += tiny.NIPTMisses
		tinyEvictions += tiny.NIPTEvictions
	}
	// Guard against vacuity: the tiny-capacity runs must actually have
	// churned the cache, or the byte-equality above proved nothing.
	if tinyMisses == 0 || tinyEvictions == 0 {
		t.Fatalf("capacity-3 runs saw %d misses / %d evictions; pressure never materialized",
			tinyMisses, tinyEvictions)
	}
}

// runNIPTOps drives one seeded op sequence on a fresh two-node pair at
// the given NIPT capacity and returns fingerprints of (sender+receiver
// stats and clocks, receiver memory). Entry idx always names receiver
// page 10+idx and op k always writes at offset k*64, so distinct ops
// never overlap in destination memory — final RAM contents are then
// independent of packet timing, isolating exactly what the cache is
// allowed to change (time) from what it is not (bytes).
func runNIPTOps(t *testing.T, seed uint64, capacity int) (statsSig, ramSig string, tx Stats) {
	t.Helper()
	p := newPair(t, Config{NIPTPages: 16, PIOWindow: true,
		NIPTCapacity: capacity, NIPTRefillJitter: 32, NIPTSeed: seed})
	n0 := p.nics[0]
	rng := sim.NewRNG(seed ^ 0x0b5e55ed)
	var valid [propEntries]bool
	const ops = 48 // 48*64 < PageSize: every op's offset is unique
	for k := 0; k < ops; k++ {
		idx := uint32(rng.Intn(propEntries))
		off := uint32(k) * 64
		switch rng.Intn(6) {
		case 0: // kernel installs (or re-points) a mapping
			n0.SetNIPT(idx, NIPTEntry{Valid: true, DestNode: 1, DestPFN: 10 + idx})
			valid[idx] = true
		case 1: // kernel tears a mapping down
			n0.SetNIPT(idx, NIPTEntry{})
			valid[idx] = false
		case 2, 3: // DMA-engine send through the entry
			if !valid[idx] {
				continue
			}
			da := device.DevAddr{Page: idx, Off: off}
			if bits := n0.CheckTransfer(da, 64, true); bits != 0 {
				t.Fatalf("seed %d op %d: CheckTransfer bits %v", seed, k, bits)
			}
			lat := n0.TransferLatency(da, 64)
			p.clocks[0].Advance(lat)
			if err := n0.Write(da, patternBytesT(uint64(k)+1, 64), p.clocks[0].Now()); err != nil {
				t.Fatalf("seed %d op %d: %v", seed, k, err)
			}
		case 4: // PIO FIFO send through the entry
			if !valid[idx] {
				continue
			}
			pio := device.DevAddr{Page: 16, Off: PIORegDest}
			n0.PIOStore(pio, idx<<addr.PageShift|off)
			pat := patternBytesT(uint64(k)+1, 64)
			for w := 0; w < 16; w++ {
				word := uint32(pat[w*4]) | uint32(pat[w*4+1])<<8 |
					uint32(pat[w*4+2])<<16 | uint32(pat[w*4+3])<<24
				n0.PIOStore(device.DevAddr{Page: 16, Off: PIORegData}, word)
			}
			n0.PIOStore(device.DevAddr{Page: 16, Off: PIORegLaunch}, 0)
		case 5: // idle time on the sender
			p.clocks[0].Advance(sim.Cycles(rng.Intn(500)))
		}
	}
	drainPair(p)
	statsSig = fmt.Sprintf("tx=%+v rx=%+v clocks=%d,%d",
		p.nics[0].Stats(), p.nics[1].Stats(), p.clocks[0].Now(), p.clocks[1].Now())
	h := fnv.New64a()
	for f := uint32(0); f < 64; f++ {
		b, err := p.rams[1].Read(addr.PAddr(f)<<addr.PageShift, addr.PageSize)
		if err != nil {
			t.Fatalf("frame %d: %v", f, err)
		}
		h.Write(b)
	}
	return statsSig, fmt.Sprintf("%016x", h.Sum64()), p.nics[0].Stats()
}
