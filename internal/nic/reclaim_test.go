package nic

import (
	"errors"
	"testing"

	"shrimp/internal/addr"
	"shrimp/internal/device"
	"shrimp/internal/interconnect"
)

// TestIdleReclaimAndResurrection: a quiescent link ages out into the
// free pools, and the next traffic to the destination resurrects the
// state — on a bumped epoch, so the receiver resynchronizes and the new
// payload is delivered exactly once.
func TestIdleReclaimAndResurrection(t *testing.T) {
	p := newPair(t, relConfig(ReliabilityConfig{IdleReclaimAge: 10_000}))
	p.nics[0].SetNIPT(3, NIPTEntry{Valid: true, DestNode: 1, DestPFN: 7})
	if err := p.nics[0].Write(device.DevAddr{Page: 3, Off: 0}, patternBytesT(1, 64), 0); err != nil {
		t.Fatal(err)
	}
	drainPair(p)
	if s, _ := p.nics[0].RelActive(); s != 1 {
		t.Fatalf("sender state not established")
	}
	if _, r := p.nics[1].RelActive(); r != 1 {
		t.Fatalf("receiver state not established")
	}

	// Young state is not reclaimed; aged-out state is.
	if got := p.nics[0].ReclaimIdle(); got != 0 {
		t.Fatalf("reclaimed %d links before the idle age", got)
	}
	p.clocks[0].Advance(20_000)
	p.clocks[1].Advance(20_000)
	if got := p.nics[0].ReclaimIdle(); got != 1 {
		t.Fatalf("sender reclaim = %d, want 1", got)
	}
	if got := p.nics[1].ReclaimIdle(); got != 1 {
		t.Fatalf("receiver reclaim = %d, want 1", got)
	}
	if s, _ := p.nics[0].RelActive(); s != 0 {
		t.Fatalf("sender state survived reclaim")
	}
	if p.nics[0].RelPoolFree() != 1 || p.nics[1].RelPoolFree() != 1 {
		t.Fatalf("reclaimed state did not land in the free pools")
	}
	if s := p.nics[0].Stats(); s.SenderReclaims != 1 {
		t.Fatalf("sender stats %+v", s)
	}
	if s := p.nics[1].Stats(); s.ReceiverReclaims != 1 {
		t.Fatalf("receiver stats %+v", s)
	}

	// Resurrection: new traffic re-establishes the link from the pool.
	if err := p.nics[0].Write(device.DevAddr{Page: 3, Off: 128}, patternBytesT(2, 64), 0); err != nil {
		t.Fatal(err)
	}
	drainPair(p)
	if s := p.nics[0].Stats(); s.Resurrections != 1 {
		t.Fatalf("sender resurrections = %d, want 1", s.Resurrections)
	}
	if s := p.nics[1].Stats(); s.Resurrections != 1 {
		t.Fatalf("receiver resurrections = %d, want 1", s.Resurrections)
	}
	if p.nics[0].RelPoolFree() != 0 {
		t.Fatalf("resurrection did not pop the free pool")
	}
	s1 := p.nics[1].Stats()
	if s1.PacketsReceived != 2 || s1.DupDropped != 0 {
		t.Fatalf("post-resurrection delivery stats %+v", s1)
	}
	got, err := p.rams[1].Read(addr.PAddr(7)<<addr.PageShift|128, 64)
	if err != nil {
		t.Fatal(err)
	}
	want := patternBytesT(2, 64)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("post-resurrection payload corrupt at byte %d", i)
		}
	}
}

// TestReclaimRefusedWhileRetransmitPending: a link with unacked packets
// and an armed retransmit timer is not quiescent, no matter how stale
// its last activity stamp is.
func TestReclaimRefusedWhileRetransmitPending(t *testing.T) {
	p := newPair(t, relConfig(ReliabilityConfig{
		RetxTimeout: 1 << 40, IdleReclaimAge: 1_000}))
	p.net.SetFaultPlan(interconnect.FaultPlan{Seed: 1, DropRate: 1.0})
	p.nics[0].SetNIPT(3, NIPTEntry{Valid: true, DestNode: 1, DestPFN: 7})
	if err := p.nics[0].Write(device.DevAddr{Page: 3, Off: 0}, patternBytesT(3, 64), 0); err != nil {
		t.Fatal(err)
	}
	// The packet was dropped on the wire; the unacked buffer holds it
	// and the (far-future) retransmit timer is armed.
	p.clocks[0].Advance(50_000)
	if got := p.nics[0].ReclaimIdle(); got != 0 {
		t.Fatalf("reclaimed a link with a retransmit pending")
	}
	if s, _ := p.nics[0].RelActive(); s != 1 {
		t.Fatalf("pending sender state vanished")
	}
}

// TestReclaimRefusedWhileBrokenLatched: a latched DeliveryError must be
// consumed by the next Write, never silently reclaimed away.
func TestReclaimRefusedWhileBrokenLatched(t *testing.T) {
	p := newPair(t, relConfig(ReliabilityConfig{
		RetxTimeout: 64, MaxRetries: 2, IdleReclaimAge: 1_000}))
	p.net.SetFaultPlan(interconnect.FaultPlan{Seed: 1, DropRate: 1.0})
	p.nics[0].SetNIPT(3, NIPTEntry{Valid: true, DestNode: 1, DestPFN: 7})
	if err := p.nics[0].Write(device.DevAddr{Page: 3, Off: 0}, patternBytesT(4, 64), 0); err != nil {
		t.Fatal(err)
	}
	drainPair(p) // retries exhaust; the link breaks and latches
	if s := p.nics[0].Stats(); s.DeliveryFailures != 1 {
		t.Fatalf("link did not break: %+v", s)
	}
	p.clocks[0].Advance(100_000)
	if got := p.nics[0].ReclaimIdle(); got != 0 {
		t.Fatalf("reclaimed a link with a latched delivery error")
	}

	// Consume the latch (epoch-recovery pattern from
	// TestRetryCapSurfacesTypedError), heal the wire, redeliver.
	var derr *DeliveryError
	err := p.nics[0].Write(device.DevAddr{Page: 3, Off: 0}, patternBytesT(4, 64), 0)
	if !errors.As(err, &derr) {
		t.Fatalf("latched error not surfaced: %v", err)
	}
	p.net.SetFaultPlan(interconnect.FaultPlan{})
	if err := p.nics[0].Write(device.DevAddr{Page: 3, Off: 0}, patternBytesT(5, 64), 0); err != nil {
		t.Fatal(err)
	}
	drainPair(p)
	if s := p.nics[1].Stats(); s.PacketsReceived != 1 {
		t.Fatalf("next-epoch delivery failed: %+v", s)
	}
	// Now fully quiescent: reclamation proceeds.
	p.clocks[0].Advance(100_000)
	if got := p.nics[0].ReclaimIdle(); got != 1 {
		t.Fatalf("healed idle link not reclaimed (got %d)", got)
	}
}

// TestReceiverReclaimRefusedWithReseqHeld: parked out-of-order packets
// are undelivered bytes; the receiver holding them cannot be reclaimed.
func TestReceiverReclaimRefusedWithReseqHeld(t *testing.T) {
	p := newPair(t, relConfig(ReliabilityConfig{IdleReclaimAge: 1_000}))
	rx := p.nics[1]
	// Seq 2 with seq 1 missing parks in the resequencing buffer.
	rx.DeliverPacket(mkData(0, 1, 0, 2, addr.PAddr(7)<<addr.PageShift, patternBytesT(9, 64)))
	p.clocks[1].Advance(50_000)
	if got := rx.ReclaimIdle(); got != 0 {
		t.Fatalf("reclaimed a receiver holding reseq bytes")
	}
	if _, r := rx.RelActive(); r != 1 {
		t.Fatalf("receiver state vanished")
	}
}

// TestReceiverResurrectionDedupesStaleDuplicate: the reclaimed
// receiver's (epoch, expected) memory must survive the round trip
// through the pool, or a stale fabric duplicate arriving after the
// reclaim would be delivered a second time.
func TestReceiverResurrectionDedupesStaleDuplicate(t *testing.T) {
	p := newPair(t, relConfig(ReliabilityConfig{IdleReclaimAge: 1_000}))
	rx := p.nics[1]
	pkt := mkData(0, 1, 0, 1, addr.PAddr(7)<<addr.PageShift, patternBytesT(6, 64))
	rx.DeliverPacket(pkt)
	p.clocks[1].Advance(10_000)
	if s := rx.Stats(); s.PacketsReceived != 1 {
		t.Fatalf("first delivery failed: %+v", s)
	}
	p.clocks[1].Advance(50_000)
	if got := rx.ReclaimIdle(); got != 1 {
		t.Fatalf("idle receiver not reclaimed")
	}
	// A duplicate of the already-delivered packet (same epoch, same
	// seq) arrives after the reclaim.
	rx.DeliverPacket(mkData(0, 1, 0, 1, addr.PAddr(7)<<addr.PageShift, patternBytesT(6, 64)))
	p.clocks[1].Advance(10_000)
	s := rx.Stats()
	if s.PacketsReceived != 1 || s.DupDropped != 1 || s.Resurrections != 1 {
		t.Fatalf("stale duplicate handling after resurrection: %+v", s)
	}
}
