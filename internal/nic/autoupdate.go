package nic

import (
	"shrimp/internal/sim"
)

// Automatic update is the second SHRIMP transfer strategy, retained
// from the original design (paper Section 9: "Our current design
// retains the automatic update transfer strategy described in [5] which
// still relies upon fixed mappings between source and destination
// pages"). Ordinary stores to an exported page are snooped off the
// memory bus by the network interface and propagated to the fixed
// remote page — no initiation sequence at all, at the price of one
// packet stream per mapped page and write-through traffic.
//
// The board combines consecutive snooped words into a single packet
// (real SHRIMP hardware had exactly such a combining buffer) and
// flushes on a gap, on a full buffer, or after a timeout.

// autoUpdateCombineMax is the combining buffer size in bytes.
const autoUpdateCombineMax = 128

// autoUpdateFlushDelay is how long a partially filled combining buffer
// may wait for the next contiguous word before being launched.
const autoUpdateFlushDelay sim.Cycles = 240 // 4 µs at 60 MHz

// autoUpdateState is the combining buffer.
type autoUpdateState struct {
	active   bool
	entry    uint32 // NIPT index the burst goes through
	startOff uint32 // page offset of the first combined word
	data     []byte
	flushEv  *sim.Event
}

// SnoopWrite delivers one 32-bit store snooped from the memory bus to
// the board: the word was written at byte offset off of the
// automatic-update page exported through NIPT entry 'entry'. Writes to
// an invalid entry are dropped (the mapping syscall prevents this; the
// hardware cannot trap).
func (n *Interface) SnoopWrite(entry uint32, off uint32, v uint32) {
	if entry >= uint32(len(n.nipt)) || !n.nipt[entry].Valid {
		n.stats.AutoDrops++
		return
	}
	n.stats.AutoWords++

	au := &n.auto
	contiguous := au.active && au.entry == entry &&
		off == au.startOff+uint32(len(au.data)) &&
		len(au.data)+4 <= autoUpdateCombineMax
	if !contiguous {
		n.FlushAutoUpdate()
		au.active = true
		au.entry = entry
		au.startOff = off
		au.data = au.data[:0]
		// Arm the timeout flush.
		au.flushEv = n.clock.ScheduleAfter(autoUpdateFlushDelay, "auto-update-flush", func() {
			au.flushEv = nil
			n.FlushAutoUpdate()
		})
	}
	au.data = append(au.data, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	if len(au.data) >= autoUpdateCombineMax {
		n.FlushAutoUpdate()
	}
}

// FlushAutoUpdate launches whatever the combining buffer holds. Safe to
// call at any time (idempotent when empty); the kernel calls it on
// context switch so one process's tail write cannot linger.
func (n *Interface) FlushAutoUpdate() {
	au := &n.auto
	if !au.active || len(au.data) == 0 {
		au.active = false
		return
	}
	if au.flushEv != nil {
		n.clock.Cancel(au.flushEv)
		au.flushEv = nil
	}
	e := n.nipt[au.entry]
	entry := au.entry
	startOff := au.startOff
	data := make([]byte, len(au.data))
	copy(data, au.data)
	au.active = false
	au.data = au.data[:0]
	if !e.Valid {
		n.stats.AutoDrops++
		return
	}
	if delay := n.lookupNIPT(entry, false); delay > 0 {
		// Bounded NIPT cache miss: the burst launches when the entry
		// refill lands (the snooping front of the board is already free
		// to start the next burst). A crash before the refill lands
		// makes the deferred launch stale — the combining buffer died
		// with the board.
		gen := n.gen
		n.clock.ScheduleAfter(delay, "nipt-refill-launch", func() {
			if n.gen != gen {
				return
			}
			if err := n.launch(e, startOff, data); err != nil {
				n.stats.AutoDrops++
				return
			}
			n.stats.AutoPackets++
		})
		return
	}
	if err := n.launch(e, startOff, data); err != nil {
		n.stats.AutoDrops++
		return
	}
	n.stats.AutoPackets++
}

// AutoUpdatePending reports whether the combining buffer holds unsent
// data (tests and the kernel's switch path).
func (n *Interface) AutoUpdatePending() bool {
	return n.auto.active && len(n.auto.data) > 0
}
