package nic

import (
	"sort"
)

// Reliability-state reclamation: the second half of the bounded-NIC
// story. Per-destination protocol state (epochs, sequence numbers,
// retransmit buffers, credit windows) is exactly the per-connection
// footprint OpenURMA shows dominating modern NICs, and under connection
// churn — thousands of short-lived flows — it would otherwise grow
// with the total number of peers ever spoken to. ReclaimIdle ages
// quiescent links out into free pools, keeping only a compact epoch
// memory per destination in host memory; new traffic to a reclaimed
// destination resurrects the state from the pool with the epoch bumped
// past the remembered one, so the remote end resynchronizes through the
// protocol's ordinary higher-epoch path.
//
// Barrier safety: the cluster calls ReclaimIdle at the top of every
// lockstep window, right after Backplane.Flush and before any worker
// runs — the same publication point as every other cross-node control
// action. Mid-window, workers only ever touch their own node's state,
// so reclamation observes barrier-consistent quiescence, runs in
// sorted-destination order, and is therefore bit-identical at any
// worker count.

// ReclaimIdle returns idle per-destination reliability state to the
// board's free pools and reports how many links were reclaimed. A
// sender is reclaimable only when fully quiescent — nothing pending or
// unacked, no retransmit timer armed, no latched DeliveryError waiting
// to be consumed — and idle past the configured age; a receiver only
// when its resequencing buffer holds nothing. No-op unless the
// reliability sublayer is on and IdleReclaimAge is set.
func (n *Interface) ReclaimIdle() int {
	if n.rel == nil {
		return 0
	}
	defer n.publishReclaimGauges()
	age := n.rel.cfg.IdleReclaimAge
	if age <= 0 {
		return 0
	}
	now := n.clock.Now()
	reclaimed := 0
	for _, dest := range sortedKeys(n.rel.senders) {
		s := n.rel.senders[dest]
		if !senderQuiescent(s) || now < s.lastActive+age {
			continue
		}
		n.rel.senderMem[dest] = s.epoch
		delete(n.rel.senders, dest)
		n.rel.senderPool = append(n.rel.senderPool, s)
		n.stats.SenderReclaims++
		n.m.relReclaims.Inc()
		reclaimed++
	}
	for _, src := range sortedKeys(n.rel.receivers) {
		r := n.rel.receivers[src]
		if len(r.reseq) != 0 || now < r.lastActive+age {
			continue
		}
		n.rel.recvMem[src] = rxMemory{epoch: r.epoch, expected: r.expected}
		delete(n.rel.receivers, src)
		n.rel.recvPool = append(n.rel.recvPool, r)
		n.stats.ReceiverReclaims++
		n.m.relReclaims.Inc()
		reclaimed++
	}
	return reclaimed
}

// senderQuiescent reports whether nothing at all is in flight or owed
// on the link. A latched broken error blocks reclamation: it must be
// consumed by the next Write, and reclaiming it would silently eat a
// delivery failure.
func senderQuiescent(s *relSender) bool {
	return len(s.pending) == 0 && len(s.unacked) == 0 && s.timer == nil && s.broken == nil
}

func sortedKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func (n *Interface) publishReclaimGauges() {
	n.m.relSenders.Set(int64(len(n.rel.senders)))
	n.m.relReceivers.Set(int64(len(n.rel.receivers)))
	n.m.relPoolFree.Set(int64(len(n.rel.senderPool) + len(n.rel.recvPool)))
}

// RelActive returns the live per-destination sender and per-source
// receiver state counts (tests and diagnostics).
func (n *Interface) RelActive() (senders, receivers int) {
	if n.rel == nil {
		return 0, 0
	}
	return len(n.rel.senders), len(n.rel.receivers)
}

// RelPoolFree returns the number of reclaimed structs sitting in the
// free pools (tests and diagnostics).
func (n *Interface) RelPoolFree() int {
	if n.rel == nil {
		return 0
	}
	return len(n.rel.senderPool) + len(n.rel.recvPool)
}
