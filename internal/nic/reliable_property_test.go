package nic

import (
	"bytes"
	"errors"
	"testing"

	"shrimp/internal/addr"
	"shrimp/internal/device"
	"shrimp/internal/interconnect"
	"shrimp/internal/sim"
)

// TestReliableBytePartition is the conservation property for the
// reliability sublayer: for any seeded fault mix, once the pair is
// quiescent every byte launched onto the wire is accounted for by
// exactly one fate — delivered, deduplicated, CRC-dropped,
// resequencing-dropped, receive-path-dropped, still held in the
// resequencing buffer, or dropped by the wire itself — and duplicated
// wire bytes inflate only the duplicate side of the ledger. On top of
// the ledger: every transfer either lands byte-exact or the sender
// holds a typed DeliveryError.
func TestReliableBytePartition(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		runBytePartition(t, seed)
	}
}

func runBytePartition(t *testing.T, seed uint64) {
	p := newPair(t, relConfig(ReliabilityConfig{RetxTimeout: 2048}))
	p.net.SetFaultPlan(interconnect.FaultPlan{
		Seed:        seed,
		DropRate:    0.15,
		DupRate:     0.05,
		CorruptRate: 0.05,
		DelayRate:   0.10,
		DelayMax:    3000,
	})
	rng := sim.NewRNG(seed ^ 0xB17E5)
	type msg struct {
		page int
		pay  []byte
	}
	var msgs []msg
	n := 4 + rng.Intn(5)
	for i := 0; i < n; i++ {
		p.nics[0].SetNIPT(uint32(i), NIPTEntry{Valid: true, DestNode: 1, DestPFN: uint32(8 + i)})
		pay := patternBytesT(seed*100+uint64(i), 4*(1+rng.Intn(120)))
		err := p.nics[0].Write(device.DevAddr{Page: uint32(i), Off: 0}, pay, 0)
		var de *DeliveryError
		if err != nil && !errors.As(err, &de) {
			t.Fatalf("seed %d: Write returned untyped error %v", seed, err)
		}
		msgs = append(msgs, msg{page: i, pay: pay})
		p.clocks[0].Advance(sim.Cycles(rng.Intn(4000)))
	}
	drainPair(p)

	s0, s1 := p.nics[0].Stats(), p.nics[1].Stats()
	wp, wb, wrp, wrb := p.net.Stats()
	fs := p.net.FaultStats()
	held := p.nics[1].ReseqHeldBytes()
	_ = wp

	// Sender side: everything on the wire is a first transmission or a
	// counted retransmission.
	if s0.BytesSent+s0.RetransBytes != wb {
		t.Fatalf("seed %d: launch ledger broken: first %d + retrans %d != wire %d",
			seed, s0.BytesSent, s0.RetransBytes, wb)
	}
	if s0.RetransBytes != wrb || s0.Retransmits != wrp {
		t.Fatalf("seed %d: retransmission counts disagree: nic %d/%d wire %d/%d",
			seed, s0.Retransmits, s0.RetransBytes, wrp, wrb)
	}
	// Receiver side: wire bytes plus duplicated bytes partition exactly
	// into the possible fates.
	fates := fs.DroppedDataBytes + s1.BytesReceived + s1.DupBytes +
		s1.CorruptBytes + s1.ReseqBytes + s1.RecvDropBytes + held
	if wb+fs.DupDataBytes != fates {
		t.Fatalf("seed %d: byte partition broken: wire %d + dup %d != fates %d "+
			"(wire-drop %d recv %d dedup %d crc %d reseq %d recvdrop %d held %d)",
			seed, wb, fs.DupDataBytes, fates, fs.DroppedDataBytes, s1.BytesReceived,
			s1.DupBytes, s1.CorruptBytes, s1.ReseqBytes, s1.RecvDropBytes, held)
	}
	// Outcome property: no silent loss. Each transfer is byte-exact in
	// the receiver's RAM unless the sender declared the link broken.
	if s0.DeliveryFailures == 0 {
		for _, m := range msgs {
			got, err := p.rams[1].Read(addr.PAddr((8+m.page)*addr.PageSize), len(m.pay))
			if err != nil {
				t.Fatalf("seed %d: read back page %d: %v", seed, m.page, err)
			}
			if !bytes.Equal(got, m.pay) {
				t.Fatalf("seed %d: page %d not byte-exact after drain", seed, m.page)
			}
		}
	} else if s0.FailedPackets == 0 {
		t.Fatalf("seed %d: delivery failure with no failed packets: %+v", seed, s0)
	}

	// Determinism: the same seed replays to identical counters.
	if seed%8 == 0 {
		q := newPair(t, relConfig(ReliabilityConfig{RetxTimeout: 2048}))
		q.net.SetFaultPlan(p.net.Plan())
		rng2 := sim.NewRNG(seed ^ 0xB17E5)
		n2 := 4 + rng2.Intn(5)
		for i := 0; i < n2; i++ {
			q.nics[0].SetNIPT(uint32(i), NIPTEntry{Valid: true, DestNode: 1, DestPFN: uint32(8 + i)})
			pay := patternBytesT(seed*100+uint64(i), 4*(1+rng2.Intn(120)))
			if err := q.nics[0].Write(device.DevAddr{Page: uint32(i), Off: 0}, pay, 0); err != nil {
				var de *DeliveryError
				if !errors.As(err, &de) {
					t.Fatalf("seed %d replay: %v", seed, err)
				}
			}
			q.clocks[0].Advance(sim.Cycles(rng2.Intn(4000)))
		}
		drainPair(q)
		if q.nics[0].Stats() != s0 || q.nics[1].Stats() != s1 {
			t.Fatalf("seed %d: replay diverged:\n first %+v / %+v\nsecond %+v / %+v",
				seed, s0, s1, q.nics[0].Stats(), q.nics[1].Stats())
		}
	}
}
