package nic

import (
	"shrimp/internal/sim"
)

// The SHRIMP board of the paper holds its whole 32 K-entry NIPT in
// on-board SRAM, which is exactly the assumption OpenURMA shows modern
// NICs cannot keep: per-connection state grows with (app, endpoint)
// pairs and stops fitting on the NIC. This file models the
// datacenter-scale variant: the full NIPT lives in a host-memory
// backing table (the `nipt` slice — always authoritative for entry
// *values*), and the board caches only NIPTCapacity entries. A
// data-path lookup that hits is free, as in the original hardware; a
// miss pays a seeded, deterministic host-memory refill cost on
// simulated time and installs the entry, evicting the exact-LRU
// resident line. Capacity 0 disables the cache: every entry is
// resident, every lookup a hit — the seed behavior, and the baseline
// the capacity-equivalence property test compares against.
//
// Correctness never depends on the cache. Entry values are read from
// the backing table at every use; the cache decides only *when* the
// board may use them. That is what makes it a pure performance model:
// any run with capacity >= the number of valid entries is bit-identical
// to the unbounded board, because SetNIPT write-allocates (installs are
// warm) and nothing is ever evicted.

// niptRefillDefault is the refill cost charged per miss when the cache
// is enabled and Config.NIPTRefill is zero: a host-memory table walk
// over the I/O bus, ~4 µs at the SHRIMP clock.
const niptRefillDefault sim.Cycles = 240

// niptLine is one resident cache line. Only residency is tracked; the
// entry value stays in the backing table.
type niptLine struct {
	used uint64 // monotonic access tick — unique, so LRU has no ties
}

// niptCache is the board's bounded NIPT residency tracker.
type niptCache struct {
	cap    int
	lines  map[uint32]niptLine
	tick   uint64
	refill sim.Cycles
	jitter sim.Cycles // per-miss refill jitter bound (0 = fixed cost)
	rng    *sim.RNG   // drawn ONLY on a miss, so all-hit runs never touch it

	// The DMA engine runs one transfer at a time; its entry is pinned
	// from TransferLatency until the matching Write so capacity
	// pressure can never evict an entry with an in-flight referenced
	// transfer (the I4 analogue on the board).
	pinned uint32
	hasPin bool
}

// lookupNIPT charges one data-path NIPT access at index idx. A hit is
// free (the entry is on the board); a miss pays the seeded refill cost,
// returned as extra latency, and installs the entry. pin marks the
// entry as referenced by the engine's in-flight transfer; the previous
// pin, if any, is released first — the engine is strictly one transfer
// at a time, so a new pinned lookup proves the prior flight is over
// (completed, aborted, or failed by an injected device fault).
func (n *Interface) lookupNIPT(idx uint32, pin bool) sim.Cycles {
	n.stats.NIPTLookups++
	c := n.cache
	if c == nil {
		n.stats.NIPTHits++
		n.m.niptHits.Inc()
		return 0
	}
	if pin {
		c.hasPin = false
	}
	if line, ok := c.lines[idx]; ok {
		c.tick++
		line.used = c.tick
		c.lines[idx] = line
		n.stats.NIPTHits++
		n.m.niptHits.Inc()
		if pin {
			c.pinned, c.hasPin = idx, true
		}
		return 0
	}
	n.stats.NIPTMisses++
	n.m.niptMisses.Inc()
	cost := c.refill
	if c.jitter > 0 {
		cost += sim.Cycles(c.rng.Intn(int(c.jitter)))
	}
	n.stats.NIPTRefillCycles += uint64(cost)
	n.m.niptRefillCycles.Add(uint64(cost))
	if n.installLine(idx) && pin {
		c.pinned, c.hasPin = idx, true
	}
	return cost
}

// installLine makes idx resident, evicting the LRU unpinned line when
// the cache is full. It reports whether the entry is resident
// afterward; false only when every line is pinned (capacity 1 with an
// in-flight transfer elsewhere), in which case the access bypasses the
// cache — charged, but not installed.
func (n *Interface) installLine(idx uint32) bool {
	c := n.cache
	if line, ok := c.lines[idx]; ok {
		c.tick++
		line.used = c.tick
		c.lines[idx] = line
		return true
	}
	if len(c.lines) >= c.cap && !n.evictLine() {
		return false
	}
	c.tick++
	c.lines[idx] = niptLine{used: c.tick}
	return true
}

// evictLine drops the least-recently-used unpinned line. Access ticks
// are unique, so the victim — and therefore the whole eviction
// sequence — is the same at any map iteration order and any worker
// count.
func (n *Interface) evictLine() bool {
	c := n.cache
	var victim uint32
	var best uint64
	found := false
	for idx, line := range c.lines {
		if c.hasPin && idx == c.pinned {
			continue
		}
		if !found || line.used < best {
			victim, best, found = idx, line.used, true
		}
	}
	if !found {
		return false
	}
	delete(c.lines, victim)
	n.stats.NIPTEvictions++
	n.m.niptEvictions.Inc()
	return true
}

// invalidateLine drops residency when software tears an entry down.
// This is not an eviction (no counter): the valid bit lives beside the
// tag, so an invalidated line simply ceases to exist. If the line was
// pinned the in-flight transfer is doomed anyway — Write through an
// invalid entry fails — so the pin is released too.
func (n *Interface) invalidateLine(idx uint32) {
	c := n.cache
	delete(c.lines, idx)
	if c.hasPin && c.pinned == idx {
		c.hasPin = false
	}
}

// releasePin ends the in-flight reference on idx, if that is what the
// pin covers (the transfer's completion Write reached the board).
func (n *Interface) releasePin(idx uint32) {
	if c := n.cache; c != nil && c.hasPin && c.pinned == idx {
		c.hasPin = false
	}
}

// --- diagnostics (tests, fuzzers) -------------------------------------------

// NIPTResident reports whether entry idx is resident on the board.
// Always true without a cache (the whole table is on-NIC).
func (n *Interface) NIPTResident(idx uint32) bool {
	if n.cache == nil {
		return true
	}
	_, ok := n.cache.lines[idx]
	return ok
}

// NIPTResidentCount returns the number of resident cache lines, or -1
// when the cache is disabled.
func (n *Interface) NIPTResidentCount() int {
	if n.cache == nil {
		return -1
	}
	return len(n.cache.lines)
}

// NIPTPinned returns the entry pinned by an in-flight transfer, if any.
func (n *Interface) NIPTPinned() (uint32, bool) {
	if n.cache == nil || !n.cache.hasPin {
		return 0, false
	}
	return n.cache.pinned, true
}
