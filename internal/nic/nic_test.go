package nic

import (
	"bytes"
	"testing"

	"shrimp/internal/addr"
	"shrimp/internal/bus"
	"shrimp/internal/device"
	"shrimp/internal/interconnect"
	"shrimp/internal/machine"
	"shrimp/internal/mem"
	"shrimp/internal/sim"
)

type pair struct {
	net    *interconnect.Backplane
	clocks [2]*sim.Clock
	rams   [2]*mem.Physical
	nics   [2]*Interface
}

func newPair(t *testing.T, cfg Config) *pair {
	t.Helper()
	costs := machine.SHRIMP1996()
	p := &pair{net: interconnect.New(costs, interconnect.Mesh(2))}
	for i := 0; i < 2; i++ {
		p.clocks[i] = sim.NewClock()
		p.rams[i] = mem.NewPhysical(64)
		p.nics[i] = New(i, p.clocks[i], costs, p.rams[i], bus.New(p.clocks[i], costs), p.net, cfg)
	}
	return p
}

func TestDeliberateUpdateEndToEnd(t *testing.T) {
	p := newPair(t, Config{NIPTPages: 16})
	// Node 0's NIPT entry 3 names node 1's frame 7.
	if err := p.nics[0].SetNIPT(3, NIPTEntry{Valid: true, DestNode: 1, DestPFN: 7}); err != nil {
		t.Fatal(err)
	}
	payload := []byte("deliberate update!!!") // 20 bytes, 4-aligned
	// The DMA engine would call Write at transfer completion.
	if err := p.nics[0].Write(device.DevAddr{Page: 3, Off: 256}, payload, 0); err != nil {
		t.Fatal(err)
	}
	// Drain both clocks: flight then receive DMA.
	p.clocks[1].Advance(1_000_000)
	want := addr.PAddr(7*addr.PageSize + 256)
	got, err := p.rams[1].Read(want, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("remote memory got %q", got)
	}
	s0, s1 := p.nics[0].Stats(), p.nics[1].Stats()
	if s0.PacketsSent != 1 || s0.BytesSent != 20 {
		t.Fatalf("sender stats %+v", s0)
	}
	if s1.PacketsReceived != 1 || s1.BytesReceived != 20 {
		t.Fatalf("receiver stats %+v", s1)
	}
}

func TestCheckTransferRules(t *testing.T) {
	p := newPair(t, Config{NIPTPages: 16})
	p.nics[0].SetNIPT(2, NIPTEntry{Valid: true, DestNode: 1, DestPFN: 1})
	n := p.nics[0]
	cases := []struct {
		name     string
		da       device.DevAddr
		n        int
		toDevice bool
		want     device.ErrBits
	}{
		{"ok", device.DevAddr{Page: 2, Off: 0}, 64, true, 0},
		{"dev→mem rejected", device.DevAddr{Page: 2, Off: 0}, 64, false, device.ErrReadOnly},
		{"misaligned offset", device.DevAddr{Page: 2, Off: 2}, 64, true, device.ErrAlignment},
		{"misaligned length", device.DevAddr{Page: 2, Off: 0}, 63, true, device.ErrAlignment},
		{"invalid NIPT entry", device.DevAddr{Page: 5, Off: 0}, 64, true, device.ErrInvalidEntry},
		{"beyond NIPT", device.DevAddr{Page: 99, Off: 0}, 64, true, device.ErrBounds},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := n.CheckTransfer(tc.da, tc.n, tc.toDevice); got != tc.want {
				t.Fatalf("CheckTransfer = %#x, want %#x", uint32(got), uint32(tc.want))
			}
		})
	}
}

func TestWriteThroughInvalidEntryFails(t *testing.T) {
	p := newPair(t, Config{NIPTPages: 4})
	if err := p.nics[0].Write(device.DevAddr{Page: 1}, []byte{1, 2, 3, 4}, 0); err == nil {
		t.Fatal("write through invalid NIPT entry succeeded")
	}
}

func TestReadRejected(t *testing.T) {
	p := newPair(t, Config{NIPTPages: 4})
	if _, err := p.nics[0].Read(device.DevAddr{}, 4, 0); err == nil {
		t.Fatal("device→memory read succeeded on send-only board")
	}
}

func TestNIPTBounds(t *testing.T) {
	p := newPair(t, Config{NIPTPages: 4})
	if err := p.nics[0].SetNIPT(4, NIPTEntry{}); err == nil {
		t.Fatal("out-of-range SetNIPT succeeded")
	}
	if _, err := p.nics[0].NIPT(4); err == nil {
		t.Fatal("out-of-range NIPT read succeeded")
	}
	if p.nics[0].NIPTSize() != 4 {
		t.Fatalf("NIPTSize = %d", p.nics[0].NIPTSize())
	}
}

func TestDefaultNIPTIs32K(t *testing.T) {
	p := newPair(t, Config{})
	if p.nics[0].NIPTSize() != 32768 {
		t.Fatalf("default NIPT size = %d, want 32768 (15-bit index)", p.nics[0].NIPTSize())
	}
	if p.nics[0].Pages() != 32768 {
		t.Fatalf("Pages = %d", p.nics[0].Pages())
	}
}

func TestBadDestinationDropped(t *testing.T) {
	p := newPair(t, Config{NIPTPages: 4})
	// Entry names a frame beyond the receiver's 64-frame RAM.
	p.nics[0].SetNIPT(0, NIPTEntry{Valid: true, DestNode: 1, DestPFN: 1000})
	p.nics[0].Write(device.DevAddr{Page: 0, Off: 0}, []byte{1, 2, 3, 4}, 0)
	p.clocks[1].Advance(1_000_000)
	if p.nics[1].Stats().RecvDrops != 1 {
		t.Fatalf("drops = %d, want 1", p.nics[1].Stats().RecvDrops)
	}
	if p.nics[1].Stats().PacketsReceived != 0 {
		t.Fatal("dropped packet counted as received")
	}
}

func TestReceiveSerializesOnBus(t *testing.T) {
	p := newPair(t, Config{NIPTPages: 4})
	p.nics[0].SetNIPT(0, NIPTEntry{Valid: true, DestNode: 1, DestPFN: 2})
	p.nics[0].SetNIPT(1, NIPTEntry{Valid: true, DestNode: 1, DestPFN: 3})
	big := make([]byte, 4096)
	p.nics[0].Write(device.DevAddr{Page: 0}, big, 0)
	p.nics[0].Write(device.DevAddr{Page: 1}, big, 0)
	p.clocks[1].Advance(100_000_000)
	if p.nics[1].Stats().PacketsReceived != 2 {
		t.Fatalf("received %d", p.nics[1].Stats().PacketsReceived)
	}
	// Two 4 KB receive DMAs cannot overlap on one EISA bus: total bus
	// burst time must be at least twice one transfer's.
	st := p.nics[1].Stats()
	if st.BytesReceived != 8192 {
		t.Fatalf("bytes received %d", st.BytesReceived)
	}
}

func TestPIOWindow(t *testing.T) {
	p := newPair(t, Config{NIPTPages: 8, PIOWindow: true})
	n := p.nics[0]
	first, count, ok := n.PIOWindow()
	if !ok || first != 8 || count != 1 {
		t.Fatalf("PIOWindow = %d,%d,%v", first, count, ok)
	}
	if n.Pages() != 9 {
		t.Fatalf("Pages = %d with PIO window", n.Pages())
	}
	// Transfers into the PIO window are not DMA targets.
	if bits := n.CheckTransfer(device.DevAddr{Page: 8}, 4, true); bits&device.ErrBounds == 0 {
		t.Fatal("DMA into PIO window accepted")
	}
}

func TestPIOSend(t *testing.T) {
	p := newPair(t, Config{NIPTPages: 8, PIOWindow: true})
	p.nics[0].SetNIPT(2, NIPTEntry{Valid: true, DestNode: 1, DestPFN: 5})
	n := p.nics[0]
	win := device.DevAddr{Page: 8}

	// Destination: NIPT index 2, offset 64.
	n.PIOStore(device.DevAddr{Page: 8, Off: PIORegDest}, 2<<addr.PageShift|64)
	payload := []byte("PIO FIFO")
	for i := 0; i < len(payload); i += 4 {
		w := uint32(payload[i]) | uint32(payload[i+1])<<8 |
			uint32(payload[i+2])<<16 | uint32(payload[i+3])<<24
		n.PIOStore(device.DevAddr{Page: 8, Off: PIORegData}, w)
	}
	n.PIOStore(device.DevAddr{Page: 8, Off: PIORegLaunch}, 0)

	p.clocks[1].Advance(1_000_000)
	got, _ := p.rams[1].Read(addr.PAddr(5*addr.PageSize+64), len(payload))
	if !bytes.Equal(got, payload) {
		t.Fatalf("remote memory got %q", got)
	}
	if n.PIOLoad(device.DevAddr{Page: 8, Off: PIORegStatus}) != 1 {
		t.Fatal("status register not ready")
	}
	if n.Stats().PIOWords == 0 {
		t.Fatal("PIO words not counted")
	}
	_ = win
}

func TestPIOLaunchToInvalidEntryDropsQuietly(t *testing.T) {
	p := newPair(t, Config{NIPTPages: 8, PIOWindow: true})
	n := p.nics[0]
	n.PIOStore(device.DevAddr{Page: 8, Off: PIORegDest}, 5<<addr.PageShift)
	n.PIOStore(device.DevAddr{Page: 8, Off: PIORegData}, 42)
	n.PIOStore(device.DevAddr{Page: 8, Off: PIORegLaunch}, 0)
	if n.Stats().PacketsSent != 0 {
		t.Fatal("packet launched through invalid entry")
	}
}

func TestTransferLatencyPositive(t *testing.T) {
	p := newPair(t, Config{NIPTPages: 4})
	if p.nics[0].TransferLatency(device.DevAddr{}, 4096) == 0 {
		t.Fatal("zero per-packet latency")
	}
}
