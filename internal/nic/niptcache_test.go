package nic

import (
	"testing"

	"shrimp/internal/device"
)

// base TransferLatency without any cache effect (SHRIMP1996 costs).
func baseXferLat(p *pair) int64 {
	return int64(p.nics[0].TransferLatency(device.DevAddr{Page: 9999, Off: 0}, 64))
}

func TestNIPTCacheLRUEviction(t *testing.T) {
	p := newPair(t, Config{NIPTPages: 16, NIPTCapacity: 2})
	n := p.nics[0]
	for idx := uint32(0); idx < 3; idx++ {
		n.SetNIPT(idx, NIPTEntry{Valid: true, DestNode: 1, DestPFN: 7 + idx})
	}
	// Write-allocate at capacity 2: installing 0,1,2 evicts 0 (LRU).
	if n.NIPTResident(0) || !n.NIPTResident(1) || !n.NIPTResident(2) {
		t.Fatalf("resident after installs: 0=%v 1=%v 2=%v",
			n.NIPTResident(0), n.NIPTResident(1), n.NIPTResident(2))
	}
	if s := n.Stats(); s.NIPTEvictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.NIPTEvictions)
	}
	// Touch 1 (hit), then miss on 0: the LRU line is now 2.
	if lat := n.TransferLatency(device.DevAddr{Page: 1, Off: 0}, 64); int64(lat) != baseXferLat(p) {
		t.Fatalf("hit charged extra latency: %d", lat)
	}
	n.Write(device.DevAddr{Page: 1, Off: 0}, []byte{1, 2, 3, 4}, 0) // release the pin
	missLat := n.TransferLatency(device.DevAddr{Page: 0, Off: 0}, 64)
	if int64(missLat) != baseXferLat(p)+int64(niptRefillDefault) {
		t.Fatalf("miss latency = %d, want base+%d", missLat, niptRefillDefault)
	}
	n.Write(device.DevAddr{Page: 0, Off: 0}, []byte{1, 2, 3, 4}, 0)
	if n.NIPTResident(2) || !n.NIPTResident(0) || !n.NIPTResident(1) {
		t.Fatalf("LRU eviction picked the wrong victim")
	}
	s := n.Stats()
	if s.NIPTHits+s.NIPTMisses != s.NIPTLookups {
		t.Fatalf("hits %d + misses %d != lookups %d", s.NIPTHits, s.NIPTMisses, s.NIPTLookups)
	}
	if s.NIPTRefillCycles != uint64(niptRefillDefault) {
		t.Fatalf("refill cycles = %d, want %d", s.NIPTRefillCycles, niptRefillDefault)
	}
}

func TestNIPTCachePinBlocksEviction(t *testing.T) {
	p := newPair(t, Config{NIPTPages: 16, NIPTCapacity: 1})
	n := p.nics[0]
	n.SetNIPT(4, NIPTEntry{Valid: true, DestNode: 1, DestPFN: 7})
	n.TransferLatency(device.DevAddr{Page: 4, Off: 0}, 64) // pins entry 4
	if idx, ok := n.NIPTPinned(); !ok || idx != 4 {
		t.Fatalf("pinned = (%d,%v), want (4,true)", idx, ok)
	}
	// Capacity pressure while the transfer is in flight: the install of
	// entry 5 must bypass the cache rather than evict the pinned line.
	n.SetNIPT(5, NIPTEntry{Valid: true, DestNode: 1, DestPFN: 8})
	if !n.NIPTResident(4) || n.NIPTResident(5) {
		t.Fatalf("pinned entry evicted under capacity pressure")
	}
	if s := n.Stats(); s.NIPTEvictions != 0 {
		t.Fatalf("evictions = %d, want 0 (only candidate pinned)", s.NIPTEvictions)
	}
	// Transfer completion releases the pin; the next miss may evict.
	n.Write(device.DevAddr{Page: 4, Off: 0}, []byte{1, 2, 3, 4}, 0)
	if _, ok := n.NIPTPinned(); ok {
		t.Fatalf("pin survived the completion Write")
	}
	n.TransferLatency(device.DevAddr{Page: 5, Off: 0}, 64)
	if n.NIPTResident(4) || !n.NIPTResident(5) {
		t.Fatalf("post-release miss did not evict the stale line")
	}
}

func TestNIPTCacheInvalidateDropsResidencyAndPin(t *testing.T) {
	p := newPair(t, Config{NIPTPages: 16, NIPTCapacity: 4})
	n := p.nics[0]
	n.SetNIPT(2, NIPTEntry{Valid: true, DestNode: 1, DestPFN: 7})
	n.TransferLatency(device.DevAddr{Page: 2, Off: 0}, 64) // pin 2
	// Software tears the entry down mid-flight: residency and pin go
	// (the doomed Write will fail on the invalid backing entry anyway),
	// and no eviction is counted — this is an invalidation.
	n.SetNIPT(2, NIPTEntry{})
	if n.NIPTResident(2) {
		t.Fatalf("invalidated entry still resident")
	}
	if _, ok := n.NIPTPinned(); ok {
		t.Fatalf("pin survived invalidation")
	}
	if err := n.Write(device.DevAddr{Page: 2, Off: 0}, []byte{1, 2, 3, 4}, 0); err == nil {
		t.Fatalf("Write through invalidated entry succeeded")
	}
	if s := n.Stats(); s.NIPTEvictions != 0 {
		t.Fatalf("invalidation counted as eviction")
	}
}

func TestNIPTRefillJitterSeededDeterministic(t *testing.T) {
	run := func(seed uint64) []int64 {
		p := newPair(t, Config{NIPTPages: 16, NIPTCapacity: 1,
			NIPTRefillJitter: 64, NIPTSeed: seed})
		n := p.nics[0]
		n.SetNIPT(0, NIPTEntry{Valid: true, DestNode: 1, DestPFN: 7})
		n.SetNIPT(1, NIPTEntry{Valid: true, DestNode: 1, DestPFN: 8})
		var lats []int64
		for i := 0; i < 8; i++ {
			da := device.DevAddr{Page: uint32(i % 2), Off: 0}
			lats = append(lats, int64(n.TransferLatency(da, 64)))
			n.Write(da, []byte{1, 2, 3, 4}, 0)
		}
		return lats
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at miss %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestNIPTCapacityZeroIsUnbounded(t *testing.T) {
	p := newPair(t, Config{NIPTPages: 16})
	n := p.nics[0]
	n.SetNIPT(3, NIPTEntry{Valid: true, DestNode: 1, DestPFN: 7})
	for i := 0; i < 5; i++ {
		n.TransferLatency(device.DevAddr{Page: 3, Off: 0}, 64)
	}
	s := n.Stats()
	if s.NIPTLookups != 5 || s.NIPTHits != 5 || s.NIPTMisses != 0 {
		t.Fatalf("unbounded stats %+v", s)
	}
	if n.NIPTResidentCount() != -1 || !n.NIPTResident(9) {
		t.Fatalf("unbounded board should report the whole table resident")
	}
}
