package nic

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"shrimp/internal/addr"
	"shrimp/internal/interconnect"
	"shrimp/internal/sim"
	"shrimp/internal/trace"
)

// This file is the NIC's reliable-delivery sublayer: the machinery the
// paper did not need because the Paragon backplane "delivers packets
// reliably and in order". When the backplane carries a FaultPlan that
// assumption breaks, so the board grows what real RDMA-class NICs carry
// per connection: sequence numbers, a CRC over header+payload, a
// cumulative-ACK + go-back-N retransmit scheme with exponential backoff
// on the simulated clock, a small resequencing buffer for late
// deliveries, and a credit window so a slow receiver backpressures the
// UDMA queue instead of being buried.
//
// Protocol state machine (per directed (sender,dest) pair):
//
//	sender:  pending ──pump(window)──▶ unacked ──cumulative ACK──▶ done
//	            ▲                        │ timeout: go-back-N resend,
//	            │                        │ backoff ×2, retries++
//	            └── retries > MaxRetries: epoch++, flush, latch
//	                DeliveryError (consumed by the next Write)
//
//	receiver: CRC bad → drop (never reaches memory)
//	          seq < expected → dup-drop, re-ACK
//	          seq = expected → deliver, drain reseq buffer, ACK
//	          seq > expected → hold in reseq buffer (bounded), dup-ACK
//
// Every ACK carries Epoch (connection incarnation), the cumulative Ack
// and the receiver's remaining buffer credits (Window).

// ReliabilityConfig enables and sizes the sublayer. The zero value
// (Enabled=false) is the paper's reliable-wire mode: packets go out
// raw, exactly as before.
type ReliabilityConfig struct {
	Enabled bool
	// Window is the go-back-N send window in packets (default 8).
	Window int
	// MaxPending bounds the retransmit+pending buffer per destination;
	// CheckTransfer answers queue-full beyond it (default 2×Window).
	MaxPending int
	// RetxTimeout is the base retransmit timeout in cycles; it doubles
	// per consecutive timeout (default 4096).
	RetxTimeout sim.Cycles
	// MaxRetries caps consecutive timeouts without ACK progress before
	// the link is declared broken (default 8).
	MaxRetries int
	// ReseqBuf is the receiver's resequencing capacity in packets
	// (default = Window).
	ReseqBuf int
	// IdleReclaimAge ages out idle per-destination protocol state: a
	// sender or receiver quiescent for this many cycles is returned to
	// the board's free pool at the next barrier (ReclaimIdle in
	// reclaim.go), keeping only a compact epoch memory in host memory.
	// 0 disables reclamation (the seed behavior: state for every peer
	// lives on the NIC forever).
	IdleReclaimAge sim.Cycles
}

func (c ReliabilityConfig) withDefaults() ReliabilityConfig {
	if c.Window <= 0 {
		c.Window = 8
	}
	if c.MaxPending <= 0 {
		c.MaxPending = 2 * c.Window
	}
	if c.RetxTimeout <= 0 {
		c.RetxTimeout = 4096
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 8
	}
	if c.ReseqBuf <= 0 {
		c.ReseqBuf = c.Window
	}
	return c
}

// DeliveryError reports that the reliability layer exhausted its retry
// budget to a destination and gave up. It is latched per destination
// and returned by the *next* Write through that link (the failed
// transfer's DMA had already completed into the board), which surfaces
// it as dma.TransferError{FaultDevice} → ErrTransferFault status →
// udmalib.HardError, so udmalib.SendRetry composes: its re-send starts
// the link's next epoch.
type DeliveryError struct {
	Dest  int
	Epoch uint32 // the incarnation that failed
	Lost  int    // packets abandoned (unacked + queued)
}

func (e *DeliveryError) Error() string {
	return fmt.Sprintf("nic: delivery to node %d failed after retry cap (epoch %d, %d packets abandoned)",
		e.Dest, e.Epoch, e.Lost)
}

// relPkt is one queued data packet and its retransmit bookkeeping.
type relPkt struct {
	seq       uint64
	destAddr  addr.PAddr
	payload   []byte
	firstSent sim.Cycles
	sent      bool // transmitted at least once
	retx      bool // retransmitted (Karn: excluded from RTT sampling)
}

// relSender is the per-destination send half.
type relSender struct {
	dest      int
	epoch     uint32
	nextSeq   uint64 // next sequence number to assign (first packet is 1)
	ackedTo   uint64 // cumulative: all seq <= ackedTo delivered
	advWindow int    // receiver's advertised credits
	pending   []*relPkt
	unacked   []*relPkt
	timer     *sim.Event
	retries   int
	broken    error // latched DeliveryError, consumed by the next Write
	// lastActive is the last cycle this link moved (send, retransmit or
	// ACK progress); ReclaimIdle ages quiescent links out against it.
	lastActive sim.Cycles
}

// relReceiver is the per-source receive half.
type relReceiver struct {
	src        int
	epoch      uint32
	expected   uint64 // next in-order sequence wanted
	reseq      map[uint64]*interconnect.Packet
	lastActive sim.Cycles // last data arrival (see relSender.lastActive)
}

// rxMemory is the compact host-memory record kept for a reclaimed
// receiver: enough to restore dedupe/ordering state exactly if the
// source ever speaks again (see reclaim.go).
type rxMemory struct {
	epoch    uint32
	expected uint64
}

// reliability bundles both halves for one board.
type reliability struct {
	cfg       ReliabilityConfig
	senders   map[int]*relSender
	receivers map[int]*relReceiver

	// Reclamation state (reclaim.go): epoch memories for reclaimed
	// destinations, and free pools so churning flows reuse structs
	// instead of growing the heap with the total flow count.
	senderMem  map[int]uint32
	recvMem    map[int]rxMemory
	senderPool []*relSender
	recvPool   []*relReceiver
}

func newReliability(cfg ReliabilityConfig) *reliability {
	return &reliability{
		cfg:       cfg.withDefaults(),
		senders:   make(map[int]*relSender),
		receivers: make(map[int]*relReceiver),
		senderMem: make(map[int]uint32),
		recvMem:   make(map[int]rxMemory),
	}
}

func (n *Interface) sender(dest int) *relSender {
	if s, ok := n.rel.senders[dest]; ok {
		return s
	}
	var s *relSender
	if k := len(n.rel.senderPool); k > 0 {
		s = n.rel.senderPool[k-1]
		n.rel.senderPool = n.rel.senderPool[:k-1]
		pending, unacked := s.pending[:0], s.unacked[:0]
		*s = relSender{pending: pending, unacked: unacked}
	} else {
		s = &relSender{}
	}
	s.dest = dest
	s.nextSeq = 1
	s.advWindow = n.rel.cfg.Window
	s.lastActive = n.clock.Now()
	if mem, ok := n.rel.senderMem[dest]; ok {
		// Resurrection: the reclaimed incarnation's epoch was kept in
		// host memory; the new one starts one past it, so the receiver
		// resynchronizes through its ordinary higher-epoch path exactly
		// as after breakLink.
		s.epoch = mem + 1
		delete(n.rel.senderMem, dest)
		n.stats.Resurrections++
	}
	n.rel.senders[dest] = s
	return s
}

func (n *Interface) receiver(src int) *relReceiver {
	if r, ok := n.rel.receivers[src]; ok {
		return r
	}
	var r *relReceiver
	if k := len(n.rel.recvPool); k > 0 {
		r = n.rel.recvPool[k-1]
		n.rel.recvPool = n.rel.recvPool[:k-1]
	} else {
		r = &relReceiver{reseq: make(map[uint64]*interconnect.Packet)}
	}
	r.src = src
	r.epoch = 0
	r.expected = 1
	r.lastActive = n.clock.Now()
	if mem, ok := n.rel.recvMem[src]; ok {
		// Restore the dedupe horizon, so a stale duplicate of a packet
		// delivered before the reclaim can never be delivered twice.
		r.epoch = mem.epoch
		r.expected = mem.expected
		delete(n.rel.recvMem, src)
		n.stats.Resurrections++
	}
	n.rel.receivers[src] = r
	return r
}

// packetCRC computes the IEEE CRC32 over the protocol header fields and
// payload (the CRC field itself excluded). Flipping any covered bit —
// payload bytes, or the Ack field of an empty ACK — breaks it.
func packetCRC(p *interconnect.Packet) uint32 {
	var hdr [45]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(p.Src))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(p.Dst))
	hdr[8] = byte(p.Kind)
	binary.LittleEndian.PutUint32(hdr[9:], p.Epoch)
	binary.LittleEndian.PutUint64(hdr[13:], p.Seq)
	binary.LittleEndian.PutUint64(hdr[21:], p.Ack)
	binary.LittleEndian.PutUint32(hdr[29:], p.Window)
	binary.LittleEndian.PutUint64(hdr[33:], uint64(p.DestAddr))
	binary.LittleEndian.PutUint32(hdr[41:], uint32(len(p.Payload)))
	h := crc32.NewIEEE()
	h.Write(hdr[:])
	h.Write(p.Payload)
	return h.Sum32()
}

// --- send half ---------------------------------------------------------------

// relSend enqueues a data packet for reliable delivery. It returns the
// latched DeliveryError (consuming it) if the link's previous epoch
// just failed.
func (n *Interface) relSend(dest int, destAddr addr.PAddr, payload []byte) error {
	s := n.sender(dest)
	s.lastActive = n.clock.Now()
	if err := s.broken; err != nil {
		s.broken = nil // consumed; this epoch starts fresh on the next send
		return err
	}
	p := &relPkt{seq: s.nextSeq, destAddr: destAddr, payload: payload}
	s.nextSeq++
	s.pending = append(s.pending, p)
	n.pump(s)
	return nil
}

// effWindow is how many packets may be unacked right now: the smaller
// of our window and the receiver's advertised credits, floored at 1 so
// a zero advertisement can never wedge the link (the probe packet
// doubles as a window update solicit).
func (n *Interface) effWindow(s *relSender) int {
	w := n.rel.cfg.Window
	if s.advWindow < w {
		w = s.advWindow
	}
	if w < 1 {
		w = 1
	}
	return w
}

// pump transmits queued packets while the window has room, then arms
// the retransmit timer.
func (n *Interface) pump(s *relSender) {
	for len(s.pending) > 0 && len(s.unacked) < n.effWindow(s) {
		p := s.pending[0]
		s.pending = s.pending[1:]
		s.unacked = append(s.unacked, p)
		n.transmitData(s, p, false)
	}
	n.armTimer(s)
}

func (n *Interface) transmitData(s *relSender, p *relPkt, retrans bool) {
	pkt := &interconnect.Packet{
		Src:      n.nodeID,
		Dst:      s.dest,
		DestAddr: p.destAddr,
		Payload:  p.payload,
		Kind:     interconnect.PktData,
		Epoch:    s.epoch,
		Seq:      p.seq,
		Retrans:  retrans,
	}
	s.lastActive = n.clock.Now()
	pkt.CRC = packetCRC(pkt)
	if !p.sent {
		p.sent = true
		p.firstSent = n.clock.Now()
		n.stats.PacketsSent++
		n.stats.BytesSent += uint64(len(p.payload))
		n.m.pktsSent.Inc()
		n.m.bytesSent.Add(uint64(len(p.payload)))
		n.m.pktBytes.Observe(uint64(len(p.payload)))
		n.tracer.Record(trace.EvPacketSend, uint64(s.dest), uint64(len(p.payload)), "")
	} else {
		p.retx = true
		n.stats.Retransmits++
		n.stats.RetransBytes += uint64(len(p.payload))
		n.m.retransmits.Inc()
		n.tracer.Record(trace.EvRetransmit, uint64(s.dest), p.seq, "")
	}
	n.net.Send(pkt)
}

// armTimer (re)schedules the go-back-N retransmit timer with the
// current backoff, or cancels it when nothing is outstanding.
func (n *Interface) armTimer(s *relSender) {
	if len(s.unacked) == 0 {
		if s.timer != nil {
			n.clock.Cancel(s.timer)
			s.timer = nil
		}
		return
	}
	if s.timer != nil {
		return
	}
	shift := s.retries
	if shift > 10 {
		shift = 10
	}
	d := n.rel.cfg.RetxTimeout << uint(shift)
	s.timer = n.clock.ScheduleAfter(d, "nic-retx", func() {
		s.timer = nil
		n.onRetxTimeout(s)
	})
}

func (n *Interface) onRetxTimeout(s *relSender) {
	if len(s.unacked) == 0 {
		return
	}
	s.retries++
	if s.retries > n.rel.cfg.MaxRetries {
		n.breakLink(s)
		return
	}
	// Go-back-N: resend the whole unacked window in order.
	for _, p := range s.unacked {
		n.transmitData(s, p, true)
	}
	n.armTimer(s)
}

// breakLink gives up on the destination: abandon everything queued,
// bump the epoch so the receiver resynchronizes, and latch a typed
// error for the next Write through this link.
func (n *Interface) breakLink(s *relSender) {
	lost := len(s.unacked) + len(s.pending)
	for _, p := range s.unacked {
		n.stats.FailedPackets++
		n.stats.FailedBytes += uint64(len(p.payload))
	}
	for _, p := range s.pending {
		n.stats.FailedPackets++
		n.stats.FailedBytes += uint64(len(p.payload))
	}
	s.broken = &DeliveryError{Dest: s.dest, Epoch: s.epoch, Lost: lost}
	n.stats.DeliveryFailures++
	n.m.deliveryFailures.Inc()
	n.tracer.Record(trace.EvDeliveryFail, uint64(s.dest), uint64(lost), "retry cap")
	if s.timer != nil {
		n.clock.Cancel(s.timer)
		s.timer = nil
	}
	s.epoch++
	s.nextSeq = 1
	s.ackedTo = 0
	s.advWindow = n.rel.cfg.Window
	s.unacked = nil
	s.pending = nil
	s.retries = 0
}

// handleAck processes a cumulative ACK arriving back at the sender.
func (n *Interface) handleAck(pkt *interconnect.Packet) {
	if packetCRC(pkt) != pkt.CRC {
		n.stats.CorruptDropped++
		n.m.crcDropped.Inc()
		n.tracer.Record(trace.EvCrcDrop, uint64(pkt.Src), pkt.Ack, "ack")
		return
	}
	n.stats.AcksReceived++
	n.m.acksRecv.Inc()
	s := n.sender(pkt.Src)
	s.lastActive = n.clock.Now()
	if pkt.Epoch != s.epoch {
		return // stale incarnation
	}
	if pkt.Ack > s.ackedTo {
		now := n.clock.Now()
		for len(s.unacked) > 0 && s.unacked[0].seq <= pkt.Ack {
			p := s.unacked[0]
			s.unacked = s.unacked[1:]
			if !p.retx {
				n.m.ackRTT.Observe(uint64(now - p.firstSent))
			}
		}
		s.ackedTo = pkt.Ack
		s.retries = 0
		if s.timer != nil { // restart the timer for what remains
			n.clock.Cancel(s.timer)
			s.timer = nil
		}
	} else {
		n.stats.DupAcks++
		n.m.dupAcks.Inc()
	}
	s.advWindow = int(pkt.Window)
	n.pump(s)
}

// --- receive half ------------------------------------------------------------

// recvData runs the receiver half of the protocol for an arriving data
// packet. Only in-order, CRC-clean packets ever reach the memory path.
func (n *Interface) recvData(pkt *interconnect.Packet) {
	if packetCRC(pkt) != pkt.CRC {
		n.stats.CorruptDropped++
		n.stats.CorruptBytes += uint64(len(pkt.Payload))
		n.m.crcDropped.Inc()
		n.tracer.Record(trace.EvCrcDrop, uint64(pkt.Src), pkt.Seq, "data")
		return
	}
	r := n.receiver(pkt.Src)
	r.lastActive = n.clock.Now()
	if pkt.Epoch > r.epoch {
		// The sender gave up and restarted; anything parked from the
		// old incarnation can never complete a window.
		for _, q := range r.reseq {
			n.stats.ReseqDropped++
			n.stats.ReseqBytes += uint64(len(q.Payload))
		}
		r.reseq = make(map[uint64]*interconnect.Packet)
		r.epoch = pkt.Epoch
		r.expected = 1
	} else if pkt.Epoch < r.epoch {
		n.stats.DupDropped++
		n.stats.DupBytes += uint64(len(pkt.Payload))
		return
	}
	switch {
	case pkt.Seq < r.expected:
		// Duplicate (fabric copy, or a retransmit whose original made
		// it). Re-ACK so a sender that missed the ACK can move on.
		n.stats.DupDropped++
		n.stats.DupBytes += uint64(len(pkt.Payload))
		n.m.dupDropped.Inc()
		n.tracer.Record(trace.EvDupDrop, uint64(pkt.Src), pkt.Seq, "")
		n.sendAck(r)
	case pkt.Seq == r.expected:
		n.deliverData(pkt)
		r.expected++
		for {
			q, ok := r.reseq[r.expected]
			if !ok {
				break
			}
			delete(r.reseq, r.expected)
			n.deliverData(q)
			r.expected++
		}
		n.sendAck(r)
	default: // gap: an earlier packet is missing
		if _, dup := r.reseq[pkt.Seq]; dup {
			n.stats.DupDropped++
			n.stats.DupBytes += uint64(len(pkt.Payload))
			n.m.dupDropped.Inc()
		} else if len(r.reseq) >= n.rel.cfg.ReseqBuf ||
			pkt.Seq > r.expected+uint64(n.rel.cfg.ReseqBuf) {
			// No room (or hopelessly far ahead): the retransmit will
			// carry it again.
			n.stats.ReseqDropped++
			n.stats.ReseqBytes += uint64(len(pkt.Payload))
		} else {
			r.reseq[pkt.Seq] = pkt
		}
		n.sendAck(r) // dup-ACK: tells the sender where the hole is
	}
}

// sendAck emits the receiver's cumulative ACK with remaining credits.
func (n *Interface) sendAck(r *relReceiver) {
	credits := n.rel.cfg.ReseqBuf - len(r.reseq)
	if credits < 0 {
		credits = 0
	}
	ack := &interconnect.Packet{
		Src:    n.nodeID,
		Dst:    r.src,
		Kind:   interconnect.PktAck,
		Epoch:  r.epoch,
		Ack:    r.expected - 1,
		Window: uint32(credits),
	}
	ack.CRC = packetCRC(ack)
	n.stats.AcksSent++
	n.m.acksSent.Inc()
	n.net.Send(ack)
}

// ReseqHeldBytes returns payload bytes currently parked in reseq
// buffers (for end-of-run byte accounting; zero once streams are
// in-order complete).
func (n *Interface) ReseqHeldBytes() uint64 {
	if n.rel == nil {
		return 0
	}
	var total uint64
	for _, r := range n.rel.receivers {
		for _, q := range r.reseq {
			total += uint64(len(q.Payload))
		}
	}
	return total
}

// PendingUnsent returns data packets queued to a destination but not
// yet transmitted (tests and diagnostics).
func (n *Interface) PendingUnsent(dest int) int {
	if n.rel == nil {
		return 0
	}
	s, ok := n.rel.senders[dest]
	if !ok {
		return 0
	}
	return len(s.pending)
}
