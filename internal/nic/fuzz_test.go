package nic

import (
	"testing"

	"shrimp/internal/addr"
	"shrimp/internal/device"
)

// FuzzNIPTLookup drives the board's NIPT management, transfer
// validation, launch and PIO paths with arbitrary indices, offsets and
// entries — at a fuzzed cache capacity (0 = unbounded, else 1..N), so
// the miss/refill/eviction machinery runs under the same adversarial
// inputs. The board must never panic: out-of-range indices are
// errors, out-of-range transfer pages are ErrBounds, launches through
// invalid entries are refused, and packets aimed at frames the
// receiver does not have are counted as drops — never memory writes.
// Cache invariants checked on every input: hits+misses == lookups,
// residency never exceeds capacity, and an entry referenced by an
// in-flight transfer is never evicted (the I4 analogue on the board).
func FuzzNIPTLookup(f *testing.F) {
	f.Add(uint32(3), uint32(7), uint32(256), uint16(20), true, true, uint8(0))
	f.Add(uint32(16), uint32(0), uint32(0), uint16(4), true, true, uint8(1))    // index == size
	f.Add(uint32(1<<31), uint32(0), uint32(0), uint16(4), true, true, uint8(2)) // absurd index
	f.Add(uint32(5), uint32(1<<20), uint32(4092), uint16(8), true, true, uint8(3))
	f.Add(uint32(2), uint32(3), uint32(2), uint16(6), false, false, uint8(17)) // misaligned recv
	f.Fuzz(func(t *testing.T, index, pfn, off uint32, nbytes uint16, toDevice, valid bool, capSel uint8) {
		const niptPages = 16
		capacity := int(capSel) % (niptPages + 2) // 0 = unbounded, else 1..17
		p := newPair(t, Config{NIPTPages: niptPages, PIOWindow: true,
			NIPTCapacity: capacity, NIPTRefillJitter: 16,
			NIPTSeed: uint64(index)<<8 | uint64(capSel)})
		sender := p.nics[0]

		entry := NIPTEntry{Valid: valid, DestNode: 1, DestPFN: pfn}
		err := sender.SetNIPT(index, entry)
		if (err != nil) != (index >= sender.NIPTSize()) {
			t.Fatalf("SetNIPT(%d) err=%v with %d entries", index, err, sender.NIPTSize())
		}
		if _, err := sender.NIPT(index); (err != nil) != (index >= sender.NIPTSize()) {
			t.Fatalf("NIPT(%d) lookup err=%v with %d entries", index, err, sender.NIPTSize())
		}

		da := device.DevAddr{Page: index, Off: off % addr.PageSize}
		bits := sender.CheckTransfer(da, int(nbytes), toDevice)
		if index >= niptPages && bits&device.ErrBounds == 0 {
			t.Fatalf("CheckTransfer accepted out-of-range page %d: bits %#x", index, uint32(bits))
		}
		if !toDevice && bits&device.ErrReadOnly == 0 {
			t.Fatal("CheckTransfer accepted a device-to-memory transfer on the send-only board")
		}
		if index < niptPages && valid && toDevice &&
			da.Off%4 == 0 && nbytes%4 == 0 && bits != 0 {
			t.Fatalf("CheckTransfer rejected a legal transfer: bits %#x", uint32(bits))
		}

		if bits == 0 && nbytes > 0 {
			// The engine's contract: Write follows a clean CheckTransfer.
			payload := make([]byte, nbytes)
			for i := range payload {
				payload[i] = byte(i)
			}
			if err := sender.Write(da, payload, 0); err != nil {
				t.Fatalf("Write after clean CheckTransfer: %v", err)
			}
			sent := sender.Stats()
			if sent.PacketsSent != 1 || sent.BytesSent != uint64(nbytes) {
				t.Fatalf("launch accounted wrong: %+v", sent)
			}
			// Drain the flight and receive DMA; the packet must either
			// land in an installed frame or be dropped — exactly one.
			p.clocks[1].Advance(10_000_000)
			recv := p.nics[1].Stats()
			if recv.PacketsReceived+recv.RecvDrops != 1 {
				t.Fatalf("packet neither received nor dropped: %+v", recv)
			}
			if recv.PacketsReceived == 1 && !p.rams[1].Contains(
				addr.PAddr(pfn<<addr.PageShift|da.Off), int(nbytes)) {
				t.Fatal("receive DMA wrote outside installed memory")
			}
		}

		// PIO path with the same raw destination word: an invalid or
		// out-of-range NIPT index silently drops the packet.
		pioBefore := sender.Stats().PacketsSent
		pioDA := device.DevAddr{Page: niptPages}
		sender.PIOStore(device.DevAddr{Page: pioDA.Page, Off: PIORegDest}, index<<addr.PageShift|off&addr.OffsetMask)
		sender.PIOStore(device.DevAddr{Page: pioDA.Page, Off: PIORegData}, 0xDEADBEEF)
		sender.PIOStore(device.DevAddr{Page: pioDA.Page, Off: PIORegLaunch}, 1)
		// A cache miss defers the launch until the refill lands; run the
		// sender's clock past any refill before counting.
		p.clocks[0].Advance(10_000)
		launched := sender.Stats().PacketsSent - pioBefore
		if legal := index < niptPages && valid; (launched == 1) != legal {
			t.Fatalf("PIO launch through entry %d (valid=%v): %d packets", index, valid, launched)
		}
		if sender.PIOLoad(device.DevAddr{Page: pioDA.Page, Off: PIORegStatus}) != 1 {
			t.Fatal("PIO status register not ready")
		}
		p.clocks[1].Advance(10_000_000)

		// Interleaved SetNIPT / lookup / eviction pressure derived from
		// the same inputs, with an in-flight transfer pinning one entry.
		if capacity > 0 {
			pinIdx := index % niptPages
			sender.SetNIPT(pinIdx, NIPTEntry{Valid: true, DestNode: 1, DestPFN: pfn % 64})
			pinDA := device.DevAddr{Page: pinIdx, Off: 0}
			sender.TransferLatency(pinDA, 4) // engine lookup: pins pinIdx
			if !sender.NIPTResident(pinIdx) {
				t.Fatalf("pinned entry %d not resident after its lookup", pinIdx)
			}
			pinLive := true // until software itself tears the entry down
			for i := uint32(1); i <= 2*uint32(capacity)+2; i++ {
				idx := (index + i) % niptPages
				if i%3 == 0 {
					sender.SetNIPT(idx, NIPTEntry{})
					if idx == pinIdx {
						pinLive = false // invalidation releases the pin by design
					}
				} else {
					sender.SetNIPT(idx, NIPTEntry{Valid: true, DestNode: 1, DestPFN: (pfn + i) % 64})
				}
				if got := sender.NIPTResidentCount(); got > capacity {
					t.Fatalf("residency %d exceeds capacity %d", got, capacity)
				}
				if pinLive && !sender.NIPTResident(pinIdx) {
					t.Fatalf("entry %d evicted while its transfer is in flight", pinIdx)
				}
			}
			if e, _ := sender.NIPT(pinIdx); e.Valid {
				// Completion Write releases the pin (and launches).
				if err := sender.Write(pinDA, []byte{1, 2, 3, 4}, 0); err != nil {
					t.Fatalf("completion write through pinned entry: %v", err)
				}
				if _, pinned := sender.NIPTPinned(); pinned {
					t.Fatal("pin survived the completion write")
				}
			}
			p.clocks[0].Advance(10_000)
			p.clocks[1].Advance(10_000_000)
		}
		s := sender.Stats()
		if s.NIPTHits+s.NIPTMisses != s.NIPTLookups {
			t.Fatalf("hits %d + misses %d != lookups %d", s.NIPTHits, s.NIPTMisses, s.NIPTLookups)
		}
	})
}
