package nic

import (
	"testing"

	"shrimp/internal/addr"
	"shrimp/internal/device"
)

// FuzzNIPTLookup drives the board's NIPT management, transfer
// validation, launch and PIO paths with arbitrary indices, offsets and
// entries. The board must never panic: out-of-range indices are
// errors, out-of-range transfer pages are ErrBounds, launches through
// invalid entries are refused, and packets aimed at frames the
// receiver does not have are counted as drops — never memory writes.
func FuzzNIPTLookup(f *testing.F) {
	f.Add(uint32(3), uint32(7), uint32(256), uint16(20), true, true)
	f.Add(uint32(16), uint32(0), uint32(0), uint16(4), true, true)    // index == size
	f.Add(uint32(1<<31), uint32(0), uint32(0), uint16(4), true, true) // absurd index
	f.Add(uint32(5), uint32(1<<20), uint32(4092), uint16(8), true, true)
	f.Add(uint32(2), uint32(3), uint32(2), uint16(6), false, false) // misaligned recv
	f.Fuzz(func(t *testing.T, index, pfn, off uint32, nbytes uint16, toDevice, valid bool) {
		const niptPages = 16
		p := newPair(t, Config{NIPTPages: niptPages, PIOWindow: true})
		sender := p.nics[0]

		entry := NIPTEntry{Valid: valid, DestNode: 1, DestPFN: pfn}
		err := sender.SetNIPT(index, entry)
		if (err != nil) != (index >= sender.NIPTSize()) {
			t.Fatalf("SetNIPT(%d) err=%v with %d entries", index, err, sender.NIPTSize())
		}
		if _, err := sender.NIPT(index); (err != nil) != (index >= sender.NIPTSize()) {
			t.Fatalf("NIPT(%d) lookup err=%v with %d entries", index, err, sender.NIPTSize())
		}

		da := device.DevAddr{Page: index, Off: off % addr.PageSize}
		bits := sender.CheckTransfer(da, int(nbytes), toDevice)
		if index >= niptPages && bits&device.ErrBounds == 0 {
			t.Fatalf("CheckTransfer accepted out-of-range page %d: bits %#x", index, uint32(bits))
		}
		if !toDevice && bits&device.ErrReadOnly == 0 {
			t.Fatal("CheckTransfer accepted a device-to-memory transfer on the send-only board")
		}
		if index < niptPages && valid && toDevice &&
			da.Off%4 == 0 && nbytes%4 == 0 && bits != 0 {
			t.Fatalf("CheckTransfer rejected a legal transfer: bits %#x", uint32(bits))
		}

		if bits == 0 && nbytes > 0 {
			// The engine's contract: Write follows a clean CheckTransfer.
			payload := make([]byte, nbytes)
			for i := range payload {
				payload[i] = byte(i)
			}
			if err := sender.Write(da, payload, 0); err != nil {
				t.Fatalf("Write after clean CheckTransfer: %v", err)
			}
			sent := sender.Stats()
			if sent.PacketsSent != 1 || sent.BytesSent != uint64(nbytes) {
				t.Fatalf("launch accounted wrong: %+v", sent)
			}
			// Drain the flight and receive DMA; the packet must either
			// land in an installed frame or be dropped — exactly one.
			p.clocks[1].Advance(10_000_000)
			recv := p.nics[1].Stats()
			if recv.PacketsReceived+recv.RecvDrops != 1 {
				t.Fatalf("packet neither received nor dropped: %+v", recv)
			}
			if recv.PacketsReceived == 1 && !p.rams[1].Contains(
				addr.PAddr(pfn<<addr.PageShift|da.Off), int(nbytes)) {
				t.Fatal("receive DMA wrote outside installed memory")
			}
		}

		// PIO path with the same raw destination word: an invalid or
		// out-of-range NIPT index silently drops the packet.
		pioBefore := sender.Stats().PacketsSent
		pioDA := device.DevAddr{Page: niptPages}
		sender.PIOStore(device.DevAddr{Page: pioDA.Page, Off: PIORegDest}, index<<addr.PageShift|off&addr.OffsetMask)
		sender.PIOStore(device.DevAddr{Page: pioDA.Page, Off: PIORegData}, 0xDEADBEEF)
		sender.PIOStore(device.DevAddr{Page: pioDA.Page, Off: PIORegLaunch}, 1)
		launched := sender.Stats().PacketsSent - pioBefore
		if legal := index < niptPages && valid; (launched == 1) != legal {
			t.Fatalf("PIO launch through entry %d (valid=%v): %d packets", index, valid, launched)
		}
		if sender.PIOLoad(device.DevAddr{Page: pioDA.Page, Off: PIORegStatus}) != 1 {
			t.Fatal("PIO status register not ready")
		}
		p.clocks[1].Advance(10_000_000)
	})
}
