package nic

import (
	"bytes"
	"errors"
	"testing"

	"shrimp/internal/addr"
	"shrimp/internal/device"
	"shrimp/internal/interconnect"
)

// TestPeerCrashRebootResequencesNextEpoch: the receiving node of a live
// flow crashes mid-stream. The sender's retransmits die on the downed
// node, the retry cap breaks the link (typed *DeliveryError on the next
// Write), and after the reboot the flow resequences cleanly on the
// bumped epoch — with duplicates armed on the wire — while the
// crash-preserved dedupe horizon still rejects a stale pre-crash copy.
func TestPeerCrashRebootResequencesNextEpoch(t *testing.T) {
	p := newPair(t, relConfig(ReliabilityConfig{RetxTimeout: 512, MaxRetries: 2}))
	p.nics[0].SetNIPT(0, NIPTEntry{Valid: true, DestNode: 1, DestPFN: 5})
	pay1 := patternBytesT(40, 64)
	if err := p.nics[0].Write(device.DevAddr{Page: 0, Off: 0}, pay1, 0); err != nil {
		t.Fatal(err)
	}
	drainPair(p)
	if p.nics[1].Stats().PacketsReceived != 1 {
		t.Fatal("pre-crash delivery failed")
	}

	// The receiver crashes; the backplane marks its connector dead.
	p.nics[1].Crash()
	p.net.SetNodeDown(1, true)
	if !p.nics[1].Down() {
		t.Fatal("crashed board not down")
	}
	pay2 := patternBytesT(41, 64)
	if err := p.nics[0].Write(device.DevAddr{Page: 0, Off: 0}, pay2, 0); err != nil {
		t.Fatal(err)
	}
	drainPair(p) // launches + retransmits all swallowed; retry cap breaks the link
	s0 := p.nics[0].Stats()
	if s0.DeliveryFailures != 1 {
		t.Fatalf("peer outage did not break the link: %+v", s0)
	}
	if p.net.FaultStats().CrashDrops == 0 {
		t.Fatal("no launch hit the down-node guard")
	}

	// Reboot; duplicates armed on the healed wire.
	p.nics[1].Reboot()
	p.net.SetNodeDown(1, false)
	p.net.SetFaultPlan(interconnect.FaultPlan{Seed: 2, DupRate: 1.0})
	var de *DeliveryError
	if err := p.nics[0].Write(device.DevAddr{Page: 0, Off: 0}, pay2, 0); !errors.As(err, &de) {
		t.Fatalf("latched crash outage not surfaced as *DeliveryError: %v", err)
	}
	pay3 := patternBytesT(42, 64)
	if err := p.nics[0].Write(device.DevAddr{Page: 0, Off: 0}, pay3, 0); err != nil {
		t.Fatal(err)
	}
	drainPair(p)
	s1 := p.nics[1].Stats()
	if s1.Crashes != 1 {
		t.Fatalf("crash not counted: %+v", s1)
	}
	if s1.PacketsReceived != 2 {
		t.Fatalf("next-epoch delivery failed: %+v", s1)
	}
	if s1.DupDropped == 0 {
		t.Fatalf("armed duplicates never exercised dedupe: %+v", s1)
	}
	if s1.Resurrections != 1 {
		t.Fatalf("receiver did not resurrect from the crash-preserved pool: %+v", s1)
	}
	if r := p.nics[1].rel.receivers[0]; r.epoch == 0 {
		t.Fatal("post-reboot flow still on the crashed epoch")
	}
	got, _ := p.rams[1].Read(addr.PAddr(5*addr.PageSize), 64)
	if !bytes.Equal(got, pay3) {
		t.Fatal("post-reboot payload wrong")
	}

	// A stale fabric copy from the pre-crash epoch: the dedupe horizon
	// survived the crash in host memory, so it is dropped, not delivered.
	before := p.nics[1].Stats()
	p.nics[1].DeliverPacket(mkData(0, 1, 0, 1, addr.PAddr(5*addr.PageSize), pay1))
	p.clocks[1].RunUntilIdle()
	after := p.nics[1].Stats()
	if after.PacketsReceived != before.PacketsReceived || after.DupDropped != before.DupDropped+1 {
		t.Fatalf("stale pre-crash copy not deduped: before %+v after %+v", before, after)
	}
}

// TestCrashLedgersVolatileBytes: a crash wipes the resequencing buffer
// (wire-carried bytes → CrashDropped), swallows arrivals while down and
// invalidates an in-flight receive DMA via the generation bump — every
// wire-carried byte lands in the crash-drop ledger, and none of them
// reach memory.
func TestCrashLedgersVolatileBytes(t *testing.T) {
	p := newPair(t, relConfig(ReliabilityConfig{}))
	rx := p.nics[1]

	// Seq 2 with seq 1 missing parks in the resequencing buffer; seq 1
	// arrives and its receive DMA is scheduled but has not completed.
	rx.DeliverPacket(mkData(0, 1, 0, 2, addr.PAddr(6*addr.PageSize), patternBytesT(50, 64)))
	if rx.ReseqHeldBytes() != 64 {
		t.Fatal("packet not parked in reseq")
	}
	rx.DeliverPacket(mkData(0, 1, 0, 1, addr.PAddr(5*addr.PageSize), patternBytesT(51, 64)))
	// Both DMAs are now scheduled (seq 1 direct, seq 2 drained from
	// reseq). Crash before they complete: the generation bump must
	// invalidate them both.
	rx.Crash()
	p.clocks[1].RunUntilIdle()
	s := rx.Stats()
	if s.Crashes != 1 {
		t.Fatalf("crash not counted: %+v", s)
	}
	if s.CrashDropped != 2 || s.CrashDropBytes != 128 {
		t.Fatalf("in-flight DMAs not ledgered: %+v", s)
	}
	if s.PacketsReceived != 0 {
		t.Fatalf("crashed board delivered to memory: %+v", s)
	}
	if rx.ReseqHeldBytes() != 0 {
		t.Fatal("reseq buffer survived the crash")
	}
	if _, r := rx.RelActive(); r != 0 {
		t.Fatal("receiver state survived the crash")
	}
	if rx.RelPoolFree() != 1 {
		t.Fatal("crashed receiver state did not return to the pool")
	}
	zero := make([]byte, 64)
	got5, _ := p.rams[1].Read(addr.PAddr(5*addr.PageSize), 64)
	got6, _ := p.rams[1].Read(addr.PAddr(6*addr.PageSize), 64)
	if !bytes.Equal(got5, zero) || !bytes.Equal(got6, zero) {
		t.Fatal("crash-invalidated DMA wrote memory")
	}

	// Arrivals while the board is down join the same ledger.
	rx.DeliverPacket(mkData(0, 1, 0, 3, addr.PAddr(5*addr.PageSize), patternBytesT(52, 64)))
	s = rx.Stats()
	if s.CrashDropped != 3 || s.CrashDropBytes != 192 {
		t.Fatalf("arrival while down not ledgered: %+v", s)
	}
	rx.Reboot()
	if rx.Down() {
		t.Fatal("reboot left the board down")
	}
}

// TestSenderCrashAbandonsQueuedBytes: packets queued on the crashing
// board (transmitted-but-unacked and pending-unsent) go to the
// observability-only abandoned ledger — their future retransmissions
// die with the board, and the canceled retransmit timer never fires.
func TestSenderCrashAbandonsQueuedBytes(t *testing.T) {
	p := newPair(t, relConfig(ReliabilityConfig{
		Window: 1, MaxPending: 8, RetxTimeout: 1 << 40}))
	p.net.SetFaultPlan(interconnect.FaultPlan{Seed: 1, DropRate: 1.0})
	p.nics[0].SetNIPT(0, NIPTEntry{Valid: true, DestNode: 1, DestPFN: 5})
	for i := 0; i < 3; i++ {
		if err := p.nics[0].Write(device.DevAddr{Page: 0, Off: 0}, patternBytesT(uint64(60+i), 64), 0); err != nil {
			t.Fatal(err)
		}
	}
	// Window 1: one packet transmitted (and dropped on the wire), two
	// pending behind it, far-future retransmit timer armed.
	if got := p.nics[0].PendingUnsent(1); got != 2 {
		t.Fatalf("pending = %d, want 2", got)
	}
	p.nics[0].Crash()
	s := p.nics[0].Stats()
	if s.CrashAbandonedPkts != 3 || s.CrashAbandonedBytes != 192 {
		t.Fatalf("queued packets not abandoned: %+v", s)
	}
	if sn, _ := p.nics[0].RelActive(); sn != 0 {
		t.Fatal("sender state survived the crash")
	}
	drainPair(p)
	if got := p.nics[0].Stats().Retransmits; got != 0 {
		t.Fatalf("canceled retransmit timer fired %d times", got)
	}

	// Reboot onto a healed wire: the resurrected sender runs on a bumped
	// epoch and the receiver resynchronizes.
	p.nics[0].Reboot()
	p.net.SetFaultPlan(interconnect.FaultPlan{})
	pay := patternBytesT(63, 64)
	if err := p.nics[0].Write(device.DevAddr{Page: 0, Off: 0}, pay, 0); err != nil {
		t.Fatal(err)
	}
	drainPair(p)
	s0, s1 := p.nics[0].Stats(), p.nics[1].Stats()
	if s0.Resurrections != 1 {
		t.Fatalf("sender did not resurrect: %+v", s0)
	}
	if s1.PacketsReceived != 1 || s1.DupDropped != 0 {
		t.Fatalf("post-reboot epoch did not deliver exactly once: %+v", s1)
	}
	got, _ := p.rams[1].Read(addr.PAddr(5*addr.PageSize), 64)
	if !bytes.Equal(got, pay) {
		t.Fatal("post-reboot payload wrong")
	}
}

// TestReclaimedThenCrashedNoDoublePop: a destination whose reliability
// state was already idle-reclaimed into the free pool is NOT live state
// at crash time — the crash teardown must not push a second copy of it
// into the pool (a double push would hand the same backing struct to
// two future resurrections). Both sides are checked: the reclaimed
// sender's node crashes, the reclaimed receiver's node crashes.
func TestReclaimedThenCrashedNoDoublePop(t *testing.T) {
	p := newPair(t, relConfig(ReliabilityConfig{IdleReclaimAge: 1_000}))
	p.nics[0].SetNIPT(0, NIPTEntry{Valid: true, DestNode: 1, DestPFN: 5})
	if err := p.nics[0].Write(device.DevAddr{Page: 0, Off: 0}, patternBytesT(70, 64), 0); err != nil {
		t.Fatal(err)
	}
	drainPair(p)
	p.clocks[0].Advance(50_000)
	p.clocks[1].Advance(50_000)
	if p.nics[0].ReclaimIdle() != 1 || p.nics[1].ReclaimIdle() != 1 {
		t.Fatal("idle link not reclaimed on both sides")
	}
	if p.nics[0].RelPoolFree() != 1 || p.nics[1].RelPoolFree() != 1 {
		t.Fatal("reclaim did not pool the state")
	}

	// Crash both nodes: their live reliability maps are empty, so the
	// pools must be untouched — exactly one pooled struct each.
	p.nics[0].Crash()
	p.nics[1].Crash()
	if got := p.nics[0].RelPoolFree(); got != 1 {
		t.Fatalf("sender pool = %d after crash of a reclaimed dest, want 1", got)
	}
	if got := p.nics[1].RelPoolFree(); got != 1 {
		t.Fatalf("receiver pool = %d after crash of a reclaimed src, want 1", got)
	}
	p.nics[0].Reboot()
	p.nics[1].Reboot()

	// New traffic resurrects each side exactly once from its single
	// pooled struct, on a bumped epoch, with the dedupe memory intact.
	pay := patternBytesT(71, 64)
	if err := p.nics[0].Write(device.DevAddr{Page: 0, Off: 0}, pay, 0); err != nil {
		t.Fatal(err)
	}
	drainPair(p)
	s0, s1 := p.nics[0].Stats(), p.nics[1].Stats()
	if s0.Resurrections != 1 || s1.Resurrections != 1 {
		t.Fatalf("resurrections sender=%d receiver=%d, want 1/1", s0.Resurrections, s1.Resurrections)
	}
	if p.nics[0].RelPoolFree() != 0 || p.nics[1].RelPoolFree() != 0 {
		t.Fatal("resurrection did not pop exactly one pooled struct per side")
	}
	if s1.PacketsReceived != 2 || s1.DupDropped != 0 {
		t.Fatalf("post-crash delivery stats %+v", s1)
	}
	got, _ := p.rams[1].Read(addr.PAddr(5*addr.PageSize), 64)
	if !bytes.Equal(got, pay) {
		t.Fatal("post-crash payload wrong")
	}
}
