package nic

import (
	"bytes"
	"errors"
	"testing"

	"shrimp/internal/addr"
	"shrimp/internal/device"
	"shrimp/internal/interconnect"
	"shrimp/internal/sim"
)

func relConfig(rc ReliabilityConfig) Config {
	rc.Enabled = true
	return Config{NIPTPages: 16, Reliability: rc}
}

// drainPair runs both node clocks as one merged event loop: each round
// advances every clock to the globally-earliest pending event, so
// cross-node ordering (data arrival vs. retransmit timer vs. ACK
// arrival) is honored exactly as a shared clock would.
func drainPair(p *pair) {
	for {
		next := sim.Forever
		for _, c := range p.clocks {
			if at, ok := c.NextEventAt(); ok && at < next {
				next = at
			}
		}
		if next == sim.Forever {
			return
		}
		for _, c := range p.clocks {
			c.AdvanceTo(next)
		}
	}
}

// mkData hand-crafts a protocol-correct data packet, the way tests
// simulate specific wire histories.
func mkData(src, dst int, epoch uint32, seq uint64, dest addr.PAddr, payload []byte) *interconnect.Packet {
	pkt := &interconnect.Packet{
		Src: src, Dst: dst, Kind: interconnect.PktData,
		Epoch: epoch, Seq: seq, DestAddr: dest,
		Payload: append([]byte(nil), payload...),
	}
	pkt.CRC = packetCRC(pkt)
	return pkt
}

// TestReliableBasicDelivery: the happy path still works with the
// sublayer on — data lands byte-exact and the ACK clears the window.
func TestReliableBasicDelivery(t *testing.T) {
	p := newPair(t, relConfig(ReliabilityConfig{}))
	p.nics[0].SetNIPT(3, NIPTEntry{Valid: true, DestNode: 1, DestPFN: 7})
	payload := patternBytesT(1, 128)
	if err := p.nics[0].Write(device.DevAddr{Page: 3, Off: 256}, payload, 0); err != nil {
		t.Fatal(err)
	}
	drainPair(p)
	got, err := p.rams[1].Read(addr.PAddr(7*addr.PageSize+256), len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload not delivered byte-exact")
	}
	s0, s1 := p.nics[0].Stats(), p.nics[1].Stats()
	if s0.PacketsSent != 1 || s0.AcksReceived != 1 || s0.Retransmits != 0 {
		t.Fatalf("sender stats %+v", s0)
	}
	if s1.PacketsReceived != 1 || s1.AcksSent != 1 {
		t.Fatalf("receiver stats %+v", s1)
	}
	if s := p.nics[0].rel.senders[1]; len(s.unacked) != 0 || s.timer != nil {
		t.Fatal("window not cleared after cumulative ACK")
	}
}

// TestAckLostRetransmitDedupe: the ACK for a delivered packet is lost,
// the sender's timeout retransmits, and the receiver dedupes the copy
// (memory written exactly once) while re-ACKing so the sender moves on.
func TestAckLostRetransmitDedupe(t *testing.T) {
	p := newPair(t, relConfig(ReliabilityConfig{}))
	p.nics[0].SetNIPT(0, NIPTEntry{Valid: true, DestNode: 1, DestPFN: 5})
	payload := patternBytesT(2, 64)
	if err := p.nics[0].Write(device.DevAddr{Page: 0, Off: 0}, payload, 0); err != nil {
		t.Fatal(err)
	}
	// Deliver the data; the ACK is now in flight toward node 0 but we
	// model it lost by firing the sender's timeout by hand first.
	p.clocks[1].RunUntilIdle()
	if p.nics[1].Stats().PacketsReceived != 1 {
		t.Fatal("original not delivered")
	}
	s := p.nics[0].rel.senders[1]
	p.nics[0].onRetxTimeout(s)
	if p.nics[0].Stats().Retransmits != 1 {
		t.Fatal("timeout did not retransmit")
	}
	drainPair(p)
	s1 := p.nics[1].Stats()
	if s1.PacketsReceived != 1 {
		t.Fatalf("duplicate was delivered: received %d", s1.PacketsReceived)
	}
	if s1.DupDropped != 1 || s1.DupBytes != uint64(len(payload)) {
		t.Fatalf("dedupe stats %+v", s1)
	}
	if s1.AcksSent != 2 {
		t.Fatalf("receiver should re-ACK the duplicate: AcksSent=%d", s1.AcksSent)
	}
	got, _ := p.rams[1].Read(addr.PAddr(5*addr.PageSize), len(payload))
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted by retransmission")
	}
	if len(s.unacked) != 0 || s.timer != nil {
		t.Fatal("sender window not cleared")
	}
	if p.nics[0].Stats().DupAcks == 0 {
		t.Fatal("second ACK should have counted as a dup-ACK")
	}
}

// TestRetransmitRacesLateOriginal: packet 2 arrives early (gap →
// resequencing buffer), packet 1 fills the gap and drains the buffer in
// order, then a late copy of packet 2 — the reordered original racing
// its own retransmission — is deduped.
func TestRetransmitRacesLateOriginal(t *testing.T) {
	p := newPair(t, relConfig(ReliabilityConfig{}))
	rx := p.nics[1]
	pay1, pay2 := patternBytesT(3, 64), patternBytesT(4, 64)
	d1 := addr.PAddr(5 * addr.PageSize)
	d2 := addr.PAddr(6 * addr.PageSize)

	rx.recvData(mkData(0, 1, 0, 2, d2, pay2)) // out of order: held
	if held := rx.ReseqHeldBytes(); held != 64 {
		t.Fatalf("reseq held %d bytes, want 64", held)
	}
	if rx.Stats().AcksSent != 1 {
		t.Fatal("gap should trigger a dup-ACK")
	}
	rx.recvData(mkData(0, 1, 0, 1, d1, pay1)) // fills the gap, drains reseq
	p.clocks[1].RunUntilIdle()                // receive DMAs
	if got := rx.Stats().PacketsReceived; got != 2 {
		t.Fatalf("received %d packets, want 2", got)
	}
	if rx.ReseqHeldBytes() != 0 {
		t.Fatal("reseq buffer not drained")
	}
	rx.recvData(mkData(0, 1, 0, 2, d2, pay2)) // the late original of #2
	p.clocks[1].RunUntilIdle()
	s := rx.Stats()
	if s.PacketsReceived != 2 || s.DupDropped != 1 {
		t.Fatalf("late original not deduped: %+v", s)
	}
	got1, _ := p.rams[1].Read(d1, 64)
	got2, _ := p.rams[1].Read(d2, 64)
	if !bytes.Equal(got1, pay1) || !bytes.Equal(got2, pay2) {
		t.Fatal("reordered delivery corrupted memory")
	}
	if r := rx.rel.receivers[0]; r.expected != 3 {
		t.Fatalf("expected=%d, want 3", r.expected)
	}
}

// TestCorruptionNeverDelivered: a packet whose bits flipped in flight
// fails the CRC and is dropped before the NIPT/memory path — the
// receiver's RAM stays untouched and no ACK acknowledges it.
func TestCorruptionNeverDelivered(t *testing.T) {
	p := newPair(t, relConfig(ReliabilityConfig{}))
	rx := p.nics[1]
	payload := patternBytesT(5, 64)
	pkt := mkData(0, 1, 0, 1, addr.PAddr(5*addr.PageSize), payload)
	pkt.Payload[17] ^= 0x40 // in-flight bit flip; CRC now stale
	rx.recvData(pkt)
	p.clocks[1].RunUntilIdle()
	s := rx.Stats()
	if s.CorruptDropped != 1 || s.CorruptBytes != 64 {
		t.Fatalf("corruption stats %+v", s)
	}
	if s.PacketsReceived != 0 || s.AcksSent != 0 {
		t.Fatalf("corrupt packet reached the delivery path: %+v", s)
	}
	got, _ := p.rams[1].Read(addr.PAddr(5*addr.PageSize), 64)
	if !bytes.Equal(got, make([]byte, 64)) {
		t.Fatal("corrupt payload written to memory")
	}
	if r := rx.rel.receivers[0]; r != nil && r.expected != 1 {
		t.Fatal("corrupt packet advanced the sequence window")
	}
}

// TestCreditExhaustionBlocksThenDrains: with the window full and the
// pending queue at its bound, CheckTransfer bounces queue-full (the
// transient the UDMA library retries); once the receiver ACKs, the
// queue drains in FIFO order.
func TestCreditExhaustionBlocksThenDrains(t *testing.T) {
	p := newPair(t, relConfig(ReliabilityConfig{Window: 2, MaxPending: 4}))
	p.nics[0].SetNIPT(0, NIPTEntry{Valid: true, DestNode: 1, DestPFN: 5})
	da := device.DevAddr{Page: 0, Off: 0}
	pays := make([][]byte, 4)
	for i := range pays {
		pays[i] = patternBytesT(uint64(10+i), 64)
		if err := p.nics[0].Write(da, pays[i], 0); err != nil {
			t.Fatal(err)
		}
	}
	// Window 2 transmitted, 2 pending: the buffer is at MaxPending.
	if got := p.nics[0].PendingUnsent(1); got != 2 {
		t.Fatalf("pending = %d, want 2", got)
	}
	if bits := p.nics[0].CheckTransfer(da, 64, true); bits&device.ErrQueueFull == 0 {
		t.Fatalf("CheckTransfer = %#x, want queue-full backpressure", uint32(bits))
	}
	if p.nics[0].Stats().CreditStalls != 1 {
		t.Fatal("credit stall not counted")
	}
	drainPair(p)
	s0, s1 := p.nics[0].Stats(), p.nics[1].Stats()
	if s1.PacketsReceived != 4 || s1.BytesReceived != 256 {
		t.Fatalf("drain incomplete: %+v", s1)
	}
	if s0.Retransmits != 0 {
		t.Fatalf("clean wire should not retransmit: %+v", s0)
	}
	// All four writes hit the same page; in-order (FIFO) delivery means
	// the last write's bytes are what remains.
	got, _ := p.rams[1].Read(addr.PAddr(5*addr.PageSize), 64)
	if !bytes.Equal(got, pays[3]) {
		t.Fatal("final page content is not the last-sent payload (FIFO order violated)")
	}
	if bits := p.nics[0].CheckTransfer(da, 64, true); bits != 0 {
		t.Fatalf("backpressure did not clear: %#x", uint32(bits))
	}
}

// TestLinkFlapRecovery: a fault plan with down/up windows drops packets
// mid-stream; the retransmit machinery resumes after the link comes
// back with zero byte loss.
func TestLinkFlapRecovery(t *testing.T) {
	p := newPair(t, relConfig(ReliabilityConfig{RetxTimeout: 2048}))
	plan := interconnect.FaultPlan{Seed: 3, FlapPeriod: 8000, FlapDown: 4000}
	p.net.SetFaultPlan(plan)
	p.nics[0].SetNIPT(0, NIPTEntry{Valid: true, DestNode: 1, DestPFN: 5})
	var want []byte
	for i := 0; i < 8; i++ {
		pay := patternBytesT(uint64(20+i), 512)
		if i == 7 {
			want = pay
		}
		if err := p.nics[0].Write(device.DevAddr{Page: 0, Off: 0}, pay, 0); err != nil {
			t.Fatal(err)
		}
		p.clocks[0].Advance(1500) // spread launches across flap phases
	}
	drainPair(p)
	fs := p.net.FaultStats()
	if fs.FlapDrops == 0 {
		t.Fatalf("no launch hit a down window (fstats %+v); pick a different seed", fs)
	}
	s0, s1 := p.nics[0].Stats(), p.nics[1].Stats()
	if s0.Retransmits == 0 {
		t.Fatal("flap drops must force retransmission")
	}
	if s0.DeliveryFailures != 0 {
		t.Fatalf("link should recover within the retry budget: %+v", s0)
	}
	if s1.BytesReceived+s1.DupBytes != s0.BytesSent+s0.RetransBytes+fs.DupDataBytes-fs.DroppedDataBytes {
		t.Fatalf("byte loss across flap: sent %d+%d, dropped %d, received %d+%d dup",
			s0.BytesSent, s0.RetransBytes, fs.DroppedDataBytes, s1.BytesReceived, s1.DupBytes)
	}
	got, _ := p.rams[1].Read(addr.PAddr(5*addr.PageSize), 512)
	if !bytes.Equal(got, want) {
		t.Fatal("final page is not the last payload after flap recovery")
	}
}

// TestRetryCapSurfacesTypedError: a dead link (100% drop) exhausts the
// retry budget; the next Write returns *DeliveryError (which the DMA
// engine surfaces as a failed transfer), and the link recovers on the
// following epoch once the wire heals.
func TestRetryCapSurfacesTypedError(t *testing.T) {
	p := newPair(t, relConfig(ReliabilityConfig{RetxTimeout: 512, MaxRetries: 2}))
	p.net.SetFaultPlan(interconnect.FaultPlan{Seed: 1, DropRate: 1.0})
	p.nics[0].SetNIPT(0, NIPTEntry{Valid: true, DestNode: 1, DestPFN: 5})
	pay := patternBytesT(30, 64)
	if err := p.nics[0].Write(device.DevAddr{Page: 0, Off: 0}, pay, 0); err != nil {
		t.Fatal(err)
	}
	drainPair(p) // timeouts, retransmits, then the retry cap
	s0 := p.nics[0].Stats()
	if s0.DeliveryFailures != 1 || s0.FailedPackets != 1 {
		t.Fatalf("link not declared broken: %+v", s0)
	}
	err := p.nics[0].Write(device.DevAddr{Page: 0, Off: 0}, pay, 0)
	var de *DeliveryError
	if !errors.As(err, &de) {
		t.Fatalf("next Write returned %v, want *DeliveryError", err)
	}
	if de.Dest != 1 || de.Lost != 1 {
		t.Fatalf("DeliveryError = %+v", de)
	}
	// The wire heals; the next epoch delivers.
	p.net.SetFaultPlan(interconnect.FaultPlan{})
	if err := p.nics[0].Write(device.DevAddr{Page: 0, Off: 0}, pay, 0); err != nil {
		t.Fatalf("post-recovery Write: %v", err)
	}
	drainPair(p)
	if p.nics[1].Stats().PacketsReceived != 1 {
		t.Fatal("new epoch did not deliver")
	}
	got, _ := p.rams[1].Read(addr.PAddr(5*addr.PageSize), 64)
	if !bytes.Equal(got, pay) {
		t.Fatal("post-recovery payload wrong")
	}
}

// patternBytesT is a tiny deterministic payload generator for these
// tests (distinct tag → distinct bytes).
func patternBytesT(tag uint64, n int) []byte {
	out := make([]byte, n)
	x := tag
	for i := range out {
		x = x*6364136223846793005 + 1442695040888963407
		out[i] = byte(x >> 56)
	}
	return out
}
