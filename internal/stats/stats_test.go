package stats

import (
	"bytes"
	"strings"
	"testing"
)

func TestSeriesAddAndLookup(t *testing.T) {
	s := &Series{Name: "bw", XLabel: "size", YLabel: "MB/s"}
	s.Add(64, 1.5)
	s.Add(128, 3.0)
	if v, ok := s.Y(128); !ok || v != 3.0 {
		t.Fatalf("Y(128) = %v,%v", v, ok)
	}
	if _, ok := s.Y(999); ok {
		t.Fatal("Y(999) found a value")
	}
	if s.MaxY() != 3.0 {
		t.Fatalf("MaxY = %v", s.MaxY())
	}
}

func TestSeriesMaxYEmpty(t *testing.T) {
	s := &Series{}
	if s.MaxY() != 0 {
		t.Fatalf("empty MaxY = %v", s.MaxY())
	}
}

func TestNormalize(t *testing.T) {
	s := &Series{}
	s.Add(1, 10)
	s.Add(2, 40)
	s.Normalize(100)
	if v, _ := s.Y(1); v != 25 {
		t.Fatalf("normalized Y(1) = %v", v)
	}
	if v, _ := s.Y(2); v != 100 {
		t.Fatalf("normalized Y(2) = %v", v)
	}
	empty := &Series{}
	empty.Normalize(100) // must not panic or divide by zero
}

func TestSeriesCSV(t *testing.T) {
	s := &Series{XLabel: "size,bytes", YLabel: "MB/s"}
	s.Add(64, 1.5)
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.Contains(got, `"size,bytes",MB/s`) {
		t.Fatalf("header not escaped: %q", got)
	}
	if !strings.Contains(got, "64,1.5") {
		t.Fatalf("row missing: %q", got)
	}
}

func TestPlotASCII(t *testing.T) {
	s := &Series{Name: "fig8", XLabel: "size"}
	for _, x := range []float64{64, 128, 256, 512, 1024, 2048, 4096, 8192} {
		s.Add(x, x/(x+500)*100)
	}
	var buf bytes.Buffer
	s.PlotASCII(&buf, 40, 10)
	out := buf.String()
	if !strings.Contains(out, "*") {
		t.Fatalf("plot has no points:\n%s", out)
	}
	if !strings.Contains(out, "log") {
		t.Fatalf("wide x range should plot log-x:\n%s", out)
	}
	if !strings.Contains(out, "fig8") {
		t.Fatal("plot missing series name")
	}
}

func TestPlotASCIIDegenerate(t *testing.T) {
	var buf bytes.Buffer
	(&Series{}).PlotASCII(&buf, 40, 10)
	if !strings.Contains(buf.String(), "no data") {
		t.Fatal("empty series did not say no data")
	}
	s := &Series{}
	s.Add(5, 7) // single point, zero ranges
	buf.Reset()
	s.PlotASCII(&buf, 40, 10)
	if !strings.Contains(buf.String(), "*") {
		t.Fatal("single point not plotted")
	}
	buf.Reset()
	s.PlotASCII(&buf, 4, 2) // too small
	if !strings.Contains(buf.String(), "no data") {
		t.Fatal("tiny plot should refuse")
	}
}

func TestTableRenderAligned(t *testing.T) {
	tbl := NewTable("Results", "name", "value")
	tbl.AddRow("short", "1")
	tbl.AddRow("a much longer name", "23456")
	tbl.AddRow("partial") // short row padded
	var buf bytes.Buffer
	tbl.Render(&buf)
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Results" {
		t.Fatalf("title line = %q", lines[0])
	}
	if !strings.Contains(lines[1], "name") || !strings.Contains(lines[1], "value") {
		t.Fatalf("header = %q", lines[1])
	}
	if !strings.Contains(lines[2], "---") {
		t.Fatalf("separator = %q", lines[2])
	}
	// The value column must start at the same offset in every row.
	col := strings.Index(lines[1], "value")
	if lines[4][col:col+5] != "23456" {
		t.Fatalf("columns not aligned:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("", "a", "b")
	tbl.AddRow(`x"y`, "1,2")
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"x\"\"y\",\"1,2\"\n"
	if buf.String() != want {
		t.Fatalf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestBytesFormatting(t *testing.T) {
	cases := map[int]string{
		0:       "0",
		512:     "512",
		1024:    "1K",
		4096:    "4K",
		65536:   "64K",
		1 << 20: "1M",
		1500:    "1500",
		3 << 20: "3M",
		2096:    "2096",
	}
	for n, want := range cases {
		if got := Bytes(n); got != want {
			t.Errorf("Bytes(%d) = %q, want %q", n, got, want)
		}
	}
}
