// Package stats collects and renders experiment results: named series
// (for figures), aligned text tables (for tables), CSV export, and a
// small ASCII plotter used by cmd/udmabench to redraw Figure 8 in the
// terminal.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Point is one (x, y) sample.
type Point struct {
	X, Y float64
}

// Series is a named curve, e.g. "% of peak bandwidth vs message size".
type Series struct {
	Name   string
	XLabel string
	YLabel string
	Points []Point
}

// Add appends a sample.
func (s *Series) Add(x, y float64) {
	s.Points = append(s.Points, Point{X: x, Y: y})
}

// Y returns the y value at the first point with the given x, and
// whether one exists.
func (s *Series) Y(x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// MaxY returns the largest y value (0 for an empty series).
func (s *Series) MaxY() float64 {
	m := math.Inf(-1)
	for _, p := range s.Points {
		if p.Y > m {
			m = p.Y
		}
	}
	if math.IsInf(m, -1) {
		return 0
	}
	return m
}

// Normalize scales all y values so the maximum becomes 'to' (e.g. 100
// for percent-of-peak). A series with a zero maximum is left alone.
func (s *Series) Normalize(to float64) {
	m := s.MaxY()
	if m == 0 {
		return
	}
	for i := range s.Points {
		s.Points[i].Y = s.Points[i].Y / m * to
	}
}

// WriteCSV emits "x,y" lines with a header.
func (s *Series) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s,%s\n", csvEscape(s.XLabel), csvEscape(s.YLabel)); err != nil {
		return err
	}
	for _, p := range s.Points {
		if _, err := fmt.Fprintf(w, "%g,%g\n", p.X, p.Y); err != nil {
			return err
		}
	}
	return nil
}

// PlotASCII renders the series as a crude scatter plot, log-x if the x
// range spans more than a decade. Width and height are in characters.
func (s *Series) PlotASCII(w io.Writer, width, height int) {
	if len(s.Points) == 0 || width < 16 || height < 4 {
		fmt.Fprintln(w, "(no data)")
		return
	}
	pts := make([]Point, len(s.Points))
	copy(pts, s.Points)
	sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })

	minX, maxX := pts[0].X, pts[len(pts)-1].X
	logX := minX > 0 && maxX/minX > 10
	xpos := func(x float64) float64 {
		if logX {
			return math.Log(x/minX) / math.Log(maxX/minX)
		}
		if maxX == minX {
			return 0
		}
		return (x - minX) / (maxX - minX)
	}
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, p := range pts {
		minY = math.Min(minY, p.Y)
		maxY = math.Max(maxY, p.Y)
	}
	if minY > 0 && minY < maxY/4 {
		minY = 0
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for _, p := range pts {
		cx := int(xpos(p.X) * float64(width-1))
		cy := int((p.Y - minY) / (maxY - minY) * float64(height-1))
		row := height - 1 - cy
		if row >= 0 && row < height && cx >= 0 && cx < width {
			grid[row][cx] = '*'
		}
	}
	fmt.Fprintf(w, "%s (y: %.4g..%.4g, x: %.4g..%.4g%s)\n",
		s.Name, minY, maxY, minX, maxX, map[bool]string{true: " log", false: ""}[logX])
	for _, row := range grid {
		fmt.Fprintf(w, "  |%s\n", string(row))
	}
	fmt.Fprintf(w, "  +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(w, "   %-*s%s\n", width-len(s.XLabel), s.XLabel, "")
}

// Table is an aligned text table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; short rows are padded.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// WriteCSV emits the table as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		esc := make([]string, len(cells))
		for i, c := range cells {
			esc[i] = csvEscape(c)
		}
		_, err := fmt.Fprintln(w, strings.Join(esc, ","))
		return err
	}
	if err := writeRow(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// Bytes formats a byte count compactly (512, 4K, 64K).
func Bytes(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprintf("%d", n)
	}
}
