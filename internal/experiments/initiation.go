package experiments

import (
	"fmt"

	"shrimp/internal/addr"
	"shrimp/internal/core"
	"shrimp/internal/device"
	"shrimp/internal/kernel"
	"shrimp/internal/machine"
	"shrimp/internal/sim"
	"shrimp/internal/stats"
	"shrimp/internal/udmalib"
	"shrimp/internal/workload"
)

// RunInitiationCost reproduces the Section 8 measurement: "The time for
// a user process to initiate a DMA transfer is about 2.8 microseconds,
// which includes the time to perform the two-instruction initiation
// sequence and check data alignment with regard to page boundaries."
// A TLB-disabled variant shows the translation hardware's contribution
// (the TLB ablation from DESIGN.md).
func RunInitiationCost() (*Result, error) {
	res := &Result{
		ID:    "e2",
		Title: "UDMA transfer initiation cost",
		Paper: "≈2.8 µs per initiation (two references + alignment check)",
	}

	measure := func(tlbEntries int) (float64, error) {
		te := tlbEntries
		n := machine.New(0, machine.Config{TLBEntries: &te})
		buf := device.NewBuffer("buf", 16, 4, 0)
		n.AttachDevice(buf, 0)
		defer n.Kernel.Shutdown()

		var cycles sim.Cycles
		const reps = 64
		err := runOn(n, "p", func(p *kernel.Proc) error {
			devVA, err := p.MapDevice(buf, true)
			if err != nil {
				return err
			}
			va, err := p.Alloc(4096)
			if err != nil {
				return err
			}
			if err := p.WriteBuf(va, workload.Payload(64, 1)); err != nil {
				return err
			}
			check := udmalib.DefaultTunables().CheckCycles

			// Warm the proxy mappings (they are created on demand).
			p.Store(devVA, 4)
			p.Load(addr.VProxy(va))
			waitIdle(p, addr.VProxy(va))

			var total sim.Cycles
			for i := 0; i < reps; i++ {
				start := p.Now()
				p.Compute(check)                           // alignment / boundary check
				if err := p.Store(devVA, 64); err != nil { // STORE nbytes TO destAddr
					return err
				}
				v, err := p.Load(addr.VProxy(va)) // LOAD status FROM srcAddr
				if err != nil {
					return err
				}
				total += p.Now() - start
				if !core.Status(v).Initiated() {
					return fmt.Errorf("initiation %d failed: %v", i, core.Status(v))
				}
				waitIdle(p, addr.VProxy(va))
			}
			cycles = total / reps
			return nil
		})
		if err != nil {
			return 0, err
		}
		return n.Costs.Micros(cycles), nil
	}

	withTLB, err := measure(64)
	if err != nil {
		return nil, err
	}
	noTLB, err := measure(0)
	if err != nil {
		return nil, err
	}

	tbl := stats.NewTable("Initiation cost (two references + checks)",
		"configuration", "µs/initiation", "paper")
	tbl.AddRow("TLB enabled (64 entries)", fmt.Sprintf("%.2f", withTLB), "≈2.8 µs")
	tbl.AddRow("TLB disabled (ablation)", fmt.Sprintf("%.2f", noTLB), "—")
	res.Tables = append(res.Tables, tbl)

	res.check("≈2.8 µs with TLB (±0.5)", withTLB > 2.3 && withTLB < 3.3,
		"measured %.2f µs", withTLB)
	res.check("TLB ablation costs more", noTLB > withTLB,
		"%.2f µs without TLB vs %.2f µs with", noTLB, withTLB)
	res.metric("initiation_us", withTLB)
	res.metric("initiation_us_no_tlb", noTLB)
	return res, nil
}

// RunInitiationComparison reproduces the Sections 2–3 contrast: a
// traditional DMA transaction "usually takes hundreds or thousands of
// CPU instructions" — a system call, per-page translation, pinning,
// descriptor building, an interrupt, unpinning — against UDMA's two
// user-level references. Bounce-buffer copying is the second
// traditional variant ("copying pages into special pre-pinned I/O
// buffers").
func RunInitiationComparison() (*Result, error) {
	res := &Result{
		ID:    "e4",
		Title: "Initiation cost breakdown: kernel DMA vs UDMA",
		Paper: "traditional DMA costs hundreds–thousands of instructions; UDMA two references",
	}

	const payload = 1024

	type variant struct {
		name string
		run  func(n *machine.Node, buf *device.Buffer, p *kernel.Proc, va addr.VAddr) error
	}
	variants := []variant{
		{"UDMA (2 refs + check)", func(n *machine.Node, buf *device.Buffer, p *kernel.Proc, va addr.VAddr) error {
			p.Compute(udmalib.DefaultTunables().CheckCycles)
			if err := p.Store(addr.VAddr(addr.DevProxy(0, 0)), payload); err != nil {
				return err
			}
			v, err := p.Load(addr.VProxy(va))
			if err != nil {
				return err
			}
			if !core.Status(v).Initiated() {
				return fmt.Errorf("initiation failed: %v", core.Status(v))
			}
			waitIdle(p, addr.VProxy(va))
			return nil
		}},
		{"kernel DMA, pin per transfer", func(n *machine.Node, buf *device.Buffer, p *kernel.Proc, va addr.VAddr) error {
			return p.DMAWrite(va, addr.DevProxy(0, 0), payload, kernel.DMAOptions{})
		}},
		{"kernel DMA, bounce buffers", func(n *machine.Node, buf *device.Buffer, p *kernel.Proc, va addr.VAddr) error {
			return p.DMAWrite(va, addr.DevProxy(0, 0), payload, kernel.DMAOptions{Bounce: true})
		}},
	}

	tbl := stats.NewTable("One 1 KB transfer, end to end (SHRIMP1996 model)",
		"path", "total µs", "overhead µs (minus wire time)", "overhead vs UDMA")
	times := make([]float64, len(variants))
	for i, v := range variants {
		n := machine.New(0, machine.Config{Kernel: kernel.Config{BounceFrames: 4}})
		buf := device.NewBuffer("buf", 16, 4, 0)
		n.AttachDevice(buf, 0)

		var cycles sim.Cycles
		vi := v
		err := runOn(n, "p", func(p *kernel.Proc) error {
			if _, err := p.MapDevice(buf, true); err != nil {
				return err
			}
			va, err := p.Alloc(4096)
			if err != nil {
				return err
			}
			if err := p.WriteBuf(va, workload.Payload(payload, 3)); err != nil {
				return err
			}
			// Warm-up pass so page faults and proxy mapping creation
			// are out of the measured path for every variant.
			if err := vi.run(n, buf, p, va); err != nil {
				return err
			}
			start := p.Now()
			if err := vi.run(n, buf, p, va); err != nil {
				return err
			}
			cycles = p.Now() - start
			return nil
		})
		n.Kernel.Shutdown()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.name, err)
		}
		times[i] = n.Costs.Micros(cycles)
	}
	// The wire time (bus burst + engine startup) is identical on every
	// path; the paper's contrast is about the *initiation overhead*.
	costs := machine.SHRIMP1996()
	wireUS := costs.Micros(costs.DMAStartup + costs.DMACycles(payload))
	overhead := make([]float64, len(times))
	for i := range times {
		overhead[i] = times[i] - wireUS
	}
	for i, v := range variants {
		tbl.AddRow(v.name, fmt.Sprintf("%.1f", times[i]),
			fmt.Sprintf("%.1f", overhead[i]),
			fmt.Sprintf("%.1fx", overhead[i]/overhead[0]))
	}
	res.Tables = append(res.Tables, tbl)

	res.check("pinned kernel DMA overhead ≥3x UDMA", overhead[1] > 3*overhead[0],
		"%.1f µs vs %.1f µs (above %.1f µs of wire time)", overhead[1], overhead[0], wireUS)
	res.check("bounce variant overhead also larger than UDMA", overhead[2] > overhead[0],
		"%.1f µs vs %.1f µs", overhead[2], overhead[0])
	res.Notes = append(res.Notes,
		fmt.Sprintf("wire time for 1 KB at 33 MB/s EISA burst is %.1f µs on every path; the columns separate it out", wireUS))
	return res, nil
}

// waitIdle polls until no transfer based at proxyVA remains in flight
// and the engine has gone idle.
func waitIdle(p *kernel.Proc, proxyVA addr.VAddr) {
	for {
		v, err := p.Load(proxyVA)
		if err != nil {
			return
		}
		st := core.Status(v)
		if !st.Match() && !st.Transferring() {
			return
		}
	}
}
