package experiments

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"time"

	"shrimp/internal/cluster"
	"shrimp/internal/interconnect"
	"shrimp/internal/kernel"
	"shrimp/internal/machine"
	"shrimp/internal/nic"
	"shrimp/internal/sim"
	"shrimp/internal/stats"
	"shrimp/internal/udmalib"
	"shrimp/internal/workload"
)

// speedupCase is one e14 workload configuration: an all-nodes-sending
// mesh with per-node compute burners, optionally under a lossy fault
// plan with the reliability layer recovering underneath.
type speedupCase struct {
	name     string
	nodes    int
	messages int // per node
	size     int // bytes per message
	window   sim.Cycles
	lossy    bool
}

// e14Small is the original 8-node ring — kept as the small-config
// reference point (per-window overhead dominates here, so it is the
// workload that punishes barrier churn hardest).
var e14Small = speedupCase{name: "ring8", nodes: 8, messages: 64, size: 4096, window: 10_000}

// e14Large is the speedup-curve config: 32 nodes, thousands of
// transfers, a window wide enough that each barrier hands every worker
// real simulated work. The headline speedup_workers_N metrics (and the
// CI regression floor) are measured on this case.
var e14Large = speedupCase{name: "mesh32", nodes: 32, messages: 192, size: 4096, window: 20_000}

// e14LargeLossy is e14Large under a lossy wire with reliable delivery:
// drops, dups, corruption and delays all active, retransmit timers
// live. Used for fingerprint (determinism) checks only — loss recovery
// is deterministic but its wall-clock is retransmit-bound, so it is not
// the speedup headline.
var e14LargeLossy = speedupCase{name: "mesh32-lossy", nodes: 32, messages: 48, size: 4096, window: 2_000, lossy: true}

// RunParallelSpeedup is E14: the conservative parallel execution core's
// cost/benefit card. Each configuration runs at cluster worker counts
// 1, 2, 4 and 8; for each run the experiment records host wall-clock
// time, barrier-round counts and a fingerprint of the simulated
// outcome. The determinism checks are absolute (fingerprints must be
// byte-identical at every worker count, clean and lossy). The speedup
// checks are host-aware: parallel workers cannot beat the physics of
// the machine, so the floors apply only when the host has the cores to
// meet them (min(workers, NumCPU) sets the attainable ceiling; on a
// single-core host every floor passes vacuously and the run is purely
// a determinism check).
func RunParallelSpeedup() (*Result, error) {
	res := &Result{
		ID:    "e14",
		Title: "Parallel simulation: serial vs parallel wall-clock speedup",
		Paper: "extension — the paper's nodes run concurrently in hardware; this measures simulating them concurrently",
	}
	cpus := runtime.NumCPU()
	res.metric("host_cpus", float64(cpus))

	workers := []int{1, 2, 4, 8}

	// Small config: report per-window overhead shape, assert determinism.
	smallTbl := stats.NewTable(
		fmt.Sprintf("Conservative parallel execution, %d-node ring (%d × %d KB per node)",
			e14Small.nodes, e14Small.messages, e14Small.size/1024),
		"workers", "wall ms", "speedup", "rounds", "sim fingerprint")
	if err := runSpeedupCurve(res, e14Small, workers, smallTbl, "ring8_"); err != nil {
		return nil, err
	}
	res.Tables = append(res.Tables, smallTbl)

	// Large config: the headline speedup curve.
	largeTbl := stats.NewTable(
		fmt.Sprintf("Conservative parallel execution, %d-node mesh (%d × %d KB per node)",
			e14Large.nodes, e14Large.messages, e14Large.size/1024),
		"workers", "wall ms", "speedup", "rounds", "sim fingerprint")
	series := &stats.Series{Name: "simulation speedup vs workers (32-node mesh)",
		XLabel: "workers", YLabel: "speedup vs serial"}
	speedups, err := runSpeedupCurveSeries(res, e14Large, workers, largeTbl, "", series)
	if err != nil {
		return nil, err
	}
	res.Tables = append(res.Tables, largeTbl)
	res.Series = append(res.Series, series)

	// Host-aware speedup floors: a workers=w run can use at most
	// min(w, NumCPU) cores, so only demand the floor the host can pay.
	for _, fl := range []struct {
		workers int
		floor   float64
	}{{4, 2.0}, {8, 3.0}} {
		usable := min(fl.workers, cpus)
		attainable := speedupFloor(usable)
		want := min(fl.floor, attainable)
		if want <= 1.0 {
			res.check(fmt.Sprintf("speedup at %d workers (host has %d cpus: floor waived)", fl.workers, cpus),
				true, "single-core host cannot speed up; determinism checks still bind")
			continue
		}
		got := speedups[fl.workers]
		res.check(fmt.Sprintf("speedup at %d workers >= %.1fx (host has %d cpus)", fl.workers, want, cpus),
			got >= want, "measured %.2fx on the %d-node mesh", got, e14Large.nodes)
	}

	// Lossy large config: fingerprint equality only — the reliability
	// layer's retransmit clockwork must be byte-identical at every
	// worker count too.
	lossyTbl := stats.NewTable(
		fmt.Sprintf("Same mesh under a lossy wire (reliable delivery, %d × %d KB per node)",
			e14LargeLossy.messages, e14LargeLossy.size/1024),
		"workers", "wall ms", "speedup", "rounds", "sim fingerprint")
	if err := runSpeedupCurve(res, e14LargeLossy, workers, lossyTbl, "lossy_"); err != nil {
		return nil, err
	}
	res.Tables = append(res.Tables, lossyTbl)

	res.Notes = append(res.Notes,
		fmt.Sprintf("host has %d CPU core(s); speedup floors are asserted only up to min(workers, cores)", cpus),
		"speedup is host wall-clock, so it varies with machine load; the fingerprint equality is the invariant",
		"each worker runs whole node windows between barriers (deferred-mailbox delivery), so the parallelism never perturbs simulated time",
		"per-link lookahead extends each node's window to min over senders of (sender clock + link flight floor), so distant mesh corners do not serialize on the slowest node")
	return res, nil
}

// speedupFloor maps a usable-core count to the speedup it should buy on
// this embarrassingly-window-parallel workload (conservative: barriers
// and the serial flush cost real time).
func speedupFloor(usableCores int) float64 {
	switch {
	case usableCores >= 8:
		return 3.0
	case usableCores >= 4:
		return 2.0
	case usableCores >= 2:
		return 1.3
	default:
		return 1.0 // serial host: no speedup attainable
	}
}

// runSpeedupCurve runs one case across the worker counts, filling the
// table, emitting metrics under the prefix, and asserting fingerprint
// equality across worker counts.
func runSpeedupCurve(res *Result, sc speedupCase, workers []int, tbl *stats.Table, prefix string) error {
	_, err := runSpeedupCurveSeries(res, sc, workers, tbl, prefix, nil)
	return err
}

func runSpeedupCurveSeries(res *Result, sc speedupCase, workers []int, tbl *stats.Table, prefix string, series *stats.Series) (map[int]float64, error) {
	var baseMS float64
	var baseFP string
	identical := true
	speedups := make(map[int]float64, len(workers))
	for _, w := range workers {
		fp, wall, rounds, err := parallelSpeedupRun(sc, w)
		if err != nil {
			return nil, fmt.Errorf("%s workers=%d: %w", sc.name, w, err)
		}
		ms := float64(wall.Microseconds()) / 1000
		if w == workers[0] {
			baseMS, baseFP = ms, fp
		}
		if fp != baseFP {
			identical = false
		}
		speedup := 0.0
		if ms > 0 {
			speedup = baseMS / ms
		}
		speedups[w] = speedup
		if series != nil {
			series.Add(float64(w), speedup)
		}
		tbl.AddRow(fmt.Sprintf("%d", w), fmt.Sprintf("%.1f", ms),
			fmt.Sprintf("%.2fx", speedup), fmt.Sprintf("%d", rounds), fp[:16])
		res.metric(fmt.Sprintf("%swall_ms_workers_%d", prefix, w), ms)
		res.metric(fmt.Sprintf("%sspeedup_workers_%d", prefix, w), speedup)
		if w == workers[0] {
			res.metric(prefix+"barrier_rounds", float64(rounds))
		}
	}
	res.check(fmt.Sprintf("%s: simulation is bit-identical at every worker count", sc.name), identical,
		"fingerprints at workers 1/2/4/8 must match; base %s", baseFP[:16])
	return speedups, nil
}

// parallelSpeedupRun executes one case at the given worker count and
// returns (simulation fingerprint, host wall-clock, barrier rounds).
func parallelSpeedupRun(sc speedupCase, workers int) (string, time.Duration, uint64, error) {
	cfg := cluster.Config{
		Nodes:   sc.nodes,
		Workers: workers,
		Window:  sc.window,
		Machine: machine.Config{RAMFrames: 96, Kernel: kernel.Config{Quantum: 2000}},
		NIC:     nic.Config{NIPTPages: 16},
	}
	if sc.lossy {
		cfg.NIC.Reliability = nic.ReliabilityConfig{Enabled: true, Window: 4, MaxPending: 8}
		cfg.Fault = interconnect.FaultPlan{
			Seed:     0xE14,
			DropRate: 0.05, DupRate: 0.02, CorruptRate: 0.02, DelayRate: 0.10,
		}
	}
	c := cluster.New(cfg)
	defer c.Shutdown()

	errs := make([]error, sc.nodes)
	for i := 0; i < sc.nodes; i++ {
		// Destination stride near half the mesh width forces multi-hop
		// routes (distance buys per-link lookahead; adjacency would not
		// exercise it).
		i, dst := i, (i+sc.nodes/2-1)%sc.nodes
		if err := udmalib.MapSendWindow(c.NICs[i], 0, dst, []uint32{48}); err != nil {
			return "", 0, 0, err
		}
		c.Nodes[i].Kernel.Spawn(fmt.Sprintf("sender%d", i), func(p *kernel.Proc) {
			d, err := udmalib.Open(p, c.NICs[i], true)
			if err != nil {
				errs[i] = err
				return
			}
			va, err := p.Alloc(sc.size)
			if err != nil {
				errs[i] = err
				return
			}
			if err := p.WriteBuf(va, workload.Payload(sc.size, byte(i+1))); err != nil {
				errs[i] = err
				return
			}
			for m := 0; m < sc.messages; m++ {
				if sc.lossy {
					// Loss is expected; exhausted retries are a
					// deterministic outcome, not a rig failure.
					if err := d.SendRetry(va, 0, sc.size, udmalib.RetryPolicy{MaxAttempts: 20, Backoff: 512}); err != nil {
						return
					}
				} else if err := d.Send(va, 0, sc.size); err != nil {
					errs[i] = err
					return
				}
			}
		})
		c.Nodes[i].Kernel.Spawn(fmt.Sprintf("burner%d", i), workload.Burner(900, 400_000))
	}
	start := time.Now()
	if err := c.Run(5_000_000_000); err != nil {
		return "", 0, 0, err
	}
	wall := time.Since(start)
	for i, err := range errs {
		if err != nil {
			return "", 0, 0, fmt.Errorf("sender %d: %w", i, err)
		}
	}

	h := fnv.New64a()
	for i := 0; i < sc.nodes; i++ {
		ks := c.Nodes[i].Kernel.Stats()
		ns := c.NICs[i].Stats()
		fmt.Fprintf(h, "n%d clock=%d kstats=%+v nic=%+v|", i, c.Nodes[i].Clock.Now(), ks, ns)
	}
	pkts, bytes, rp, rb := c.Backplane.Stats()
	if !sc.lossy && bytes != uint64(sc.nodes*sc.messages*sc.size) {
		return "", 0, 0, fmt.Errorf("wire carried %d bytes, want %d", bytes, sc.nodes*sc.messages*sc.size)
	}
	if sc.lossy && pkts == 0 {
		return "", 0, 0, fmt.Errorf("lossy run sent no traffic; fingerprint would be vacuous")
	}
	fmt.Fprintf(h, "net:%d:%d:%d:%d fault=%+v", pkts, bytes, rp, rb, c.Backplane.FaultStats())
	return fmt.Sprintf("%016x", h.Sum64()), wall, c.Rounds(), nil
}
