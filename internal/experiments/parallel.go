package experiments

import (
	"fmt"
	"hash/fnv"
	"time"

	"shrimp/internal/cluster"
	"shrimp/internal/kernel"
	"shrimp/internal/machine"
	"shrimp/internal/nic"
	"shrimp/internal/stats"
	"shrimp/internal/udmalib"
	"shrimp/internal/workload"
)

// RunParallelSpeedup is E14: the conservative parallel execution core's
// cost/benefit card. The same 8-node ring workload (every node streams
// pages to a multi-hop neighbor, with burner processes keeping the
// schedulers busy) runs at cluster worker counts 1, 2, 4 and 8; for
// each run the experiment records host wall-clock time and a
// fingerprint of the simulated outcome. The checks assert what the
// refactor promises: the simulation is bit-identical at every worker
// count (speedup is reported as a metric, not asserted — wall-clock on
// shared CI machines is noisy; determinism is not).
func RunParallelSpeedup() (*Result, error) {
	res := &Result{
		ID:    "e14",
		Title: "Parallel simulation: serial vs parallel wall-clock speedup",
		Paper: "extension — the paper's nodes run concurrently in hardware; this measures simulating them concurrently",
	}

	workers := []int{1, 2, 4, 8}
	tbl := stats.NewTable("Conservative parallel execution of an 8-node ring (64 × 4 KB per node)",
		"workers", "wall ms", "speedup", "sim fingerprint")
	series := &stats.Series{Name: "simulation speedup vs workers", XLabel: "workers", YLabel: "speedup vs serial"}

	var baseMS float64
	var baseFP string
	identical := true
	for _, w := range workers {
		fp, wall, err := parallelSpeedupRun(w)
		if err != nil {
			return nil, fmt.Errorf("workers=%d: %w", w, err)
		}
		ms := float64(wall.Microseconds()) / 1000
		if w == 1 {
			baseMS, baseFP = ms, fp
		}
		if fp != baseFP {
			identical = false
		}
		speedup := 0.0
		if ms > 0 {
			speedup = baseMS / ms
		}
		series.Add(float64(w), speedup)
		tbl.AddRow(fmt.Sprintf("%d", w), fmt.Sprintf("%.1f", ms),
			fmt.Sprintf("%.2fx", speedup), fp[:16])
		res.metric(fmt.Sprintf("wall_ms_workers_%d", w), ms)
		res.metric(fmt.Sprintf("speedup_workers_%d", w), speedup)
	}
	res.Tables = append(res.Tables, tbl)
	res.Series = append(res.Series, series)

	res.check("simulation is bit-identical at every worker count", identical,
		"fingerprints at workers 1/2/4/8 must match; base %s", baseFP[:16])
	res.Notes = append(res.Notes,
		"speedup is host wall-clock, so it varies with machine load; the fingerprint equality is the invariant",
		"each worker runs whole node windows between barriers (deferred-mailbox delivery), so the parallelism never perturbs simulated time")
	return res, nil
}

// parallelSpeedupRun executes the fixed ring workload at the given
// worker count and returns (simulation fingerprint, host wall-clock).
func parallelSpeedupRun(workers int) (string, time.Duration, error) {
	const nodes = 8
	const messages = 64
	const size = 4096
	c := cluster.New(cluster.Config{
		Nodes:   nodes,
		Workers: workers,
		Machine: machine.Config{RAMFrames: 96, Kernel: kernel.Config{Quantum: 2000}},
		NIC:     nic.Config{NIPTPages: 16},
	})
	defer c.Shutdown()

	errs := make([]error, nodes)
	for i := 0; i < nodes; i++ {
		i, dst := i, (i+3)%nodes // multi-hop mesh routes
		if err := udmalib.MapSendWindow(c.NICs[i], 0, dst, []uint32{48}); err != nil {
			return "", 0, err
		}
		c.Nodes[i].Kernel.Spawn(fmt.Sprintf("sender%d", i), func(p *kernel.Proc) {
			d, err := udmalib.Open(p, c.NICs[i], true)
			if err != nil {
				errs[i] = err
				return
			}
			va, err := p.Alloc(size)
			if err != nil {
				errs[i] = err
				return
			}
			if err := p.WriteBuf(va, workload.Payload(size, byte(i+1))); err != nil {
				errs[i] = err
				return
			}
			for m := 0; m < messages; m++ {
				if err := d.Send(va, 0, size); err != nil {
					errs[i] = err
					return
				}
			}
		})
		c.Nodes[i].Kernel.Spawn(fmt.Sprintf("burner%d", i), workload.Burner(900, 400_000))
	}
	start := time.Now()
	if err := c.Run(5_000_000_000); err != nil {
		return "", 0, err
	}
	wall := time.Since(start)
	for i, err := range errs {
		if err != nil {
			return "", 0, fmt.Errorf("sender %d: %w", i, err)
		}
	}

	h := fnv.New64a()
	for i := 0; i < nodes; i++ {
		ks := c.Nodes[i].Kernel.Stats()
		ns := c.NICs[i].Stats()
		fmt.Fprintf(h, "n%d clock=%d kstats=%+v nic=%+v|", i, c.Nodes[i].Clock.Now(), ks, ns)
	}
	pkts, bytes, _, _ := c.Backplane.Stats()
	if bytes != uint64(nodes*messages*size) {
		return "", 0, fmt.Errorf("wire carried %d bytes, want %d", bytes, nodes*messages*size)
	}
	fmt.Fprintf(h, "net:%d:%d", pkts, bytes)
	return fmt.Sprintf("%016x", h.Sum64()), wall, nil
}
