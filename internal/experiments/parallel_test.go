package experiments

import "testing"

// TestE14WorkerEquivalence pins e14's determinism claim at test time on
// the exact configurations the experiment publishes: the ≥32-node mesh,
// clean and under the lossy fault plan, must fingerprint byte-identical
// at workers 1, 2, 4 and 8. (The cluster package has its own 8-node
// equivalence test; this one covers the large mesh where per-link
// lookahead extensions actually differ node to node.)
func TestE14WorkerEquivalence(t *testing.T) {
	for _, sc := range []speedupCase{e14Large, e14LargeLossy} {
		var ref string
		for _, w := range []int{1, 2, 4, 8} {
			fp, _, _, err := parallelSpeedupRun(sc, w)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", sc.name, w, err)
			}
			if w == 1 {
				ref = fp
				continue
			}
			if fp != ref {
				t.Fatalf("%s: workers=%d fingerprint %s diverges from serial %s", sc.name, w, fp, ref)
			}
		}
	}
}
