package experiments

import (
	"fmt"

	"shrimp/internal/cluster"
	"shrimp/internal/core"
	"shrimp/internal/kernel"
	"shrimp/internal/machine"
	"shrimp/internal/nic"
	"shrimp/internal/sim"
	"shrimp/internal/stats"
	"shrimp/internal/udmalib"
	"shrimp/internal/workload"
)

// fig8WindowPages is the send-window size: large enough for the biggest
// message in the sweep (64 KB = 16 pages).
const fig8WindowPages = 16

// RunFig8 reproduces Figure 8: the bandwidth of deliberate-update UDMA
// transfers as a percentage of the maximum measured bandwidth, for
// message sizes from 64 B to 64 KB (the paper plots 0–8 KB and states
// the maximum is sustained beyond 8 KB).
//
// Paper's shape: the curve "exceeds 50% of the maximum measured at a
// message size of only 512 bytes"; a full 4 KB page "achieves 94% of
// the maximum bandwidth"; "the slight dip in the curve after that point
// reflects the cost of initiating and starting a second UDMA transfer";
// the maximum is "sustained for messages exceeding 8 Kbytes in size".
func RunFig8() (*Result, error) {
	res := &Result{
		ID:    "e1",
		Title: "Figure 8: deliberate-update UDMA bandwidth vs message size",
		Paper: ">50% of peak at 512 B; 94% at 4 KB; dip just past 4 KB; max sustained >8 KB",
	}
	costs := machine.SHRIMP1996()

	raw := &stats.Series{Name: "deliberate update bandwidth", XLabel: "message size (bytes)", YLabel: "MB/s"}
	queued := &stats.Series{Name: "with request queue (Section 7 ablation)", XLabel: "message size (bytes)", YLabel: "MB/s"}
	for _, size := range workload.Fig8Sizes() {
		bw, err := fig8Bandwidth(size, 0)
		if err != nil {
			return nil, fmt.Errorf("fig8 size %d: %w", size, err)
		}
		raw.Add(float64(size), bw)
		qbw, err := fig8Bandwidth(size, 8)
		if err != nil {
			return nil, fmt.Errorf("fig8 queued size %d: %w", size, err)
		}
		queued.Add(float64(size), qbw)
	}

	pct := &stats.Series{
		Name:   "Figure 8: % of maximum measured bandwidth",
		XLabel: "message size (bytes)",
		YLabel: "% of peak",
	}
	peak := raw.MaxY()
	for _, p := range raw.Points {
		pct.Add(p.X, p.Y/peak*100)
	}
	res.Series = append(res.Series, pct, raw, queued)

	tbl := stats.NewTable("Deliberate update bandwidth (SHRIMP1996 model)",
		"message size", "MB/s", "% of peak", "MB/s with queue")
	for i, p := range raw.Points {
		tbl.AddRow(stats.Bytes(int(p.X)), fmt.Sprintf("%.2f", p.Y),
			fmt.Sprintf("%.1f", pct.Points[i].Y),
			fmt.Sprintf("%.2f", queued.Points[i].Y))
	}
	res.Tables = append(res.Tables, tbl)

	at := func(x int) float64 { v, _ := pct.Y(float64(x)); return v }
	res.check("peak bandwidth plausible for EISA", peak > 15 && peak < 33,
		"peak %.1f MB/s (EISA burst is 33 MB/s raw)", peak)
	res.check(">50%% of peak at 512 B", at(512) > 50, "measured %.1f%%", at(512))
	res.check("~94%% of peak at 4 KB (±4)", at(4096) >= 90 && at(4096) <= 98,
		"measured %.1f%%", at(4096))
	dipLow := 100.0
	for _, p := range pct.Points {
		if p.X > 4096 && p.X < 8192 && p.Y < dipLow {
			dipLow = p.Y
		}
	}
	res.check("dip just past 4 KB", dipLow < at(4096), "dip to %.1f%% vs %.1f%% at 4 KB",
		dipLow, at(4096))
	res.check("recovers by 8 KB", at(8192) >= at(4096), "%.1f%% at 8 KB", at(8192))
	res.check("max sustained beyond 8 KB", at(65536) >= 98, "%.1f%% at 64 KB", at(65536))

	// Section 7 ablation: the dip exists because the second page's
	// initiation waits for the first transfer; with the request queue
	// the initiations pipeline, so the post-4 KB dip shallows out.
	rawDip, _ := raw.Y(4608)
	qDip, _ := queued.Y(4608)
	res.check("request queue shallows the dip (Section 7)", qDip > rawDip,
		"4.5 KB: %.2f MB/s queued vs %.2f serial", qDip, rawDip)

	res.Notes = append(res.Notes,
		fmt.Sprintf("peak measured bandwidth %.1f MB/s; per-initiation cost %.1f µs (see e2)",
			peak, 2.8),
		"receive side is pure hardware (deliberate update): sender-limited, as on SHRIMP")
	res.metric("peak_mbps", peak)
	res.metric("pct_of_peak_at_512B", at(512))
	res.metric("pct_of_peak_at_4KB", at(4096))
	res.metric("queued_mbps_at_4.5KB", qDip)
	_ = costs
	return res, nil
}

// fig8Bandwidth measures steady-state one-way bandwidth for one message
// size on a fresh two-node cluster. queueDepth 0 is the real SHRIMP
// board (serial per-page initiation); >0 enables the Section 7 queue.
func fig8Bandwidth(size, queueDepth int) (float64, error) {
	c := cluster.New(cluster.Config{
		Nodes: 2,
		Machine: machine.Config{
			RAMFrames: 128,
			UDMA:      core.Config{QueueDepth: queueDepth},
		},
		NIC: nic.Config{NIPTPages: 64},
	})
	defer c.Shutdown()
	costs := c.Nodes[0].Costs

	// Receive window: raw frames 32.. on node 1 (hardware writes them;
	// no receiver process is involved in deliberate update).
	pfns := make([]uint32, fig8WindowPages)
	for i := range pfns {
		pfns[i] = uint32(32 + i)
	}
	if err := udmalib.MapSendWindow(c.NICs[0], 0, 1, pfns); err != nil {
		return 0, err
	}

	reps := 8
	if size < 4096 {
		reps = 32768 / size // keep total work comparable across sizes
	}

	var elapsed sim.Cycles
	err := runOn(c.Nodes[0], "sender", func(p *kernel.Proc) error {
		d, err := udmalib.Open(p, c.NICs[0], true)
		if err != nil {
			return err
		}
		va, err := p.Alloc(fig8WindowPages * 4096)
		if err != nil {
			return err
		}
		if err := p.WriteBuf(va, workload.Payload(size, 7)); err != nil {
			return err
		}
		send := func() error {
			if queueDepth > 0 {
				return d.QueuedSend(va, 0, size)
			}
			return d.Send(va, 0, size)
		}
		// Warm mappings and hardware.
		if err := send(); err != nil {
			return err
		}
		start := p.Now()
		for r := 0; r < reps; r++ {
			if err := send(); err != nil {
				return err
			}
		}
		elapsed = p.Now() - start
		return nil
	})
	if err != nil {
		return 0, err
	}
	return mbps(costs, size*reps, elapsed), nil
}
