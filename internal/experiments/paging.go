package experiments

import (
	"fmt"

	"shrimp/internal/addr"
	"shrimp/internal/device"
	"shrimp/internal/kernel"
	"shrimp/internal/machine"
	"shrimp/internal/sim"
	"shrimp/internal/stats"
	"shrimp/internal/udmalib"
	"shrimp/internal/workload"
)

// RunPinningVsGuard reproduces the Section 6 / invariant I4 argument:
// "Although this scheme has the same effect as page pinning, it is much
// faster. Pinning requires changing the page table on every DMA, while
// our mechanism requires no kernel action in the common case."
// A sender streams messages while a pager process applies memory
// pressure; the traditional path pays pin/unpin per transfer, the UDMA
// path pays nothing unless the replacement sweep actually collides with
// an in-flight frame.
func RunPinningVsGuard() (*Result, error) {
	res := &Result{
		ID:    "e8",
		Title: "Page pinning vs the UDMA remap guard under paging pressure",
		Paper: "same protection as pinning with no kernel action in the common case",
	}

	type outcome struct {
		us       float64
		pins     uint64
		stalls   uint64
		evicts   uint64
		pageOuts uint64
	}
	run := func(udma bool) (outcome, error) {
		var out outcome
		n := machine.New(0, machine.Config{
			RAMFrames: 48, // tight memory: the pager forces replacement
			NoUDMA:    !udma,
			Kernel:    kernel.Config{Quantum: 5000},
		})
		buf := device.NewBuffer("buf", 8, 4, 0)
		n.AttachDevice(buf, 0)
		defer n.Kernel.Shutdown()

		const messages = 48
		const size = 1024
		var senderUS sim.Cycles
		var sendErr error
		n.Kernel.Spawn("sender", func(p *kernel.Proc) {
			va, err := p.Alloc(4096)
			if err != nil {
				sendErr = err
				return
			}
			if err := p.WriteBuf(va, workload.Payload(size, 1)); err != nil {
				sendErr = err
				return
			}
			var d *udmalib.Dev
			if udma {
				d, err = udmalib.Open(p, buf, true)
				if err != nil {
					sendErr = err
					return
				}
			}
			start := p.Now()
			for m := 0; m < messages; m++ {
				if udma {
					err = d.Send(va, 0, size)
				} else {
					err = p.DMAWrite(va, deviceProxy0, size, kernel.DMAOptions{})
				}
				if err != nil {
					sendErr = err
					return
				}
			}
			senderUS = p.Now() - start
		})
		// Background paging pressure: the pager's working set alone
		// exceeds installed memory, so the replacement sweep runs
		// throughout.
		n.Kernel.Spawn("pager", workload.Pager(60, 60_000_000))
		if err := n.Kernel.Run(sim.Forever); err != nil {
			return out, err
		}
		if sendErr != nil {
			return out, sendErr
		}
		ks := n.Kernel.Stats()
		out.us = n.Costs.Micros(senderUS)
		out.pins = ks.Pins
		out.stalls = ks.EvictionStallsI4
		out.evicts = ks.Evictions
		out.pageOuts = ks.PageOuts
		return out, nil
	}

	trad, err := run(false)
	if err != nil {
		return nil, fmt.Errorf("traditional: %w", err)
	}
	ud, err := run(true)
	if err != nil {
		return nil, fmt.Errorf("udma: %w", err)
	}

	tbl := stats.NewTable("48 × 1 KB sends under paging pressure (48-frame RAM, 60-page pager)",
		"path", "sender µs", "pins", "I4 guard skips", "evictions")
	tbl.AddRow("kernel DMA (pin per transfer)", fmt.Sprintf("%.0f", trad.us),
		fmt.Sprintf("%d", trad.pins), "—", fmt.Sprintf("%d", trad.evicts))
	tbl.AddRow("UDMA (remap guard)", fmt.Sprintf("%.0f", ud.us),
		fmt.Sprintf("%d", ud.pins), fmt.Sprintf("%d", ud.stalls), fmt.Sprintf("%d", ud.evicts))
	res.Tables = append(res.Tables, tbl)

	res.check("UDMA sender faster under pressure", ud.us < trad.us,
		"%.0f µs vs %.0f µs", ud.us, trad.us)
	res.check("traditional path pins on every transfer", trad.pins >= 48,
		"%d pin operations for 48 sends", trad.pins)
	res.check("UDMA path performs no pinning", ud.pins == 0,
		"%d pins", ud.pins)
	res.check("replacement actually ran (pressure was real)", ud.evicts > 0 && trad.evicts > 0,
		"udma %d / trad %d evictions", ud.evicts, trad.evicts)
	res.Notes = append(res.Notes,
		"the I4 guard column counts replacement-sweep candidates skipped because a UDMA transfer held the frame — the 'kernel action' that replaces pinning, charged only when a collision actually happens")
	return res, nil
}

// deviceProxy0 is the device-proxy physical address of the first device
// page (the Buffer device is attached at page 0 in these experiments).
var deviceProxy0 = addr.DevProxy(0, 0)
