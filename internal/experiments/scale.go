package experiments

import (
	"fmt"
	"hash/fnv"

	"shrimp/internal/cluster"
	"shrimp/internal/interconnect"
	"shrimp/internal/kernel"
	"shrimp/internal/machine"
	"shrimp/internal/nic"
	"shrimp/internal/sim"
	"shrimp/internal/stats"
	"shrimp/internal/telemetry"
	"shrimp/internal/udmalib"
	"shrimp/internal/workload"
)

// E18 exercises the routed fabric at scale: a 64-node (8×8) mesh and
// torus under incast-into-one-node, all-to-all exchange and
// bisection-saturation workloads, each on two fabrics:
//
//   - "limited": every routed link at scaleLimitedBPC bytes/cycle —
//     well below the 0.55 B/cyc EISA receive bus, so the links (not
//     the receiver) are the bottleneck and XY routing funnels incast
//     through the one or two links feeding the victim's router;
//   - "ample": links at the host-interface rate (2.9 B/cyc), where the
//     receiver's bus is the bottleneck and the fabric never saturates.
//
// Goodput on the limited fabric must visibly flatten at link capacity
// — more senders buy queueing, not throughput — while the ample fabric
// runs several times faster. The torus's wraparound links double the
// inbound capacity at the incast victim and roughly halve all-to-all
// link loads, which the cross-topology checks pin down.
const (
	scaleNodes      = 64
	scaleWidth      = 8
	scaleMsgSize    = 4096
	scaleLimitedBPC = 0.1 // bytes/cycle per routed link on the "limited" fabric
)

// scaleCase is one e18 run: a topology, a fabric capacity, a workload
// and a worker count.
type scaleCase struct {
	name     string
	topo     interconnect.Topology
	workload string // "incast", "alltoall" or "bisect"
	senders  []int  // incast senders (nil = every node but the victim)
	messages int    // per sender (per destination for alltoall)
	workers  int
	metrics  *telemetry.Registry // optional rollup mirror (pure observer)
}

// scaleRun is what one case measures.
type scaleRun struct {
	fingerprint string
	bytes       uint64
	elapsed     sim.Cycles
	goodput     float64 // aggregate payload bytes per simulated cycle
	hotBusy     uint64  // busiest link's busy cycles
	hotFrac     float64 // busiest link's busy fraction of elapsed
	waitCycles  uint64  // total cycles packets queued on links
	peakQueue   uint64  // deepest link FIFO backlog anywhere
	linksUsed   int
}

// scaleTopo builds the 8×8 declaration at the given per-link capacity
// (0 = host-interface rate, the "ample" fabric).
func scaleTopo(kind interconnect.Kind, bpc float64) interconnect.Topology {
	return interconnect.Topology{Kind: kind, Nodes: scaleNodes, Width: scaleWidth, LinkBytesPerCyc: bpc}
}

// RunScaleOut is E18. See the package-level constants above for the
// fabric regimes; the checks assert where each regime's bottleneck sits
// and that the routed fabric stays bit-exact under host parallelism.
func RunScaleOut() (*Result, error) {
	res := &Result{
		ID:    "e18",
		Title: "Routed fabric at scale: 64-node mesh/torus link contention",
		Paper: "extension — the paper's 2-node prototype rides a real routed Paragon mesh; this models that fabric's links and lets them saturate",
	}

	type cell struct {
		workload string
		kind     interconnect.Kind
		fabric   string
		bpc      float64
		messages int
	}
	var cells []cell
	for _, wk := range []struct {
		name string
		msgs int
	}{{"incast", 6}, {"alltoall", 1}, {"bisect", 8}} {
		for _, kind := range []interconnect.Kind{interconnect.KindMesh, interconnect.KindTorus} {
			cells = append(cells,
				cell{wk.name, kind, "limited", scaleLimitedBPC, wk.msgs},
				cell{wk.name, kind, "ample", 0, wk.msgs})
		}
	}

	tbl := stats.NewTable(
		fmt.Sprintf("64-node routed fabric (8×8), %d B messages: goodput vs link capacity", scaleMsgSize),
		"workload", "topology", "fabric", "goodput B/cyc", "MB/s", "elapsed Mcyc", "hot link busy", "queue wait Mcyc", "peak queue")
	costs := machine.SHRIMP1996()
	runs := make(map[string]*scaleRun, len(cells))
	for _, cl := range cells {
		sc := scaleCase{
			name:     fmt.Sprintf("%s_%s_%s", cl.workload, cl.kind, cl.fabric),
			topo:     scaleTopo(cl.kind, cl.bpc),
			workload: cl.workload,
			messages: cl.messages,
			workers:  4,
		}
		r, err := runScaleCase(sc)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sc.name, err)
		}
		runs[sc.name] = r
		tbl.AddRow(cl.workload, cl.kind.String(), cl.fabric,
			fmt.Sprintf("%.3f", r.goodput),
			fmt.Sprintf("%.1f", mbps(costs, int(r.bytes), r.elapsed)),
			fmt.Sprintf("%.2f", float64(r.elapsed)/1e6),
			fmt.Sprintf("%.0f%%", 100*r.hotFrac),
			fmt.Sprintf("%.2f", float64(r.waitCycles)/1e6),
			fmt.Sprintf("%d", r.peakQueue))
		res.metric(sc.name+"_goodput_bpc", r.goodput)
		res.metric(sc.name+"_elapsed_cycles", float64(r.elapsed))
		res.metric(sc.name+"_peak_queue", float64(r.peakQueue))
	}
	res.Tables = append(res.Tables, tbl)

	// Incast flattening sweep: senders drawn from rows 1+ only, so on
	// the mesh every byte funnels through the single column link into
	// the victim's router — quadrupling the offered load must buy
	// (almost) nothing.
	series := &stats.Series{Name: "incast goodput vs sender count (mesh, limited fabric)",
		XLabel: "senders", YLabel: "goodput B/cyc"}
	sweepTbl := stats.NewTable(
		fmt.Sprintf("Incast flattening at link capacity (%.2f B/cyc): senders from rows 1+, mesh", scaleLimitedBPC),
		"senders", "offered B/cyc", "goodput B/cyc", "hot link busy", "peak queue")
	var sweepGoodputs []float64
	for _, k := range []int{14, 28, 56} {
		senders := make([]int, k)
		for i := range senders {
			senders[i] = scaleWidth + i // nodes 8.. — all with y >= 1
		}
		sc := scaleCase{
			name:     fmt.Sprintf("incast_flat_%d", k),
			topo:     scaleTopo(interconnect.KindMesh, scaleLimitedBPC),
			workload: "incast",
			senders:  senders,
			messages: 6,
			workers:  4,
		}
		r, err := runScaleCase(sc)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sc.name, err)
		}
		// Offered load: every sender's bus can source a message each
		// ~(startup + size/DMABytesPerCyc) cycles.
		perMsg := float64(costs.RecvDMAStartup) + float64(scaleMsgSize)/costs.DMABytesPerCyc
		offered := float64(k) * float64(scaleMsgSize) / perMsg
		sweepTbl.AddRow(fmt.Sprintf("%d", k), fmt.Sprintf("%.2f", offered),
			fmt.Sprintf("%.3f", r.goodput),
			fmt.Sprintf("%.0f%%", 100*r.hotFrac),
			fmt.Sprintf("%d", r.peakQueue))
		series.Add(float64(k), r.goodput)
		sweepGoodputs = append(sweepGoodputs, r.goodput)
		res.metric(fmt.Sprintf("incast_flat_senders_%d_goodput_bpc", k), r.goodput)
	}
	res.Tables = append(res.Tables, sweepTbl)
	res.Series = append(res.Series, series)

	// --- shape checks -----------------------------------------------------

	mi := runs["incast_mesh_limited"]
	res.check("limited incast flattens at link capacity",
		mi.goodput >= 0.5*scaleLimitedBPC && mi.goodput <= 2.5*scaleLimitedBPC,
		"mesh incast goodput %.3f B/cyc vs %.2f B/cyc per link (63 senders share the victim's 2 inbound links)",
		mi.goodput, scaleLimitedBPC)

	ai := runs["incast_mesh_ample"]
	res.check("ample fabric does not flatten at link capacity",
		ai.goodput >= 2.5*mi.goodput,
		"ample incast %.3f B/cyc vs limited %.3f (receiver bus %.2f B/cyc is the ample bottleneck)",
		ai.goodput, mi.goodput, costs.DMABytesPerCyc)

	lo, hi := sweepGoodputs[0], sweepGoodputs[0]
	for _, g := range sweepGoodputs {
		if g < lo {
			lo = g
		}
		if g > hi {
			hi = g
		}
	}
	res.check("incast goodput is flat as offered load quadruples",
		lo > 0 && hi/lo <= 1.25,
		"goodputs %.3f..%.3f B/cyc across 14/28/56 senders (all behind one column link)", lo, hi)

	ti := runs["incast_torus_limited"]
	res.check("torus wraparound widens the incast funnel",
		ti.goodput >= 1.4*mi.goodput,
		"torus incast %.3f vs mesh %.3f B/cyc (4 inbound links vs 2)", ti.goodput, mi.goodput)

	// All-to-all: the torus's wraparound halves each dimension's worst
	// crossing load. End-to-end goodput moves less (every destination
	// still has an incast funnel on its last hop), so the check pins
	// the hottest link's occupancy, with goodput as a no-regression
	// guard.
	ma, ta := runs["alltoall_mesh_limited"], runs["alltoall_torus_limited"]
	res.check("torus spreads the all-to-all hot-spot (halved worst-link load)",
		float64(ta.hotBusy) <= 0.75*float64(ma.hotBusy) && ta.goodput >= 0.95*ma.goodput,
		"hottest link busy %.2f Mcyc (torus) vs %.2f (mesh); goodput %.3f vs %.3f B/cyc",
		float64(ta.hotBusy)/1e6, float64(ma.hotBusy)/1e6, ta.goodput, ma.goodput)

	mb, ab := runs["bisect_mesh_limited"], runs["bisect_mesh_ample"]
	crossCap := 2 * scaleWidth * scaleLimitedBPC // W crossing links per direction
	res.check("bisection exchange saturates the crossing links",
		mb.goodput >= 0.5*crossCap && mb.goodput <= 1.25*crossCap,
		"mesh bisect goodput %.3f B/cyc vs %.1f B/cyc crossing capacity", mb.goodput, crossCap)
	res.check("ample fabric clears the bisection bottleneck",
		ab.goodput >= 2*mb.goodput,
		"ample %.3f vs limited %.3f B/cyc", ab.goodput, mb.goodput)

	// --- determinism: worker equivalence and run-twice --------------------

	fpCase := scaleCase{
		name:     "incast_mesh_limited_fp",
		topo:     scaleTopo(interconnect.KindMesh, scaleLimitedBPC),
		workload: "incast",
		messages: 6,
	}
	var baseFP string
	identical := true
	for _, w := range []int{1, 2, 4, 8} {
		sc := fpCase
		sc.workers = w
		r, err := runScaleCase(sc)
		if err != nil {
			return nil, fmt.Errorf("fingerprint workers=%d: %w", w, err)
		}
		if w == 1 {
			baseFP = r.fingerprint
		} else if r.fingerprint != baseFP {
			identical = false
		}
	}
	res.check("contention resolution is bit-identical at workers 1/2/4/8", identical,
		"64-node incast fingerprints must match; base %s", baseFP[:16])

	sc := fpCase
	sc.workers = 4
	again, err := runScaleCase(sc)
	if err != nil {
		return nil, fmt.Errorf("rerun: %w", err)
	}
	res.check("same seed, same fabric: run-twice bit-exact",
		again.fingerprint == baseFP,
		"rerun fingerprint %s vs %s", again.fingerprint[:16], baseFP[:16])

	res.metric("fabric_links_used_incast", float64(mi.linksUsed))
	res.metric("incast_wait_cycles", float64(mi.waitCycles))
	res.Notes = append(res.Notes,
		fmt.Sprintf("limited fabric: %.2f B/cyc per directed link — below the %.2f B/cyc receive bus, so links are the bottleneck", scaleLimitedBPC, costs.DMABytesPerCyc),
		"ample fabric: links at the host-interface rate (2.9 B/cyc); incast is then bound by the victim's EISA receive bus",
		"contention is charged at barriers in the deterministic (arrive, src, seq) merge order, so link queueing is a pure function of what was sent",
		"XY routing funnels mesh incast through 2 inbound links at the victim's router; the torus's wraparound links make it 4")
	return res, nil
}

// runScaleCase builds the 64-node cluster, wires the workload's send
// windows, runs it to completion and folds the outcome — including the
// per-link occupancy ledger — into a fingerprint.
func runScaleCase(sc scaleCase) (*scaleRun, error) {
	nodes := sc.topo.Nodes
	c := cluster.New(cluster.Config{
		Nodes:    nodes,
		Topology: sc.topo,
		Workers:  sc.workers,
		Window:   20_000,
		Machine:  machine.Config{RAMFrames: 96, Kernel: kernel.Config{Quantum: 2000}},
		NIC:      nic.Config{NIPTPages: uint32(nodes)},
		Metrics:  sc.metrics,
	})
	defer c.Shutdown()

	// sends[i] lists (NIPT entry, destination) pairs for node i's
	// sender process; empty means the node only receives.
	type target struct{ entry, dst int }
	sends := make([][]target, nodes)
	switch sc.workload {
	case "incast":
		senders := sc.senders
		if senders == nil {
			for i := 1; i < nodes; i++ {
				senders = append(senders, i)
			}
		}
		for _, s := range senders {
			sends[s] = []target{{0, 0}}
		}
	case "alltoall":
		for i := 0; i < nodes; i++ {
			e := 0
			for j := 0; j < nodes; j++ {
				if j == i {
					continue
				}
				sends[i] = append(sends[i], target{e, j})
				e++
			}
		}
	case "bisect":
		// Every node exchanges with the node half the ring away in its
		// row: the whole machine's traffic crosses the column-W/2
		// bisection (mesh) or splits between it and the wraparound
		// links (torus). 8×8 only (e18's grid).
		for i := 0; i < nodes; i++ {
			x, y := i%scaleWidth, i/scaleWidth
			sends[i] = []target{{0, y*scaleWidth + (x+scaleWidth/2)%scaleWidth}}
		}
	default:
		return nil, fmt.Errorf("unknown workload %q", sc.workload)
	}

	errs := make([]error, nodes)
	var wantBytes uint64
	for i := 0; i < nodes; i++ {
		if len(sends[i]) == 0 {
			continue
		}
		for _, tg := range sends[i] {
			if err := udmalib.MapSendWindow(c.NICs[i], uint32(tg.entry), tg.dst, []uint32{48}); err != nil {
				return nil, err
			}
		}
		wantBytes += uint64(len(sends[i]) * sc.messages * scaleMsgSize)
		i, targets := i, sends[i]
		c.Nodes[i].Kernel.Spawn(fmt.Sprintf("sender%d", i), func(p *kernel.Proc) {
			d, err := udmalib.Open(p, c.NICs[i], true)
			if err != nil {
				errs[i] = err
				return
			}
			va, err := p.Alloc(scaleMsgSize)
			if err != nil {
				errs[i] = err
				return
			}
			if err := p.WriteBuf(va, workload.Payload(scaleMsgSize, byte(i+1))); err != nil {
				errs[i] = err
				return
			}
			for m := 0; m < sc.messages; m++ {
				for _, tg := range targets {
					if err := d.Send(va, uint32(tg.entry)*4096, scaleMsgSize); err != nil {
						errs[i] = err
						return
					}
				}
			}
		})
	}
	if err := c.Run(5_000_000_000); err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sender %d: %w", i, err)
		}
	}

	if sc.metrics != nil {
		c.PublishRollup()
	}
	_, bytes, _, _ := c.Backplane.Stats()
	if bytes != wantBytes {
		return nil, fmt.Errorf("wire carried %d bytes, want %d", bytes, wantBytes)
	}
	r := &scaleRun{bytes: bytes, elapsed: c.MaxNow()}
	if r.elapsed > 0 {
		r.goodput = float64(bytes) / float64(r.elapsed)
	}

	h := fnv.New64a()
	for i := 0; i < nodes; i++ {
		fmt.Fprintf(h, "n%d clock=%d nic=%+v|", i, c.Nodes[i].Clock.Now(), c.NICs[i].Stats())
	}
	ls := c.Backplane.LinkStats()
	r.linksUsed = len(ls)
	for _, l := range ls {
		fmt.Fprintf(h, "L%d>%d:%d:%d:%d:%d|", l.From, l.To, l.BusyCycles, l.WaitCycles, l.Packets, l.PeakQueue)
		if l.BusyCycles > r.hotBusy {
			r.hotBusy = l.BusyCycles
		}
		r.waitCycles += l.WaitCycles
		if l.PeakQueue > r.peakQueue {
			r.peakQueue = l.PeakQueue
		}
	}
	if r.elapsed > 0 {
		r.hotFrac = float64(r.hotBusy) / float64(r.elapsed)
	}
	r.fingerprint = fmt.Sprintf("%016x", h.Sum64())
	return r, nil
}

// IncastRun is the readout of one standalone incast run — the
// cmd/shrimpsim `-scenario incast` face of the e18 machinery.
type IncastRun struct {
	Fingerprint string
	Bytes       uint64
	Elapsed     sim.Cycles
	GoodputBPC  float64 // aggregate payload bytes per simulated cycle
	HotBusy     uint64  // busiest link's busy cycles
	HotFrac     float64 // busiest link's busy fraction of elapsed
	WaitCycles  uint64  // total cycles packets queued on links
	PeakQueue   uint64  // deepest link FIFO backlog anywhere
	LinksUsed   int
}

// RunIncast drives every node but node 0 to push `messages` page-sized
// transfers into node 0 across an N-node routed fabric of the given
// kind, with every link at linkBPC bytes/cycle (0 = the host-interface
// rate, so the receiver bus is the bottleneck instead of the fabric).
// The width is the near-square default. Identical arguments produce an
// identical Fingerprint at any worker count.
func RunIncast(nodes int, kind interconnect.Kind, linkBPC float64, messages, workers int, reg *telemetry.Registry) (*IncastRun, error) {
	if nodes < 2 {
		return nil, fmt.Errorf("incast needs at least 2 nodes (got %d)", nodes)
	}
	if messages < 1 {
		messages = 1
	}
	if workers < 1 {
		workers = 1
	}
	topo := interconnect.Topology{Kind: kind, Nodes: nodes, LinkBytesPerCyc: linkBPC}
	r, err := runScaleCase(scaleCase{topo: topo, workload: "incast",
		messages: messages, workers: workers, metrics: reg})
	if err != nil {
		return nil, err
	}
	return &IncastRun{
		Fingerprint: r.fingerprint,
		Bytes:       r.bytes,
		Elapsed:     r.elapsed,
		GoodputBPC:  r.goodput,
		HotBusy:     r.hotBusy,
		HotFrac:     r.hotFrac,
		WaitCycles:  r.waitCycles,
		PeakQueue:   r.peakQueue,
		LinksUsed:   r.linksUsed,
	}, nil
}

// ScaleLimitedBPC is the constrained per-link capacity the incast
// scenario and e18 share for their "limited" fabric.
const ScaleLimitedBPC = scaleLimitedBPC
