package experiments

import (
	"fmt"

	"shrimp/internal/addr"
	"shrimp/internal/device"
	"shrimp/internal/kernel"
	"shrimp/internal/machine"
	"shrimp/internal/sim"
	"shrimp/internal/stats"
	"shrimp/internal/workload"
)

// hippiCosts models the paper's motivating example (Section 1): a
// 100 MB/s HIPPI channel on the Paragon whose kernel-initiated send
// overhead exceeds 350 µs. Kernel path costs are scaled up from the
// SHRIMP model to land the fixed per-send overhead in that range; the
// channel itself is fast.
func hippiCosts() *sim.CostModel {
	m := machine.SHRIMP1996()
	m.DMABytesPerCyc = 100e6 / m.CPUHz // 100 MB/s channel
	m.DMAStartup = 100
	m.SyscallEntry = 12000  // 200 µs: heavyweight message-system entry
	m.SyscallExit = 4000    // 67 µs
	m.InterruptEntry = 5000 // 83 µs completion handling
	m.PinPage = 120
	m.UnpinPage = 80
	m.TranslatePage = 60
	m.BuildDescPage = 30
	return m
}

// RunHIPPIOverhead reproduces the introduction's numbers: "the overhead
// of sending a piece of data over a 100 MByte/sec HIPPI channel on the
// Paragon multicomputer is more than 350 microseconds. With a data
// block size of 1 Kbyte, the transfer rate achieved is only
// 2.7 MByte/sec, which is less than 2% of the raw hardware bandwidth.
// Achieving a transfer rate of 80 MBytes/sec requires the data block
// size to be larger than 64 KBytes."
func RunHIPPIOverhead() (*Result, error) {
	res := &Result{
		ID:    "e3",
		Title: "Traditional DMA overhead on a HIPPI-class channel",
		Paper: ">350 µs overhead; 1 KB blocks reach only ~2.7 MB/s (<3% of raw); 80 MB/s needs blocks ≫64 KB",
	}
	costs := hippiCosts()

	series := &stats.Series{
		Name:   "kernel-initiated DMA effective bandwidth",
		XLabel: "block size (bytes)",
		YLabel: "MB/s",
	}
	tbl := stats.NewTable("Kernel DMA on a 100 MB/s channel",
		"block size", "MB/s", "% of raw", "µs/transfer")

	var overhead1KB float64
	for _, size := range workload.HIPPIBlockSizes() {
		us, err := hippiTransferTime(costs, size)
		if err != nil {
			return nil, fmt.Errorf("hippi block %d: %w", size, err)
		}
		bw := float64(size) / (us * 1e-6) / 1e6
		series.Add(float64(size), bw)
		tbl.AddRow(stats.Bytes(size), fmt.Sprintf("%.1f", bw),
			fmt.Sprintf("%.1f", bw), fmt.Sprintf("%.0f", us))
		if size == 1024 {
			overhead1KB = us - float64(size)/100e6*1e6 // subtract wire time
		}
	}
	res.Series = append(res.Series, series)
	res.Tables = append(res.Tables, tbl)

	at := func(x int) float64 { v, _ := series.Y(float64(x)); return v }
	res.check("fixed overhead > 350 µs", overhead1KB > 350,
		"measured %.0f µs of non-wire time per send", overhead1KB)
	res.check("1 KB blocks under 5%% of raw", at(1024) < 5,
		"measured %.1f MB/s at 1 KB (paper: 2.7)", at(1024))
	res.check("64 KB blocks still below 80 MB/s", at(65536) < 80,
		"measured %.1f MB/s at 64 KB", at(65536))
	res.check("80 MB/s reachable with very large blocks", at(524288) >= 75,
		"measured %.1f MB/s at 512 KB", at(524288))
	res.check("bandwidth monotonically increasing", monotone(series),
		"curve rises with block size")
	return res, nil
}

func monotone(s *stats.Series) bool {
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].Y < s.Points[i-1].Y {
			return false
		}
	}
	return true
}

// hippiTransferTime measures one steady-state kernel-DMA send of the
// given size, in microseconds.
func hippiTransferTime(costs *sim.CostModel, size int) (float64, error) {
	frames := size/addr.PageSize + 64
	n := machine.New(0, machine.Config{
		Costs:     costs,
		RAMFrames: frames,
		NoUDMA:    true, // the baseline machine has no UDMA hardware
	})
	// The "HIPPI channel": a device that accepts arbitrarily large
	// writes with no extra latency (the channel itself is not the
	// bottleneck in this experiment).
	ch := device.NewBuffer("hippi", uint32(size/addr.PageSize+2), 4, 0)
	n.AttachDevice(ch, 0)
	defer n.Kernel.Shutdown()

	var cycles sim.Cycles
	err := runOn(n, "p", func(p *kernel.Proc) error {
		va, err := p.Alloc(size)
		if err != nil {
			return err
		}
		if err := p.WriteBuf(va, workload.Payload(size, 9)); err != nil {
			return err
		}
		// Warm-up, then measure.
		if err := p.DMAWrite(va, addr.DevProxy(0, 0), size, kernel.DMAOptions{}); err != nil {
			return err
		}
		start := p.Now()
		if err := p.DMAWrite(va, addr.DevProxy(0, 0), size, kernel.DMAOptions{}); err != nil {
			return err
		}
		cycles = p.Now() - start
		return nil
	})
	if err != nil {
		return 0, err
	}
	return costs.Micros(cycles), nil
}
