package experiments

import (
	"fmt"

	"shrimp/internal/addr"
	"shrimp/internal/cluster"
	"shrimp/internal/kernel"
	"shrimp/internal/machine"
	"shrimp/internal/nic"
	"shrimp/internal/sim"
	"shrimp/internal/stats"
	"shrimp/internal/udmalib"
	"shrimp/internal/workload"
)

// RunNIPT reproduces the Section 8 NIPT description: "the rightmost 15
// bits of the page number are used to index directly into the Network
// Interface Page Table ... Since the NIPT is indexed with 15 bits, it
// can hold 32K different destination pages." We fill tables of
// increasing size, send through randomly chosen entries, and show the
// translation cost is a direct index — flat in table size and entry
// position.
func RunNIPT() (*Result, error) {
	res := &Result{
		ID:    "e9",
		Title: "NIPT translation and capacity",
		Paper: "15-bit direct index, 32 K destination pages, per-packet lookup cost constant",
	}

	sizes := []uint32{64, 1024, 8192, 32768}
	tbl := stats.NewTable("Send cost through a NIPT of varying size (256 B messages)",
		"NIPT entries", "entries exercised", "µs/send", "all payloads delivered")

	var costPerSize []float64
	for _, entries := range sizes {
		us, exercised, ok, err := niptRun(entries)
		if err != nil {
			return nil, fmt.Errorf("nipt %d: %w", entries, err)
		}
		costPerSize = append(costPerSize, us)
		tbl.AddRow(fmt.Sprintf("%d", entries), fmt.Sprintf("%d", exercised),
			fmt.Sprintf("%.1f", us), fmt.Sprintf("%v", ok))
		if !ok {
			res.check(fmt.Sprintf("delivery intact at %d entries", entries), false, "corrupt")
		}
	}
	res.Tables = append(res.Tables, tbl)

	res.check("32 K-entry NIPT supported (15-bit index)", sizes[len(sizes)-1] == 32768,
		"largest table: %d entries", sizes[len(sizes)-1])
	flat := true
	for _, us := range costPerSize {
		if us > costPerSize[0]*1.1 || us < costPerSize[0]*0.9 {
			flat = false
		}
	}
	res.check("translation cost flat in table size (direct index)", flat,
		"%.1f µs at 64 entries vs %.1f µs at 32 K", costPerSize[0], costPerSize[len(costPerSize)-1])
	return res, nil
}

// niptRun installs 'entries' NIPT entries that scatter across 16
// receiver frames, sends one message through a pseudo-random sample of
// entries, and verifies each landed where its entry pointed.
func niptRun(entries uint32) (usPerSend float64, exercised int, intact bool, err error) {
	c := cluster.New(cluster.Config{
		Nodes:   2,
		Machine: machine.Config{RAMFrames: 64},
		NIC:     nic.Config{NIPTPages: entries},
	})
	defer c.Shutdown()
	costs := c.Nodes[0].Costs

	const recvFrames = 16
	const msg = 256
	for i := uint32(0); i < entries; i++ {
		if err := c.NICs[0].SetNIPT(i, nic.NIPTEntry{
			Valid:    true,
			DestNode: 1,
			DestPFN:  32 + i%recvFrames,
		}); err != nil {
			return 0, 0, false, err
		}
	}

	rng := sim.NewRNG(42)
	sample := make([]uint32, 24)
	for i := range sample {
		sample[i] = rng.Uint32n(entries)
	}

	var elapsed sim.Cycles
	err = runOn(c.Nodes[0], "sender", func(p *kernel.Proc) error {
		d, err := udmalib.Open(p, c.NICs[0], true)
		if err != nil {
			return err
		}
		va, err := p.Alloc(4096)
		if err != nil {
			return err
		}
		// Warm-up through entry 0.
		if err := p.WriteBuf(va, workload.Payload(msg, 0)); err != nil {
			return err
		}
		if err := d.Send(va, udmalib.WindowOff(0, 0), msg); err != nil {
			return err
		}
		start := p.Now()
		for _, e := range sample {
			if err := p.WriteBuf(va, workload.Payload(msg, byte(e))); err != nil {
				return err
			}
			if err := d.Send(va, udmalib.WindowOff(e, 0), msg); err != nil {
				return err
			}
		}
		elapsed = p.Now() - start
		return nil
	})
	if err != nil {
		return 0, 0, false, err
	}
	// Drain in-flight packets and receive DMAs through the cluster's
	// merged event loop (per-node RunUntilIdle would never see packets
	// parked in the backplane's deferred mailboxes).
	c.DrainHardware()

	// The LAST message into each frame wins; verify frame contents
	// match the latest sender whose entry pointed there.
	lastSeed := make(map[uint32]byte)
	for _, e := range sample {
		lastSeed[32+e%recvFrames] = byte(e)
	}
	intact = true
	for pfn, seed := range lastSeed {
		want := workload.Payload(msg, seed)
		got, rerr := c.Nodes[1].RAM.Read(frameAddr(pfn), msg)
		if rerr != nil {
			return 0, 0, false, rerr
		}
		for i := range want {
			if got[i] != want[i] {
				intact = false
			}
		}
	}
	return costs.Micros(elapsed) / float64(len(sample)), len(sample), intact, nil
}

func frameAddr(pfn uint32) addr.PAddr { return addr.FrameAddr(pfn) }
