package experiments

import (
	"fmt"

	"shrimp/internal/addr"
	"shrimp/internal/cluster"
	"shrimp/internal/kernel"
	"shrimp/internal/nic"
	"shrimp/internal/sim"
	"shrimp/internal/stats"
	"shrimp/internal/udmalib"
	"shrimp/internal/workload"
)

// RunAutoVsDeliberate is an extension experiment (e11): SHRIMP's two
// transfer strategies side by side. The paper retains "the automatic
// update transfer strategy ... which still relies upon fixed mappings
// between source and destination pages" alongside UDMA deliberate
// update (Section 9); the SHRIMP literature's rule of thumb is that
// automatic update wins fine-grained scattered writes (no initiation at
// all) while deliberate update wins bulk transfers (burst DMA instead
// of word-by-word write-through).
func RunAutoVsDeliberate() (*Result, error) {
	res := &Result{
		ID:    "e11",
		Title: "Automatic update vs deliberate update (extension)",
		Paper: "fixed-mapping automatic update for fine-grain writes; UDMA deliberate update for bulk",
	}

	type workloadKind struct {
		name   string
		runs   int // scattered runs
		runLen int // contiguous words per run
	}
	cases := []workloadKind{
		{"16 scattered words", 16, 1},
		{"16 runs × 8 words", 16, 8},
		{"one 4 KB page", 1, 1024},
	}

	tbl := stats.NewTable("Sender cost to publish updates to a remote page (µs)",
		"update pattern", "automatic update", "deliberate update", "winner")
	var fineAuto, fineDelib, bulkAuto, bulkDelib float64
	for i, wk := range cases {
		auto, err := updateCost(wk.runs, wk.runLen, true)
		if err != nil {
			return nil, fmt.Errorf("auto %s: %w", wk.name, err)
		}
		delib, err := updateCost(wk.runs, wk.runLen, false)
		if err != nil {
			return nil, fmt.Errorf("deliberate %s: %w", wk.name, err)
		}
		winner := "automatic"
		if delib < auto {
			winner = "deliberate"
		}
		tbl.AddRow(wk.name, fmt.Sprintf("%.1f", auto), fmt.Sprintf("%.1f", delib), winner)
		if i == 0 {
			fineAuto, fineDelib = auto, delib
		}
		if i == len(cases)-1 {
			bulkAuto, bulkDelib = auto, delib
		}
	}
	res.Tables = append(res.Tables, tbl)

	res.check("automatic update wins scattered single words", fineAuto < fineDelib,
		"%.1f µs vs %.1f µs", fineAuto, fineDelib)
	res.check("deliberate update wins bulk pages", bulkDelib < bulkAuto,
		"%.1f µs vs %.1f µs", bulkDelib, bulkAuto)
	res.Notes = append(res.Notes,
		"automatic-update pages are write-through (10 cycles/store on the Xpress bus model); deliberate update pays per-transfer initiation but streams at EISA burst rate",
		"extension: this comparison is from the SHRIMP project literature, not a table in the HPCA'96 paper")
	return res, nil
}

// updateCost measures the sender-side time to publish runs×runLen words
// to a remote page and (for automatic update) flush them out.
func updateCost(runs, runLen int, auto bool) (float64, error) {
	c := cluster.New(cluster.Config{Nodes: 2, NIC: nic.Config{NIPTPages: 8}})
	defer c.Shutdown()
	costs := c.Nodes[0].Costs

	if err := udmalib.MapSendWindow(c.NICs[0], 0, 1, []uint32{40}); err != nil {
		return 0, err
	}

	var elapsed sim.Cycles
	err := runOn(c.Nodes[0], "sender", func(p *kernel.Proc) error {
		src, err := p.Alloc(addr.PageSize)
		if err != nil {
			return err
		}
		if err := p.WriteBuf(src, workload.Payload(addr.PageSize, 1)); err != nil {
			return err
		}
		var d *udmalib.Dev
		if auto {
			if err := p.MapAutoUpdate(c.NICs[0], src, 1, 0); err != nil {
				return err
			}
		} else {
			d, err = udmalib.Open(p, c.NICs[0], true)
			if err != nil {
				return err
			}
			// Warm the proxy mappings.
			if err := d.Send(src, 0, 64); err != nil {
				return err
			}
		}

		// The runs are spread across the page; each run is runLen
		// contiguous words.
		stride := addr.PageSize / runs
		start := p.Now()
		for r := 0; r < runs; r++ {
			off := r * stride
			if auto {
				for w := 0; w < runLen; w++ {
					if err := p.Store(src+addr.VAddr(off+w*4), uint32(r<<16|w)); err != nil {
						return err
					}
				}
			} else {
				if err := d.Send(src+addr.VAddr(off), uint32(off), runLen*4); err != nil {
					return err
				}
			}
		}
		if auto {
			c.NICs[0].FlushAutoUpdate()
		}
		elapsed = p.Now() - start
		return nil
	})
	if err != nil {
		return 0, err
	}
	return costs.Micros(elapsed), nil
}
